// Bug/intrusion detection during replay (§7.5) and trusted input (§7.2).
//
// Two things AVMs deliberately do NOT treat as faults, and what the
// paper's extensions do about them:
//
//  1. An attacker exploiting a bug in the guest software: the reference
//     image really behaves that way on that input, so the audit passes
//     (§4.8). But the audit's deterministic replay is a free substrate
//     for heavyweight analysis -- here, memory watchpoints and a
//     control-flow range check flag the exploit during a normal audit.
//
//  2. Forged local inputs (the re-engineered aimbot of §5.4): with
//     ordinary hardware they replay cleanly. With §7.2's signing
//     keyboards, audits verify input attestations and the cheat is
//     caught. Both sides are shown below.
#include <cstdio>

#include "src/audit/replay_analysis.h"
#include "src/sim/scenario.h"
#include "src/vm/assembler.h"

int main() {
  using namespace avm;

  // --- part 1: §7.2 attested input vs the forged-input aimbot ---------
  std::printf("== part 1: the forged-input aimbot vs signing keyboards (7.2)\n");
  for (bool attested : {false, true}) {
    GameScenarioConfig cfg;
    cfg.run = RunConfig::AvmmNoSig();
    cfg.num_players = 2;
    cfg.seed = 77;
    cfg.client.render_iters = 500;
    cfg.attested_input = attested;
    GameScenario game(cfg);
    game.SetCheat(0, RunnableCheat::kForgedInputAimbot);
    game.Start();
    game.RunFor(3 * kMicrosPerSecond);
    game.Finish();
    AuditOutcome audit = game.AuditPlayer(0);
    std::printf("  %-28s audit of the cheater -> %s\n",
                attested ? "with signing keyboards:" : "ordinary hardware:",
                audit.Describe().c_str());
  }
  std::printf("  (the same cheat, invisible to a plain AVM, is caught once the\n"
              "   input device attests its events.)\n\n");

  // --- part 2: §7.5 analysis during replay ----------------------------
  std::printf("== part 2: exploit of a guest bug, flagged during replay (7.5)\n");
  // A deliberately vulnerable echo service: copies an attacker-
  // controlled number of words into a 4-word buffer; the adjacent
  // function pointer at 0x6010 gets clobbered.
  constexpr char kVuln[] = R"(
      jmp main
      jmp irqh
  irqh:
      iret
  good_handler:
      movi r1, 111
      out r1, DEBUG
      ret
  evil_target:
      movi r1, 666
      out r1, DEBUG
      jmp spin
  main:
      movi r0, 0
      la r1, 0x6010
      la r2, good_handler
      sw r2, [r1+0]
  poll:
      in r1, NET_RXLEN
      beq r1, r0, poll
      la r2, RX_BUF
      lw r3, [r2+4]
      addi r2, 8
      la r4, 0x6000
  copy:
      beq r3, r0, copy_done
      lw r5, [r2+0]
      sw r5, [r4+0]
      addi r2, 4
      addi r4, 4
      addi r3, -1
      jmp copy
  copy_done:
      out r0, NET_RXDONE
      la r6, 0x6010
      lw r6, [r6+0]
      jalr lr, r6
  spin:
      addi r7, 1
      jmp spin
  )";
  Bytes image = Assemble(kVuln);

  // Find the attacker's jump target in the image.
  uint32_t evil_addr = 0;
  for (uint32_t off = 0; off + 4 <= image.size(); off += 4) {
    Insn in = Decode(GetU32(image, off));
    if (in.op == Op::kMovi && in.ra == 1 && in.imm == 666) {
      evil_addr = off;
    }
  }

  Prng rng(5);
  Signer signer("service", SignatureScheme::kNone, rng);
  KeyRegistry registry;
  registry.RegisterSigner(signer);
  registry.Register("attacker", SignatureScheme::kNone, Bytes());
  SimNetwork net;

  Avmm node("service", RunConfig::AvmmNoSig(), image, &signer, &net, &registry);
  node.AddPeer("service");

  RunConfig plain = RunConfig::BareHw();
  TamperEvidentLog alog("attacker");
  AuthenticatorStore aauths;
  Signer asign("attacker", SignatureScheme::kNone, rng);
  Transport attacker("attacker", &plain, &alog, &asign, &net, &registry, &aauths);
  net.AttachHost("attacker", &attacker);

  // The malicious request: 5 words, the last lands on the pointer.
  Bytes pkt;
  PutU32(pkt, 1);
  PutU32(pkt, 5);
  for (int i = 0; i < 4; i++) {
    PutU32(pkt, 0x41414141);
  }
  PutU32(pkt, evil_addr);
  attacker.SendPacket(0, "service", pkt);
  net.DeliverUntil(1000);
  for (SimTime t = 0; t < 10000; t += 1000) {
    node.RunQuantum(t, 1000);
  }
  node.Finish(10000);
  std::printf("  service executed attacker code: DEBUG output = %u (666 = hijacked)\n",
              node.debug_values().empty() ? 0 : node.debug_values()[0]);

  LogSegment seg = node.log().Extract(1, node.log().LastSeq());
  std::vector<std::unique_ptr<AnalysisPass>> passes;
  passes.push_back(std::make_unique<WriteWatchpointPass>(0x6010, 0x6014, "fnptr"));
  passes.push_back(std::make_unique<ExecRangePass>(0, static_cast<uint32_t>(image.size())));
  AnalysisReport report =
      AnalyzeSegment(seg, image, RunConfig().mem_size, std::move(passes));

  std::printf("  ordinary audit verdict: %s  (the reference image does behave\n",
              report.replay.ok ? "PASS" : "FAIL");
  std::printf("   this way on this input -- the exploit is not an AVM 'fault')\n");
  std::printf("  replay-time analysis (%llu instructions):\n",
              static_cast<unsigned long long>(report.instructions_analyzed));
  for (const AnalysisFinding& f : report.findings) {
    std::printf("   [%s] %s (pc=0x%x, addr=0x%x, icount=%llu)\n", f.pass.c_str(),
                f.detail.c_str(), f.pc, f.addr, static_cast<unsigned long long>(f.icount));
  }
  bool exploit_flagged = report.findings.size() >= 2;
  std::printf("  -> %s\n", exploit_flagged
                               ? "exploit detected as part of a normal audit"
                               : "analysis found nothing (unexpected)");
  return report.replay.ok && exploit_flagged ? 0 : 1;
}
