// Quickstart: the paper's core loop in ~60 lines.
//
// Three players and a server play a short game inside accountable virtual
// machines. Afterwards one player audits another: verifies the log
// against the collected authenticators (syntactic check) and replays it
// against the trusted reference image (semantic check). Honest players
// pass; then we re-run the game with a cheater and watch the audit fail
// and produce third-party-verifiable evidence.
#include <cstdio>

#include "src/audit/evidence.h"
#include "src/sim/scenario.h"

int main() {
  using namespace avm;

  // --- an honest game -----------------------------------------------
  GameScenarioConfig cfg;
  cfg.run = RunConfig::AvmmRsa768();
  cfg.num_players = 3;
  cfg.seed = 42;

  GameScenario game(cfg);
  game.Start();
  game.RunFor(5 * kMicrosPerSecond);  // 5 seconds of simulated play.
  game.Finish();

  std::printf("honest game: %d players, server log has %zu entries\n", game.num_players(),
              game.server().log().size());
  for (int i = 0; i < game.num_players(); i++) {
    AuditOutcome audit = game.AuditPlayer(i);
    std::printf("  audit of %-8s -> %s (replayed %llu instructions in %.2fs)\n",
                game.player_id(i).c_str(), audit.Describe().c_str(),
                static_cast<unsigned long long>(audit.semantic.instructions_replayed),
                audit.semantic_seconds);
    if (!audit.ok) {
      std::printf("unexpected fault in an honest game!\n");
      return 1;
    }
  }

  // --- the same game, but player 2 installs unlimited ammo ------------
  GameScenario cheated(cfg);
  cheated.SetCheat(1, RunnableCheat::kUnlimitedAmmo);
  cheated.Start();
  cheated.RunFor(5 * kMicrosPerSecond);
  cheated.Finish();

  std::printf("\ncheated game: player2 runs '%s'\n",
              RunnableCheatName(RunnableCheat::kUnlimitedAmmo));
  AuditOutcome audit = cheated.AuditPlayer(1);
  std::printf("  audit of player2 -> %s\n", audit.Describe().c_str());
  if (audit.ok || !audit.evidence) {
    std::printf("cheat was not detected!\n");
    return 1;
  }

  // --- a third party verifies the evidence independently --------------
  Bytes wire = audit.evidence->Serialize();
  Evidence received = Evidence::Deserialize(wire);
  EvidenceVerdict verdict =
      VerifyEvidence(received, cheated.registry(), cheated.reference_client_image());
  std::printf("  third party verdict: %s (%s)\n",
              verdict.fault_confirmed ? "FAULT CONFIRMED" : "not confirmed",
              verdict.detail.c_str());
  return verdict.fault_confirmed ? 0 : 1;
}
