// Accountable cloud hosting with spot checks (§3.5, §6.12, §7.1).
//
// Alice rents a machine from provider Bob and runs her key-value service
// in an AVM. She cannot replay weeks of execution, so she spot-checks:
// Bob's AVMM snapshots the state every 5 simulated seconds, and Alice
// audits only selected snapshot-bounded chunks. We run once honestly and
// once with the provider silently corrupting the database mid-run; the
// spot check that covers the corrupted segment fails and yields evidence
// Alice can take to a third party (e.g. to settle an SLA dispute).
#include <cstdio>

#include "src/audit/evidence.h"
#include "src/sim/scenario.h"

namespace {

avm::KvScenarioConfig Config(uint64_t seed) {
  avm::KvScenarioConfig cfg;
  cfg.run = avm::RunConfig::AvmmRsa768();
  cfg.seed = seed;
  cfg.snapshot_interval = 5 * avm::kMicrosPerSecond;
  cfg.client.op_period_us = 20 * avm::kMicrosPerMilli;
  return cfg;
}

}  // namespace

int main() {
  using namespace avm;

  // --- honest provider -------------------------------------------------
  {
    KvScenario kv(Config(71));
    kv.Start();
    kv.RunFor(30 * kMicrosPerSecond);
    kv.Finish();

    std::vector<SnapshotIndexEntry> snaps = IndexSnapshots(kv.server().log());
    std::vector<Authenticator> auths = kv.CollectAuthsForServer();
    Auditor alice("alice", &kv.registry());

    std::printf("honest provider: %zu snapshots, server handled %llu requests\n", snaps.size(),
                static_cast<unsigned long long>(kv.server().stats().guest_packets_delivered));
    // Alice samples a few chunks instead of replaying everything.
    for (size_t i : {1u, 3u, 4u}) {
      AuditOutcome audit = alice.SpotCheck(kv.server(), snaps[i].meta.snapshot_id,
                                           snaps[i + 1].meta.snapshot_id, auths);
      std::printf("  spot check segment %zu -> %s (%.0f KB log + %.0f KB snapshots, %.3fs)\n", i,
                  audit.Describe().c_str(), audit.log_bytes / 1024.0,
                  audit.snapshot_bytes / 1024.0, audit.semantic_seconds);
      if (!audit.ok) {
        return 1;
      }
    }
  }

  // --- misbehaving provider -------------------------------------------
  {
    KvScenario kv(Config(72));
    kv.Start();
    // Bob's platform flips a record in Alice's database 12s in (bit rot,
    // a break-in, or deliberate manipulation: indistinguishable, and it
    // does not matter -- the audit assigns the fault to the machine).
    kv.server().SetCheatHook([](Machine& m, SimTime now) {
      if (now == 12 * kMicrosPerSecond) {
        m.WriteMem32(kKvTableAddr + 128, 0xffffffff);
      }
    });
    kv.RunFor(30 * kMicrosPerSecond);
    kv.Finish();

    std::vector<SnapshotIndexEntry> snaps = IndexSnapshots(kv.server().log());
    std::vector<Authenticator> auths = kv.CollectAuthsForServer();
    Auditor alice("alice", &kv.registry());

    std::printf("\nmisbehaving provider: state corrupted at t=12s\n");
    std::optional<Evidence> evidence;
    for (size_t i = 0; i + 1 < snaps.size(); i++) {
      AuditOutcome audit = alice.SpotCheck(kv.server(), snaps[i].meta.snapshot_id,
                                           snaps[i + 1].meta.snapshot_id, auths);
      std::printf("  spot check segment %zu -> %s\n", i, audit.Describe().c_str());
      if (!audit.ok) {
        evidence = audit.evidence;
        break;
      }
    }
    if (!evidence) {
      std::printf("corruption went undetected!\n");
      return 1;
    }
    std::printf("\nAlice ships the evidence (%zu bytes incl. snapshot increments)\n",
                evidence->Serialize().size());
    EvidenceVerdict verdict =
        VerifyEvidence(*evidence, kv.registry(), kv.reference_server_image());
    std::printf("arbitrator verdict: %s\n  -> %s\n",
                verdict.fault_confirmed ? "FAULT CONFIRMED (provider liable)" : "not confirmed",
                verdict.detail.c_str());
    return verdict.fault_confirmed ? 0 : 1;
  }
}
