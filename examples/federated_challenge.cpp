// Multi-party accountability in a federated system (§4.6).
//
// Three independently operated nodes exchange messages. One node stops
// answering Alice's audit request while continuing to talk to Charlie
// (the "appear dead to some, alive to others" attack). Alice broadcasts
// a challenge; every peer suspends communication with the accused until
// it answers; a correct node answers (its log segment is relayed back)
// and is resumed, while a truly unresponsive node stays cut off and ends
// up suspected by everyone.
#include <cstdio>

#include "src/avmm/transport.h"

int main() {
  using namespace avm;

  Prng rng(99);
  RunConfig cfg = RunConfig::AvmmRsa768();
  SimNetwork net;
  KeyRegistry registry;

  struct Node {
    std::unique_ptr<Signer> signer;
    std::unique_ptr<TamperEvidentLog> log;
    std::unique_ptr<AuthenticatorStore> auths;
    std::unique_ptr<Transport> transport;
  };
  std::map<NodeId, Node> nodes;
  for (const char* id : {"alice", "bob", "charlie"}) {
    Node n;
    n.signer = std::make_unique<Signer>(id, cfg.scheme, rng);
    registry.RegisterSigner(*n.signer);
    nodes[id] = std::move(n);
  }
  for (auto& [id, n] : nodes) {
    n.log = std::make_unique<TamperEvidentLog>(id);
    n.auths = std::make_unique<AuthenticatorStore>();
    n.transport = std::make_unique<Transport>(id, &cfg, n.log.get(), n.signer.get(), &net,
                                              &registry, n.auths.get());
    net.AttachHost(id, n.transport.get());
  }
  // Bob answers challenges by producing the requested log segment.
  nodes["bob"].transport->SetChallengeHandler([&](const ChallengeFrame&) {
    const TamperEvidentLog& log = *nodes["bob"].log;
    if (log.empty()) {
      return Bytes();
    }
    return log.Extract(1, log.LastSeq()).Serialize();
  });
  Bytes challenge_response;
  nodes["alice"].transport->SetChallengeResponseHandler(
      [&](const ChallengeResponseFrame& r) { challenge_response = r.body; });

  // Normal operation: everyone exchanges application messages.
  SimTime now = 0;
  for (int round = 0; round < 5; round++) {
    nodes["alice"].transport->SendPacket(now, "bob", ToBytes("work-item"));
    nodes["bob"].transport->SendPacket(now, "charlie", ToBytes("gossip"));
    nodes["charlie"].transport->SendPacket(now, "alice", ToBytes("report"));
    now += 10 * kMicrosPerMilli;
    net.DeliverUntil(now);
  }
  std::printf("federation running: bob's log has %zu entries, alice holds %zu of bob's auths\n",
              nodes["bob"].log->size(), nodes["alice"].auths->CountFor("bob"));

  // Bob ignores Alice (network trouble or malice), but keeps working with
  // Charlie. Alice escalates: she forwards the unanswered request as a
  // challenge to every peer.
  std::printf("\nalice's audit request to bob goes unanswered; she broadcasts a challenge\n");
  ChallengeFrame challenge{"alice", "bob", 1, ToBytes("produce log segment [1, end]")};
  nodes["alice"].transport->SendChallenge(now, "charlie", challenge);
  now += 100;  // One hop: charlie received it and suspended bob.
  net.DeliverUntil(now);
  std::printf("charlie suspends bob: %s\n",
              nodes["charlie"].transport->IsSuspended("bob") ? "yes" : "no");

  // While suspended, charlie's application traffic to bob is blocked.
  nodes["charlie"].transport->SendPacket(now, "bob", ToBytes("blocked?"));
  std::printf("charlie->bob application traffic dropped: %llu frame(s)\n",
              static_cast<unsigned long long>(
                  nodes["charlie"].transport->stats().dropped_suspended));

  // Bob is actually correct -- he answers the relayed challenge, the
  // response reaches charlie, and (per §4.6) it is forwarded to alice.
  now += kMicrosPerSecond;
  net.DeliverUntil(now);
  std::printf("\nbob answered the challenge: charlie resumes him: suspended=%s\n",
              nodes["charlie"].transport->IsSuspended("bob") ? "yes" : "no");

  // Verify the produced segment really is bob's committed log.
  if (!challenge_response.empty()) {
    LogSegment seg = LogSegment::Deserialize(challenge_response);
    std::vector<Authenticator> auths = nodes["alice"].auths->AllFor("bob");
    CheckResult check = VerifyAgainstAuthenticators(seg, auths, registry);
    std::printf("alice verifies the produced segment against her authenticators: %s\n",
                check.ok ? "GENUINE" : ("FAIL: " + check.reason).c_str());
    return check.ok ? 0 : 1;
  }
  // The charlie-relayed response goes to charlie; in this in-process
  // demo, alice's copy may ride the direct channel instead.
  std::printf("(challenge answered via relay; federation unblocked)\n");
  return nodes["charlie"].transport->IsSuspended("bob") ? 1 : 0;
}
