// Durable logs: record a game to a LogStore, then audit from disk.
//
// The paper's log outlives the session that produced it: the machine
// keeps it until an auditor asks (§4.3), which for a long-running node
// means disk, not heap. Here player1's AVMM spills its tamper-evident
// log to a segmented store while the game runs. Afterwards an auditor
// "in a fresh process" opens the directory cold -- knowing nothing but
// the path -- triages the whole log with the streaming syntactic check,
// and spot-checks a snapshot window, all straight from the sealed
// segments. Verdicts are identical to auditing the in-memory log.
#include <cstdio>
#include <filesystem>

#include "src/sim/scenario.h"
#include "src/store/log_store.h"

namespace fs = std::filesystem;

int main() {
  using namespace avm;
  std::string dir = (fs::temp_directory_path() / "avm_durable_audit").string();
  fs::remove_all(dir);

  // --- recording side --------------------------------------------------
  GameScenarioConfig cfg;
  cfg.run = RunConfig::AvmmRsa768();
  cfg.run.snapshot_interval = 5 * kMicrosPerSecond;  // Enables spot checks.
  cfg.num_players = 2;
  cfg.seed = 42;
  GameScenario game(cfg);
  game.Start();
  {
    auto store = LogStore::Open(dir, game.player_id(0));
    game.player(0).SpillTo(store.get());
    game.RunFor(20 * kMicrosPerSecond);
    game.Finish();
    store->Seal();
    std::printf("recorded %llu entries to %s\n",
                static_cast<unsigned long long>(store->LastSeq()), dir.c_str());
    std::printf("  %zu segments (%zu sealed), %.1f KB on disk vs %.1f KB wire size\n",
                store->SegmentCount(), store->SealedCount(), store->DiskBytes() / 1024.0,
                game.player(0).log().TotalWireSize() / 1024.0);
  }  // The store closes; only the directory survives.

  // --- auditing side ---------------------------------------------------
  // A fresh auditor opens the store knowing only the directory path (the
  // node identity is read back from store.meta).
  auto store = LogStore::Open(dir);
  std::printf("\nreopened store for node '%s': %llu entries%s\n", store->node().c_str(),
              static_cast<unsigned long long>(store->LastSeq()),
              store->RecoveredTornTail() ? " (torn tail truncated)" : "");

  std::vector<Authenticator> auths = game.CollectAuths(store->node());
  Auditor auditor("server", &game.registry());

  // Streaming triage: chain, authenticators and message checks over the
  // whole log, one segment in memory at a time.
  CheckResult triage = StreamingSyntacticCheck(*store, auths, game.registry(), auditor.config());
  std::printf("streaming syntactic check -> %s\n", triage.ok ? "PASS" : triage.reason.c_str());
  if (!triage.ok) {
    return 1;
  }

  // Spot-check one snapshot window straight from the sealed segments.
  std::vector<SnapshotIndexEntry> snaps = IndexSnapshots(*store);
  if (snaps.size() < 2) {
    std::printf("not enough snapshots for a spot check\n");
    return 1;
  }
  size_t mid = snaps.size() / 2;
  AuditOutcome spot = auditor.SpotCheck(game.player(0), *store, snaps[mid - 1].meta.snapshot_id,
                                        snaps[mid].meta.snapshot_id, auths);
  std::printf("spot check (snapshots %llu..%llu) -> %s\n",
              static_cast<unsigned long long>(snaps[mid - 1].meta.snapshot_id),
              static_cast<unsigned long long>(snaps[mid].meta.snapshot_id),
              spot.Describe().c_str());

  // And the acceptance bar: the full store-backed audit agrees with the
  // in-memory path, bit for bit.
  AuditOutcome disk =
      auditor.AuditFull(game.player(0), *store, game.reference_client_image(), auths);
  AuditOutcome mem =
      auditor.AuditFull(game.player(0), game.reference_client_image(), auths);
  std::printf("full audit from disk -> %s (in-memory path agrees: %s)\n", disk.Describe().c_str(),
              disk.Describe() == mem.Describe() ? "yes" : "NO");

  fs::remove_all(dir);
  return (spot.ok && disk.ok && disk.Describe() == mem.Describe()) ? 0 : 1;
}
