// Cheat detection in a multiplayer game (the paper's §5/§6 scenario).
//
// Usage: game_cheat_detection [cheat]
//   cheat: none | unlimited-ammo | teleport | aimbot | wallhack | forged-input
//
// Runs a 3-player game + server under avmm-rsa768 with the chosen cheat
// installed on player2, then every player audits every other player, as
// in Figure 2(a)'s symmetric scenario. Prints per-player audit results,
// game statistics, and the evidence flow when a cheat is caught.
#include <cstdio>
#include <cstring>

#include "src/audit/evidence.h"
#include "src/sim/scenario.h"

namespace {

avm::RunnableCheat ParseCheat(const char* name) {
  using avm::RunnableCheat;
  if (std::strcmp(name, "none") == 0) {
    return RunnableCheat::kNone;
  }
  if (std::strcmp(name, "unlimited-ammo") == 0) {
    return RunnableCheat::kUnlimitedAmmo;
  }
  if (std::strcmp(name, "teleport") == 0) {
    return RunnableCheat::kTeleport;
  }
  if (std::strcmp(name, "aimbot") == 0) {
    return RunnableCheat::kAimbotImage;
  }
  if (std::strcmp(name, "wallhack") == 0) {
    return RunnableCheat::kWallhackImage;
  }
  if (std::strcmp(name, "forged-input") == 0) {
    return RunnableCheat::kForgedInputAimbot;
  }
  std::fprintf(stderr, "unknown cheat '%s'\n", name);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace avm;
  RunnableCheat cheat = argc > 1 ? ParseCheat(argv[1]) : RunnableCheat::kUnlimitedAmmo;

  GameScenarioConfig cfg;
  cfg.run = RunConfig::AvmmRsa768();
  cfg.num_players = 3;
  cfg.seed = 2024;

  GameScenario game(cfg);
  if (cheat != RunnableCheat::kNone) {
    game.SetCheat(1, cheat);  // player2 cheats.
  }
  game.Start();
  std::printf("playing 10 simulated seconds (player2 cheat: %s)...\n", RunnableCheatName(cheat));
  game.RunFor(10 * kMicrosPerSecond);
  game.Finish();

  std::printf("\nper-player game state (read from guest memory):\n");
  for (int i = 0; i < game.num_players(); i++) {
    const Machine& m = game.player(i).machine();
    std::printf("  %-8s pos=(%d,%d) ammo=%u shots=%u frames=%llu log=%zu entries\n",
                game.player_id(i).c_str(), static_cast<int32_t>(m.ReadMem32(kGameStateX)),
                static_cast<int32_t>(m.ReadMem32(kGameStateY)), m.ReadMem32(kGameStateAmmo),
                m.ReadMem32(kGameStateShots),
                static_cast<unsigned long long>(game.player(i).stats().frames_rendered),
                game.player(i).log().size());
  }

  std::printf("\nmutual audits (each player audited with everyone's authenticators):\n");
  bool cheater_caught = false;
  std::optional<Evidence> evidence;
  for (int i = 0; i < game.num_players(); i++) {
    AuditOutcome audit = game.AuditPlayer(i);
    std::printf("  audit of %-8s -> %s\n", game.player_id(i).c_str(), audit.Describe().c_str());
    if (!audit.ok && i == 1) {
      cheater_caught = true;
      evidence = audit.evidence;
    }
  }

  bool expected = CheatDetectableByAvm(cheat);
  if (expected && cheater_caught && evidence) {
    std::printf("\nevidence (%zu bytes) is distributed to the other players;\n",
                evidence->Serialize().size());
    EvidenceVerdict verdict =
        VerifyEvidence(*evidence, game.registry(), game.reference_client_image());
    std::printf("player3 independently verifies: %s\n  -> %s\n",
                verdict.fault_confirmed ? "FAULT CONFIRMED" : "not confirmed",
                verdict.detail.c_str());
    std::printf("player1 and player3 decide never to play with player2 again.\n");
    return 0;
  }
  if (!expected && !cheater_caught) {
    if (cheat == RunnableCheat::kForgedInputAimbot) {
      std::printf("\nas §4.8 predicts, inputs forged outside the AVM replay cleanly;\n");
      std::printf("this cheat class needs trusted input hardware (§7.2) to detect.\n");
    } else {
      std::printf("\nno cheat installed; everyone is clean.\n");
    }
    return 0;
  }
  std::printf("\nunexpected outcome!\n");
  return 1;
}
