#include <gtest/gtest.h>

#include "src/tel/log.h"
#include "src/tel/verifier.h"
#include "src/util/prng.h"

namespace avm {
namespace {

struct TelFixture : public ::testing::Test {
  TelFixture() : rng(1), signer("bob", SignatureScheme::kRsa768, rng), log("bob") {
    registry.RegisterSigner(signer);
  }

  // Appends n entries with varied types/contents.
  void Fill(size_t n) {
    for (size_t i = 0; i < n; i++) {
      EntryType t = (i % 3 == 0)   ? EntryType::kSend
                    : (i % 3 == 1) ? EntryType::kTraceTime
                                   : EntryType::kRecv;
      log.Append(t, ToBytes("content-" + std::to_string(i)));
    }
  }

  Prng rng;
  Signer signer;
  KeyRegistry registry;
  TamperEvidentLog log;
};

TEST_F(TelFixture, AppendAssignsConsecutiveSeqs) {
  Fill(5);
  EXPECT_EQ(log.size(), 5u);
  for (uint64_t s = 1; s <= 5; s++) {
    EXPECT_EQ(log.At(s).seq, s);
  }
  EXPECT_THROW(log.At(0), std::out_of_range);
  EXPECT_THROW(log.At(6), std::out_of_range);
}

TEST_F(TelFixture, AtOutOfRangeReportsSeqAndBounds) {
  Fill(3);
  // Regression: out-of-range access must fail with a message naming the
  // bad seq and the valid range, never silently index past the vector.
  try {
    log.At(7);
    FAIL() << "At(7) did not throw";
  } catch (const std::out_of_range& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("7"), std::string::npos) << what;
    EXPECT_NE(what.find("[1, 3]"), std::string::npos) << what;
  }
  EXPECT_THROW(log.At(UINT64_MAX), std::out_of_range);
  TamperEvidentLog empty("eve");
  EXPECT_THROW(empty.At(1), std::out_of_range);
}

TEST_F(TelFixture, SinkTeesAppendsAndBackfills) {
  struct CollectingSink : LogSink {
    std::vector<LogEntry> got;
    bool flushed = false;
    void Append(const LogEntry& e) override { got.push_back(e); }
    void Flush() override { flushed = true; }
    uint64_t SinkLastSeq() const override { return got.empty() ? 0 : got.back().seq; }
  };
  Fill(3);
  CollectingSink sink;
  log.SetSink(&sink);  // Backfills the three existing entries.
  Fill(2);
  ASSERT_EQ(sink.got.size(), 5u);
  for (uint64_t s = 1; s <= 5; s++) {
    EXPECT_EQ(sink.got[s - 1].seq, s);
    EXPECT_EQ(sink.got[s - 1].hash, log.At(s).hash);
  }
  // Re-attaching backfills only what the sink does not already hold.
  log.SetSink(nullptr);
  Fill(1);
  log.SetSink(&sink);
  EXPECT_EQ(sink.got.size(), 6u);
  log.FlushSink();
  EXPECT_TRUE(sink.flushed);
}

TEST_F(TelFixture, HashChainLinksEntries) {
  Fill(3);
  Hash256 h1 = ChainHash(Hash256::Zero(), 1, log.At(1).type, log.At(1).content);
  EXPECT_EQ(log.At(1).hash, h1);
  Hash256 h2 = ChainHash(h1, 2, log.At(2).type, log.At(2).content);
  EXPECT_EQ(log.At(2).hash, h2);
}

TEST_F(TelFixture, ChainHashDependsOnAllFields) {
  Hash256 base = ChainHash(Hash256::Zero(), 1, EntryType::kSend, ToBytes("x"));
  EXPECT_NE(base, ChainHash(Hash256::Zero(), 2, EntryType::kSend, ToBytes("x")));
  EXPECT_NE(base, ChainHash(Hash256::Zero(), 1, EntryType::kRecv, ToBytes("x")));
  EXPECT_NE(base, ChainHash(Hash256::Zero(), 1, EntryType::kSend, ToBytes("y")));
  EXPECT_NE(base, ChainHash(Sha256::Digest("p"), 1, EntryType::kSend, ToBytes("x")));
}

TEST_F(TelFixture, ExtractSegmentCarriesPriorHash) {
  Fill(10);
  LogSegment seg = log.Extract(4, 7);
  EXPECT_EQ(seg.FirstSeq(), 4u);
  EXPECT_EQ(seg.LastSeq(), 7u);
  EXPECT_EQ(seg.prior_hash, log.At(3).hash);
  EXPECT_TRUE(VerifyChain(seg).ok);
}

TEST_F(TelFixture, ExtractWholeLogHasZeroPrior) {
  Fill(4);
  LogSegment seg = log.Extract(1, 4);
  EXPECT_TRUE(seg.prior_hash.IsZero());
  EXPECT_TRUE(VerifyChain(seg).ok);
}

TEST_F(TelFixture, ExtractBadRangeThrows) {
  Fill(4);
  EXPECT_THROW(log.Extract(0, 2), std::out_of_range);
  EXPECT_THROW(log.Extract(3, 2), std::out_of_range);
  EXPECT_THROW(log.Extract(2, 5), std::out_of_range);
}

TEST_F(TelFixture, SegmentSerializationRoundTrip) {
  Fill(6);
  LogSegment seg = log.Extract(2, 5);
  LogSegment restored = LogSegment::Deserialize(seg.Serialize());
  EXPECT_EQ(restored.node, "bob");
  EXPECT_EQ(restored.prior_hash, seg.prior_hash);
  ASSERT_EQ(restored.entries.size(), seg.entries.size());
  for (size_t i = 0; i < seg.entries.size(); i++) {
    EXPECT_EQ(restored.entries[i].hash, seg.entries[i].hash);
    EXPECT_EQ(restored.entries[i].content, seg.entries[i].content);
  }
  EXPECT_TRUE(VerifyChain(restored).ok);
}

TEST_F(TelFixture, AuthenticatorSignsAndVerifies) {
  Fill(3);
  Authenticator a = log.Authenticate(signer);
  EXPECT_EQ(a.node, "bob");
  EXPECT_EQ(a.seq, 3u);
  EXPECT_EQ(a.hash, log.LastHash());
  EXPECT_TRUE(a.VerifySignature(registry));

  Authenticator restored = Authenticator::Deserialize(a.Serialize());
  EXPECT_TRUE(restored.VerifySignature(registry));
}

TEST_F(TelFixture, TamperedAuthenticatorRejected) {
  Fill(3);
  Authenticator a = log.Authenticate(signer);
  Authenticator bad = a;
  bad.seq++;
  EXPECT_FALSE(bad.VerifySignature(registry));
  bad = a;
  bad.hash.v[0] ^= 1;
  EXPECT_FALSE(bad.VerifySignature(registry));
  bad = a;
  bad.node = "alice";
  EXPECT_FALSE(bad.VerifySignature(registry));
}

// Property sweep: any single-field mutation of any entry breaks the chain.
class TamperTest : public TelFixture, public ::testing::WithParamInterface<int> {};

TEST_P(TamperTest, MutationDetected) {
  Fill(12);
  LogSegment seg = log.Extract(1, 12);
  Prng trng(static_cast<uint64_t>(GetParam()));
  size_t victim = trng.Below(seg.entries.size());
  LogEntry& e = seg.entries[victim];
  switch (GetParam() % 4) {
    case 0:
      e.content.push_back(0x42);  // Extend content.
      break;
    case 1:
      if (e.content.empty()) {
        e.content.push_back(1);
      } else {
        e.content[0] ^= 1;  // Flip a content byte.
      }
      break;
    case 2:
      e.type = (e.type == EntryType::kSend) ? EntryType::kRecv : EntryType::kSend;
      break;
    case 3:
      e.hash.v[trng.Below(32)] ^= 0x80;  // Corrupt the stored hash.
      break;
  }
  EXPECT_FALSE(VerifyChain(seg).ok);
}

INSTANTIATE_TEST_SUITE_P(Mutations, TamperTest, ::testing::Range(0, 24));

TEST_F(TelFixture, ReorderDetected) {
  Fill(6);
  LogSegment seg = log.Extract(1, 6);
  std::swap(seg.entries[2], seg.entries[3]);
  EXPECT_FALSE(VerifyChain(seg).ok);
}

TEST_F(TelFixture, OmissionDetected) {
  Fill(6);
  LogSegment seg = log.Extract(1, 6);
  seg.entries.erase(seg.entries.begin() + 2);
  EXPECT_FALSE(VerifyChain(seg).ok);
}

TEST_F(TelFixture, InsertionDetected) {
  Fill(6);
  LogSegment seg = log.Extract(1, 6);
  LogEntry forged;
  forged.seq = 4;
  forged.type = EntryType::kInfo;
  forged.content = ToBytes("forged");
  forged.hash = ChainHash(seg.entries[2].hash, 4, forged.type, forged.content);
  seg.entries.insert(seg.entries.begin() + 3, forged);
  // The forged entry has a valid local hash, but everything after breaks.
  EXPECT_FALSE(VerifyChain(seg).ok);
}

TEST_F(TelFixture, EmptySegmentRejected) {
  LogSegment seg;
  seg.node = "bob";
  EXPECT_FALSE(VerifyChain(seg).ok);
}

TEST_F(TelFixture, AuthenticatorsDetectRewrittenHistory) {
  Fill(8);
  Authenticator a5 = log.AuthenticateAt(signer, 5);

  // Bob rewrites entry 3 and recomputes a *consistent* chain.
  LogSegment seg = log.Extract(1, 8);
  seg.entries[2].content = ToBytes("rewritten");
  Hash256 prev = seg.prior_hash;
  for (LogEntry& e : seg.entries) {
    e.hash = ChainHash(prev, e.seq, e.type, e.content);
    prev = e.hash;
  }
  ASSERT_TRUE(VerifyChain(seg).ok);  // Internally consistent...
  // ...but it no longer matches the authenticator he issued earlier.
  std::vector<Authenticator> auths = {a5};
  EXPECT_FALSE(VerifyAgainstAuthenticators(seg, auths, registry).ok);
}

TEST_F(TelFixture, VerifyAgainstAuthenticatorsRequiresCoverage) {
  Fill(5);
  LogSegment seg = log.Extract(1, 5);
  // No authenticators at all: cannot establish authenticity.
  EXPECT_FALSE(VerifyAgainstAuthenticators(seg, {}, registry).ok);
  // One valid authenticator inside the range: passes.
  Authenticator a = log.AuthenticateAt(signer, 4);
  std::vector<Authenticator> auths = {a};
  EXPECT_TRUE(VerifyAgainstAuthenticators(seg, auths, registry).ok);
}

TEST_F(TelFixture, ForkProofDetection) {
  Fill(4);
  Authenticator real = log.AuthenticateAt(signer, 4);

  // A forked history: same seq, different content.
  TamperEvidentLog fork("bob");
  for (size_t i = 0; i < 4; i++) {
    fork.Append(EntryType::kInfo, ToBytes("forked-" + std::to_string(i)));
  }
  Authenticator forked = fork.AuthenticateAt(signer, 4);

  EXPECT_TRUE(IsForkProof(real, forked, registry));
  EXPECT_FALSE(IsForkProof(real, real, registry));  // Same hash: no fork.

  AuthenticatorStore store;
  EXPECT_TRUE(store.Add(real, registry));
  EXPECT_TRUE(store.Add(forked, registry));
  ASSERT_EQ(store.fork_proofs().size(), 1u);
  EXPECT_TRUE(IsForkProof(store.fork_proofs()[0].first, store.fork_proofs()[0].second, registry));
}

TEST_F(TelFixture, AuthenticatorStoreRangeAndLatest) {
  Fill(10);
  AuthenticatorStore store;
  for (uint64_t s : {2u, 5u, 9u}) {
    EXPECT_TRUE(store.Add(log.AuthenticateAt(signer, s), registry));
  }
  EXPECT_EQ(store.CountFor("bob"), 3u);
  EXPECT_EQ(store.InRange("bob", 3, 9).size(), 2u);
  ASSERT_NE(store.Latest("bob"), nullptr);
  EXPECT_EQ(store.Latest("bob")->seq, 9u);
  EXPECT_EQ(store.Latest("alice"), nullptr);
  EXPECT_TRUE(store.AllFor("alice").empty());
}

TEST_F(TelFixture, AuthenticatorStoreRejectsBadSignature) {
  Fill(2);
  Authenticator a = log.Authenticate(signer);
  a.hash.v[5] ^= 1;
  AuthenticatorStore store;
  EXPECT_FALSE(store.Add(a, registry));
  EXPECT_EQ(store.CountFor("bob"), 0u);
}

TEST_F(TelFixture, WireSizeAccounting) {
  Fill(7);
  size_t total = 0;
  for (const LogEntry& e : log.entries()) {
    total += e.WireSize();
  }
  EXPECT_EQ(log.TotalWireSize(), total);
  EXPECT_EQ(log.Extract(1, 7).WireSize(), total);
}

TEST(EntryTypeNames, AllDistinct) {
  EXPECT_STREQ(EntryTypeName(EntryType::kSend), "SEND");
  EXPECT_STREQ(EntryTypeName(EntryType::kTraceTime), "TIMETRACKER");
  EXPECT_STREQ(EntryTypeName(EntryType::kSnapshot), "SNAPSHOT");
}

}  // namespace
}  // namespace avm
