#include <gtest/gtest.h>

#include "src/audit/replayer.h"
#include "src/avmm/recorder.h"
#include "src/vm/assembler.h"

namespace avm {
namespace {

// A single recording AVMM with no peers: exercises the record->replay
// loop on guest programs that consume every kind of nondeterminism.
struct ReplayFixture : public ::testing::Test {
  ReplayFixture() : rng(3), signer("solo", SignatureScheme::kNone, rng) {
    registry.RegisterSigner(signer);
  }

  std::unique_ptr<Avmm> MakeAvmm(const Bytes& image, RunConfig cfg = RunConfig::AvmmNoSig()) {
    auto node = std::make_unique<Avmm>("solo", cfg, image, &signer, &net, &registry);
    node->AddPeer("solo");
    return node;
  }

  // Records `quanta` x 1ms and finishes the log.
  void Record(Avmm& node, int quanta) {
    SimTime now = 0;
    for (int i = 0; i < quanta; i++) {
      node.RunQuantum(now, 1000);
      now += 1000;
    }
    node.Finish(now);
  }

  ReplayResult ReplayAll(const Avmm& node, const Bytes& image) {
    LogSegment seg = node.log().Extract(1, node.log().LastSeq());
    return ReplaySegment(seg, image, node.config().mem_size);
  }

  Prng rng;
  Signer signer;
  KeyRegistry registry;
  SimNetwork net;
};

// Guest that reads the clock, input, and RNG, and emits debug values
// derived from them: replay must reproduce every value exactly.
constexpr char kNoisyGuest[] = R"(
    jmp main
    jmp irqh
irqh:
    iret
main:
    movi r0, 0
loop:
    in r1, CLOCK_LO
    in r2, RAND
    in r3, INPUT
    add r1, r2
    add r1, r3
    out r1, DEBUG
    movi r4, 200
work:
    addi r4, -1
    bne r4, r0, work
    jmp loop
)";

TEST_F(ReplayFixture, HonestRunReplaysCleanly) {
  Bytes image = Assemble(kNoisyGuest);
  auto node = MakeAvmm(image);
  for (int i = 0; i < 20; i++) {
    node->PushInput(static_cast<uint32_t>(i + 1));
  }
  Record(*node, 50);
  ASSERT_GT(node->log().size(), 50u);

  ReplayResult r = ReplayAll(*node, image);
  EXPECT_TRUE(r.ok) << r.reason << " at seq " << r.diverged_seq;
  EXPECT_EQ(r.replay_icount, node->machine().cpu().icount);
}

TEST_F(ReplayFixture, ReplayIsDeterministicTwice) {
  Bytes image = Assemble(kNoisyGuest);
  auto node = MakeAvmm(image);
  Record(*node, 20);
  ReplayResult a = ReplayAll(*node, image);
  ReplayResult b = ReplayAll(*node, image);
  EXPECT_TRUE(a.ok);
  EXPECT_TRUE(b.ok);
  EXPECT_EQ(a.replay_icount, b.replay_icount);
}

TEST_F(ReplayFixture, WrongReferenceImageDetected) {
  Bytes image = Assemble(kNoisyGuest);
  auto node = MakeAvmm(image);
  Record(*node, 10);

  // The auditor replays with a different (patched) image.
  std::string patched = kNoisyGuest;
  size_t pos = patched.find("movi r4, 200");
  ASSERT_NE(pos, std::string::npos);
  patched.replace(pos, 12, "movi r4, 201");
  ReplayResult r = ReplayAll(*node, Assemble(patched));
  EXPECT_FALSE(r.ok);
  // The very first snapshot commitment (the initial image) already differs.
  EXPECT_NE(r.reason.find("snapshot root mismatch"), std::string::npos);
}

TEST_F(ReplayFixture, HostMemoryPokeDetected) {
  Bytes image = Assemble(kNoisyGuest);
  auto node = MakeAvmm(image);
  // Poke guest memory mid-execution (data page 0x5000 unused by the guest
  // logic but covered by the snapshot tree).
  node->SetCheatHook([](Machine& m, SimTime now) {
    if (now == 5000) {
      m.WriteMem32(0x5000, 0xdeadbeef);
    }
  });
  Record(*node, 10);
  ReplayResult r = ReplayAll(*node, image);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("snapshot root mismatch"), std::string::npos);
}

TEST_F(ReplayFixture, TamperedTraceValueDetected) {
  Bytes image = Assemble(kNoisyGuest);
  auto node = MakeAvmm(image);
  Record(*node, 10);
  LogSegment seg = node->log().Extract(1, node->log().LastSeq());

  // Bob rewrites one recorded clock value and rebuilds the chain (so only
  // replay can catch it). The guest's DEBUG output depends on the value,
  // so replay diverges at the next output event.
  bool patched = false;
  for (LogEntry& e : seg.entries) {
    if (e.type == EntryType::kTraceTime && !patched) {
      TraceEvent ev = TraceEvent::Deserialize(e.content);
      ev.value += 1;
      e.content = ev.Serialize();
      patched = true;
    }
  }
  ASSERT_TRUE(patched);
  Hash256 prev = seg.prior_hash;
  for (LogEntry& e : seg.entries) {
    e.hash = ChainHash(prev, e.seq, e.type, e.content);
    prev = e.hash;
  }
  ReplayResult r = ReplaySegment(seg, image, node->config().mem_size);
  EXPECT_FALSE(r.ok);
}

TEST_F(ReplayFixture, DroppedTraceEventDetected) {
  Bytes image = Assemble(kNoisyGuest);
  auto node = MakeAvmm(image);
  Record(*node, 10);
  LogSegment seg = node->log().Extract(1, node->log().LastSeq());

  // Remove one trace entry and re-chain (rewriting seqs).
  size_t victim = 0;
  for (size_t i = 0; i < seg.entries.size(); i++) {
    if (seg.entries[i].type == EntryType::kTraceOther) {
      victim = i;
      break;
    }
  }
  ASSERT_GT(victim, 0u);
  seg.entries.erase(seg.entries.begin() + static_cast<ptrdiff_t>(victim));
  Hash256 prev = seg.prior_hash;
  uint64_t seq = seg.entries.front().seq;
  for (LogEntry& e : seg.entries) {
    e.seq = seq++;
    e.hash = ChainHash(prev, e.seq, e.type, e.content);
    prev = e.hash;
  }
  ReplayResult r = ReplaySegment(seg, image, node->config().mem_size);
  EXPECT_FALSE(r.ok);
}

// Interrupt-driven guest: async DMA + IRQ injection at exact landmarks.
constexpr char kIrqGuest[] = R"(
    jmp main
    jmp irqh
irqh:
    in r1, IRQ_CAUSE
    in r2, NET_RXLEN
    la r3, RX_BUF
    lw r4, [r3+0]
    out r4, DEBUG
    out r0, NET_RXDONE
    iret
main:
    movi r0, 0
    ei
loop:
    addi r5, 1
    jmp loop
)";

TEST_F(ReplayFixture, AsyncIrqDeliveryReplays) {
  Bytes image = Assemble(kIrqGuest);
  RunConfig cfg = RunConfig::AvmmNoSig();
  cfg.rx_irq = true;
  auto node = MakeAvmm(image, cfg);

  // Inject packets directly into the rx path via a local-loop: use the
  // transport handler by enqueueing guest packets from a fake peer. The
  // simplest faithful route: deliver via the network from a plain sender.
  RunConfig plain = RunConfig::BareHw();
  TamperEvidentLog sender_log("peer");
  AuthenticatorStore sender_auths;
  // Register the peer so addressing checks pass.
  Signer peer_signer("peer", SignatureScheme::kNone, rng);
  registry.RegisterSigner(peer_signer);
  Transport sender("peer", &plain, &sender_log, &peer_signer, &net, &registry, &sender_auths);
  net.AttachHost("peer", &sender);

  SimTime now = 0;
  for (int i = 0; i < 30; i++) {
    if (i % 5 == 2) {
      Bytes pkt;
      PutU32(pkt, static_cast<uint32_t>(0x100 + i));
      sender.SendPacket(now, "solo", pkt);
    }
    net.DeliverUntil(now);
    node->RunQuantum(now, 1000);
    now += 1000;
  }
  node->Finish(now);
  EXPECT_GT(node->stats().guest_packets_delivered, 3u);
  EXPECT_FALSE(node->debug_values().empty());

  ReplayResult r = ReplayAll(*node, image);
  EXPECT_TRUE(r.ok) << r.reason << " at seq " << r.diverged_seq;
}

TEST_F(ReplayFixture, StreamingFeedMatchesBatch) {
  Bytes image = Assemble(kNoisyGuest);
  auto node = MakeAvmm(image);
  for (int i = 0; i < 5; i++) {
    node->PushInput(7);
  }
  Record(*node, 30);

  LogSegment seg = node->log().Extract(1, node->log().LastSeq());
  StreamingReplayer streaming(image, node->config().mem_size);
  // Feed in small chunks, as an online auditor would.
  size_t pos = 0;
  while (pos < seg.entries.size()) {
    size_t n = std::min<size_t>(17, seg.entries.size() - pos);
    std::span<const LogEntry> chunk(seg.entries.data() + pos, n);
    ReplayResult r = streaming.Feed(chunk);
    ASSERT_TRUE(r.ok) << r.reason;
    pos += n;
  }
  ReplayResult final = streaming.Finish();
  EXPECT_TRUE(final.ok);
  EXPECT_EQ(final.replay_icount, node->machine().cpu().icount);
}

TEST_F(ReplayFixture, ClockOptimizationStillReplays) {
  // Busy-wait guest with the §6.5 optimization enabled: delayed clock
  // values are recorded and must replay exactly.
  constexpr char kBusyGuest[] = R"(
      jmp main
      jmp irqh
  irqh:
      iret
  main:
      movi r0, 0
  loop:
      in r1, CLOCK_LO
      la r2, 100000
      bltu r1, r2, loop
      out r1, DEBUG
  done:
      in r1, CLOCK_LO
      jmp done
  )";
  Bytes image = Assemble(kBusyGuest);
  RunConfig cfg = RunConfig::AvmmNoSig();
  cfg.clock_read_optimization = true;
  auto node = MakeAvmm(image, cfg);
  Record(*node, 20);
  EXPECT_GT(node->stats().clock_reads_delayed, 0u);
  ReplayResult r = ReplayAll(*node, image);
  EXPECT_TRUE(r.ok) << r.reason;
}

TEST_F(ReplayFixture, VmRecModeRecordsNothingTamperEvident) {
  Bytes image = Assemble(kNoisyGuest);
  RunConfig cfg = RunConfig::VmRec();
  auto node = MakeAvmm(image, cfg);
  Record(*node, 5);
  EXPECT_EQ(node->log().size(), 0u);           // No TE log...
  EXPECT_GT(node->vmware_equiv_bytes(), 0u);   // ...but plain recording happened.
}

// --- Decoded-cache replay equivalence ---------------------------------
//
// Recording always runs the fast path; these tests replay the same log
// with the decoded cache on and off and require identical ReplayResults,
// so the fast path cannot drift from the reference interpreter anywhere
// in the record->replay loop.

ReplayResult ReplayWithCache(const LogSegment& seg, const Bytes& image, size_t mem_size,
                             bool cache_on) {
  StreamingReplayer r(image, mem_size);
  r.mutable_machine().set_decoded_cache_enabled(cache_on);
  r.Feed(seg.entries);
  return r.Finish();
}

// Replay tier selector: 0 = seed dispatch, 1 = decoded cache, 2 = JIT.
// (ReplayWithCache above leaves the JIT at its default, so its cache_on
// path is the JIT tier where compiled in; this helper pins each tier.)
ReplayResult ReplayWithTier(const LogSegment& seg, const Bytes& image, size_t mem_size, int tier) {
  StreamingReplayer r(image, mem_size);
  r.mutable_machine().set_decoded_cache_enabled(tier >= 1);
  r.mutable_machine().set_jit_enabled(tier >= 2);
  r.Feed(seg.entries);
  return r.Finish();
}

void ExpectSameReplay(const ReplayResult& a, const ReplayResult& b) {
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.reason, b.reason);
  EXPECT_EQ(a.diverged_seq, b.diverged_seq);
  EXPECT_EQ(a.replay_icount, b.replay_icount);
  EXPECT_EQ(a.instructions_replayed, b.instructions_replayed);
}

TEST_F(ReplayFixture, ReplayEquivalentWithCacheOnAndOff) {
  Bytes image = Assemble(kNoisyGuest);
  auto node = MakeAvmm(image);
  for (int i = 0; i < 20; i++) {
    node->PushInput(static_cast<uint32_t>(i + 1));
  }
  Record(*node, 40);
  LogSegment seg = node->log().Extract(1, node->log().LastSeq());
  ReplayResult fast = ReplayWithCache(seg, image, node->config().mem_size, true);
  ReplayResult slow = ReplayWithCache(seg, image, node->config().mem_size, false);
  EXPECT_TRUE(fast.ok) << fast.reason;
  ExpectSameReplay(fast, slow);
  EXPECT_EQ(fast.replay_icount, node->machine().cpu().icount);
}

TEST_F(ReplayFixture, IrqTraceReplayEquivalentWithCacheOnAndOff) {
  Bytes image = Assemble(kIrqGuest);
  RunConfig cfg = RunConfig::AvmmNoSig();
  cfg.rx_irq = true;
  auto node = MakeAvmm(image, cfg);

  RunConfig plain = RunConfig::BareHw();
  TamperEvidentLog sender_log("peer");
  AuthenticatorStore sender_auths;
  Signer peer_signer("peer", SignatureScheme::kNone, rng);
  registry.RegisterSigner(peer_signer);
  Transport sender("peer", &plain, &sender_log, &peer_signer, &net, &registry, &sender_auths);
  net.AttachHost("peer", &sender);

  SimTime now = 0;
  for (int i = 0; i < 30; i++) {
    if (i % 4 == 1) {
      Bytes pkt;
      PutU32(pkt, static_cast<uint32_t>(0x200 + i));
      sender.SendPacket(now, "solo", pkt);
    }
    net.DeliverUntil(now);
    node->RunQuantum(now, 1000);
    now += 1000;
  }
  node->Finish(now);
  ASSERT_GT(node->stats().guest_packets_delivered, 3u);

  LogSegment seg = node->log().Extract(1, node->log().LastSeq());
  ReplayResult fast = ReplayWithCache(seg, image, cfg.mem_size, true);
  ReplayResult slow = ReplayWithCache(seg, image, cfg.mem_size, false);
  EXPECT_TRUE(fast.ok) << fast.reason;
  ExpectSameReplay(fast, slow);
  // The async-IRQ landmarks must also replay identically under the JIT,
  // whose translated blocks skip interrupt polling entirely.
  ExpectSameReplay(ReplayWithTier(seg, image, cfg.mem_size, 2), slow);
}

// A guest that patches its own loop body (addi r1, 1 -> addi r1, 2)
// after reading an input, then emits the accumulator; recording runs
// the fast path, and every replay tier must agree.
constexpr char kPatchingGuest[] = R"(
      jmp main
      jmp irqh
  irqh:
      iret
  main:
      movi r1, 0
      la r3, patch
      la r6, 0x2b100002  ; addi r1, 2
      movi r0, 0
  loop:
  patch:
      addi r1, 1
      in r2, INPUT
      beq r2, r0, skip
      sw r6, [r3]        ; Rewrite the instruction above.
  skip:
      out r1, DEBUG
      movi r4, 50
  spin:
      addi r4, -1
      bne r4, r0, spin
      jmp loop
  )";

TEST_F(ReplayFixture, SelfModifyingGuestRecordsAndReplaysIdentically) {
  Bytes image = Assemble(kPatchingGuest);
  auto node = MakeAvmm(image);
  node->PushInput(7);  // One input: flips the increment mid-run.
  Record(*node, 30);
  ASSERT_FALSE(node->debug_values().empty());

  LogSegment seg = node->log().Extract(1, node->log().LastSeq());
  ReplayResult fast = ReplayWithCache(seg, image, node->config().mem_size, true);
  ReplayResult slow = ReplayWithCache(seg, image, node->config().mem_size, false);
  EXPECT_TRUE(fast.ok) << fast.reason << " at seq " << fast.diverged_seq;
  ExpectSameReplay(fast, slow);
}

TEST_F(ReplayFixture, JitReplayEquivalentAcrossAllTiers) {
  // The same recorded log replayed by all three execution tiers (seed
  // dispatch, decoded cache, JIT) must yield one ReplayResult.
  Bytes image = Assemble(kNoisyGuest);
  auto node = MakeAvmm(image);
  for (int i = 0; i < 20; i++) {
    node->PushInput(static_cast<uint32_t>(3 * i + 1));
  }
  Record(*node, 40);
  LogSegment seg = node->log().Extract(1, node->log().LastSeq());
  ReplayResult seed = ReplayWithTier(seg, image, node->config().mem_size, 0);
  ReplayResult cache = ReplayWithTier(seg, image, node->config().mem_size, 1);
  ReplayResult jit = ReplayWithTier(seg, image, node->config().mem_size, 2);
  EXPECT_TRUE(seed.ok) << seed.reason;
  ExpectSameReplay(jit, seed);
  ExpectSameReplay(cache, seed);
  EXPECT_EQ(jit.replay_icount, node->machine().cpu().icount);
}

TEST_F(ReplayFixture, JitSelfModifyingReplayEquivalent) {
  // The patching guest under the JIT: the recorded writes land in pages
  // holding live translations, so replay exercises the native-store
  // invalidation side exit. All tiers must still agree bit-for-bit.
  Bytes image = Assemble(kPatchingGuest);
  auto node = MakeAvmm(image);
  node->PushInput(7);
  node->PushInput(9);
  Record(*node, 30);
  LogSegment seg = node->log().Extract(1, node->log().LastSeq());
  ReplayResult seed = ReplayWithTier(seg, image, node->config().mem_size, 0);
  ReplayResult jit = ReplayWithTier(seg, image, node->config().mem_size, 2);
  EXPECT_TRUE(jit.ok) << jit.reason << " at seq " << jit.diverged_seq;
  ExpectSameReplay(jit, seed);
}

TEST_F(ReplayFixture, SpotCheckReplayEquivalentWithCacheOnAndOff) {
  Bytes image = Assemble(kNoisyGuest);
  RunConfig cfg = RunConfig::AvmmNoSig();
  cfg.snapshot_interval = 10 * kMicrosPerMilli;
  auto node = MakeAvmm(image, cfg);
  for (int i = 0; i < 40; i++) {
    node->PushInput(static_cast<uint32_t>(i % 5 + 1));
  }
  Record(*node, 50);

  std::vector<std::pair<uint64_t, SnapshotMeta>> snaps;
  for (const LogEntry& e : node->log().entries()) {
    if (e.type == EntryType::kSnapshot) {
      snaps.emplace_back(e.seq, SnapshotMeta::Deserialize(e.content));
    }
  }
  ASSERT_GE(snaps.size(), 4u);
  LogSegment seg = node->log().Extract(snaps[1].first, snaps[3].first);
  MaterializedState start =
      node->snapshot_store().Materialize(snaps[1].second.snapshot_id, cfg.mem_size);
  ReplayResult fast;
  ReplayResult slow;
  for (bool cache_on : {true, false}) {
    StreamingReplayer r(start);
    r.mutable_machine().set_decoded_cache_enabled(cache_on);
    r.Feed(seg.entries);
    (cache_on ? fast : slow) = r.Finish();
  }
  EXPECT_TRUE(fast.ok) << fast.reason;
  ExpectSameReplay(fast, slow);
}

TEST_F(ReplayFixture, SpotCheckFromMidSnapshot) {
  Bytes image = Assemble(kNoisyGuest);
  RunConfig cfg = RunConfig::AvmmNoSig();
  cfg.snapshot_interval = 10 * kMicrosPerMilli;
  auto node = MakeAvmm(image, cfg);
  for (int i = 0; i < 40; i++) {
    node->PushInput(static_cast<uint32_t>(i % 5 + 1));
  }
  Record(*node, 50);

  // Find two mid-log snapshots and replay only the chunk between them.
  std::vector<std::pair<uint64_t, SnapshotMeta>> snaps;
  for (const LogEntry& e : node->log().entries()) {
    if (e.type == EntryType::kSnapshot) {
      snaps.emplace_back(e.seq, SnapshotMeta::Deserialize(e.content));
    }
  }
  ASSERT_GE(snaps.size(), 4u);
  const auto& from = snaps[1];
  const auto& to = snaps[3];
  LogSegment seg = node->log().Extract(from.first, to.first);
  MaterializedState start =
      node->snapshot_store().Materialize(from.second.snapshot_id, cfg.mem_size);
  ReplayResult r = ReplaySegment(seg, start);
  EXPECT_TRUE(r.ok) << r.reason << " at seq " << r.diverged_seq;
  EXPECT_EQ(r.instructions_replayed, to.second.icount - from.second.icount);
}

}  // namespace
}  // namespace avm
