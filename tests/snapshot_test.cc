#include <gtest/gtest.h>

#include "src/avmm/snapshot.h"
#include "src/vm/assembler.h"

namespace avm {
namespace {

constexpr size_t kMem = 64 * 1024;

struct SnapshotFixture : public ::testing::Test {
  SnapshotFixture() : machine(kMem, &backend), mgr(&store) {
    machine.LoadImage(Assemble(R"(
      la r1, 0x5000
      movi r2, 0
loop:
      sw r2, [r1]
      addi r1, 4
      addi r2, 1
      jmp loop
    )"));
  }

  NullBackend backend;
  Machine machine;
  SnapshotStore store;
  SnapshotManager mgr;
};

TEST_F(SnapshotFixture, FirstSnapshotIsFull) {
  SnapshotMeta meta = mgr.Take(machine, 0);
  EXPECT_EQ(meta.snapshot_id, 0u);
  EXPECT_EQ(meta.total_pages, kMem / kPageSize);
  // LoadImage marks everything dirty, so the base stores every page.
  EXPECT_EQ(meta.incremental_pages, kMem / kPageSize);
}

TEST_F(SnapshotFixture, IncrementalSnapshotsOnlyStoreDirtyPages) {
  mgr.Take(machine, 0);
  machine.Run(40);  // Writes a few words into page 5.
  SnapshotMeta meta = mgr.Take(machine, 1000);
  EXPECT_EQ(meta.snapshot_id, 1u);
  EXPECT_EQ(meta.incremental_pages, 1u);
  EXPECT_LT(meta.stored_bytes, 2 * kPageSize);
}

TEST_F(SnapshotFixture, RootMatchesDirectComputation) {
  SnapshotMeta meta = mgr.Take(machine, 0);
  EXPECT_EQ(meta.root, ComputeStateRoot(machine));
}

TEST_F(SnapshotFixture, MaterializeReconstructsExactState) {
  mgr.Take(machine, 0);
  machine.Run(100);
  mgr.Take(machine, 1000);
  machine.Run(5000);
  SnapshotMeta meta = mgr.Take(machine, 2000);

  MaterializedState st = store.Materialize(2, kMem);
  EXPECT_TRUE(st.cpu == machine.cpu());
  EXPECT_EQ(st.root, meta.root);
  EXPECT_TRUE(BytesEqual(st.memory, machine.ReadMemRange(0, kMem)));
}

TEST_F(SnapshotFixture, MaterializeIntermediateSnapshot) {
  mgr.Take(machine, 0);
  machine.Run(100);
  SnapshotMeta mid = mgr.Take(machine, 1000);
  CpuState cpu_at_mid = machine.cpu();
  machine.Run(100000);
  mgr.Take(machine, 2000);

  MaterializedState st = store.Materialize(1, kMem);
  EXPECT_TRUE(st.cpu == cpu_at_mid);
  EXPECT_EQ(st.root, mid.root);
}

TEST_F(SnapshotFixture, RootChangesWithMemory) {
  SnapshotMeta a = mgr.Take(machine, 0);
  machine.Run(10);
  SnapshotMeta b = mgr.Take(machine, 1);
  EXPECT_NE(a.root, b.root);
}

TEST_F(SnapshotFixture, RootCoversCpuState) {
  Hash256 before = ComputeStateRoot(machine);
  machine.mutable_cpu().regs[7] ^= 0xdead;
  EXPECT_NE(ComputeStateRoot(machine), before);
}

TEST_F(SnapshotFixture, TransferBytesExcludeBaseImage) {
  mgr.Take(machine, 0);
  EXPECT_EQ(store.TransferBytesUpTo(0), 0u);
  machine.Run(50);
  SnapshotMeta m1 = mgr.Take(machine, 1);
  machine.Run(50);
  SnapshotMeta m2 = mgr.Take(machine, 2);
  EXPECT_EQ(store.TransferBytesUpTo(2), m1.stored_bytes + m2.stored_bytes);
}

TEST_F(SnapshotFixture, DeltaSerializationRoundTrip) {
  mgr.Take(machine, 0);
  machine.Run(30);
  mgr.Take(machine, 7);
  const SnapshotDelta& d = store.Get(1);
  SnapshotDelta restored = SnapshotDelta::Deserialize(d.Serialize());
  EXPECT_EQ(restored.meta.snapshot_id, 1u);
  EXPECT_EQ(restored.meta.root, d.meta.root);
  EXPECT_EQ(restored.pages.size(), d.pages.size());
  EXPECT_EQ(restored.cpu_state, d.cpu_state);
}

TEST_F(SnapshotFixture, MetaSerializationRoundTrip) {
  SnapshotMeta meta = mgr.Take(machine, 123456);
  SnapshotMeta restored = SnapshotMeta::Deserialize(meta.Serialize());
  EXPECT_EQ(restored.snapshot_id, meta.snapshot_id);
  EXPECT_EQ(restored.icount, meta.icount);
  EXPECT_EQ(restored.sim_time, 123456u);
  EXPECT_EQ(restored.root, meta.root);
  EXPECT_EQ(restored.stored_bytes, meta.stored_bytes);
}

TEST_F(SnapshotFixture, StoreRejectsDuplicatesAndUnknown) {
  mgr.Take(machine, 0);
  SnapshotDelta dup = store.Get(0);
  EXPECT_THROW(store.Add(dup), std::invalid_argument);
  EXPECT_THROW(store.Get(9), std::out_of_range);
  EXPECT_THROW(store.Materialize(9, kMem), std::out_of_range);
  EXPECT_FALSE(store.Has(9));
  EXPECT_TRUE(store.Has(0));
}

TEST_F(SnapshotFixture, TamperedPageChangesMaterializedRoot) {
  mgr.Take(machine, 0);
  machine.Run(20);
  SnapshotMeta meta = mgr.Take(machine, 1);

  SnapshotStore tampered;
  tampered.Add(store.Get(0));
  SnapshotDelta d = store.Get(1);
  ASSERT_FALSE(d.pages.empty());
  d.pages[0].second[100] ^= 0xff;
  tampered.Add(std::move(d));

  MaterializedState st = tampered.Materialize(1, kMem);
  // The auditor recomputes the root and sees it differs from the logged
  // commitment: the downloaded snapshot cannot be authenticated.
  EXPECT_NE(st.root, meta.root);
}

TEST(ComputeStateRoot, RequiresPageAlignedMemory) {
  CpuState cpu;
  Bytes mem(kPageSize + 1, 0);
  EXPECT_THROW(ComputeStateRoot(cpu, mem), std::invalid_argument);
}

}  // namespace
}  // namespace avm
