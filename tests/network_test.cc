#include <gtest/gtest.h>

#include "src/net/network.h"

namespace avm {
namespace {

struct Sink : public NetworkDelegate {
  void OnFrame(SimTime now, const NodeId& src, ByteView frame) override {
    received.push_back({now, src, Bytes(frame.begin(), frame.end())});
  }
  struct Rx {
    SimTime at;
    NodeId src;
    Bytes frame;
  };
  std::vector<Rx> received;
};

TEST(SimNetwork, DeliversAfterLatency) {
  SimNetwork net;
  net.SetDefaultLatency(100);
  Sink a, b;
  net.AttachHost("a", &a);
  net.AttachHost("b", &b);
  net.SendFrame(1000, "a", "b", ToBytes("hello"));
  net.DeliverUntil(1099);
  EXPECT_TRUE(b.received.empty());
  net.DeliverUntil(1100);
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].at, 1100u);
  EXPECT_EQ(b.received[0].src, "a");
  EXPECT_EQ(ToString(b.received[0].frame), "hello");
}

TEST(SimNetwork, FifoOrderForEqualTimestamps) {
  SimNetwork net;
  net.SetDefaultLatency(10);
  Sink b;
  net.AttachHost("b", &b);
  for (int i = 0; i < 5; i++) {
    net.SendFrame(0, "a", "b", Bytes{static_cast<uint8_t>(i)});
  }
  net.DeliverUntil(10);
  ASSERT_EQ(b.received.size(), 5u);
  for (int i = 0; i < 5; i++) {
    EXPECT_EQ(b.received[static_cast<size_t>(i)].frame[0], i);
  }
}

TEST(SimNetwork, PerLinkLatencyOverride) {
  SimNetwork net;
  net.SetDefaultLatency(100);
  net.SetLinkLatency("a", "b", 5);
  Sink b, c;
  net.AttachHost("b", &b);
  net.AttachHost("c", &c);
  net.SendFrame(0, "a", "b", ToBytes("x"));
  net.SendFrame(0, "a", "c", ToBytes("y"));
  net.DeliverUntil(5);
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_TRUE(c.received.empty());
  net.DeliverUntil(100);
  EXPECT_EQ(c.received.size(), 1u);
}

TEST(SimNetwork, DropRateDropsFrames) {
  SimNetwork net(99);
  net.SetDropRate(1.0);
  Sink b;
  net.AttachHost("b", &b);
  for (int i = 0; i < 10; i++) {
    net.SendFrame(0, "a", "b", ToBytes("x"));
  }
  net.DeliverUntil(1000000);
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.StatsFor("a").frames_dropped, 10u);
}

TEST(SimNetwork, PartialDropRateStatistics) {
  SimNetwork net(7);
  net.SetDropRate(0.5);
  Sink b;
  net.AttachHost("b", &b);
  for (int i = 0; i < 1000; i++) {
    net.SendFrame(0, "a", "b", ToBytes("x"));
  }
  net.DeliverUntil(1000000);
  EXPECT_GT(b.received.size(), 350u);
  EXPECT_LT(b.received.size(), 650u);
}

TEST(SimNetwork, PartitionBlocksBothDirections) {
  SimNetwork net;
  Sink a, b;
  net.AttachHost("a", &a);
  net.AttachHost("b", &b);
  net.SetPartitioned("a", "b", true);
  net.SendFrame(0, "a", "b", ToBytes("x"));
  net.SendFrame(0, "b", "a", ToBytes("y"));
  net.DeliverUntil(1000000);
  EXPECT_TRUE(a.received.empty());
  EXPECT_TRUE(b.received.empty());
  net.SetPartitioned("a", "b", false);
  net.SendFrame(2000000, "a", "b", ToBytes("z"));
  net.DeliverUntil(3000000);
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(SimNetwork, TrafficAccounting) {
  SimNetwork net;
  Sink b;
  net.AttachHost("b", &b);
  net.SendFrame(0, "a", "b", Bytes(100, 0));
  net.SendFrame(0, "a", "b", Bytes(50, 0));
  net.DeliverUntil(1000);
  const TrafficStats& sa = net.StatsFor("a");
  EXPECT_EQ(sa.frames_sent, 2u);
  EXPECT_EQ(sa.bytes_sent, 150u);
  const TrafficStats& sb = net.StatsFor("b");
  EXPECT_EQ(sb.frames_received, 2u);
  EXPECT_EQ(sb.bytes_received, 150u);
  TrafficStats total = net.TotalStats();
  EXPECT_EQ(total.bytes_sent, 150u);
}

TEST(SimNetwork, FrameToUnknownHostIsLost) {
  SimNetwork net;
  net.SendFrame(0, "a", "ghost", ToBytes("x"));
  EXPECT_NO_THROW(net.DeliverUntil(1000000));
}

TEST(SimNetwork, DetachedHostStopsReceiving) {
  SimNetwork net;
  Sink b;
  net.AttachHost("b", &b);
  net.SendFrame(0, "a", "b", ToBytes("x"));
  net.DetachHost("b");
  net.DeliverUntil(1000000);
  EXPECT_TRUE(b.received.empty());
}

TEST(SimNetwork, NextDeliveryTime) {
  SimNetwork net;
  net.SetDefaultLatency(42);
  Sink b;
  net.AttachHost("b", &b);
  EXPECT_FALSE(net.HasPending());
  EXPECT_THROW(net.NextDeliveryTime(), std::logic_error);
  net.SendFrame(10, "a", "b", ToBytes("x"));
  EXPECT_TRUE(net.HasPending());
  EXPECT_EQ(net.NextDeliveryTime(), 52u);
}

}  // namespace
}  // namespace avm
