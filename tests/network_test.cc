#include <gtest/gtest.h>

#include "src/net/network.h"

namespace avm {
namespace {

struct Sink : public NetworkDelegate {
  void OnFrame(SimTime now, const NodeId& src, ByteView frame) override {
    received.push_back({now, src, Bytes(frame.begin(), frame.end())});
  }
  struct Rx {
    SimTime at;
    NodeId src;
    Bytes frame;
  };
  std::vector<Rx> received;
};

TEST(SimNetwork, DeliversAfterLatency) {
  SimNetwork net;
  net.SetDefaultLatency(100);
  Sink a, b;
  net.AttachHost("a", &a);
  net.AttachHost("b", &b);
  net.SendFrame(1000, "a", "b", ToBytes("hello"));
  net.DeliverUntil(1099);
  EXPECT_TRUE(b.received.empty());
  net.DeliverUntil(1100);
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].at, 1100u);
  EXPECT_EQ(b.received[0].src, "a");
  EXPECT_EQ(ToString(b.received[0].frame), "hello");
}

TEST(SimNetwork, FifoOrderForEqualTimestamps) {
  SimNetwork net;
  net.SetDefaultLatency(10);
  Sink b;
  net.AttachHost("b", &b);
  for (int i = 0; i < 5; i++) {
    net.SendFrame(0, "a", "b", Bytes{static_cast<uint8_t>(i)});
  }
  net.DeliverUntil(10);
  ASSERT_EQ(b.received.size(), 5u);
  for (int i = 0; i < 5; i++) {
    EXPECT_EQ(b.received[static_cast<size_t>(i)].frame[0], i);
  }
}

TEST(SimNetwork, PerLinkLatencyOverride) {
  SimNetwork net;
  net.SetDefaultLatency(100);
  net.SetLinkLatency("a", "b", 5);
  Sink b, c;
  net.AttachHost("b", &b);
  net.AttachHost("c", &c);
  net.SendFrame(0, "a", "b", ToBytes("x"));
  net.SendFrame(0, "a", "c", ToBytes("y"));
  net.DeliverUntil(5);
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_TRUE(c.received.empty());
  net.DeliverUntil(100);
  EXPECT_EQ(c.received.size(), 1u);
}

TEST(SimNetwork, DropRateDropsFrames) {
  SimNetwork net(99);
  net.SetDropRate(1.0);
  Sink b;
  net.AttachHost("b", &b);
  for (int i = 0; i < 10; i++) {
    net.SendFrame(0, "a", "b", ToBytes("x"));
  }
  net.DeliverUntil(1000000);
  EXPECT_TRUE(b.received.empty());
  // Drops are charged to the destination (the frame was lost on its way
  // to b), so b's accounting closes: addressed == received + dropped.
  EXPECT_EQ(net.StatsFor("b").frames_dropped, 10u);
  EXPECT_EQ(net.StatsFor("a").frames_dropped, 0u);
}

TEST(SimNetwork, PartialDropRateStatistics) {
  SimNetwork net(7);
  net.SetDropRate(0.5);
  Sink b;
  net.AttachHost("b", &b);
  for (int i = 0; i < 1000; i++) {
    net.SendFrame(0, "a", "b", ToBytes("x"));
  }
  net.DeliverUntil(1000000);
  EXPECT_GT(b.received.size(), 350u);
  EXPECT_LT(b.received.size(), 650u);
}

TEST(SimNetwork, PartitionBlocksBothDirections) {
  SimNetwork net;
  Sink a, b;
  net.AttachHost("a", &a);
  net.AttachHost("b", &b);
  net.SetPartitioned("a", "b", true);
  net.SendFrame(0, "a", "b", ToBytes("x"));
  net.SendFrame(0, "b", "a", ToBytes("y"));
  net.DeliverUntil(1000000);
  EXPECT_TRUE(a.received.empty());
  EXPECT_TRUE(b.received.empty());
  net.SetPartitioned("a", "b", false);
  net.SendFrame(2000000, "a", "b", ToBytes("z"));
  net.DeliverUntil(3000000);
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(SimNetwork, TrafficAccounting) {
  SimNetwork net;
  Sink b;
  net.AttachHost("b", &b);
  net.SendFrame(0, "a", "b", Bytes(100, 0));
  net.SendFrame(0, "a", "b", Bytes(50, 0));
  net.DeliverUntil(1000);
  const TrafficStats& sa = net.StatsFor("a");
  EXPECT_EQ(sa.frames_sent, 2u);
  EXPECT_EQ(sa.bytes_sent, 150u);
  const TrafficStats& sb = net.StatsFor("b");
  EXPECT_EQ(sb.frames_received, 2u);
  EXPECT_EQ(sb.bytes_received, 150u);
  TrafficStats total = net.TotalStats();
  EXPECT_EQ(total.bytes_sent, 150u);
}

TEST(SimNetwork, FrameToUnknownHostIsLost) {
  SimNetwork net;
  net.SendFrame(0, "a", "ghost", ToBytes("x"));
  EXPECT_NO_THROW(net.DeliverUntil(1000000));
}

TEST(SimNetwork, DetachedHostStopsReceiving) {
  SimNetwork net;
  Sink b;
  net.AttachHost("b", &b);
  net.SendFrame(0, "a", "b", ToBytes("x"));
  net.DetachHost("b");
  net.DeliverUntil(1000000);
  EXPECT_TRUE(b.received.empty());
  // Regression: the in-flight frame to the detached host must be
  // accounted as dropped, not silently lost.
  EXPECT_EQ(net.StatsFor("b").frames_dropped, 1u);
}

// §6.7 regression: with every loss class in play — random drops, a
// partition, and a host that detached with frames in flight — the
// global totals must close exactly: sent == received + dropped, and per
// node: frames addressed to it == received + dropped.
TEST(SimNetwork, TrafficTotalsCloseUnderAllLossClasses) {
  SimNetwork net(1234);
  net.SetDefaultLatency(10);
  Sink a, b, c;
  net.AttachHost("a", &a);
  net.AttachHost("b", &b);
  net.AttachHost("c", &c);

  net.SetDropRate(0.3);
  uint64_t to_b = 0, to_c = 0;
  for (int i = 0; i < 200; i++) {
    net.SendFrame(static_cast<SimTime>(i), "a", "b", ToBytes("x"));
    to_b++;
  }
  net.SetDropRate(0.0);
  net.SetPartitioned("a", "c", true);
  for (int i = 0; i < 50; i++) {
    net.SendFrame(static_cast<SimTime>(i), "a", "c", ToBytes("y"));
    to_c++;
  }
  net.SetPartitioned("a", "c", false);
  // Frames still in flight when the destination detaches.
  for (int i = 0; i < 25; i++) {
    net.SendFrame(1000, "b", "c", ToBytes("z"));
    to_c++;
  }
  net.DeliverUntil(500);  // Deliver a->b traffic; b->c still queued.
  net.DetachHost("c");
  net.DeliverUntil(1u << 20);

  TrafficStats total = net.TotalStats();
  EXPECT_EQ(total.frames_sent, 275u);
  EXPECT_EQ(total.frames_sent, total.frames_received + total.frames_dropped);
  const TrafficStats& sb = net.StatsFor("b");
  EXPECT_EQ(to_b, sb.frames_received + sb.frames_dropped);
  const TrafficStats& sc = net.StatsFor("c");
  EXPECT_EQ(sc.frames_received, 0u);
  EXPECT_EQ(sc.frames_dropped, to_c);
}

// Regression for the move-out-of-the-priority-queue delivery path: the
// delivery order across mixed timestamps and FIFO ties must be exactly
// the schedule order, and payloads must arrive intact.
TEST(SimNetwork, MoveDeliveryPreservesOrderAndPayloads) {
  SimNetwork net;
  net.SetDefaultLatency(0);
  Sink b;
  net.AttachHost("b", &b);
  // Schedule out of order: timestamps 5,5,3,9,3,5 with payload ids.
  const SimTime at[] = {5, 5, 3, 9, 3, 5};
  for (int i = 0; i < 6; i++) {
    Bytes payload(100, static_cast<uint8_t>(i));  // Big enough to heap-allocate.
    net.SendFrame(at[i], "a", "b", std::move(payload));
  }
  net.DeliverUntil(100);
  ASSERT_EQ(b.received.size(), 6u);
  // Expected: by timestamp, FIFO within equal timestamps.
  const uint8_t expect_ids[] = {2, 4, 0, 1, 5, 3};
  const SimTime expect_at[] = {3, 3, 5, 5, 5, 9};
  for (size_t i = 0; i < 6; i++) {
    EXPECT_EQ(b.received[i].at, expect_at[i]) << i;
    ASSERT_EQ(b.received[i].frame.size(), 100u);
    EXPECT_EQ(b.received[i].frame[0], expect_ids[i]) << i;
    EXPECT_EQ(b.received[i].frame[99], expect_ids[i]) << i;
  }
}

TEST(SimNetwork, NextDeliveryTime) {
  SimNetwork net;
  net.SetDefaultLatency(42);
  Sink b;
  net.AttachHost("b", &b);
  EXPECT_FALSE(net.HasPending());
  EXPECT_THROW(net.NextDeliveryTime(), std::logic_error);
  net.SendFrame(10, "a", "b", ToBytes("x"));
  EXPECT_TRUE(net.HasPending());
  EXPECT_EQ(net.NextDeliveryTime(), 52u);
}

}  // namespace
}  // namespace avm
