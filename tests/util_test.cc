#include <gtest/gtest.h>

#include "src/util/bytes.h"
#include "src/util/prng.h"
#include "src/util/serde.h"

namespace avm {
namespace {

TEST(Bytes, HexRoundTrip) {
  Bytes b = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(HexEncode(b), "0001abff");
  EXPECT_EQ(HexDecode("0001abff"), b);
  EXPECT_EQ(HexDecode("0001ABFF"), b);
}

TEST(Bytes, HexDecodeRejectsBadInput) {
  EXPECT_THROW(HexDecode("abc"), std::invalid_argument);
  EXPECT_THROW(HexDecode("zz"), std::invalid_argument);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(HexEncode(Bytes{}), "");
  EXPECT_TRUE(HexDecode("").empty());
}

TEST(Bytes, PutGetIntegers) {
  Bytes b;
  PutU16(b, 0x1234);
  PutU32(b, 0xdeadbeef);
  PutU64(b, 0x0123456789abcdefULL);
  EXPECT_EQ(b.size(), 14u);
  EXPECT_EQ(GetU16(b, 0), 0x1234);
  EXPECT_EQ(GetU32(b, 2), 0xdeadbeefu);
  EXPECT_EQ(GetU64(b, 6), 0x0123456789abcdefULL);
}

TEST(Bytes, LittleEndianLayout) {
  Bytes b;
  PutU32(b, 0x01020304);
  EXPECT_EQ(b[0], 0x04);
  EXPECT_EQ(b[3], 0x01);
}

TEST(Bytes, EqualAndAppend) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2};
  EXPECT_TRUE(BytesEqual(a, b));
  EXPECT_FALSE(BytesEqual(a, c));
  Append(c, Bytes{3});
  EXPECT_TRUE(BytesEqual(a, c));
}

TEST(Bytes, StringConversion) {
  EXPECT_EQ(ToString(ToBytes("hello")), "hello");
  EXPECT_EQ(ToBytes("").size(), 0u);
}

TEST(Serde, RoundTripAllTypes) {
  Writer w;
  w.U8(0xab);
  w.U16(0x1234);
  w.U32(0xdeadbeef);
  w.U64(42);
  w.Blob(ToBytes("payload"));
  w.Str("name");
  Bytes data = w.Take();

  Reader r(data);
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U16(), 0x1234);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 42u);
  EXPECT_EQ(ToString(r.Blob()), "payload");
  EXPECT_EQ(r.Str(), "name");
  EXPECT_TRUE(r.AtEnd());
  EXPECT_NO_THROW(r.ExpectEnd());
}

TEST(Serde, TruncationThrows) {
  Writer w;
  w.U32(7);
  Bytes data = w.Take();
  data.pop_back();
  Reader r(data);
  EXPECT_THROW(r.U32(), SerdeError);
}

TEST(Serde, BlobLengthBeyondBufferThrows) {
  Writer w;
  w.U32(1000);  // Length prefix with no payload behind it.
  Bytes data = w.Take();
  Reader r(data);
  EXPECT_THROW(r.Blob(), SerdeError);
}

TEST(Serde, TrailingBytesDetected) {
  Writer w;
  w.U8(1);
  w.U8(2);
  Bytes data = w.Take();
  Reader r(data);
  r.U8();
  EXPECT_THROW(r.ExpectEnd(), SerdeError);
}

TEST(Prng, DeterministicAcrossInstances) {
  Prng a(123), b(123);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Prng, DifferentSeedsDiffer) {
  Prng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; i++) {
    if (a.Next() == b.Next()) {
      same++;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Prng, BelowStaysInRange) {
  Prng p(9);
  for (int i = 0; i < 1000; i++) {
    EXPECT_LT(p.Below(17), 17u);
  }
}

TEST(Prng, RangeInclusive) {
  Prng p(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; i++) {
    uint64_t v = p.Range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Prng, ChanceExtremes) {
  Prng p(4);
  for (int i = 0; i < 100; i++) {
    EXPECT_FALSE(p.Chance(0.0));
    EXPECT_TRUE(p.Chance(1.0));
  }
}

TEST(Prng, ChanceRoughlyCalibrated) {
  Prng p(11);
  int hits = 0;
  for (int i = 0; i < 10000; i++) {
    if (p.Chance(0.25)) {
      hits++;
    }
  }
  EXPECT_GT(hits, 2200);
  EXPECT_LT(hits, 2800);
}

}  // namespace
}  // namespace avm
