// The chaos sweep: composed, multi-layer fault scenarios driven by one
// declarative FaultPlan, each asserting the paper's universal
// guarantee — *evidence or an honest verdict, never a silent pass* —
// while the hardened FleetAuditService retries, recovers and
// quarantines its way through the injected faults.
//
// Every scenario derives all nondeterminism from one root seed
// (parameterized; override with AVM_CHAOS_SEED=7,21,...). A failing
// assertion prints the reproducing seed via SCOPED_TRACE, and TearDown
// drops a repro file into AVM_CHAOS_ARTIFACT_DIR (default
// "chaos-artifacts") with the seed and the exact plan.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/audit/fleet.h"
#include "src/chaos/adversary.h"
#include "src/chaos/fault_plan.h"
#include "src/sim/scenario.h"
#include "src/store/log_store.h"

namespace avm {
namespace {

namespace fs = std::filesystem;
using chaos::FaultEvent;
using chaos::FaultInjector;
using chaos::FaultPlan;
using chaos::FaultType;

std::string TempDir(const std::string& name) {
  std::string dir = (fs::temp_directory_path() / ("avm_chaos_" + name)).string();
  fs::remove_all(dir);
  return dir;
}

// Same verdict-equality contract as the fleet tests: everything an
// operator acts on must match bit for bit.
void ExpectSameVerdict(const AuditOutcome& a, const AuditOutcome& b, const std::string& what) {
  EXPECT_EQ(a.ok, b.ok) << what;
  EXPECT_EQ(a.syntactic.ok, b.syntactic.ok) << what;
  EXPECT_EQ(a.syntactic.reason, b.syntactic.reason) << what;
  EXPECT_EQ(a.syntactic.bad_seq, b.syntactic.bad_seq) << what;
  EXPECT_EQ(a.semantic.ok, b.semantic.ok) << what;
  EXPECT_EQ(a.semantic.reason, b.semantic.reason) << what;
  EXPECT_EQ(a.semantic.diverged_seq, b.semantic.diverged_seq) << what;
  EXPECT_EQ(a.evidence.has_value(), b.evidence.has_value()) << what;
  if (a.evidence.has_value() && b.evidence.has_value()) {
    EXPECT_EQ(static_cast<int>(a.evidence->kind), static_cast<int>(b.evidence->kind)) << what;
    EXPECT_EQ(a.evidence->accused, b.evidence->accused) << what;
  }
}

AuditConfig SeqCfg() {
  AuditConfig cfg;
  cfg.threads = 1;
  cfg.pipelined = false;
  return cfg;
}

std::vector<uint64_t> ChaosSeeds() {
  std::vector<uint64_t> seeds;
  const char* env = std::getenv("AVM_CHAOS_SEED");
  if (env != nullptr && *env != '\0') {
    std::string s(env);
    size_t pos = 0;
    while (pos < s.size()) {
      size_t comma = s.find(',', pos);
      if (comma == std::string::npos) {
        comma = s.size();
      }
      seeds.push_back(std::strtoull(s.substr(pos, comma - pos).c_str(), nullptr, 10));
      pos = comma + 1;
    }
  }
  if (seeds.empty()) {
    seeds.push_back(7);
  }
  return seeds;
}

class ChaosTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    std::ostringstream msg;
    msg << "chaos root seed = " << GetParam() << " (rerun: AVM_CHAOS_SEED=" << GetParam()
        << " ./chaos_test)";
    trace_.emplace(__FILE__, __LINE__, msg.str());
  }

  // Record the plan under test so a failure's artifact names the exact
  // schedule, not just the seed.
  void NotePlan(const FaultPlan& plan) { plans_ += plan.Describe() + "\n"; }

  void TearDown() override {
    trace_.reset();
    if (!HasFailure()) {
      return;
    }
    const char* env = std::getenv("AVM_CHAOS_ARTIFACT_DIR");
    fs::path dir = (env != nullptr && *env != '\0') ? fs::path(env) : fs::path("chaos-artifacts");
    std::error_code ec;
    fs::create_directories(dir, ec);
    const ::testing::TestInfo* info = ::testing::UnitTest::GetInstance()->current_test_info();
    std::string name = std::string(info->test_suite_name()) + "." + info->name();
    for (char& c : name) {
      if (c == '/') {
        c = '_';
      }
    }
    std::ofstream out(dir / (name + ".repro.txt"));
    out << "test: " << info->test_suite_name() << "." << info->name() << "\n"
        << "seed: " << GetParam() << "\n"
        << "rerun: AVM_CHAOS_SEED=" << GetParam() << " ./chaos_test --gtest_filter='"
        << info->test_suite_name() << "." << info->name() << "'\n"
        << "plans:\n"
        << plans_;
  }

  uint64_t seed() const { return GetParam(); }

 private:
  std::optional<::testing::ScopedTrace> trace_;
  std::string plans_;
};

// A finished kv run teed into a LogStore whose fault hook is plan-
// driven. `crashed` reports whether the run itself died on an injected
// store fault (the tee propagates the StoreError into RunFor).
struct ChaosKvRun {
  ChaosKvRun(uint64_t seed, const std::string& dir_name, FaultInjector* injector,
             bool hook_store, SimTime duration, RunConfig run = RunConfig::AvmmNoSig()) {
    dir = TempDir(dir_name);
    KvScenarioConfig cfg;
    cfg.run = run;
    cfg.seed = seed;
    cfg.chaos = injector;
    scenario = std::make_unique<KvScenario>(cfg);
    scenario->Start();
    LogStoreOptions opts;
    opts.sync = false;
    if (hook_store && injector != nullptr) {
      opts.fault_hook = injector->StoreHook("kvserver");
    }
    store = LogStore::Open(dir, "kvserver", opts);
    scenario->server().SpillTo(store.get());
    try {
      scenario->RunFor(duration);
      scenario->Finish();
      store->Flush();
    } catch (const StoreError& e) {
      crashed = true;
      crash_what = e.what();
    }
  }
  ~ChaosKvRun() {
    if (scenario != nullptr) {
      scenario->server().SpillTo(nullptr);
    }
    store.reset();
    scenario.reset();
    std::error_code ec;
    fs::remove_all(dir, ec);
  }

  std::string dir;
  std::unique_ptr<KvScenario> scenario;
  std::unique_ptr<LogStore> store;
  bool crashed = false;
  std::string crash_what;
};

// --------------------------------------------------------------------------
// 1. store crash -> auditee serves an equivocating fork of the surviving
//    prefix (layers: store + avmm).
TEST_P(ChaosTest, CrashThenEquivocate) {
  FaultPlan plan;
  plan.seed = chaos::DeriveSeed(seed(), "crash-then-equivocate");
  FaultEvent crash;
  crash.type = FaultType::kStoreCrashPoint;
  crash.when.site = "append-write";
  crash.when.node = "kvserver";
  crash.when.from_seq = 600;  // Let a meaningful prefix accumulate first.
  crash.when.max_fires = 1;
  plan.Add(crash);
  FaultEvent fork;
  fork.type = FaultType::kAvmmEquivocate;
  fork.when.node = "kvserver";
  fork.seq = 0;  // Mid-prefix, picked by the adversary.
  plan.Add(fork);
  NotePlan(plan);
  FaultInjector injector(plan);

  ChaosKvRun run(seed(), "crash_equivocate", &injector, /*hook_store=*/true,
                 3 * kMicrosPerSecond);
  ASSERT_TRUE(run.crashed) << "the injected append crash must surface";
  EXPECT_NE(run.crash_what.find("injected crash"), std::string::npos) << run.crash_what;
  EXPECT_EQ(injector.fires(0), 1u);

  // Crash recovery: reopen the store; the surviving prefix is intact.
  run.scenario->server().SpillTo(nullptr);
  run.store.reset();
  LogStoreOptions clean;
  clean.sync = false;
  run.store = LogStore::Open(run.dir, clean);
  // The crash fired on entry 600's append, so exactly 599 survive.
  const uint64_t prefix = run.store->LastSeq();
  ASSERT_EQ(prefix, 599u);

  // An honest audit of the surviving prefix passes: peers' auths
  // filtered to the prefix plus a fresh prefix commitment (§4.3).
  std::vector<Authenticator> auths;
  for (const Authenticator& a : run.scenario->CollectAuthsForServer()) {
    if (a.seq <= prefix) {
      auths.push_back(a);
    }
  }
  auths.push_back(run.scenario->server().CommitLogAt(prefix));
  Auditor ref("auditor", &run.scenario->registry(), SeqCfg());
  AuditOutcome honest = ref.AuditFull(run.scenario->server(), *run.store,
                                      run.scenario->reference_server_image(), auths);
  EXPECT_TRUE(honest.ok) << honest.Describe();

  // The same machine now serves a self-consistent fork of that prefix.
  // The fork contradicts the issued authenticators: evidence, not a
  // silent pass.
  chaos::AdversarialSource adversary(*run.store);
  ASSERT_EQ(adversary.ApplyDue(injector, run.scenario->now()), 1u);
  AuditOutcome forked = ref.AuditFull(run.scenario->server(), adversary,
                                      run.scenario->reference_server_image(), auths);
  EXPECT_FALSE(forked.ok) << "equivocation after a crash must be caught";
  EXPECT_FALSE(forked.syntactic.ok && forked.semantic.ok);
}

// --------------------------------------------------------------------------
// 2. a mid-run partition heals, then the auditee rewinds its log while
//    the fleet's online session watches (layers: net + avmm).
TEST_P(ChaosTest, RewindMidAuditUnderPartition) {
  FaultPlan plan;
  plan.seed = chaos::DeriveSeed(seed(), "rewind-partition");
  FaultEvent part;
  part.type = FaultType::kNetPartition;
  part.a = "kvserver";
  part.b = "kvclient";
  part.when.after_us = 200 * kMicrosPerMilli;
  part.when.before_us = 500 * kMicrosPerMilli;
  plan.Add(part);
  FaultEvent rewind;
  rewind.type = FaultType::kAvmmRewind;
  rewind.when.node = "kvserver";
  rewind.seq = 0;  // Mid-log.
  plan.Add(rewind);
  NotePlan(plan);
  FaultInjector injector(plan);

  ChaosKvRun run(seed(), "rewind_partition", &injector, /*hook_store=*/false,
                 2 * kMicrosPerSecond);
  ASSERT_FALSE(run.crashed);
  EXPECT_GT(injector.fires(0), 0u) << "the partition must have dropped frames";

  // The healed run is honestly auditable despite the partition: the
  // transport retransmitted through it (§4.1 assumption 1).
  std::vector<Authenticator> auths = run.scenario->CollectAuthsForServer();
  Auditor ref("auditor", &run.scenario->registry(), SeqCfg());
  AuditOutcome clean = ref.AuditFull(run.scenario->server(), *run.store,
                                     run.scenario->reference_server_image(), auths);
  EXPECT_TRUE(clean.ok) << clean.Describe();

  // The fleet's online session is mid-audit (one poll in) when the
  // auditee rewinds the very source object it serves.
  chaos::AdversarialSource adversary(*run.store);
  FleetAuditConfig fcfg;
  fcfg.workers = 1;
  fcfg.audit = SeqCfg();
  FleetAuditService service(&run.scenario->registry(), fcfg);
  FleetAuditService::Registration reg;
  reg.node = "kv/server";
  reg.target = &run.scenario->server();
  reg.source = &adversary;
  reg.reference_image = run.scenario->reference_server_image();
  reg.auths = auths;
  service.RegisterAuditee(std::move(reg));

  uint64_t poll1 = service.SubmitOnlinePoll("kv/server");
  service.Drain();
  ASSERT_TRUE(service.Result(poll1).has_value());
  EXPECT_EQ(service.Result(poll1)->online_status, OnlinePollStatus::kAdvanced);

  const uint64_t before = adversary.LastSeq();
  ASSERT_EQ(adversary.ApplyDue(injector, run.scenario->now()), 1u);
  ASSERT_LT(adversary.LastSeq(), before);

  uint64_t poll2 = service.SubmitOnlinePoll("kv/server");
  service.Drain();
  ASSERT_TRUE(service.Result(poll2).has_value());
  EXPECT_EQ(service.Result(poll2)->online_status, OnlinePollStatus::kTargetRewound)
      << "a rewind mid-audit must surface as its own status";
  EXPECT_EQ(service.stats().targets_rewound, 1u);

  // And a full audit of the rewound log is an honest failure — the
  // issued authenticators reach past its new end.
  uint64_t full = service.SubmitFullAudit("kv/server");
  service.Drain();
  ASSERT_TRUE(service.Result(full).has_value());
  EXPECT_FALSE(service.Result(full)->outcome.ok) << "rewound log must never audit clean";
}

// --------------------------------------------------------------------------
// 3. two colluding auditees serve equivocating forks while the network
//    drops frames (layers: net + avmm + fleet).
TEST_P(ChaosTest, ColludingAuditeesUnderLoss) {
  FaultPlan plan;
  plan.seed = chaos::DeriveSeed(seed(), "colluders");
  FaultEvent drop;
  drop.type = FaultType::kNetDrop;
  drop.when.probability = 0.02;
  drop.when.before_us = 1200 * kMicrosPerMilli;  // Let Finish() settle cleanly.
  plan.Add(drop);
  for (const char* node : {"player1", "player2"}) {
    FaultEvent fork;
    fork.type = FaultType::kAvmmEquivocate;
    fork.when.node = node;
    fork.seq = 0;
    plan.Add(fork);
  }
  NotePlan(plan);
  FaultInjector injector(plan);

  FleetScenarioConfig cfg;
  cfg.run = RunConfig::AvmmNoSig();
  cfg.num_games = 1;
  cfg.players_per_game = 2;
  cfg.num_kv = 1;
  cfg.seed = seed();
  cfg.game.client.render_iters = 300;
  cfg.chaos = &injector;
  FleetScenario fleet(cfg);
  fleet.Start();
  std::string base = TempDir("colluders");
  fleet.SpillLogsTo(base);
  fleet.RunFor(1500 * kMicrosPerMilli);
  fleet.Finish();
  EXPECT_GT(injector.fires(0), 0u) << "the lossy network must have dropped frames";

  // Both players now serve forks; the server and kv stay honest.
  std::map<NodeId, std::unique_ptr<chaos::AdversarialSource>> forks;
  for (FleetScenario::AuditeeRef& a : fleet.Auditees()) {
    if (a.local_name == "player1" || a.local_name == "player2") {
      auto fork = std::make_unique<chaos::AdversarialSource>(*a.store);
      ASSERT_EQ(fork->ApplyDue(injector, 0), 1u) << a.global_name;
      forks[a.global_name] = std::move(fork);
    }
  }
  ASSERT_EQ(forks.size(), 2u);

  FleetAuditConfig fcfg;
  fcfg.workers = 2;
  fcfg.audit = SeqCfg();
  FleetAuditService service(nullptr, fcfg);
  std::map<NodeId, uint64_t> jobs;
  for (FleetScenario::AuditeeRef& a : fleet.Auditees()) {
    FleetAuditService::Registration reg;
    reg.node = a.global_name;
    reg.target = a.avmm;
    auto it = forks.find(a.global_name);
    reg.source = it != forks.end() ? static_cast<const SegmentSource*>(it->second.get())
                                   : static_cast<const SegmentSource*>(a.store);
    reg.reference_image = *a.reference_image;
    reg.auths = a.collect_auths();
    reg.registry = a.registry;
    service.RegisterAuditee(std::move(reg));
    jobs[a.global_name] = service.SubmitFullAudit(a.global_name);
  }
  service.Drain();

  for (FleetScenario::AuditeeRef& a : fleet.Auditees()) {
    std::optional<FleetJobResult> r = service.Result(jobs[a.global_name]);
    ASSERT_TRUE(r.has_value()) << a.global_name;
    if (forks.count(a.global_name) != 0) {
      EXPECT_FALSE(r->outcome.ok) << a.global_name << ": colluders must both be caught";
    } else {
      EXPECT_TRUE(r->outcome.ok) << a.global_name << ": " << r->outcome.Describe();
    }
  }
  EXPECT_EQ(service.stats().faults_detected, 2u);
  fs::remove_all(base);
}

// --------------------------------------------------------------------------
// 4. the checkpoint save hits an injected store failure mid-audit; the
//    fleet retries, the recover callback reopens the poisoned store, and
//    the verdict lands unchanged — across sign modes (store + audit).
TEST_P(ChaosTest, StoreCrashDuringCheckpointSignModes) {
  struct ModeCase {
    const char* name;
    RunConfig run;
  };
  const ModeCase kModes[] = {
      {"sync", RunConfig::AvmmRsa768()},
      {"batched", RunConfig::AvmmRsa768Batched(8)},
  };
  for (const ModeCase& mode : kModes) {
    SCOPED_TRACE(mode.name);
    FaultPlan plan;
    plan.seed = chaos::DeriveSeed(seed(), std::string("ckpt-crash-") + mode.name);
    FaultEvent fault;
    fault.type = FaultType::kStoreFsyncFail;  // Poisons: only a reopen recovers.
    fault.when.site = "aux-write";
    fault.when.node = "kvserver";
    fault.when.max_fires = 1;
    plan.Add(fault);
    NotePlan(plan);
    FaultInjector injector(plan);

    // Clean run first; the fault arms only the audit-time store.
    ChaosKvRun run(seed(), std::string("ckpt_crash_") + mode.name, nullptr,
                   /*hook_store=*/false, 2 * kMicrosPerSecond, mode.run);
    ASSERT_FALSE(run.crashed);
    std::vector<Authenticator> auths = run.scenario->CollectAuthsForServer();

    // Reference verdict (no checkpoint writes, no faults).
    Auditor ref("auditor", &run.scenario->registry(), SeqCfg());
    AuditOutcome expect = ref.AuditFull(run.scenario->server(), *run.store,
                                        run.scenario->reference_server_image(), auths);
    ASSERT_TRUE(expect.ok) << expect.Describe();

    // Reopen the store with the fault hook armed; checkpoint captures
    // ride its batched aux path and hit the injected failure.
    run.scenario->server().SpillTo(nullptr);
    run.store.reset();
    LogStoreOptions armed;
    armed.sync = false;
    armed.fault_hook = injector.StoreHook("kvserver");
    run.store = LogStore::Open(run.dir, armed);

    std::unique_ptr<LogStore> recovered;
    FleetAuditConfig fcfg;
    fcfg.workers = 1;
    fcfg.audit = SeqCfg();
    fcfg.checkpoint.every_entries = 300;
    fcfg.retry.backoff_initial_us = 1000;  // Keep the test fast.
    FleetAuditService service(&run.scenario->registry(), fcfg);
    FleetAuditService::Registration reg;
    reg.node = "kv/server";
    reg.target = &run.scenario->server();
    reg.source = run.store.get();
    reg.reference_image = run.scenario->reference_server_image();
    reg.auths = auths;
    reg.checkpoint_dir = run.dir;
    reg.checkpoint_store = run.store.get();
    reg.recover_source = [&run, &recovered]() {
      // The poisoned-store repair: close and reopen (recovery truncates
      // nothing here — the log itself was never damaged).
      run.store.reset();
      LogStoreOptions clean;
      clean.sync = false;
      recovered = LogStore::Open(run.dir, clean);
      RecoveredSource rs;
      rs.source = recovered.get();
      rs.checkpoint_store = recovered.get();
      return rs;
    };
    service.RegisterAuditee(std::move(reg));

    uint64_t job = service.SubmitFullAudit("kv/server");
    service.Drain();
    std::optional<FleetJobResult> r = service.Result(job);
    ASSERT_TRUE(r.has_value());
    EXPECT_GE(r->attempts, 2u) << "the first attempt must have died on the store fault";
    EXPECT_FALSE(r->job_error) << r->error;
    ExpectSameVerdict(expect, r->outcome, std::string(mode.name) + "/after-recovery");
    FleetStats stats = service.stats();
    EXPECT_GE(stats.job_retries, 1u);
    EXPECT_EQ(stats.store_recoveries, 1u);
    EXPECT_EQ(stats.jobs_failed, 0u);
    EXPECT_EQ(injector.fires(0), 1u);
  }
}

// --------------------------------------------------------------------------
// 5. worker deaths on first attempts while the run's network drops
//    frames; retries converge on the reference verdicts (net + audit).
TEST_P(ChaosTest, WorkerDeathUnderNetDrop) {
  FaultPlan plan;
  plan.seed = chaos::DeriveSeed(seed(), "worker-death-drop");
  FaultEvent drop;
  drop.type = FaultType::kNetDrop;
  drop.when.probability = 0.02;
  drop.when.before_us = 1200 * kMicrosPerMilli;
  plan.Add(drop);
  FaultEvent death;
  death.type = FaultType::kAuditWorkerDeath;
  death.when.site = "full-audit";
  death.when.to_seq = 1;  // Only first attempts die.
  death.when.max_fires = 3;
  plan.Add(death);
  NotePlan(plan);
  FaultInjector injector(plan);

  FleetScenarioConfig cfg;
  cfg.run = RunConfig::AvmmNoSig();
  cfg.num_games = 1;
  cfg.players_per_game = 2;
  cfg.num_kv = 1;
  cfg.seed = seed();
  cfg.game.client.render_iters = 300;
  cfg.chaos = &injector;
  FleetScenario fleet(cfg);
  fleet.Start();
  std::string base = TempDir("worker_death");
  fleet.SpillLogsTo(base);
  fleet.RunFor(1500 * kMicrosPerMilli);
  fleet.Finish();

  FleetAuditConfig fcfg;
  fcfg.workers = 2;
  fcfg.audit = SeqCfg();
  fcfg.checkpoint.every_entries = 300;
  fcfg.chaos = &injector;
  fcfg.retry.backoff_initial_us = 1000;
  FleetAuditService service(nullptr, fcfg);
  std::map<NodeId, uint64_t> jobs;
  for (FleetScenario::AuditeeRef& a : fleet.Auditees()) {
    FleetAuditService::Registration reg;
    reg.node = a.global_name;
    reg.target = a.avmm;
    reg.source = a.store;
    reg.reference_image = *a.reference_image;
    reg.auths = a.collect_auths();
    reg.checkpoint_dir = a.store->dir();
    reg.registry = a.registry;
    service.RegisterAuditee(std::move(reg));
    jobs[a.global_name] = service.SubmitFullAudit(a.global_name);
  }
  service.Drain();

  unsigned retried = 0;
  for (FleetScenario::AuditeeRef& a : fleet.Auditees()) {
    std::optional<FleetJobResult> r = service.Result(jobs[a.global_name]);
    ASSERT_TRUE(r.has_value()) << a.global_name;
    EXPECT_FALSE(r->job_error) << a.global_name << ": " << r->error;
    if (r->attempts > 1) {
      retried++;
    }
    // Every verdict equals the direct single-auditee audit — worker
    // deaths and the lossy run changed nothing an auditor reports.
    Auditor direct("auditor", a.registry, SeqCfg());
    AuditOutcome expect =
        direct.AuditFull(*a.avmm, *a.store, *a.reference_image, a.collect_auths());
    ExpectSameVerdict(expect, r->outcome, a.global_name);
    EXPECT_TRUE(r->outcome.ok) << a.global_name << ": " << r->outcome.Describe();
  }
  EXPECT_EQ(retried, 3u) << "exactly the three injected deaths retry";
  EXPECT_EQ(service.stats().job_retries, 3u);
  EXPECT_EQ(service.stats().jobs_failed, 0u);
  fs::remove_all(base);
}

// --------------------------------------------------------------------------
// 6. a persistently broken store drives the auditee into quarantine; the
//    degraded verdict is explicit; repair + rehabilitation re-audits
//    true (store + audit).
TEST_P(ChaosTest, QuarantineAndRecovery) {
  FaultPlan plan;
  plan.seed = chaos::DeriveSeed(seed(), "quarantine");
  FaultEvent fault;
  fault.type = FaultType::kStoreFsyncFail;  // Poisons the store for good.
  fault.when.site = "aux-write";
  fault.when.node = "kvserver";
  fault.when.max_fires = 1;
  plan.Add(fault);
  NotePlan(plan);
  FaultInjector injector(plan);

  ChaosKvRun run(seed(), "quarantine", nullptr, /*hook_store=*/false, kMicrosPerSecond);
  ASSERT_FALSE(run.crashed);
  std::vector<Authenticator> auths = run.scenario->CollectAuthsForServer();

  run.scenario->server().SpillTo(nullptr);
  run.store.reset();
  LogStoreOptions armed;
  armed.sync = false;
  armed.fault_hook = injector.StoreHook("kvserver");
  run.store = LogStore::Open(run.dir, armed);

  FleetAuditConfig fcfg;
  fcfg.workers = 1;
  fcfg.audit = SeqCfg();
  fcfg.checkpoint.every_entries = 300;
  fcfg.retry.max_attempts = 2;
  fcfg.retry.backoff_initial_us = 1000;
  fcfg.retry.quarantine_after = 2;  // Two exhausted jobs -> quarantine.
  FleetAuditService service(&run.scenario->registry(), fcfg);
  auto register_with_store = [&](LogStore* store) {
    FleetAuditService::Registration reg;
    reg.node = "kv/server";
    reg.target = &run.scenario->server();
    reg.source = store;
    reg.reference_image = run.scenario->reference_server_image();
    reg.auths = auths;
    reg.checkpoint_dir = run.dir;
    reg.checkpoint_store = store;
    service.RegisterAuditee(std::move(reg));
  };
  register_with_store(run.store.get());

  // Jobs 1 and 2: the first checkpoint capture poisons the store; every
  // attempt after that dies in CheckWritableLocked. Both jobs exhaust
  // their attempts -> the auditee is quarantined.
  uint64_t job1 = service.SubmitFullAudit("kv/server");
  service.Drain();
  uint64_t job2 = service.SubmitFullAudit("kv/server");
  service.Drain();
  ASSERT_TRUE(service.Result(job1)->job_error);
  ASSERT_TRUE(service.Result(job2)->job_error);
  EXPECT_EQ(service.stats().quarantines, 1u);

  // Job 3 answers from quarantine: explicit degraded failure, no audit
  // runs, never a silent pass.
  uint64_t job3 = service.SubmitFullAudit("kv/server");
  service.Drain();
  std::optional<FleetJobResult> r3 = service.Result(job3);
  ASSERT_TRUE(r3.has_value());
  EXPECT_TRUE(r3->quarantined);
  EXPECT_TRUE(r3->job_error);
  EXPECT_FALSE(r3->outcome.ok);
  EXPECT_NE(r3->error.find("quarantined"), std::string::npos) << r3->error;
  EXPECT_EQ(service.stats().degraded_results, 1u);
  EXPECT_FALSE(service.stats().last_error.empty());

  // Operator repair: reopen the store cleanly, re-register, release the
  // quarantine. The recovered auditee re-audits true.
  run.store.reset();
  LogStoreOptions clean;
  clean.sync = false;
  run.store = LogStore::Open(run.dir, clean);
  register_with_store(run.store.get());
  service.Rehabilitate("kv/server");
  EXPECT_EQ(service.stats().quarantine_releases, 1u);

  uint64_t job4 = service.SubmitFullAudit("kv/server");
  service.Drain();
  std::optional<FleetJobResult> r4 = service.Result(job4);
  ASSERT_TRUE(r4.has_value());
  EXPECT_FALSE(r4->job_error) << r4->error;
  EXPECT_TRUE(r4->outcome.ok) << r4->outcome.Describe();
  EXPECT_EQ(r4->attempts, 1u);
}

// --------------------------------------------------------------------------
// 7. corrupt + duplicated + reordered frames: the signed transport
//    rejects garbage, retransmission recovers, and both honest machines
//    still audit clean (net faults composed with the full audit path).
TEST_P(ChaosTest, CorruptDuplicateReorderFrames) {
  FaultPlan plan;
  plan.seed = chaos::DeriveSeed(seed(), "frame-chaos");
  FaultEvent corrupt;
  corrupt.type = FaultType::kNetCorruptFrame;
  corrupt.when.probability = 0.03;
  corrupt.when.before_us = 800 * kMicrosPerMilli;
  plan.Add(corrupt);
  FaultEvent dup;
  dup.type = FaultType::kNetDuplicate;
  dup.when.probability = 0.1;
  dup.count = 1;
  plan.Add(dup);
  FaultEvent reorder;
  reorder.type = FaultType::kNetReorder;
  reorder.when.probability = 0.2;
  reorder.delay_us = 3000;
  plan.Add(reorder);
  NotePlan(plan);
  FaultInjector injector(plan);

  ChaosKvRun run(seed(), "frame_chaos", &injector, /*hook_store=*/false,
                 kMicrosPerSecond, RunConfig::AvmmRsa768());
  ASSERT_FALSE(run.crashed);
  EXPECT_GT(injector.injected_total(), 0u);

  std::vector<Authenticator> auths = run.scenario->CollectAuthsForServer();
  Auditor ref("auditor", &run.scenario->registry(), SeqCfg());
  AuditOutcome server = ref.AuditFull(run.scenario->server(), *run.store,
                                      run.scenario->reference_server_image(), auths);
  EXPECT_TRUE(server.ok) << "honest node must audit clean under frame chaos: "
                         << server.Describe();
}

// --------------------------------------------------------------------------
// 8. the determinism contract: an installed injector with an EMPTY plan
//    changes nothing — logs and verdicts are bit-for-bit identical to a
//    run with no injector anywhere.
TEST_P(ChaosTest, EmptyPlanBitIdentical) {
  auto audit = [](ChaosKvRun& run) {
    std::vector<Authenticator> auths = run.scenario->CollectAuthsForServer();
    Auditor ref("auditor", &run.scenario->registry(), SeqCfg());
    return ref.AuditFull(run.scenario->server(), *run.store,
                         run.scenario->reference_server_image(), auths);
  };

  ChaosKvRun bare(seed(), "empty_plan_bare", nullptr, false, kMicrosPerSecond);
  ASSERT_FALSE(bare.crashed);

  FaultPlan empty;
  empty.seed = chaos::DeriveSeed(seed(), "empty");
  FaultInjector injector(empty);
  ChaosKvRun wired(seed(), "empty_plan_wired", &injector, /*hook_store=*/true,
                   kMicrosPerSecond);
  ASSERT_FALSE(wired.crashed);

  ASSERT_EQ(bare.store->LastSeq(), wired.store->LastSeq());
  const uint64_t last = bare.store->LastSeq();
  for (uint64_t s : {uint64_t{1}, last / 2, last}) {
    EXPECT_EQ(bare.store->HashAt(s), wired.store->HashAt(s)) << "seq " << s;
  }
  ExpectSameVerdict(audit(bare), audit(wired), "empty-plan");
  EXPECT_EQ(injector.injected_total(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest, ::testing::ValuesIn(ChaosSeeds()),
                         [](const ::testing::TestParamInfo<uint64_t>& tpi) {
                           return "seed" + std::to_string(tpi.param);
                         });

}  // namespace
}  // namespace avm
