// Pipelined-audit parity: AuditConfig::pipelined overlaps the syntactic
// check with deterministic replay (and, store-backed, streams chunk i+1
// through the checks while chunk i replays), and every verdict — audit,
// spot check, evidence, failure reason and seq — must be bit-for-bit
// the sequential path's at every thread count and chunk size.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/audit/pipeline.h"
#include "src/sim/scenario.h"
#include "src/store/log_store.h"
#include "src/util/serde.h"
#include "src/vm/assembler.h"

namespace avm {
namespace {

namespace fs = std::filesystem;

void ExpectSameOutcome(const AuditOutcome& a, const AuditOutcome& b, const std::string& what) {
  EXPECT_EQ(a.ok, b.ok) << what;
  EXPECT_EQ(a.syntactic.ok, b.syntactic.ok) << what;
  EXPECT_EQ(a.syntactic.reason, b.syntactic.reason) << what;
  EXPECT_EQ(a.syntactic.bad_seq, b.syntactic.bad_seq) << what;
  EXPECT_EQ(a.semantic.ok, b.semantic.ok) << what;
  EXPECT_EQ(a.semantic.reason, b.semantic.reason) << what;
  EXPECT_EQ(a.semantic.diverged_seq, b.semantic.diverged_seq) << what;
  EXPECT_EQ(a.semantic.replay_icount, b.semantic.replay_icount) << what;
  EXPECT_EQ(a.semantic.instructions_replayed, b.semantic.instructions_replayed) << what;
  EXPECT_EQ(a.log_bytes, b.log_bytes) << what;
  ASSERT_EQ(a.evidence.has_value(), b.evidence.has_value()) << what;
  if (a.evidence.has_value()) {
    EXPECT_EQ(static_cast<int>(a.evidence->kind), static_cast<int>(b.evidence->kind)) << what;
    EXPECT_EQ(a.evidence->accused, b.evidence->accused) << what;
    EXPECT_EQ(a.evidence->claim, b.evidence->claim) << what;
    EXPECT_EQ(a.evidence->segment, b.evidence->segment) << what;
  }
}

AuditConfig MakeConfig(size_t mem_size, unsigned threads, bool pipelined,
                       size_t chunk_entries = 2048) {
  AuditConfig cfg;
  cfg.mem_size = mem_size;
  cfg.threads = threads;
  cfg.pipelined = pipelined;
  cfg.pipeline_chunk_entries = chunk_entries;
  return cfg;
}

// An in-memory SegmentSource over an arbitrary (possibly tampered)
// segment: what a dishonest machine would ship to the auditor.
class VectorSegmentSource final : public SegmentSource {
 public:
  explicit VectorSegmentSource(LogSegment seg) : seg_(std::move(seg)) {}

  const NodeId& node() const override { return seg_.node; }
  uint64_t LastSeq() const override { return seg_.LastSeq(); }
  LogSegment Extract(uint64_t from_seq, uint64_t to_seq) const override {
    const uint64_t first = seg_.FirstSeq();
    if (from_seq < first || to_seq > seg_.LastSeq() || from_seq > to_seq) {
      throw std::out_of_range("VectorSegmentSource::Extract: bad range");
    }
    LogSegment out;
    out.node = seg_.node;
    out.prior_hash =
        from_seq == first ? seg_.prior_hash : seg_.entries[from_seq - first - 1].hash;
    out.entries.assign(seg_.entries.begin() + static_cast<ptrdiff_t>(from_seq - first),
                       seg_.entries.begin() + static_cast<ptrdiff_t>(to_seq - first + 1));
    return out;
  }
  void Scan(uint64_t from_seq, uint64_t to_seq, const EntryVisitor& visit) const override {
    for (uint64_t s = from_seq; s <= to_seq; s++) {
      if (!visit(seg_.entries[s - seg_.FirstSeq()])) {
        return;
      }
    }
  }

 private:
  LogSegment seg_;
};

void Rechain(LogSegment& seg) {
  Hash256 prev = seg.prior_hash;
  for (LogEntry& e : seg.entries) {
    e.hash = ChainHash(prev, e.seq, e.type, e.content);
    prev = e.hash;
  }
}

// One recorded solo AVMM everything below audits (recording is the
// expensive part; the parity sweeps only re-audit).
class PipelineAuditTest : public ::testing::Test {
 protected:
  PipelineAuditTest() : rng_(9), signer_("solo", SignatureScheme::kNone, rng_) {
    registry_.RegisterSigner(signer_);
  }

  void RecordSolo(int quanta = 40, int inputs = 25) {
    image_ = Assemble(R"(
      jmp main
      jmp irqh
  irqh:
      iret
  main:
      movi r0, 0
  loop:
      in r1, CLOCK_LO
      in r2, RAND
      in r3, INPUT
      add r1, r2
      add r1, r3
      out r1, DEBUG
      movi r4, 150
  work:
      addi r4, -1
      bne r4, r0, work
      jmp loop
    )");
    node_ = std::make_unique<Avmm>("solo", RunConfig::AvmmNoSig(), image_, &signer_, &net_,
                                   &registry_);
    node_->AddPeer("solo");
    for (int i = 0; i < inputs; i++) {
      node_->PushInput(static_cast<uint32_t>(i % 7 + 1));
    }
    SimTime now = 0;
    for (int i = 0; i < quanta; i++) {
      node_->RunQuantum(now, 1000);
      now += 1000;
    }
    node_->Finish(now);
    ASSERT_GT(node_->log().size(), 40u);
  }

  LogSegment WholeSegment() const {
    return node_->log().Extract(1, node_->log().LastSeq());
  }

  Authenticator AuthFor(const LogSegment& seg) const {
    return Authenticator{"solo", seg.LastSeq(), seg.entries.back().hash, {}};
  }

  // Audits `source` with the sequential phases and with the pipeline at
  // several thread counts / chunk sizes; all outcomes must agree with
  // the sequential threads=1 baseline. Returns the baseline.
  AuditOutcome ExpectParity(const SegmentSource& source, std::span<const Authenticator> auths,
                            const std::string& what) {
    Auditor base("auditor", &registry_, MakeConfig(kMem, 1, false));
    AuditOutcome baseline = base.AuditFull(*node_, source, image_, auths);
    for (unsigned threads : {2u, 4u}) {
      for (size_t chunk : {size_t{7}, size_t{2048}}) {
        Auditor seq("auditor", &registry_, MakeConfig(kMem, threads, false, chunk));
        Auditor pipe("auditor", &registry_, MakeConfig(kMem, threads, true, chunk));
        ExpectSameOutcome(baseline, seq.AuditFull(*node_, source, image_, auths),
                          what + " sequential threads=" + std::to_string(threads));
        ExpectSameOutcome(baseline, pipe.AuditFull(*node_, source, image_, auths),
                          what + " pipelined threads=" + std::to_string(threads) +
                              " chunk=" + std::to_string(chunk));
      }
    }
    return baseline;
  }

  static constexpr size_t kMem = 256 * 1024;

  Prng rng_;
  Signer signer_;
  KeyRegistry registry_;
  SimNetwork net_;
  Bytes image_;
  std::unique_ptr<Avmm> node_;
};

TEST_F(PipelineAuditTest, HonestLogPassesIdentically) {
  RecordSolo();
  LogSegment seg = WholeSegment();
  std::vector<Authenticator> auths = {AuthFor(seg)};
  VectorSegmentSource source(std::move(seg));
  AuditOutcome base = ExpectParity(source, auths, "honest");
  EXPECT_TRUE(base.ok) << base.Describe();
  EXPECT_GT(base.semantic.instructions_replayed, 10000u);
}

TEST_F(PipelineAuditTest, TamperedTraceValueFailsSemanticallyIdentically) {
  RecordSolo();
  LogSegment seg = WholeSegment();
  // Rewrite one recorded clock value and rebuild the chain + issue a
  // fresh commitment, so only replay can catch it (the paper's "machine
  // forges a nondeterministic input" case).
  bool patched = false;
  for (LogEntry& e : seg.entries) {
    if (e.type == EntryType::kTraceTime && e.seq > 20 && !patched) {
      TraceEvent ev = TraceEvent::Deserialize(e.content);
      ev.value += 1;
      e.content = ev.Serialize();
      patched = true;
    }
  }
  ASSERT_TRUE(patched);
  Rechain(seg);
  std::vector<Authenticator> auths = {AuthFor(seg)};
  VectorSegmentSource source(std::move(seg));
  AuditOutcome base = ExpectParity(source, auths, "tampered-trace");
  EXPECT_FALSE(base.ok);
  EXPECT_TRUE(base.syntactic.ok);  // Syntactically clean...
  EXPECT_FALSE(base.semantic.ok);  // ...the divergence is semantic.
  ASSERT_TRUE(base.evidence.has_value());
  EXPECT_EQ(static_cast<int>(base.evidence->kind),
            static_cast<int>(EvidenceKind::kReplayDivergence));
}

TEST_F(PipelineAuditTest, JitReplayVerdictsMatchInterpreter) {
  // The semantic check through the JIT tier (AuditConfig::jit_replay,
  // the default) must produce the bit-for-bit outcome of the
  // decoded-cache interpreter — on an honest log and, more importantly,
  // on a tampered one, where the divergence seq and evidence must not
  // move between tiers.
  RecordSolo();
  LogSegment honest = WholeSegment();
  LogSegment tampered = honest;
  bool patched = false;
  for (LogEntry& e : tampered.entries) {
    if (e.type == EntryType::kTraceTime && e.seq > 20 && !patched) {
      TraceEvent ev = TraceEvent::Deserialize(e.content);
      ev.value += 1;
      e.content = ev.Serialize();
      patched = true;
    }
  }
  ASSERT_TRUE(patched);
  Rechain(tampered);

  struct Case {
    const char* what;
    LogSegment seg;
    bool expect_ok;
  };
  for (Case& c : std::vector<Case>{{"honest", std::move(honest), true},
                                   {"tampered", std::move(tampered), false}}) {
    std::vector<Authenticator> auths = {AuthFor(c.seg)};
    VectorSegmentSource source(std::move(c.seg));
    AuditConfig jit_cfg = MakeConfig(kMem, 1, false);
    AuditConfig interp_cfg = MakeConfig(kMem, 1, false);
    interp_cfg.jit_replay = false;
    Auditor jit("auditor", &registry_, jit_cfg);
    Auditor interp("auditor", &registry_, interp_cfg);
    AuditOutcome jit_out = jit.AuditFull(*node_, source, image_, auths);
    AuditOutcome interp_out = interp.AuditFull(*node_, source, image_, auths);
    ExpectSameOutcome(jit_out, interp_out, std::string("jit-vs-interp ") + c.what);
    EXPECT_EQ(jit_out.ok, c.expect_ok) << c.what << ": " << jit_out.Describe();
  }
}

TEST_F(PipelineAuditTest, BrokenChainFailsIdentically) {
  RecordSolo(20);
  LogSegment seg = WholeSegment();
  const uint64_t victim = seg.LastSeq() / 2;
  seg.entries[victim - 1].content.push_back(0x5a);  // No re-chain: chain breaks.
  std::vector<Authenticator> auths = {AuthFor(seg)};
  VectorSegmentSource source(std::move(seg));
  AuditOutcome base = ExpectParity(source, auths, "broken-chain");
  EXPECT_FALSE(base.ok);
  EXPECT_EQ(base.syntactic.reason, "hash chain broken");
  EXPECT_EQ(base.syntactic.bad_seq, victim);
}

TEST_F(PipelineAuditTest, ChainBreakOutranksEarlierMessageFailure) {
  // A message-stream failure early in the log plus a chain break later:
  // the sequential composition runs the whole chain check first, so the
  // chain break is the verdict — the pipelined checker must not report
  // the (earlier-seq) message failure instead.
  RecordSolo(30);
  LogSegment seg = WholeSegment();
  const uint64_t smc_victim = 10;
  seg.entries[smc_victim - 1].type = EntryType::kSend;  // Garbage SEND: malformed.
  Rechain(seg);
  const uint64_t chain_victim = seg.LastSeq() - 3;
  seg.entries[chain_victim - 1].content.push_back(0x5a);  // Breaks the chain.
  std::vector<Authenticator> auths = {AuthFor(seg)};
  VectorSegmentSource source(std::move(seg));
  AuditOutcome base = ExpectParity(source, auths, "smc-then-chain");
  EXPECT_FALSE(base.ok);
  EXPECT_EQ(base.syntactic.reason, "hash chain broken");
  EXPECT_EQ(base.syntactic.bad_seq, chain_victim);

  // Sanity: with the chain repaired, the same log fails on the message
  // stream instead — again identically in every mode.
  LogSegment repaired = WholeSegment();
  repaired.entries[smc_victim - 1].type = EntryType::kSend;
  Rechain(repaired);
  std::vector<Authenticator> auths2 = {AuthFor(repaired)};
  VectorSegmentSource source2(std::move(repaired));
  AuditOutcome base2 = ExpectParity(source2, auths2, "smc-only");
  EXPECT_FALSE(base2.ok);
  EXPECT_EQ(base2.syntactic.reason, "malformed SEND entry");
  EXPECT_EQ(base2.syntactic.bad_seq, smc_victim);
}

TEST_F(PipelineAuditTest, AuthenticatorFailuresReportedInSpanOrder) {
  RecordSolo(20);
  LogSegment seg = WholeSegment();
  const uint64_t last = seg.LastSeq();
  // Two tampered authenticators: the span's FIRST one names a LATE seq.
  // The sequential scan reports failures in span order, not seq order;
  // the chunked checker streams seqs in order and must still agree.
  Authenticator good = AuthFor(seg);
  Authenticator bad_late{"solo", last - 2, Hash256::Zero(), {}};
  Authenticator bad_early{"solo", 5, Hash256::Zero(), {}};
  std::vector<Authenticator> auths = {bad_late, bad_early, good};
  VectorSegmentSource source(std::move(seg));
  AuditOutcome base = ExpectParity(source, auths, "auth-span-order");
  EXPECT_FALSE(base.ok);
  EXPECT_EQ(base.syntactic.reason, "log does not match issued authenticator (tamper or fork)");
  EXPECT_EQ(base.syntactic.bad_seq, last - 2);
}

TEST_F(PipelineAuditTest, InvalidAuthenticatorSignatureFailsIdentically) {
  // A garbage signature (under the kNone scheme, any nonempty one) must
  // fail "authenticator signature invalid" in every mode — and in the
  // pipelined streaming path it also gates replay off entirely, so a
  // forged log cannot buy an attacker a full replay.
  RecordSolo(15);
  LogSegment seg = WholeSegment();
  Authenticator forged = AuthFor(seg);
  forged.signature = {0xde, 0xad};
  std::vector<Authenticator> auths = {forged};
  const uint64_t last = seg.LastSeq();
  VectorSegmentSource source(std::move(seg));
  AuditOutcome base = ExpectParity(source, auths, "bad-auth-sig");
  EXPECT_FALSE(base.ok);
  EXPECT_EQ(base.syntactic.reason, "authenticator signature invalid");
  EXPECT_EQ(base.syntactic.bad_seq, last);
}

TEST_F(PipelineAuditTest, NoCoveringAuthenticatorFailsIdentically) {
  RecordSolo(15);
  LogSegment seg = WholeSegment();
  std::vector<Authenticator> auths;  // Nothing covers the log.
  VectorSegmentSource source(std::move(seg));
  AuditOutcome base = ExpectParity(source, auths, "no-auth");
  EXPECT_FALSE(base.ok);
  EXPECT_EQ(base.syntactic.reason,
            "no authenticator covers the segment; cannot establish authenticity");
}

// --- store-backed: multi-segment logs on disk --------------------------

class PipelineStoreTest : public PipelineAuditTest {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::path(::testing::TempDir()) / (std::string("avm_pipe_") + info->name())).string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  LogStoreOptions SmallSegments() {
    LogStoreOptions opts;
    opts.seal_threshold_bytes = 1024;  // Many sealed segments even for small logs.
    opts.sync = false;
    return opts;
  }

  std::string dir_;
};

TEST_F(PipelineStoreTest, StoreBackedPipelinedAuditMatchesSequential) {
  auto store_setup = [&] {
    auto store = LogStore::Open(dir_, "solo", SmallSegments());
    return store;
  };
  auto store = store_setup();
  RecordSolo(60, 40);
  node_->SpillTo(store.get());
  node_->log().SetSink(nullptr);
  store->Seal();
  ASSERT_GE(store->SealedCount(), 3u) << "want a multi-segment log";

  LogSegment seg = WholeSegment();
  std::vector<Authenticator> auths = {AuthFor(seg)};
  AuditOutcome base = ExpectParity(*store, auths, "store-backed");
  EXPECT_TRUE(base.ok) << base.Describe();

  // And the store-backed verdict equals the in-memory one.
  Auditor pipe("auditor", &registry_, MakeConfig(kMem, 2, true));
  InMemorySegmentSource mem_source(node_->log());
  ExpectSameOutcome(pipe.AuditFull(*node_, mem_source, image_, auths),
                    pipe.AuditFull(*node_, *store, image_, auths), "store-vs-memory");
}

TEST_F(PipelineStoreTest, CorruptSealedSegmentIsUnreadableIdentically) {
  auto store = LogStore::Open(dir_, "solo", SmallSegments());
  RecordSolo(60, 40);
  node_->SpillTo(store.get());
  node_->log().SetSink(nullptr);
  store->Seal();
  ASSERT_GE(store->SealedCount(), 3u);

  // Flip one byte in the middle of a mid-log sealed segment file.
  std::vector<fs::path> sealed;
  for (const auto& f : fs::directory_iterator(dir_)) {
    if (f.path().extension() == ".seal") {
      sealed.push_back(f.path());
    }
  }
  std::sort(sealed.begin(), sealed.end());
  ASSERT_GE(sealed.size(), 2u);
  const fs::path victim = sealed[sealed.size() / 2];
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(victim) / 2));
    char b;
    f.seekg(f.tellp());
    f.get(b);
    f.seekp(static_cast<std::streamoff>(fs::file_size(victim) / 2));
    f.put(static_cast<char>(b ^ 0x40));
  }

  LogSegment seg = WholeSegment();
  std::vector<Authenticator> auths = {AuthFor(seg)};
  Auditor seq("auditor", &registry_, MakeConfig(kMem, 2, false));
  Auditor pipe("auditor", &registry_, MakeConfig(kMem, 2, true, 64));
  AuditOutcome a = seq.AuditFull(*node_, *store, image_, auths);
  AuditOutcome b = pipe.AuditFull(*node_, *store, image_, auths);
  EXPECT_FALSE(a.ok);
  EXPECT_FALSE(b.ok);
  EXPECT_EQ(a.syntactic.reason, b.syntactic.reason);
  EXPECT_NE(a.syntactic.reason.find("log source unreadable"), std::string::npos)
      << a.syntactic.reason;
  EXPECT_FALSE(a.evidence.has_value());
  EXPECT_FALSE(b.evidence.has_value());
}

// --- spot-check windows -------------------------------------------------

TEST(PipelineSpotCheck, WindowVerdictsMatchSequentialIncludingCheat) {
  KvScenarioConfig cfg;
  cfg.run = RunConfig::AvmmNoSig();
  cfg.seed = 77;
  cfg.snapshot_interval = 200 * kMicrosPerMilli;
  cfg.client.op_period_us = 5 * kMicrosPerMilli;
  KvScenario kv(cfg);
  kv.Start();
  kv.server().SetCheatHook([](Machine& m, SimTime now) {
    if (now == 700 * kMicrosPerMilli) {
      m.WriteMem32(kKvTableAddr + 32, 0xbeef);
    }
  });
  kv.RunFor(2 * kMicrosPerSecond);
  kv.Finish();

  std::vector<SnapshotIndexEntry> snaps = IndexSnapshots(kv.server().log());
  ASSERT_GE(snaps.size(), 4u);
  std::vector<std::pair<uint64_t, uint64_t>> windows;
  for (size_t i = 0; i + 1 < snaps.size(); i++) {
    windows.emplace_back(snaps[i].meta.snapshot_id, snaps[i + 1].meta.snapshot_id);
  }
  std::vector<Authenticator> auths = kv.CollectAuthsForServer();

  auto run_with = [&](bool pipelined) {
    AuditConfig acfg;
    acfg.mem_size = cfg.run.mem_size;
    acfg.threads = 2;
    acfg.pipelined = pipelined;
    Auditor auditor("client", &kv.registry(), acfg);
    std::vector<AuditOutcome> outs;
    for (const auto& w : windows) {
      outs.push_back(auditor.SpotCheck(kv.server(), w.first, w.second, auths));
    }
    return outs;
  };
  std::vector<AuditOutcome> seq = run_with(false);
  std::vector<AuditOutcome> pipe = run_with(true);
  ASSERT_EQ(seq.size(), pipe.size());
  int failures = 0;
  for (size_t i = 0; i < seq.size(); i++) {
    ExpectSameOutcome(seq[i], pipe[i], "window " + std::to_string(i));
    failures += seq[i].ok ? 0 : 1;
  }
  EXPECT_EQ(failures, 1) << "exactly the corrupted window must fail";
}

}  // namespace
}  // namespace avm