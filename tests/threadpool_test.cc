#include "src/util/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "src/audit/auditor.h"
#include "src/sim/scenario.h"

namespace avm {
namespace {

TEST(ThreadPoolTest, ResolveThreadsZeroMeansHardware) {
  EXPECT_GE(ResolveThreads(0), 1u);
  EXPECT_EQ(ResolveThreads(1), 1u);
  EXPECT_EQ(ResolveThreads(7), 7u);
}

TEST(ThreadPoolTest, SingleThreadSubmitRunsInlineInOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 8; i++) {
    pool.Submit([&order, i] { order.push_back(i); });
    // Inline execution: the task already ran when Submit returned.
    ASSERT_EQ(order.size(), static_cast<size_t>(i + 1));
  }
  pool.Wait();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ThreadPoolTest, SingleThreadParallelForIsTheSequentialLoop) {
  ThreadPool pool(1);
  std::vector<size_t> order;
  pool.ParallelFor(16, [&](size_t i) { order.push_back(i); });
  std::vector<size_t> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i]++; });
  for (size_t i = 0; i < kN; i++) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SubmitWaitCompletesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; i++) {
    pool.Submit([&done] { done++; });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, ParallelForRethrowsSmallestIndexException) {
  for (unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    try {
      pool.ParallelFor(100, [](size_t i) {
        if (i == 17 || i == 63) {
          throw std::runtime_error("boom at " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 17");
    }
    // The pool stays usable after an exception.
    std::atomic<int> ok{0};
    pool.ParallelFor(10, [&](size_t) { ok++; });
    EXPECT_EQ(ok.load(), 10);
  }
}

TEST(ThreadPoolTest, WaitRethrowsEarliestSubmittedException) {
  for (unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    for (int i = 0; i < 20; i++) {
      pool.Submit([i] {
        if (i == 5 || i == 12) {
          throw std::runtime_error("task " + std::to_string(i));
        }
      });
    }
    try {
      pool.Wait();
      FAIL() << "expected an exception (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 5");
    }
    // The error is consumed: a second Wait is clean.
    pool.Wait();
  }
}

// The ISSUE's determinism contract: a parallel audit must return verdicts
// identical to the sequential (threads=1) audit of the same log — for
// full audits, spot checks, and a log the cheater tampered with.
class ParallelAuditParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // RSA-768 signing (the default run config) so the parallel signature
    // path does real work; dense snapshots give several spot-check windows.
    KvScenarioConfig cfg;
    cfg.seed = 21;
    cfg.snapshot_interval = kMicrosPerSecond;
    cfg.client.op_period_us = 5 * kMicrosPerMilli;
    kv_ = std::make_unique<KvScenario>(cfg);
    kv_->Start();
    kv_->RunFor(4 * kMicrosPerSecond);
    kv_->Finish();
    auths_ = kv_->CollectAuthsForServer();
  }

  Auditor MakeAuditor(unsigned threads) {
    AuditConfig acfg;
    acfg.threads = threads;
    return Auditor("client", &kv_->registry(), acfg);
  }

  std::unique_ptr<KvScenario> kv_;
  std::vector<Authenticator> auths_;
};

void ExpectSameOutcome(const AuditOutcome& seq, const AuditOutcome& par) {
  EXPECT_EQ(seq.ok, par.ok);
  EXPECT_EQ(seq.syntactic.ok, par.syntactic.ok);
  EXPECT_EQ(seq.syntactic.reason, par.syntactic.reason);
  EXPECT_EQ(seq.syntactic.bad_seq, par.syntactic.bad_seq);
  EXPECT_EQ(seq.semantic.ok, par.semantic.ok);
  EXPECT_EQ(seq.semantic.reason, par.semantic.reason);
  EXPECT_EQ(seq.semantic.diverged_seq, par.semantic.diverged_seq);
  EXPECT_EQ(seq.log_bytes, par.log_bytes);
  EXPECT_EQ(seq.Describe(), par.Describe());
}

TEST_F(ParallelAuditParityTest, FullAuditVerdictsMatchSequential) {
  AuditOutcome seq = MakeAuditor(1).AuditFull(kv_->server(), kv_->reference_server_image(), auths_);
  AuditOutcome par = MakeAuditor(4).AuditFull(kv_->server(), kv_->reference_server_image(), auths_);
  EXPECT_TRUE(seq.ok) << seq.Describe();
  ExpectSameOutcome(seq, par);
}

TEST_F(ParallelAuditParityTest, SpotCheckManyVerdictsMatchSequential) {
  std::vector<SnapshotIndexEntry> snaps = IndexSnapshots(kv_->server().log());
  ASSERT_GE(snaps.size(), 3u);
  std::vector<std::pair<uint64_t, uint64_t>> windows;
  for (size_t i = 0; i + 1 < snaps.size(); i++) {
    windows.emplace_back(snaps[i].meta.snapshot_id, snaps[i + 1].meta.snapshot_id);
  }
  Auditor sequential = MakeAuditor(1);
  Auditor parallel = MakeAuditor(4);
  std::vector<AuditOutcome> seq = sequential.SpotCheckMany(kv_->server(), windows, auths_);
  std::vector<AuditOutcome> par = parallel.SpotCheckMany(kv_->server(), windows, auths_);
  ASSERT_EQ(seq.size(), windows.size());
  ASSERT_EQ(par.size(), windows.size());
  for (size_t i = 0; i < windows.size(); i++) {
    EXPECT_TRUE(seq[i].ok) << "window " << i << ": " << seq[i].Describe();
    ExpectSameOutcome(seq[i], par[i]);
  }
}

TEST_F(ParallelAuditParityTest, TamperedLogFailsIdenticallyAtEveryThreadCount) {
  // Corrupt one mid-log entry so both the chain check and the verdict
  // plumbing run their failure paths.
  LogSegment seg = kv_->server().log().Extract(1, kv_->server().log().LastSeq());
  ASSERT_GT(seg.entries.size(), 10u);
  seg.entries[seg.entries.size() / 2].content.push_back(0x5a);

  CheckResult seq = VerifyAgainstAuthenticators(seg, auths_, kv_->registry());
  ThreadPool pool(4);
  CheckResult par = VerifyAgainstAuthenticators(seg, auths_, kv_->registry(), &pool);
  EXPECT_FALSE(seq.ok);
  EXPECT_EQ(seq.ok, par.ok);
  EXPECT_EQ(seq.reason, par.reason);
  EXPECT_EQ(seq.bad_seq, par.bad_seq);
}

}  // namespace
}  // namespace avm
