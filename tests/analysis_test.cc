// Tests for the static binary analysis layer (src/vm/analysis): CFG
// recovery, dominators, liveness, reaching defs, the image verifier,
// and the three consumers that ride on it — analysis-guided JIT
// translation (bit-identical to the interpreter by construction) and
// the AuditConfig::verify_image pre-audit pass.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/apps/game.h"
#include "src/obs/metrics.h"
#include "src/sim/scenario.h"
#include "src/util/prng.h"
#include "src/vm/analysis/analysis.h"
#include "src/vm/assembler.h"
#include "src/vm/jit/jit.h"
#include "src/vm/machine.h"

namespace avm {
namespace {

using analysis::BasicBlock;
using analysis::BlockEnd;
using analysis::Cfg;
using analysis::FindingKind;
using analysis::RegMask;
using analysis::Severity;

constexpr size_t kMem = 64 * 1024;

RegMask R(int r) { return static_cast<RegMask>(1u << r); }

bool HasFinding(const analysis::VerifyReport& rep, FindingKind kind) {
  for (const analysis::Finding& f : rep.findings) {
    if (f.kind == kind) {
      return true;
    }
  }
  return false;
}

// --- CFG recovery ------------------------------------------------------

TEST(CfgRecovery, DiamondBlocksAndEdges) {
  // Conventional vector header: word 0 is the reset vector, word 4 the
  // IRQ vector (BuildCfg always seeds both as entry-like heads).
  Bytes image = Assemble(R"(
    jmp main
    jmp main
main:
    movi r1, 3
    beq r1, r2, equal
    add r3, r1
    jmp join
equal:
    add r3, r2
join:
    halt
  )");
  Cfg cfg = analysis::BuildCfg(image);
  ASSERT_EQ(cfg.blocks.size(), 6u);

  const BasicBlock* reset = cfg.BlockAt(0x00);
  const BasicBlock* irq = cfg.BlockAt(0x04);
  const BasicBlock* main_bb = cfg.BlockAt(0x08);
  const BasicBlock* then_bb = cfg.BlockAt(0x10);
  const BasicBlock* else_bb = cfg.BlockAt(0x18);
  const BasicBlock* join = cfg.BlockAt(0x1c);
  ASSERT_NE(reset, nullptr);
  ASSERT_NE(irq, nullptr);
  ASSERT_NE(main_bb, nullptr);
  ASSERT_NE(then_bb, nullptr);
  ASSERT_NE(else_bb, nullptr);
  ASSERT_NE(join, nullptr);

  EXPECT_TRUE(reset->entry_like);
  EXPECT_TRUE(irq->entry_like);
  EXPECT_FALSE(main_bb->entry_like);

  EXPECT_EQ(main_bb->terminator, BlockEnd::kBranch);
  EXPECT_EQ(main_bb->insn_count(), 2u);
  EXPECT_EQ(then_bb->terminator, BlockEnd::kJump);
  EXPECT_EQ(else_bb->terminator, BlockEnd::kSplit);  // Falls into join.
  EXPECT_EQ(join->terminator, BlockEnd::kHalt);

  EXPECT_EQ(main_bb->preds.size(), 2u);  // Both vector stubs.
  EXPECT_EQ(main_bb->succs.size(), 2u);
  ASSERT_EQ(then_bb->succs.size(), 1u);
  EXPECT_EQ(then_bb->succs[0], join->id);
  ASSERT_EQ(else_bb->succs.size(), 1u);
  EXPECT_EQ(else_bb->succs[0], join->id);
  EXPECT_TRUE(join->succs.empty());
  EXPECT_EQ(join->preds.size(), 2u);

  // Every word is reachable code.
  for (uint32_t a = 0; a < image.size(); a += 4) {
    EXPECT_TRUE(cfg.IsCodeWord(a)) << "word at " << a;
  }
}

TEST(CfgRecovery, CallReturnSitesAreEntryLike) {
  Bytes image = Assemble(R"(
    jal r15, fn
    halt
fn:
    addi r1, 1
    jr r15
  )");
  Cfg cfg = analysis::BuildCfg(image);
  // The word after the JAL must be a block head, marked entry-like
  // (its JR is indirect and cannot be resolved statically).
  const BasicBlock* ret_site = cfg.BlockAt(0x04);
  ASSERT_NE(ret_site, nullptr);
  EXPECT_TRUE(ret_site->entry_like);
  // The callee's JR ends an indirect block with no known successors.
  const BasicBlock* callee = cfg.BlockContaining(0x08);
  ASSERT_NE(callee, nullptr);
  EXPECT_EQ(callee->terminator, BlockEnd::kIndirect);
  EXPECT_TRUE(callee->ends_indirect);
  EXPECT_TRUE(callee->succs.empty());
}

TEST(CfgRecovery, DataWordsAfterHaltAreNotCode) {
  Bytes image = Assemble(R"(
    movi r1, 1
    halt
  )");
  PutU32(image, 0xdeadbeef);  // Data tail: unreachable, not code.
  PutU32(image, 0x00000000);
  Cfg cfg = analysis::BuildCfg(image);
  EXPECT_TRUE(cfg.IsCodeWord(0x00));
  EXPECT_TRUE(cfg.IsCodeWord(0x04));
  EXPECT_FALSE(cfg.IsCodeWord(0x08));
  EXPECT_FALSE(cfg.IsCodeWord(0x0c));
}

// --- Dominators --------------------------------------------------------

TEST(Dominators, DiamondJoinIsDominatedByBranchHead) {
  Bytes image = Assemble(R"(
    jmp main
    jmp main
main:
    movi r1, 3
    beq r1, r2, equal
    add r3, r1
    jmp join
equal:
    add r3, r2
join:
    halt
  )");
  Cfg cfg = analysis::BuildCfg(image);
  analysis::DominatorTree doms = analysis::ComputeDominators(cfg);
  const BasicBlock* reset = cfg.BlockAt(0x00);
  const BasicBlock* main_bb = cfg.BlockAt(0x08);
  const BasicBlock* then_bb = cfg.BlockAt(0x10);
  const BasicBlock* else_bb = cfg.BlockAt(0x18);
  const BasicBlock* join = cfg.BlockContaining(0x1c);
  ASSERT_NE(reset, nullptr);
  ASSERT_NE(main_bb, nullptr);
  ASSERT_NE(then_bb, nullptr);
  ASSERT_NE(else_bb, nullptr);
  ASSERT_NE(join, nullptr);

  // main is reached from both entry stubs, so it dominates the diamond
  // but no single entry stub dominates anything below itself.
  EXPECT_TRUE(doms.Dominates(main_bb->id, then_bb->id));
  EXPECT_TRUE(doms.Dominates(main_bb->id, else_bb->id));
  EXPECT_TRUE(doms.Dominates(main_bb->id, join->id));
  EXPECT_FALSE(doms.Dominates(reset->id, join->id));
  EXPECT_FALSE(doms.Dominates(then_bb->id, join->id));
  EXPECT_FALSE(doms.Dominates(else_bb->id, join->id));
  EXPECT_EQ(doms.idom[join->id], main_bb->id);
  EXPECT_EQ(doms.idom[reset->id], analysis::DominatorTree::kNone);
}

// --- Liveness ----------------------------------------------------------

TEST(Liveness, UpwardExposedUsesAndBlockDefs) {
  Bytes image = Assemble(R"(
    jmp main
    jmp main
main:
    movi r1, 1
    movi r2, 2
    beq r1, r2, out
    movi r4, 0
    add r4, r1
    jmp out
out:
    halt
  )");
  Cfg cfg = analysis::BuildCfg(image);
  analysis::Liveness live = analysis::ComputeLiveness(cfg, image);

  const BasicBlock* entry = cfg.BlockAt(0x08);
  const BasicBlock* mid = cfg.BlockAt(0x14);
  const BasicBlock* out = cfg.BlockContaining(0x20);
  ASSERT_NE(entry, nullptr);
  ASSERT_NE(mid, nullptr);
  ASSERT_NE(out, nullptr);

  // main: r1/r2 are defined before the branch uses them, so nothing is
  // upward-exposed; both are in the def set.
  EXPECT_EQ(live.use[entry->id], 0u);
  EXPECT_EQ(live.def[entry->id] & (R(1) | R(2)), R(1) | R(2));
  // Mid block: r4 is defined before its use (not upward-exposed); r1 is
  // consumed from the entry block.
  EXPECT_EQ(live.use[mid->id], R(1));
  EXPECT_EQ(live.def[mid->id], R(4));
  EXPECT_NE(live.live_in[mid->id] & R(1), 0u);
  // A halting block has unknown observers: everything live-out.
  EXPECT_EQ(live.live_out[out->id], analysis::kAllRegs);
}

TEST(Liveness, IndirectExitIsMaximallyConservative) {
  Bytes image = Assemble(R"(
    movi r1, 1
    jr r15
  )");
  Cfg cfg = analysis::BuildCfg(image);
  analysis::Liveness live = analysis::ComputeLiveness(cfg, image);
  const BasicBlock* b = cfg.BlockContaining(0x04);  // The JR's block.
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->ends_indirect);
  EXPECT_EQ(live.live_out[b->id], analysis::kAllRegs);
  EXPECT_NE(live.live_in[b->id] & R(15), 0u);  // JR consumes r15.
}

// --- Reaching defs -----------------------------------------------------

TEST(ReachingDefs, DefFlowsAcrossJump) {
  Bytes image = Assemble(R"(
    movi r1, 1
    jmp next
next:
    add r2, r1
    halt
  )");
  Cfg cfg = analysis::BuildCfg(image);
  analysis::ReachingDefs rd = analysis::ComputeReachingDefs(cfg, image);
  const BasicBlock* next = cfg.BlockAt(0x08);
  ASSERT_NE(next, nullptr);
  bool found = false;
  for (size_t i = 0; i < rd.sites.size(); i++) {
    if (rd.sites[i].addr == 0x00 && rd.sites[i].reg == 1) {
      found = true;
      EXPECT_TRUE(rd.Reaches(next->id, i));
    }
  }
  EXPECT_TRUE(found) << "definition site movi r1 not recorded";
}

// --- Image verifier ----------------------------------------------------

TEST(Verifier, CleanProgramHasNoFindings) {
  Bytes image = Assemble(R"(
    movi r1, 0
    movi r2, 10
loop:
    addi r1, 1
    bne r1, r2, loop
    halt
  )");
  analysis::VerifyReport rep = analysis::VerifyImage(image, kMem, analysis::BuildCfg(image));
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.errors, 0);
  EXPECT_EQ(rep.warnings, 0);
  EXPECT_TRUE(rep.findings.empty());
}

TEST(Verifier, ReachableIllegalOpcodeIsAnError) {
  Bytes image = Assemble("movi r1, 1\nmovi r2, 2\n");
  PutU32(image, 0xee000000);  // Undecodable opcode on the only path.
  analysis::VerifyReport rep = analysis::VerifyImage(image, kMem, analysis::BuildCfg(image));
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(HasFinding(rep, FindingKind::kIllegalOpcode));
}

TEST(Verifier, JumpOutOfImageIsAnError) {
  Bytes image;
  PutU32(image, Encode(Op::kJmp, 0, 0, 4096));  // Way past the image end.
  analysis::VerifyReport rep = analysis::VerifyImage(image, kMem, analysis::BuildCfg(image));
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(HasFinding(rep, FindingKind::kJumpOutOfImage));
}

TEST(Verifier, FallthroughOffImageIsAnError) {
  Bytes image = Assemble("movi r1, 1\naddi r1, 2\n");  // No terminator.
  analysis::VerifyReport rep = analysis::VerifyImage(image, kMem, analysis::BuildCfg(image));
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(HasFinding(rep, FindingKind::kFallthroughOffImage));
}

TEST(Verifier, StaticallyOobStoreIsAnError) {
  Bytes image = Assemble(R"(
    jmp main
    jmp main
main:
    la r1, 0x40000000
    sw r2, [r1]
    halt
  )");
  analysis::VerifyReport rep = analysis::VerifyImage(image, kMem, analysis::BuildCfg(image));
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(HasFinding(rep, FindingKind::kOobStaticAccess));
}

TEST(Verifier, StoreToCodeIsAWarningAndArmsSelfmodPage) {
  Bytes image = Assemble(R"(
    jmp main
    jmp main
main:
    la r3, patch
    la r6, 0x2b100005
    sw r6, [r3]
patch:
    addi r1, 1
    halt
  )");
  analysis::VerifyReport rep = analysis::VerifyImage(image, kMem, analysis::BuildCfg(image));
  EXPECT_TRUE(rep.ok()) << "self-modifying code is legal: a warning, not an error";
  EXPECT_GT(rep.warnings, 0);
  EXPECT_TRUE(HasFinding(rep, FindingKind::kStoreToCode));
  ASSERT_FALSE(rep.selfmod_pages.empty());
  EXPECT_EQ(rep.selfmod_pages[0], 0u);  // patch lives on page 0.
}

TEST(Verifier, UnreachableCodeShapedRunIsAWarning) {
  Bytes image = Assemble(R"(
    movi r1, 1
    halt
    movi r2, 2
    movi r3, 3
    add r2, r3
    halt
  )");
  analysis::VerifyReport rep = analysis::VerifyImage(image, kMem, analysis::BuildCfg(image));
  EXPECT_TRUE(rep.ok());
  EXPECT_TRUE(HasFinding(rep, FindingKind::kUnreachableCode));
  // Classified as unreachable code, not data.
  EXPECT_EQ(rep.words[3], analysis::WordClass::kUnreachableCode);
}

TEST(Verifier, ShippedGuestImagesAreClean) {
  // The same gate CI applies via avm-lint: every builder image must
  // verify with zero errors.
  GameClientParams gc;
  GameServerParams gs;
  for (const Bytes& image : {BuildGameClientImage(gc), BuildGameServerImage(gs)}) {
    analysis::ImageAnalysis ia = analysis::AnalyzeImage(image, 256 * 1024);
    EXPECT_TRUE(ia.report.ok());
    EXPECT_EQ(ia.report.errors, 0);
  }
}

// --- Analysis-guided JIT equivalence -----------------------------------
//
// Lockstep three ways: analysis-guided JIT vs plain (PR 9) JIT vs the
// decoded-cache interpreter. Architectural state must be bit-identical
// at every quantum boundary regardless of fusion/dead-write decisions.

void ExpectGuidedJitAgrees(const Bytes& image, const std::vector<uint64_t>& quanta,
                           const std::vector<std::pair<int, uint32_t>>& irqs_at_quantum = {}) {
  NullBackend b0, b1, b2;
  Machine guided(kMem, &b0), plain(kMem, &b1), interp(kMem, &b2);
  plain.set_jit_analysis_enabled(false);
  interp.set_jit_enabled(false);
  guided.LoadImage(image);
  plain.LoadImage(image);
  interp.LoadImage(image);
  for (size_t q = 0; q < quanta.size(); q++) {
    for (const auto& [at, cause] : irqs_at_quantum) {
      if (static_cast<size_t>(at) == q) {
        guided.RaiseIrq(cause);
        plain.RaiseIrq(cause);
        interp.RaiseIrq(cause);
      }
    }
    RunExit eg = guided.Run(quanta[q]);
    RunExit ep = plain.Run(quanta[q]);
    RunExit ei = interp.Run(quanta[q]);
    ASSERT_EQ(eg, ei) << "guided exit differs at quantum " << q;
    ASSERT_EQ(ep, ei) << "plain exit differs at quantum " << q;
    ASSERT_TRUE(guided.cpu() == interp.cpu()) << "guided cpu differs at quantum " << q;
    ASSERT_TRUE(plain.cpu() == interp.cpu()) << "plain cpu differs at quantum " << q;
    ASSERT_EQ(guided.faulted(), interp.faulted());
    ASSERT_EQ(guided.fault_reason(), interp.fault_reason());
    ASSERT_EQ(guided.ReadMemRange(0, kMem), interp.ReadMemRange(0, kMem))
        << "guided memory differs at quantum " << q;
    ASSERT_EQ(plain.ReadMemRange(0, kMem), interp.ReadMemRange(0, kMem))
        << "plain memory differs at quantum " << q;
  }
}

// A hot trampoline: straight-line blocks linked by direct jumps, the
// shape region fusion turns into one translated unit.
constexpr char kTrampolineLoop[] = R"(
    movi r1, 0
    movi r2, 1500
loop:
    addi r1, 1
    jmp a
a:
    add r3, r1
    jmp b
b:
    xor r4, r3
    bne r1, r2, loop
    halt
)";

TEST(AnalysisJit, TrampolineFusionMatchesInterpreter) {
  if (!Machine::JitCompiledIn()) GTEST_SKIP() << "JIT not compiled in";
  // Odd quanta park landmarks at every offset inside the fused region.
  ExpectGuidedJitAgrees(Assemble(kTrampolineLoop), {1, 3, 257, 64, 1000, 1, 1, 2, 5000, 7});
}

TEST(AnalysisJit, FusionActuallyHappensAndPlainJitHasNone) {
  if (!Machine::JitCompiledIn()) GTEST_SKIP() << "JIT not compiled in";
  Bytes image = Assemble(kTrampolineLoop);
  NullBackend b0, b1;
  Machine guided(kMem, &b0), plain(kMem, &b1);
  plain.set_jit_analysis_enabled(false);
  guided.LoadImage(image);
  plain.LoadImage(image);
  guided.Run(20000);
  plain.Run(20000);
  ASSERT_NE(guided.jit_stats(), nullptr);
  ASSERT_NE(plain.jit_stats(), nullptr);
  EXPECT_GE(guided.jit_stats()->regions_fused, 2u)
      << "loop->a->b should fuse across both direct jumps";
  EXPECT_EQ(plain.jit_stats()->regions_fused, 0u);
  EXPECT_TRUE(guided.cpu() == plain.cpu());
}

TEST(AnalysisJit, DeadWritebackEliminationKeepsStateExact) {
  if (!Machine::JitCompiledIn()) GTEST_SKIP() << "JIT not compiled in";
  // r1 is written twice back-to-back: the first writeback is provably
  // dead (redefined before any possible exit) and gets elided.
  Bytes image = Assemble(R"(
    movi r2, 1200
loop:
    movi r1, 7
    movi r1, 8
    addi r3, 1
    bne r3, r2, loop
    halt
  )");
  ExpectGuidedJitAgrees(image, {1, 2, 3, 500, 1, 1000, 4, 2500});

  NullBackend b;
  Machine m(kMem, &b);
  m.LoadImage(image);
  m.Run(20000);
  ASSERT_NE(m.jit_stats(), nullptr);
  EXPECT_GT(m.jit_stats()->dead_writes_skipped, 0u);
  EXPECT_EQ(m.cpu().regs[1], 8u);
}

TEST(AnalysisJit, StaticSelfModifyingGuestAgrees) {
  if (!Machine::JitCompiledIn()) GTEST_SKIP() << "JIT not compiled in";
  // The statically-visible patch (la + sw into code) pre-arms the
  // self-mod page, and execution stays bit-identical through the
  // rewrite. Same guest shape as machine_test's decoded-cache case.
  Bytes image = Assemble(R"(
    movi r1, 0
    movi r2, 0
    la r3, patch
    la r4, 400
loop:
patch:
    addi r1, 1
    addi r2, 1
    movi r5, 3
    bne r2, r5, cont
    la r6, 0x2b100005   ; addi r1, 5
    sw r6, [r3]
cont:
    bne r2, r4, loop
    halt
  )");
  // The verifier must see the store statically.
  analysis::ImageAnalysis ia = analysis::AnalyzeImage(image, kMem);
  EXPECT_FALSE(ia.report.selfmod_pages.empty());
  ExpectGuidedJitAgrees(image, {5, 7, 200, 1, 3, 5000});
}

TEST(AnalysisJit, IrqHeavyExecutionAgrees) {
  if (!Machine::JitCompiledIn()) GTEST_SKIP() << "JIT not compiled in";
  Bytes image = Assemble(R"(
    jmp main
    jmp irqh
irqh:
    in r5, IRQ_CAUSE
    add r6, r5
    iret
main:
    movi r6, 0
    ei
loop:
    addi r7, 1
    jmp tramp
tramp:
    xor r8, r7
    jmp loop
  )");
  std::vector<uint64_t> quanta(40, 13);
  std::vector<std::pair<int, uint32_t>> irqs;
  for (int q = 0; q < 40; q += 3) {
    irqs.emplace_back(q, q % 2 == 0 ? kIrqNetRx : kIrqInput);
  }
  ExpectGuidedJitAgrees(image, quanta, irqs);
}

TEST(AnalysisJit, RandomProgramSweepAgrees) {
  if (!Machine::JitCompiledIn()) GTEST_SKIP() << "JIT not compiled in";
  // Random instruction soup, including stores into the program's own
  // pages and undecodable opcodes: guided JIT, plain JIT and the
  // interpreter must retire identically, faults and all.
  constexpr uint8_t kOps[] = {0x00, 0x01, 0x10, 0x11, 0x12, 0x13, 0x20, 0x21, 0x22, 0x23,
                              0x24, 0x25, 0x26, 0x27, 0x28, 0x29, 0x2a, 0x2b, 0x2c, 0x2d,
                              0x30, 0x31, 0x32, 0x33, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45,
                              0x46, 0x47, 0x48, 0x49, 0x60, 0x61, 0x62, 0xee};
  Prng rng(20260807);
  for (int prog = 0; prog < 25; prog++) {
    Bytes image;
    for (int i = 0; i < 1024; i++) {
      uint8_t op = kOps[rng.Next() % (sizeof(kOps) - (prog % 2 ? 0 : 1))];
      uint16_t imm = static_cast<uint16_t>(rng.Next());
      if (op == 0x31 || op == 0x33) {
        imm &= 0x0fff;  // Keep most stores in-range so they land.
      }
      PutU32(image, Encode(static_cast<Op>(op), static_cast<uint8_t>(rng.Next() % 16),
                           static_cast<uint8_t>(rng.Next() % 16), imm));
    }
    ExpectGuidedJitAgrees(image, {257, 1000, 1});
  }
}

TEST(AnalysisJit, CoverageCountersPopulate) {
  if (!Machine::JitCompiledIn()) GTEST_SKIP() << "JIT not compiled in";
  // The avm.jit.* coverage instrumentation that feeds hot_threshold
  // tuning: region-shape histograms at translation time, per-block
  // execution counts retired on invalidation/flush/teardown.
  obs::Registry& reg = obs::Registry::Global();
  obs::Histogram* exec = reg.GetHistogram("avm.jit.block_exec");
  obs::Histogram* insns = reg.GetHistogram("avm.jit.region_insns");
  obs::Histogram* blocks = reg.GetHistogram("avm.jit.region_blocks");
  const uint64_t exec0 = exec->Count();
  const uint64_t exec_sum0 = exec->Sum();
  const uint64_t insns0 = insns->Count();
  const uint64_t blocks0 = blocks->Count();
  {
    NullBackend b;
    Machine m(kMem, &b);
    m.LoadImage(Assemble(kTrampolineLoop));
    m.Run(20000);
  }  // Teardown retires the live blocks' execution counts.
  EXPECT_GT(insns->Count(), insns0);
  EXPECT_GT(blocks->Count(), blocks0);
  EXPECT_GT(exec->Count(), exec0);
  // The hot loop re-enters its translation many times, so the retired
  // execution total far exceeds the number of blocks.
  EXPECT_GT(exec->Sum() - exec_sum0, exec->Count() - exec0);
}

TEST(AnalysisJit, ToggleMidRunReanalyzesAndAgrees) {
  if (!Machine::JitCompiledIn()) GTEST_SKIP() << "JIT not compiled in";
  Bytes image = Assemble(kTrampolineLoop);
  NullBackend b0, b1;
  Machine toggled(kMem, &b0), interp(kMem, &b1);
  interp.set_jit_enabled(false);
  toggled.LoadImage(image);
  interp.LoadImage(image);
  bool on = false;
  for (int q = 0; q < 12; q++) {
    toggled.set_jit_analysis_enabled(on);
    on = !on;
    RunExit et = toggled.Run(250);
    RunExit ei = interp.Run(250);
    ASSERT_EQ(et, ei);
    ASSERT_TRUE(toggled.cpu() == interp.cpu()) << "state differs at quantum " << q;
  }
}

// --- Auditor pre-audit pass (AuditConfig::verify_image) ----------------

TEST(VerifyImageAudit, CleanImagePassesAndCorruptImageFailsBeforeReplay) {
  GameScenarioConfig gcfg;
  gcfg.run = RunConfig::AvmmNoSig();
  gcfg.num_players = 2;
  gcfg.seed = 77;
  gcfg.client.render_iters = 300;
  GameScenario game(gcfg);
  game.Start();
  game.RunFor(kMicrosPerSecond);
  game.Finish();

  std::vector<Authenticator> auths = game.CollectAuths("server");
  AuditConfig acfg;
  acfg.mem_size = game.config().run.mem_size;
  acfg.verify_image = true;
  Auditor auditor("third-party", &game.registry(), acfg);

  // Genuine reference image: the pre-audit pass finds no errors and the
  // audit proceeds to a normal PASS.
  AuditOutcome good = auditor.AuditFull(game.server(), game.reference_server_image(), auths);
  EXPECT_TRUE(good.ok) << good.Describe();
  EXPECT_EQ(good.image_errors, 0);
  EXPECT_GT(good.semantic.instructions_replayed, 0u);

  // Corrupt the reference image (illegal opcode in the middle of the
  // largest reachable block): the audit fails up front, replaying
  // nothing.
  Bytes bad_image = game.reference_server_image();
  Cfg cfg = analysis::BuildCfg(bad_image);
  const BasicBlock* biggest = nullptr;
  for (const BasicBlock& b : cfg.blocks) {
    if (biggest == nullptr || b.insn_count() > biggest->insn_count()) {
      biggest = &b;
    }
  }
  ASSERT_NE(biggest, nullptr);
  uint32_t victim = biggest->start + (biggest->insn_count() / 2) * 4;
  bad_image[victim] = 0x00;
  bad_image[victim + 1] = 0x00;
  bad_image[victim + 2] = 0x00;
  bad_image[victim + 3] = 0xee;  // Little-endian word 0xee000000.

  AuditOutcome bad = auditor.AuditFull(game.server(), bad_image, auths);
  EXPECT_FALSE(bad.ok);
  EXPECT_GT(bad.image_errors, 0);
  EXPECT_FALSE(bad.image_findings.empty());
  EXPECT_EQ(bad.semantic.instructions_replayed, 0u) << "must fail before replay starts";
  EXPECT_NE(bad.Describe().find("FAIL (image)"), std::string::npos) << bad.Describe();
}

}  // namespace
}  // namespace avm
