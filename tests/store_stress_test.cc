// Concurrency stress for the v2 store: one recording thread appending
// under group commit while background sealers/archivers promote
// segments between tiers, reader threads stream ranges mid-promotion,
// and a checkpoint thread exercises the batched aux-file path. This is
// the suite CI runs under TSan (-DAVM_SANITIZE=thread): its job is to
// make the threading contract in src/store/log_store.h racy-by-
// construction if the implementation ever regresses.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "src/store/log_store.h"
#include "src/util/prng.h"

namespace fs = std::filesystem;

namespace avm {
namespace {

// Entry content derivable from the sequence number alone, so readers
// can verify what they stream without touching the (single-writer)
// in-memory log.
Bytes ContentFor(uint64_t seq) {
  return ToBytes("entry-" + std::to_string(seq) + "-" + std::string(40, 'k'));
}

TEST(StoreStressTest, ConcurrentAppendPromoteReadAux) {
  std::string dir =
      (fs::path(::testing::TempDir()) / "avm_store_stress").string();
  fs::remove_all(dir);

  LogStoreOptions opts;
  opts.seal_threshold_bytes = 4096;  // Roll every ~60 entries.
  opts.index_every = 4;
  opts.sync = false;
  opts.sealer_threads = 2;
  opts.group_commit.max_entries = 16;
  opts.group_commit.max_bytes = 1u << 30;
  opts.group_commit.max_delay_ms = 1;  // Flusher thread in play too.
  opts.archive_keep_sealed = 1;        // Both promotions exercised.

  constexpr uint64_t kEntries = 4000;
  constexpr int kReaders = 3;

  // The writer tees through a TamperEvidentLog exactly like a recorder
  // would, but readers only ever touch the store: the in-memory log's
  // entry vector reallocates under append and is not shared.
  TamperEvidentLog log("bob");
  auto store = LogStore::Open(dir, "bob", opts);
  log.SetSink(store.get());

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (uint64_t i = 1; i <= kEntries; i++) {
      log.Append(EntryType::kInfo, ContentFor(i));
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  std::atomic<uint64_t> ranges_read{0};
  for (int r = 0; r < kReaders; r++) {
    readers.emplace_back([&, r] {
      Prng rng(1000 + static_cast<uint64_t>(r));
      while (!done.load(std::memory_order_acquire) || ranges_read < 50) {
        uint64_t last = store->LastSeq();
        if (last < 2) {
          std::this_thread::yield();
          continue;
        }
        uint64_t from = rng.Range(1, last);
        uint64_t to = rng.Range(from, std::min<uint64_t>(last, from + 200));
        if (r == 0) {
          // Extract: whole range materialized at once.
          LogSegment seg = store->Extract(from, to);
          ASSERT_EQ(seg.entries.size(), to - from + 1);
          for (const LogEntry& e : seg.entries) {
            ASSERT_EQ(e.content, ContentFor(e.seq));
          }
        } else {
          // Cursor: streaming, tolerates promotion mid-iteration.
          SegmentCursor cur = store->Cursor(from, to);
          uint64_t expect = from;
          while (const LogEntry* e = cur.Next()) {
            ASSERT_EQ(e->seq, expect);
            ASSERT_EQ(e->content, ContentFor(e->seq));
            expect++;
          }
          ASSERT_EQ(expect, to + 1);
        }
        ranges_read.fetch_add(1, std::memory_order_relaxed);
        // Watermark reads are lock-free and never ahead of the log.
        ASSERT_LE(store->DurableSeq(), store->LastSeq());
      }
    });
  }

  // Checkpoint-style aux writes ride the group-commit fsync batch.
  std::string aux = (fs::path(dir) / "stress.ckpt").string();
  std::thread checkpointer([&] {
    uint64_t version = 0;
    while (!done.load(std::memory_order_acquire)) {
      store->WriteAuxFileBatched(aux, ToBytes("ckpt-" + std::to_string(version++)));
      std::optional<Bytes> back = LogStore::ReadAuxFile(aux);
      ASSERT_TRUE(back.has_value());  // Never torn, never missing.
      std::this_thread::yield();
    }
  });

  writer.join();
  checkpointer.join();
  for (std::thread& t : readers) {
    t.join();
  }
  EXPECT_GE(ranges_read.load(), 50u);

  // Shutdown barrier, then full consistency against the writer's log.
  log.SetSink(nullptr);
  store->Seal();
  EXPECT_EQ(store->LastSeq(), kEntries);
  EXPECT_EQ(store->DurableSeq(), kEntries);
  EXPECT_EQ(store->SealedCount(), store->SegmentCount());
  EXPECT_GE(store->ArchivedCount(), 1u);
  EXPECT_EQ(store->LastHash(), log.LastHash());
  EXPECT_EQ(store->Extract(1, kEntries).Serialize(), log.Extract(1, kEntries).Serialize());

  store.reset();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace avm
