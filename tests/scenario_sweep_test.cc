// Property sweep over scenario seeds and configurations: the paper's
// accuracy guarantee (§4.7) must hold for *every* honest schedule, not
// just the ones the other tests happen to produce.
#include <gtest/gtest.h>

#include "src/sim/scenario.h"

namespace avm {
namespace {

struct SweepParam {
  uint64_t seed;
  RunConfig::Mode mode;
  SignatureScheme scheme;
};

class HonestGameSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(HonestGameSweep, EveryHonestPlayerPassesAudit) {
  const SweepParam& p = GetParam();
  GameScenarioConfig cfg;
  cfg.run.mode = p.mode;
  cfg.run.scheme = p.scheme;
  cfg.num_players = 2;
  cfg.seed = p.seed;
  cfg.client.render_iters = 300;
  // Vary the input tempo with the seed so schedules differ structurally.
  cfg.input_mean_gap_us = 40 * kMicrosPerMilli + p.seed * 7 * kMicrosPerMilli;
  cfg.fire_fraction = 0.2 + 0.1 * static_cast<double>(p.seed % 5);

  GameScenario game(cfg);
  game.Start();
  game.RunFor(kMicrosPerSecond + p.seed * 100 * kMicrosPerMilli);
  game.Finish();

  for (int i = 0; i < game.num_players(); i++) {
    AuditOutcome audit = game.AuditPlayer(i);
    EXPECT_TRUE(audit.ok) << "seed " << p.seed << " player " << i << ": " << audit.Describe();
  }
}

std::vector<SweepParam> SweepParams() {
  std::vector<SweepParam> out;
  for (uint64_t seed = 1; seed <= 6; seed++) {
    out.push_back({seed, RunConfig::Mode::kAvmm, SignatureScheme::kNone});
  }
  // One full-crypto point (slow, so just one seed).
  out.push_back({7, RunConfig::Mode::kAvmm, SignatureScheme::kRsa768});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Seeds, HonestGameSweep, ::testing::ValuesIn(SweepParams()),
                         [](const ::testing::TestParamInfo<SweepParam>& p) {
                           return "seed" + std::to_string(p.param.seed) + "_" +
                                  SignatureSchemeName(p.param.scheme);
                         });

class HonestKvSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HonestKvSweep, ServerAuditAndSpotChecksPass) {
  KvScenarioConfig cfg;
  cfg.run = RunConfig::AvmmNoSig();
  cfg.seed = GetParam();
  cfg.snapshot_interval = 300 * kMicrosPerMilli;
  cfg.client.op_period_us = 3 * kMicrosPerMilli + GetParam() * 500;
  KvScenario kv(cfg);
  kv.Start();
  kv.RunFor(1500 * kMicrosPerMilli);
  kv.Finish();

  std::vector<Authenticator> auths = kv.CollectAuthsForServer();
  Auditor auditor("client", &kv.registry());
  AuditOutcome full = auditor.AuditFull(kv.server(), kv.reference_server_image(), auths);
  EXPECT_TRUE(full.ok) << full.Describe();

  std::vector<SnapshotIndexEntry> snaps = IndexSnapshots(kv.server().log());
  ASSERT_GE(snaps.size(), 3u);
  AuditOutcome spot = auditor.SpotCheck(kv.server(), snaps[1].meta.snapshot_id,
                                        snaps[2].meta.snapshot_id, auths);
  EXPECT_TRUE(spot.ok) << spot.Describe();
}

INSTANTIATE_TEST_SUITE_P(Seeds, HonestKvSweep, ::testing::Range<uint64_t>(1, 6));

}  // namespace
}  // namespace avm
