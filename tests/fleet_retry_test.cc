// Unit tests for the FleetAuditService self-healing policy (retry,
// exponential backoff, per-job timeout, quarantine) on a virtual clock:
// the schedule is asserted exactly, not statistically. The composed
// end-to-end behavior (real injected store faults, recovery via store
// reopen) lives in chaos_test.cc; here each policy knob is isolated
// with the plain fault_hook seam.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/audit/fleet.h"
#include "src/sim/scenario.h"
#include "src/tel/segment_source.h"

namespace avm {
namespace {

AuditConfig SeqCfg() {
  AuditConfig cfg;
  cfg.threads = 1;
  cfg.pipelined = false;
  return cfg;
}

// One short, honest kv run whose server the tests audit in memory.
class FleetRetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    KvScenarioConfig cfg;
    cfg.run = RunConfig::AvmmNoSig();
    cfg.seed = 11;
    scenario_ = std::make_unique<KvScenario>(cfg);
    scenario_->Start();
    scenario_->RunFor(300 * kMicrosPerMilli);
    scenario_->Finish();
    source_.emplace(scenario_->server().log());
    auths_ = scenario_->CollectAuthsForServer();
  }

  FleetAuditService::Registration MakeReg() {
    FleetAuditService::Registration reg;
    reg.node = "kv/server";
    reg.target = &scenario_->server();
    reg.source = &*source_;
    reg.reference_image = scenario_->reference_server_image();
    reg.auths = auths_;
    return reg;
  }

  // Virtual-clock pump: workers cannot observe vclock_ advancing, so
  // nudge time forward and Kick() until `done` (bounded; ~4s real).
  bool PumpUntil(FleetAuditService& svc, const std::function<bool()>& done) {
    for (int i = 0; i < 20000 && !done(); i++) {
      vclock_ += 5000;
      svc.Kick();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return done();
  }

  std::unique_ptr<KvScenario> scenario_;
  std::optional<InMemorySegmentSource> source_;
  std::vector<Authenticator> auths_;
  std::atomic<uint64_t> vclock_{1};
};

TEST_F(FleetRetryTest, BackoffScheduleIsExponential) {
  FleetAuditConfig fcfg;
  fcfg.workers = 1;
  fcfg.audit = SeqCfg();
  fcfg.clock = [this] { return vclock_.load(); };
  fcfg.retry.max_attempts = 4;
  fcfg.retry.backoff_initial_us = 10'000;
  fcfg.retry.backoff_multiplier = 2.0;
  fcfg.retry.backoff_max_us = 5'000'000;
  fcfg.fault_hook = [](const NodeId&, FleetJobType, unsigned) {
    FleetJobFault f;
    f.fail = true;
    f.what = "injected: always down";
    return f;
  };
  FleetAuditService service(&scenario_->registry(), fcfg);
  service.RegisterAuditee(MakeReg());

  uint64_t job = service.SubmitFullAudit("kv/server");
  ASSERT_TRUE(PumpUntil(service, [&] { return service.Result(job).has_value(); }));
  std::optional<FleetJobResult> r = service.Result(job);
  EXPECT_TRUE(r->job_error);
  EXPECT_EQ(r->attempts, 4u);
  EXPECT_NE(r->error.find("always down"), std::string::npos) << r->error;
  ASSERT_EQ(r->backoffs_us.size(), 3u);
  EXPECT_EQ(r->backoffs_us[0], 10'000u);
  EXPECT_EQ(r->backoffs_us[1], 20'000u);
  EXPECT_EQ(r->backoffs_us[2], 40'000u);
  FleetStats stats = service.stats();
  EXPECT_EQ(stats.job_retries, 3u);
  EXPECT_EQ(stats.jobs_failed, 1u);
  EXPECT_NE(stats.last_error.find("always down"), std::string::npos);
}

TEST_F(FleetRetryTest, BackoffCapsAtMax) {
  FleetAuditConfig fcfg;
  fcfg.workers = 1;
  fcfg.audit = SeqCfg();
  fcfg.clock = [this] { return vclock_.load(); };
  fcfg.retry.max_attempts = 5;
  fcfg.retry.backoff_initial_us = 10'000;
  fcfg.retry.backoff_multiplier = 10.0;
  fcfg.retry.backoff_max_us = 50'000;
  fcfg.fault_hook = [](const NodeId&, FleetJobType, unsigned) {
    FleetJobFault f;
    f.fail = true;
    return f;
  };
  FleetAuditService service(&scenario_->registry(), fcfg);
  service.RegisterAuditee(MakeReg());

  uint64_t job = service.SubmitFullAudit("kv/server");
  ASSERT_TRUE(PumpUntil(service, [&] { return service.Result(job).has_value(); }));
  std::optional<FleetJobResult> r = service.Result(job);
  EXPECT_EQ(r->attempts, 5u);
  // 10ms, then 100ms / 1s / 10s all clamped to the 50ms ceiling.
  ASSERT_EQ(r->backoffs_us.size(), 4u);
  EXPECT_EQ(r->backoffs_us[0], 10'000u);
  EXPECT_EQ(r->backoffs_us[1], 50'000u);
  EXPECT_EQ(r->backoffs_us[2], 50'000u);
  EXPECT_EQ(r->backoffs_us[3], 50'000u);
  // With no injected message the failure still carries a reason.
  EXPECT_NE(r->error.find("injected worker death"), std::string::npos) << r->error;
}

TEST_F(FleetRetryTest, QuarantineThresholdAndAutoRelease) {
  std::atomic<bool> broken{true};
  FleetAuditConfig fcfg;
  fcfg.workers = 1;
  fcfg.audit = SeqCfg();
  fcfg.clock = [this] { return vclock_.load(); };
  fcfg.retry.max_attempts = 1;  // Fail fast; quarantine is the subject.
  fcfg.retry.quarantine_after = 2;
  fcfg.retry.quarantine_release_us = 1'000'000;
  fcfg.fault_hook = [&broken](const NodeId&, FleetJobType, unsigned) {
    FleetJobFault f;
    f.fail = broken.load();
    f.what = "injected: auditee store down";
    return f;
  };
  FleetAuditService service(&scenario_->registry(), fcfg);
  service.RegisterAuditee(MakeReg());

  // Two consecutive exhausted jobs cross the threshold.
  uint64_t job1 = service.SubmitFullAudit("kv/server");
  service.Drain();
  EXPECT_EQ(service.stats().quarantines, 0u);
  uint64_t job2 = service.SubmitFullAudit("kv/server");
  service.Drain();
  EXPECT_TRUE(service.Result(job1)->job_error);
  EXPECT_TRUE(service.Result(job2)->job_error);
  EXPECT_EQ(service.stats().quarantines, 1u);

  // While quarantined: every job answers degraded, with the cause.
  uint64_t job3 = service.SubmitFullAudit("kv/server");
  service.Drain();
  std::optional<FleetJobResult> r3 = service.Result(job3);
  EXPECT_TRUE(r3->quarantined);
  EXPECT_TRUE(r3->job_error);
  EXPECT_FALSE(r3->outcome.ok);  // Degraded is a failure, never a pass.
  EXPECT_NE(r3->error.find("quarantined"), std::string::npos) << r3->error;
  EXPECT_NE(r3->error.find("auditee store down"), std::string::npos) << r3->error;
  EXPECT_EQ(service.stats().degraded_results, 1u);

  // Repair + let the quarantine window lapse: the recovered auditee
  // leaves quarantine on its own and re-audits true.
  broken = false;
  vclock_ += 2'000'000;
  uint64_t job4 = service.SubmitFullAudit("kv/server");
  ASSERT_TRUE(PumpUntil(service, [&] { return service.Result(job4).has_value(); }));
  std::optional<FleetJobResult> r4 = service.Result(job4);
  EXPECT_FALSE(r4->job_error) << r4->error;
  EXPECT_TRUE(r4->outcome.ok) << r4->outcome.Describe();
  EXPECT_EQ(service.stats().quarantine_releases, 1u);
}

TEST_F(FleetRetryTest, RehabilitateReleasesAndUnknownNodeThrows) {
  std::atomic<bool> broken{true};
  FleetAuditConfig fcfg;
  fcfg.workers = 1;
  fcfg.audit = SeqCfg();
  fcfg.clock = [this] { return vclock_.load(); };
  fcfg.retry.max_attempts = 1;
  fcfg.retry.quarantine_after = 1;
  // quarantine_release_us = 0: only Rehabilitate() releases.
  fcfg.fault_hook = [&broken](const NodeId&, FleetJobType, unsigned) {
    FleetJobFault f;
    f.fail = broken.load();
    return f;
  };
  FleetAuditService service(&scenario_->registry(), fcfg);
  service.RegisterAuditee(MakeReg());

  uint64_t job1 = service.SubmitFullAudit("kv/server");
  service.Drain();
  EXPECT_TRUE(service.Result(job1)->job_error);
  EXPECT_EQ(service.stats().quarantines, 1u);

  // Time alone never releases a manual-only quarantine.
  vclock_ += 3'600'000'000ull;
  uint64_t job2 = service.SubmitFullAudit("kv/server");
  service.Drain();
  EXPECT_TRUE(service.Result(job2)->quarantined);

  EXPECT_THROW(service.Rehabilitate("no/such/node"), std::out_of_range);

  broken = false;
  service.Rehabilitate("kv/server");
  EXPECT_EQ(service.stats().quarantine_releases, 1u);
  uint64_t job3 = service.SubmitFullAudit("kv/server");
  service.Drain();
  std::optional<FleetJobResult> r3 = service.Result(job3);
  EXPECT_FALSE(r3->job_error) << r3->error;
  EXPECT_TRUE(r3->outcome.ok) << r3->outcome.Describe();
}

// A source that dies with a non-std exception: the worker must survive
// and surface an honest error string, not crash or hang Drain().
class ThrowingSource final : public SegmentSource {
 public:
  explicit ThrowingSource(NodeId node) : node_(std::move(node)) {}
  const NodeId& node() const override { return node_; }
  uint64_t LastSeq() const override { throw 42; }
  LogSegment Extract(uint64_t, uint64_t) const override { throw 42; }
  void Scan(uint64_t, uint64_t, const EntryVisitor&) const override { throw 42; }

 private:
  NodeId node_;
};

TEST_F(FleetRetryTest, WorkerExceptionSurfacedAsFailedJob) {
  ThrowingSource bad("kvserver");
  FleetAuditConfig fcfg;
  fcfg.workers = 1;
  fcfg.audit = SeqCfg();
  fcfg.clock = [this] { return vclock_.load(); };
  fcfg.retry.max_attempts = 2;
  fcfg.retry.backoff_initial_us = 1000;
  FleetAuditService service(&scenario_->registry(), fcfg);
  FleetAuditService::Registration reg = MakeReg();
  reg.source = &bad;
  service.RegisterAuditee(std::move(reg));

  uint64_t job = service.SubmitFullAudit("kv/server");
  ASSERT_TRUE(PumpUntil(service, [&] { return service.Result(job).has_value(); }));
  std::optional<FleetJobResult> r = service.Result(job);
  EXPECT_TRUE(r->job_error);
  EXPECT_EQ(r->attempts, 2u);
  EXPECT_EQ(r->error, "unknown non-standard exception");
  EXPECT_FALSE(r->outcome.ok);
  EXPECT_NE(r->outcome.syntactic.reason.find("audit job aborted"), std::string::npos)
      << r->outcome.syntactic.reason;
  EXPECT_EQ(service.stats().last_error, "unknown non-standard exception");
  EXPECT_EQ(service.stats().jobs_failed, 1u);
}

TEST_F(FleetRetryTest, SlowPeerStallTripsTimeoutThenRetrySucceeds) {
  // Real clock: the stall and the timeout race actual wall time.
  std::atomic<unsigned> calls{0};
  FleetAuditConfig fcfg;
  fcfg.workers = 1;
  fcfg.audit = SeqCfg();
  fcfg.retry.max_attempts = 3;
  fcfg.retry.backoff_initial_us = 1000;
  fcfg.retry.job_timeout_us = 100'000;
  fcfg.fault_hook = [&calls](const NodeId&, FleetJobType, unsigned attempt) {
    calls++;
    FleetJobFault f;
    if (attempt == 1) {
      f.stall_us = 250'000;  // Slow peer: well past the 100ms timeout.
    }
    return f;
  };
  FleetAuditService service(&scenario_->registry(), fcfg);
  service.RegisterAuditee(MakeReg());

  uint64_t job = service.SubmitFullAudit("kv/server");
  service.Drain();
  std::optional<FleetJobResult> r = service.Result(job);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->job_error) << r->error;
  EXPECT_TRUE(r->outcome.ok) << r->outcome.Describe();
  EXPECT_EQ(r->attempts, 2u);
  EXPECT_GE(calls.load(), 2u);
  EXPECT_EQ(service.stats().job_retries, 1u);
  EXPECT_NE(service.stats().last_error.find("timeout"), std::string::npos)
      << service.stats().last_error;
}

}  // namespace
}  // namespace avm
