#include <gtest/gtest.h>

#include "src/audit/evidence.h"
#include "src/sim/scenario.h"
#include "src/util/serde.h"

namespace avm {
namespace {

// Shared across cases: running a game is the expensive part, so each
// cheat scenario runs once per instantiation.
GameScenarioConfig FastGame(uint64_t seed = 11) {
  GameScenarioConfig cfg;
  cfg.run = RunConfig::AvmmNoSig();  // Hash chains without RSA: fast.
  cfg.num_players = 2;
  cfg.seed = seed;
  cfg.client.render_iters = 300;
  return cfg;
}

TEST(GameAudit, HonestPlayersPass) {
  GameScenario game(FastGame());
  game.Start();
  game.RunFor(2 * kMicrosPerSecond);
  game.Finish();
  for (int i = 0; i < game.num_players(); i++) {
    AuditOutcome audit = game.AuditPlayer(i);
    EXPECT_TRUE(audit.ok) << "player " << i << ": " << audit.Describe();
    EXPECT_FALSE(audit.evidence.has_value());
    EXPECT_GT(audit.semantic.instructions_replayed, 1000000u);
  }
}

TEST(GameAudit, HonestServerLogVerifies) {
  GameScenario game(FastGame(12));
  game.Start();
  game.RunFor(2 * kMicrosPerSecond);
  game.Finish();
  // Audit the server against its own reference image.
  std::vector<Authenticator> auths = game.CollectAuths("server");
  AuditConfig acfg;
  acfg.mem_size = game.config().run.mem_size;
  Auditor auditor("third-party", &game.registry(), acfg);
  AuditOutcome audit = auditor.AuditFull(game.server(), game.reference_server_image(), auths);
  EXPECT_TRUE(audit.ok) << audit.Describe();
}

struct CheatCase {
  RunnableCheat cheat;
  bool detectable;
};

class CheatDetection : public ::testing::TestWithParam<CheatCase> {};

TEST_P(CheatDetection, AuditMatchesExpectation) {
  const CheatCase& tc = GetParam();
  GameScenario game(FastGame(20 + static_cast<uint64_t>(tc.cheat)));
  game.SetCheat(0, tc.cheat);
  game.Start();
  game.RunFor(2 * kMicrosPerSecond);
  game.Finish();

  AuditOutcome cheater = game.AuditPlayer(0);
  if (tc.detectable) {
    EXPECT_FALSE(cheater.ok) << RunnableCheatName(tc.cheat) << " was not detected";
    ASSERT_TRUE(cheater.evidence.has_value());
    // The evidence convinces an independent third party.
    EvidenceVerdict verdict = VerifyEvidence(*cheater.evidence, game.registry(),
                                             game.reference_client_image());
    EXPECT_TRUE(verdict.fault_confirmed) << verdict.detail;
  } else {
    // §4.8/§5.4: forged local inputs replay cleanly -- documented limit.
    EXPECT_TRUE(cheater.ok) << cheater.Describe();
  }

  // The honest player always passes (accuracy, §4.7).
  AuditOutcome honest = game.AuditPlayer(1);
  EXPECT_TRUE(honest.ok) << honest.Describe();
}

INSTANTIATE_TEST_SUITE_P(
    Cheats, CheatDetection,
    ::testing::Values(CheatCase{RunnableCheat::kUnlimitedAmmo, true},
                      CheatCase{RunnableCheat::kTeleport, true},
                      CheatCase{RunnableCheat::kAimbotImage, true},
                      CheatCase{RunnableCheat::kWallhackImage, true},
                      CheatCase{RunnableCheat::kForgedInputAimbot, false}),
    [](const ::testing::TestParamInfo<CheatCase>& param) {
      std::string name = RunnableCheatName(param.param.cheat);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

TEST(GameAudit, EvidenceAgainstHonestPlayerImpossible) {
  // Accuracy (§4.7): an accuser cannot forge evidence against a correct
  // node. Take an honest log, tamper with it, and check that the
  // "evidence" does not verify for a third party.
  GameScenario game(FastGame(33));
  game.Start();
  game.RunFor(kMicrosPerSecond);
  game.Finish();

  const Avmm& target = game.player(0);
  std::vector<Authenticator> auths = game.CollectAuths(target.id());
  LogSegment seg = target.log().Extract(1, target.log().LastSeq());

  // Malicious accuser rewrites an entry and re-chains.
  seg.entries[seg.entries.size() / 2].content = ToBytes("planted");
  Hash256 prev = seg.prior_hash;
  for (LogEntry& e : seg.entries) {
    e.hash = ChainHash(prev, e.seq, e.type, e.content);
    prev = e.hash;
  }

  Evidence fake;
  fake.kind = EvidenceKind::kReplayDivergence;
  fake.accused = target.id();
  fake.claim = "fabricated";
  fake.segment = seg.Serialize();
  for (const Authenticator& a : auths) {
    fake.auths.push_back(a.Serialize());
  }
  fake.mem_size = game.config().run.mem_size;

  EvidenceVerdict verdict =
      VerifyEvidence(fake, game.registry(), game.reference_client_image());
  // The doctored segment no longer matches the authenticators the player
  // actually issued, so the evidence is rejected.
  EXPECT_FALSE(verdict.fault_confirmed) << verdict.detail;
}

TEST(GameAudit, SyntacticCheckCatchesForgedSend) {
  // An AVMM that sends messages the guest never produced: insert a SEND
  // entry (with a valid chain) whose payload has no matching guest TX.
  GameScenario game(FastGame(44));
  game.Start();
  game.RunFor(kMicrosPerSecond);
  game.Finish();

  const Avmm& target = game.player(0);
  LogSegment seg = target.log().Extract(1, target.log().LastSeq());

  // Find a SEND entry and duplicate it later in the log with a different
  // payload (simulating injection), then re-chain.
  size_t send_idx = 0;
  for (size_t i = 0; i < seg.entries.size(); i++) {
    if (seg.entries[i].type == EntryType::kSend) {
      send_idx = i;
    }
  }
  ASSERT_GT(send_idx, 0u);
  LogEntry injected = seg.entries[send_idx];
  {
    Reader r(injected.content);
    MessageRecord msg = MessageRecord::Deserialize(r.Blob());
    Bytes sig = r.Blob();
    msg.payload[4] ^= 0x7;  // Content differs from any guest TX.
    msg.msg_id += 1000;
    // Re-sign so the payload signature verifies (the node itself is the
    // forger and owns the key). nosig scheme -> empty signature is fine.
    injected.content = MessageEntryContent(msg, sig);
  }
  seg.entries.insert(seg.entries.begin() + static_cast<ptrdiff_t>(send_idx + 1), injected);
  uint64_t seq = seg.entries.front().seq;
  Hash256 prev = seg.prior_hash;
  for (LogEntry& e : seg.entries) {
    e.seq = seq++;
    e.hash = ChainHash(prev, e.seq, e.type, e.content);
    prev = e.hash;
  }

  AuditConfig acfg;
  acfg.mem_size = game.config().run.mem_size;
  CheckResult check = SyntacticMessageCheck(seg, game.registry(), acfg);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.reason.find("SEND"), std::string::npos);
}

TEST(GameAudit, WallhackLeaksToConsole) {
  // Sanity-check the wallhack variant actually leaks (and that the leak
  // is what diverges vs. the reference image).
  GameScenario game(FastGame(55));
  game.SetCheat(0, RunnableCheat::kWallhackImage);
  game.Start();
  game.RunFor(2 * kMicrosPerSecond);
  game.Finish();
  EXPECT_FALSE(game.player(0).console_output().empty());
  EXPECT_TRUE(game.player(1).console_output().empty());
}

TEST(GameAudit, ForgedInputAimbotFiresInhumanlyFast) {
  // The undetectable cheat still works (fires far more than an honest
  // player) -- that is exactly the paper's point about raising the bar.
  GameScenarioConfig cfg = FastGame(66);
  GameScenario game(cfg);
  game.SetCheat(0, RunnableCheat::kForgedInputAimbot);
  game.Start();
  game.RunFor(2 * kMicrosPerSecond);
  game.Finish();
  uint32_t cheater_shots = game.player(0).machine().ReadMem32(kGameStateShots);
  uint32_t honest_shots = game.player(1).machine().ReadMem32(kGameStateShots);
  EXPECT_GT(cheater_shots, honest_shots * 2);
}

}  // namespace
}  // namespace avm
