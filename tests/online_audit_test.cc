#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "src/audit/online.h"
#include "src/sim/scenario.h"
#include "src/store/log_store.h"

namespace avm {
namespace {

// Wraps a live log but can be told to report a shorter LastSeq —
// models the auditee crashing and LogStore::Open truncating a torn
// tail, after which the followed log legitimately *shrinks*.
class ShrinkableSource final : public SegmentSource {
 public:
  explicit ShrinkableSource(const TamperEvidentLog& log) : log_(&log) {}

  void ShrinkTo(uint64_t last) { forced_last_ = last; }
  void Unshrink() { forced_last_ = UINT64_MAX; }

  const NodeId& node() const override { return log_->owner(); }
  uint64_t LastSeq() const override { return std::min(forced_last_, log_->LastSeq()); }
  LogSegment Extract(uint64_t from_seq, uint64_t to_seq) const override {
    return log_->Extract(from_seq, to_seq);
  }
  void Scan(uint64_t from_seq, uint64_t to_seq, const EntryVisitor& visit) const override {
    for (uint64_t s = from_seq; s <= to_seq; s++) {
      if (!visit(log_->At(s))) {
        return;
      }
    }
  }

 private:
  const TamperEvidentLog* log_;
  uint64_t forced_last_ = UINT64_MAX;
};

GameScenarioConfig Cfg(uint64_t seed) {
  GameScenarioConfig cfg;
  cfg.run = RunConfig::AvmmNoSig();
  cfg.num_players = 2;
  cfg.seed = seed;
  cfg.client.render_iters = 300;
  return cfg;
}

TEST(OnlineAudit, FollowsHonestGameWithoutDivergence) {
  GameScenario game(Cfg(1));
  game.Start();
  OnlineAuditor auditor(&game.player(0).log(), game.reference_client_image(),
                        game.config().run.mem_size);
  for (int step = 0; step < 10; step++) {
    game.RunFor(200 * kMicrosPerMilli);
    ReplayResult r = auditor.Poll();
    ASSERT_TRUE(r.ok) << "step " << step << ": " << r.reason;
  }
  game.Finish();
  ReplayResult final = auditor.Poll();
  EXPECT_TRUE(final.ok);
  EXPECT_EQ(auditor.LagEntries(), 0u);
  EXPECT_EQ(final.replay_icount, game.player(0).machine().cpu().icount);
}

TEST(OnlineAudit, DetectsCheatMidGame) {
  // The cheat activates 1s into the game; the online auditor notices on
  // the first poll after the cheater's output diverges -- well before
  // the game ends (§6.11's motivation).
  GameScenario game(Cfg(2));
  game.Start();
  bool armed = false;
  game.player(0).SetCheatHook([&armed](Machine& m, SimTime now) {
    if (now >= kMicrosPerSecond) {
      m.WriteMem32(kGameStateAmmo, 30);
      armed = true;
    }
  });
  OnlineAuditor auditor(&game.player(0).log(), game.reference_client_image(),
                        game.config().run.mem_size);

  int detected_at_step = -1;
  for (int step = 0; step < 20; step++) {
    game.RunFor(200 * kMicrosPerMilli);
    ReplayResult r = auditor.Poll();
    if (!r.ok) {
      detected_at_step = step;
      break;
    }
  }
  ASSERT_TRUE(armed);
  ASSERT_GE(detected_at_step, 4);  // Not before the cheat started...
  EXPECT_LT(detected_at_step, 20);  // ...but while the game is running.
}

TEST(OnlineAudit, DivergenceIsSticky) {
  GameScenario game(Cfg(3));
  game.Start();
  game.player(0).SetCheatHook(*MakeCheatHook(RunnableCheat::kTeleport));
  OnlineAuditor auditor(&game.player(0).log(), game.reference_client_image(),
                        game.config().run.mem_size);
  game.RunFor(2 * kMicrosPerSecond);
  ReplayResult first = auditor.Poll();
  EXPECT_FALSE(first.ok);
  game.RunFor(200 * kMicrosPerMilli);
  ReplayResult second = auditor.Poll();
  EXPECT_FALSE(second.ok);
  EXPECT_EQ(first.reason, second.reason);
}

TEST(OnlineAudit, TargetRewindSurfacedNotStaleProgress) {
  GameScenario game(Cfg(5));
  game.Start();
  ShrinkableSource source(game.player(0).log());
  OnlineAuditor auditor(&source, game.reference_client_image(), game.config().run.mem_size);
  game.RunFor(kMicrosPerSecond);
  ReplayResult first = auditor.Poll();
  ASSERT_TRUE(first.ok);
  EXPECT_EQ(auditor.status(), OnlinePollStatus::kAdvanced);
  uint64_t consumed = auditor.consumed_seq();
  ASSERT_GT(consumed, 10u);

  // The log "shrinks" below the consumed prefix (crash + torn-tail
  // truncation). Poll must not pretend progress: the status is a
  // distinct rewind, the cumulative result is unchanged, and it is
  // sticky even if the log later grows past the old watermark (the
  // regrown history need not match what was already consumed).
  source.ShrinkTo(consumed / 2);
  ReplayResult after = auditor.Poll();
  EXPECT_TRUE(after.ok);
  EXPECT_EQ(after.replay_icount, first.replay_icount);
  EXPECT_EQ(auditor.status(), OnlinePollStatus::kTargetRewound);
  EXPECT_TRUE(auditor.target_rewound());
  EXPECT_EQ(auditor.LagEntries(), 0u);  // Saturates; no u64 underflow.
  EXPECT_EQ(auditor.consumed_seq(), consumed);

  source.Unshrink();
  game.RunFor(200 * kMicrosPerMilli);
  auditor.Poll();
  EXPECT_EQ(auditor.status(), OnlinePollStatus::kTargetRewound);
  EXPECT_EQ(auditor.consumed_seq(), consumed);
}

TEST(OnlineAudit, CaughtUpPollIsIdleNotRewound) {
  GameScenario game(Cfg(6));
  game.Start();
  game.RunFor(500 * kMicrosPerMilli);
  OnlineAuditor auditor(&game.player(0).log(), game.reference_client_image(),
                        game.config().run.mem_size);
  ASSERT_TRUE(auditor.Poll().ok);
  EXPECT_EQ(auditor.status(), OnlinePollStatus::kAdvanced);
  // Nothing new: the caught-up case (next_seq == last + 1) is idle, not
  // a rewind.
  auditor.Poll();
  EXPECT_EQ(auditor.status(), OnlinePollStatus::kIdle);
  EXPECT_FALSE(auditor.target_rewound());
}

TEST(OnlineAudit, StoreBackedFollowMatchesInMemory) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "avm_online_store_test").string();
  std::filesystem::remove_all(dir);
  GameScenario game(Cfg(7));
  game.Start();
  LogStoreOptions opts;
  opts.sync = false;
  auto store = LogStore::Open(dir, game.player_id(0), opts);
  game.player(0).SpillTo(store.get());

  OnlineAuditor mem_auditor(&game.player(0).log(), game.reference_client_image(),
                            game.config().run.mem_size);
  OnlineAuditor store_auditor(store.get(), game.reference_client_image(),
                              game.config().run.mem_size);
  for (int step = 0; step < 5; step++) {
    game.RunFor(200 * kMicrosPerMilli);
    ReplayResult m = mem_auditor.Poll();
    ReplayResult s = store_auditor.Poll();
    ASSERT_EQ(m.ok, s.ok) << "step " << step;
    EXPECT_EQ(m.replay_icount, s.replay_icount);
    EXPECT_EQ(mem_auditor.LagEntries(), store_auditor.LagEntries());
  }
  std::filesystem::remove_all(dir);
}

TEST(OnlineAudit, LagTracksUnconsumedEntries) {
  GameScenario game(Cfg(4));
  game.Start();
  OnlineAuditor auditor(&game.player(0).log(), game.reference_client_image(),
                        game.config().run.mem_size);
  game.RunFor(kMicrosPerSecond);
  EXPECT_GT(auditor.LagEntries(), 0u);  // Entries accumulated, not polled.
  auditor.Poll();
  EXPECT_EQ(auditor.LagEntries(), 0u);
}

}  // namespace
}  // namespace avm
