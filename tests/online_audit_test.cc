#include <gtest/gtest.h>

#include "src/audit/online.h"
#include "src/sim/scenario.h"

namespace avm {
namespace {

GameScenarioConfig Cfg(uint64_t seed) {
  GameScenarioConfig cfg;
  cfg.run = RunConfig::AvmmNoSig();
  cfg.num_players = 2;
  cfg.seed = seed;
  cfg.client.render_iters = 300;
  return cfg;
}

TEST(OnlineAudit, FollowsHonestGameWithoutDivergence) {
  GameScenario game(Cfg(1));
  game.Start();
  OnlineAuditor auditor(&game.player(0).log(), game.reference_client_image(),
                        game.config().run.mem_size);
  for (int step = 0; step < 10; step++) {
    game.RunFor(200 * kMicrosPerMilli);
    ReplayResult r = auditor.Poll();
    ASSERT_TRUE(r.ok) << "step " << step << ": " << r.reason;
  }
  game.Finish();
  ReplayResult final = auditor.Poll();
  EXPECT_TRUE(final.ok);
  EXPECT_EQ(auditor.LagEntries(), 0u);
  EXPECT_EQ(final.replay_icount, game.player(0).machine().cpu().icount);
}

TEST(OnlineAudit, DetectsCheatMidGame) {
  // The cheat activates 1s into the game; the online auditor notices on
  // the first poll after the cheater's output diverges -- well before
  // the game ends (§6.11's motivation).
  GameScenario game(Cfg(2));
  game.Start();
  bool armed = false;
  game.player(0).SetCheatHook([&armed](Machine& m, SimTime now) {
    if (now >= kMicrosPerSecond) {
      m.WriteMem32(kGameStateAmmo, 30);
      armed = true;
    }
  });
  OnlineAuditor auditor(&game.player(0).log(), game.reference_client_image(),
                        game.config().run.mem_size);

  int detected_at_step = -1;
  for (int step = 0; step < 20; step++) {
    game.RunFor(200 * kMicrosPerMilli);
    ReplayResult r = auditor.Poll();
    if (!r.ok) {
      detected_at_step = step;
      break;
    }
  }
  ASSERT_TRUE(armed);
  ASSERT_GE(detected_at_step, 4);  // Not before the cheat started...
  EXPECT_LT(detected_at_step, 20);  // ...but while the game is running.
}

TEST(OnlineAudit, DivergenceIsSticky) {
  GameScenario game(Cfg(3));
  game.Start();
  game.player(0).SetCheatHook(*MakeCheatHook(RunnableCheat::kTeleport));
  OnlineAuditor auditor(&game.player(0).log(), game.reference_client_image(),
                        game.config().run.mem_size);
  game.RunFor(2 * kMicrosPerSecond);
  ReplayResult first = auditor.Poll();
  EXPECT_FALSE(first.ok);
  game.RunFor(200 * kMicrosPerMilli);
  ReplayResult second = auditor.Poll();
  EXPECT_FALSE(second.ok);
  EXPECT_EQ(first.reason, second.reason);
}

TEST(OnlineAudit, LagTracksUnconsumedEntries) {
  GameScenario game(Cfg(4));
  game.Start();
  OnlineAuditor auditor(&game.player(0).log(), game.reference_client_image(),
                        game.config().run.mem_size);
  game.RunFor(kMicrosPerSecond);
  EXPECT_GT(auditor.LagEntries(), 0u);  // Entries accumulated, not polled.
  auditor.Poll();
  EXPECT_EQ(auditor.LagEntries(), 0u);
}

}  // namespace
}  // namespace avm
