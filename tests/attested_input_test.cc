#include <gtest/gtest.h>

#include "src/avmm/attested_input.h"
#include "src/sim/scenario.h"

namespace avm {
namespace {

TEST(AttestedInputEvent, SignAndVerify) {
  Prng rng(1);
  InputAttestor attestor("alice", SignatureScheme::kRsa768, rng);
  KeyRegistry registry;
  registry.RegisterSigner(attestor.signer());

  AttestedInputEvent e = attestor.Attest(kInputFire);
  EXPECT_EQ(e.device, "alice/input");
  EXPECT_EQ(e.code, kInputFire);
  EXPECT_TRUE(e.Verify(registry));

  AttestedInputEvent restored = AttestedInputEvent::Deserialize(e.Serialize());
  EXPECT_TRUE(restored.Verify(registry));
}

TEST(AttestedInputEvent, IndicesStrictlyIncrease) {
  Prng rng(2);
  InputAttestor attestor("alice", SignatureScheme::kNone, rng);
  EXPECT_EQ(attestor.Attest(1).index, 0u);
  EXPECT_EQ(attestor.Attest(1).index, 1u);
  EXPECT_EQ(attestor.Attest(2).index, 2u);
}

TEST(AttestedInputEvent, TamperedFieldsRejected) {
  Prng rng(3);
  InputAttestor attestor("alice", SignatureScheme::kRsa768, rng);
  KeyRegistry registry;
  registry.RegisterSigner(attestor.signer());
  AttestedInputEvent e = attestor.Attest(kInputUp);

  AttestedInputEvent bad = e;
  bad.code = kInputFire;  // Repurpose a movement attestation as FIRE.
  EXPECT_FALSE(bad.Verify(registry));
  bad = e;
  bad.index += 1;
  EXPECT_FALSE(bad.Verify(registry));
  bad = e;
  bad.device = "bob/input";
  EXPECT_FALSE(bad.Verify(registry));
}

GameScenarioConfig AttestedCfg(uint64_t seed) {
  GameScenarioConfig cfg;
  cfg.run = RunConfig::AvmmNoSig();
  cfg.num_players = 2;
  cfg.seed = seed;
  cfg.client.render_iters = 300;
  cfg.attested_input = true;
  return cfg;
}

TEST(AttestedInputAudit, HonestPlayersStillPass) {
  GameScenario game(AttestedCfg(10));
  game.Start();
  game.RunFor(2 * kMicrosPerSecond);
  game.Finish();
  for (int i = 0; i < 2; i++) {
    AuditOutcome audit = game.AuditPlayer(i);
    EXPECT_TRUE(audit.ok) << audit.Describe();
  }
}

TEST(AttestedInputAudit, CatchesTheForgedInputAimbot) {
  // The §7.2 payoff: the one cheat class plain AVMs cannot detect
  // becomes detectable once input devices sign their events. The forged
  // events carry no attestation, so the syntactic check rejects them.
  GameScenario game(AttestedCfg(11));
  game.SetCheat(0, RunnableCheat::kForgedInputAimbot);
  game.Start();
  game.RunFor(2 * kMicrosPerSecond);
  game.Finish();

  AuditOutcome cheater = game.AuditPlayer(0);
  EXPECT_FALSE(cheater.ok);
  EXPECT_NE(cheater.syntactic.reason.find("attestation"), std::string::npos)
      << cheater.Describe();

  AuditOutcome honest = game.AuditPlayer(1);
  EXPECT_TRUE(honest.ok) << honest.Describe();
}

TEST(AttestedInputAudit, SameCheatInvisibleWithoutAttestation) {
  // Control: identical scenario minus the trusted device -> undetected
  // (reproduces the baseline §4.8 limitation side by side).
  GameScenarioConfig cfg = AttestedCfg(12);
  cfg.attested_input = false;
  GameScenario game(cfg);
  game.SetCheat(0, RunnableCheat::kForgedInputAimbot);
  game.Start();
  game.RunFor(2 * kMicrosPerSecond);
  game.Finish();
  AuditOutcome cheater = game.AuditPlayer(0);
  EXPECT_TRUE(cheater.ok) << cheater.Describe();
}

TEST(AttestedInputAudit, ReplayedAttestationRejected) {
  // A cheat that replays a captured FIRE attestation over and over is
  // caught by the strictly increasing index requirement.
  Prng rng(13);
  InputAttestor attestor("p", SignatureScheme::kNone, rng);
  KeyRegistry registry;
  registry.RegisterSigner(attestor.signer());

  AttestedInputEvent fire = attestor.Attest(kInputFire);

  // Build a fake log segment with the same attestation consumed twice.
  TamperEvidentLog log("p");
  for (int i = 0; i < 2; i++) {
    TraceEvent ev;
    ev.kind = TraceKind::kPortIn;
    ev.port = kPortInput;
    ev.icount = static_cast<uint64_t>(100 + i);
    ev.value = fire.code;
    ev.data = fire.Serialize();
    log.Append(EntryType::kTraceOther, ev.Serialize());
  }
  LogSegment seg = log.Extract(1, 2);
  CheckResult check = VerifyAttestedInputs(seg, registry);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.reason.find("replayed"), std::string::npos);
}

TEST(AttestedInputAudit, MissingDeviceKeyFails) {
  TamperEvidentLog log("p");
  log.Append(EntryType::kInfo, ToBytes("x"));
  KeyRegistry registry;
  CheckResult check = VerifyAttestedInputs(log.Extract(1, 1), registry);
  EXPECT_FALSE(check.ok);
}

}  // namespace
}  // namespace avm
