#include <gtest/gtest.h>

#include "src/crypto/bignum.h"

namespace avm {
namespace {

TEST(Bignum, ConstructionAndLowU64) {
  EXPECT_TRUE(Bignum(0).IsZero());
  EXPECT_EQ(Bignum(1).LowU64(), 1u);
  EXPECT_EQ(Bignum(0xffffffffffffffffULL).LowU64(), 0xffffffffffffffffULL);
}

TEST(Bignum, BytesRoundTrip) {
  Bignum v = Bignum::FromHex("0123456789abcdef00ff");
  EXPECT_EQ(v.ToHex(), "123456789abcdef00ff");
  EXPECT_EQ(Bignum::FromBytes(v.ToBytes()), v);
}

TEST(Bignum, ToBytesFixedWidth) {
  Bignum v(0x1234);
  Bytes b = v.ToBytes(4);
  EXPECT_EQ(HexEncode(b), "00001234");
  EXPECT_THROW(Bignum::FromHex("ffffff").ToBytes(2), std::invalid_argument);
}

TEST(Bignum, LeadingZerosNormalized) {
  Bignum a = Bignum::FromHex("00000001");
  EXPECT_EQ(a, Bignum(1));
  EXPECT_EQ(a.BitLength(), 1u);
}

TEST(Bignum, BitLength) {
  EXPECT_EQ(Bignum(0).BitLength(), 0u);
  EXPECT_EQ(Bignum(1).BitLength(), 1u);
  EXPECT_EQ(Bignum(255).BitLength(), 8u);
  EXPECT_EQ(Bignum(256).BitLength(), 9u);
  EXPECT_EQ(Bignum::FromHex("80000000000000000000").BitLength(), 80u);
}

TEST(Bignum, CompareOrdering) {
  EXPECT_LT(Bignum(3), Bignum(5));
  EXPECT_GT(Bignum::FromHex("100000000"), Bignum(0xffffffffu));
  EXPECT_EQ(Bignum::Cmp(Bignum(7), Bignum(7)), 0);
}

TEST(Bignum, AddSubAgainstU64) {
  Prng rng(5);
  for (int i = 0; i < 200; i++) {
    uint64_t a = rng.Next() >> 1, b = rng.Next() >> 1;
    EXPECT_EQ(Bignum::Add(Bignum(a), Bignum(b)).LowU64(), a + b);
    uint64_t hi = std::max(a, b), lo = std::min(a, b);
    EXPECT_EQ(Bignum::Sub(Bignum(hi), Bignum(lo)).LowU64(), hi - lo);
  }
}

TEST(Bignum, SubNegativeThrows) {
  EXPECT_THROW(Bignum::Sub(Bignum(1), Bignum(2)), std::invalid_argument);
}

TEST(Bignum, MulAgainstU64) {
  Prng rng(6);
  for (int i = 0; i < 200; i++) {
    uint64_t a = rng.Next() & 0xffffffffu, b = rng.Next() & 0xffffffffu;
    EXPECT_EQ(Bignum::Mul(Bignum(a), Bignum(b)).LowU64(), a * b);
  }
}

TEST(Bignum, MulByZero) {
  EXPECT_TRUE(Bignum::Mul(Bignum(0), Bignum::FromHex("deadbeefcafe")).IsZero());
}

TEST(Bignum, DivModAgainstU64) {
  Prng rng(7);
  for (int i = 0; i < 500; i++) {
    uint64_t a = rng.Next(), b = rng.Next() % 1000000 + 1;
    Bignum q, r;
    Bignum::DivMod(Bignum(a), Bignum(b), &q, &r);
    EXPECT_EQ(q.LowU64(), a / b);
    EXPECT_EQ(r.LowU64(), a % b);
  }
}

TEST(Bignum, DivModInvariantLargeOperands) {
  // Property: a == q*b + r with r < b, across random widths.
  Prng rng(8);
  for (int i = 0; i < 100; i++) {
    Bignum a = Bignum::RandomWithBits(rng, 64 + rng.Below(400));
    Bignum b = Bignum::RandomWithBits(rng, 32 + rng.Below(200));
    Bignum q, r;
    Bignum::DivMod(a, b, &q, &r);
    EXPECT_LT(r, b);
    EXPECT_EQ(Bignum::Add(Bignum::Mul(q, b), r), a);
  }
}

TEST(Bignum, DivByZeroThrows) {
  Bignum q, r;
  EXPECT_THROW(Bignum::DivMod(Bignum(1), Bignum(0), &q, &r), std::invalid_argument);
}

TEST(Bignum, KnuthD6AddBackCase) {
  // Divisor chosen so the qhat correction path is plausible; invariant
  // check is what matters.
  Bignum a = Bignum::FromHex("800000000000000000000003");
  Bignum b = Bignum::FromHex("200000000000000000000001");
  Bignum q, r;
  Bignum::DivMod(a, b, &q, &r);
  EXPECT_EQ(Bignum::Add(Bignum::Mul(q, b), r), a);
  EXPECT_LT(r, b);
}

TEST(Bignum, Shifts) {
  Bignum v = Bignum::FromHex("123456789abcdef");
  EXPECT_EQ(Bignum::Shr(Bignum::Shl(v, 77), 77), v);
  EXPECT_EQ(Bignum::Shl(Bignum(1), 100).BitLength(), 101u);
  EXPECT_TRUE(Bignum::Shr(v, 1000).IsZero());
}

TEST(Bignum, PowModSmall) {
  // 3^200 mod 7 == 2 (since 3^6 == 1 mod 7, 200 % 6 == 2, 3^2 == 2 mod 7).
  EXPECT_EQ(Bignum::PowMod(Bignum(3), Bignum(200), Bignum(7)).LowU64(), 2u);
  EXPECT_EQ(Bignum::PowMod(Bignum(5), Bignum(0), Bignum(13)).LowU64(), 1u);
}

TEST(Bignum, PowModFermat) {
  // Fermat's little theorem: a^(p-1) == 1 mod p for prime p.
  Bignum p(1000000007);
  Prng rng(10);
  for (int i = 0; i < 20; i++) {
    Bignum a(rng.Next() % 1000000006 + 1);
    EXPECT_EQ(Bignum::PowMod(a, Bignum(1000000006), p).LowU64(), 1u);
  }
}

TEST(Bignum, GcdBasics) {
  EXPECT_EQ(Bignum::Gcd(Bignum(12), Bignum(18)).LowU64(), 6u);
  EXPECT_EQ(Bignum::Gcd(Bignum(17), Bignum(13)).LowU64(), 1u);
  EXPECT_EQ(Bignum::Gcd(Bignum(0), Bignum(5)).LowU64(), 5u);
}

TEST(Bignum, InvModProperty) {
  Prng rng(11);
  Bignum m(1000000007);
  for (int i = 0; i < 50; i++) {
    Bignum a(rng.Next() % 1000000006 + 1);
    Bignum inv = Bignum::InvMod(a, m);
    EXPECT_EQ(Bignum::MulMod(a, inv, m).LowU64(), 1u);
  }
}

TEST(Bignum, InvModNotInvertibleThrows) {
  EXPECT_THROW(Bignum::InvMod(Bignum(6), Bignum(9)), std::invalid_argument);
}

TEST(Bignum, RandomWithBitsExact) {
  Prng rng(12);
  for (size_t bits : {1u, 7u, 32u, 33u, 384u}) {
    Bignum v = Bignum::RandomWithBits(rng, bits);
    EXPECT_EQ(v.BitLength(), bits);
  }
}

TEST(Bignum, MillerRabinKnownPrimes) {
  Prng rng(13);
  for (uint64_t p : {2ull, 3ull, 5ull, 97ull, 7919ull, 1000000007ull, 2305843009213693951ull}) {
    EXPECT_TRUE(Bignum::IsProbablePrime(Bignum(p), rng)) << p;
  }
}

TEST(Bignum, MillerRabinKnownComposites) {
  Prng rng(14);
  // Includes Carmichael numbers (561, 41041) that fool Fermat tests.
  for (uint64_t c : {1ull, 4ull, 561ull, 41041ull, 1000000008ull, 7917ull}) {
    EXPECT_FALSE(Bignum::IsProbablePrime(Bignum(c), rng)) << c;
  }
}

TEST(Bignum, GeneratePrimeHasRequestedSize) {
  Prng rng(15);
  Bignum p = Bignum::GeneratePrime(rng, 96);
  EXPECT_EQ(p.BitLength(), 96u);
  EXPECT_TRUE(Bignum::IsProbablePrime(p, rng));
}

}  // namespace
}  // namespace avm
