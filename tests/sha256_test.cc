#include <gtest/gtest.h>

#include "src/crypto/sha256.h"
#include "src/util/prng.h"

namespace avm {
namespace {

// FIPS 180-4 / NIST test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(Sha256::Digest("").Hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(Sha256::Digest("abc").Hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(Sha256::Digest("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").Hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; i++) {
    h.Update(chunk);
  }
  EXPECT_EQ(h.Finish().Hex(), "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64 bytes: padding must spill into a second block.
  std::string m(64, 'x');
  Hash256 one = Sha256::Digest(m);
  Sha256 h;
  h.Update(std::string_view(m).substr(0, 31));
  h.Update(std::string_view(m).substr(31));
  EXPECT_EQ(h.Finish(), one);
}

TEST(Sha256, StreamingMatchesOneShotRandomSplits) {
  Prng rng(77);
  for (int trial = 0; trial < 50; trial++) {
    Bytes data = rng.RandomBytes(rng.Below(512));
    Hash256 one = Sha256::Digest(data);
    Sha256 h;
    size_t pos = 0;
    while (pos < data.size()) {
      size_t n = std::min<size_t>(rng.Below(97) + 1, data.size() - pos);
      h.Update(ByteView(data.data() + pos, n));
      pos += n;
    }
    EXPECT_EQ(h.Finish(), one);
  }
}

TEST(Sha256, UpdateAfterFinishThrows) {
  Sha256 h;
  h.Finish();
  EXPECT_THROW(h.Update("x"), std::logic_error);
  Sha256 h2;
  h2.Finish();
  EXPECT_THROW(h2.Finish(), std::logic_error);
}

TEST(Sha256, UpdateU64LittleEndian) {
  Sha256 a;
  a.UpdateU64(0x0102030405060708ULL);
  uint8_t le[8] = {8, 7, 6, 5, 4, 3, 2, 1};
  Sha256 b;
  b.Update(ByteView(le, 8));
  EXPECT_EQ(a.Finish(), b.Finish());
}

TEST(Hash256, ZeroAndComparisons) {
  Hash256 z = Hash256::Zero();
  EXPECT_TRUE(z.IsZero());
  Hash256 h = Sha256::Digest("x");
  EXPECT_FALSE(h.IsZero());
  EXPECT_NE(h, z);
  EXPECT_EQ(h, Sha256::Digest("x"));
}

TEST(Hash256, FromBytesValidatesLength) {
  Bytes short_buf(31, 0);
  EXPECT_THROW(Hash256::FromBytes(short_buf), std::invalid_argument);
  Bytes ok(32, 7);
  EXPECT_EQ(Hash256::FromBytes(ok).v[0], 7);
}

TEST(Hash256, ShortHexIsPrefix) {
  Hash256 h = Sha256::Digest("y");
  EXPECT_EQ(h.ShortHex(), h.Hex().substr(0, 8));
}

// RFC 4231 HMAC-SHA256 test vectors.
TEST(Hmac, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(HmacSha256(key, ToBytes("Hi There")).Hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(HmacSha256(ToBytes("Jefe"), ToBytes("what do ya want for nothing?")).Hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  Bytes key(131, 0xaa);
  EXPECT_EQ(HmacSha256(key, ToBytes("Test Using Larger Than Block-Size Key - Hash Key First")).Hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, KeySensitivity) {
  Bytes m = ToBytes("message");
  EXPECT_NE(HmacSha256(ToBytes("k1"), m), HmacSha256(ToBytes("k2"), m));
}

// Hardware/portable agreement, mirroring store_test's CRC-32C pattern:
// Sha256::Digest dispatches to SHA-NI / ARMv8-CE when available, and
// must produce the portable digest for every length and chunking. (On
// hosts without the extension both sides run the portable code and the
// sweep is trivially green; the hardware path is what CI's x86 runners
// exercise.)
TEST(Sha256Hardware, AgreesWithPortableAcrossLengths) {
  Prng rng(42);
  Bytes data;
  data.reserve(300);
  for (int len = 0; len <= 300; len++) {
    Sha256 portable = Sha256::PortableForTesting();
    portable.Update(ByteView(data));
    EXPECT_EQ(Sha256::Digest(data), portable.Finish()) << "length " << len;
    data.push_back(static_cast<uint8_t>(rng.Next()));
  }
}

TEST(Sha256Hardware, AgreesWithPortableOnChunkedUpdates) {
  Prng rng(43);
  Bytes data(64 * 1024 + 17);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  // Uneven Update() splits exercise the partial-block buffer against the
  // multi-block hardware fast path.
  Sha256 dispatched;
  Sha256 portable = Sha256::PortableForTesting();
  size_t pos = 0;
  while (pos < data.size()) {
    size_t n = std::min<size_t>(1 + rng.Next() % 511, data.size() - pos);
    ByteView chunk(data.data() + pos, n);
    dispatched.Update(chunk);
    portable.Update(chunk);
    pos += n;
  }
  EXPECT_EQ(dispatched.Finish(), portable.Finish());
  if (Sha256::HardwareAvailable()) {
    SUCCEED() << "hardware compression exercised";
  }
}

}  // namespace
}  // namespace avm
