// The durable segmented log store: append/roll/seal, sparse-index
// extraction, crash recovery (including torn tail writes), and the
// acceptance bar -- store-backed audits produce verdicts identical to
// the in-memory path on the same recorded scenario.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/sim/scenario.h"
#include "src/store/log_store.h"
#include "src/util/crc32.h"
#include "src/util/prng.h"

namespace fs = std::filesystem;

namespace avm {
namespace {

class StoreFixture : public ::testing::Test {
 protected:
  // A fresh directory per test, removed on teardown.
  void SetUp() override {
    const ::testing::TestInfo* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::path(::testing::TempDir()) / (std::string("avm_store_") + info->name())).string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  // Small segments so a few hundred entries roll several times.
  LogStoreOptions SmallSegments() {
    LogStoreOptions opts;
    opts.seal_threshold_bytes = 4096;
    opts.index_every = 4;
    opts.sync = false;  // Durability is the OS's problem in unit tests.
    return opts;
  }

  // Appends n entries with varied types and compressible content.
  static void Fill(TamperEvidentLog& log, size_t n) {
    for (size_t i = 0; i < n; i++) {
      EntryType t = (i % 3 == 0)   ? EntryType::kInfo
                    : (i % 3 == 1) ? EntryType::kTraceTime
                                   : EntryType::kTraceOther;
      log.Append(t, ToBytes("entry-" + std::to_string(i) + "-" + std::string(48, 'x')));
    }
  }

  static std::string FindActiveFile(const std::string& dir) {
    for (const fs::directory_entry& de : fs::directory_iterator(dir)) {
      if (de.path().extension() == ".log") {
        return de.path().string();
      }
    }
    return {};
  }

  std::string dir_;
};

TEST_F(StoreFixture, AppendRollsAndSealsSegments) {
  TamperEvidentLog log("bob");
  auto store = LogStore::Open(dir_, "bob", SmallSegments());
  log.SetSink(store.get());
  Fill(log, 300);

  EXPECT_EQ(store->LastSeq(), 300u);
  EXPECT_EQ(store->LastHash(), log.LastHash());
  EXPECT_GE(store->SegmentCount(), 3u);
  EXPECT_GT(store->DiskBytes(), 0u);

  // Seal() is the barrier for the background sealer pool: only after it
  // is every rolled segment guaranteed promoted.
  store->Seal();
  EXPECT_EQ(store->SealedCount(), store->SegmentCount());
  // Sealed segments are LZSS-compressed (§6.4): repetitive log content
  // takes fewer bytes on disk than its wire size.
  EXPECT_LT(store->DiskBytes(), log.TotalWireSize());
}

TEST_F(StoreFixture, WatermarkAdvancesByGroupCommitPolicy) {
  LogStoreOptions opts = SmallSegments();
  opts.seal_threshold_bytes = 1u << 20;  // No rolls: isolate group commit.
  opts.sealer_threads = 0;
  opts.group_commit.max_entries = 10;
  opts.group_commit.max_bytes = 1u << 30;
  opts.group_commit.max_delay_ms = 0;  // No timer: deterministic.
  TamperEvidentLog log("bob");
  auto store = LogStore::Open(dir_, "bob", opts);
  log.SetSink(store.get());

  uint64_t prev = 0;
  for (size_t i = 0; i < 25; i++) {
    log.Append(EntryType::kInfo, ToBytes("e" + std::to_string(i)));
    // Monotone, never ahead of what exists.
    uint64_t wm = store->DurableSeq();
    EXPECT_GE(wm, prev);
    EXPECT_LE(wm, store->LastSeq());
    prev = wm;
  }
  // Entry threshold 10: two full windows committed, tail of 5 pending.
  EXPECT_EQ(store->LastSeq(), 25u);
  EXPECT_EQ(store->DurableSeq(), 20u);
  store->Flush();
  EXPECT_EQ(store->DurableSeq(), 25u);
}

TEST_F(StoreFixture, RollingFlushesTheWholeSegmentBehindTheWatermark) {
  LogStoreOptions opts = SmallSegments();
  opts.sealer_threads = 0;
  opts.group_commit.max_entries = 1u << 20;  // Only rolls force commits.
  opts.group_commit.max_bytes = 1u << 30;
  opts.group_commit.max_delay_ms = 0;
  TamperEvidentLog log("bob");
  auto store = LogStore::Open(dir_, "bob", opts);
  log.SetSink(store.get());
  size_t n = 0;
  while (store->SegmentCount() < 3) {
    log.Append(EntryType::kInfo, ToBytes("entry-" + std::to_string(n++) + std::string(48, 'x')));
  }
  // The durable prefix covers every rolled segment: rolling fsyncs the
  // old file before the next segment starts, so the watermark can lag
  // only within the active segment.
  uint64_t active_first = store->DurableSeq() + 1;
  LogSegment durable_prefix = store->Extract(1, store->DurableSeq());
  EXPECT_EQ(durable_prefix.Serialize(), log.Extract(1, store->DurableSeq()).Serialize());
  EXPECT_GT(active_first, 1u);
  store->Seal();
  EXPECT_EQ(store->DurableSeq(), store->LastSeq());
}

TEST_F(StoreFixture, ArchivalTierReadsBackBitForBit) {
  LogStoreOptions opts = SmallSegments();
  opts.archive_keep_sealed = 1;  // Everything but the newest sealed goes cold.
  TamperEvidentLog log("bob");
  auto store = LogStore::Open(dir_, "bob", opts);
  log.SetSink(store.get());
  Fill(log, 300);
  store->Seal();
  ASSERT_GE(store->ArchivedCount(), 1u);
  ASSERT_LE(store->SealedCount() - store->ArchivedCount(), 1u);

  // Reads spanning hot/sealed/archival produce the same bytes as the
  // in-memory log.
  EXPECT_EQ(store->Extract(1, 300).Serialize(), log.Extract(1, 300).Serialize());

  // And a fresh process recovers the archival tier (wider footer, node
  // binding) transparently.
  log.SetSink(nullptr);
  store.reset();
  auto reopened = LogStore::Open(dir_, opts);
  EXPECT_EQ(reopened->node(), "bob");
  EXPECT_EQ(reopened->LastSeq(), 300u);
  EXPECT_GE(reopened->ArchivedCount(), 1u);
  EXPECT_EQ(reopened->Extract(1, 300).Serialize(), log.Extract(1, 300).Serialize());
  EXPECT_EQ(reopened->LastHash(), log.LastHash());
}

TEST_F(StoreFixture, ArchivedFooterBindsNodeIdentity) {
  LogStoreOptions opts = SmallSegments();
  opts.archive_keep_sealed = 0;
  TamperEvidentLog log("bob");
  {
    auto store = LogStore::Open(dir_, "bob", opts);
    log.SetSink(store.get());
    Fill(log, 200);
    store->Seal();
    ASSERT_GE(store->ArchivedCount(), 1u);
    log.SetSink(nullptr);
  }
  // The archival footer binds the whole-store node hash: an archived
  // segment transplanted into another node's store is refused on
  // recovery instead of silently adopted.
  std::string dir2 = dir_ + "_other";
  fs::remove_all(dir2);
  { auto other = LogStore::Open(dir2, "mallory", opts); }
  for (const fs::directory_entry& de : fs::directory_iterator(dir_)) {
    if (de.path().extension() == ".arch") {
      fs::copy_file(de.path(), fs::path(dir2) / de.path().filename());
      break;
    }
  }
  EXPECT_THROW(LogStore::Open(dir2, opts), StoreError);
  fs::remove_all(dir2);
}

TEST_F(StoreFixture, ExtractMatchesInMemoryAcrossSegmentBoundaries) {
  TamperEvidentLog log("bob");
  auto store = LogStore::Open(dir_, "bob", SmallSegments());
  log.SetSink(store.get());
  Fill(log, 257);

  Prng rng(11);
  for (int trial = 0; trial < 40; trial++) {
    uint64_t from = 1 + rng.Below(257);
    uint64_t to = from + rng.Below(257 - from + 1);
    LogSegment mem = log.Extract(from, to);
    LogSegment disk = store->Extract(from, to);
    ASSERT_EQ(mem.Serialize(), disk.Serialize()) << "range [" << from << ", " << to << "]";
  }
  EXPECT_THROW(store->Extract(0, 5), std::out_of_range);
  EXPECT_THROW(store->Extract(5, 4), std::out_of_range);
  EXPECT_THROW(store->Extract(1, 258), std::out_of_range);
}

TEST_F(StoreFixture, CursorStreamsEntriesWithPriorHash) {
  TamperEvidentLog log("bob");
  auto store = LogStore::Open(dir_, "bob", SmallSegments());
  log.SetSink(store.get());
  Fill(log, 120);

  SegmentCursor cur = store->Cursor(50, 100);
  EXPECT_EQ(cur.prior_hash(), log.At(49).hash);
  uint64_t expect = 50;
  while (const LogEntry* e = cur.Next()) {
    EXPECT_EQ(e->seq, expect);
    EXPECT_EQ(e->hash, log.At(expect).hash);
    expect++;
  }
  EXPECT_EQ(expect, 101u);
}

TEST_F(StoreFixture, ReopenRecoversStateAndNodeIdentity) {
  TamperEvidentLog log("carol");
  {
    auto store = LogStore::Open(dir_, "carol", SmallSegments());
    log.SetSink(store.get());
    Fill(log, 150);
    log.SetSink(nullptr);
  }
  // Reopen without naming the node: identity comes from store.meta.
  auto reopened = LogStore::Open(dir_, SmallSegments());
  EXPECT_EQ(reopened->node(), "carol");
  EXPECT_EQ(reopened->LastSeq(), 150u);
  EXPECT_EQ(reopened->LastHash(), log.LastHash());
  EXPECT_FALSE(reopened->RecoveredTornTail());
  EXPECT_EQ(reopened->Extract(1, 150).Serialize(), log.Extract(1, 150).Serialize());

  // Backfill skips what the store already holds; appends continue.
  log.SetSink(reopened.get());
  Fill(log, 10);
  EXPECT_EQ(reopened->LastSeq(), 160u);
  EXPECT_EQ(reopened->Extract(140, 160).Serialize(), log.Extract(140, 160).Serialize());

  EXPECT_THROW(LogStore::Open(dir_, "mallory", SmallSegments()), StoreError);
}

TEST_F(StoreFixture, ReopenTruncatesTornTailGarbage) {
  TamperEvidentLog log("bob");
  {
    auto store = LogStore::Open(dir_, "bob", SmallSegments());
    log.SetSink(store.get());
    Fill(log, 50);
    log.SetSink(nullptr);
  }
  // Simulate a torn write: half a record frame of garbage at the tail.
  std::string active = FindActiveFile(dir_);
  ASSERT_FALSE(active.empty());
  {
    std::ofstream out(active, std::ios::binary | std::ios::app);
    const char garbage[] = "\xff\xff\xff\xff torn";
    out.write(garbage, sizeof(garbage));
  }
  auto store = LogStore::Open(dir_, SmallSegments());
  EXPECT_TRUE(store->RecoveredTornTail());
  EXPECT_EQ(store->LastSeq(), 50u);
  EXPECT_EQ(store->LastHash(), log.LastHash());
  EXPECT_EQ(store->Extract(1, 50).Serialize(), log.Extract(1, 50).Serialize());
}

TEST_F(StoreFixture, ReopenTruncatesHalfWrittenRecord) {
  TamperEvidentLog log("bob");
  {
    auto store = LogStore::Open(dir_, "bob", SmallSegments());
    log.SetSink(store.get());
    Fill(log, 50);
    log.SetSink(nullptr);
  }
  // Cut the last record mid-payload (power loss mid-write).
  std::string active = FindActiveFile(dir_);
  ASSERT_FALSE(active.empty());
  uint64_t size = fs::file_size(active);
  fs::resize_file(active, size - 5);

  auto store = LogStore::Open(dir_, SmallSegments());
  EXPECT_TRUE(store->RecoveredTornTail());
  // The torn entry is gone; everything before it survived.
  EXPECT_EQ(store->LastSeq(), 49u);
  EXPECT_EQ(store->LastHash(), log.At(49).hash);

  // The recorder resumes by re-attaching; backfill replays only seq 50.
  log.SetSink(store.get());
  EXPECT_EQ(store->LastSeq(), 50u);
  EXPECT_EQ(store->Extract(1, 50).Serialize(), log.Extract(1, 50).Serialize());
}

TEST_F(StoreFixture, CorruptTailRecordIsDroppedOnRecovery) {
  TamperEvidentLog log("bob");
  {
    auto store = LogStore::Open(dir_, "bob", SmallSegments());
    log.SetSink(store.get());
    Fill(log, 20);
    log.SetSink(nullptr);
  }
  std::string active = FindActiveFile(dir_);
  ASSERT_FALSE(active.empty());
  // Flip one byte in the last record's payload: the CRC catches it.
  uint64_t size = fs::file_size(active);
  {
    std::fstream f(active, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(size - 10));
    char b;
    f.seekg(static_cast<std::streamoff>(size - 10));
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(static_cast<std::streamoff>(size - 10));
    f.write(&b, 1);
  }
  auto store = LogStore::Open(dir_, SmallSegments());
  EXPECT_TRUE(store->RecoveredTornTail());
  EXPECT_EQ(store->LastSeq(), 19u);
}

TEST_F(StoreFixture, AppendRejectsSequenceGaps) {
  auto store = LogStore::Open(dir_, "bob", SmallSegments());
  TamperEvidentLog log("bob");
  Fill(log, 3);
  EXPECT_THROW(store->Append(log.At(2)), StoreError);
  store->Append(log.At(1));
  EXPECT_THROW(store->Append(log.At(3)), StoreError);
  store->Append(log.At(2));
  EXPECT_EQ(store->LastSeq(), 2u);
}

TEST_F(StoreFixture, AuxFileBatchedIsAtomicAndRecoverable) {
  LogStoreOptions opts = SmallSegments();
  opts.sealer_threads = 0;
  opts.group_commit.max_delay_ms = 0;
  TamperEvidentLog log("bob");
  auto store = LogStore::Open(dir_, "bob", opts);
  log.SetSink(store.get());
  Fill(log, 10);

  std::string aux = (fs::path(dir_) / "audit-test.ckpt").string();
  store->WriteAuxFileBatched(aux, ToBytes("checkpoint-v1"));
  // Visible immediately (the rename is not deferred, only the fsync).
  std::optional<Bytes> got = LogStore::ReadAuxFile(aux);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, ToBytes("checkpoint-v1"));

  // Overwrites are atomic: a reader sees old or new content, never a
  // torn file, and the fsync rides the next group commit.
  store->WriteAuxFileBatched(aux, ToBytes("checkpoint-v2-longer-content"));
  store->Flush();
  got = LogStore::ReadAuxFile(aux);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, ToBytes("checkpoint-v2-longer-content"));

  // A crash mid-write leaves only a *.tmp; recovery sweeps it and the
  // previous content survives.
  {
    std::ofstream tmp(aux + ".tmp", std::ios::binary);
    tmp << "torn half-written checkpoint";
  }
  log.SetSink(nullptr);
  store.reset();
  auto reopened = LogStore::Open(dir_, opts);
  EXPECT_FALSE(fs::exists(aux + ".tmp"));
  got = LogStore::ReadAuxFile(aux);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, ToBytes("checkpoint-v2-longer-content"));
}

// --- kill-point sweep: crash anywhere, recover to the watermark ---------

// Deterministic crash images: sealer_threads = 0 and no flush timer put
// every kill point on the appending thread, and the test_hook copies
// the directory byte-for-byte at the first hit of the chosen point --
// exactly what a power cut at that instruction would leave behind.
TEST_F(StoreFixture, KillPointSweepRecoversToWatermarkEverywhere) {
  const char* kKillPoints[] = {
      "pre-flush",         "post-flush",         "post-roll",
      "pre-seal-rename",   "pre-seal-unlink",    "pre-archive-rename",
      "pre-archive-unlink"};
  for (const char* point : kKillPoints) {
    SCOPED_TRACE(point);
    std::string live_dir = dir_ + "_live";
    std::string crash_dir = dir_ + "_crash";
    fs::remove_all(live_dir);
    fs::remove_all(crash_dir);

    LogStoreOptions opts;
    opts.seal_threshold_bytes = 2048;
    opts.index_every = 4;
    opts.sync = false;
    opts.sealer_threads = 0;  // Promotions inline: kill points are exact.
    opts.group_commit.max_entries = 8;
    opts.group_commit.max_bytes = 1u << 30;
    opts.group_commit.max_delay_ms = 0;
    opts.archive_keep_sealed = 1;  // Exercise the archival points too.
    bool captured = false;
    opts.test_hook = [&](const char* at) {
      if (captured || std::string(at) != point) {
        return;
      }
      captured = true;
      fs::create_directories(crash_dir);
      for (const fs::directory_entry& de : fs::directory_iterator(live_dir)) {
        fs::copy_file(de.path(), fs::path(crash_dir) / de.path().filename());
      }
    };

    TamperEvidentLog log("bob");
    auto store = LogStore::Open(live_dir, "bob", opts);
    log.SetSink(store.get());
    uint64_t watermark_before_crash = 0;
    for (size_t i = 0; i < 400 && !captured; i++) {
      if (!captured) {
        watermark_before_crash = store->DurableSeq();
      }
      log.Append(EntryType::kInfo,
                 ToBytes("entry-" + std::to_string(i) + "-" + std::string(40, 'k')));
    }
    ASSERT_TRUE(captured) << "kill point never hit: " << point;
    log.SetSink(nullptr);
    store.reset();

    // Recovery of the crash image: everything at or below the watermark
    // observed before the crash survives, the chain is contiguous, and
    // the surviving prefix is bit-for-bit the in-memory log's prefix
    // (what a from-genesis audit of the survivor checks).
    auto recovered = LogStore::Open(crash_dir, opts);
    EXPECT_EQ(recovered->node(), "bob");
    uint64_t last = recovered->LastSeq();
    EXPECT_GE(last, watermark_before_crash);
    EXPECT_GE(recovered->DurableSeq(), watermark_before_crash);
    if (last > 0) {
      EXPECT_EQ(recovered->Extract(1, last).Serialize(), log.Extract(1, last).Serialize());
      EXPECT_EQ(recovered->LastHash(), log.At(last).hash);
    }
    // And the recovered store accepts new appends from where it stands:
    // continue the chain with the next entries the in-memory log holds.
    for (uint64_t s = last + 1; s <= std::min<uint64_t>(last + 5, log.LastSeq()); s++) {
      const LogEntry& e = log.At(s);
      recovered->Append(e);
      EXPECT_EQ(recovered->LastSeq(), s);
      EXPECT_EQ(recovered->LastHash(), e.hash);
    }
    recovered.reset();
    fs::remove_all(live_dir);
    fs::remove_all(crash_dir);
  }
}

KvScenarioConfig FastKv(uint64_t seed) {
  KvScenarioConfig cfg;
  cfg.run = RunConfig::AvmmNoSig();
  cfg.seed = seed;
  cfg.snapshot_interval = 200 * kMicrosPerMilli;
  cfg.client.op_period_us = 5 * kMicrosPerMilli;
  return cfg;
}

TEST_F(StoreFixture, StoreBackedFullAuditMatchesInMemory) {
  KvScenario kv(FastKv(21));
  kv.Start();
  LogStoreOptions opts = SmallSegments();
  opts.seal_threshold_bytes = 64 * 1024;
  auto store = LogStore::Open(dir_, kv.server().id(), opts);
  kv.server().SpillTo(store.get());
  kv.RunFor(2 * kMicrosPerSecond);
  kv.Finish();

  std::vector<Authenticator> auths = kv.CollectAuthsForServer();
  Auditor auditor("client", &kv.registry());
  AuditOutcome mem = auditor.AuditFull(kv.server(), kv.reference_server_image(), auths);
  AuditOutcome disk =
      auditor.AuditFull(kv.server(), *store, kv.reference_server_image(), auths);
  EXPECT_TRUE(mem.ok) << mem.Describe();
  EXPECT_EQ(mem.ok, disk.ok);
  EXPECT_EQ(mem.Describe(), disk.Describe());
  EXPECT_EQ(mem.log_bytes, disk.log_bytes);

  // The streaming syntactic triage agrees without materializing the log.
  CheckResult stream = StreamingSyntacticCheck(*store, auths, kv.registry(), auditor.config());
  EXPECT_TRUE(stream.ok) << stream.reason;
}

TEST_F(StoreFixture, StoreBackedSpotChecksMatchInMemoryIncludingCheatVerdicts) {
  KvScenario kv(FastKv(22));
  kv.Start();
  auto store = LogStore::Open(dir_, kv.server().id(), SmallSegments());
  kv.server().SpillTo(store.get());
  // Corrupt the server state mid-run; exactly one window must fail,
  // identically on both paths.
  kv.server().SetCheatHook([](Machine& m, SimTime now) {
    if (now == 700 * kMicrosPerMilli) {
      m.WriteMem32(kKvTableAddr + 32, 0xdead);
    }
  });
  kv.RunFor(2 * kMicrosPerSecond);
  kv.Finish();

  std::vector<SnapshotIndexEntry> snaps = IndexSnapshots(kv.server().log());
  std::vector<SnapshotIndexEntry> snaps_disk = IndexSnapshots(*store);
  ASSERT_GE(snaps.size(), 4u);
  ASSERT_EQ(snaps.size(), snaps_disk.size());
  for (size_t i = 0; i < snaps.size(); i++) {
    EXPECT_EQ(snaps[i].seq, snaps_disk[i].seq);
    EXPECT_EQ(snaps[i].meta.snapshot_id, snaps_disk[i].meta.snapshot_id);
  }

  std::vector<Authenticator> auths = kv.CollectAuthsForServer();
  std::vector<std::pair<uint64_t, uint64_t>> windows;
  for (size_t i = 0; i + 1 < snaps.size(); i++) {
    windows.emplace_back(snaps[i].meta.snapshot_id, snaps[i + 1].meta.snapshot_id);
  }
  Auditor auditor("client", &kv.registry());
  std::vector<AuditOutcome> mem = auditor.SpotCheckMany(kv.server(), windows, auths);
  std::vector<AuditOutcome> disk = auditor.SpotCheckMany(kv.server(), *store, windows, auths);
  ASSERT_EQ(mem.size(), disk.size());
  int failures = 0;
  for (size_t i = 0; i < mem.size(); i++) {
    EXPECT_EQ(mem[i].ok, disk[i].ok) << "window " << i;
    EXPECT_EQ(mem[i].Describe(), disk[i].Describe()) << "window " << i;
    failures += mem[i].ok ? 0 : 1;
  }
  EXPECT_EQ(failures, 1);
}

TEST_F(StoreFixture, FreshProcessStyleAuditFromDiskOnly) {
  KvScenario kv(FastKv(23));
  kv.Start();
  {
    auto store = LogStore::Open(dir_, kv.server().id(), SmallSegments());
    kv.server().SpillTo(store.get());
    kv.RunFor(kMicrosPerSecond);
    kv.Finish();
    kv.server().log().SetSink(nullptr);
    store->Seal();
  }
  // A fresh auditor opens the directory cold, as a separate process
  // would, and audits without ever touching the in-memory log.
  auto store = LogStore::Open(dir_, SmallSegments());
  EXPECT_EQ(store->LastSeq(), kv.server().log().LastSeq());
  std::vector<Authenticator> auths = kv.CollectAuthsForServer();
  Auditor auditor("client", &kv.registry());
  AuditOutcome mem = auditor.AuditFull(kv.server(), kv.reference_server_image(), auths);
  AuditOutcome disk = auditor.AuditFull(kv.server(), *store, kv.reference_server_image(), auths);
  EXPECT_TRUE(disk.ok) << disk.Describe();
  EXPECT_EQ(mem.Describe(), disk.Describe());
}

TEST_F(StoreFixture, TamperedSealedSegmentFailsCleanly) {
  TamperEvidentLog log("bob");
  Prng rng(5);
  Signer signer("bob", SignatureScheme::kRsa768, rng);
  KeyRegistry registry;
  registry.RegisterSigner(signer);
  auto store = LogStore::Open(dir_, "bob", SmallSegments());
  log.SetSink(store.get());
  // kInfo only: opaque content, so the syntactic check exercises just
  // the chain/authenticator/store layers this test is about.
  for (int i = 0; i < 100; i++) {
    log.Append(EntryType::kInfo, ToBytes("note-" + std::to_string(i) + std::string(48, 'x')));
  }
  store->Seal();
  std::vector<Authenticator> auths = {log.Authenticate(signer)};

  AuditConfig cfg;
  ASSERT_TRUE(StreamingSyntacticCheck(*store, auths, registry, cfg).ok);

  // Flip one byte in the middle of a sealed segment's body.
  for (const fs::directory_entry& de : fs::directory_iterator(dir_)) {
    if (de.path().extension() == ".seal") {
      std::fstream f(de.path(), std::ios::binary | std::ios::in | std::ios::out);
      char b;
      f.seekg(200);
      f.read(&b, 1);
      b = static_cast<char>(b ^ 0x55);
      f.seekp(200);
      f.write(&b, 1);
      break;
    }
  }
  // The store layer reports corruption as a failed check, not a crash.
  auto fresh = LogStore::Open(dir_, SmallSegments());
  CheckResult r = StreamingSyntacticCheck(*fresh, auths, registry, cfg);
  EXPECT_FALSE(r.ok);
  // Direct extraction surfaces the same corruption as a clean error.
  EXPECT_THROW((void)fresh->Extract(1, 100), StoreError);
}

// The store's on-disk framing depends on CRC-32C; the hardware
// (SSE4.2 / ARMv8-CE) path and the table fallback must compute the
// identical function on arbitrary buffers, seeds, and chains.
TEST(Crc32cDispatch, HardwareAndPortableAgree) {
  Prng rng(0xc32c);
  for (int i = 0; i < 300; i++) {
    size_t len = static_cast<size_t>(rng.Range(0, 300));
    Bytes buf = rng.RandomBytes(len);
    uint32_t seed = (i % 3 == 0) ? 0 : static_cast<uint32_t>(rng.Next());
    ASSERT_EQ(Crc32c(buf, seed), Crc32cPortable(buf, seed))
        << "len=" << len << " seed=" << seed << " hw=" << Crc32cHardwareAvailable();
  }
  // Multi-buffer chaining must agree too (the store CRCs header and
  // body as one chained stream).
  Bytes a = rng.RandomBytes(1001);
  Bytes b = rng.RandomBytes(77);
  EXPECT_EQ(Crc32c(b, Crc32c(a)), Crc32cPortable(b, Crc32cPortable(a)));
  // Odd alignments/lengths around the 4/8-byte fast-path boundaries.
  Bytes c = rng.RandomBytes(64);
  for (size_t off = 0; off < 9 && off < c.size(); off++) {
    ByteView v(c.data() + off, c.size() - off);
    EXPECT_EQ(Crc32c(v), Crc32cPortable(v));
  }
}

}  // namespace
}  // namespace avm
