// Batched authenticators and the async signing pipeline: windowed
// commitments must preserve every tamper-evidence verdict while making
// RSA signatures rare on the hot path.
//
// Covers: BatchAuthenticator verification (including forged members and
// cross-node replay), the batched/async transport protocol end to end
// with real RSA-768 keys, adversarial frames, crash recovery re-signing
// from the durable store, and the acceptance bar -- audit, spot-check
// and cheat-detection verdicts identical across all three sign modes.
#include <gtest/gtest.h>

#include <filesystem>

#include "src/audit/evidence.h"
#include "src/avmm/transport.h"
#include "src/sim/scenario.h"
#include "src/store/log_store.h"
#include "src/tel/batch.h"

namespace fs = std::filesystem;

namespace avm {
namespace {

// ---------------------------------------------------- unit: batches ----

struct BatchFixture : public ::testing::Test {
  BatchFixture() : rng(7), alice("alice", SignatureScheme::kRsa768, rng), log("alice") {
    registry.RegisterSigner(alice);
    for (int i = 0; i < 10; i++) {
      log.Append(i % 2 == 0 ? EntryType::kTraceTime : EntryType::kInfo,
                 ToBytes("entry-" + std::to_string(i)));
    }
  }

  Prng rng;
  Signer alice;
  KeyRegistry registry;
  TamperEvidentLog log;
};

TEST_F(BatchFixture, WindowVerifiesAndReproducesPerSeqHashes) {
  BatchAuthenticator b = BatchAuthenticator::FromLog(log, alice, 3, 9);
  EXPECT_TRUE(b.Verify(registry).ok);
  EXPECT_TRUE(b.Covers(3));
  EXPECT_TRUE(b.Covers(9));
  EXPECT_FALSE(b.Covers(2));
  EXPECT_FALSE(b.Covers(10));
  // The walk reproduces the exact chain hash of every covered entry:
  // per-seq verdicts are bit-for-bit those of per-entry authenticators.
  for (uint64_t s = 3; s <= 9; s++) {
    EXPECT_EQ(b.HashAt(s), log.At(s).hash) << "seq " << s;
  }
}

TEST_F(BatchFixture, ForgedBatchMemberDetected) {
  BatchAuthenticator b = BatchAuthenticator::FromLog(log, alice, 1, 10);
  ASSERT_TRUE(b.Verify(registry).ok);
  // Tamper with one member's content hash: the walk no longer reaches
  // the signed commitment.
  b.links[4].content_hash = Sha256::Digest("forged");
  CheckResult r = b.Verify(registry);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.reason, "batch links do not walk to the signed commitment");
}

TEST_F(BatchFixture, ReplayedAsAnotherNodesCommitmentRejected) {
  Signer bob("bob", SignatureScheme::kRsa768, rng);
  registry.RegisterSigner(bob);
  BatchAuthenticator b = BatchAuthenticator::FromLog(log, alice, 1, 10);
  // An attacker relabels alice's batch as bob's: the signed payload
  // binds the node id, so the signature cannot transfer.
  b.commit.node = "bob";
  CheckResult r = b.Verify(registry);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.reason, "batch commitment signature invalid");
}

TEST_F(BatchFixture, AuthenticatorStoreAddBatchKeepsForkDetection) {
  AuthenticatorStore store;
  BatchAuthenticator b = BatchAuthenticator::FromLog(log, alice, 1, 10);
  EXPECT_TRUE(store.AddBatch(b, registry));
  EXPECT_EQ(store.CountFor("alice"), 1u);
  // A second signed commitment for the same seq but a different hash is
  // fork proof, exactly as with per-message authenticators.
  Authenticator forked;
  forked.node = "alice";
  forked.seq = 10;
  forked.hash = Sha256::Digest("other history");
  forked.signature =
      alice.SignDigest(Authenticator::SignedPayloadDigest("alice", 10, forked.hash));
  EXPECT_TRUE(store.Add(forked, registry));
  ASSERT_EQ(store.fork_proofs().size(), 1u);
  EXPECT_TRUE(IsForkProof(store.fork_proofs()[0].first, store.fork_proofs()[0].second, registry));
}

// ------------------------------------------- transport: batched mode ----

struct BatchTransportFixture : public ::testing::Test {
  explicit BatchTransportFixture(RunConfig config = RunConfig::AvmmRsa768Batched(4))
      : cfg(config),
        rng(1),
        alice_signer("alice", cfg.scheme, rng),
        bob_signer("bob", cfg.scheme, rng),
        alice_log("alice"),
        bob_log("bob") {
    registry.RegisterSigner(alice_signer);
    registry.RegisterSigner(bob_signer);
    alice = std::make_unique<Transport>("alice", &cfg, &alice_log, &alice_signer, &net, &registry,
                                        &alice_auths);
    bob = std::make_unique<Transport>("bob", &cfg, &bob_log, &bob_signer, &net, &registry,
                                      &bob_auths);
    net.AttachHost("alice", alice.get());
    net.AttachHost("bob", bob.get());
    bob->SetPacketHandler([this](SimTime, const NodeId& src, const Bytes& payload) {
      bob_received.emplace_back(src, payload);
    });
  }

  void Settle(SimTime until) { net.DeliverUntil(until); }

  size_t PeerCommitEntries(const TamperEvidentLog& log) {
    size_t n = 0;
    for (const LogEntry& e : log.entries()) {
      if (e.type == EntryType::kInfo && PeerCommitRecord::IsPeerCommit(e.content)) {
        n++;
      }
    }
    return n;
  }

  RunConfig cfg;
  Prng rng;
  Signer alice_signer, bob_signer;
  KeyRegistry registry;
  SimNetwork net;
  TamperEvidentLog alice_log, bob_log;
  AuthenticatorStore alice_auths, bob_auths;
  std::unique_ptr<Transport> alice, bob;
  std::vector<std::pair<NodeId, Bytes>> bob_received;
};

TEST_F(BatchTransportFixture, RoundTripDeliversAndAmortizesSignatures) {
  const int kMessages = 12;
  for (int i = 0; i < kMessages; i++) {
    alice->SendPacket(0, "bob", ToBytes("msg-" + std::to_string(i)));
    Settle(kMicrosPerSecond);
  }
  alice->Flush(kMicrosPerSecond);
  bob->Flush(kMicrosPerSecond);
  Settle(2 * kMicrosPerSecond);

  ASSERT_EQ(bob_received.size(), static_cast<size_t>(kMessages));
  EXPECT_TRUE(alice->violations().empty()) << alice->violations().front();
  EXPECT_TRUE(bob->violations().empty()) << bob->violations().front();
  EXPECT_EQ(alice->stats().acks_received, static_cast<uint64_t>(kMessages));
  EXPECT_TRUE(alice->suspected().empty());

  // The point of batching: far fewer signatures than messages (sync mode
  // signs 2 per message on the sender alone).
  EXPECT_LT(alice->stats().batch_commits_signed, static_cast<uint64_t>(kMessages));
  EXPECT_GT(alice->stats().batch_commits_signed, 0u);
  // Both sides verified each other's windowed commitments and logged
  // the auditable proofs.
  EXPECT_GT(bob->stats().peer_commits_verified, 0u);
  EXPECT_GT(PeerCommitEntries(bob_log), 0u);
  EXPECT_GT(PeerCommitEntries(alice_log), 0u);
  // The commitments are regular authenticators in the stores: fork
  // detection and auditor collection work unchanged.
  EXPECT_GT(bob_auths.CountFor("alice"), 0u);
  EXPECT_TRUE(bob_auths.fork_proofs().empty());

  // Every signature-less RECV/ACK is provably covered: the relaxed
  // syntactic check passes and the logs verify against the collected
  // commitments.
  std::vector<Authenticator> alice_commits = bob_auths.AllFor("alice");
  LogSegment seg = alice_log.Extract(1, alice_log.LastSeq());
  EXPECT_TRUE(VerifyAgainstAuthenticators(seg, alice_commits, registry).ok);
  AuditConfig relaxed;
  relaxed.strict_message_crossref = false;
  EXPECT_TRUE(SyntacticMessageCheck(seg, registry, relaxed).ok);
  LogSegment bseg = bob_log.Extract(1, bob_log.LastSeq());
  EXPECT_TRUE(SyntacticMessageCheck(bseg, registry, relaxed).ok);
}

TEST_F(BatchTransportFixture, RetransmissionSurvivesPartition) {
  net.SetPartitioned("alice", "bob", true);
  alice->SendPacket(0, "bob", ToBytes("lost"));
  for (SimTime t = 0; t < 200 * kMicrosPerMilli; t += 10 * kMicrosPerMilli) {
    alice->Tick(t);
    Settle(t);
  }
  EXPECT_GE(alice->stats().retransmits, 2u);
  EXPECT_TRUE(bob_received.empty());

  net.SetPartitioned("alice", "bob", false);
  alice->Tick(300 * kMicrosPerMilli);
  Settle(400 * kMicrosPerMilli);
  ASSERT_EQ(bob_received.size(), 1u);
  EXPECT_EQ(alice->stats().acks_received, 1u);
  EXPECT_TRUE(bob->violations().empty());
}

TEST_F(BatchTransportFixture, TamperedBatchFrameRejected) {
  struct Tap : public NetworkDelegate {
    Transport* inner;
    Bytes last;
    void OnFrame(SimTime now, const NodeId& src, ByteView frame) override {
      last.assign(frame.begin(), frame.end());
      inner->OnFrame(now, src, frame);
    }
  };
  Tap tap;
  tap.inner = bob.get();
  net.AttachHost("bob", &tap);
  alice->SendPacket(0, "bob", ToBytes("genuine"));
  Settle(kMicrosPerSecond);
  ASSERT_EQ(bob_received.size(), 1u);
  ASSERT_FALSE(tap.last.empty());

  Bytes tampered = tap.last;
  tampered[tampered.size() / 2] ^= 0x40;
  size_t fails_before = bob->stats().verify_failures;
  size_t logged_before = bob_log.size();
  bob->OnFrame(kMicrosPerSecond, "alice", tampered);
  EXPECT_GE(bob->stats().verify_failures + bob->stats().duplicates, fails_before);
  EXPECT_EQ(bob_received.size(), 1u);
  EXPECT_EQ(bob_log.size(), logged_before);
}

TEST_F(BatchTransportFixture, EquivocatingCommitmentCaught) {
  alice->SendPacket(0, "bob", ToBytes("honest"));
  Settle(kMicrosPerSecond);
  ASSERT_EQ(bob_received.size(), 1u);

  // Alice signs a commitment to a *different* history at the tip of the
  // chain she announces to bob: the junction check catches it before
  // any state is polluted. (Bob's view of alice ends at the SEND entry,
  // seq 1; the tail extends it with the real kAck link so the walk
  // reaches the equivocating commitment.)
  Authenticator evil;
  evil.node = "alice";
  evil.seq = alice_log.LastSeq();
  evil.hash = Sha256::Digest("parallel history");
  evil.signature =
      alice_signer.SignDigest(Authenticator::SignedPayloadDigest("alice", evil.seq, evil.hash));
  ChainTail tail;
  tail.from_seq = 2;
  tail.prior_hash = alice_log.At(1).hash;
  for (uint64_t s = 2; s <= alice_log.LastSeq(); s++) {
    tail.links.push_back(LinkFor(alice_log.At(s)));
  }
  tail.commit = evil;
  CommitFrame cf{tail};
  size_t fails_before = bob->stats().verify_failures;
  net.SendFrame(2 * kMicrosPerSecond, "alice", "bob", WrapFrame(FrameType::kCommit, cf.Serialize()));
  Settle(3 * kMicrosPerSecond);
  EXPECT_EQ(bob->stats().verify_failures, fails_before + 1);
  EXPECT_FALSE(bob->violations().empty());
}

// -------------------------------------------- transport: async mode ----

struct AsyncTransportFixture : public BatchTransportFixture {
  AsyncTransportFixture() : BatchTransportFixture(RunConfig::AvmmRsa768Async(4)) {}
};

TEST_F(AsyncTransportFixture, FlushIsABarrierAndCoversEverything) {
  const int kMessages = 10;
  for (int i = 0; i < kMessages; i++) {
    alice->SendPacket(0, "bob", ToBytes("a-" + std::to_string(i)));
    Settle(kMicrosPerSecond);
    alice->Tick(kMicrosPerSecond);
    bob->Tick(kMicrosPerSecond);
  }
  // Flush: barrier on the signer thread, then the final commitments go
  // out; afterwards nothing is pending anywhere.
  alice->Flush(kMicrosPerSecond);
  bob->Flush(kMicrosPerSecond);
  Settle(2 * kMicrosPerSecond);

  ASSERT_EQ(bob_received.size(), static_cast<size_t>(kMessages));
  EXPECT_TRUE(alice->violations().empty()) << alice->violations().front();
  EXPECT_TRUE(bob->violations().empty()) << bob->violations().front();
  EXPECT_EQ(alice->stats().acks_received, static_cast<uint64_t>(kMessages));
  EXPECT_GT(bob->stats().peer_commits_verified, 0u);
  EXPECT_GT(bob_auths.CountFor("alice"), 0u);

  // The whole log (including the unsigned-tail PeerCommitRecords) still
  // verifies against a fresh end-of-log commitment, like an auditor
  // would demand.
  std::vector<Authenticator> auths = bob_auths.AllFor("alice");
  auths.push_back(alice_log.Authenticate(alice_signer));
  LogSegment seg = alice_log.Extract(1, alice_log.LastSeq());
  EXPECT_TRUE(VerifyAgainstAuthenticators(seg, auths, registry).ok);
}

// ------------------------------------------------- crash + recovery ----

TEST(BatchCrashRecovery, TailResignedFromDurableStore) {
  std::string dir =
      (fs::path(::testing::TempDir()) / "avm_batch_crash_recovery").string();
  fs::remove_all(dir);
  Prng rng(99);
  Signer signer("node", SignatureScheme::kRsa768, rng);
  KeyRegistry registry;
  registry.RegisterSigner(signer);

  Hash256 live_last_hash;
  uint64_t live_last_seq = 0;
  {
    // Record with a durable sink attached; "crash" before any batch
    // commitment over the tail is signed (no Flush, no authenticator).
    TamperEvidentLog log("node");
    LogStoreOptions opts;
    opts.sync = false;
    auto store = LogStore::Open(dir, "node", opts);
    log.SetSink(store.get(), /*backfill=*/true);
    for (int i = 0; i < 20; i++) {
      log.Append(EntryType::kTraceTime, ToBytes("event-" + std::to_string(i)));
    }
    store->Flush();
    live_last_seq = log.LastSeq();
    live_last_hash = log.LastHash();
    // Process dies here: the in-memory log and the unsigned tail vanish.
  }

  // Recovery: reopen the store, re-derive the chain state, and re-sign
  // the tail so auditors get a commitment over everything durable.
  auto recovered = LogStore::Open(dir, "node");
  ASSERT_EQ(recovered->LastSeq(), live_last_seq);
  ASSERT_EQ(recovered->LastHash(), live_last_hash);
  Authenticator resigned;
  resigned.node = "node";
  resigned.seq = recovered->LastSeq();
  resigned.hash = recovered->LastHash();
  resigned.signature = signer.SignDigest(
      Authenticator::SignedPayloadDigest(resigned.node, resigned.seq, resigned.hash));
  EXPECT_TRUE(resigned.VerifySignature(registry));

  // The re-signed commitment authenticates the recovered log exactly.
  LogSegment seg = recovered->Extract(1, recovered->LastSeq());
  std::vector<Authenticator> auths = {resigned};
  EXPECT_TRUE(VerifyAgainstAuthenticators(seg, auths, registry).ok);
  fs::remove_all(dir);
}

// Regression for the shutdown-ordering bug: with the async signer and
// durable_commit, frames that arrive after the signer's flush barrier
// keep appending entries, so a process can die between "signer flushed"
// and "store sealed" while released evidence must still be covered by
// what the store recovers. The gate's contract: no authenticator is
// ever released above the durability watermark, so the crash image
// always authenticates everything that left the node.
TEST(BatchCrashRecovery, CrashBetweenSignerFlushAndSealResignsFromStore) {
  std::string dir =
      (fs::path(::testing::TempDir()) / "avm_crash_flush_vs_seal").string();
  fs::remove_all(dir);
  RunConfig cfg = RunConfig::AvmmRsa768Async(4);
  cfg.durable_commit = true;
  Prng rng(3);
  Signer alice_signer("alice", cfg.scheme, rng);
  Signer bob_signer("bob", cfg.scheme, rng);
  KeyRegistry registry;
  registry.RegisterSigner(alice_signer);
  registry.RegisterSigner(bob_signer);
  SimNetwork net;
  TamperEvidentLog alice_log("alice"), bob_log("bob");
  AuthenticatorStore alice_auths, bob_auths;

  // The watermark moves only when the gate forces a group commit: the
  // entry/byte thresholds are unreachable and there is no flush timer.
  LogStoreOptions opts;
  opts.sync = false;
  opts.sealer_threads = 0;
  opts.group_commit.max_entries = 1u << 20;
  opts.group_commit.max_bytes = 1u << 30;
  opts.group_commit.max_delay_ms = 0;
  auto store = LogStore::Open(dir, "alice", opts);
  alice_log.SetSink(store.get());

  Transport alice("alice", &cfg, &alice_log, &alice_signer, &net, &registry, &alice_auths);
  Transport bob("bob", &cfg, &bob_log, &bob_signer, &net, &registry, &bob_auths);
  net.AttachHost("alice", &alice);
  net.AttachHost("bob", &bob);
  bob.SetPacketHandler([](SimTime, const NodeId&, const Bytes&) {});

  for (int i = 0; i < 10; i++) {
    SimTime t = static_cast<SimTime>(i + 1) * kMicrosPerSecond;
    alice.SendPacket(t, "bob", ToBytes("m-" + std::to_string(i)));
    net.DeliverUntil(t);
    alice.Tick(t);
    bob.Tick(t);
    net.DeliverUntil(t);
    // The invariant under test, at every step: nothing signed has been
    // released above the store's watermark.
    ASSERT_EQ(alice.stats().durable_gate_violations, 0u);
    ASSERT_LE(alice.stats().max_released_auth_seq, store->DurableSeq());
  }
  // Signer flush barrier -- and then MORE frames settle (bob's final
  // commitments), appending entries past the barrier.
  alice.Flush(20 * kMicrosPerSecond);
  bob.Flush(20 * kMicrosPerSecond);
  net.DeliverUntil(21 * kMicrosPerSecond);
  // The gate actually engaged: the watermark only moves on forced
  // flushes in this config, so every commitment the async signer
  // produced was parked until one. (Asserted after the flush barrier --
  // whether the signer thread finishes a window mid-run is timing.)
  EXPECT_GT(alice.stats().durable_forced_flushes, 0u);
  EXPECT_GT(alice.stats().durable_deferred_commits, 0u);
  ASSERT_EQ(alice.stats().durable_gate_violations, 0u);
  uint64_t released = alice.stats().max_released_auth_seq;
  EXPECT_GT(released, 0u);
  EXPECT_LE(released, store->DurableSeq());

  // Crash here: between the signer flush and Seal(). Everything
  // in-memory vanishes; only the store's directory survives.
  std::vector<Authenticator> alice_commits = bob_auths.AllFor("alice");
  ASSERT_FALSE(alice_commits.empty());
  alice_log.SetSink(nullptr);
  store.reset();  // Never Seal()ed.

  // Recovery covers every released authenticator, and a re-signed tail
  // commitment authenticates the whole recovered log for auditors.
  auto recovered = LogStore::Open(dir, opts);
  ASSERT_GE(recovered->LastSeq(), released);
  Authenticator resigned;
  resigned.node = "alice";
  resigned.seq = recovered->LastSeq();
  resigned.hash = recovered->LastHash();
  resigned.signature = alice_signer.SignDigest(
      Authenticator::SignedPayloadDigest(resigned.node, resigned.seq, resigned.hash));
  alice_commits.push_back(resigned);
  LogSegment seg = recovered->Extract(1, recovered->LastSeq());
  EXPECT_TRUE(VerifyAgainstAuthenticators(seg, alice_commits, registry).ok);
  recovered.reset();
  fs::remove_all(dir);
}

// ------------------------------- sign-mode sweep: verdicts identical ----

RunConfig GameModeConfig(SignMode mode) {
  RunConfig run = RunConfig::AvmmNoSig();  // Hash chains without RSA: fast.
  run.sign_mode = mode;
  run.sign_batch_entries = 8;
  return run;
}

GameScenarioConfig SweepGame(SignMode mode, uint64_t seed) {
  GameScenarioConfig cfg;
  cfg.run = GameModeConfig(mode);
  cfg.num_players = 2;
  cfg.seed = seed;
  cfg.client.render_iters = 300;
  return cfg;
}

class SignModeSweep : public ::testing::TestWithParam<SignMode> {};

TEST_P(SignModeSweep, HonestPlayersPassFullAudit) {
  GameScenario game(SweepGame(GetParam(), 41));
  game.Start();
  game.RunFor(2 * kMicrosPerSecond);
  game.Finish();
  for (int i = 0; i < game.num_players(); i++) {
    AuditOutcome audit = game.AuditPlayer(i);
    EXPECT_TRUE(audit.ok) << SignModeName(GetParam()) << " player " << i << ": "
                          << audit.Describe();
    EXPECT_FALSE(audit.evidence.has_value());
  }
}

TEST_P(SignModeSweep, CheatDetectedAndEvidenceConvincesThirdParty) {
  GameScenario game(SweepGame(GetParam(), 52));
  game.SetCheat(0, RunnableCheat::kUnlimitedAmmo);
  game.Start();
  game.RunFor(2 * kMicrosPerSecond);
  game.Finish();

  AuditOutcome cheater = game.AuditPlayer(0);
  EXPECT_FALSE(cheater.ok) << SignModeName(GetParam());
  ASSERT_TRUE(cheater.evidence.has_value());
  EvidenceVerdict verdict =
      VerifyEvidence(*cheater.evidence, game.registry(), game.reference_client_image());
  EXPECT_TRUE(verdict.fault_confirmed) << SignModeName(GetParam()) << ": " << verdict.detail;

  AuditOutcome honest = game.AuditPlayer(1);
  EXPECT_TRUE(honest.ok) << SignModeName(GetParam()) << ": " << honest.Describe();
}

INSTANTIATE_TEST_SUITE_P(Modes, SignModeSweep,
                         ::testing::Values(SignMode::kSync, SignMode::kBatched,
                                           SignMode::kAsync),
                         [](const ::testing::TestParamInfo<SignMode>& tpi) {
                           return SignModeName(tpi.param);
                         });

// durable_commit changes only *when* evidence is released, never what
// it says: same-seed runs with and without the gate (stores attached)
// must produce identical audit verdicts in every sign mode, with zero
// gate violations and stores that read back the logs bit for bit.
TEST_P(SignModeSweep, DurableCommitVerdictsIdenticalWithStores) {
  GameScenario baseline(SweepGame(GetParam(), 41));
  baseline.Start();
  baseline.RunFor(2 * kMicrosPerSecond);
  baseline.Finish();

  std::string base =
      (fs::path(::testing::TempDir()) /
       (std::string("avm_durable_sweep_") + SignModeName(GetParam()))).string();
  fs::remove_all(base);
  std::vector<std::unique_ptr<LogStore>> stores;
  GameScenarioConfig dcfg = SweepGame(GetParam(), 41);
  dcfg.run.durable_commit = true;
  GameScenario durable(dcfg);
  durable.Start();
  LogStoreOptions opts;
  opts.sync = false;
  opts.seal_threshold_bytes = 16384;
  opts.group_commit.max_entries = 32;
  opts.group_commit.max_delay_ms = 0;
  auto spill = [&](Avmm& node, const std::string& name) {
    stores.push_back(LogStore::Open((fs::path(base) / name).string(), name, opts));
    node.SpillTo(stores.back().get());
  };
  spill(durable.server(), "server");
  for (int i = 0; i < durable.num_players(); i++) {
    spill(durable.player(i), durable.player_id(i));
  }
  durable.RunFor(2 * kMicrosPerSecond);
  durable.Finish();

  // Same verdicts, node by node.
  for (int i = 0; i < baseline.num_players(); i++) {
    AuditOutcome want = baseline.AuditPlayer(i);
    AuditOutcome got = durable.AuditPlayer(i);
    EXPECT_EQ(want.ok, got.ok) << SignModeName(GetParam()) << " player " << i;
    EXPECT_EQ(want.evidence.has_value(), got.evidence.has_value());
    EXPECT_TRUE(got.ok) << got.Describe();
  }
  // No evidence ever outran the watermark, on any node.
  std::vector<Avmm*> nodes = {&durable.server()};
  for (int i = 0; i < durable.num_players(); i++) {
    nodes.push_back(&durable.player(i));
  }
  for (size_t n = 0; n < nodes.size(); n++) {
    EXPECT_EQ(nodes[n]->transport().stats().durable_gate_violations, 0u)
        << nodes[n]->id();
    EXPECT_EQ(nodes[n]->log().LastSeq(), stores[n]->LastSeq()) << nodes[n]->id();
    EXPECT_EQ(stores[n]->DurableSeq(), stores[n]->LastSeq()) << nodes[n]->id();
    // The store reads back the node's log bit for bit (across whatever
    // mix of hot/sealed tiers the run left behind).
    stores[n]->Seal();
    EXPECT_EQ(stores[n]->Extract(1, stores[n]->LastSeq()).Serialize(),
              nodes[n]->log().Extract(1, nodes[n]->log().LastSeq()).Serialize())
        << nodes[n]->id();
    nodes[n]->log().SetSink(nullptr);
  }
  fs::remove_all(base);
}

// Real RSA-768 end to end through the KV scenario: full audit and a
// spot check must pass identically in every sign mode.
class KvRsaSweep : public ::testing::TestWithParam<SignMode> {};

TEST_P(KvRsaSweep, FullAuditAndSpotCheckPass) {
  KvScenarioConfig cfg;
  cfg.run = RunConfig::AvmmRsa768();
  cfg.run.sign_mode = GetParam();
  cfg.run.sign_batch_entries = 8;
  cfg.seed = 5;
  KvScenario kv(cfg);
  kv.Start();
  kv.RunFor(2 * kMicrosPerSecond);
  kv.Finish();

  std::vector<Authenticator> auths = kv.CollectAuthsForServer();
  AuditConfig acfg;
  acfg.mem_size = cfg.run.mem_size;
  Auditor auditor("auditor", &kv.registry(), acfg);
  AuditOutcome full = auditor.AuditFull(kv.server(), kv.reference_server_image(), auths);
  EXPECT_TRUE(full.ok) << SignModeName(GetParam()) << ": " << full.Describe();

  // Spot check the window between the initial and final snapshots.
  AuditOutcome spot = auditor.SpotCheck(kv.server(), 0, 1, auths);
  EXPECT_TRUE(spot.ok) << SignModeName(GetParam()) << ": " << spot.Describe();
}

INSTANTIATE_TEST_SUITE_P(Modes, KvRsaSweep,
                         ::testing::Values(SignMode::kSync, SignMode::kBatched,
                                           SignMode::kAsync),
                         [](const ::testing::TestParamInfo<SignMode>& tpi) {
                           return SignModeName(tpi.param);
                         });

}  // namespace
}  // namespace avm
