#include <gtest/gtest.h>

#include "src/audit/evidence.h"
#include "src/sim/scenario.h"

namespace avm {
namespace {

KvScenarioConfig FastKv(uint64_t seed = 5) {
  KvScenarioConfig cfg;
  cfg.run = RunConfig::AvmmNoSig();
  cfg.seed = seed;
  cfg.snapshot_interval = 200 * kMicrosPerMilli;  // Dense snapshots for tests.
  cfg.client.op_period_us = 5 * kMicrosPerMilli;
  return cfg;
}

struct KvFixture : public ::testing::Test {
  void Run(SimTime duration, KvScenarioConfig cfg = FastKv()) {
    scenario = std::make_unique<KvScenario>(cfg);
    scenario->Start();
    scenario->RunFor(duration);
    scenario->Finish();
  }
  std::unique_ptr<KvScenario> scenario;
};

TEST_F(KvFixture, ServerProcessesRequests) {
  Run(2 * kMicrosPerSecond);
  // Client issued ~400 ops; server replied to each.
  EXPECT_GT(scenario->server().stats().guest_packets_delivered, 100u);
  EXPECT_GT(scenario->server().stats().guest_packets_sent, 100u);
  EXPECT_GT(scenario->client().stats().guest_packets_delivered, 100u);
}

TEST_F(KvFixture, PeriodicSnapshotsTaken) {
  Run(2 * kMicrosPerSecond);
  std::vector<SnapshotIndexEntry> snaps = IndexSnapshots(scenario->server().log());
  // Initial + ~10 periodic + final.
  EXPECT_GE(snaps.size(), 8u);
  // Increments shrink after the base snapshot (incremental property).
  EXPECT_GT(snaps[0].meta.incremental_pages, snaps[2].meta.incremental_pages);
}

TEST_F(KvFixture, FullAuditOfIrqDrivenServerPasses) {
  Run(2 * kMicrosPerSecond);
  std::vector<Authenticator> auths = scenario->CollectAuthsForServer();
  AuditConfig acfg;
  Auditor auditor("client", &scenario->registry(), acfg);
  AuditOutcome audit =
      auditor.AuditFull(scenario->server(), scenario->reference_server_image(), auths);
  EXPECT_TRUE(audit.ok) << audit.Describe();
}

TEST_F(KvFixture, SpotCheckEveryAdjacentChunkPasses) {
  Run(3 * kMicrosPerSecond);
  std::vector<SnapshotIndexEntry> snaps = IndexSnapshots(scenario->server().log());
  ASSERT_GE(snaps.size(), 5u);
  std::vector<Authenticator> auths = scenario->CollectAuthsForServer();
  Auditor auditor("client", &scenario->registry());
  for (size_t i = 0; i + 1 < snaps.size(); i++) {
    AuditOutcome audit = auditor.SpotCheck(scenario->server(), snaps[i].meta.snapshot_id,
                                           snaps[i + 1].meta.snapshot_id, auths);
    EXPECT_TRUE(audit.ok) << "chunk " << i << ": " << audit.Describe();
  }
}

TEST_F(KvFixture, SpotCheckCostScalesWithChunkSize) {
  Run(4 * kMicrosPerSecond);
  std::vector<SnapshotIndexEntry> snaps = IndexSnapshots(scenario->server().log());
  ASSERT_GE(snaps.size(), 8u);
  std::vector<Authenticator> auths = scenario->CollectAuthsForServer();
  Auditor auditor("client", &scenario->registry());

  AuditOutcome small = auditor.SpotCheck(scenario->server(), snaps[1].meta.snapshot_id,
                                         snaps[2].meta.snapshot_id, auths);
  AuditOutcome large = auditor.SpotCheck(scenario->server(), snaps[1].meta.snapshot_id,
                                         snaps[6].meta.snapshot_id, auths);
  ASSERT_TRUE(small.ok);
  ASSERT_TRUE(large.ok);
  EXPECT_GT(large.semantic.instructions_replayed, 3 * small.semantic.instructions_replayed);
  EXPECT_GT(large.log_bytes, small.log_bytes);
}

TEST_F(KvFixture, SpotCheckCatchesMidRunPoke) {
  // Poke the server's KV table between snapshots 2 and 3; chunks before
  // the poke pass, the chunk containing it fails, later chunks pass
  // (the §3.5 caveat: an unchecked bad segment corrupts state silently,
  // so a spot-checker must land on the right chunk).
  KvScenarioConfig cfg = FastKv(9);
  scenario = std::make_unique<KvScenario>(cfg);
  scenario->Start();
  SimTime poke_at = 500 * kMicrosPerMilli;
  scenario->server().SetCheatHook([poke_at](Machine& m, SimTime now) {
    if (now == poke_at) {
      m.WriteMem32(kKvTableAddr, 0x1337);
    }
  });
  scenario->RunFor(2 * kMicrosPerSecond);
  scenario->Finish();

  std::vector<SnapshotIndexEntry> snaps = IndexSnapshots(scenario->server().log());
  ASSERT_GE(snaps.size(), 6u);
  std::vector<Authenticator> auths = scenario->CollectAuthsForServer();
  Auditor auditor("client", &scenario->registry());

  int failures = 0;
  int failed_chunk = -1;
  for (size_t i = 0; i + 1 < snaps.size(); i++) {
    AuditOutcome audit = auditor.SpotCheck(scenario->server(), snaps[i].meta.snapshot_id,
                                           snaps[i + 1].meta.snapshot_id, auths);
    if (!audit.ok) {
      failures++;
      failed_chunk = static_cast<int>(i);
      EXPECT_TRUE(audit.evidence.has_value());
    }
  }
  EXPECT_EQ(failures, 1);
  // The poke at t=500ms falls in the chunk between snapshots at 400 and
  // 600 ms (ids are dense from 0 at t=0... chunk index 2).
  EXPECT_EQ(failed_chunk, 2);
}

TEST_F(KvFixture, SpotCheckEvidenceVerifiesForThirdParty) {
  KvScenarioConfig cfg = FastKv(10);
  scenario = std::make_unique<KvScenario>(cfg);
  scenario->Start();
  scenario->server().SetCheatHook([](Machine& m, SimTime now) {
    if (now == 700 * kMicrosPerMilli) {
      m.WriteMem32(kKvTableAddr + 64, 0xbad);
    }
  });
  scenario->RunFor(2 * kMicrosPerSecond);
  scenario->Finish();

  std::vector<SnapshotIndexEntry> snaps = IndexSnapshots(scenario->server().log());
  std::vector<Authenticator> auths = scenario->CollectAuthsForServer();
  Auditor auditor("client", &scenario->registry());

  std::optional<Evidence> evidence;
  for (size_t i = 0; i + 1 < snaps.size(); i++) {
    AuditOutcome audit = auditor.SpotCheck(scenario->server(), snaps[i].meta.snapshot_id,
                                           snaps[i + 1].meta.snapshot_id, auths);
    if (!audit.ok) {
      evidence = audit.evidence;
      break;
    }
  }
  ASSERT_TRUE(evidence.has_value());
  // Third party verifies using only the registry + shipped snapshots.
  Evidence wire = Evidence::Deserialize(evidence->Serialize());
  EvidenceVerdict verdict =
      VerifyEvidence(wire, scenario->registry(), scenario->reference_server_image());
  EXPECT_TRUE(verdict.fault_confirmed) << verdict.detail;
}

TEST_F(KvFixture, TransferBytesGrowWithStartSnapshot) {
  Run(3 * kMicrosPerSecond);
  const SnapshotStore& store = scenario->server().snapshot_store();
  ASSERT_GE(store.Count(), 4u);
  EXPECT_LT(store.TransferBytesUpTo(1), store.TransferBytesUpTo(3));
}

}  // namespace
}  // namespace avm
