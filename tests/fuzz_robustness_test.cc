// Robustness of every wire-format parser against malformed input.
//
// Auditors parse logs, frames, snapshots and evidence produced by
// machines they explicitly do not trust (§3.1), so every deserializer
// must fail cleanly (SerdeError or a validation error), never crash or
// accept garbage.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/audit/checkpoint.h"
#include "src/audit/evidence.h"
#include "src/avmm/message.h"
#include "src/util/serde.h"
#include "src/avmm/partial_snapshot.h"
#include "src/avmm/snapshot.h"
#include "src/sim/scenario.h"
#include "src/store/archive.h"
#include "src/store/log_store.h"
#include "src/store/segment_file.h"
#include "src/tel/log.h"
#include "src/util/prng.h"
#include "src/vm/trace.h"

namespace avm {
namespace {

// Parses `data` with every deserializer; none may crash.
void ParseEverything(ByteView data) {
  auto swallow = [&](auto&& fn) {
    try {
      fn();
    } catch (const SerdeError&) {
    } catch (const StoreError&) {
    } catch (const std::invalid_argument&) {
    } catch (const std::out_of_range&) {
    }
  };
  swallow([&] { (void)LogSegment::Deserialize(data); });
  swallow([&] { (void)Authenticator::Deserialize(data); });
  swallow([&] { (void)TraceEvent::Deserialize(data); });
  swallow([&] { (void)MessageRecord::Deserialize(data); });
  swallow([&] { (void)DataFrame::Deserialize(data); });
  swallow([&] { (void)AckFrame::Deserialize(data); });
  swallow([&] { (void)ChallengeFrame::Deserialize(data); });
  swallow([&] { (void)SnapshotMeta::Deserialize(data); });
  swallow([&] { (void)SnapshotDelta::Deserialize(data); });
  swallow([&] { (void)PartialSnapshot::Deserialize(data); });
  swallow([&] { (void)Evidence::Deserialize(data); });
  swallow([&] { (void)CpuState::Deserialize(data); });
  swallow([&] { (void)MerkleProof::Deserialize(data); });
  // Log store on-disk formats: a store opened by an auditor is as
  // untrusted as a segment shipped over the network.
  swallow([&] { (void)DecodeSegmentHeader(data); });
  swallow([&] {
    size_t off = 0;
    (void)DecodeRecordAt(data, &off);
  });
  swallow([&] { (void)ScanActiveSegment(data, 16); });
  swallow([&] {
    SealedInfo info = ReadSealedInfo(data);
    (void)ReadSealedRecords(data, info);
  });
  // Resumable-audit and archival-tier formats: both are read back from
  // an auditee-controlled directory, so both are untrusted input.
  swallow([&] { (void)AuditCheckpoint::Deserialize(data); });
  swallow([&] { (void)ParseArchiveFooter(data); });
  swallow([&] {
    ArchiveInfo info = ReadArchiveInfo(data);
    (void)ReadArchivedRecords(data, info);
  });
}

class RandomInputFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomInputFuzz, NoCrashOnRandomBytes) {
  Prng rng(GetParam());
  for (int i = 0; i < 50; i++) {
    ParseEverything(rng.RandomBytes(rng.Below(300)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInputFuzz, ::testing::Range<uint64_t>(0, 8));

class MutatedInputFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutatedInputFuzz, NoCrashOnMutatedValidStructures) {
  Prng rng(GetParam() + 1000);

  // Build valid serializations of each structure, then mutate them.
  std::vector<Bytes> valid;
  {
    TraceEvent e;
    e.kind = TraceKind::kDmaPacket;
    e.icount = 12345;
    e.data = rng.RandomBytes(40);
    valid.push_back(e.Serialize());

    MessageRecord m{"alice", "bob", 7, rng.RandomBytes(24)};
    valid.push_back(m.Serialize());

    Authenticator a;
    a.node = "bob";
    a.seq = 3;
    a.hash = Sha256::Digest("x");
    a.signature = rng.RandomBytes(96);
    valid.push_back(a.Serialize());

    DataFrame f{m, rng.RandomBytes(96), Sha256::Digest("p"), a};
    valid.push_back(f.Serialize());

    SnapshotMeta meta;
    meta.snapshot_id = 2;
    meta.root = Sha256::Digest("r");
    valid.push_back(meta.Serialize());

    TamperEvidentLog log("bob");
    log.Append(EntryType::kInfo, ToBytes("a"));
    log.Append(EntryType::kSend, ToBytes("b"));
    valid.push_back(log.Extract(1, 2).Serialize());

    // Store files: an active segment (header + CRC-framed records) and
    // its sealed counterpart (compressed body + index + footer).
    TamperEvidentLog store_log("bob");
    Bytes active = EncodeSegmentHeader({1, Hash256::Zero()});
    std::vector<SparseIndexEntry> index;
    for (int i = 0; i < 6; i++) {
      const LogEntry& rec =
          store_log.Append(i % 2 == 0 ? EntryType::kInfo : EntryType::kSend,
                           rng.RandomBytes(rng.Below(40)));
      if (i % 2 == 0) {
        index.push_back({rec.seq, active.size() - kSegmentHeaderSize});
      }
      EncodeRecord(rec, active);
    }
    valid.push_back(active);
    valid.push_back(EncodeSealedSegment({1, Hash256::Zero()},
                                        ByteView(active).subspan(kSegmentHeaderSize), index, 6, 6,
                                        store_log.LastHash(), /*compress=*/true));
    // The archival re-framing of that sealed image (AVMAFT1 footer).
    valid.push_back(EncodeArchivedSegment(valid.back(), 6, 6, Sha256::Digest("bob")));

    AuditCheckpoint cp;
    cp.node = "bob";
    cp.auditor = "auditor";
    cp.seq = 6;
    cp.chain_hash = store_log.LastHash();
    cp.mem_size = 64 * 1024;
    cp.machine_state = rng.RandomBytes(120);
    cp.scan_state = rng.RandomBytes(48);
    cp.verified_auth_hashes[3] = Sha256::Digest("a3");
    cp.signature = rng.RandomBytes(96);
    valid.push_back(cp.Serialize());
  }

  for (const Bytes& base : valid) {
    for (int trial = 0; trial < 40; trial++) {
      Bytes mutated = base;
      switch (rng.Below(4)) {
        case 0:  // Flip random bytes.
          for (int k = 0; k < 3 && !mutated.empty(); k++) {
            mutated[rng.Below(mutated.size())] ^= static_cast<uint8_t>(rng.Next());
          }
          break;
        case 1:  // Truncate.
          mutated.resize(rng.Below(mutated.size() + 1));
          break;
        case 2:  // Extend with garbage.
          Append(mutated, rng.RandomBytes(rng.Below(32) + 1));
          break;
        case 3: {  // Splice two structures together.
          const Bytes& other = valid[rng.Below(valid.size())];
          size_t cut = rng.Below(mutated.size() + 1);
          mutated.resize(cut);
          Append(mutated, other);
          break;
        }
      }
      ParseEverything(mutated);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutatedInputFuzz, ::testing::Range<uint64_t>(0, 8));

// Every proper prefix of a valid serialization must be rejected with a
// clean error -- the truncations a fuzzer only hits probabilistically.
TEST(TruncationRobustness, EveryPrefixRejectedCleanly) {
  Prng rng(77);
  TamperEvidentLog log("bob");
  for (int i = 0; i < 4; i++) {
    log.Append(EntryType::kInfo, rng.RandomBytes(20));
  }
  Bytes seg = log.Extract(1, 4).Serialize();
  for (size_t n = 0; n < seg.size(); n++) {
    EXPECT_THROW((void)LogSegment::Deserialize(ByteView(seg.data(), n)), SerdeError) << n;
  }

  Authenticator a;
  a.node = "bob";
  a.seq = 9;
  a.hash = Sha256::Digest("h");
  a.signature = rng.RandomBytes(96);
  Bytes auth = a.Serialize();
  for (size_t n = 0; n < auth.size(); n++) {
    EXPECT_THROW((void)Authenticator::Deserialize(ByteView(auth.data(), n)), SerdeError) << n;
  }

  Bytes active = EncodeSegmentHeader({1, Hash256::Zero()});
  for (int i = 1; i <= 3; i++) {
    EncodeRecord(log.At(static_cast<uint64_t>(i)), active);
  }
  Bytes sealed = EncodeSealedSegment({1, Hash256::Zero()},
                                     ByteView(active).subspan(kSegmentHeaderSize), {}, 3, 3,
                                     log.At(3).hash, /*compress=*/true);
  for (size_t n = 0; n < sealed.size(); n++) {
    EXPECT_THROW((void)ReadSealedInfo(ByteView(sealed.data(), n)), StoreError) << n;
  }
  // An active segment's truncated tail is recovered, not fatal: the scan
  // reports the torn point instead of throwing (header truncation aside).
  for (size_t n = 0; n < active.size(); n++) {
    ByteView prefix(active.data(), n);
    if (n < kSegmentHeaderSize) {
      EXPECT_THROW((void)ScanActiveSegment(prefix, 4), StoreError) << n;
    } else {
      ActiveScan scan = ScanActiveSegment(prefix, 4);
      EXPECT_TRUE(scan.torn || scan.valid_bytes == n - kSegmentHeaderSize) << n;
      EXPECT_LE(scan.last_seq, 3u) << n;
    }
  }
}

// A corrupt checkpoint file must cost a resume, never the verdict and
// never a crash: every mutation is either rejected at parse or at
// digest/chain validation, and the audit falls back to genesis with the
// clean run's exact outcome.
TEST(CheckpointRobustness, MutatedCheckpointFallsBackToGenesis) {
  namespace fs = std::filesystem;
  std::string dir = (fs::temp_directory_path() / "avm_fuzz_ckpt").string();
  fs::remove_all(dir);

  KvScenarioConfig cfg;
  cfg.run = RunConfig::AvmmNoSig();
  cfg.seed = 5;
  KvScenario scenario(cfg);
  scenario.Start();
  LogStoreOptions opts;
  opts.sync = false;
  auto store = LogStore::Open(dir, "kvserver", opts);
  scenario.server().SpillTo(store.get());
  scenario.RunFor(300 * kMicrosPerMilli);
  scenario.Finish();
  store->Flush();
  std::vector<Authenticator> auths = scenario.CollectAuthsForServer();

  AuditConfig acfg;
  acfg.threads = 1;
  acfg.pipelined = false;
  CheckpointConfig ck;
  ck.every_entries = 200;
  CheckpointedAuditor auditor("auditor", &scenario.registry(), acfg, ck);
  ResumeInfo ri;
  AuditOutcome clean = auditor.AuditFull(scenario.server(), *store,
                                         scenario.reference_server_image(), auths, dir, &ri);
  ASSERT_TRUE(clean.ok) << clean.Describe();
  ASSERT_GT(ri.checkpoints_written, 0u);
  AuditOutcome again = auditor.AuditFull(scenario.server(), *store,
                                         scenario.reference_server_image(), auths, dir, &ri);
  ASSERT_TRUE(again.ok);
  ASSERT_TRUE(ri.resumed);  // The intact checkpoint does resume.

  const std::string path = dir + "/" + AuditCheckpointFileName("auditor");
  Prng rng(123);
  for (int trial = 0; trial < 10; trial++) {
    // Each audit rewrites the checkpoint, so reread the current one.
    Bytes current;
    {
      std::ifstream in(path, std::ios::binary);
      ASSERT_TRUE(in.good()) << path;
      current.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    }
    Bytes mutated = current;
    if (trial % 3 == 2) {
      mutated.resize(rng.Below(mutated.size()));
    } else {
      for (int k = 0; k < 3; k++) {
        mutated[rng.Below(mutated.size())] ^= static_cast<uint8_t>(rng.Next() | 1);
      }
    }
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(mutated.data()),
                static_cast<std::streamsize>(mutated.size()));
    }
    ResumeInfo mri;
    AuditOutcome out = auditor.AuditFull(scenario.server(), *store,
                                         scenario.reference_server_image(), auths, dir, &mri);
    EXPECT_FALSE(mri.resumed) << "trial " << trial;
    EXPECT_TRUE(mri.checkpoint_rejected) << "trial " << trial;
    EXPECT_EQ(out.ok, clean.ok) << "trial " << trial;
    EXPECT_EQ(out.syntactic.ok, clean.syntactic.ok) << "trial " << trial;
    EXPECT_EQ(out.semantic.ok, clean.semantic.ok) << "trial " << trial;
  }

  scenario.server().SpillTo(nullptr);
  store.reset();
  fs::remove_all(dir);
}

// Archive images (the AVMAFT1 cold tier) under byte flips and
// truncation: reject with StoreError or decode bit-identically — a
// mutated archive must never decode to different records.
TEST(ArchiveRobustness, MutatedArchiveImageRejectedOrIdentical) {
  Prng rng(31);
  TamperEvidentLog log("bob");
  Bytes body;
  std::vector<SparseIndexEntry> index;
  for (int i = 0; i < 12; i++) {
    const LogEntry& e = log.Append(EntryType::kInfo, rng.RandomBytes(rng.Below(60)));
    if (i % 4 == 0) {
      index.push_back({e.seq, body.size()});
    }
    EncodeRecord(e, body);
  }
  Bytes sealed = EncodeSealedSegment({1, Hash256::Zero()}, body, index, 12, 12, log.LastHash(),
                                     /*compress=*/true);
  Bytes arch = EncodeArchivedSegment(sealed, 12, 12, Sha256::Digest("bob"));
  ArchiveInfo clean_info = ReadArchiveInfo(arch);
  Bytes clean_records = ReadArchivedRecords(arch, clean_info);
  EXPECT_EQ(clean_records, body);
  EXPECT_EQ(clean_info.footer.archived_watermark, 12u);

  for (int trial = 0; trial < 200; trial++) {
    Bytes mutated = arch;
    mutated[rng.Below(mutated.size())] ^= static_cast<uint8_t>(rng.Next() | 1);
    try {
      ArchiveInfo info = ReadArchiveInfo(mutated);
      Bytes records = ReadArchivedRecords(mutated, info);
      EXPECT_EQ(records, clean_records) << "trial " << trial;
    } catch (const StoreError&) {
      // Clean rejection is the expected outcome.
    }
  }
  for (size_t n = 0; n < arch.size(); n++) {
    EXPECT_THROW((void)ReadArchiveInfo(ByteView(arch.data(), n)), StoreError) << n;
  }
}

// A store directory whose .arch file was corrupted on disk: reopening
// must either recover cleanly or fail with StoreError — never crash,
// and never serve different entries than were logged.
TEST(ArchiveRobustness, MutatedArchFileInStoreDirFailsCleanly) {
  namespace fs = std::filesystem;
  std::string dir = (fs::temp_directory_path() / "avm_fuzz_arch_store").string();
  fs::remove_all(dir);
  Prng rng(57);

  LogStoreOptions opts;
  opts.sync = false;
  opts.seal_threshold_bytes = 2048;
  opts.sealer_threads = 0;
  opts.archive_keep_sealed = 1;  // Aggressive promotion to the cold tier.
  Bytes reference;
  uint64_t last = 0;
  {
    TamperEvidentLog log("bob");
    auto store = LogStore::Open(dir, "bob", opts);
    log.SetSink(store.get(), /*backfill=*/false);
    for (int i = 0; i < 400; i++) {
      log.Append(EntryType::kInfo, rng.RandomBytes(40));
    }
    store->Flush();
    store->Seal();
    last = store->LastSeq();
    reference = store->Extract(1, last).Serialize();
    log.SetSink(nullptr, false);
  }
  std::vector<std::string> arch_files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".arch") {
      arch_files.push_back(entry.path().string());
    }
  }
  ASSERT_FALSE(arch_files.empty()) << "the store must have promoted archives";

  Bytes original;
  {
    std::ifstream in(arch_files[0], std::ios::binary);
    original.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  for (int trial = 0; trial < 30; trial++) {
    Bytes mutated = original;
    mutated[rng.Below(mutated.size())] ^= static_cast<uint8_t>(rng.Next() | 1);
    {
      std::ofstream out(arch_files[0], std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(mutated.data()),
                static_cast<std::streamsize>(mutated.size()));
    }
    try {
      auto store = LogStore::Open(dir, opts);
      LogSegment seg = store->Extract(1, store->LastSeq());
      EXPECT_EQ(seg.Serialize(), reference) << "trial " << trial;
    } catch (const StoreError&) {
      // Clean rejection of the corrupt cold tier.
    }
  }
  fs::remove_all(dir);
}

TEST(TraceEventSerde, RoundTripAllKinds) {
  Prng rng(9);
  for (TraceKind kind : {TraceKind::kPortIn, TraceKind::kDmaPacket, TraceKind::kAsyncIrq,
                         TraceKind::kOutConsole, TraceKind::kOutDebug, TraceKind::kOutPacket}) {
    TraceEvent e;
    e.kind = kind;
    e.icount = rng.Next();
    e.port = static_cast<uint16_t>(rng.Next());
    e.value = static_cast<uint32_t>(rng.Next());
    e.data = rng.RandomBytes(rng.Below(64));
    TraceEvent restored = TraceEvent::Deserialize(e.Serialize());
    EXPECT_TRUE(restored == e) << TraceKindName(kind);
  }
}

TEST(TraceEventSerde, ClassificationMatchesFigure4Streams) {
  TraceEvent clock;
  clock.kind = TraceKind::kPortIn;
  clock.port = kPortClockLo;
  EXPECT_EQ(ClassifyTraceEvent(clock), EntryType::kTraceTime);
  clock.port = kPortClockHi;
  EXPECT_EQ(ClassifyTraceEvent(clock), EntryType::kTraceTime);

  TraceEvent rxlen;
  rxlen.kind = TraceKind::kPortIn;
  rxlen.port = kPortNetRxLen;
  EXPECT_EQ(ClassifyTraceEvent(rxlen), EntryType::kTraceMac);

  TraceEvent input;
  input.kind = TraceKind::kPortIn;
  input.port = kPortInput;
  EXPECT_EQ(ClassifyTraceEvent(input), EntryType::kTraceOther);

  TraceEvent dma;
  dma.kind = TraceKind::kDmaPacket;
  EXPECT_EQ(ClassifyTraceEvent(dma), EntryType::kTraceMac);

  TraceEvent tx;
  tx.kind = TraceKind::kOutPacket;
  EXPECT_EQ(ClassifyTraceEvent(tx), EntryType::kTraceMac);

  TraceEvent console;
  console.kind = TraceKind::kOutConsole;
  EXPECT_EQ(ClassifyTraceEvent(console), EntryType::kTraceOther);
}

TEST(FrameParsing, BadTypesRejected) {
  EXPECT_THROW(PeekFrameType(Bytes{}), SerdeError);
  EXPECT_THROW(PeekFrameType(Bytes{0}), SerdeError);
  EXPECT_THROW(PeekFrameType(Bytes{99}), SerdeError);
  EXPECT_EQ(PeekFrameType(Bytes{1, 2, 3}), FrameType::kData);
  EXPECT_EQ(UnwrapFrame(Bytes{1, 2, 3}), (Bytes{2, 3}));
}

}  // namespace
}  // namespace avm
