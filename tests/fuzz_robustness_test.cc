// Robustness of every wire-format parser against malformed input.
//
// Auditors parse logs, frames, snapshots and evidence produced by
// machines they explicitly do not trust (§3.1), so every deserializer
// must fail cleanly (SerdeError or a validation error), never crash or
// accept garbage.
#include <gtest/gtest.h>

#include "src/audit/evidence.h"
#include "src/avmm/message.h"
#include "src/util/serde.h"
#include "src/avmm/partial_snapshot.h"
#include "src/avmm/snapshot.h"
#include "src/tel/log.h"
#include "src/util/prng.h"
#include "src/vm/trace.h"

namespace avm {
namespace {

// Parses `data` with every deserializer; none may crash.
void ParseEverything(ByteView data) {
  auto swallow = [&](auto&& fn) {
    try {
      fn();
    } catch (const SerdeError&) {
    } catch (const std::invalid_argument&) {
    } catch (const std::out_of_range&) {
    }
  };
  swallow([&] { (void)LogSegment::Deserialize(data); });
  swallow([&] { (void)Authenticator::Deserialize(data); });
  swallow([&] { (void)TraceEvent::Deserialize(data); });
  swallow([&] { (void)MessageRecord::Deserialize(data); });
  swallow([&] { (void)DataFrame::Deserialize(data); });
  swallow([&] { (void)AckFrame::Deserialize(data); });
  swallow([&] { (void)ChallengeFrame::Deserialize(data); });
  swallow([&] { (void)SnapshotMeta::Deserialize(data); });
  swallow([&] { (void)SnapshotDelta::Deserialize(data); });
  swallow([&] { (void)PartialSnapshot::Deserialize(data); });
  swallow([&] { (void)Evidence::Deserialize(data); });
  swallow([&] { (void)CpuState::Deserialize(data); });
  swallow([&] { (void)MerkleProof::Deserialize(data); });
}

class RandomInputFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomInputFuzz, NoCrashOnRandomBytes) {
  Prng rng(GetParam());
  for (int i = 0; i < 50; i++) {
    ParseEverything(rng.RandomBytes(rng.Below(300)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInputFuzz, ::testing::Range<uint64_t>(0, 8));

class MutatedInputFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutatedInputFuzz, NoCrashOnMutatedValidStructures) {
  Prng rng(GetParam() + 1000);

  // Build valid serializations of each structure, then mutate them.
  std::vector<Bytes> valid;
  {
    TraceEvent e;
    e.kind = TraceKind::kDmaPacket;
    e.icount = 12345;
    e.data = rng.RandomBytes(40);
    valid.push_back(e.Serialize());

    MessageRecord m{"alice", "bob", 7, rng.RandomBytes(24)};
    valid.push_back(m.Serialize());

    Authenticator a;
    a.node = "bob";
    a.seq = 3;
    a.hash = Sha256::Digest("x");
    a.signature = rng.RandomBytes(96);
    valid.push_back(a.Serialize());

    DataFrame f{m, rng.RandomBytes(96), Sha256::Digest("p"), a};
    valid.push_back(f.Serialize());

    SnapshotMeta meta;
    meta.snapshot_id = 2;
    meta.root = Sha256::Digest("r");
    valid.push_back(meta.Serialize());

    TamperEvidentLog log("bob");
    log.Append(EntryType::kInfo, ToBytes("a"));
    log.Append(EntryType::kSend, ToBytes("b"));
    valid.push_back(log.Extract(1, 2).Serialize());
  }

  for (const Bytes& base : valid) {
    for (int trial = 0; trial < 40; trial++) {
      Bytes mutated = base;
      switch (rng.Below(4)) {
        case 0:  // Flip random bytes.
          for (int k = 0; k < 3 && !mutated.empty(); k++) {
            mutated[rng.Below(mutated.size())] ^= static_cast<uint8_t>(rng.Next());
          }
          break;
        case 1:  // Truncate.
          mutated.resize(rng.Below(mutated.size() + 1));
          break;
        case 2:  // Extend with garbage.
          Append(mutated, rng.RandomBytes(rng.Below(32) + 1));
          break;
        case 3: {  // Splice two structures together.
          const Bytes& other = valid[rng.Below(valid.size())];
          size_t cut = rng.Below(mutated.size() + 1);
          mutated.resize(cut);
          Append(mutated, other);
          break;
        }
      }
      ParseEverything(mutated);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutatedInputFuzz, ::testing::Range<uint64_t>(0, 8));

TEST(TraceEventSerde, RoundTripAllKinds) {
  Prng rng(9);
  for (TraceKind kind : {TraceKind::kPortIn, TraceKind::kDmaPacket, TraceKind::kAsyncIrq,
                         TraceKind::kOutConsole, TraceKind::kOutDebug, TraceKind::kOutPacket}) {
    TraceEvent e;
    e.kind = kind;
    e.icount = rng.Next();
    e.port = static_cast<uint16_t>(rng.Next());
    e.value = static_cast<uint32_t>(rng.Next());
    e.data = rng.RandomBytes(rng.Below(64));
    TraceEvent restored = TraceEvent::Deserialize(e.Serialize());
    EXPECT_TRUE(restored == e) << TraceKindName(kind);
  }
}

TEST(TraceEventSerde, ClassificationMatchesFigure4Streams) {
  TraceEvent clock;
  clock.kind = TraceKind::kPortIn;
  clock.port = kPortClockLo;
  EXPECT_EQ(ClassifyTraceEvent(clock), EntryType::kTraceTime);
  clock.port = kPortClockHi;
  EXPECT_EQ(ClassifyTraceEvent(clock), EntryType::kTraceTime);

  TraceEvent rxlen;
  rxlen.kind = TraceKind::kPortIn;
  rxlen.port = kPortNetRxLen;
  EXPECT_EQ(ClassifyTraceEvent(rxlen), EntryType::kTraceMac);

  TraceEvent input;
  input.kind = TraceKind::kPortIn;
  input.port = kPortInput;
  EXPECT_EQ(ClassifyTraceEvent(input), EntryType::kTraceOther);

  TraceEvent dma;
  dma.kind = TraceKind::kDmaPacket;
  EXPECT_EQ(ClassifyTraceEvent(dma), EntryType::kTraceMac);

  TraceEvent tx;
  tx.kind = TraceKind::kOutPacket;
  EXPECT_EQ(ClassifyTraceEvent(tx), EntryType::kTraceMac);

  TraceEvent console;
  console.kind = TraceKind::kOutConsole;
  EXPECT_EQ(ClassifyTraceEvent(console), EntryType::kTraceOther);
}

TEST(FrameParsing, BadTypesRejected) {
  EXPECT_THROW(PeekFrameType(Bytes{}), SerdeError);
  EXPECT_THROW(PeekFrameType(Bytes{0}), SerdeError);
  EXPECT_THROW(PeekFrameType(Bytes{99}), SerdeError);
  EXPECT_EQ(PeekFrameType(Bytes{1, 2, 3}), FrameType::kData);
  EXPECT_EQ(UnwrapFrame(Bytes{1, 2, 3}), (Bytes{2, 3}));
}

}  // namespace
}  // namespace avm
