// Robustness of every wire-format parser against malformed input.
//
// Auditors parse logs, frames, snapshots and evidence produced by
// machines they explicitly do not trust (§3.1), so every deserializer
// must fail cleanly (SerdeError or a validation error), never crash or
// accept garbage.
#include <gtest/gtest.h>

#include "src/audit/evidence.h"
#include "src/avmm/message.h"
#include "src/util/serde.h"
#include "src/avmm/partial_snapshot.h"
#include "src/avmm/snapshot.h"
#include "src/store/segment_file.h"
#include "src/tel/log.h"
#include "src/util/prng.h"
#include "src/vm/trace.h"

namespace avm {
namespace {

// Parses `data` with every deserializer; none may crash.
void ParseEverything(ByteView data) {
  auto swallow = [&](auto&& fn) {
    try {
      fn();
    } catch (const SerdeError&) {
    } catch (const StoreError&) {
    } catch (const std::invalid_argument&) {
    } catch (const std::out_of_range&) {
    }
  };
  swallow([&] { (void)LogSegment::Deserialize(data); });
  swallow([&] { (void)Authenticator::Deserialize(data); });
  swallow([&] { (void)TraceEvent::Deserialize(data); });
  swallow([&] { (void)MessageRecord::Deserialize(data); });
  swallow([&] { (void)DataFrame::Deserialize(data); });
  swallow([&] { (void)AckFrame::Deserialize(data); });
  swallow([&] { (void)ChallengeFrame::Deserialize(data); });
  swallow([&] { (void)SnapshotMeta::Deserialize(data); });
  swallow([&] { (void)SnapshotDelta::Deserialize(data); });
  swallow([&] { (void)PartialSnapshot::Deserialize(data); });
  swallow([&] { (void)Evidence::Deserialize(data); });
  swallow([&] { (void)CpuState::Deserialize(data); });
  swallow([&] { (void)MerkleProof::Deserialize(data); });
  // Log store on-disk formats: a store opened by an auditor is as
  // untrusted as a segment shipped over the network.
  swallow([&] { (void)DecodeSegmentHeader(data); });
  swallow([&] {
    size_t off = 0;
    (void)DecodeRecordAt(data, &off);
  });
  swallow([&] { (void)ScanActiveSegment(data, 16); });
  swallow([&] {
    SealedInfo info = ReadSealedInfo(data);
    (void)ReadSealedRecords(data, info);
  });
}

class RandomInputFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomInputFuzz, NoCrashOnRandomBytes) {
  Prng rng(GetParam());
  for (int i = 0; i < 50; i++) {
    ParseEverything(rng.RandomBytes(rng.Below(300)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInputFuzz, ::testing::Range<uint64_t>(0, 8));

class MutatedInputFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutatedInputFuzz, NoCrashOnMutatedValidStructures) {
  Prng rng(GetParam() + 1000);

  // Build valid serializations of each structure, then mutate them.
  std::vector<Bytes> valid;
  {
    TraceEvent e;
    e.kind = TraceKind::kDmaPacket;
    e.icount = 12345;
    e.data = rng.RandomBytes(40);
    valid.push_back(e.Serialize());

    MessageRecord m{"alice", "bob", 7, rng.RandomBytes(24)};
    valid.push_back(m.Serialize());

    Authenticator a;
    a.node = "bob";
    a.seq = 3;
    a.hash = Sha256::Digest("x");
    a.signature = rng.RandomBytes(96);
    valid.push_back(a.Serialize());

    DataFrame f{m, rng.RandomBytes(96), Sha256::Digest("p"), a};
    valid.push_back(f.Serialize());

    SnapshotMeta meta;
    meta.snapshot_id = 2;
    meta.root = Sha256::Digest("r");
    valid.push_back(meta.Serialize());

    TamperEvidentLog log("bob");
    log.Append(EntryType::kInfo, ToBytes("a"));
    log.Append(EntryType::kSend, ToBytes("b"));
    valid.push_back(log.Extract(1, 2).Serialize());

    // Store files: an active segment (header + CRC-framed records) and
    // its sealed counterpart (compressed body + index + footer).
    TamperEvidentLog store_log("bob");
    Bytes active = EncodeSegmentHeader({1, Hash256::Zero()});
    std::vector<SparseIndexEntry> index;
    for (int i = 0; i < 6; i++) {
      const LogEntry& e =
          store_log.Append(i % 2 == 0 ? EntryType::kInfo : EntryType::kSend,
                           rng.RandomBytes(rng.Below(40)));
      if (i % 2 == 0) {
        index.push_back({e.seq, active.size() - kSegmentHeaderSize});
      }
      EncodeRecord(e, active);
    }
    valid.push_back(active);
    valid.push_back(EncodeSealedSegment({1, Hash256::Zero()},
                                        ByteView(active).subspan(kSegmentHeaderSize), index, 6, 6,
                                        store_log.LastHash(), /*compress=*/true));
  }

  for (const Bytes& base : valid) {
    for (int trial = 0; trial < 40; trial++) {
      Bytes mutated = base;
      switch (rng.Below(4)) {
        case 0:  // Flip random bytes.
          for (int k = 0; k < 3 && !mutated.empty(); k++) {
            mutated[rng.Below(mutated.size())] ^= static_cast<uint8_t>(rng.Next());
          }
          break;
        case 1:  // Truncate.
          mutated.resize(rng.Below(mutated.size() + 1));
          break;
        case 2:  // Extend with garbage.
          Append(mutated, rng.RandomBytes(rng.Below(32) + 1));
          break;
        case 3: {  // Splice two structures together.
          const Bytes& other = valid[rng.Below(valid.size())];
          size_t cut = rng.Below(mutated.size() + 1);
          mutated.resize(cut);
          Append(mutated, other);
          break;
        }
      }
      ParseEverything(mutated);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutatedInputFuzz, ::testing::Range<uint64_t>(0, 8));

// Every proper prefix of a valid serialization must be rejected with a
// clean error -- the truncations a fuzzer only hits probabilistically.
TEST(TruncationRobustness, EveryPrefixRejectedCleanly) {
  Prng rng(77);
  TamperEvidentLog log("bob");
  for (int i = 0; i < 4; i++) {
    log.Append(EntryType::kInfo, rng.RandomBytes(20));
  }
  Bytes seg = log.Extract(1, 4).Serialize();
  for (size_t n = 0; n < seg.size(); n++) {
    EXPECT_THROW((void)LogSegment::Deserialize(ByteView(seg.data(), n)), SerdeError) << n;
  }

  Authenticator a;
  a.node = "bob";
  a.seq = 9;
  a.hash = Sha256::Digest("h");
  a.signature = rng.RandomBytes(96);
  Bytes auth = a.Serialize();
  for (size_t n = 0; n < auth.size(); n++) {
    EXPECT_THROW((void)Authenticator::Deserialize(ByteView(auth.data(), n)), SerdeError) << n;
  }

  Bytes active = EncodeSegmentHeader({1, Hash256::Zero()});
  for (int i = 1; i <= 3; i++) {
    EncodeRecord(log.At(static_cast<uint64_t>(i)), active);
  }
  Bytes sealed = EncodeSealedSegment({1, Hash256::Zero()},
                                     ByteView(active).subspan(kSegmentHeaderSize), {}, 3, 3,
                                     log.At(3).hash, /*compress=*/true);
  for (size_t n = 0; n < sealed.size(); n++) {
    EXPECT_THROW((void)ReadSealedInfo(ByteView(sealed.data(), n)), StoreError) << n;
  }
  // An active segment's truncated tail is recovered, not fatal: the scan
  // reports the torn point instead of throwing (header truncation aside).
  for (size_t n = 0; n < active.size(); n++) {
    ByteView prefix(active.data(), n);
    if (n < kSegmentHeaderSize) {
      EXPECT_THROW((void)ScanActiveSegment(prefix, 4), StoreError) << n;
    } else {
      ActiveScan scan = ScanActiveSegment(prefix, 4);
      EXPECT_TRUE(scan.torn || scan.valid_bytes == n - kSegmentHeaderSize) << n;
      EXPECT_LE(scan.last_seq, 3u) << n;
    }
  }
}

TEST(TraceEventSerde, RoundTripAllKinds) {
  Prng rng(9);
  for (TraceKind kind : {TraceKind::kPortIn, TraceKind::kDmaPacket, TraceKind::kAsyncIrq,
                         TraceKind::kOutConsole, TraceKind::kOutDebug, TraceKind::kOutPacket}) {
    TraceEvent e;
    e.kind = kind;
    e.icount = rng.Next();
    e.port = static_cast<uint16_t>(rng.Next());
    e.value = static_cast<uint32_t>(rng.Next());
    e.data = rng.RandomBytes(rng.Below(64));
    TraceEvent restored = TraceEvent::Deserialize(e.Serialize());
    EXPECT_TRUE(restored == e) << TraceKindName(kind);
  }
}

TEST(TraceEventSerde, ClassificationMatchesFigure4Streams) {
  TraceEvent clock;
  clock.kind = TraceKind::kPortIn;
  clock.port = kPortClockLo;
  EXPECT_EQ(ClassifyTraceEvent(clock), EntryType::kTraceTime);
  clock.port = kPortClockHi;
  EXPECT_EQ(ClassifyTraceEvent(clock), EntryType::kTraceTime);

  TraceEvent rxlen;
  rxlen.kind = TraceKind::kPortIn;
  rxlen.port = kPortNetRxLen;
  EXPECT_EQ(ClassifyTraceEvent(rxlen), EntryType::kTraceMac);

  TraceEvent input;
  input.kind = TraceKind::kPortIn;
  input.port = kPortInput;
  EXPECT_EQ(ClassifyTraceEvent(input), EntryType::kTraceOther);

  TraceEvent dma;
  dma.kind = TraceKind::kDmaPacket;
  EXPECT_EQ(ClassifyTraceEvent(dma), EntryType::kTraceMac);

  TraceEvent tx;
  tx.kind = TraceKind::kOutPacket;
  EXPECT_EQ(ClassifyTraceEvent(tx), EntryType::kTraceMac);

  TraceEvent console;
  console.kind = TraceKind::kOutConsole;
  EXPECT_EQ(ClassifyTraceEvent(console), EntryType::kTraceOther);
}

TEST(FrameParsing, BadTypesRejected) {
  EXPECT_THROW(PeekFrameType(Bytes{}), SerdeError);
  EXPECT_THROW(PeekFrameType(Bytes{0}), SerdeError);
  EXPECT_THROW(PeekFrameType(Bytes{99}), SerdeError);
  EXPECT_EQ(PeekFrameType(Bytes{1, 2, 3}), FrameType::kData);
  EXPECT_EQ(UnwrapFrame(Bytes{1, 2, 3}), (Bytes{2, 3}));
}

}  // namespace
}  // namespace avm
