#include <gtest/gtest.h>

#include "src/apps/cheats.h"
#include "src/apps/game.h"
#include "src/apps/kvstore.h"
#include "src/sim/scenario.h"

namespace avm {
namespace {

TEST(GameImages, AllVariantsAssemble) {
  GameClientParams p;
  for (auto v : {GameClientParams::Variant::kReference, GameClientParams::Variant::kAimbot,
                 GameClientParams::Variant::kWallhack}) {
    p.variant = v;
    Bytes image = BuildGameClientImage(p);
    EXPECT_GT(image.size(), 100u);
  }
  EXPECT_GT(BuildGameServerImage(GameServerParams{}).size(), 100u);
  EXPECT_GT(BuildKvServerImage(KvServerParams{}).size(), 100u);
  EXPECT_GT(BuildKvClientImage(KvClientParams{}).size(), 100u);
}

TEST(GameImages, VariantsDifferFromReference) {
  GameClientParams ref;
  GameClientParams aim = ref;
  aim.variant = GameClientParams::Variant::kAimbot;
  GameClientParams wall = ref;
  wall.variant = GameClientParams::Variant::kWallhack;
  Bytes a = BuildGameClientImage(ref);
  Bytes b = BuildGameClientImage(aim);
  Bytes c = BuildGameClientImage(wall);
  EXPECT_FALSE(BytesEqual(a, b));
  EXPECT_FALSE(BytesEqual(a, c));
  EXPECT_FALSE(BytesEqual(b, c));
}

TEST(GameImages, ParamsChangeImage) {
  GameClientParams a, b;
  b.render_iters = a.render_iters + 1;
  EXPECT_FALSE(BytesEqual(BuildGameClientImage(a), BuildGameClientImage(b)));
  GameClientParams c = a;
  c.frame_cap = true;
  EXPECT_FALSE(BytesEqual(BuildGameClientImage(a), BuildGameClientImage(c)));
}

struct GameBehavior : public ::testing::Test {
  GameScenarioConfig Cfg(uint64_t seed) {
    GameScenarioConfig cfg;
    cfg.run = RunConfig::AvmmNoSig();
    cfg.num_players = 2;
    cfg.seed = seed;
    cfg.client.render_iters = 300;
    return cfg;
  }
};

TEST_F(GameBehavior, PlayersRenderAndCommunicate) {
  GameScenario game(Cfg(1));
  game.Start();
  game.RunFor(2 * kMicrosPerSecond);
  game.Finish();
  for (int i = 0; i < 2; i++) {
    const Avmm& p = game.player(i);
    EXPECT_GT(p.stats().frames_rendered, 100u);
    EXPECT_GT(p.stats().guest_packets_sent, 10u);       // STATE packets.
    EXPECT_GT(p.stats().guest_packets_delivered, 10u);  // WORLD packets.
    EXPECT_FALSE(p.machine().faulted()) << p.machine().fault_reason();
  }
  EXPECT_GT(game.server().stats().guest_packets_delivered, 20u);
  EXPECT_GT(game.server().stats().guest_packets_sent, 20u);
}

TEST_F(GameBehavior, FiringConsumesAmmo) {
  GameScenarioConfig cfg = Cfg(2);
  cfg.fire_fraction = 1.0;  // Every input is FIRE.
  cfg.input_mean_gap_us = 20 * kMicrosPerMilli;
  GameScenario game(cfg);
  game.Start();
  game.RunFor(2 * kMicrosPerSecond);
  game.Finish();
  const Machine& m = game.player(0).machine();
  uint32_t ammo = m.ReadMem32(kGameStateAmmo);
  uint32_t shots = m.ReadMem32(kGameStateShots);
  EXPECT_EQ(ammo + shots, cfg.client.ammo_init);
  EXPECT_GT(shots, 0u);
}

TEST_F(GameBehavior, AmmoBoundsFiring) {
  GameScenarioConfig cfg = Cfg(3);
  cfg.fire_fraction = 1.0;
  cfg.input_mean_gap_us = 5 * kMicrosPerMilli;  // Fire much more than 30x.
  GameScenario game(cfg);
  game.Start();
  game.RunFor(3 * kMicrosPerSecond);
  game.Finish();
  const Machine& m = game.player(0).machine();
  // No correct execution can fire more than the initial ammo.
  EXPECT_EQ(m.ReadMem32(kGameStateShots), cfg.client.ammo_init);
  EXPECT_EQ(m.ReadMem32(kGameStateAmmo), 0u);
}

TEST_F(GameBehavior, UnlimitedAmmoCheatBreaksTheBound) {
  GameScenarioConfig cfg = Cfg(4);
  cfg.fire_fraction = 1.0;
  cfg.input_mean_gap_us = 5 * kMicrosPerMilli;
  GameScenario game(cfg);
  game.SetCheat(0, RunnableCheat::kUnlimitedAmmo);
  game.Start();
  game.RunFor(3 * kMicrosPerSecond);
  game.Finish();
  const Machine& m = game.player(0).machine();
  EXPECT_GT(m.ReadMem32(kGameStateShots), cfg.client.ammo_init);
}

TEST_F(GameBehavior, MovementFollowsInputs) {
  GameScenarioConfig cfg = Cfg(5);
  cfg.fire_fraction = 0.0;  // Only movement inputs.
  GameScenario game(cfg);
  game.Start();
  game.RunFor(2 * kMicrosPerSecond);
  game.Finish();
  const Machine& m = game.player(0).machine();
  // Started at (100,100); random walk should have moved somewhere.
  uint32_t x = m.ReadMem32(kGameStateX);
  uint32_t y = m.ReadMem32(kGameStateY);
  EXPECT_TRUE(x != 100 || y != 100);
}

TEST_F(GameBehavior, WorldStatePropagates) {
  GameScenario game(Cfg(6));
  game.Start();
  game.RunFor(2 * kMicrosPerSecond);
  game.Finish();
  // Player 1's world table should contain entries broadcast by the server.
  const Machine& m = game.player(0).machine();
  EXPECT_GT(m.ReadMem32(kGameWorldAddr), 0u);
}

TEST_F(GameBehavior, DeterministicGivenSeed) {
  auto run = [&](uint64_t seed) {
    GameScenario game(Cfg(seed));
    game.Start();
    game.RunFor(kMicrosPerSecond);
    game.Finish();
    return game.player(0).log().LastHash();
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST_F(GameBehavior, TeleportCheatMovesPlayer) {
  GameScenario game(Cfg(9));
  game.SetCheat(0, RunnableCheat::kTeleport);
  game.Start();
  game.RunFor(kMicrosPerSecond);
  game.Finish();
  EXPECT_EQ(game.player(0).machine().ReadMem32(kGameStateX), 9999u);
}

TEST(CheatCatalogTable, MatchesPaperCounts) {
  const auto& catalog = CheatCatalog();
  EXPECT_EQ(catalog.size(), 26u);
  int class1 = 0, class2 = 0;
  for (const CheatInfo& c : catalog) {
    class1 += c.class1_install ? 1 : 0;
    class2 += c.class2_network ? 1 : 0;
  }
  EXPECT_EQ(class1, 26);  // All must be installed in the image.
  EXPECT_EQ(class2, 4);   // Exactly four are network-visible in any impl.
}

TEST(CheatCatalogTable, RunnableCheatsHaveMechanisms) {
  EXPECT_TRUE(MakeCheatHook(RunnableCheat::kUnlimitedAmmo).has_value());
  EXPECT_TRUE(MakeCheatHook(RunnableCheat::kTeleport).has_value());
  EXPECT_FALSE(MakeCheatHook(RunnableCheat::kAimbotImage).has_value());
  EXPECT_TRUE(CheatImageVariant(RunnableCheat::kAimbotImage).has_value());
  EXPECT_TRUE(CheatImageVariant(RunnableCheat::kWallhackImage).has_value());
  EXPECT_FALSE(CheatImageVariant(RunnableCheat::kUnlimitedAmmo).has_value());
  EXPECT_TRUE(CheatDetectableByAvm(RunnableCheat::kTeleport));
  EXPECT_FALSE(CheatDetectableByAvm(RunnableCheat::kForgedInputAimbot));
  EXPECT_FALSE(CheatDetectableByAvm(RunnableCheat::kNone));
}

}  // namespace
}  // namespace avm
