#include <gtest/gtest.h>

#include "src/avmm/partial_snapshot.h"
#include "src/vm/assembler.h"

namespace avm {
namespace {

constexpr size_t kMem = 64 * 1024;

struct PartialFixture : public ::testing::Test {
  PartialFixture() : machine(kMem, &backend), mgr(&store) {
    machine.LoadImage(Assemble(R"(
      la r1, 0x5000
      movi r2, 7
      sw r2, [r1]
      la r1, 0x9000
      sw r2, [r1]
      halt
    )"));
    mgr.Take(machine, 0);
    machine.Run(100);
    meta = mgr.Take(machine, 1000);
    state = store.Materialize(1, kMem);
  }

  NullBackend backend;
  Machine machine;
  SnapshotStore store;
  SnapshotManager mgr;
  SnapshotMeta meta;
  MaterializedState state;
};

TEST_F(PartialFixture, RootMatchesCommittedRoot) {
  PartialSnapshot ps = MakePartialSnapshot(state, {0, 5});
  EXPECT_EQ(ps.root, meta.root);
}

TEST_F(PartialFixture, VerifiesAgainstLoggedRoot) {
  PartialSnapshot ps = MakePartialSnapshot(state, {0, 5, 9});
  EXPECT_TRUE(VerifyPartialSnapshot(ps, meta.root));
}

TEST_F(PartialFixture, SerializationRoundTrip) {
  PartialSnapshot ps = MakePartialSnapshot(state, {5});
  PartialSnapshot restored = PartialSnapshot::Deserialize(ps.Serialize());
  EXPECT_TRUE(VerifyPartialSnapshot(restored, meta.root));
  EXPECT_EQ(restored.pages.size(), 1u);
  EXPECT_EQ(restored.pages[0].index, 5u);
}

TEST_F(PartialFixture, RedactionShrinksTransfer) {
  PartialSnapshot full = MakePartialSnapshot(state, [&] {
    std::vector<uint32_t> all;
    for (uint32_t i = 0; i < kMem / kPageSize; i++) {
      all.push_back(i);
    }
    return all;
  }());
  PartialSnapshot redacted = MakePartialSnapshot(state, {5});
  EXPECT_LT(redacted.TransferSize(), full.TransferSize() / 8);
  EXPECT_TRUE(VerifyPartialSnapshot(redacted, meta.root));
}

TEST_F(PartialFixture, TamperedPageRejected) {
  PartialSnapshot ps = MakePartialSnapshot(state, {5});
  ps.pages[0].data[10] ^= 1;
  EXPECT_FALSE(VerifyPartialSnapshot(ps, meta.root));
}

TEST_F(PartialFixture, TamperedCpuRejected) {
  PartialSnapshot ps = MakePartialSnapshot(state, {5});
  ps.cpu_state[0] ^= 1;
  EXPECT_FALSE(VerifyPartialSnapshot(ps, meta.root));
}

TEST_F(PartialFixture, SwappedPageIndexRejected) {
  // A page presented under a different index must fail even though the
  // page data itself is authentic.
  PartialSnapshot ps = MakePartialSnapshot(state, {5, 9});
  std::swap(ps.pages[0].index, ps.pages[1].index);
  EXPECT_FALSE(VerifyPartialSnapshot(ps, meta.root));
}

TEST_F(PartialFixture, WrongRootRejected) {
  PartialSnapshot ps = MakePartialSnapshot(state, {5});
  EXPECT_FALSE(VerifyPartialSnapshot(ps, Sha256::Digest("other")));
}

TEST_F(PartialFixture, MaterializePartialProducesAuthenticPages) {
  PartialSnapshot ps = MakePartialSnapshot(state, {5});
  auto st = MaterializePartial(ps, meta.root);
  ASSERT_TRUE(st.has_value());
  EXPECT_TRUE(st->cpu == state.cpu);
  EXPECT_TRUE(st->present_pages[5]);
  EXPECT_FALSE(st->present_pages[6]);
  // Page 5 contains the guest's write at 0x5000.
  EXPECT_EQ(GetU32(st->memory, 0x5000), 7u);
  // Redacted page 9 is zeroed, not leaked.
  EXPECT_EQ(GetU32(st->memory, 0x9000), 0u);
}

TEST_F(PartialFixture, MaterializeRejectsTampered) {
  PartialSnapshot ps = MakePartialSnapshot(state, {5});
  ps.pages[0].data[0] ^= 1;
  EXPECT_FALSE(MaterializePartial(ps, meta.root).has_value());
}

TEST_F(PartialFixture, OutOfRangePageThrows) {
  EXPECT_THROW(MakePartialSnapshot(state, {kMem / kPageSize}), std::out_of_range);
}

}  // namespace
}  // namespace avm
