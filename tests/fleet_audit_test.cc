// The sharded audit service and the checkpointed, resumable audit:
// checkpoint-resumed verdicts must be bit-for-bit those of a
// from-genesis audit across checkpoint cadences, sign modes and
// pipelined/sequential paths; forged/stale checkpoints must be
// rejected (falling back to genesis); tampering behind an accepted
// checkpoint must still be caught; and the fleet scheduler must honor
// priorities and per-auditee fairness.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "src/audit/checkpoint.h"
#include "src/audit/fleet.h"
#include "src/sim/scenario.h"
#include "src/store/log_store.h"

namespace avm {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  std::string dir = (fs::temp_directory_path() / ("avm_fleet_" + name)).string();
  fs::remove_all(dir);
  return dir;
}

// The audit *verdict*: everything that must be bit-for-bit identical
// between a from-genesis and a checkpoint-resumed audit. Timings and
// bytes-read accounting legitimately differ (that is the speedup).
void ExpectSameVerdict(const AuditOutcome& a, const AuditOutcome& b, const std::string& what) {
  EXPECT_EQ(a.ok, b.ok) << what;
  EXPECT_EQ(a.syntactic.ok, b.syntactic.ok) << what;
  EXPECT_EQ(a.syntactic.reason, b.syntactic.reason) << what;
  EXPECT_EQ(a.syntactic.bad_seq, b.syntactic.bad_seq) << what;
  EXPECT_EQ(a.semantic.ok, b.semantic.ok) << what;
  EXPECT_EQ(a.semantic.reason, b.semantic.reason) << what;
  EXPECT_EQ(a.semantic.diverged_seq, b.semantic.diverged_seq) << what;
  EXPECT_EQ(a.evidence.has_value(), b.evidence.has_value()) << what;
  if (a.evidence.has_value() && b.evidence.has_value()) {
    EXPECT_EQ(static_cast<int>(a.evidence->kind), static_cast<int>(b.evidence->kind)) << what;
    EXPECT_EQ(a.evidence->accused, b.evidence->accused) << what;
  }
}

// An in-memory copy of a log with one entry tampered — the adversarial
// SegmentSource a lying auditee would serve. With `rechain`, the chain
// hashes from the tampered entry onward are recomputed so the segment
// is self-consistent (only authenticators/checkpoints can expose it);
// without, the stored hash no longer matches the hash rule.
class TamperedLogSource final : public SegmentSource {
 public:
  TamperedLogSource(const SegmentSource& inner, uint64_t tamper_seq, bool rechain)
      : node_(inner.node()) {
    LogSegment all = inner.Extract(1, inner.LastSeq());
    entries_ = std::move(all.entries);
    LogEntry& t = entries_.at(tamper_seq - 1);
    if (t.content.empty()) {
      t.content.push_back(0);
    }
    t.content[0] ^= 0x5a;
    if (rechain) {
      Hash256 prev = tamper_seq >= 2 ? entries_[tamper_seq - 2].hash : Hash256::Zero();
      for (uint64_t s = tamper_seq; s <= entries_.size(); s++) {
        LogEntry& e = entries_[s - 1];
        e.hash = ChainHash(prev, e.seq, e.type, e.content);
        prev = e.hash;
      }
    }
  }

  const NodeId& node() const override { return node_; }
  uint64_t LastSeq() const override { return entries_.size(); }
  LogSegment Extract(uint64_t from_seq, uint64_t to_seq) const override {
    if (from_seq < 1 || to_seq > entries_.size() || from_seq > to_seq) {
      throw std::out_of_range("TamperedLogSource: bad range");
    }
    LogSegment seg;
    seg.node = node_;
    seg.prior_hash = from_seq == 1 ? Hash256::Zero() : entries_[from_seq - 2].hash;
    seg.entries.assign(entries_.begin() + static_cast<ptrdiff_t>(from_seq - 1),
                       entries_.begin() + static_cast<ptrdiff_t>(to_seq));
    return seg;
  }
  void Scan(uint64_t from_seq, uint64_t to_seq, const EntryVisitor& visit) const override {
    for (uint64_t s = from_seq; s <= to_seq; s++) {
      if (!visit(entries_.at(s - 1))) {
        return;
      }
    }
  }

 private:
  NodeId node_;
  std::vector<LogEntry> entries_;
};

// A finished, store-backed kv run plus everything an audit needs.
struct KvFixture {
  explicit KvFixture(RunConfig run, const std::string& dir_name, SimTime duration,
                     uint64_t seed = 11) {
    dir = TempDir(dir_name);
    KvScenarioConfig cfg;
    cfg.run = run;
    cfg.seed = seed;
    scenario = std::make_unique<KvScenario>(cfg);
    scenario->Start();
    LogStoreOptions opts;
    opts.sync = false;
    opts.seal_threshold_bytes = 64 * 1024;  // Several sealed segments.
    store = LogStore::Open(dir, "kvserver", opts);
    scenario->server().SpillTo(store.get());
    scenario->RunFor(duration);
    scenario->Finish();
    store->Flush();
    auths = scenario->CollectAuthsForServer();
  }
  ~KvFixture() { Cleanup(); }
  void Cleanup() {
    store.reset();
    scenario.reset();
    fs::remove_all(dir);
  }

  std::string dir;
  std::unique_ptr<KvScenario> scenario;
  std::unique_ptr<LogStore> store;
  std::vector<Authenticator> auths;
};

AuditConfig SeqCfg() {
  AuditConfig cfg;
  cfg.threads = 1;
  cfg.pipelined = false;
  cfg.pipeline_chunk_entries = 512;
  return cfg;
}

AuditConfig PipeCfg() {
  AuditConfig cfg;
  cfg.threads = 4;
  cfg.pipelined = true;
  cfg.pipeline_chunk_entries = 512;
  return cfg;
}

// The acceptance sweep: for each sign mode, checkpoint-resumed verdicts
// (first audit captures, second resumes) equal the from-genesis verdict
// at several cadences — including cadences that land mid-batch-window —
// on both the sequential and the pipelined path.
TEST(CheckpointedAudit, ResumedVerdictsBitForBitAcrossCadencesAndSignModes) {
  struct ModeCase {
    const char* name;
    RunConfig run;
  };
  const ModeCase kModes[] = {
      {"sync", RunConfig::AvmmRsa768()},
      {"batched", RunConfig::AvmmRsa768Batched(8)},
      {"async", RunConfig::AvmmRsa768Async(8)},
  };
  for (const ModeCase& mode : kModes) {
    KvFixture fx(mode.run, std::string("cadence_") + mode.name, 3 * kMicrosPerSecond);
    const uint64_t last = fx.store->LastSeq();
    ASSERT_GT(last, 1000u) << mode.name;

    // From-genesis references, sequential and pipelined.
    Auditor seq_ref("auditor", &fx.scenario->registry(), SeqCfg());
    AuditOutcome genesis_seq =
        seq_ref.AuditFull(fx.scenario->server(), *fx.store,
                          fx.scenario->reference_server_image(), fx.auths);
    ASSERT_TRUE(genesis_seq.ok) << mode.name << ": " << genesis_seq.Describe();
    Auditor pipe_ref("auditor", &fx.scenario->registry(), PipeCfg());
    AuditOutcome genesis_pipe =
        pipe_ref.AuditFull(fx.scenario->server(), *fx.store,
                           fx.scenario->reference_server_image(), fx.auths);
    ExpectSameVerdict(genesis_seq, genesis_pipe, std::string(mode.name) + "/pipe-ref");

    // 777 is coprime to the batch window (8), so captures land
    // mid-window with pending batched entries in the scan state.
    for (uint64_t cadence : {uint64_t{300}, uint64_t{777}, last / 2}) {
      for (bool pipelined : {false, true}) {
        std::string what = std::string(mode.name) + "/cadence=" + std::to_string(cadence) +
                           (pipelined ? "/pipelined" : "/sequential");
        fs::remove(fs::path(fx.dir) / AuditCheckpointFileName("auditor"));
        CheckpointConfig ck;
        ck.every_entries = cadence;
        CheckpointedAuditor auditor("auditor", &fx.scenario->registry(),
                                    pipelined ? PipeCfg() : SeqCfg(), ck);
        ResumeInfo cold_info;
        AuditOutcome cold =
            auditor.AuditFull(fx.scenario->server(), *fx.store,
                              fx.scenario->reference_server_image(), fx.auths, fx.dir,
                              &cold_info);
        ExpectSameVerdict(genesis_seq, cold, what + "/cold");
        EXPECT_FALSE(cold_info.resumed) << what;
        ASSERT_GT(cold_info.checkpoints_written, 0u) << what;

        ResumeInfo resumed_info;
        AuditOutcome resumed =
            auditor.AuditFull(fx.scenario->server(), *fx.store,
                              fx.scenario->reference_server_image(), fx.auths, fx.dir,
                              &resumed_info);
        ExpectSameVerdict(genesis_seq, resumed, what + "/resumed");
        EXPECT_TRUE(resumed_info.resumed) << what;
        EXPECT_GE(resumed_info.resumed_from, cadence) << what;
        EXPECT_LT(resumed_info.entries_scanned, cold_info.entries_scanned) << what;
        EXPECT_LT(resumed.log_bytes, cold.log_bytes) << what;
      }
    }
  }
}

// A cheat that diverges mid-log: checkpoints written before the
// divergence must resume to the identical failing verdict (reason,
// seq, evidence kind).
TEST(CheckpointedAudit, ResumedAuditReproducesCheatVerdict) {
  std::string dir = TempDir("cheat");
  GameScenarioConfig cfg;
  cfg.run = RunConfig::AvmmNoSig();
  cfg.num_players = 2;
  cfg.seed = 21;
  cfg.client.render_iters = 300;
  GameScenario game(cfg);
  game.Start();
  bool armed = false;
  game.player(0).SetCheatHook([&armed](Machine& m, SimTime now) {
    if (now >= kMicrosPerSecond) {
      m.WriteMem32(kGameStateAmmo, 30);
      armed = true;
    }
  });
  LogStoreOptions opts;
  opts.sync = false;
  auto store = LogStore::Open(dir, game.player_id(0), opts);
  game.player(0).SpillTo(store.get());
  game.RunFor(2 * kMicrosPerSecond);
  game.Finish();
  store->Flush();
  ASSERT_TRUE(armed);
  std::vector<Authenticator> auths = game.CollectAuths(game.player_id(0));

  Auditor ref("auditor", &game.registry(), SeqCfg());
  AuditOutcome genesis =
      ref.AuditFull(game.player(0), *store, game.reference_client_image(), auths);
  ASSERT_FALSE(genesis.ok);
  ASSERT_FALSE(genesis.semantic.ok);

  CheckpointConfig ck;
  ck.every_entries = 200;
  CheckpointedAuditor auditor("auditor", &game.registry(), SeqCfg(), ck);
  ResumeInfo cold_info;
  AuditOutcome cold = auditor.AuditFull(game.player(0), *store, game.reference_client_image(),
                                        auths, dir, &cold_info);
  ExpectSameVerdict(genesis, cold, "cheat/cold");
  ASSERT_GT(cold_info.checkpoints_written, 0u);

  ResumeInfo resumed_info;
  AuditOutcome resumed = auditor.AuditFull(game.player(0), *store,
                                           game.reference_client_image(), auths, dir,
                                           &resumed_info);
  ExpectSameVerdict(genesis, resumed, "cheat/resumed");
  EXPECT_TRUE(resumed_info.resumed);
  // Checkpoints must never be captured past the divergence.
  std::optional<AuditCheckpoint> cp = LoadAuditCheckpoint(dir, "auditor");
  ASSERT_TRUE(cp.has_value());
  EXPECT_LT(cp->seq, genesis.semantic.diverged_seq);

  store.reset();
  fs::remove_all(dir);
}

// Attested-input mode rides through checkpoints too: the scan cursor
// (device index replay protection) is part of the checkpointed state.
TEST(CheckpointedAudit, AttestedInputStateSurvivesResume) {
  std::string dir = TempDir("attested");
  GameScenarioConfig cfg;
  cfg.run = RunConfig::AvmmNoSig();
  cfg.num_players = 2;
  cfg.seed = 31;
  cfg.client.render_iters = 300;
  cfg.attested_input = true;
  GameScenario game(cfg);
  game.Start();
  LogStoreOptions opts;
  opts.sync = false;
  auto store = LogStore::Open(dir, game.player_id(0), opts);
  game.player(0).SpillTo(store.get());
  game.RunFor(2 * kMicrosPerSecond);
  game.Finish();
  store->Flush();
  std::vector<Authenticator> auths = game.CollectAuths(game.player_id(0));

  AuditConfig acfg = SeqCfg();
  acfg.attested_input = true;
  Auditor ref("auditor", &game.registry(), acfg);
  AuditOutcome genesis =
      ref.AuditFull(game.player(0), *store, game.reference_client_image(), auths);

  CheckpointConfig ck;
  ck.every_entries = 250;
  CheckpointedAuditor auditor("auditor", &game.registry(), acfg, ck);
  ResumeInfo info;
  AuditOutcome cold = auditor.AuditFull(game.player(0), *store, game.reference_client_image(),
                                        auths, dir, &info);
  ExpectSameVerdict(genesis, cold, "attested/cold");
  ASSERT_GT(info.checkpoints_written, 0u);
  AuditOutcome resumed = auditor.AuditFull(game.player(0), *store,
                                           game.reference_client_image(), auths, dir, &info);
  ExpectSameVerdict(genesis, resumed, "attested/resumed");
  EXPECT_TRUE(info.resumed);

  store.reset();
  fs::remove_all(dir);
}

TEST(CheckpointedAudit, TamperAheadOfWatermarkSameVerdictAsGenesis) {
  KvFixture fx(RunConfig::AvmmRsa768(), "tamper_ahead", 2 * kMicrosPerSecond);
  CheckpointConfig ck;
  ck.every_entries = 400;
  CheckpointedAuditor auditor("auditor", &fx.scenario->registry(), SeqCfg(), ck);
  ResumeInfo info;
  AuditOutcome clean = auditor.AuditFull(fx.scenario->server(), *fx.store,
                                         fx.scenario->reference_server_image(), fx.auths,
                                         fx.dir, &info);
  ASSERT_TRUE(clean.ok);
  std::optional<AuditCheckpoint> cp = LoadAuditCheckpoint(fx.dir, "auditor");
  ASSERT_TRUE(cp.has_value());
  ASSERT_LT(cp->seq, fx.store->LastSeq());

  // Tamper an entry *after* the watermark (no rechain: the hash rule
  // breaks at that entry). The resumed audit must report exactly what a
  // from-genesis audit of the tampered log reports.
  uint64_t tamper_seq = cp->seq + (fx.store->LastSeq() - cp->seq) / 2;
  TamperedLogSource tampered(*fx.store, tamper_seq, /*rechain=*/false);
  Auditor ref("auditor", &fx.scenario->registry(), SeqCfg());
  AuditOutcome genesis = ref.AuditFull(fx.scenario->server(), tampered,
                                       fx.scenario->reference_server_image(), fx.auths);
  ASSERT_FALSE(genesis.ok);
  EXPECT_EQ(genesis.syntactic.bad_seq, tamper_seq);

  ResumeInfo tinfo;
  AuditOutcome resumed = auditor.AuditFull(fx.scenario->server(), tampered,
                                           fx.scenario->reference_server_image(), fx.auths,
                                           fx.dir, &tinfo);
  EXPECT_TRUE(tinfo.resumed);  // The prefix is untouched, so the resume holds.
  ExpectSameVerdict(genesis, resumed, "tamper-ahead");
}

TEST(CheckpointedAudit, TamperBehindWatermarkRejectsCheckpointAndCatches) {
  KvFixture fx(RunConfig::AvmmRsa768(), "tamper_behind", 2 * kMicrosPerSecond);
  CheckpointConfig ck;
  ck.every_entries = 400;
  CheckpointedAuditor auditor("auditor", &fx.scenario->registry(), SeqCfg(), ck);
  ResumeInfo info;
  AuditOutcome clean = auditor.AuditFull(fx.scenario->server(), *fx.store,
                                         fx.scenario->reference_server_image(), fx.auths,
                                         fx.dir, &info);
  ASSERT_TRUE(clean.ok);
  std::optional<AuditCheckpoint> cp = LoadAuditCheckpoint(fx.dir, "auditor");
  ASSERT_TRUE(cp.has_value());
  ASSERT_GT(cp->seq, 2u);

  // Rewrite an entry *behind* the watermark and rechain so the log is
  // self-consistent. The chain hash at the watermark necessarily
  // changes, so the checkpoint is rejected, the audit falls back to
  // genesis, and the genesis pass catches the tamper (the rewritten
  // chain contradicts the issued authenticators).
  TamperedLogSource tampered(*fx.store, cp->seq / 2, /*rechain=*/true);
  Auditor ref("auditor", &fx.scenario->registry(), SeqCfg());
  AuditOutcome genesis = ref.AuditFull(fx.scenario->server(), tampered,
                                       fx.scenario->reference_server_image(), fx.auths);
  ASSERT_FALSE(genesis.ok);

  ResumeInfo tinfo;
  AuditOutcome resumed = auditor.AuditFull(fx.scenario->server(), tampered,
                                           fx.scenario->reference_server_image(), fx.auths,
                                           fx.dir, &tinfo);
  EXPECT_FALSE(tinfo.resumed);
  EXPECT_TRUE(tinfo.checkpoint_rejected);
  EXPECT_NE(tinfo.reject_reason.find("watermark"), std::string::npos) << tinfo.reject_reason;
  ExpectSameVerdict(genesis, resumed, "tamper-behind");
  EXPECT_FALSE(resumed.ok);
}

TEST(CheckpointedAudit, ForgedAndCorruptCheckpointsRejected) {
  KvFixture fx(RunConfig::AvmmRsa768(), "forged", 2 * kMicrosPerSecond);
  // A real auditor identity whose key the registry knows: checkpoints
  // are signed, so a fabricated file cannot claim a verified prefix.
  Prng rng(77);
  Signer auditor_signer("auditor", SignatureScheme::kRsa768, rng);
  KeyRegistry registry = fx.scenario->registry();  // Copy + extend.
  registry.RegisterSigner(auditor_signer);

  CheckpointConfig ck;
  ck.every_entries = 400;
  ck.signer = &auditor_signer;
  CheckpointedAuditor auditor("auditor", &registry, SeqCfg(), ck);
  ResumeInfo info;
  AuditOutcome clean =
      auditor.AuditFull(fx.scenario->server(), *fx.store,
                        fx.scenario->reference_server_image(), fx.auths, fx.dir, &info);
  ASSERT_TRUE(clean.ok);
  ASSERT_GT(info.checkpoints_written, 0u);
  std::string ckpt_path = (fs::path(fx.dir) / AuditCheckpointFileName("auditor")).string();
  std::optional<Bytes> original = LogStore::ReadAuxFile(ckpt_path);
  ASSERT_TRUE(original.has_value());

  // (a) Bit corruption: payload digest mismatch -> unparseable -> cold.
  Bytes corrupt = *original;
  corrupt[corrupt.size() / 2] ^= 0x40;
  LogStore::WriteAuxFile(ckpt_path, corrupt, false);
  ResumeInfo corrupt_info;
  AuditOutcome after_corrupt =
      auditor.AuditFull(fx.scenario->server(), *fx.store,
                        fx.scenario->reference_server_image(), fx.auths, fx.dir,
                        &corrupt_info);
  EXPECT_FALSE(corrupt_info.resumed);
  EXPECT_TRUE(corrupt_info.checkpoint_rejected);
  ExpectSameVerdict(clean, after_corrupt, "corrupt-ckpt");

  // (b) A *forged* checkpoint: internally consistent (rebuilt digest)
  // but moved watermark — the auditee trying to shrink the audited
  // range. Without the auditor's key the signature cannot be fixed up,
  // so validation rejects it and the audit runs from genesis.
  AuditCheckpoint forged = AuditCheckpoint::Deserialize(*original);
  forged.seq -= 1;  // Any field change invalidates the signature.
  LogStore::WriteAuxFile(ckpt_path, forged.Serialize(), false);
  ResumeInfo forged_info;
  AuditOutcome after_forged =
      auditor.AuditFull(fx.scenario->server(), *fx.store,
                        fx.scenario->reference_server_image(), fx.auths, fx.dir,
                        &forged_info);
  EXPECT_FALSE(forged_info.resumed);
  EXPECT_TRUE(forged_info.checkpoint_rejected);
  EXPECT_NE(forged_info.reject_reason.find("signature"), std::string::npos)
      << forged_info.reject_reason;
  ExpectSameVerdict(clean, after_forged, "forged-ckpt");

  // (c) A stale checkpoint from a *different* run of the "same" node
  // (different seed -> different history): the watermark chain hash
  // does not match this log.
  {
    KvFixture other(RunConfig::AvmmRsa768(), "forged_other", 2 * kMicrosPerSecond,
                    /*seed=*/99);
    KeyRegistry other_registry = other.scenario->registry();  // Its own node keys.
    other_registry.RegisterSigner(auditor_signer);
    CheckpointedAuditor other_auditor("auditor", &other_registry, SeqCfg(), ck);
    ResumeInfo oinfo;
    other_auditor.AuditFull(other.scenario->server(), *other.store,
                            other.scenario->reference_server_image(), other.auths, other.dir,
                            &oinfo);
    ASSERT_GT(oinfo.checkpoints_written, 0u);
    std::optional<Bytes> stale = LogStore::ReadAuxFile(
        (fs::path(other.dir) / AuditCheckpointFileName("auditor")).string());
    ASSERT_TRUE(stale.has_value());
    LogStore::WriteAuxFile(ckpt_path, *stale, false);
  }
  ResumeInfo stale_info;
  AuditOutcome after_stale =
      auditor.AuditFull(fx.scenario->server(), *fx.store,
                        fx.scenario->reference_server_image(), fx.auths, fx.dir, &stale_info);
  EXPECT_FALSE(stale_info.resumed);
  EXPECT_TRUE(stale_info.checkpoint_rejected);
  ExpectSameVerdict(clean, after_stale, "stale-ckpt");
}

// Checkpoint files coexist with store recovery: a reopened store keeps
// them readable, and an interrupted checkpoint write (*.tmp) is swept.
TEST(CheckpointedAudit, CheckpointSurvivesStoreReopenAndTmpIsSwept) {
  KvFixture fx(RunConfig::AvmmNoSig(), "reopen", kMicrosPerSecond);
  CheckpointConfig ck;
  ck.every_entries = 300;
  CheckpointedAuditor auditor("auditor", &fx.scenario->registry(), SeqCfg(), ck);
  ResumeInfo info;
  AuditOutcome first =
      auditor.AuditFull(fx.scenario->server(), *fx.store,
                        fx.scenario->reference_server_image(), fx.auths, fx.dir, &info);
  ASSERT_TRUE(first.ok);
  ASSERT_GT(info.checkpoints_written, 0u);

  // Simulate a crash mid-checkpoint-write next to a completed one.
  std::string tmp_path =
      (fs::path(fx.dir) / (AuditCheckpointFileName("auditor") + ".tmp")).string();
  Bytes junk = ToBytes("torn checkpoint write");
  {
    std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(junk.data(), 1, junk.size(), f);
    std::fclose(f);
  }

  fx.scenario->server().SpillTo(nullptr);  // The old sink is going away.
  fx.store.reset();
  LogStoreOptions opts;
  opts.sync = false;
  fx.store = LogStore::Open(fx.dir, opts);  // Node name from store.meta.
  EXPECT_FALSE(fs::exists(tmp_path)) << "recovery must sweep interrupted aux writes";
  ASSERT_TRUE(LoadAuditCheckpoint(fx.dir, "auditor").has_value());

  ResumeInfo resumed_info;
  AuditOutcome resumed =
      auditor.AuditFull(fx.scenario->server(), *fx.store,
                        fx.scenario->reference_server_image(), fx.auths, fx.dir,
                        &resumed_info);
  EXPECT_TRUE(resumed_info.resumed);
  ExpectSameVerdict(first, resumed, "reopen");
}

// ------------------------------------------------------------ Fleet ----

FleetAuditConfig FleetCfg(unsigned workers) {
  FleetAuditConfig cfg;
  cfg.workers = workers;
  cfg.audit = SeqCfg();
  cfg.checkpoint.every_entries = 300;
  return cfg;
}

void RegisterAll(FleetAuditService& service, FleetScenario& fleet) {
  for (FleetScenario::AuditeeRef& a : fleet.Auditees()) {
    FleetAuditService::Registration reg;
    reg.node = a.global_name;
    reg.target = a.avmm;
    reg.source = a.store;
    reg.reference_image = *a.reference_image;
    reg.auths = a.collect_auths();
    reg.checkpoint_dir = a.store->dir();
    reg.registry = a.registry;
    service.RegisterAuditee(std::move(reg));
  }
}

TEST(FleetAudit, OneCheaterAmongHonestAuditeesIsIsolated) {
  FleetScenarioConfig cfg;
  cfg.run = RunConfig::AvmmNoSig();
  cfg.num_games = 2;
  cfg.players_per_game = 2;
  cfg.num_kv = 1;
  cfg.seed = 5;
  cfg.game.client.render_iters = 300;
  cfg.cheats[{0, 1}] = RunnableCheat::kTeleport;  // g0/player2 cheats.
  FleetScenario fleet(cfg);
  fleet.Start();
  std::string base = TempDir("fleet_cheater");
  fleet.SpillLogsTo(base);
  fleet.RunFor(1500 * kMicrosPerMilli);
  fleet.Finish();

  FleetAuditService service(nullptr, FleetCfg(3));
  RegisterAll(service, fleet);
  EXPECT_EQ(service.auditee_count(), 7u);  // 2*(1 server + 2 players) + 1 kv.

  std::map<NodeId, uint64_t> jobs;
  for (const FleetScenario::AuditeeRef& a : fleet.Auditees()) {
    jobs[a.global_name] = service.SubmitFullAudit(a.global_name);
  }
  service.Drain();

  const NodeId cheater = "g0/player2";
  for (FleetScenario::AuditeeRef& a : fleet.Auditees()) {
    std::optional<FleetJobResult> r = service.Result(jobs[a.global_name]);
    ASSERT_TRUE(r.has_value()) << a.global_name;
    // Every fleet verdict equals the direct single-auditee audit.
    Auditor direct("auditor", a.registry, SeqCfg());
    AuditOutcome expect =
        direct.AuditFull(*a.avmm, *a.store, *a.reference_image, a.collect_auths());
    ExpectSameVerdict(expect, r->outcome, a.global_name);
    if (a.global_name == cheater) {
      EXPECT_FALSE(r->outcome.ok) << "cheater must be detected";
    } else {
      EXPECT_TRUE(r->outcome.ok) << a.global_name << ": " << r->outcome.Describe();
    }
  }
  EXPECT_EQ(service.stats().faults_detected, 1u);
  EXPECT_EQ(service.stats().audits_cold, 7u);

  // Second round: every audit resumes from its checkpoint and the
  // verdicts do not move.
  std::map<NodeId, uint64_t> jobs2;
  for (const FleetScenario::AuditeeRef& a : fleet.Auditees()) {
    jobs2[a.global_name] = service.SubmitFullAudit(a.global_name);
  }
  service.Drain();
  uint64_t resumed_count = 0;
  for (FleetScenario::AuditeeRef& a : fleet.Auditees()) {
    std::optional<FleetJobResult> r1 = service.Result(jobs[a.global_name]);
    std::optional<FleetJobResult> r2 = service.Result(jobs2[a.global_name]);
    ASSERT_TRUE(r2.has_value());
    ExpectSameVerdict(r1->outcome, r2->outcome, a.global_name + "/round2");
    if (r2->resume.resumed) {
      resumed_count++;
      EXPECT_LT(r2->resume.entries_scanned, r1->resume.entries_scanned) << a.global_name;
    }
  }
  EXPECT_GT(resumed_count, 0u);
  EXPECT_EQ(service.stats().audits_resumed, resumed_count);
  EXPECT_GT(service.stats().entries_skipped, 0u);

  fs::remove_all(base);
}

// Registration::checkpoint_store routes the auditor's checkpoint
// captures through the store's batched-fsync path (one group commit
// covers both the log tail and the checkpoint) instead of a per-file
// fsync. Same checkpoints, same resumes -- cheaper disk schedule.
TEST(FleetAudit, CheckpointsThroughStoreBatchedPathResume) {
  FleetScenarioConfig cfg;
  cfg.run = RunConfig::AvmmNoSig();
  cfg.num_games = 1;
  cfg.players_per_game = 2;
  cfg.num_kv = 0;
  cfg.seed = 11;
  cfg.game.client.render_iters = 300;
  FleetScenario fleet(cfg);
  fleet.Start();
  std::string base = TempDir("ckpt_batched");
  fleet.SpillLogsTo(base);
  fleet.RunFor(1500 * kMicrosPerMilli);
  fleet.Finish();

  FleetAuditService service(nullptr, FleetCfg(2));
  for (FleetScenario::AuditeeRef& a : fleet.Auditees()) {
    FleetAuditService::Registration reg;
    reg.node = a.global_name;
    reg.target = a.avmm;
    reg.source = a.store;
    reg.reference_image = *a.reference_image;
    reg.auths = a.collect_auths();
    reg.checkpoint_dir = a.store->dir();
    reg.checkpoint_store = a.store;  // Batched captures.
    reg.registry = a.registry;
    service.RegisterAuditee(std::move(reg));
  }

  std::map<NodeId, uint64_t> jobs;
  for (const FleetScenario::AuditeeRef& a : fleet.Auditees()) {
    jobs[a.global_name] = service.SubmitFullAudit(a.global_name);
  }
  service.Drain();
  ASSERT_GT(service.stats().checkpoints_written, 0u);
  // The captures are real files in the store directory, readable
  // through the same aux-file API recovery sweeps.
  size_t ckpt_files = 0;
  for (FleetScenario::AuditeeRef& a : fleet.Auditees()) {
    for (const fs::directory_entry& de : fs::directory_iterator(a.store->dir())) {
      if (de.path().extension() == ".ckpt") {
        ckpt_files++;
        EXPECT_TRUE(LogStore::ReadAuxFile(de.path().string()).has_value());
      }
    }
  }
  EXPECT_GT(ckpt_files, 0u);

  // Round 2 resumes from the batched-path checkpoints with identical
  // verdicts -- the capture path changed nothing an auditor can see.
  std::map<NodeId, uint64_t> jobs2;
  for (const FleetScenario::AuditeeRef& a : fleet.Auditees()) {
    jobs2[a.global_name] = service.SubmitFullAudit(a.global_name);
  }
  service.Drain();
  uint64_t resumed_count = 0;
  for (FleetScenario::AuditeeRef& a : fleet.Auditees()) {
    std::optional<FleetJobResult> r1 = service.Result(jobs[a.global_name]);
    std::optional<FleetJobResult> r2 = service.Result(jobs2[a.global_name]);
    ASSERT_TRUE(r1.has_value() && r2.has_value()) << a.global_name;
    ExpectSameVerdict(r1->outcome, r2->outcome, a.global_name + "/batched-resume");
    EXPECT_TRUE(r2->outcome.ok) << a.global_name << ": " << r2->outcome.Describe();
    if (r2->resume.resumed) {
      resumed_count++;
    }
  }
  EXPECT_GT(resumed_count, 0u);

  fs::remove_all(base);
}

TEST(FleetAudit, PrioritiesAndRoundRobinFairness) {
  FleetScenarioConfig cfg;
  cfg.run = RunConfig::AvmmNoSig();
  cfg.num_games = 1;
  cfg.players_per_game = 2;
  cfg.num_kv = 1;
  cfg.seed = 9;
  cfg.game.client.render_iters = 300;
  FleetScenario fleet(cfg);
  fleet.Start();
  std::string base = TempDir("fleet_fair");
  fleet.SpillLogsTo(base);
  fleet.RunFor(800 * kMicrosPerMilli);
  fleet.Finish();

  FleetAuditConfig fcfg = FleetCfg(1);  // One worker: total order.
  fcfg.start_paused = true;
  FleetAuditService service(nullptr, fcfg);
  RegisterAll(service, fleet);

  const NodeId a = "g0/player1", b = "g0/player2", c = "kv0/kvserver";
  // Submission order deliberately scrambles priorities.
  uint64_t a_low1 = service.SubmitFullAudit(a, FleetPriority::kLow);
  uint64_t a_low2 = service.SubmitFullAudit(a, FleetPriority::kLow);
  uint64_t b_norm1 = service.SubmitFullAudit(b, FleetPriority::kNormal);
  uint64_t b_norm2 = service.SubmitFullAudit(b, FleetPriority::kNormal);
  uint64_t c_high = service.SubmitFullAudit(c, FleetPriority::kHigh);
  uint64_t a_high = service.SubmitFullAudit(a, FleetPriority::kHigh);
  service.Resume();
  service.Drain();

  auto order = [&](uint64_t id) { return service.Result(id)->completion_index; };
  // Highs first (submission order among equals), then normals, lows last.
  EXPECT_EQ(order(c_high), 0u);
  EXPECT_EQ(order(a_high), 1u);
  EXPECT_EQ(order(b_norm1), 2u);
  EXPECT_EQ(order(b_norm2), 3u);
  EXPECT_EQ(order(a_low1), 4u);
  EXPECT_EQ(order(a_low2), 5u);

  // Round robin across auditees at equal priority: a,b,c interleave
  // even though each auditee submitted its jobs back to back.
  FleetAuditConfig fcfg2 = FleetCfg(1);
  fcfg2.start_paused = true;
  FleetAuditService rr(nullptr, fcfg2);
  RegisterAll(rr, fleet);
  std::vector<uint64_t> ids;
  for (const NodeId& n : {a, a, b, b, c, c}) {
    ids.push_back(rr.SubmitFullAudit(n));
  }
  rr.Resume();
  rr.Drain();
  auto rr_order = [&](size_t i) { return rr.Result(ids[i])->completion_index; };
  EXPECT_EQ(rr_order(0), 0u);  // a1
  EXPECT_EQ(rr_order(2), 1u);  // b1 (a was just served)
  EXPECT_EQ(rr_order(4), 2u);  // c1
  EXPECT_EQ(rr_order(1), 3u);  // a2
  EXPECT_EQ(rr_order(3), 4u);  // b2
  EXPECT_EQ(rr_order(5), 5u);  // c2

  fs::remove_all(base);
}

TEST(FleetAudit, VerdictsIndependentOfWorkerCountAndSpotChecksRun) {
  FleetScenarioConfig cfg;
  cfg.run = RunConfig::AvmmNoSig();
  cfg.num_games = 1;
  cfg.players_per_game = 2;
  cfg.num_kv = 2;
  cfg.seed = 13;
  cfg.game.client.render_iters = 300;
  cfg.kv.snapshot_interval = 200 * kMicrosPerMilli;  // Several spot windows.
  FleetScenario fleet(cfg);
  fleet.Start();
  std::string base = TempDir("fleet_workers");
  fleet.SpillLogsTo(base);
  fleet.RunFor(kMicrosPerSecond);
  fleet.Finish();

  std::map<NodeId, AuditOutcome> verdicts[2];
  for (int round = 0; round < 2; round++) {
    FleetAuditConfig fcfg = FleetCfg(round == 0 ? 1 : 4);
    fcfg.resume_from_checkpoints = false;  // Isolate: sharding only.
    FleetAuditService service(nullptr, fcfg);
    RegisterAll(service, fleet);
    std::map<NodeId, uint64_t> jobs;
    for (const FleetScenario::AuditeeRef& a : fleet.Auditees()) {
      jobs[a.global_name] = service.SubmitFullAudit(a.global_name);
    }
    // Spot checks shard across the same workers (kv servers snapshot).
    uint64_t spot = service.SubmitSpotCheck("kv0/kvserver", 1, 2);
    service.Drain();
    for (const auto& [node, id] : jobs) {
      verdicts[round][node] = service.Result(id)->outcome;
    }
    std::optional<FleetJobResult> sr = service.Result(spot);
    ASSERT_TRUE(sr.has_value());
    EXPECT_TRUE(sr->outcome.ok) << sr->outcome.Describe();
  }
  for (const auto& [node, outcome] : verdicts[0]) {
    ExpectSameVerdict(outcome, verdicts[1][node], node + "/worker-count");
  }
  fs::remove_all(base);
}

TEST(FleetAudit, OnlinePollsTrackLagAndSurfaceRewind) {
  KvFixture fx(RunConfig::AvmmNoSig(), "fleet_online", kMicrosPerSecond);
  // A shrinkable view models the auditee crashing + truncating.
  class Shrinkable final : public SegmentSource {
   public:
    explicit Shrinkable(const SegmentSource& inner) : inner_(&inner) {}
    void ShrinkTo(uint64_t last) { forced_ = last; }
    const NodeId& node() const override { return inner_->node(); }
    uint64_t LastSeq() const override { return std::min(forced_, inner_->LastSeq()); }
    LogSegment Extract(uint64_t f, uint64_t t) const override { return inner_->Extract(f, t); }
    void Scan(uint64_t f, uint64_t t, const EntryVisitor& v) const override {
      inner_->Scan(f, t, v);
    }

   private:
    const SegmentSource* inner_;
    uint64_t forced_ = UINT64_MAX;
  } shrinkable(*fx.store);

  FleetAuditService service(&fx.scenario->registry(), FleetCfg(1));
  FleetAuditService::Registration reg;
  reg.node = "kv/server";
  reg.target = &fx.scenario->server();
  reg.source = &shrinkable;
  reg.reference_image = fx.scenario->reference_server_image();
  reg.auths = fx.auths;
  service.RegisterAuditee(std::move(reg));

  uint64_t poll1 = service.SubmitOnlinePoll("kv/server");
  service.Drain();
  std::optional<FleetJobResult> r1 = service.Result(poll1);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->online_status, OnlinePollStatus::kAdvanced);
  EXPECT_TRUE(r1->online.ok);
  EXPECT_EQ(r1->online_lag_entries, 0u);

  shrinkable.ShrinkTo(fx.store->LastSeq() / 2);
  uint64_t poll2 = service.SubmitOnlinePoll("kv/server");
  service.Drain();
  std::optional<FleetJobResult> r2 = service.Result(poll2);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->online_status, OnlinePollStatus::kTargetRewound);
  EXPECT_EQ(service.stats().targets_rewound, 1u);
  EXPECT_EQ(service.stats().online_polls, 2u);
}

}  // namespace
}  // namespace avm
