#include <gtest/gtest.h>

#include "src/crypto/merkle.h"
#include "src/util/prng.h"

namespace avm {
namespace {

std::vector<Bytes> MakeLeaves(size_t n, uint64_t seed = 1) {
  Prng rng(seed);
  std::vector<Bytes> leaves;
  for (size_t i = 0; i < n; i++) {
    leaves.push_back(rng.RandomBytes(16 + rng.Below(48)));
  }
  return leaves;
}

TEST(Merkle, EmptyTreeRootIsZero) {
  MerkleTree t({});
  EXPECT_TRUE(t.Root().IsZero());
}

TEST(Merkle, SingleLeafRootIsLeafHash) {
  Bytes leaf = ToBytes("data");
  MerkleTree t = MerkleTree::FromLeafData({leaf});
  EXPECT_EQ(t.Root(), MerkleLeafHash(leaf));
}

TEST(Merkle, LeafAndNodeHashesAreDomainSeparated) {
  // H_leaf(x) must differ from H_node applied to the same bytes.
  Bytes x(64, 0xaa);
  Hash256 l = MerkleLeafHash(x);
  Hash256 a = Hash256::FromBytes(ByteView(x.data(), 32));
  Hash256 b = Hash256::FromBytes(ByteView(x.data() + 32, 32));
  EXPECT_NE(l, MerkleNodeHash(a, b));
}

TEST(Merkle, RootChangesWithAnyLeaf) {
  auto leaves = MakeLeaves(8);
  Hash256 root = MerkleTree::FromLeafData(leaves).Root();
  for (size_t i = 0; i < leaves.size(); i++) {
    auto modified = leaves;
    modified[i][0] ^= 1;
    EXPECT_NE(MerkleTree::FromLeafData(modified).Root(), root) << "leaf " << i;
  }
}

TEST(Merkle, RootDependsOnOrder) {
  auto leaves = MakeLeaves(4);
  Hash256 root = MerkleTree::FromLeafData(leaves).Root();
  std::swap(leaves[1], leaves[2]);
  EXPECT_NE(MerkleTree::FromLeafData(leaves).Root(), root);
}

class MerkleProofTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MerkleProofTest, AllProofsVerify) {
  size_t n = GetParam();
  auto leaves = MakeLeaves(n, n);
  MerkleTree t = MerkleTree::FromLeafData(leaves);
  for (size_t i = 0; i < n; i++) {
    MerkleProof proof = t.ProveLeaf(i);
    EXPECT_TRUE(MerkleTree::VerifyProof(t.Root(), MerkleLeafHash(leaves[i]), proof))
        << "n=" << n << " i=" << i;
  }
}

TEST_P(MerkleProofTest, ProofRejectsWrongLeaf) {
  size_t n = GetParam();
  if (n < 2) {
    return;
  }
  auto leaves = MakeLeaves(n, n * 7);
  MerkleTree t = MerkleTree::FromLeafData(leaves);
  MerkleProof proof = t.ProveLeaf(0);
  EXPECT_FALSE(MerkleTree::VerifyProof(t.Root(), MerkleLeafHash(leaves[1]), proof));
}

TEST_P(MerkleProofTest, ProofRejectsWrongRoot) {
  size_t n = GetParam();
  auto leaves = MakeLeaves(n, n * 13);
  MerkleTree t = MerkleTree::FromLeafData(leaves);
  MerkleProof proof = t.ProveLeaf(n - 1);
  Hash256 wrong = Sha256::Digest("not the root");
  EXPECT_FALSE(MerkleTree::VerifyProof(wrong, MerkleLeafHash(leaves[n - 1]), proof));
}

// Odd sizes exercise the promoted-node path.
INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProofTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 33, 64, 100));

TEST(Merkle, UpdateLeafMatchesRebuild) {
  auto leaves = MakeLeaves(13, 3);
  MerkleTree t = MerkleTree::FromLeafData(leaves);
  Prng rng(4);
  for (int iter = 0; iter < 20; iter++) {
    size_t i = rng.Below(leaves.size());
    leaves[i] = rng.RandomBytes(20);
    t.UpdateLeaf(i, MerkleLeafHash(leaves[i]));
    EXPECT_EQ(t.Root(), MerkleTree::FromLeafData(leaves).Root());
  }
}

TEST(Merkle, UpdateOutOfRangeThrows) {
  MerkleTree t = MerkleTree::FromLeafData(MakeLeaves(4));
  EXPECT_THROW(t.UpdateLeaf(4, Hash256::Zero()), std::out_of_range);
  EXPECT_THROW(t.ProveLeaf(4), std::out_of_range);
}

TEST(Merkle, ProofSerializationRoundTrip) {
  auto leaves = MakeLeaves(9, 5);
  MerkleTree t = MerkleTree::FromLeafData(leaves);
  MerkleProof proof = t.ProveLeaf(5);
  MerkleProof restored = MerkleProof::Deserialize(proof.Serialize());
  EXPECT_EQ(restored.leaf_index, proof.leaf_index);
  EXPECT_EQ(restored.leaf_count, proof.leaf_count);
  EXPECT_EQ(restored.siblings.size(), proof.siblings.size());
  EXPECT_TRUE(MerkleTree::VerifyProof(t.Root(), MerkleLeafHash(leaves[5]), restored));
}

TEST(Merkle, TruncatedProofRejected) {
  auto leaves = MakeLeaves(16, 6);
  MerkleTree t = MerkleTree::FromLeafData(leaves);
  MerkleProof proof = t.ProveLeaf(3);
  proof.siblings.pop_back();
  EXPECT_FALSE(MerkleTree::VerifyProof(t.Root(), MerkleLeafHash(leaves[3]), proof));
  // Extra sibling also rejected.
  MerkleProof proof2 = t.ProveLeaf(3);
  proof2.siblings.push_back(Hash256::Zero());
  EXPECT_FALSE(MerkleTree::VerifyProof(t.Root(), MerkleLeafHash(leaves[3]), proof2));
}

TEST(Merkle, IndexBeyondCountRejected) {
  MerkleProof p;
  p.leaf_index = 5;
  p.leaf_count = 5;
  EXPECT_FALSE(MerkleTree::VerifyProof(Hash256::Zero(), Hash256::Zero(), p));
}

}  // namespace
}  // namespace avm
