#include <gtest/gtest.h>

#include "src/crypto/keys.h"
#include "src/crypto/rsa.h"

namespace avm {
namespace {

// Small keys keep the test fast; the scheme is identical at any size.
RsaKeypair TestKeypair(uint64_t seed = 1, size_t bits = 512) {
  Prng rng(seed);
  return RsaKeypair::Generate(rng, bits);
}

TEST(Rsa, SignVerifyRoundTrip) {
  RsaKeypair kp = TestKeypair();
  Bytes msg = ToBytes("the quick brown fox");
  Bytes sig = RsaSign(kp.priv, msg);
  EXPECT_EQ(sig.size(), kp.pub.ByteLength());
  EXPECT_TRUE(RsaVerify(kp.pub, msg, sig));
}

TEST(Rsa, VerifyRejectsModifiedMessage) {
  RsaKeypair kp = TestKeypair();
  Bytes sig = RsaSign(kp.priv, ToBytes("message A"));
  EXPECT_FALSE(RsaVerify(kp.pub, ToBytes("message B"), sig));
}

TEST(Rsa, VerifyRejectsModifiedSignature) {
  RsaKeypair kp = TestKeypair();
  Bytes msg = ToBytes("message");
  Bytes sig = RsaSign(kp.priv, msg);
  for (size_t i = 0; i < sig.size(); i += 13) {
    Bytes bad = sig;
    bad[i] ^= 1;
    EXPECT_FALSE(RsaVerify(kp.pub, msg, bad));
  }
}

TEST(Rsa, VerifyRejectsWrongKey) {
  RsaKeypair a = TestKeypair(1), b = TestKeypair(2);
  Bytes msg = ToBytes("message");
  EXPECT_FALSE(RsaVerify(b.pub, msg, RsaSign(a.priv, msg)));
}

TEST(Rsa, VerifyRejectsWrongLengthAndOversized) {
  RsaKeypair kp = TestKeypair();
  Bytes msg = ToBytes("m");
  EXPECT_FALSE(RsaVerify(kp.pub, msg, Bytes(10, 0)));
  // s >= n must be rejected.
  Bytes huge = kp.pub.n.ToBytes(kp.pub.ByteLength());
  EXPECT_FALSE(RsaVerify(kp.pub, msg, huge));
}

TEST(Rsa, EmptyMessageSigns) {
  RsaKeypair kp = TestKeypair();
  Bytes sig = RsaSign(kp.priv, Bytes());
  EXPECT_TRUE(RsaVerify(kp.pub, Bytes(), sig));
}

TEST(Rsa, DeterministicSignature) {
  // PKCS#1 v1.5 signing is deterministic: same key + message -> same sig.
  RsaKeypair kp = TestKeypair();
  Bytes m = ToBytes("stable");
  EXPECT_EQ(RsaSign(kp.priv, m), RsaSign(kp.priv, m));
}

TEST(Rsa, KeygenModulusExactBits) {
  for (uint64_t seed : {3u, 4u, 5u}) {
    RsaKeypair kp = TestKeypair(seed, 512);
    EXPECT_EQ(kp.pub.n.BitLength(), 512u);
  }
}

TEST(Rsa, Keygen768LikePaper) {
  RsaKeypair kp = TestKeypair(6, 768);
  EXPECT_EQ(kp.pub.n.BitLength(), 768u);
  Bytes msg = ToBytes("paper-sized key");
  EXPECT_TRUE(RsaVerify(kp.pub, msg, RsaSign(kp.priv, msg)));
}

TEST(Rsa, DeterministicKeygenFromSeed) {
  Prng r1(99), r2(99);
  RsaKeypair a = RsaKeypair::Generate(r1, 256);
  RsaKeypair b = RsaKeypair::Generate(r2, 256);
  EXPECT_EQ(a.pub.n, b.pub.n);
}

TEST(Rsa, PublicKeySerializationRoundTrip) {
  RsaKeypair kp = TestKeypair();
  RsaPublicKey restored = RsaPublicKey::Deserialize(kp.pub.Serialize());
  EXPECT_EQ(restored.n, kp.pub.n);
  EXPECT_EQ(restored.e, kp.pub.e);
  EXPECT_EQ(restored.Fingerprint(), kp.pub.Fingerprint());
}

TEST(Rsa, ModulusTooSmallThrows) {
  Prng rng(1);
  RsaKeypair kp = RsaKeypair::Generate(rng, 128);
  // 128-bit modulus cannot hold the SHA-256 DigestInfo.
  EXPECT_THROW(RsaSign(kp.priv, ToBytes("x")), std::invalid_argument);
}

TEST(Signer, SchemeNone) {
  Prng rng(1);
  Signer s("alice", SignatureScheme::kNone, rng);
  EXPECT_TRUE(s.Sign(ToBytes("m")).empty());
  KeyRegistry reg;
  reg.RegisterSigner(s);
  EXPECT_TRUE(reg.Verify("alice", ToBytes("m"), Bytes()));
  // A non-empty "signature" is rejected even in nosig mode.
  EXPECT_FALSE(reg.Verify("alice", ToBytes("m"), Bytes{1}));
}

TEST(Signer, SchemeRsaThroughRegistry) {
  Prng rng(2);
  Signer alice("alice", SignatureScheme::kRsa768, rng);
  Signer bob("bob", SignatureScheme::kRsa768, rng);
  KeyRegistry reg;
  reg.RegisterSigner(alice);
  reg.RegisterSigner(bob);

  Bytes msg = ToBytes("hello");
  Bytes sig = alice.Sign(msg);
  EXPECT_TRUE(reg.Verify("alice", msg, sig));
  EXPECT_FALSE(reg.Verify("bob", msg, sig));     // Wrong principal.
  EXPECT_FALSE(reg.Verify("carol", msg, sig));   // Unknown principal.
}

TEST(KeyRegistry, SchemeOf) {
  Prng rng(3);
  Signer s("alice", SignatureScheme::kRsa768, rng);
  KeyRegistry reg;
  reg.RegisterSigner(s);
  EXPECT_EQ(reg.SchemeOf("alice"), SignatureScheme::kRsa768);
  EXPECT_TRUE(reg.Knows("alice"));
  EXPECT_FALSE(reg.Knows("mallory"));
  EXPECT_THROW(reg.SchemeOf("mallory"), std::out_of_range);
}

TEST(SignatureScheme, Names) {
  EXPECT_STREQ(SignatureSchemeName(SignatureScheme::kNone), "nosig");
  EXPECT_STREQ(SignatureSchemeName(SignatureScheme::kRsa768), "rsa768");
  EXPECT_EQ(SignatureSchemeBits(SignatureScheme::kRsa2048), 2048u);
}

}  // namespace
}  // namespace avm
