#include <gtest/gtest.h>

#include "src/util/prng.h"
#include "src/vm/assembler.h"
#include "src/vm/jit/jit.h"
#include "src/vm/machine.h"

namespace avm {
namespace {

constexpr size_t kMem = 64 * 1024;

// Runs an assembly snippet until HALT and returns the machine for
// inspection. The snippet must set up its own registers.
struct RunResult {
  CpuState cpu;
  bool faulted;
  std::string fault_reason;
};

RunResult RunAsm(const std::string& body, uint64_t max_instr = 100000) {
  NullBackend backend;
  Machine m(kMem, &backend);
  m.LoadImage(Assemble(body));
  m.Run(max_instr);
  return {m.cpu(), m.faulted(), m.fault_reason()};
}

uint32_t Reg(const RunResult& r, int i) { return r.cpu.regs[i]; }

TEST(Machine, MoviSignExtends) {
  auto r = RunAsm("movi r1, -5\n movi r2, 42\n halt");
  EXPECT_EQ(Reg(r, 1), 0xfffffffbu);
  EXPECT_EQ(Reg(r, 2), 42u);
}

TEST(Machine, MovhiOriBuild32Bit) {
  auto r = RunAsm("movhi r1, 0xdead\n ori r1, 0xbeef\n halt");
  EXPECT_EQ(Reg(r, 1), 0xdeadbeefu);
}

TEST(Machine, LaPseudoLoadsFullWord) {
  auto r = RunAsm("la r1, 0x12345678\n halt");
  EXPECT_EQ(Reg(r, 1), 0x12345678u);
}

TEST(Machine, AluOps) {
  auto r = RunAsm(R"(
    movi r1, 21
    movi r2, 2
    mul r1, r2        ; r1 = 42
    movi r3, 100
    movi r4, 7
    divu r3, r4       ; r3 = 14
    movi r5, 100
    remu r5, r4       ; r5 = 2
    movi r6, 0xf0
    movi r7, 0x0f
    or r6, r7         ; r6 = 0xff
    movi r8, 0xff
    movi r9, 0x0f
    and r8, r9        ; r8 = 0x0f
    movi r10, 0xff
    xor r10, r9       ; r10 = 0xf0
    halt
  )");
  EXPECT_EQ(Reg(r, 1), 42u);
  EXPECT_EQ(Reg(r, 3), 14u);
  EXPECT_EQ(Reg(r, 5), 2u);
  EXPECT_EQ(Reg(r, 6), 0xffu);
  EXPECT_EQ(Reg(r, 8), 0x0fu);
  EXPECT_EQ(Reg(r, 10), 0xf0u);
}

TEST(Machine, DivRemByZeroDefined) {
  auto r = RunAsm(R"(
    movi r1, 7
    movi r2, 0
    divu r1, r2       ; -> 0xffffffff
    movi r3, 9
    remu r3, r2       ; -> 9 (dividend)
    halt
  )");
  EXPECT_EQ(Reg(r, 1), 0xffffffffu);
  EXPECT_EQ(Reg(r, 3), 9u);
}

TEST(Machine, ShiftsMaskAmount) {
  auto r = RunAsm(R"(
    movi r1, 1
    movi r2, 33       ; 33 & 31 == 1
    shl r1, r2        ; r1 = 2
    movi r3, -8
    movi r4, 2
    sra r3, r4        ; r3 = -2
    movi r5, -8
    shr r5, r4        ; logical
    halt
  )");
  EXPECT_EQ(Reg(r, 1), 2u);
  EXPECT_EQ(Reg(r, 3), 0xfffffffeu);
  EXPECT_EQ(Reg(r, 5), 0x3ffffffeu);
}

TEST(Machine, SltSignedVsUnsigned) {
  auto r = RunAsm(R"(
    movi r1, -1
    movi r2, 1
    mov r3, r1
    slt r3, r2        ; signed: -1 < 1 -> 1
    mov r4, r1
    sltu r4, r2       ; unsigned: 0xffffffff < 1 -> 0
    halt
  )");
  EXPECT_EQ(Reg(r, 3), 1u);
  EXPECT_EQ(Reg(r, 4), 0u);
}

TEST(Machine, LoadStoreWordAndByte) {
  auto r = RunAsm(R"(
    la r1, 0x1000
    movi r2, 0x1234
    sw r2, [r1+4]
    lw r3, [r1+4]
    movi r4, 0xab
    sb r4, [r1+9]
    lb r5, [r1+9]
    lw r6, [r1+8]     ; word containing the byte
    halt
  )");
  EXPECT_EQ(Reg(r, 3), 0x1234u);
  EXPECT_EQ(Reg(r, 5), 0xabu);
  EXPECT_EQ(Reg(r, 6), 0xab00u);
}

TEST(Machine, BranchesTakenAndNotTaken) {
  auto r = RunAsm(R"(
    movi r1, 5
    movi r2, 5
    movi r3, 0
    beq r1, r2, eq_taken
    movi r3, 99
eq_taken:
    movi r4, 3
    movi r5, 4
    blt r4, r5, lt_taken
    movi r3, 98
lt_taken:
    movi r6, -1
    movi r7, 1
    bltu r7, r6, ltu_taken    ; 1 < 0xffffffff unsigned
    movi r3, 97
ltu_taken:
    halt
  )");
  EXPECT_EQ(Reg(r, 3), 0u);
}

TEST(Machine, BackwardBranchLoop) {
  auto r = RunAsm(R"(
    movi r1, 0
    movi r2, 10
loop:
    addi r1, 1
    bne r1, r2, loop
    halt
  )");
  EXPECT_EQ(Reg(r, 1), 10u);
  EXPECT_EQ(r.cpu.icount, 2 + 10 * 2 + 1u);  // 2 setup + 10*(addi,bne) + halt
}

TEST(Machine, CallRetLinkage) {
  auto r = RunAsm(R"(
    movi r1, 0
    call func
    addi r1, 100
    halt
func:
    addi r1, 1
    ret
  )");
  EXPECT_EQ(Reg(r, 1), 101u);
}

TEST(Machine, JalrIndirectCall) {
  auto r = RunAsm(R"(
    la r2, func
    movi r1, 0
    jalr lr, r2
    addi r1, 10
    halt
func:
    addi r1, 1
    jr lr
  )");
  EXPECT_EQ(Reg(r, 1), 11u);
}

TEST(Machine, HaltStopsExecution) {
  auto r = RunAsm("movi r1, 1\n halt\n movi r1, 2\n halt");
  EXPECT_EQ(Reg(r, 1), 1u);
  EXPECT_TRUE(r.cpu.halted);
  EXPECT_FALSE(r.faulted);
}

TEST(Machine, IllegalOpcodeFaults) {
  NullBackend backend;
  Machine m(kMem, &backend);
  Bytes image;
  PutU32(image, 0xee000000u);  // No such opcode.
  m.LoadImage(image);
  EXPECT_EQ(m.Run(10), RunExit::kFault);
  EXPECT_TRUE(m.faulted());
}

TEST(Machine, OutOfBoundsLoadFaults) {
  auto r = RunAsm("la r1, 0xFFFFFF0\n lw r2, [r1]\n halt");
  EXPECT_TRUE(r.faulted);
  EXPECT_NE(r.fault_reason.find("LW"), std::string::npos);
}

TEST(Machine, MisalignedLoadFaults) {
  auto r = RunAsm("movi r1, 0x1002\n lw r2, [r1+1]\n halt");
  EXPECT_TRUE(r.faulted);
}

TEST(Machine, RunUntilIcountStopsExactly) {
  NullBackend backend;
  Machine m(kMem, &backend);
  m.LoadImage(Assemble("loop: jmp loop"));
  EXPECT_EQ(m.RunUntilIcount(1000), RunExit::kIcountReached);
  EXPECT_EQ(m.cpu().icount, 1000u);
  EXPECT_EQ(m.RunUntilIcount(1001), RunExit::kIcountReached);
  EXPECT_EQ(m.cpu().icount, 1001u);
}

TEST(Machine, DirtyPageTracking) {
  NullBackend backend;
  Machine m(kMem, &backend);
  m.LoadImage(Assemble(R"(
    la r1, 0x5000
    movi r2, 1
    sw r2, [r1]
    halt
  )"));
  m.ClearDirtyPages();  // Loading marked everything dirty.
  m.Run(10);
  auto dirty = m.CollectDirtyPages();
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], 0x5000u / kPageSize);
}

TEST(Machine, HostMemoryAccessMarksDirty) {
  NullBackend backend;
  Machine m(kMem, &backend);
  m.ClearDirtyPages();
  m.WriteMem32(0x2000, 7);
  m.WriteMem8(0x3000, 8);
  m.WriteMemRange(0x4ffc, Bytes{1, 2, 3, 4, 5, 6, 7, 8});  // Spans two pages.
  auto dirty = m.CollectDirtyPages();
  EXPECT_EQ(dirty.size(), 4u);
  EXPECT_EQ(m.ReadMem32(0x2000), 7u);
  EXPECT_EQ(m.ReadMem8(0x3000), 8u);
}

TEST(Machine, CpuStateSerializationRoundTrip) {
  CpuState s;
  s.regs[3] = 42;
  s.pc = 0x100;
  s.saved_pc = 0x8;
  s.irq_cause = 2;
  s.pending_irqs = 0x6;
  s.int_enabled = true;
  s.icount = 123456789;
  CpuState restored = CpuState::Deserialize(s.Serialize());
  EXPECT_TRUE(restored == s);
}

TEST(Machine, InterruptDelivery) {
  NullBackend backend;
  Machine m(kMem, &backend);
  // Vector layout: reset jmp -> main; irq vector at 0x4.
  m.LoadImage(Assemble(R"(
    jmp main
    jmp irqh
irqh:
    in r5, IRQ_CAUSE
    addi r6, 1
    iret
main:
    movi r0, 0
    movi r6, 0
    ei
loop:
    addi r7, 1
    jmp loop
  )"));
  m.Run(10);
  m.RaiseIrq(kIrqNetRx);
  m.Run(100);
  EXPECT_EQ(m.cpu().regs[6], 1u);  // Handler ran once.
  EXPECT_EQ(m.pending_irqs(), 0u);
}

TEST(Machine, InterruptDeferredWhileDisabled) {
  NullBackend backend;
  Machine m(kMem, &backend);
  m.LoadImage(Assemble(R"(
    jmp main
    jmp irqh
irqh:
    addi r6, 1
    iret
main:
    movi r6, 0
    di
    addi r7, 1
    addi r7, 1
    ei
loop:
    addi r7, 1
    jmp loop
  )"));
  m.Run(3);  // Still before EI.
  m.RaiseIrq(kIrqInput);
  EXPECT_EQ(m.pending_irqs(), 1u << kIrqInput);
  m.Run(2);  // Executes the remaining pre-EI instructions.
  m.Run(50);
  EXPECT_EQ(m.cpu().regs[6], 1u);  // Taken only after EI.
}

TEST(Machine, NestedIrqMaskedUntilIret) {
  NullBackend backend;
  Machine m(kMem, &backend);
  m.LoadImage(Assemble(R"(
    jmp main
    jmp irqh
irqh:
    addi r6, 1
    iret
main:
    movi r6, 0
    ei
loop:
    addi r7, 1
    jmp loop
  )"));
  m.Run(10);
  m.RaiseIrq(kIrqNetRx);
  m.Run(1);  // Takes the IRQ; handler starts, interrupts now disabled.
  m.RaiseIrq(kIrqInput);
  EXPECT_NE(m.pending_irqs(), 0u);  // Second IRQ stays pending.
  m.Run(100);                       // Handler finishes; pending IRQ taken.
  EXPECT_EQ(m.cpu().regs[6], 2u);
  EXPECT_EQ(m.pending_irqs(), 0u);
}

TEST(Machine, PortInOutReachBackend) {
  class Recorder : public DeviceBackend {
   public:
    uint32_t PortIn(Machine&, uint16_t port) override {
      ins.push_back(port);
      return 77;
    }
    void PortOut(Machine&, uint16_t port, uint32_t value) override {
      outs.emplace_back(port, value);
    }
    std::vector<uint16_t> ins;
    std::vector<std::pair<uint16_t, uint32_t>> outs;
  };
  Recorder backend;
  Machine m(kMem, &backend);
  m.LoadImage(Assemble(R"(
    in r1, CLOCK_LO
    out r1, DEBUG
    halt
  )"));
  m.Run(10);
  ASSERT_EQ(backend.ins.size(), 1u);
  EXPECT_EQ(backend.ins[0], kPortClockLo);
  ASSERT_EQ(backend.outs.size(), 1u);
  EXPECT_EQ(backend.outs[0], std::make_pair(kPortDebug, 77u));
}

TEST(Machine, BadMemSizeRejected) {
  NullBackend backend;
  EXPECT_THROW(Machine(1000, &backend), std::invalid_argument);       // Not page aligned.
  EXPECT_THROW(Machine(2 * kPageSize, &backend), std::invalid_argument);  // Too small for NIC.
}

TEST(Machine, EncodeDecodeRoundTrip) {
  for (Op op : {Op::kAdd, Op::kLw, Op::kBeq, Op::kIn, Op::kJal}) {
    uint32_t w = Encode(op, 3, 12, 0xbeef);
    Insn in = Decode(w);
    EXPECT_EQ(in.op, op);
    EXPECT_EQ(in.ra, 3);
    EXPECT_EQ(in.rb, 12);
    EXPECT_EQ(in.imm, 0xbeef);
  }
}

TEST(Machine, SImmSignExtension) {
  Insn in = Decode(Encode(Op::kAddi, 1, 0, 0xffff));
  EXPECT_EQ(in.SImm(), -1);
}

// Regression: the bounds checks used `addr + 4 > mem_.size()`, which
// wraps for addr >= 0xFFFFFFFC and waved the access through into an
// out-of-bounds memcpy.
TEST(Machine, HostMem32BoundsCheckDoesNotWrap) {
  NullBackend backend;
  Machine m(kMem, &backend);
  EXPECT_THROW(m.ReadMem32(0xFFFFFFFCu), std::out_of_range);
  EXPECT_THROW(m.WriteMem32(0xFFFFFFFCu, 1), std::out_of_range);
  EXPECT_THROW(m.ReadMem32(0xFFFFFFF8u), std::out_of_range);
}

TEST(Machine, GuestMem32AtTopOfAddressSpaceFaults) {
  for (const char* op : {"lw r2, [r1]", "sw r2, [r1]"}) {
    for (bool cache : {false, true}) {
      NullBackend backend;
      Machine m(kMem, &backend);
      m.set_decoded_cache_enabled(cache);
      m.LoadImage(Assemble(std::string("la r1, 0xFFFFFFFC\n ") + op + "\n halt"));
      EXPECT_EQ(m.Run(10), RunExit::kFault) << op << " cache=" << cache;
      EXPECT_TRUE(m.faulted());
    }
  }
}

// --- Decoded-cache / threaded-dispatch equivalence ---------------------
//
// The fast path (decoded cache + threaded dispatch) must retire
// bit-for-bit the architectural state of the original per-word-decode
// Step() loop, which stays reachable via set_decoded_cache_enabled(false).

// Runs the same image on both paths in lockstep quanta and compares the
// full architectural state, fault status and memory.
void ExpectBothPathsAgree(const Bytes& image, const std::vector<uint64_t>& quanta,
                          const std::vector<std::pair<int, uint32_t>>& irqs_at_quantum = {}) {
  NullBackend b0, b1;
  Machine fast(kMem, &b0), slow(kMem, &b1);
  fast.LoadImage(image);
  slow.LoadImage(image);
  slow.set_decoded_cache_enabled(false);
  for (size_t q = 0; q < quanta.size(); q++) {
    for (const auto& [at, cause] : irqs_at_quantum) {
      if (static_cast<size_t>(at) == q) {
        fast.RaiseIrq(cause);
        slow.RaiseIrq(cause);
      }
    }
    RunExit ef = fast.Run(quanta[q]);
    RunExit es = slow.Run(quanta[q]);
    ASSERT_EQ(ef, es) << "exit differs at quantum " << q;
    ASSERT_TRUE(fast.cpu() == slow.cpu()) << "cpu state differs at quantum " << q;
    ASSERT_EQ(fast.faulted(), slow.faulted());
    ASSERT_EQ(fast.fault_reason(), slow.fault_reason());
    ASSERT_EQ(fast.ReadMemRange(0, kMem), slow.ReadMemRange(0, kMem))
        << "memory differs at quantum " << q;
  }
}

TEST(MachineEquivalence, SelfModifyingCodeInvalidatesDecodedCache) {
  // The guest overwrites the instruction at `patch:` (addi r1, 1 ->
  // addi r1, 5) after 3 loop iterations, then keeps running it; a stale
  // decoded cache would keep executing the old increment.
  Bytes image = Assemble(R"(
    movi r1, 0
    movi r2, 0
    la r3, patch
    la r4, 10
loop:
patch:
    addi r1, 1
    addi r2, 1
    movi r5, 3
    bne r2, r5, cont
    la r6, 0x2b100005   ; addi r1, 5 (opcode 0x2b, ra=1, imm=5)
    sw r6, [r3]
cont:
    bne r2, r4, loop
    halt
  )");
  ExpectBothPathsAgree(image, {5, 7, 200});
  // And the final value proves the rewrite took effect: 3 iterations of
  // +1, then 7 of +5.
  NullBackend b;
  Machine m(kMem, &b);
  m.LoadImage(image);
  m.Run(1000);
  EXPECT_EQ(m.cpu().regs[1], 3u + 7u * 5u);
}

TEST(MachineEquivalence, IrqHeavyExecutionAgrees) {
  Bytes image = Assemble(R"(
    jmp main
    jmp irqh
irqh:
    in r5, IRQ_CAUSE
    add r6, r5
    iret
main:
    movi r6, 0
    ei
loop:
    addi r7, 1
    jmp loop
  )");
  std::vector<uint64_t> quanta(40, 13);  // Odd quantum: IRQs land mid-loop.
  std::vector<std::pair<int, uint32_t>> irqs;
  for (int q = 0; q < 40; q += 3) {
    irqs.emplace_back(q, q % 2 == 0 ? kIrqNetRx : kIrqInput);
  }
  ExpectBothPathsAgree(image, quanta, irqs);
}

TEST(MachineEquivalence, RandomProgramSweepAgrees) {
  // Random instruction soup: mostly valid opcodes (including stores that
  // hit the program's own pages), some garbage. Every program must
  // retire identically on both paths, faults and all.
  constexpr uint8_t kOps[] = {0x00, 0x01, 0x10, 0x11, 0x12, 0x13, 0x20, 0x21, 0x22, 0x23,
                              0x24, 0x25, 0x26, 0x27, 0x28, 0x29, 0x2a, 0x2b, 0x2c, 0x2d,
                              0x30, 0x31, 0x32, 0x33, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45,
                              0x46, 0x47, 0x48, 0x49, 0x60, 0x61, 0x62, 0xee};
  Prng rng(20260726);
  for (int prog = 0; prog < 40; prog++) {
    Bytes image;
    for (int i = 0; i < 1024; i++) {
      uint8_t op = kOps[rng.Next() % (sizeof(kOps) - (prog % 2 ? 0 : 1))];
      uint16_t imm = static_cast<uint16_t>(rng.Next());
      if (op == 0x31 || op == 0x33) {
        imm &= 0x0fff;  // Keep most stores in-range so they actually land.
      }
      PutU32(image, Encode(static_cast<Op>(op), static_cast<uint8_t>(rng.Next() % 16),
                           static_cast<uint8_t>(rng.Next() % 16), imm));
    }
    ExpectBothPathsAgree(image, {257, 1000, 1});
  }
}

// --- JIT tier equivalence ----------------------------------------------
//
// Note ExpectBothPathsAgree above already drives the JIT: its `fast`
// machine is a default-constructed Machine, and the JIT tier is on by
// default where compiled in. The tests below pin the JIT against the
// decoded-cache tier specifically (so a shared bug in Step() cannot
// mask a translator bug) and probe the translator's own edges: icount
// landmarks inside a translated block, page invalidation, and the W^X
// cache mode.

// Lockstep compare: JIT tier vs decoded-cache interpreter tier.
void ExpectJitMatchesInterpreter(const Bytes& image, const std::vector<uint64_t>& quanta,
                                 const std::vector<std::pair<int, uint32_t>>& irqs_at_quantum = {},
                                 bool harden_wx = false) {
  NullBackend b0, b1;
  Machine jit(kMem, &b0), interp(kMem, &b1);
  jit.set_jit_harden_wx(harden_wx);
  interp.set_jit_enabled(false);
  jit.LoadImage(image);
  interp.LoadImage(image);
  for (size_t q = 0; q < quanta.size(); q++) {
    for (const auto& [at, cause] : irqs_at_quantum) {
      if (static_cast<size_t>(at) == q) {
        jit.RaiseIrq(cause);
        interp.RaiseIrq(cause);
      }
    }
    RunExit ej = jit.Run(quanta[q]);
    RunExit ei = interp.Run(quanta[q]);
    ASSERT_EQ(ej, ei) << "exit differs at quantum " << q;
    ASSERT_TRUE(jit.cpu() == interp.cpu()) << "cpu state differs at quantum " << q;
    ASSERT_EQ(jit.faulted(), interp.faulted());
    ASSERT_EQ(jit.fault_reason(), interp.fault_reason());
    ASSERT_EQ(jit.ReadMemRange(0, kMem), interp.ReadMemRange(0, kMem))
        << "memory differs at quantum " << q;
  }
}

constexpr char kJitHotLoop[] = R"(
    movi r1, 0
    movi r2, 2000
loop:
    addi r1, 1
    add r3, r1
    xor r4, r3
    slt r5, r4
    bne r1, r2, loop
    halt
)";

TEST(MachineJit, HotLoopMatchesInterpreterAtOddQuanta) {
  if (!Machine::JitCompiledIn()) GTEST_SKIP() << "JIT not compiled in";
  // Quanta chosen so landmarks land at every offset inside the 5-insn
  // translated block, including repeated single-step stops.
  std::vector<uint64_t> quanta = {1, 3, 257, 64, 1000, 1, 1, 1, 2, 5000, 7, 4000};
  ExpectJitMatchesInterpreter(Assemble(kJitHotLoop), quanta);
}

TEST(MachineJit, MidBlockIcountStopIsExact) {
  if (!Machine::JitCompiledIn()) GTEST_SKIP() << "JIT not compiled in";
  // A long straight-line block: RunUntilIcount must stop exactly at
  // every interior landmark, never retiring past it.
  std::string body = "movi r1, 0\nloop:\n";
  for (int i = 0; i < 30; i++) {
    body += "addi r1, 1\n";
  }
  body += "jmp loop\n";
  NullBackend b;
  Machine m(kMem, &b);
  m.LoadImage(Assemble(body));
  for (uint64_t step = 1; m.cpu().icount < 400; step = step % 7 + 1) {
    uint64_t target = m.cpu().icount + step;
    ASSERT_EQ(m.RunUntilIcount(target), RunExit::kIcountReached);
    ASSERT_EQ(m.cpu().icount, target);
  }
  ExpectJitMatchesInterpreter(Assemble(body), std::vector<uint64_t>(100, 1));
}

TEST(MachineJit, IrqAtLandmarksAgrees) {
  if (!Machine::JitCompiledIn()) GTEST_SKIP() << "JIT not compiled in";
  Bytes image = Assemble(R"(
    jmp main
    jmp irqh
irqh:
    in r5, IRQ_CAUSE
    add r6, r5
    iret
main:
    movi r6, 0
    ei
loop:
    addi r7, 1
    jmp loop
  )");
  std::vector<uint64_t> quanta(40, 13);
  std::vector<std::pair<int, uint32_t>> irqs;
  for (int q = 0; q < 40; q += 3) {
    irqs.emplace_back(q, q % 2 == 0 ? kIrqNetRx : kIrqInput);
  }
  ExpectJitMatchesInterpreter(image, quanta, irqs);
}

TEST(MachineJit, SelfModifyingCodeInvalidatesTranslations) {
  if (!Machine::JitCompiledIn()) GTEST_SKIP() << "JIT not compiled in";
  // The guest rewrites its own hot loop after it has been translated;
  // the write must drop the stale native code via the per-page seam.
  Bytes image = Assemble(R"(
    movi r1, 0
    movi r2, 0
    la r3, patch
    la r4, 200
loop:
patch:
    addi r1, 1
    addi r2, 1
    movi r5, 100
    bne r2, r5, cont
    la r6, 0x2b100005   ; addi r1, 5
    sw r6, [r3]
cont:
    bne r2, r4, loop
    halt
  )");
  ExpectJitMatchesInterpreter(image, {50, 301, 99, 2000});

  NullBackend b;
  Machine m(kMem, &b);
  m.LoadImage(image);
  m.Run(10000);
  EXPECT_EQ(m.cpu().regs[1], 100u + 100u * 5u);
  const jit::JitStats* stats = m.jit_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->translations, 0u);
  EXPECT_GT(stats->pages_invalidated, 0u);
  EXPECT_GT(stats->blocks_invalidated, 0u);
}

TEST(MachineJit, PageStraddlingTerminatorInvalidates) {
  if (!Machine::JitCompiledIn()) GTEST_SKIP() << "JIT not compiled in";
  // The hot loop's body ends just before a page boundary, so the
  // terminating bne is the *first word of the next page* while the
  // block head sits on the previous one. The branch condition/target
  // are baked into the translation, so the block's span must cover the
  // terminator's page: the guest overwrites the bne (loop-to-100 via
  // r4 becomes loop-to-10 via r5) and the stale block must be dropped.
  const uint32_t patched = Encode(Op::kBne, 2, 5, 0xfffd);  // bne r2, r5, loop
  const std::string src =
      "    movi r1, 0\n"
      "    movi r2, 0\n"
      "    movi r5, 10\n"
      "    movi r8, 0\n"
      "    la r3, patch\n"
      "    la r4, 100\n"
      "    la r7, " + std::to_string(patched) + "\n"
      "    jmp loop\n"
      "    .org 0x0ff8\n"
      "loop:\n"
      "    addi r1, 1\n"
      "    addi r2, 1\n"
      "patch:\n"                    // patch == 0x1000, page-aligned.
      "    bne r2, r4, loop\n"
      "    bne r8, r9, done\n"
      "    movi r8, 1\n"
      "    sw r7, [r3]\n"
      "    movi r2, 0\n"
      "    jmp loop\n"
      "done:\n"
      "    halt\n";
  Bytes image = Assemble(src);
  ExpectJitMatchesInterpreter(image, {50, 120, 57, 1000, 1000});

  NullBackend b;
  Machine m(kMem, &b);
  m.LoadImage(image);
  m.Run(10000);
  EXPECT_EQ(m.cpu().regs[1], 110u);  // 100 iterations, then 10 patched ones.
  const jit::JitStats* stats = m.jit_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->translations, 0u);
  EXPECT_GT(stats->blocks_invalidated, 0u);
}

TEST(MachineJit, PageAlignedSingleJumpBlockInvalidates) {
  if (!Machine::JitCompiledIn()) GTEST_SKIP() << "JIT not compiled in";
  // A block that is nothing but one jmp at a page-aligned pc: its span
  // is exactly the terminator, so a zero span would register it on no
  // page at all. The guest retargets the trampoline after it is hot;
  // the stale translation would bounce to the old loop forever.
  const uint32_t retarget =
      Encode(Op::kJmp, 0, 0, (0x2200 - 0x2004) / 4);  // jmp done, from tramp
  const std::string src =
      "    movi r1, 0\n"
      "    movi r2, 0\n"
      "    la r3, tramp\n"
      "    la r4, 100\n"
      "    la r7, " + std::to_string(retarget) + "\n"
      "    jmp loop\n"
      "    .org 0x2000\n"
      "tramp:\n"
      "    jmp loop\n"
      "    .org 0x2100\n"
      "loop:\n"
      "    addi r1, 1\n"
      "    addi r2, 1\n"
      "    bne r2, r4, tramp\n"
      "    sw r7, [r3]\n"
      "    movi r2, 0\n"
      "    jmp tramp\n"
      "    .org 0x2200\n"
      "done:\n"
      "    halt\n";
  Bytes image = Assemble(src);
  ExpectJitMatchesInterpreter(image, {150, 77, 1000, 1000});

  NullBackend b;
  Machine m(kMem, &b);
  m.LoadImage(image);
  m.Run(10000);
  EXPECT_EQ(m.cpu().regs[1], 100u);
  EXPECT_FALSE(m.faulted());
  const jit::JitStats* stats = m.jit_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->blocks_invalidated, 0u);
}

TEST(MachineJit, RandomProgramSweepJitVsDecodedCache) {
  if (!Machine::JitCompiledIn()) GTEST_SKIP() << "JIT not compiled in";
  constexpr uint8_t kOps[] = {0x00, 0x01, 0x10, 0x11, 0x12, 0x13, 0x20, 0x21, 0x22, 0x23,
                              0x24, 0x25, 0x26, 0x27, 0x28, 0x29, 0x2a, 0x2b, 0x2c, 0x2d,
                              0x30, 0x31, 0x32, 0x33, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45,
                              0x46, 0x47, 0x48, 0x49, 0x60, 0x61, 0x62, 0xee};
  Prng rng(20260807);
  for (int prog = 0; prog < 16; prog++) {
    Bytes image;
    for (int i = 0; i < 1024; i++) {
      uint8_t op = kOps[rng.Next() % (sizeof(kOps) - (prog % 2 ? 0 : 1))];
      uint16_t imm = static_cast<uint16_t>(rng.Next());
      if (op == 0x31 || op == 0x33) {
        imm &= 0x0fff;
      }
      PutU32(image, Encode(static_cast<Op>(op), static_cast<uint8_t>(rng.Next() % 16),
                           static_cast<uint8_t>(rng.Next() % 16), imm));
    }
    ExpectJitMatchesInterpreter(image, {257, 1000, 1, 3});
  }
}

TEST(MachineJit, HardenedWxModeAgrees) {
  if (!Machine::JitCompiledIn()) GTEST_SKIP() << "JIT not compiled in";
  ExpectJitMatchesInterpreter(Assemble(kJitHotLoop), {257, 5000, 1, 4000},
                              /*irqs_at_quantum=*/{}, /*harden_wx=*/true);
}

TEST(MachineJit, DisableMidRunFlushesAndStaysEquivalent) {
  if (!Machine::JitCompiledIn()) GTEST_SKIP() << "JIT not compiled in";
  NullBackend b0, b1;
  Machine toggled(kMem, &b0), interp(kMem, &b1);
  interp.set_jit_enabled(false);
  Bytes image = Assemble(kJitHotLoop);
  toggled.LoadImage(image);
  interp.LoadImage(image);
  for (int q = 0; q < 12; q++) {
    toggled.set_jit_enabled(q % 3 != 2);  // On, on, off, on, on, off...
    toggled.Run(701);
    interp.Run(701);
    ASSERT_TRUE(toggled.cpu() == interp.cpu()) << "quantum " << q;
    ASSERT_EQ(toggled.ReadMemRange(0, kMem), interp.ReadMemRange(0, kMem));
  }
  EXPECT_FALSE(toggled.faulted());
}

}  // namespace
}  // namespace avm
