#include <gtest/gtest.h>

#include <vector>
#include "src/compress/lzss.h"
#include "src/util/prng.h"

namespace avm {
namespace {

TEST(Lzss, EmptyInput) {
  Bytes c = LzssCompress(Bytes());
  EXPECT_EQ(LzssDecompress(c), Bytes());
}

TEST(Lzss, ShortLiteralOnly) {
  Bytes data = ToBytes("abc");
  EXPECT_EQ(LzssDecompress(LzssCompress(data)), data);
}

TEST(Lzss, HighlyRepetitiveCompressesWell) {
  Bytes data(10000, 'a');
  Bytes c = LzssCompress(data);
  EXPECT_EQ(LzssDecompress(c), data);
  EXPECT_LT(c.size(), data.size() / 10);
}

TEST(Lzss, RepeatedStructure) {
  Bytes data;
  for (int i = 0; i < 500; i++) {
    Append(data, ToBytes("TIMETRACKER entry #x with fixed structure; "));
  }
  Bytes c = LzssCompress(data);
  EXPECT_EQ(LzssDecompress(c), data);
  EXPECT_LT(c.size(), data.size() / 4);
}

TEST(Lzss, IncompressibleRandomSurvives) {
  Prng rng(1);
  Bytes data = rng.RandomBytes(50000);
  Bytes c = LzssCompress(data);
  EXPECT_EQ(LzssDecompress(c), data);
  // Overhead is bounded: one flag bit per literal plus header.
  EXPECT_LT(c.size(), data.size() * 9 / 8 + 64);
}

TEST(Lzss, RoundTripPropertySweep) {
  Prng rng(2);
  for (int trial = 0; trial < 60; trial++) {
    // Mix of random and repeated chunks to hit matches of many lengths.
    Bytes data;
    int chunks = static_cast<int>(rng.Below(12)) + 1;
    for (int i = 0; i < chunks; i++) {
      if (rng.Chance(0.5) && !data.empty()) {
        size_t start = rng.Below(data.size());
        size_t len = std::min<size_t>(rng.Below(500), data.size() - start);
        Bytes repeat(data.begin() + static_cast<ptrdiff_t>(start),
                     data.begin() + static_cast<ptrdiff_t>(start + len));
        Append(data, repeat);
      } else {
        Append(data, rng.RandomBytes(rng.Below(300)));
      }
    }
    EXPECT_EQ(LzssDecompress(LzssCompress(data)), data) << "trial " << trial;
  }
}

TEST(Lzss, OverlappingMatchRle) {
  // "abab..." forces overlapping copies (offset < length).
  Bytes data;
  for (int i = 0; i < 1000; i++) {
    data.push_back(i % 2 == 0 ? 'a' : 'b');
  }
  EXPECT_EQ(LzssDecompress(LzssCompress(data)), data);
}

TEST(Lzss, CorruptInputThrows) {
  Bytes data = ToBytes("hello world hello world hello world");
  Bytes c = LzssCompress(data);
  EXPECT_THROW(LzssDecompress(Bytes{1, 2, 3}), std::invalid_argument);
  Bytes truncated(c.begin(), c.begin() + static_cast<ptrdiff_t>(c.size() / 2));
  EXPECT_THROW(LzssDecompress(truncated), std::invalid_argument);
}

TEST(Varint, RoundTrip) {
  Bytes buf;
  std::vector<uint64_t> values = {0, 1, 127, 128, 300, 1u << 20, UINT64_MAX};
  for (uint64_t v : values) {
    PutVarint(buf, v);
  }
  size_t pos = 0;
  for (uint64_t v : values) {
    EXPECT_EQ(GetVarint(buf, &pos), v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(Varint, TruncatedThrows) {
  Bytes buf;
  PutVarint(buf, 1u << 30);
  buf.pop_back();
  size_t pos = 0;
  EXPECT_THROW(GetVarint(buf, &pos), std::invalid_argument);
}

TEST(ZigZag, RoundTrip) {
  for (int64_t v : std::vector<int64_t>{0, 1, -1, 2, -2, 1000000, -1000000, INT64_MAX, INT64_MIN}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
  // Small magnitudes map to small codes.
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
}

TEST(DeltaVarint, RoundTrip) {
  std::vector<uint64_t> values = {100, 150, 200, 190, 1000000, 1000001};
  EXPECT_EQ(DecodeDeltaVarint(EncodeDeltaVarint(values)), values);
  EXPECT_TRUE(DecodeDeltaVarint(EncodeDeltaVarint({})).empty());
}

TEST(DeltaVarint, NearArithmeticSequencesCompressWell) {
  // Timestamps at ~fixed cadence: the VMM-specific preprocessing target.
  std::vector<uint64_t> ts;
  Prng rng(3);
  uint64_t t = 1000000;
  for (int i = 0; i < 10000; i++) {
    t += 950 + rng.Below(100);
    ts.push_back(t);
  }
  Bytes enc = EncodeDeltaVarint(ts);
  EXPECT_LT(enc.size(), ts.size() * 3);  // ~2 bytes per 8-byte value.
  EXPECT_EQ(DecodeDeltaVarint(enc), ts);
}

TEST(DeltaVarint, RandomSequenceRoundTrips) {
  Prng rng(4);
  std::vector<uint64_t> values;
  for (int i = 0; i < 500; i++) {
    values.push_back(rng.Next());
  }
  EXPECT_EQ(DecodeDeltaVarint(EncodeDeltaVarint(values)), values);
}

}  // namespace
}  // namespace avm
