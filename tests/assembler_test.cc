#include <gtest/gtest.h>

#include "src/vm/assembler.h"
#include "src/vm/isa.h"

namespace avm {
namespace {

Insn First(const Bytes& image, size_t word = 0) {
  return Decode(GetU32(image, word * 4));
}

TEST(Assembler, BasicInstruction) {
  Bytes img = Assemble("movi r1, 42");
  ASSERT_EQ(img.size(), 4u);
  Insn in = First(img);
  EXPECT_EQ(in.op, Op::kMovi);
  EXPECT_EQ(in.ra, 1);
  EXPECT_EQ(in.imm, 42);
}

TEST(Assembler, NegativeAndHexAndCharImmediates) {
  Bytes img = Assemble("movi r1, -1\nmovi r2, 0xff\nmovi r3, 'A'");
  EXPECT_EQ(First(img, 0).imm, 0xffff);
  EXPECT_EQ(First(img, 1).imm, 0xff);
  EXPECT_EQ(First(img, 2).imm, 'A');
}

TEST(Assembler, RegisterAliases) {
  Bytes img = Assemble("mov sp, lr");
  Insn in = First(img);
  EXPECT_EQ(in.ra, kRegSp);
  EXPECT_EQ(in.rb, kRegLr);
}

TEST(Assembler, MemoryOperandSyntax) {
  Bytes img = Assemble("lw r1, [r2+8]\nsw r3, [r4]\nlb r5, [r6+-4]");
  EXPECT_EQ(First(img, 0).op, Op::kLw);
  EXPECT_EQ(First(img, 0).SImm(), 8);
  EXPECT_EQ(First(img, 1).SImm(), 0);
  EXPECT_EQ(First(img, 2).SImm(), -4);
}

TEST(Assembler, ForwardAndBackwardBranches) {
  Bytes img = Assemble(R"(
start:
    beq r1, r2, fwd
    jmp start
fwd:
    halt
  )");
  // beq at word 0 targets word 2: offset = 2 - 1 = 1.
  EXPECT_EQ(First(img, 0).SImm(), 1);
  // jmp at word 1 targets word 0: offset = 0 - 2 = -2.
  EXPECT_EQ(First(img, 1).SImm(), -2);
}

TEST(Assembler, CallRetPseudo) {
  Bytes img = Assemble("call f\nhalt\nf: ret");
  EXPECT_EQ(First(img, 0).op, Op::kJal);
  EXPECT_EQ(First(img, 0).ra, kRegLr);
  EXPECT_EQ(First(img, 2).op, Op::kJr);
  EXPECT_EQ(First(img, 2).ra, kRegLr);
}

TEST(Assembler, LaExpandsToTwoWords) {
  Bytes img = Assemble("la r1, 0xdeadbeef\nhalt");
  ASSERT_EQ(img.size(), 12u);
  EXPECT_EQ(First(img, 0).op, Op::kMovhi);
  EXPECT_EQ(First(img, 0).imm, 0xdead);
  EXPECT_EQ(First(img, 1).op, Op::kOri);
  EXPECT_EQ(First(img, 1).imm, 0xbeef);
}

TEST(Assembler, LaCountsInLabelArithmetic) {
  Bytes img = Assemble(R"(
    la r1, target
    jmp target
target:
    halt
  )");
  // la = 2 words, jmp at word 2 targets word 3: offset 0.
  EXPECT_EQ(First(img, 2).SImm(), 0);
  // la loads byte address 12.
  EXPECT_EQ(First(img, 1).imm, 12);
}

TEST(Assembler, PortNamesResolve) {
  Bytes img = Assemble("in r1, CLOCK_LO\nout r2, NET_TXLEN");
  EXPECT_EQ(First(img, 0).imm, kPortClockLo);
  EXPECT_EQ(First(img, 1).imm, kPortNetTxLen);
}

TEST(Assembler, BuiltinMemoryConstants) {
  Bytes img = Assemble("la r1, TX_BUF\nla r2, RX_BUF");
  EXPECT_EQ((static_cast<uint32_t>(First(img, 0).imm) << 16) | First(img, 1).imm, kNetTxBuf);
}

TEST(Assembler, DataDirectives) {
  Bytes img = Assemble(R"(
    .word 1, 2, 0xffffffff
    .byte 7, 8
    .ascii "hi\n"
    .space 3
  )");
  ASSERT_EQ(img.size(), 12u + 2 + 3 + 3);
  EXPECT_EQ(GetU32(img, 0), 1u);
  EXPECT_EQ(GetU32(img, 8), 0xffffffffu);
  EXPECT_EQ(img[12], 7);
  EXPECT_EQ(img[14], 'h');
  EXPECT_EQ(img[16], '\n');
  EXPECT_EQ(img[17], 0);
}

TEST(Assembler, OrgMovesForward) {
  Bytes img = Assemble(".org 0x10\n.word 5");
  ASSERT_EQ(img.size(), 0x14u);
  EXPECT_EQ(GetU32(img, 0x10), 5u);
}

TEST(Assembler, OrgBackwardThrows) {
  EXPECT_THROW(Assemble(".word 1, 2\n.org 0"), AsmError);
}

TEST(Assembler, EquConstants) {
  Bytes img = Assemble(".equ LIMIT, 99\nmovi r1, LIMIT");
  EXPECT_EQ(First(img).imm, 99);
}

TEST(Assembler, WordWithLabel) {
  Bytes img = Assemble(R"(
    jmp start
    .word start
start:
    halt
  )");
  EXPECT_EQ(GetU32(img, 4), 8u);
}

TEST(Assembler, CommentsAndBlankLines) {
  Bytes img = Assemble("; full line comment\n# hash comment\n\nmovi r1, 1 ; trailing\n");
  EXPECT_EQ(img.size(), 4u);
}

TEST(Assembler, LabelOnOwnLine) {
  Bytes img = Assemble("top:\n    jmp top");
  EXPECT_EQ(First(img).SImm(), -1);
}

TEST(Assembler, Errors) {
  EXPECT_THROW(Assemble("movi r1"), AsmError);                  // Missing operand.
  EXPECT_THROW(Assemble("movi r99, 1"), AsmError);              // Bad register.
  EXPECT_THROW(Assemble("frobnicate r1, r2"), AsmError);        // Unknown mnemonic.
  EXPECT_THROW(Assemble("movi r1, 70000"), AsmError);           // Immediate too large.
  EXPECT_THROW(Assemble("jmp nowhere"), AsmError);              // Undefined label.
  EXPECT_THROW(Assemble("a: nop\na: nop"), AsmError);           // Duplicate label.
  EXPECT_THROW(Assemble(".ascii \"unterminated"), AsmError);    // Bad string.
}

TEST(Assembler, ErrorCarriesLineNumber) {
  try {
    Assemble("nop\nnop\nbogus r1");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

}  // namespace
}  // namespace avm
