// The telemetry layer: registry counters/gauges/histograms under
// concurrency (TSan covers the sharded fast paths), golden exporter
// output, trace spans + Chrome-trace JSON, atomic file writes, the
// gauge sampler, and the acceptance bar — a recorded scenario plus its
// full audit produce bit-identical logs and verdicts with telemetry
// off vs. on.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "src/audit/auditor.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/sampler.h"
#include "src/obs/trace.h"
#include "src/sim/scenario.h"
#include "src/vm/assembler.h"

namespace fs = std::filesystem;

namespace avm {
namespace {

// Restores the global telemetry gate and trace buffer around each test
// that flips them, so test order never matters.
class ObsGateGuard {
 public:
  ObsGateGuard() : was_(obs::Enabled()) {}
  ~ObsGateGuard() {
    obs::SetEnabled(was_);
    obs::ResetTrace();
  }

 private:
  bool was_;
};

TEST(ObsMetrics, CounterConcurrentIncrementsAreExact) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; i++) {
        c.Inc();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(ObsMetrics, HistogramConcurrentRecordsAreExact) {
  obs::Histogram h;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; i++) {
        h.Record(i + static_cast<uint64_t>(t));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(h.Count(), kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < obs::Histogram::kBuckets; i++) {
    bucket_total += h.BucketCount(i);
  }
  EXPECT_EQ(bucket_total, h.Count());
  // Sum of 4 interleaved arithmetic series, exact by construction.
  uint64_t expect_sum = 0;
  for (int t = 0; t < kThreads; t++) {
    for (uint64_t i = 0; i < kPerThread; i++) {
      expect_sum += i + static_cast<uint64_t>(t);
    }
  }
  EXPECT_EQ(h.Sum(), expect_sum);
}

TEST(ObsMetrics, HistogramBucketEdges) {
  EXPECT_EQ(obs::Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(obs::Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(obs::Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(obs::Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(obs::Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(obs::Histogram::BucketIndex(255), 8u);
  EXPECT_EQ(obs::Histogram::BucketIndex(UINT64_MAX), obs::Histogram::kBuckets - 1);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(obs::Histogram::kBuckets - 1), UINT64_MAX);
  // Every value lands in the bucket whose inclusive upper bound covers it.
  for (uint64_t v : {0ull, 1ull, 2ull, 7ull, 8ull, 1023ull, 1024ull}) {
    const size_t i = obs::Histogram::BucketIndex(v);
    EXPECT_LE(v, obs::Histogram::BucketUpperBound(i));
    if (i > 0) {
      EXPECT_GT(v, obs::Histogram::BucketUpperBound(i - 1));
    }
  }
}

TEST(ObsRegistry, DedupesByNameAndNormalizedLabels) {
  obs::Registry reg;
  obs::Counter* a = reg.GetCounter("c", {{"x", "1"}, {"y", "2"}});
  obs::Counter* b = reg.GetCounter("c", {{"y", "2"}, {"x", "1"}});  // Same set, other order.
  EXPECT_EQ(a, b);
  EXPECT_NE(a, reg.GetCounter("c", {{"x", "1"}}));
  EXPECT_NE(a, reg.GetCounter("c2", {{"x", "1"}, {"y", "2"}}));
  a->Inc(5);
  EXPECT_EQ(b->Value(), 5u);
}

TEST(ObsRegistry, KindMismatchThrows) {
  obs::Registry reg;
  reg.GetCounter("m");
  EXPECT_THROW(reg.GetGauge("m"), std::logic_error);
  EXPECT_THROW(reg.GetHistogram("m"), std::logic_error);
  reg.GetHistogram("h");
  EXPECT_THROW(reg.GetCounter("h"), std::logic_error);
}

TEST(ObsRegistry, CallbackGaugesSumAndUnregister) {
  obs::Registry reg;
  int64_t v1 = 10, v2 = 32;
  auto find_gauge = [&reg](const std::string& name) -> const obs::MetricRow* {
    static obs::MetricsSnapshot snap;
    snap = reg.Snapshot();
    for (const obs::MetricRow& row : snap.rows) {
      if (row.name == name) {
        return &row;
      }
    }
    return nullptr;
  };
  {
    obs::Registry::CallbackHandle h1 =
        reg.RegisterCallbackGauge("depth", {}, [&v1] { return v1; });
    {
      // Duplicate key: summed into one row at snapshot time.
      obs::Registry::CallbackHandle h2 =
          reg.RegisterCallbackGauge("depth", {}, [&v2] { return v2; });
      const obs::MetricRow* row = find_gauge("depth");
      ASSERT_NE(row, nullptr);
      EXPECT_EQ(row->gauge_value, 42);
    }
    const obs::MetricRow* row = find_gauge("depth");
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->gauge_value, 10);
  }
  // Both handles released: the callback contributes nothing anymore.
  EXPECT_EQ(find_gauge("depth"), nullptr);
}

TEST(ObsRegistry, SampleGaugesRecordsSiblingHistograms) {
  obs::Registry reg;
  reg.GetGauge("lag")->Set(100);
  reg.GetGauge("below_zero")->Set(-5);
  reg.SampleGauges();
  obs::Histogram* h = reg.GetHistogram("lag:sampled");
  EXPECT_EQ(h->Count(), 1u);
  EXPECT_EQ(h->Sum(), 100u);
  obs::Histogram* clamped = reg.GetHistogram("below_zero:sampled");
  EXPECT_EQ(clamped->Count(), 1u);
  EXPECT_EQ(clamped->Sum(), 0u);  // Negatives clamp.
}

TEST(ObsExport, MetricsJsonGolden) {
  obs::Registry reg;
  reg.GetCounter("audit_jobs", {{"node", "a"}})->Inc(3);
  reg.GetGauge("lag")->Set(-7);
  obs::Histogram* h = reg.GetHistogram("lat_us");
  h->Record(0);
  h->Record(1);
  h->Record(5);
  h->Record(5);
  EXPECT_EQ(obs::MetricsJson(reg.Snapshot()),
            "[{\"name\":\"audit_jobs\",\"labels\":{\"node\":\"a\"},\"type\":\"counter\","
            "\"value\":3},"
            "{\"name\":\"lag\",\"labels\":{},\"type\":\"gauge\",\"value\":-7},"
            "{\"name\":\"lat_us\",\"labels\":{},\"type\":\"histogram\",\"count\":4,\"sum\":11,"
            "\"buckets\":[[0,1],[1,1],[7,2]]}]");
}

TEST(ObsExport, PrometheusTextGolden) {
  obs::Registry reg;
  reg.GetCounter("audit_jobs", {{"node", "a"}})->Inc(3);
  reg.GetGauge("lag")->Set(-7);
  obs::Histogram* h = reg.GetHistogram("lat_us");
  h->Record(0);
  h->Record(1);
  h->Record(5);
  h->Record(5);
  EXPECT_EQ(obs::PrometheusText(reg.Snapshot()),
            "# TYPE avm_audit_jobs counter\n"
            "avm_audit_jobs{node=\"a\"} 3\n"
            "# TYPE avm_lag gauge\n"
            "avm_lag -7\n"
            "# TYPE avm_lat_us histogram\n"
            "avm_lat_us_bucket{le=\"0\"} 1\n"
            "avm_lat_us_bucket{le=\"1\"} 2\n"
            "avm_lat_us_bucket{le=\"7\"} 4\n"
            "avm_lat_us_bucket{le=\"+Inf\"} 4\n"
            "avm_lat_us_sum 11\n"
            "avm_lat_us_count 4\n");
}

TEST(ObsExport, PrometheusSanitizesNames) {
  obs::Registry reg;
  reg.GetCounter("weird-name.metric", {{"bad key", "q\"v"}})->Inc(1);
  const std::string text = obs::PrometheusText(reg.Snapshot());
  EXPECT_NE(text.find("avm_weird_name_metric"), std::string::npos);
  EXPECT_NE(text.find("bad_key=\"q\\\"v\""), std::string::npos);
}

TEST(ObsTrace, SpansFeedAggregatesAndRegistry) {
  ObsGateGuard guard;
  obs::SetEnabled(true);
  obs::ResetTrace();
  const uint64_t hist_before =
      obs::Registry::Global()
          .GetHistogram("span_us", {{"phase", obs::kPhaseAuditSyntactic}})
          ->Count();
  {
    obs::Span outer(obs::kPhaseAuditSyntactic, "audit");
    obs::Span inner(obs::kPhaseAuditRsaVerify, "audit");
  }
  EXPECT_EQ(obs::PhaseCount(obs::kPhaseAuditSyntactic), 1u);
  EXPECT_EQ(obs::PhaseCount(obs::kPhaseAuditRsaVerify), 1u);
  EXPECT_EQ(obs::TraceEventCount(), 2u);
  // Span end auto-feeds the span_us{phase=...} histogram.
  EXPECT_EQ(obs::Registry::Global()
                .GetHistogram("span_us", {{"phase", obs::kPhaseAuditSyntactic}})
                ->Count(),
            hist_before + 1);
  const std::string json = obs::ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"audit.syntactic\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(ObsTrace, DisabledSpansCostNothingAndEmitNothing) {
  ObsGateGuard guard;
  obs::SetEnabled(false);
  obs::ResetTrace();
  {
    obs::Span span(obs::kPhaseAuditReplay, "audit");
    EXPECT_EQ(span.End(), 0.0);
  }
  EXPECT_EQ(obs::TraceEventCount(), 0u);
  EXPECT_EQ(obs::PhaseCount(obs::kPhaseAuditReplay), 0u);
}

TEST(ObsTrace, TimeSectionMeasuresEvenWhenDisabled) {
  ObsGateGuard guard;
  obs::SetEnabled(false);
  int ran = 0;
  const double s = obs::TimeSection("bench.section", [&ran] { ran++; });
  EXPECT_EQ(ran, 1);
  EXPECT_GE(s, 0.0);
}

TEST(ObsExport, WriteFileAtomicWritesAndReportsErrors) {
  const std::string dir = (fs::path(::testing::TempDir()) / "avm_obs_atomic").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = dir + "/out.json";
  std::string error;
  ASSERT_TRUE(obs::WriteFileAtomic(path, "{\"ok\":1}\n", &error)) << error;
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "{\"ok\":1}\n");
  EXPECT_FALSE(fs::exists(path + ".tmp"));  // No droppings on success.

  // Failure: unwritable destination reports fopen + errno, target untouched.
  error.clear();
  EXPECT_FALSE(obs::WriteFileAtomic(dir + "/no/such/dir/out.json", "x", &error));
  EXPECT_NE(error.find("fopen"), std::string::npos);
  EXPECT_FALSE(fs::exists(dir + "/no"));
  fs::remove_all(dir);
}

TEST(ObsSampler, PeriodicallySamplesGauges) {
  ObsGateGuard guard;
  obs::SetEnabled(true);
  obs::Registry reg;
  reg.GetGauge("queue_depth")->Set(17);
  obs::GaugeSampler sampler(&reg, /*period_ms=*/1);
  // The sampler thread races this wait by design: TSan runs this test too.
  while (sampler.ticks() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.Stop();
  obs::Histogram* h = reg.GetHistogram("queue_depth:sampled");
  EXPECT_GE(h->Count(), 3u);
  EXPECT_EQ(h->ApproxQuantile(0.5), obs::Histogram::BucketUpperBound(
                                        obs::Histogram::BucketIndex(17)));
}

// The acceptance bar: telemetry observes, it never perturbs. The same
// seeded scenario recorded and fully audited with obs off vs. on must
// produce a bit-identical serialized log and identical verdicts.
TEST(ObsEquivalence, VerdictsAndLogBytesIdenticalOnOrOff) {
  ObsGateGuard guard;
  Bytes wire[2];
  std::string verdict[2];
  size_t log_entries[2] = {0, 0};
  for (int on = 0; on < 2; on++) {
    obs::SetEnabled(on != 0);
    obs::ResetTrace();
    GameScenarioConfig cfg;
    cfg.run = RunConfig::AvmmRsa768();
    cfg.num_players = 2;
    cfg.seed = 77;
    GameScenario game(cfg);
    game.Start();
    game.RunFor(2 * kMicrosPerSecond);
    game.Finish();

    LogSegment seg = game.server().log().Extract(1, game.server().log().LastSeq());
    wire[on] = seg.Serialize();
    log_entries[on] = game.server().log().size();

    AuditConfig acfg;
    acfg.mem_size = cfg.run.mem_size;
    acfg.threads = 1;
    Auditor auditor("auditor", &game.registry(), acfg);
    AuditOutcome out = auditor.AuditFull(game.server(), game.reference_server_image(),
                                         game.CollectAuths("server"));
    verdict[on] = out.Describe();
    EXPECT_TRUE(out.ok);
  }
  EXPECT_EQ(log_entries[0], log_entries[1]);
  EXPECT_EQ(wire[0], wire[1]) << "telemetry changed the serialized log";
  EXPECT_EQ(verdict[0], verdict[1]);
  // And with it on, the audit's phases actually showed up.
  EXPECT_GT(obs::PhaseCount(obs::kPhaseAuditSyntactic), 0u);
  EXPECT_GT(obs::PhaseCount(obs::kPhaseAuditReplay), 0u);
}

// The JIT tier publishes its translation-layer counters into the global
// registry, and telemetry must not perturb JIT execution: the same
// guest run with obs off vs. on retires bit-identical CPU state and
// memory, while the counters are visible either way (Counter::Inc is a
// relaxed fetch_add, deliberately not behind the SetEnabled gate).
TEST(ObsEquivalence, JitExecutionBitIdenticalAndCountersRegister) {
  if (!Machine::JitCompiledIn()) GTEST_SKIP() << "JIT not compiled in";
  ObsGateGuard guard;
  constexpr size_t kGuestMem = 64 * 1024;
  // Hot loop plus one self-patching store, so translation, chaining and
  // page invalidation all fire.
  Bytes image = Assemble(R"(
    movi r1, 0
    movi r2, 5000
    la r3, patch
    la r6, 0x2b100001   ; addi r1, 1 (rewrite with identical bits)
loop:
patch:
    addi r1, 1
    sw r6, [r3]
    add r4, r1
    bne r1, r2, loop
    halt
  )");
  CpuState cpu[2];
  Bytes mem[2];
  for (int on = 0; on < 2; on++) {
    obs::SetEnabled(on != 0);
    obs::ResetTrace();
    NullBackend b;
    Machine m(kGuestMem, &b);
    m.LoadImage(image);
    m.Run(100000);
    cpu[on] = m.cpu();
    mem[on] = m.ReadMemRange(0, kGuestMem);
    ASSERT_FALSE(m.faulted());
  }
  EXPECT_TRUE(cpu[0] == cpu[1]) << "telemetry perturbed JIT execution";
  EXPECT_EQ(mem[0], mem[1]);
  obs::Registry& reg = obs::Registry::Global();
  EXPECT_GT(reg.GetCounter("avm.jit.translations")->Value(), 0u);
  EXPECT_GT(reg.GetCounter("avm.jit.code_cache_bytes")->Value(), 0u);
  EXPECT_GT(reg.GetCounter("avm.jit.pages_invalidated")->Value(), 0u);
  EXPECT_GT(reg.GetCounter("avm.jit.blocks_invalidated")->Value(), 0u);
  // Present (possibly zero this run) but registered:
  reg.GetCounter("avm.jit.chain_patches");
  reg.GetCounter("avm.jit.interp_fallbacks");
  reg.GetCounter("avm.jit.selfmod_exits");
  reg.GetCounter("avm.jit.flushes");
}

}  // namespace
}  // namespace avm
