#include <gtest/gtest.h>

#include "src/audit/replay_analysis.h"
#include "src/avmm/recorder.h"
#include "src/vm/assembler.h"

namespace avm {
namespace {

// A guest with a "vulnerability": it copies a network-derived length of
// words into a fixed 4-word buffer at 0x6000 without a bounds check, so
// a hostile packet overwrites the adjacent function pointer at 0x6010
// (initially pointing to `good_handler`) -- the classic overflow. The
// AVM model calls this execution *correct* (the reference image really
// behaves this way on that input, §4.8); replay-time analysis flags it.
constexpr char kVulnGuest[] = R"(
    jmp main
    jmp irqh
irqh:
    iret

good_handler:
    movi r1, 111
    out r1, DEBUG
    ret

evil_target:                 ; attacker-chosen jump target ("shellcode")
    movi r1, 666
    out r1, DEBUG
    jmp spin

main:
    movi r0, 0
    la r1, 0x6010            ; function pointer slot
    la r2, good_handler
    sw r2, [r1+0]

poll:
    in r1, NET_RXLEN
    beq r1, r0, poll
    ; packet: [src][n][w0][w1]... ; copy n words into buf at 0x6000
    la r2, RX_BUF
    lw r3, [r2+4]            ; n (attacker controlled, no bounds check!)
    addi r2, 8
    la r4, 0x6000
copy:
    beq r3, r0, copy_done
    lw r5, [r2+0]
    sw r5, [r4+0]
    addi r2, 4
    addi r4, 4
    addi r3, -1
    jmp copy
copy_done:
    out r0, NET_RXDONE
    la r6, 0x6010            ; call through the (possibly clobbered) pointer
    lw r6, [r6+0]
    jalr lr, r6
spin:
    addi r7, 1
    jmp spin
)";

struct AnalysisFixture : public ::testing::Test {
  AnalysisFixture() : rng(7), signer("host", SignatureScheme::kNone, rng) {
    registry.RegisterSigner(signer);
  }

  // Runs the vulnerable guest with one crafted packet of n payload words.
  LogSegment RecordWithPacket(const Bytes& image, uint32_t n_words, uint32_t fill) {
    Avmm node("host", RunConfig::AvmmNoSig(), image, &signer, &net, &registry);
    node.AddPeer("host");
    // Deliver a packet straight through the rx queue (bypassing the
    // transport keeps the test focused): [src][n][payload...].
    Bytes pkt;
    PutU32(pkt, 1);        // src index
    PutU32(pkt, n_words);  // attacker-controlled count
    for (uint32_t i = 0; i < n_words; i++) {
      PutU32(pkt, fill);
    }
    node.transport().OnFrame(0, "peer", Bytes{});  // No-op; keeps transport untouched.
    // Use the public input path: enqueue via the packet handler by
    // sending through the network is overkill; push directly.
    // (Avmm exposes no raw rx injection; emulate via SimNetwork.)
    (void)0;
    // Simplest route: a plain-mode peer transport.
    RunConfig plain = RunConfig::BareHw();
    TamperEvidentLog plog("peer");
    AuthenticatorStore pauths;
    Signer psign("peer", SignatureScheme::kNone, rng);
    registry.Register("peer", SignatureScheme::kNone, Bytes());
    Transport peer("peer", &plain, &plog, &psign, &net, &registry, &pauths);
    net.AttachHost("peer", &peer);
    peer.SendPacket(0, "host", pkt);
    net.DeliverUntil(1000);

    SimTime now = 0;
    for (int i = 0; i < 10; i++) {
      node.RunQuantum(now, 1000);
      now += 1000;
    }
    node.Finish(now);
    last_debug = node.debug_values();
    return node.log().Extract(1, node.log().LastSeq());
  }

  std::vector<std::unique_ptr<AnalysisPass>> MakePasses(const Bytes& image) {
    std::vector<std::unique_ptr<AnalysisPass>> passes;
    // The function-pointer slot must only be written during init (we
    // watch it for writes after the guest's own setup; for simplicity
    // the watch covers the slot and fires on any store, so the guest's
    // init write also appears -- the interesting signal is the *count*).
    passes.push_back(std::make_unique<WriteWatchpointPass>(0x6010, 0x6014, "fnptr"));
    passes.push_back(std::make_unique<ExecRangePass>(0, static_cast<uint32_t>(image.size())));
    return passes;
  }

  Prng rng;
  Signer signer;
  KeyRegistry registry;
  SimNetwork net;
  std::vector<uint32_t> last_debug;
};

TEST_F(AnalysisFixture, BenignInputOneFnptrWrite) {
  Bytes image = Assemble(kVulnGuest);
  LogSegment seg = RecordWithPacket(image, 2, 0x42);  // Within the buffer.
  ASSERT_FALSE(last_debug.empty());
  EXPECT_EQ(last_debug[0], 111u);  // good_handler ran.

  AnalysisReport report = AnalyzeSegment(seg, image, RunConfig().mem_size, MakePasses(image));
  EXPECT_TRUE(report.replay.ok) << report.replay.reason;
  // Only the guest's own init write touches the pointer slot.
  int fnptr_writes = 0;
  for (const auto& f : report.findings) {
    if (f.pass.find("fnptr") != std::string::npos) {
      fnptr_writes++;
    }
  }
  EXPECT_EQ(fnptr_writes, 1);
}

TEST_F(AnalysisFixture, OverflowHijacksControlAndIsFlagged) {
  Bytes image = Assemble(kVulnGuest);
  // 5 words: 4 fill the buffer, the 5th lands on the function pointer.
  // Point it at `evil_target` (word offset known from the image layout:
  // find it by scanning for the distinctive "movi r1, 666").
  uint32_t evil_addr = 0;
  for (uint32_t off = 0; off + 4 <= image.size(); off += 4) {
    Insn in = Decode(GetU32(image, off));
    if (in.op == Op::kMovi && in.ra == 1 && in.imm == 666) {
      evil_addr = off;
      break;
    }
  }
  ASSERT_NE(evil_addr, 0u);

  LogSegment seg = RecordWithPacket(image, 5, evil_addr);
  ASSERT_FALSE(last_debug.empty());
  EXPECT_EQ(last_debug[0], 666u);  // The hijack really happened...

  // ...and the *audit* still passes: the reference image does behave
  // this way on this input (the §4.8 limitation).
  AnalysisReport report = AnalyzeSegment(seg, image, RunConfig().mem_size, MakePasses(image));
  EXPECT_TRUE(report.replay.ok) << report.replay.reason;

  // But replay-time analysis flags the second write to the pointer slot.
  int fnptr_writes = 0;
  for (const auto& f : report.findings) {
    if (f.pass.find("fnptr") != std::string::npos) {
      fnptr_writes++;
    }
  }
  EXPECT_EQ(fnptr_writes, 2);
  EXPECT_GT(report.instructions_analyzed, 0u);
}

TEST_F(AnalysisFixture, ExecRangePassFlagsDataExecution) {
  // A guest that jumps into its data region.
  constexpr char kJumper[] = R"(
      jmp main
      jmp irqh
  irqh:
      iret
  main:
      movi r0, 0
      la r1, 0x3000
      la r2, 0x01000000      ; encoded HALT (opcode 0x01 in the top byte)
      sw r2, [r1+0]
      jr r1
  )";
  Bytes image = Assemble(kJumper);
  Prng prng2(9);
  Signer s2("host", SignatureScheme::kNone, prng2);
  Avmm node("host", RunConfig::AvmmNoSig(), image, &signer, &net, &registry, 11);
  node.AddPeer("host");
  node.RunQuantum(0, 1000);
  node.Finish(1000);
  LogSegment seg = node.log().Extract(1, node.log().LastSeq());

  std::vector<std::unique_ptr<AnalysisPass>> passes;
  passes.push_back(std::make_unique<ExecRangePass>(0, static_cast<uint32_t>(image.size())));
  AnalysisReport report = AnalyzeSegment(seg, image, RunConfig().mem_size, std::move(passes));
  EXPECT_TRUE(report.replay.ok) << report.replay.reason;
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].pc, 0x3000u);
}

}  // namespace
}  // namespace avm
