#include <gtest/gtest.h>

#include "src/avmm/transport.h"

namespace avm {
namespace {

// Two accountable transports on a simulated network. Uses nosig keys by
// default so the tests are fast; the hash-chain commitments (which carry
// all the protocol state the tests check) are scheme-independent.
struct TransportFixture : public ::testing::Test {
  explicit TransportFixture(SignatureScheme scheme = SignatureScheme::kNone)
      : rng(1),
        alice_signer("alice", scheme, rng),
        bob_signer("bob", scheme, rng),
        alice_log("alice"),
        bob_log("bob") {
    cfg = RunConfig::AvmmNoSig();
    cfg.scheme = scheme;
    registry.RegisterSigner(alice_signer);
    registry.RegisterSigner(bob_signer);
    alice = std::make_unique<Transport>("alice", &cfg, &alice_log, &alice_signer, &net, &registry,
                                        &alice_auths);
    bob = std::make_unique<Transport>("bob", &cfg, &bob_log, &bob_signer, &net, &registry,
                                      &bob_auths);
    net.AttachHost("alice", alice.get());
    net.AttachHost("bob", bob.get());
    bob->SetPacketHandler([this](SimTime, const NodeId& src, const Bytes& payload) {
      bob_received.emplace_back(src, payload);
    });
    alice->SetPacketHandler([this](SimTime, const NodeId& src, const Bytes& payload) {
      alice_received.emplace_back(src, payload);
    });
  }

  void Settle(SimTime until) { net.DeliverUntil(until); }

  Prng rng;
  RunConfig cfg;
  Signer alice_signer, bob_signer;
  KeyRegistry registry;
  SimNetwork net;
  TamperEvidentLog alice_log, bob_log;
  AuthenticatorStore alice_auths, bob_auths;
  std::unique_ptr<Transport> alice, bob;
  std::vector<std::pair<NodeId, Bytes>> alice_received, bob_received;
};

TEST_F(TransportFixture, DataDeliveredAndLogged) {
  alice->SendPacket(0, "bob", ToBytes("hello"));
  Settle(kMicrosPerSecond);
  ASSERT_EQ(bob_received.size(), 1u);
  EXPECT_EQ(ToString(bob_received[0].second), "hello");

  // Alice logged SEND then (after the ack round trip) ACK.
  ASSERT_EQ(alice_log.size(), 2u);
  EXPECT_EQ(alice_log.At(1).type, EntryType::kSend);
  EXPECT_EQ(alice_log.At(2).type, EntryType::kAck);
  // Bob logged RECV.
  ASSERT_EQ(bob_log.size(), 1u);
  EXPECT_EQ(bob_log.At(1).type, EntryType::kRecv);
}

TEST_F(TransportFixture, AuthenticatorsExchanged) {
  alice->SendPacket(0, "bob", ToBytes("x"));
  Settle(kMicrosPerSecond);
  // Bob holds Alice's SEND authenticator; Alice holds Bob's RECV one.
  EXPECT_EQ(bob_auths.CountFor("alice"), 1u);
  EXPECT_EQ(alice_auths.CountFor("bob"), 1u);
  EXPECT_EQ(alice->stats().acks_received, 1u);
  EXPECT_EQ(bob->stats().acks_sent, 1u);
}

TEST_F(TransportFixture, RetransmitUntilAcked) {
  net.SetPartitioned("alice", "bob", true);
  alice->SendPacket(0, "bob", ToBytes("lost"));
  // Several retransmit timeouts pass with the link down.
  for (SimTime t = 0; t < 200 * kMicrosPerMilli; t += 10 * kMicrosPerMilli) {
    alice->Tick(t);
    Settle(t);
  }
  EXPECT_GE(alice->stats().retransmits, 2u);
  EXPECT_TRUE(bob_received.empty());

  net.SetPartitioned("alice", "bob", false);
  alice->Tick(300 * kMicrosPerMilli);
  Settle(400 * kMicrosPerMilli);
  ASSERT_EQ(bob_received.size(), 1u);
  // Exactly one RECV despite multiple transmissions.
  EXPECT_EQ(bob_log.size(), 1u);
}

TEST_F(TransportFixture, DuplicateDataReAckedNotRelogged) {
  alice->SendPacket(0, "bob", ToBytes("once"));
  Settle(kMicrosPerSecond);
  ASSERT_EQ(bob_log.size(), 1u);

  // Simulate a duplicate by forcing a retransmission after the ack was
  // already processed: drop alice's pending-ack state first.
  net.SetPartitioned("alice", "bob", true);
  alice->SendPacket(kMicrosPerSecond, "bob", ToBytes("second"));
  net.SetPartitioned("alice", "bob", false);
  alice->Tick(kMicrosPerSecond + cfg.retransmit_timeout);  // Retransmit #2.
  alice->Tick(kMicrosPerSecond + 2 * cfg.retransmit_timeout);
  Settle(2 * kMicrosPerSecond);
  // "second" was transmitted twice; bob logs it once and re-acks.
  EXPECT_EQ(bob_log.size(), 2u);
  EXPECT_EQ(bob_received.size(), 2u);
}

TEST_F(TransportFixture, SuspectsUnresponsivePeer) {
  net.SetPartitioned("alice", "bob", true);
  alice->SendPacket(0, "bob", ToBytes("void"));
  SimTime t = 0;
  for (int i = 0; i <= cfg.max_retransmits + 2; i++) {
    t += cfg.retransmit_timeout;
    alice->Tick(t);
  }
  EXPECT_TRUE(alice->suspected().count("bob") > 0);
}

TEST_F(TransportFixture, SuspendBlocksTraffic) {
  alice->Suspend("bob");
  alice->SendPacket(0, "bob", ToBytes("blocked"));
  Settle(kMicrosPerSecond);
  EXPECT_TRUE(bob_received.empty());
  EXPECT_EQ(alice->stats().dropped_suspended, 1u);

  alice->Resume("bob");
  alice->SendPacket(2 * kMicrosPerSecond, "bob", ToBytes("open"));
  Settle(3 * kMicrosPerSecond);
  EXPECT_EQ(bob_received.size(), 1u);
}

TEST_F(TransportFixture, MalformedFrameCountedNotCrash) {
  net.SendFrame(0, "alice", "bob", Bytes{0x01, 0xff, 0xff});  // Truncated data frame.
  net.SendFrame(0, "alice", "bob", Bytes{});                  // Empty.
  net.SendFrame(0, "alice", "bob", Bytes{0x77});              // Unknown type.
  Settle(kMicrosPerSecond);
  EXPECT_GE(bob->stats().verify_failures, 3u);
  EXPECT_TRUE(bob_received.empty());
}

TEST_F(TransportFixture, ForgedSenderAuthenticatorRejected) {
  // Craft a frame whose authenticator does not commit to SEND(m).
  MessageRecord rec{"alice", "bob", 1, ToBytes("forged")};
  DataFrame f;
  f.msg = rec;
  f.payload_sig = alice_signer.Sign(rec.Serialize());
  f.prev_hash = Hash256::Zero();
  f.auth.node = "alice";
  f.auth.seq = 1;
  f.auth.hash = Sha256::Digest("unrelated");
  f.auth.signature = alice_signer.Sign(
      Authenticator::SignedPayload("alice", 1, f.auth.hash));
  net.SendFrame(0, "alice", "bob", WrapFrame(FrameType::kData, f.Serialize()));
  Settle(kMicrosPerSecond);
  EXPECT_TRUE(bob_received.empty());
  EXPECT_GE(bob->stats().verify_failures, 1u);
  EXPECT_EQ(bob_log.size(), 0u);  // Nothing logged for a bogus frame.
}

TEST_F(TransportFixture, MisaddressedFrameRejected) {
  // A data frame claiming src=bob arriving from alice.
  MessageRecord rec{"bob", "bob", 1, ToBytes("spoof")};
  DataFrame f;
  f.msg = rec;
  f.payload_sig = bob_signer.Sign(rec.Serialize());
  f.prev_hash = Hash256::Zero();
  f.auth.node = "bob";
  f.auth.seq = 1;
  f.auth.hash = ChainHash(Hash256::Zero(), 1, EntryType::kSend,
                          MessageEntryContent(rec, f.payload_sig));
  f.auth.signature =
      bob_signer.Sign(Authenticator::SignedPayload("bob", 1, f.auth.hash));
  net.SendFrame(0, "alice", "bob", WrapFrame(FrameType::kData, f.Serialize()));
  Settle(kMicrosPerSecond);
  EXPECT_TRUE(bob_received.empty());
  EXPECT_GE(bob->stats().verify_failures, 1u);
}

TEST_F(TransportFixture, ChallengeRoundTrip) {
  // Carol (modeled by direct frames) challenges bob through alice:
  // alice suspends bob, relays the challenge, bob answers, alice resumes.
  bool bob_challenged = false;
  bob->SetChallengeHandler([&](const ChallengeFrame& c) {
    bob_challenged = true;
    EXPECT_EQ(c.accused, "bob");
    return ToBytes("log-segment-here");
  });
  bool alice_saw_response = false;
  alice->SetChallengeResponseHandler([&](const ChallengeResponseFrame& r) {
    alice_saw_response = true;
    EXPECT_EQ(ToString(r.body), "log-segment-here");
  });

  ChallengeFrame challenge{"carol", "bob", 42, ToBytes("produce-log")};
  net.SendFrame(0, "carol", "alice", WrapFrame(FrameType::kChallenge, challenge.Serialize()));
  // One hop: carol -> alice. Alice suspends bob and relays the challenge,
  // but bob's answer has not arrived yet.
  Settle(100);
  EXPECT_TRUE(alice->IsSuspended("bob"));
  Settle(kMicrosPerSecond);
  EXPECT_TRUE(bob_challenged);
  EXPECT_TRUE(alice_saw_response);
  EXPECT_FALSE(alice->IsSuspended("bob"));
}

TEST_F(TransportFixture, PlainModeHasNoAccountability) {
  RunConfig plain_cfg = RunConfig::BareHw();
  TamperEvidentLog clog("carol"), dlog("dave");
  AuthenticatorStore ca, da;
  Transport carol("carol", &plain_cfg, &clog, nullptr, &net, &registry, &ca);
  Transport dave("dave", &plain_cfg, &dlog, nullptr, &net, &registry, &da);
  net.AttachHost("carol", &carol);
  net.AttachHost("dave", &dave);
  Bytes got;
  dave.SetPacketHandler([&](SimTime, const NodeId&, const Bytes& p) { got = p; });
  carol.SendPacket(0, "dave", ToBytes("fast"));
  Settle(kMicrosPerSecond);
  EXPECT_EQ(ToString(got), "fast");
  EXPECT_EQ(clog.size(), 0u);  // No log entries in plain mode.
  EXPECT_EQ(dlog.size(), 0u);
  EXPECT_EQ(dave.stats().acks_sent, 0u);
}

// The same protocol with real RSA-768 signatures end to end.
struct TransportRsaFixture : public TransportFixture {
  TransportRsaFixture() : TransportFixture(SignatureScheme::kRsa768) {}
};

TEST_F(TransportRsaFixture, SignedRoundTrip) {
  alice->SendPacket(0, "bob", ToBytes("signed hello"));
  Settle(kMicrosPerSecond);
  ASSERT_EQ(bob_received.size(), 1u);
  EXPECT_EQ(alice->stats().acks_received, 1u);
  EXPECT_GT(alice->crypto_seconds(), 0.0);
  EXPECT_EQ(bob->stats().verify_failures, 0u);
}

TEST_F(TransportRsaFixture, TamperedPayloadRejected) {
  // Capture a legitimate frame, flip a payload byte, replay it.
  struct Tap : public NetworkDelegate {
    Transport* inner;
    Bytes last;
    void OnFrame(SimTime now, const NodeId& src, ByteView frame) override {
      last.assign(frame.begin(), frame.end());
      inner->OnFrame(now, src, frame);
    }
  };
  Tap tap;
  tap.inner = bob.get();
  net.AttachHost("bob", &tap);
  alice->SendPacket(0, "bob", ToBytes("genuine"));
  Settle(kMicrosPerSecond);
  ASSERT_EQ(bob_received.size(), 1u);
  ASSERT_FALSE(tap.last.empty());

  Bytes tampered = tap.last;
  tampered[tampered.size() / 2] ^= 0x40;
  size_t fails_before = bob->stats().verify_failures;
  bob->OnFrame(kMicrosPerSecond, "alice", tampered);
  // Either a parse failure or a signature/commitment failure; in all
  // cases nothing new is delivered or logged.
  EXPECT_GE(bob->stats().verify_failures + bob->stats().duplicates, fails_before);
  EXPECT_EQ(bob_received.size(), 1u);
}

}  // namespace
}  // namespace avm
