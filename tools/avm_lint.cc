// avm-lint: static verifier for AVM-32 guest images.
//
// Classifies every word of an image as code/data/unreachable-code and
// reports structural problems (illegal opcodes, direct jumps out of the
// image, statically-resolved stores into code ranges, statically
// out-of-bounds accesses) before the image is ever executed, recorded,
// or replayed — the ahead-of-time half of the auditor's "is this the
// agreed-upon image?" question.
//
// Usage:
//   avm-lint [options] <image.bin | program.asm | --builtin NAME>...
// Options:
//   --builtin NAME     lint a built-in guest (game-client,
//                      game-client-aimbot, game-client-wallhack,
//                      game-server, kv-server, kv-client, or `all`)
//   --json             machine-readable report on stdout
//   --mem-size BYTES   guest RAM size (default 262144)
//   --seed-corruption K  corrupt the image before linting; K is one of
//                      illegal, wildjump, codestore (CI negative tests)
//   --werror           exit nonzero on warnings too (self-modifying
//                      stores are legal, hence normally only warnings)
//   -q                 suppress per-finding output, print summary only
//
// Exit status: 0 = clean (warnings allowed), 2 = errors found,
// 3 = usage or I/O failure.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/apps/game.h"
#include "src/apps/kvstore.h"
#include "src/util/bytes.h"
#include "src/vm/analysis/analysis.h"
#include "src/vm/assembler.h"

namespace {

using avm::Bytes;
using avm::analysis::Finding;
using avm::analysis::FindingKindName;
using avm::analysis::Severity;
using avm::analysis::VerifyReport;
using avm::analysis::WordClass;

struct Target {
  std::string name;
  Bytes image;
};

Bytes BuildBuiltin(const std::string& name, bool* ok) {
  *ok = true;
  if (name == "game-client") {
    return avm::BuildGameClientImage({});
  }
  if (name == "game-client-aimbot") {
    avm::GameClientParams p;
    p.variant = avm::GameClientParams::Variant::kAimbot;
    return avm::BuildGameClientImage(p);
  }
  if (name == "game-client-wallhack") {
    avm::GameClientParams p;
    p.variant = avm::GameClientParams::Variant::kWallhack;
    return avm::BuildGameClientImage(p);
  }
  if (name == "game-server") {
    return avm::BuildGameServerImage({});
  }
  if (name == "kv-server") {
    return avm::BuildKvServerImage({});
  }
  if (name == "kv-client") {
    return avm::BuildKvClientImage({});
  }
  *ok = false;
  return {};
}

const char* kAllBuiltins[] = {"game-client",   "game-client-aimbot",
                              "game-client-wallhack", "game-server",
                              "kv-server",     "kv-client"};

// Deliberately plant one defect so CI can assert avm-lint catches it.
bool Corrupt(Bytes& image, const std::string& kind) {
  if (image.size() < 16) {
    return false;
  }
  // Find a reachable code word to replace: lint the pristine image and
  // pick the middle of the largest block.
  avm::analysis::Cfg cfg = avm::analysis::BuildCfg(image);
  const avm::analysis::BasicBlock* victim = nullptr;
  for (const auto& b : cfg.blocks) {
    if (!victim || b.insn_count() > victim->insn_count()) {
      victim = &b;
    }
  }
  if (!victim || victim->insn_count() == 0) {
    return false;
  }
  const uint32_t at = victim->start + 4 * (victim->insn_count() / 2);
  uint32_t word = 0;
  if (kind == "illegal") {
    word = 0xee000000u;  // Undecodable opcode.
  } else if (kind == "wildjump") {
    // JMP forward past the end of the image.
    word = avm::Encode(avm::Op::kJmp, 0, 0,
                       static_cast<uint16_t>(image.size() / 4 + 64));
  } else if (kind == "codestore") {
    // SW r0, [r0 + reset-vector]: statically-known store over code.
    word = avm::Encode(avm::Op::kSw, 0, 0, 0);
  } else {
    return false;
  }
  std::memcpy(image.data() + at, &word, 4);
  return true;
}

void PrintHuman(const Target& t, const VerifyReport& rep, bool quiet) {
  size_t code = 0;
  size_t unreachable = 0;
  for (WordClass w : rep.words) {
    code += w == WordClass::kCode;
    unreachable += w == WordClass::kUnreachableCode;
  }
  std::printf("%s: %zu words (%zu code, %zu unreachable-code, %zu data)\n",
              t.name.c_str(), rep.words.size(), code, unreachable,
              rep.words.size() - code - unreachable);
  if (!quiet) {
    for (const Finding& f : rep.findings) {
      std::printf("  %s: %s at 0x%04x", f.severity == Severity::kError ? "error" : "warning",
                  FindingKindName(f.kind), f.addr);
      if (f.target != 0) {
        std::printf(" (target 0x%04x)", f.target);
      }
      std::printf(": %s\n", f.detail.c_str());
    }
  }
  std::printf("  %d error(s), %d warning(s)\n", rep.errors, rep.warnings);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

void PrintJson(const std::vector<std::pair<Target, VerifyReport>>& results) {
  std::printf("{\"images\":[");
  for (size_t i = 0; i < results.size(); i++) {
    const auto& [t, rep] = results[i];
    std::printf("%s{\"name\":\"%s\",\"errors\":%d,\"warnings\":%d,\"findings\":[",
                i ? "," : "", JsonEscape(t.name).c_str(), rep.errors, rep.warnings);
    for (size_t j = 0; j < rep.findings.size(); j++) {
      const Finding& f = rep.findings[j];
      std::printf("%s{\"kind\":\"%s\",\"severity\":\"%s\",\"addr\":%u,"
                  "\"target\":%u,\"detail\":\"%s\"}",
                  j ? "," : "", FindingKindName(f.kind),
                  f.severity == Severity::kError ? "error" : "warning", f.addr,
                  f.target, JsonEscape(f.detail).c_str());
    }
    std::printf("]}");
  }
  std::printf("]}\n");
}

int Usage() {
  std::fprintf(stderr,
               "usage: avm-lint [--json] [--werror] [--mem-size N] [--seed-corruption "
               "illegal|wildjump|codestore] [-q]\n"
               "                (<image.bin>|<program.asm>|--builtin NAME|--builtin all)...\n");
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool quiet = false;
  bool werror = false;
  size_t mem_size = 256 * 1024;
  std::string corruption;
  std::vector<Target> targets;

  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "-q") {
      quiet = true;
    } else if (arg == "--mem-size" && i + 1 < argc) {
      mem_size = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 0));
    } else if (arg == "--seed-corruption" && i + 1 < argc) {
      corruption = argv[++i];
    } else if (arg == "--builtin" && i + 1 < argc) {
      const std::string name = argv[++i];
      if (name == "all") {
        for (const char* b : kAllBuiltins) {
          bool ok;
          targets.push_back(Target{b, BuildBuiltin(b, &ok)});
        }
      } else {
        bool ok;
        Bytes image = BuildBuiltin(name, &ok);
        if (!ok) {
          std::fprintf(stderr, "avm-lint: unknown builtin '%s'\n", name.c_str());
          return 3;
        }
        targets.push_back(Target{name, std::move(image)});
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      std::ifstream in(arg, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "avm-lint: cannot open %s\n", arg.c_str());
        return 3;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      const std::string data = ss.str();
      Bytes image;
      if (arg.size() > 4 && arg.compare(arg.size() - 4, 4, ".asm") == 0) {
        try {
          image = avm::Assemble(data);
        } catch (const avm::AsmError& e) {
          std::fprintf(stderr, "avm-lint: %s: %s\n", arg.c_str(), e.what());
          return 3;
        }
      } else {
        image.assign(data.begin(), data.end());
      }
      targets.push_back(Target{arg, std::move(image)});
    }
  }
  if (targets.empty()) {
    return Usage();
  }

  int worst = 0;
  std::vector<std::pair<Target, VerifyReport>> results;
  for (Target& t : targets) {
    if (!corruption.empty() && !Corrupt(t.image, corruption)) {
      std::fprintf(stderr, "avm-lint: cannot seed corruption '%s' into %s\n",
                   corruption.c_str(), t.name.c_str());
      return 3;
    }
    avm::analysis::ImageAnalysis a =
        avm::analysis::AnalyzeImage(t.image, mem_size, /*with_reaching_defs=*/false);
    if (!a.report.ok() || (werror && a.report.warnings > 0)) {
      worst = 2;
    }
    if (json) {
      results.emplace_back(std::move(t), std::move(a.report));
    } else {
      PrintHuman(t, a.report, quiet);
    }
  }
  if (json) {
    PrintJson(results);
  }
  return worst;
}
