// Figure 5: median ping round-trip times across the five configurations.
//
// Paper (two hosts on one switch): bare-hw 192us, +virtualization 525us,
// +recording 621us, +tamper-evident daemon >2ms, +RSA-768 ~5ms. Both the
// ping and the pong are acknowledged, so four signatures are generated
// and verified per RTT.
//
// Measurement here: the wire propagation is the simulated LAN's 2x96us;
// the per-message processing cost (logging, hash chaining, signing,
// verification, acks) is measured in real time by driving one message +
// ack through two real transports/logs, and the recording cost by
// appending the MAC-layer events a recording VMM logs for the same
// packet. RTT = propagation + 2 x (message processing) since a ping is
// two messages (ping + pong).
#include "bench/bench_common.h"
#include "src/avmm/transport.h"
#include "src/vm/trace.h"

namespace avm {
namespace {

constexpr size_t kPingBytes = 64;
constexpr int kRounds = 100;
constexpr double kPropagationUs = 192.0;  // The paper's bare-hw LAN RTT.

// Wall-time per message through the full accountable path (send + data
// verification + recv log + ack + ack verification). For batched mode
// the inline window signatures are inside the timed loop (their cost is
// amortized, not hidden); for async mode they run on the signer thread
// (off the critical path by design) and the final Flush barrier is
// excluded, matching "the caller returns after the SHA-256 append".
double MessageProcessingUs(const RunConfig& cfg, SignatureScheme scheme) {
  Prng rng(5);
  Signer alice("alice", scheme, rng), bob("bob", scheme, rng);
  KeyRegistry registry;
  registry.RegisterSigner(alice);
  registry.RegisterSigner(bob);
  SimNetwork net;
  net.SetDefaultLatency(0);
  TamperEvidentLog alog("alice"), blog("bob");
  AuthenticatorStore aa, ba;
  Transport ta("alice", &cfg, &alog, &alice, &net, &registry, &aa);
  Transport tb("bob", &cfg, &blog, &bob, &net, &registry, &ba);
  net.AttachHost("alice", &ta);
  net.AttachHost("bob", &tb);

  Bytes payload(kPingBytes, 0xab);
  // Warm-up round.
  ta.SendPacket(0, "bob", payload);
  net.DeliverUntil(0);

  WallTimer t;
  for (int i = 0; i < kRounds; i++) {
    ta.SendPacket(0, "bob", payload);
    net.DeliverUntil(0);  // Data delivered, ack delivered, synchronously.
  }
  double us = t.ElapsedSeconds() * 1e6 / kRounds;
  // Join the signer thread and settle the tail outside the timer.
  ta.Flush(0);
  tb.Flush(0);
  net.DeliverUntil(0);
  return us;
}

// Wall-time a recording VMM spends logging the MAC-layer events for one
// packet (TX event on the sender, DMA event on the receiver).
double RecordingProcessingUs(bool tamper_evident) {
  TamperEvidentLog log("x");
  uint64_t plain_bytes = 0;
  Bytes payload(kPingBytes, 0xcd);
  WallTimer t;
  for (int i = 0; i < kRounds; i++) {
    for (TraceKind kind : {TraceKind::kOutPacket, TraceKind::kDmaPacket}) {
      TraceEvent e;
      e.kind = kind;
      e.icount = static_cast<uint64_t>(i) * 100;
      e.data = payload;
      Bytes ser = e.Serialize();
      if (tamper_evident) {
        log.Append(ClassifyTraceEvent(e), std::move(ser));
      } else {
        plain_bytes += ser.size() + 13;
      }
    }
  }
  (void)plain_bytes;
  return t.ElapsedSeconds() * 1e6 / kRounds;
}

void Run() {
  BenchJson json("fig5_ping");
  std::printf("  %-22s %16s %14s\n", "config", "processing (us)", "ping RTT (us)");
  double proc_nosig = 0;
  double proc_rsa_sync = 0;
  for (const RunConfig& cfg : PaperConfigs()) {
    double proc = MessageProcessingUs(cfg, cfg.scheme);
    if (cfg.RecordsTrace()) {
      proc += RecordingProcessingUs(cfg.TamperEvident());
    }
    // Ping + pong: the per-message path runs twice per RTT.
    double rtt = kPropagationUs + 2 * proc;
    std::printf("  %-22s %16.1f %14.1f\n", cfg.Name(), proc, rtt);
    json.Add(std::string(cfg.Name()) + "_processing", proc, "us");
    json.Add(std::string(cfg.Name()) + "_rtt", rtt, "us");
    if (cfg.TamperEvident() && cfg.scheme == SignatureScheme::kNone) {
      proc_nosig = proc;
    }
    if (cfg.TamperEvident() && cfg.scheme == SignatureScheme::kRsa768) {
      proc_rsa_sync = proc;
    }
  }

  // The §6.8 remedy, implemented: amortize the RSA cost with batched
  // authenticators (one signature per k entries) or take it off the
  // critical path entirely (async signer thread).
  double sig_step_sync = proc_rsa_sync - proc_nosig;
  for (const RunConfig& cfg :
       {RunConfig::AvmmRsa768Batched(8), RunConfig::AvmmRsa768Batched(32),
        RunConfig::AvmmRsa768Async(8)}) {
    double proc = MessageProcessingUs(cfg, cfg.scheme) + RecordingProcessingUs(true);
    double rtt = kPropagationUs + 2 * proc;
    double sig_step = proc - proc_nosig;
    double speedup = sig_step > 0 ? sig_step_sync / sig_step : 0;
    std::string label = std::string(cfg.Name()) +
                        (cfg.sign_mode == SignMode::kBatched
                             ? "-k" + std::to_string(cfg.sign_batch_entries)
                             : "");
    std::printf("  %-22s %16.1f %14.1f   (sig step %.0fus, %.1fx vs sync)\n", label.c_str(),
                proc, rtt, sig_step, speedup);
    json.Add(label + "_processing", proc, "us");
    json.Add(label + "_rtt", rtt, "us");
    json.Add(label + "_sig_step", sig_step, "us");
    json.Add(label + "_sig_step_speedup_vs_sync", speedup, "x");
  }
  json.Add("avmm-rsa768_sig_step_sync", sig_step_sync, "us");

  // Bonus point from §6.8's discussion: a stronger key for comparison.
  RunConfig rsa2048 = RunConfig::AvmmRsa2048();
  double proc2048 = MessageProcessingUs(rsa2048, SignatureScheme::kRsa2048) +
                    RecordingProcessingUs(true);
  std::printf("  %-22s %16.1f %14.1f   (key-strength sweep)\n", rsa2048.Name(), proc2048,
              kPropagationUs + 2 * proc2048);
  json.Add("avmm-rsa2048_processing", proc2048, "us");
  PrintRule();
  std::printf("  shape check vs paper: RTT is flat through the non-accountable\n");
  std::printf("  configs, steps up with tamper-evident logging, and jumps once\n");
  std::printf("  per-packet RSA signatures are enabled (4 sign+verify per RTT).\n");
  std::printf("  Batched(k>=8)/async signing cuts the signature step by integer\n");
  std::printf("  factors while keeping every audit verdict identical (see\n");
  std::printf("  batch_sign_test). The 100 ms interactivity bar is never near.\n");
  json.Write();
}

}  // namespace
}  // namespace avm

int main() {
  avm::PrintHeader("Figure 5: median ping round-trip time per configuration",
                   "192us bare -> 525us vm -> 621us rec -> >2ms nosig -> ~5ms rsa768");
  avm::Run();
  return 0;
}
