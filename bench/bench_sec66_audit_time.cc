// §6.6: cost of the syntactic and semantic checks.
//
// Paper (server log covering 2,216 s with 1,987 s of play): compress
// 34.7 s, decompress 13.2 s, syntactic check 6.9 s, semantic check
// 1,977 s -- i.e. the syntactic check is cheap and replay takes about as
// long as the original execution (slightly less, because idle periods
// are skipped).
#include <filesystem>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "src/audit/auditor.h"
#include "src/compress/lzss.h"
#include "src/sim/scenario.h"
#include "src/store/log_store.h"

namespace avm {
namespace {

void Run(BenchJson& json) {
  // The §6.6 breakdown is read back from the obs span aggregates the
  // audit pipeline itself emits, not from bench-local timers — the
  // bench measures exactly what a production scrape would see.
  obs::SetEnabled(true);
  obs::ResetTrace();

  GameScenarioConfig cfg;
  cfg.run = RunConfig::AvmmRsa768();
  cfg.num_players = 3;
  cfg.seed = 66;
  GameScenario game(cfg);
  game.Start();
  WallTimer record_timer;
  game.RunFor(20 * kMicrosPerSecond);
  double record_seconds = record_timer.ElapsedSeconds();
  game.Finish();

  // Audit the machine hosting the game (the server, as in the paper).
  std::vector<Authenticator> auths = game.CollectAuths("server");
  AuditConfig acfg;
  acfg.mem_size = cfg.run.mem_size;
  // The §6.6 reproduction measures the paper's sequential audit; the
  // threads sweep below is where parallelism is measured.
  acfg.threads = 1;
  Auditor auditor("auditor", &game.registry(), acfg);

  LogSegment seg = game.server().log().Extract(1, game.server().log().LastSeq());
  Bytes raw = seg.Serialize();
  Bytes compressed, decompressed;
  double compress_s = obs::TimeSection("bench.compress", [&] { compressed = LzssCompress(raw); });
  double decompress_s =
      obs::TimeSection("bench.decompress", [&] { decompressed = LzssDecompress(compressed); });

  AuditOutcome audit = auditor.AuditFull(game.server(), game.reference_server_image(), auths);

  const double syn_s = obs::PhaseSeconds(obs::kPhaseAuditSyntactic);
  const double rsa_s = obs::PhaseSeconds(obs::kPhaseAuditRsaVerify);
  const double replay_s = obs::PhaseSeconds(obs::kPhaseAuditReplay);

  std::printf("  game: %d players, %.0f simulated s, recorded in %.2f wall s\n", cfg.num_players,
              static_cast<double>(game.now()) / kMicrosPerSecond, record_seconds);
  std::printf("  server log: %zu entries, %.0f KB raw, %.0f KB compressed\n",
              game.server().log().size(), raw.size() / 1024.0, compressed.size() / 1024.0);
  PrintRule();
  std::printf("  phase breakdown from obs spans (span_us{phase=...}):\n");
  std::printf("  %-26s %7s %10s\n", "phase", "spans", "seconds");
  std::printf("  %-26s %7llu %10.3f\n", "compress log",
              static_cast<unsigned long long>(obs::PhaseCount("bench.compress")), compress_s);
  std::printf("  %-26s %7llu %10.3f\n", "decompress log",
              static_cast<unsigned long long>(obs::PhaseCount("bench.decompress")), decompress_s);
  std::printf("  %-26s %7llu %10.3f\n", "syntactic check",
              static_cast<unsigned long long>(obs::PhaseCount(obs::kPhaseAuditSyntactic)), syn_s);
  std::printf("  %-26s %7llu %10.3f\n", "  of which RSA verify",
              static_cast<unsigned long long>(obs::PhaseCount(obs::kPhaseAuditRsaVerify)), rsa_s);
  std::printf("  %-26s %7llu %10.3f\n", "semantic check (replay)",
              static_cast<unsigned long long>(obs::PhaseCount(obs::kPhaseAuditReplay)), replay_s);
  PrintRule();
  std::printf("  audit result: %s\n", audit.Describe().c_str());
  std::printf("  cross-check vs AuditOutcome timers: syntactic %.3f/%.3f, semantic %.3f/%.3f\n",
              syn_s, audit.syntactic_seconds, replay_s, audit.semantic_seconds);
  std::printf("  semantic / syntactic ratio: %.0fx (paper: ~287x)\n",
              replay_s / std::max(syn_s, 1e-9));
  std::printf("  replay / original-recording ratio: %.2fx (paper: ~0.89x, replay skips idle)\n",
              replay_s / record_seconds);
  std::printf("  shape check vs paper: syntactic is orders of magnitude cheaper than\n");
  std::printf("  semantic; replay cost is on the order of the original execution.\n");
  std::printf("  (note: recording here drives 4 machines, replay just 1, so the\n");
  std::printf("   replay/record ratio lands below 1 for that reason too.)\n");

  json.Add("phase_compress_s", compress_s, "s");
  json.Add("phase_decompress_s", decompress_s, "s");
  json.Add("phase_syntactic_s", syn_s, "s");
  json.Add("phase_rsa_verify_s", rsa_s, "s");
  json.Add("phase_replay_s", replay_s, "s");
  json.Add("semantic_syntactic_ratio", replay_s / std::max(syn_s, 1e-9), "x");

  // The semantic check re-run per replay tier: the JIT (the default
  // AuditFull path above) vs the decoded-cache interpreter. The verdict
  // must match in both — only the wall clock moves.
  PrintRule();
  std::printf("  semantic check by replay tier (same server log):\n");
  double tier_s[2] = {0, 0};
  bool tier_ok[2] = {false, false};
  for (int jit_on = 0; jit_on < 2; jit_on++) {
    StreamingReplayer r(game.reference_server_image(), cfg.run.mem_size);
    r.mutable_machine().set_jit_enabled(jit_on != 0);
    WallTimer t;
    r.Feed(seg.entries);
    ReplayResult res = r.Finish();
    tier_s[jit_on] = t.ElapsedSeconds();
    tier_ok[jit_on] = res.ok;
    std::printf("  %-26s %10.3f s  (%s)\n", jit_on ? "replay with jit" : "replay interpreter",
                tier_s[jit_on], res.ok ? "PASS" : "FAIL");
  }
  std::printf("  audit-time jit speedup: %.2fx, verdicts identical: %s\n",
              tier_s[0] / std::max(tier_s[1], 1e-9),
              tier_ok[0] == tier_ok[1] ? "yes" : "NO (BUG)");
  json.Add("phase_replay_interp_s", tier_s[0], "s");
  json.Add("phase_replay_jit_s", tier_s[1], "s");
  json.Add("audit_replay_jit_speedup", tier_s[0] / std::max(tier_s[1], 1e-9), "x");
}

// Beyond the paper: audit-time scale-out across cores. The syntactic
// check fans its RSA verifications across AuditConfig::threads, and
// independent spot-check windows replay concurrently (SpotCheckMany).
// threads=1 is the exact sequential path, so the speedup column is an
// apples-to-apples comparison; on a single-core host it stays ~1x.
void RunParallel() {
  KvScenarioConfig cfg;
  cfg.run = RunConfig::AvmmRsa768();
  cfg.seed = 66;
  cfg.snapshot_interval = 5 * kMicrosPerSecond;
  cfg.client.op_period_us = 20 * kMicrosPerMilli;
  KvScenario kv(cfg);
  kv.Start();
  kv.RunFor(60 * kMicrosPerSecond);
  kv.Finish();

  std::vector<Authenticator> auths = kv.CollectAuthsForServer();
  std::vector<SnapshotIndexEntry> snaps = IndexSnapshots(kv.server().log());
  std::vector<std::pair<uint64_t, uint64_t>> windows;
  for (size_t i = 0; i + 1 < snaps.size(); i++) {
    windows.emplace_back(snaps[i].meta.snapshot_id, snaps[i + 1].meta.snapshot_id);
  }
  std::printf("\n");
  PrintRule();
  std::printf("  parallel audit: %zu spot-check windows, syntactic + replay per window\n",
              windows.size());
  std::printf("  %-10s %12s %12s %10s\n", "threads", "full-syn s", "windows s", "verdicts");

  double base_syn = 0, base_win = 0;
  for (unsigned threads : {1u, 4u}) {
    AuditConfig acfg;
    acfg.mem_size = cfg.run.mem_size;
    acfg.threads = threads;
    // This section measures the syntactic fan-out in isolation; the
    // syntactic/semantic overlap is RunPipelined's subject below.
    acfg.pipelined = false;
    Auditor auditor("client", &kv.registry(), acfg);

    AuditOutcome full = auditor.AuditFull(kv.server(), kv.reference_server_image(), auths);
    double syn_s = full.syntactic_seconds;

    WallTimer win_t;
    std::vector<AuditOutcome> outs = auditor.SpotCheckMany(kv.server(), windows, auths);
    double win_s = win_t.ElapsedSeconds();

    size_t passed = 0;
    for (const AuditOutcome& o : outs) {
      passed += o.ok ? 1 : 0;
    }
    if (threads == 1) {
      base_syn = syn_s;
      base_win = win_s;
      std::printf("  %-10u %12.3f %12.3f %7zu/%zu\n", threads, syn_s, win_s, passed, outs.size());
    } else {
      std::printf("  %-10u %12.3f %12.3f %7zu/%zu   (%.2fx / %.2fx vs threads=1)\n", threads,
                  syn_s, win_s, passed, outs.size(), base_syn / std::max(syn_s, 1e-9),
                  base_win / std::max(win_s, 1e-9));
    }
  }
}

// Beyond the paper: the pipelined audit. With AuditConfig::pipelined the
// syntactic check (hashing + RSA) of chunk i+1 overlaps the replay of
// chunk i on the worker pool, so full-audit wall clock approaches
// max(syntactic, semantic) instead of their sum. Verdicts are identical
// in both modes (pipeline_audit_test asserts this bit-for-bit); on a
// single-core host the speedup column stays ~1x.
void RunPipelined(BenchJson& json) {
  namespace fs = std::filesystem;
  KvScenarioConfig cfg;
  cfg.run = RunConfig::AvmmRsa768();
  cfg.seed = 66;
  cfg.snapshot_interval = 5 * kMicrosPerSecond;
  cfg.client.op_period_us = 20 * kMicrosPerMilli;
  KvScenario kv(cfg);
  kv.Start();
  std::string dir = (fs::temp_directory_path() / "avm_bench_sec66_store").string();
  fs::remove_all(dir);
  LogStoreOptions opts;
  opts.seal_threshold_bytes = 64 * 1024;
  opts.sync = false;
  auto store = LogStore::Open(dir, "kvserver", opts);
  kv.server().SpillTo(store.get());
  kv.RunFor(30 * kMicrosPerSecond);
  kv.Finish();
  kv.server().log().SetSink(nullptr);
  store->Seal();

  std::vector<Authenticator> auths = kv.CollectAuthsForServer();
  std::printf("\n");
  PrintRule();
  std::printf("  pipelined full audit: store-backed log, %zu sealed segments\n",
              store->SealedCount());
  std::printf("  %-26s %12s %12s\n", "mode", "wall s", "verdict");
  double wall[2] = {0, 0};
  std::string verdicts[2];
  for (int pipelined = 0; pipelined < 2; pipelined++) {
    AuditConfig acfg;
    acfg.mem_size = cfg.run.mem_size;
    acfg.threads = 2;
    acfg.pipelined = pipelined != 0;
    Auditor auditor("client", &kv.registry(), acfg);
    WallTimer t;
    AuditOutcome out = auditor.AuditFull(kv.server(), *store, kv.reference_server_image(), auths);
    wall[pipelined] = t.ElapsedSeconds();
    verdicts[pipelined] = out.Describe();
    std::printf("  %-26s %12.3f %12s\n",
                pipelined ? "pipelined (threads=2)" : "sequential (threads=2)", wall[pipelined],
                out.ok ? "PASS" : "FAIL");
  }
  std::printf("  verdicts identical: %s; pipelined speedup %.2fx\n",
              verdicts[0] == verdicts[1] ? "yes" : "NO (BUG)", wall[0] / wall[1]);
  json.Add("audit_full_sequential_s", wall[0], "s");
  json.Add("audit_full_pipelined_s", wall[1], "s");
  json.Add("audit_pipeline_speedup", wall[0] / wall[1], "x");
  json.Add("audit_verdicts_identical", verdicts[0] == verdicts[1] ? 1 : 0, "bool");
  fs::remove_all(dir);
}

}  // namespace
}  // namespace avm

int main() {
  avm::PrintHeader("Section 6.6: syntactic vs semantic check cost",
                   "compress 34.7s / decompress 13.2s / syntactic 6.9s / semantic 1977s");
  avm::PrintScaleNote();
  avm::BenchJson json("sec66_audit_time");
  json.EmbedObsSnapshot();
  avm::Run(json);
  avm::RunParallel();
  avm::RunPipelined(json);
  return 0;
}
