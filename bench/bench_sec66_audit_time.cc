// §6.6: cost of the syntactic and semantic checks.
//
// Paper (server log covering 2,216 s with 1,987 s of play): compress
// 34.7 s, decompress 13.2 s, syntactic check 6.9 s, semantic check
// 1,977 s -- i.e. the syntactic check is cheap and replay takes about as
// long as the original execution (slightly less, because idle periods
// are skipped).
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "src/audit/auditor.h"
#include "src/compress/lzss.h"
#include "src/sim/scenario.h"

namespace avm {
namespace {

void Run() {
  GameScenarioConfig cfg;
  cfg.run = RunConfig::AvmmRsa768();
  cfg.num_players = 3;
  cfg.seed = 66;
  GameScenario game(cfg);
  game.Start();
  WallTimer record_timer;
  game.RunFor(20 * kMicrosPerSecond);
  double record_seconds = record_timer.ElapsedSeconds();
  game.Finish();

  // Audit the machine hosting the game (the server, as in the paper).
  std::vector<Authenticator> auths = game.CollectAuths("server");
  AuditConfig acfg;
  acfg.mem_size = cfg.run.mem_size;
  // The §6.6 reproduction measures the paper's sequential audit; the
  // threads sweep below is where parallelism is measured.
  acfg.threads = 1;
  Auditor auditor("auditor", &game.registry(), acfg);

  LogSegment seg = game.server().log().Extract(1, game.server().log().LastSeq());
  Bytes raw = seg.Serialize();
  WallTimer t;
  Bytes compressed = LzssCompress(raw);
  double compress_s = t.ElapsedSeconds();
  t.Reset();
  Bytes decompressed = LzssDecompress(compressed);
  double decompress_s = t.ElapsedSeconds();

  AuditOutcome audit = auditor.AuditFull(game.server(), game.reference_server_image(), auths);

  std::printf("  game: %d players, %.0f simulated s, recorded in %.2f wall s\n", cfg.num_players,
              static_cast<double>(game.now()) / kMicrosPerSecond, record_seconds);
  std::printf("  server log: %zu entries, %.0f KB raw, %.0f KB compressed\n",
              game.server().log().size(), raw.size() / 1024.0, compressed.size() / 1024.0);
  PrintRule();
  std::printf("  %-22s %10s\n", "phase", "seconds");
  std::printf("  %-22s %10.3f\n", "compress log", compress_s);
  std::printf("  %-22s %10.3f\n", "decompress log", decompress_s);
  std::printf("  %-22s %10.3f\n", "syntactic check", audit.syntactic_seconds);
  std::printf("  %-22s %10.3f\n", "semantic check (replay)", audit.semantic_seconds);
  PrintRule();
  std::printf("  audit result: %s\n", audit.Describe().c_str());
  std::printf("  semantic / syntactic ratio: %.0fx (paper: ~287x)\n",
              audit.semantic_seconds / std::max(audit.syntactic_seconds, 1e-9));
  std::printf("  replay / original-recording ratio: %.2fx (paper: ~0.89x, replay skips idle)\n",
              audit.semantic_seconds / record_seconds);
  std::printf("  shape check vs paper: syntactic is orders of magnitude cheaper than\n");
  std::printf("  semantic; replay cost is on the order of the original execution.\n");
  std::printf("  (note: recording here drives 4 machines, replay just 1, so the\n");
  std::printf("   replay/record ratio lands below 1 for that reason too.)\n");
}

// Beyond the paper: audit-time scale-out across cores. The syntactic
// check fans its RSA verifications across AuditConfig::threads, and
// independent spot-check windows replay concurrently (SpotCheckMany).
// threads=1 is the exact sequential path, so the speedup column is an
// apples-to-apples comparison; on a single-core host it stays ~1x.
void RunParallel() {
  KvScenarioConfig cfg;
  cfg.run = RunConfig::AvmmRsa768();
  cfg.seed = 66;
  cfg.snapshot_interval = 5 * kMicrosPerSecond;
  cfg.client.op_period_us = 20 * kMicrosPerMilli;
  KvScenario kv(cfg);
  kv.Start();
  kv.RunFor(60 * kMicrosPerSecond);
  kv.Finish();

  std::vector<Authenticator> auths = kv.CollectAuthsForServer();
  std::vector<SnapshotIndexEntry> snaps = IndexSnapshots(kv.server().log());
  std::vector<std::pair<uint64_t, uint64_t>> windows;
  for (size_t i = 0; i + 1 < snaps.size(); i++) {
    windows.emplace_back(snaps[i].meta.snapshot_id, snaps[i + 1].meta.snapshot_id);
  }
  std::printf("\n");
  PrintRule();
  std::printf("  parallel audit: %zu spot-check windows, syntactic + replay per window\n",
              windows.size());
  std::printf("  %-10s %12s %12s %10s\n", "threads", "full-syn s", "windows s", "verdicts");

  double base_syn = 0, base_win = 0;
  for (unsigned threads : {1u, 4u}) {
    AuditConfig acfg;
    acfg.mem_size = cfg.run.mem_size;
    acfg.threads = threads;
    Auditor auditor("client", &kv.registry(), acfg);

    AuditOutcome full = auditor.AuditFull(kv.server(), kv.reference_server_image(), auths);
    double syn_s = full.syntactic_seconds;

    WallTimer win_t;
    std::vector<AuditOutcome> outs = auditor.SpotCheckMany(kv.server(), windows, auths);
    double win_s = win_t.ElapsedSeconds();

    size_t passed = 0;
    for (const AuditOutcome& o : outs) {
      passed += o.ok ? 1 : 0;
    }
    if (threads == 1) {
      base_syn = syn_s;
      base_win = win_s;
      std::printf("  %-10u %12.3f %12.3f %7zu/%zu\n", threads, syn_s, win_s, passed, outs.size());
    } else {
      std::printf("  %-10u %12.3f %12.3f %7zu/%zu   (%.2fx / %.2fx vs threads=1)\n", threads,
                  syn_s, win_s, passed, outs.size(), base_syn / std::max(syn_s, 1e-9),
                  base_win / std::max(win_s, 1e-9));
    }
  }
}

}  // namespace
}  // namespace avm

int main() {
  avm::PrintHeader("Section 6.6: syntactic vs semantic check cost",
                   "compress 34.7s / decompress 13.2s / syntactic 6.9s / semantic 1977s");
  avm::PrintScaleNote();
  avm::Run();
  avm::RunParallel();
  return 0;
}
