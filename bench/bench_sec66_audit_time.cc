// §6.6: cost of the syntactic and semantic checks.
//
// Paper (server log covering 2,216 s with 1,987 s of play): compress
// 34.7 s, decompress 13.2 s, syntactic check 6.9 s, semantic check
// 1,977 s -- i.e. the syntactic check is cheap and replay takes about as
// long as the original execution (slightly less, because idle periods
// are skipped).
#include "bench/bench_common.h"
#include "src/audit/auditor.h"
#include "src/compress/lzss.h"
#include "src/sim/scenario.h"

namespace avm {
namespace {

void Run() {
  GameScenarioConfig cfg;
  cfg.run = RunConfig::AvmmRsa768();
  cfg.num_players = 3;
  cfg.seed = 66;
  GameScenario game(cfg);
  game.Start();
  WallTimer record_timer;
  game.RunFor(20 * kMicrosPerSecond);
  double record_seconds = record_timer.ElapsedSeconds();
  game.Finish();

  // Audit the machine hosting the game (the server, as in the paper).
  std::vector<Authenticator> auths = game.CollectAuths("server");
  AuditConfig acfg;
  acfg.mem_size = cfg.run.mem_size;
  Auditor auditor("auditor", &game.registry(), acfg);

  LogSegment seg = game.server().log().Extract(1, game.server().log().LastSeq());
  Bytes raw = seg.Serialize();
  WallTimer t;
  Bytes compressed = LzssCompress(raw);
  double compress_s = t.ElapsedSeconds();
  t.Reset();
  Bytes decompressed = LzssDecompress(compressed);
  double decompress_s = t.ElapsedSeconds();

  AuditOutcome audit = auditor.AuditFull(game.server(), game.reference_server_image(), auths);

  std::printf("  game: %d players, %.0f simulated s, recorded in %.2f wall s\n", cfg.num_players,
              static_cast<double>(game.now()) / kMicrosPerSecond, record_seconds);
  std::printf("  server log: %zu entries, %.0f KB raw, %.0f KB compressed\n",
              game.server().log().size(), raw.size() / 1024.0, compressed.size() / 1024.0);
  PrintRule();
  std::printf("  %-22s %10s\n", "phase", "seconds");
  std::printf("  %-22s %10.3f\n", "compress log", compress_s);
  std::printf("  %-22s %10.3f\n", "decompress log", decompress_s);
  std::printf("  %-22s %10.3f\n", "syntactic check", audit.syntactic_seconds);
  std::printf("  %-22s %10.3f\n", "semantic check (replay)", audit.semantic_seconds);
  PrintRule();
  std::printf("  audit result: %s\n", audit.Describe().c_str());
  std::printf("  semantic / syntactic ratio: %.0fx (paper: ~287x)\n",
              audit.semantic_seconds / std::max(audit.syntactic_seconds, 1e-9));
  std::printf("  replay / original-recording ratio: %.2fx (paper: ~0.89x, replay skips idle)\n",
              audit.semantic_seconds / record_seconds);
  std::printf("  shape check vs paper: syntactic is orders of magnitude cheaper than\n");
  std::printf("  semantic; replay cost is on the order of the original execution.\n");
  std::printf("  (note: recording here drives 4 machines, replay just 1, so the\n");
  std::printf("   replay/record ratio lands below 1 for that reason too.)\n");
}

}  // namespace
}  // namespace avm

int main() {
  avm::PrintHeader("Section 6.6: syntactic vs semantic check cost",
                   "compress 34.7s / decompress 13.2s / syntactic 6.9s / semantic 1977s");
  avm::PrintScaleNote();
  avm::Run();
  return 0;
}
