// Log store I/O: append/seal/extract throughput and on-disk footprint.
//
// Figure 3 measures the AVMM log in memory (~2.6 MB/min for the game
// workload); §6.4 notes the log compresses well because most of it is
// near-regular TimeTracker entries. This bench records a real game log,
// pushes it through the durable store, and reports (a) sustained append
// and seal throughput, (b) on-disk bytes per entry -- sealed+LZSS vs.
// raw -- against the in-memory WireSize baseline, and (c) range
// extraction cost from disk vs. from memory.
#include <algorithm>
#include <atomic>
#include <filesystem>
#include <thread>

#include "bench/bench_common.h"
#include "src/sim/scenario.h"
#include "src/store/log_store.h"
#include "src/util/clock.h"
#include "src/util/prng.h"

namespace fs = std::filesystem;

namespace avm {
namespace {

std::unique_ptr<LogStore> FreshStore(const std::string& dir, const NodeId& node, bool compress) {
  fs::remove_all(dir);
  LogStoreOptions opts;
  opts.seal_threshold_bytes = 1u << 20;
  opts.compress_sealed = compress;
  opts.sync = false;  // Measure the store, not the disk cache flush.
  return LogStore::Open(dir, node, opts);
}

// Sustained append under a concurrent auditor: appends the whole log
// while a reader thread continuously extracts windows (the mid-audit
// case the v2 tiers are built for). Returns MB/s of wire data appended,
// including the final group commit but not the shutdown Seal().
double SustainedAppend(const TamperEvidentLog& log, const std::string& dir,
                       LogStoreOptions opts) {
  fs::remove_all(dir);
  auto store = LogStore::Open(dir, log.owner(), opts);
  std::atomic<bool> done{false};
  std::thread auditor([&] {
    Prng rng(29);
    while (!done.load(std::memory_order_acquire)) {
      uint64_t last = store->LastSeq();
      if (last < 2) {
        std::this_thread::yield();
        continue;
      }
      uint64_t len = std::min<uint64_t>(512, last);
      uint64_t from = 1 + rng.Below(last - len + 1);
      (void)store->Extract(from, from + len - 1);
    }
  });
  WallTimer timer;
  for (const LogEntry& e : log.entries()) {
    store->Append(e);
  }
  store->Flush();
  double secs = timer.ElapsedSeconds();
  done.store(true, std::memory_order_release);
  auditor.join();
  store->Seal();
  fs::remove_all(dir);
  return (log.TotalWireSize() / (1024.0 * 1024.0)) / secs;
}

void Run() {
  BenchJson json("store_io");
  json.EmbedObsSnapshot();
  // Record a 3-player game: the same workload Figure 3 measures.
  GameScenarioConfig cfg;
  cfg.run = RunConfig::AvmmRsa768();
  cfg.num_players = 3;
  cfg.seed = 13;
  GameScenario game(cfg);
  game.Start();
  game.RunFor(20 * kMicrosPerSecond);
  game.Finish();

  const TamperEvidentLog& log = game.player(0).log();
  size_t n = log.size();
  double wire_mb = log.TotalWireSize() / (1024.0 * 1024.0);
  std::printf("  workload: %zu entries, %.2f MB wire size (%.1f bytes/entry in memory)\n\n", n,
              wire_mb, static_cast<double>(log.TotalWireSize()) / n);

  std::string base = (fs::temp_directory_path() / "avm_bench_store").string();
  std::printf("  %-26s %12s %12s %14s\n", "store", "append MB/s", "entries/s", "disk B/entry");
  for (bool compress : {false, true}) {
    auto store = FreshStore(base + (compress ? "-lzss" : "-raw"), log.owner(), compress);
    WallTimer append_timer;
    for (const LogEntry& e : log.entries()) {
      store->Append(e);
    }
    store->Seal();
    double secs = append_timer.ElapsedSeconds();
    std::printf("  %-26s %12.1f %12.0f %14.1f\n",
                compress ? "sealed + LZSS (default)" : "sealed, uncompressed", wire_mb / secs,
                n / secs, static_cast<double>(store->DiskBytes()) / n);
    json.Add(compress ? "append_seal_lzss" : "append_seal_raw", wire_mb / secs, "MB/s");
    json.Add(compress ? "disk_bytes_per_entry_lzss" : "disk_bytes_per_entry_raw",
             static_cast<double>(store->DiskBytes()) / n, "bytes");
  }

  // The v2 headline: sustained append with a concurrent audit reader.
  // Baseline = synchronous seal (inline LZSS on the recording thread)
  // with a commit per append; v2 = background sealer pool + batched
  // group commit. Same entries, same durability surrogate (fflush).
  LogStoreOptions sync_seal;
  sync_seal.seal_threshold_bytes = 1u << 18;
  sync_seal.sync = false;
  sync_seal.sealer_threads = 0;
  sync_seal.group_commit.max_entries = 1;  // Commit every append: v1 shape.
  LogStoreOptions v2 = sync_seal;
  v2.sealer_threads = 2;
  v2.group_commit = GroupCommitPolicy{};  // Batched: {256 KiB, 256, 20 ms}.
  double base_mbs = SustainedAppend(log, base + "-sustained-base", sync_seal);
  double v2_mbs = SustainedAppend(log, base + "-sustained-v2", v2);
  std::printf("\n  sustained append + concurrent audit reader:\n");
  std::printf("  %-40s %10.1f MB/s\n", "synchronous seal, commit/append", base_mbs);
  std::printf("  %-40s %10.1f MB/s  (%.1fx)\n", "v2: sealer pool + group commit", v2_mbs,
              v2_mbs / base_mbs);
  json.Add("sustained_append_sync_seal", base_mbs, "MB/s");
  json.Add("sustained_append_v2", v2_mbs, "MB/s");
  json.Add("sustained_append_speedup", v2_mbs / base_mbs, "x");

  // Extraction: whole-log and 1000-entry windows, disk vs. memory.
  auto store = LogStore::Open(base + "-lzss");
  LogSegment seg_disk, seg_mem;
  double full_disk_s = obs::TimeSection(
      "bench.extract_disk", [&] { seg_disk = store->Extract(1, store->LastSeq()); });
  double full_mem_s =
      obs::TimeSection("bench.extract_mem", [&] { seg_mem = log.Extract(1, log.LastSeq()); });
  std::printf("\n  full extract (%zu entries): disk %.3fs, memory %.3fs (match: %s)\n",
              seg_disk.entries.size(), full_disk_s, full_mem_s,
              seg_disk.Serialize() == seg_mem.Serialize() ? "yes" : "NO");

  Prng rng(7);
  constexpr int kWindows = 50;
  const uint64_t kWindowLen = std::min<uint64_t>(1000, log.LastSeq());
  WallTimer win_disk;
  for (int i = 0; i < kWindows; i++) {
    uint64_t from = 1 + rng.Below(log.LastSeq() - kWindowLen + 1);
    (void)store->Extract(from, from + kWindowLen - 1);
  }
  double win_disk_s = win_disk.ElapsedSeconds();
  std::printf("  %d x %llu-entry windows from disk: %.1f ms/window (sparse index + one\n"
              "  segment decompressed per window; memory stays O(segment))\n",
              kWindows, static_cast<unsigned long long>(kWindowLen),
              1000.0 * win_disk_s / kWindows);

  json.Add("extract_full_disk", full_disk_s, "s");
  json.Add("extract_window_ms", 1000.0 * win_disk_s / kWindows, "ms");

  // Telemetry on/off: the full append+seal path must lay down
  // bit-identical bytes on disk and stay under the <2% overhead budget
  // CI asserts on telemetry_overhead_pct (store spans fire per group
  // commit / per seal, never per entry).
  constexpr int kObsReps = 3;
  double sweep_best[2] = {1e99, 1e99};
  uint64_t sweep_disk[2] = {0, 0};
  for (int on = 0; on < 2; on++) {
    obs::SetEnabled(on != 0);
    obs::ResetTrace();
    for (int rep = 0; rep < kObsReps; rep++) {
      auto s2 = FreshStore(base + "-obs", log.owner(), true);
      WallTimer t;
      for (const LogEntry& e : log.entries()) {
        s2->Append(e);
      }
      s2->Seal();
      sweep_best[on] = std::min(sweep_best[on], t.ElapsedSeconds());
      sweep_disk[on] = s2->DiskBytes();
    }
  }
  obs::SetEnabled(false);
  const bool disk_identical = sweep_disk[0] == sweep_disk[1];
  const double overhead_pct = 100.0 * (sweep_best[1] - sweep_best[0]) / sweep_best[0];
  std::printf("\n  telemetry overhead (append+seal, min of %d): off %.3fs, on %.3fs (%+.2f%%)\n",
              kObsReps, sweep_best[0], sweep_best[1], overhead_pct);
  std::printf("  disk bytes identical with telemetry on: %s (%llu bytes)\n",
              disk_identical ? "yes" : "NO (BUG)",
              static_cast<unsigned long long>(sweep_disk[0]));
  json.Add("telemetry_overhead_pct", overhead_pct, "%");
  json.Add("telemetry_disk_identical", disk_identical ? 1 : 0, "bool");

  fs::remove_all(base + "-raw");
  fs::remove_all(base + "-lzss");
  fs::remove_all(base + "-obs");
}

}  // namespace
}  // namespace avm

int main() {
  avm::PrintHeader("Log store I/O: durable segments for the Figure 3 log",
                   "log grows ~MB/min and compresses well (§6.4); the store must keep up");
  avm::PrintScaleNote();
  avm::Run();
  return 0;
}
