// Figure 3: growth of the AVMM log, and the equivalent plain-VMM log,
// while playing the game.
//
// Paper: the log grows slowly while players join, then steadily during
// play (~8 MB/min); the AVMM log is larger than the equivalent VMware log
// by the tamper-evident overhead.
//
// Here a 3-player avmm-rsa768 game runs for 60 simulated seconds and both
// curves are sampled; the join phase is modeled by the players starting
// their input streams ~2s in.
#include "bench/bench_common.h"
#include "src/sim/scenario.h"

namespace avm {
namespace {

void Run() {
  GameScenarioConfig cfg;
  cfg.run = RunConfig::AvmmRsa768();
  cfg.num_players = 3;
  cfg.seed = 3;
  GameScenario game(cfg);
  game.Start();

  std::printf("  %-8s %14s %18s\n", "t (s)", "AVMM log (KB)", "plain-VMM log (KB)");
  const Avmm& p1 = game.player(0);
  SimTime step = 4 * kMicrosPerSecond;
  uint64_t prev_avmm = 0;
  for (int i = 1; i <= 15; i++) {
    game.RunFor(step);
    uint64_t avmm_bytes = p1.log().TotalWireSize();
    uint64_t plain_bytes = p1.vmware_equiv_bytes();
    std::printf("  %-8.0f %14.1f %18.1f\n", static_cast<double>(game.now()) / kMicrosPerSecond,
                avmm_bytes / 1024.0, plain_bytes / 1024.0);
    prev_avmm = avmm_bytes;
  }
  game.Finish();

  double secs = static_cast<double>(game.now()) / kMicrosPerSecond;
  double rate_avmm = prev_avmm / 1024.0 / (secs / 60.0);
  double rate_plain = game.player(0).vmware_equiv_bytes() / 1024.0 / (secs / 60.0);
  PrintRule();
  std::printf("  steady growth: AVMM %.1f KB/min, plain VMM %.1f KB/min\n", rate_avmm, rate_plain);
  std::printf("  tamper-evident overhead: %.1f%% larger than the plain log\n",
              100.0 * (rate_avmm - rate_plain) / rate_plain);
  std::printf("  shape check vs paper: both curves grow linearly during play and the\n");
  std::printf("  AVMM curve lies strictly above the plain-VMM curve.\n");
}

}  // namespace
}  // namespace avm

int main() {
  avm::PrintHeader("Figure 3: log growth during a 3-player game (avmm-rsa768)",
                   "linear growth ~8 MB/min; AVMM log > equivalent VMware log");
  avm::PrintScaleNote();
  avm::Run();
  return 0;
}
