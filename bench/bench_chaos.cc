// Chaos bench: what the injected faults *cost* the hardened audit
// service, in numbers the robustness story can cite.
//
// Two measurements:
//   (a) throughput degradation — the same fleet of auditees is fully
//       audited twice, once clean and once under an audit-seam fault
//       plan (worker deaths on first attempts + slow-peer stalls); the
//       retry machinery must converge on identical verdicts, and the
//       entries/s delta is the price of the chaos;
//   (b) recovery time — one auditee's store is poisoned at the first
//       checkpoint capture (injected fsync failure); the job wall time
//       including retry + recover_source reopen, against the same job
//       on a healthy store, is the cost of one self-healing cycle.
//
// Everything derives from one root seed (kSeed), so a surprising
// number reproduces exactly.
#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/audit/checkpoint.h"
#include "src/audit/fleet.h"
#include "src/chaos/fault_plan.h"
#include "src/sim/scenario.h"
#include "src/store/log_store.h"

namespace avm {
namespace {

namespace fs = std::filesystem;
using chaos::FaultEvent;
using chaos::FaultInjector;
using chaos::FaultPlan;
using chaos::FaultType;

constexpr uint64_t kSeed = 84;

// Registers every auditee of `fleet` with `service` and runs one full
// audit of each; returns the wall seconds and reports verdict health.
double AuditAll(FleetScenario& fleet, FleetAuditService& service, unsigned* verdicts_ok,
                unsigned* jobs_failed) {
  std::map<NodeId, uint64_t> jobs;
  for (FleetScenario::AuditeeRef& a : fleet.Auditees()) {
    FleetAuditService::Registration reg;
    reg.node = a.global_name;
    reg.target = a.avmm;
    reg.source = a.store;
    reg.reference_image = *a.reference_image;
    reg.auths = a.collect_auths();
    reg.registry = a.registry;
    service.RegisterAuditee(std::move(reg));
  }
  WallTimer t;
  for (FleetScenario::AuditeeRef& a : fleet.Auditees()) {
    jobs[a.global_name] = service.SubmitFullAudit(a.global_name);
  }
  service.Drain();
  double wall = t.ElapsedSeconds();
  *verdicts_ok = 0;
  *jobs_failed = 0;
  for (const auto& [node, id] : jobs) {
    std::optional<FleetJobResult> r = service.Result(id);
    if (r.has_value() && !r->job_error && r->outcome.ok) {
      (*verdicts_ok)++;
    }
    if (r.has_value() && r->job_error) {
      (*jobs_failed)++;
    }
  }
  return wall;
}

// (a) Clean vs chaos-ridden fleet audit of the same finished run.
void RunThroughputDegradation(BenchJson& json) {
  FleetScenarioConfig cfg;
  cfg.run = RunConfig::AvmmNoSig();  // Replay-dominated, like §6.6.
  cfg.num_games = 1;
  cfg.players_per_game = 2;
  cfg.num_kv = 1;
  cfg.seed = kSeed;
  cfg.game.client.render_iters = 300;
  FleetScenario fleet(cfg);
  fleet.Start();
  std::string base = (fs::temp_directory_path() / "avm_bench_chaos_fleet").string();
  fs::remove_all(base);
  fleet.SpillLogsTo(base);
  fleet.RunFor(2 * kMicrosPerSecond);
  fleet.Finish();
  const size_t auditees = fleet.Auditees().size();

  AuditConfig acfg;
  acfg.threads = 1;
  acfg.pipelined = false;

  // Baseline: no injector anywhere.
  FleetAuditConfig clean_cfg;
  clean_cfg.workers = 2;
  clean_cfg.audit = acfg;
  FleetAuditService clean(nullptr, clean_cfg);
  unsigned clean_ok = 0, clean_failed = 0;
  double clean_wall = AuditAll(fleet, clean, &clean_ok, &clean_failed);
  const uint64_t entries = clean.stats().entries_scanned;
  double clean_rate = static_cast<double>(entries) / std::max(clean_wall, 1e-9);

  // Chaos: every job's first attempt stalls (slow peer), and two first
  // attempts die outright; the retry policy must absorb all of it.
  FaultPlan plan;
  plan.seed = chaos::DeriveSeed(kSeed, "bench-degradation");
  FaultEvent stall;
  stall.type = FaultType::kAuditSlowPeer;
  stall.when.site = "full-audit";
  stall.when.to_seq = 1;  // First attempts only.
  stall.delay_us = 200 * kMicrosPerMilli;
  plan.Add(stall);
  FaultEvent death;
  death.type = FaultType::kAuditWorkerDeath;
  death.when.site = "full-audit";
  death.when.to_seq = 1;
  death.when.max_fires = 2;
  plan.Add(death);
  FaultInjector injector(plan);

  FleetAuditConfig chaos_cfg;
  chaos_cfg.workers = 2;
  chaos_cfg.audit = acfg;
  chaos_cfg.chaos = &injector;
  chaos_cfg.retry.backoff_initial_us = 2000;
  FleetAuditService chaotic(nullptr, chaos_cfg);
  unsigned chaos_ok = 0, chaos_failed = 0;
  double chaos_wall = AuditAll(fleet, chaotic, &chaos_ok, &chaos_failed);
  double chaos_rate =
      static_cast<double>(chaotic.stats().entries_scanned) / std::max(chaos_wall, 1e-9);
  double degradation_pct = clean_rate <= 0 ? 0 : 100.0 * (1.0 - chaos_rate / clean_rate);

  PrintRule();
  std::printf("  throughput under audit-seam chaos: %zu auditees, root seed %llu\n", auditees,
              static_cast<unsigned long long>(kSeed));
  std::printf("  plan: %s\n", plan.Describe().c_str());
  std::printf("  %-26s %10s %14s %8s %8s\n", "run", "wall s", "entries/s", "ok", "failed");
  std::printf("  %-26s %10.3f %14.0f %8u %8u\n", "clean", clean_wall, clean_rate, clean_ok,
              clean_failed);
  std::printf("  %-26s %10.3f %14.0f %8u %8u   (%llu retries, %llu faults injected)\n",
              "chaos (stalls + deaths)", chaos_wall, chaos_rate, chaos_ok, chaos_failed,
              static_cast<unsigned long long>(chaotic.stats().job_retries),
              static_cast<unsigned long long>(injector.injected_total()));
  std::printf("  degradation: %.1f%%; all verdicts survive: %s\n", degradation_pct,
              (chaos_ok == clean_ok && chaos_failed == 0) ? "yes" : "NO (BUG)");

  json.Add("auditees", static_cast<double>(auditees), "nodes");
  json.Add("clean_entries_per_s", clean_rate, "entries/s");
  json.Add("chaos_entries_per_s", chaos_rate, "entries/s");
  json.Add("throughput_degradation", degradation_pct, "%");
  json.Add("chaos_job_retries", static_cast<double>(chaotic.stats().job_retries), "retries");
  json.Add("chaos_jobs_failed", static_cast<double>(chaos_failed), "jobs");
  json.Add("verdicts_survive_chaos", (chaos_ok == clean_ok && chaos_failed == 0) ? 1 : 0,
           "bool");
  fs::remove_all(base);
}

// (b) Wall time of one self-healing cycle: poisoned store -> failed
// attempt -> backoff -> recover_source reopen -> clean verdict.
void RunRecoveryTime(BenchJson& json) {
  KvScenarioConfig cfg;
  cfg.run = RunConfig::AvmmNoSig();
  cfg.seed = kSeed;
  KvScenario kv(cfg);
  kv.Start();
  std::string dir = (fs::temp_directory_path() / "avm_bench_chaos_recover").string();
  fs::remove_all(dir);
  LogStoreOptions opts;
  opts.sync = false;
  auto store = LogStore::Open(dir, "kvserver", opts);
  kv.server().SpillTo(store.get());
  kv.RunFor(2 * kMicrosPerSecond);
  kv.Finish();
  kv.server().SpillTo(nullptr);
  store->Flush();
  std::vector<Authenticator> auths = kv.CollectAuthsForServer();

  AuditConfig acfg;
  acfg.mem_size = cfg.run.mem_size;
  acfg.threads = 1;
  acfg.pipelined = false;

  auto run_job = [&](FleetAuditService& service, LogStore* src, LogStore* ckpt_store,
                     std::function<RecoveredSource()> recover) {
    FleetAuditService::Registration reg;
    reg.node = "kv/server";
    reg.target = &kv.server();
    reg.source = src;
    reg.reference_image = kv.reference_server_image();
    reg.auths = auths;
    reg.checkpoint_dir = dir;
    reg.checkpoint_store = ckpt_store;
    reg.recover_source = std::move(recover);
    service.RegisterAuditee(std::move(reg));
    WallTimer t;
    uint64_t job = service.SubmitFullAudit("kv/server");
    service.Drain();
    double wall = t.ElapsedSeconds();
    std::optional<FleetJobResult> r = service.Result(job);
    if (!r.has_value() || r->job_error || !r->outcome.ok) {
      std::fprintf(stderr, "  UNEXPECTED JOB FAILURE: %s\n",
                   r.has_value() ? r->error.c_str() : "no result");
    }
    return std::make_pair(wall, r);
  };

  // Healthy-store reference job (checkpoints on, no faults). Remove the
  // planted checkpoint afterwards so both jobs audit from genesis.
  FleetAuditConfig hcfg;
  hcfg.workers = 1;
  hcfg.audit = acfg;
  hcfg.checkpoint.every_entries = 300;
  FleetAuditService healthy(&kv.registry(), hcfg);
  auto [healthy_s, healthy_r] = run_job(healthy, store.get(), store.get(), nullptr);
  fs::remove(fs::path(dir) / AuditCheckpointFileName(hcfg.checkpoint.auditor));

  // Poisoned store: the first checkpoint capture hits an injected fsync
  // failure, which poisons the store until recover_source reopens it.
  store.reset();
  FaultPlan plan;
  plan.seed = chaos::DeriveSeed(kSeed, "bench-recovery");
  FaultEvent poison;
  poison.type = FaultType::kStoreFsyncFail;
  poison.when.site = "aux-write";
  poison.when.node = "kvserver";
  poison.when.max_fires = 1;
  plan.Add(poison);
  FaultInjector injector(plan);
  LogStoreOptions armed;
  armed.sync = false;
  armed.fault_hook = injector.StoreHook("kvserver");
  store = LogStore::Open(dir, armed);

  std::unique_ptr<LogStore> recovered;
  FleetAuditConfig fcfg;
  fcfg.workers = 1;
  fcfg.audit = acfg;
  fcfg.checkpoint.every_entries = 300;
  fcfg.retry.backoff_initial_us = 2000;
  FleetAuditService service(&kv.registry(), fcfg);
  auto [faulted_s, faulted_r] = run_job(service, store.get(), store.get(), [&]() {
    store.reset();
    LogStoreOptions clean;
    clean.sync = false;
    recovered = LogStore::Open(dir, clean);
    RecoveredSource rs;
    rs.source = recovered.get();
    rs.checkpoint_store = recovered.get();
    return rs;
  });
  double overhead_s = faulted_s - healthy_s;
  FleetStats stats = service.stats();

  std::printf("\n");
  PrintRule();
  std::printf("  self-healing cycle: injected fsync failure at the first checkpoint capture\n");
  std::printf("  plan: %s\n", plan.Describe().c_str());
  std::printf("  %-34s %10s %10s\n", "job", "wall s", "attempts");
  std::printf("  %-34s %10.3f %10llu\n", "healthy store", healthy_s,
              static_cast<unsigned long long>(healthy_r ? healthy_r->attempts : 0));
  std::printf("  %-34s %10.3f %10llu\n", "poisoned store + self-heal", faulted_s,
              static_cast<unsigned long long>(faulted_r ? faulted_r->attempts : 0));
  std::printf("  recovery overhead: %.3f s (%llu retry, %llu store reopen)\n", overhead_s,
              static_cast<unsigned long long>(stats.job_retries),
              static_cast<unsigned long long>(stats.store_recoveries));

  json.Add("healthy_job_s", healthy_s, "s");
  json.Add("recovered_job_s", faulted_s, "s");
  json.Add("recovery_overhead_s", overhead_s, "s");
  json.Add("recovery_attempts",
           static_cast<double>(faulted_r ? faulted_r->attempts : 0), "attempts");
  json.Add("store_recoveries", static_cast<double>(stats.store_recoveries), "reopens");
  json.Add("recovered_verdict_ok",
           (faulted_r && !faulted_r->job_error && faulted_r->outcome.ok) ? 1 : 0, "bool");
  store.reset();
  recovered.reset();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace avm

int main() {
  avm::PrintHeader("Chaos engine: audit throughput under faults + self-healing cost",
                   "every composed fault ends in evidence or an honest verdict (§2.2)");
  avm::PrintScaleNote();
  avm::obs::SetEnabled(true);
  avm::obs::ResetTrace();
  avm::BenchJson json("chaos");
  json.EmbedObsSnapshot();
  avm::RunThroughputDegradation(json);
  avm::RunRecoveryTime(json);
  return 0;
}
