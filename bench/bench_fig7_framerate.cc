// Figure 7: frame rate per configuration (uncapped).
//
// Paper: 158 fps on bare hardware, dropping ~13% to 137 fps on the full
// avmm-rsa768 stack; the largest single step is enabling recording in
// VMware (-11%).
//
// Here the game renders frames as fast as the wall clock allows; the
// metric is frames rendered per wall second for each of the three
// machines (two players + the host running the server).
#include "bench/bench_common.h"
#include "src/sim/scenario.h"

namespace avm {
namespace {

void Run() {
  std::printf("  %-14s %12s %12s %12s %10s\n", "config", "server", "player1", "player2",
              "p1 vs bare");
  double bare_fps = 0;
  for (const RunConfig& run : PaperConfigs()) {
    GameScenarioConfig cfg;
    cfg.run = run;
    cfg.num_players = 2;
    cfg.seed = 7;
    // A heavier scene: rendering dominates each frame the way it does on
    // real hardware, so the accountability overhead lands on top of a
    // realistic compute budget rather than a trivial one.
    cfg.client.render_iters = 10000;
    GameScenario game(cfg);
    game.Start();
    WallTimer t;
    game.RunFor(10 * kMicrosPerSecond);
    double wall = t.ElapsedSeconds();
    game.Finish();

    double server_fps = static_cast<double>(game.server().stats().frames_rendered) / wall;
    double p1_fps = static_cast<double>(game.player(0).stats().frames_rendered) / wall;
    double p2_fps = static_cast<double>(game.player(1).stats().frames_rendered) / wall;
    if (run.mode == RunConfig::Mode::kBareHw) {
      bare_fps = p1_fps;
    }
    std::printf("  %-14s %12.0f %12.0f %12.0f %9.1f%%\n", run.Name(), server_fps, p1_fps, p2_fps,
                100.0 * p1_fps / std::max(bare_fps, 1e-9));
  }
  PrintRule();
  std::printf("  shape check vs paper: frame rate declines monotonically from\n");
  std::printf("  bare-hw to avmm-rsa768; recording and signing are the main steps;\n");
  std::printf("  the total drop stays moderate (paper: 13%%).\n");
  std::printf("  (all machines share one wall clock here, so the three columns move\n");
  std::printf("   together; the paper's variation came from scene complexity.)\n");
}

}  // namespace
}  // namespace avm

int main() {
  avm::PrintHeader("Figure 7: uncapped frame rate per configuration",
                   "158 fps bare-hw -> 137 fps avmm-rsa768 (-13%)");
  avm::PrintScaleNote();
  avm::Run();
  return 0;
}
