// Figure 9 + §6.12: efficiency of spot checking.
//
// Paper (MySQL + sql-bench, 75 min, snapshot every 5 min): the time to
// spot-check a k-chunk and the data transferred are roughly proportional
// to k, plus a fixed per-chunk cost for transferring memory/disk
// snapshots and decompressing. Snapshots take ~5 s; incremental disk
// snapshots are 1.9-91 MB while each memory snapshot is a full 530 MB
// dump.
//
// Here the key-value scenario records 60 simulated seconds with a
// snapshot every 5 s (12 segments, mirroring the paper's 15), then all
// k-chunks for k in {1,3,5,9,12} are audited. Chunks starting at the
// very beginning are excluded, exactly as in the paper.
#include <vector>

#include "bench/bench_common.h"
#include "src/audit/auditor.h"
#include "src/sim/scenario.h"

namespace avm {
namespace {

void Run() {
  KvScenarioConfig cfg;
  cfg.run = RunConfig::AvmmRsa768();
  cfg.seed = 9;
  cfg.snapshot_interval = 5 * kMicrosPerSecond;
  cfg.client.op_period_us = 20 * kMicrosPerMilli;
  KvScenario kv(cfg);
  kv.Start();
  kv.RunFor(60 * kMicrosPerSecond);
  kv.Finish();

  std::vector<SnapshotIndexEntry> snaps = IndexSnapshots(kv.server().log());
  std::printf("  recorded %zu snapshots over %.0f simulated s\n", snaps.size(),
              static_cast<double>(kv.now()) / kMicrosPerSecond);

  // §6.12 snapshot characteristics.
  const SnapshotStore& store = kv.server().snapshot_store();
  uint64_t base = store.Get(0).meta.stored_bytes;
  uint64_t min_incr = UINT64_MAX, max_incr = 0;
  for (uint64_t id = 1; id < store.Count(); id++) {
    uint64_t b = store.Get(id).meta.stored_bytes;
    min_incr = std::min(min_incr, b);
    max_incr = std::max(max_incr, b);
  }
  std::printf("  base snapshot (full memory): %.0f KB; increments: %.1f - %.1f KB\n",
              base / 1024.0, min_incr / 1024.0, max_incr / 1024.0);
  std::printf("  (paper: full 530 MB memory dumps vs 1.9-91 MB incremental disk)\n\n");

  std::vector<Authenticator> auths = kv.CollectAuthsForServer();
  Auditor auditor("client", &kv.registry());

  // Full audit baseline for normalization.
  AuditOutcome full = auditor.AuditFull(kv.server(), kv.reference_server_image(), auths);
  if (!full.ok) {
    std::printf("  unexpected: full audit failed: %s\n", full.Describe().c_str());
    return;
  }
  double full_time = full.semantic_seconds;
  double full_data = static_cast<double>(full.log_bytes);

  std::printf("  %-4s %10s %16s %12s %18s\n", "k", "chunks", "replay time %", "data %",
              "(averages, vs full audit)");
  size_t num_segments = snaps.size() - 1;
  for (size_t k : {1u, 3u, 5u, 9u, 12u}) {
    if (k > num_segments) {
      continue;
    }
    double sum_time = 0, sum_data = 0;
    int count = 0;
    // Exclude chunks that start at the beginning of the log, as the
    // paper does (they are atypical: no snapshot transfer, less load).
    for (size_t start = 1; start + k <= num_segments; start++) {
      AuditOutcome audit = auditor.SpotCheck(kv.server(), snaps[start].meta.snapshot_id,
                                             snaps[start + k].meta.snapshot_id, auths);
      if (!audit.ok) {
        std::printf("  unexpected spot-check failure: %s\n", audit.Describe().c_str());
        return;
      }
      sum_time += audit.semantic_seconds;
      sum_data += static_cast<double>(audit.log_bytes + audit.snapshot_bytes);
      count++;
    }
    std::printf("  %-4zu %10d %15.1f%% %11.1f%%\n", k, count, 100.0 * sum_time / count / full_time,
                100.0 * sum_data / count / full_data);
  }
  PrintRule();
  std::printf("  shape check vs paper: both curves grow ~linearly in k with a fixed\n");
  std::printf("  per-chunk offset (snapshot transfer); small chunks cost a small\n");
  std::printf("  fraction of a full audit.\n");
  std::printf("  (data%% can exceed 100%% for large k because spot checks transfer\n");
  std::printf("   snapshot increments the full audit does not need.)\n");
}

}  // namespace
}  // namespace avm

int main() {
  avm::PrintHeader("Figure 9 / Section 6.12: spot-checking efficiency on the KV workload",
                   "cost ~proportional to chunk size + fixed snapshot-transfer cost");
  avm::PrintScaleNote();
  avm::Run();
  return 0;
}
