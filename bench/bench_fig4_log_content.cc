// Figure 4: average log growth by content class, before and after
// compression.
//
// Paper: >70% of the AVMM log is replay information -- TimeTracker 59%,
// MAC-layer 14%, other 27% of that -- with tamper-evident logging
// responsible for the rest; bzip2 + a lossless VMM-specific compressor
// bring 8 MB/min down to 2.47 MB/min.
//
// Here the same game as Figure 3 runs for 30 simulated seconds; entries
// are bucketed by their stream and the log is compressed (a) with the
// generic LZSS stage only and (b) with the VMM-specific preprocessor
// (delta/varint of TimeTracker landmarks and values) in front.
#include <map>

#include "bench/bench_common.h"
#include "src/compress/lzss.h"
#include "src/util/serde.h"
#include "src/sim/scenario.h"
#include "src/vm/trace.h"

namespace avm {
namespace {

// The VMM-specific (application-independent) preprocessing: TimeTracker
// entries are near-arithmetic sequences of (icount, value) pairs, so they
// are split out and delta-encoded; everything else passes through.
Bytes VmmSpecificCompress(const TamperEvidentLog& log) {
  std::vector<uint64_t> tt_icounts, tt_values;
  Writer rest;
  for (const LogEntry& e : log.entries()) {
    if (e.type == EntryType::kTraceTime) {
      TraceEvent ev = TraceEvent::Deserialize(e.content);
      tt_icounts.push_back(ev.icount);
      tt_values.push_back(ev.value);
      continue;
    }
    rest.U64(e.seq);
    rest.U8(static_cast<uint8_t>(e.type));
    rest.Blob(e.content);
  }
  Writer out;
  out.Blob(EncodeDeltaVarint(tt_icounts));
  out.Blob(EncodeDeltaVarint(tt_values));
  out.Blob(rest.bytes());
  return LzssCompress(out.bytes());
}

Bytes SerializeWholeLog(const TamperEvidentLog& log) {
  Writer w;
  for (const LogEntry& e : log.entries()) {
    w.U64(e.seq);
    w.U8(static_cast<uint8_t>(e.type));
    w.Blob(e.content);
    w.Raw(e.hash.view());
  }
  return w.Take();
}

void Run() {
  GameScenarioConfig cfg;
  cfg.run = RunConfig::AvmmRsa768();
  cfg.num_players = 3;
  cfg.seed = 4;
  GameScenario game(cfg);
  game.Start();
  game.RunFor(30 * kMicrosPerSecond);
  game.Finish();

  const TamperEvidentLog& log = game.player(0).log();
  // Replay-information rows are measured the way a plain VMM would store
  // them (content + 13-byte header); everything the tamper-evident layer
  // adds on top (per-entry chain hashes, message/ack/snapshot entries)
  // lands in the "tamper-evident logging" row -- the same accounting as
  // Figure 3's equivalent-plain-log line.
  std::map<EntryType, uint64_t> plain_by_type;
  uint64_t total = 0;
  for (const LogEntry& e : log.entries()) {
    total += e.WireSize();
    if (e.type == EntryType::kTraceTime || e.type == EntryType::kTraceMac ||
        e.type == EntryType::kTraceOther) {
      plain_by_type[e.type] += e.content.size() + 13;
    }
  }

  uint64_t tt = plain_by_type[EntryType::kTraceTime];
  uint64_t mac = plain_by_type[EntryType::kTraceMac];
  uint64_t other = plain_by_type[EntryType::kTraceOther];
  uint64_t replay = tt + mac + other;
  uint64_t tamper = total - replay;

  double minutes = static_cast<double>(game.now()) / kMicrosPerMinute;
  auto row = [&](const char* name, uint64_t b) {
    std::printf("  %-24s %10.1f KB/min   %5.1f%% of log\n", name, b / 1024.0 / minutes,
                100.0 * static_cast<double>(b) / static_cast<double>(total));
  };
  row("TimeTracker", tt);
  row("MAC layer", mac);
  row("other replay info", other);
  row("tamper-evident logging", tamper);
  PrintRule();
  row("total (uncompressed)", total);
  std::printf("\n  replay info share: %.1f%% (paper: >70%%)\n",
              100.0 * static_cast<double>(replay) / static_cast<double>(total));
  std::printf("  TimeTracker share of replay info: %.1f%% (paper: dominant)\n",
              100.0 * static_cast<double>(tt) / static_cast<double>(replay));

  Bytes raw = SerializeWholeLog(log);
  Bytes generic = LzssCompress(raw);
  Bytes vmm = VmmSpecificCompress(log);
  std::printf("\n  compression (player log, %.0f KB raw):\n", raw.size() / 1024.0);
  std::printf("    generic LZSS:                 %8.1f KB  (%.2fx)\n", generic.size() / 1024.0,
              static_cast<double>(raw.size()) / static_cast<double>(generic.size()));
  std::printf("    VMM-specific + LZSS:          %8.1f KB  (%.2fx)\n", vmm.size() / 1024.0,
              static_cast<double>(raw.size()) / static_cast<double>(vmm.size()));
  std::printf("    compressed growth:            %8.1f KB/min (paper: 8 -> 2.47 MB/min)\n",
              vmm.size() / 1024.0 / minutes);
  std::printf("  shape check vs paper: replay info dominates the log; the custom\n");
  std::printf("  VMM-aware stage beats generic compression.\n");
}

}  // namespace
}  // namespace avm

int main() {
  avm::PrintHeader("Figure 4: average log growth by content (avmm-rsa768 game)",
                   "TimeTracker 59% / MAC 14% / other 27% of replay info; compression ~3.2x");
  avm::PrintScaleNote();
  avm::Run();
  return 0;
}
