// Figure 6: CPU utilization split between game execution and the
// accountability machinery.
//
// Paper: the tamper-evident-logging daemon (pinned to one hyperthread)
// stays below 8% while the single-threaded game renders flat out; total
// CPU averages ~12.5% of the 8-hyperthread machine.
//
// Here the equivalent split is the wall time each AVMM spends in guest
// execution vs. trace recording vs. signing/verification vs. snapshots,
// per configuration. The "accountability share" column corresponds to
// the paper's daemon-hyperthread utilization.
#include "bench/bench_common.h"
#include "src/sim/scenario.h"

namespace avm {
namespace {

void Run() {
  std::printf("  %-14s %8s %8s %8s %8s %16s\n", "config", "exec(s)", "rec(s)", "crypto(s)",
              "snap(s)", "accountability%");
  for (const RunConfig& run : PaperConfigs()) {
    GameScenarioConfig cfg;
    cfg.run = run;
    cfg.num_players = 2;
    cfg.seed = 6;
    GameScenario game(cfg);
    game.Start();
    game.RunFor(8 * kMicrosPerSecond);
    game.Finish();

    const Avmm& p = game.player(0);
    double exec = p.exec_seconds();
    double rec = p.record_seconds();
    double crypto = p.crypto_seconds() + game.server().crypto_seconds() * 0;  // Player only.
    double snap = p.snapshot_seconds();
    double overhead = rec + crypto + snap;
    double share = 100.0 * overhead / (exec + overhead);
    std::printf("  %-14s %8.3f %8.3f %8.3f %8.3f %15.1f%%\n", run.Name(), exec, rec, crypto, snap,
                share);
  }
  PrintRule();
  std::printf("  shape check vs paper: guest execution dominates in every config;\n");
  std::printf("  the accountability machinery (the paper's logging daemon, <8%% of\n");
  std::printf("  one hyperthread) stays a small fraction of total CPU, largest in\n");
  std::printf("  avmm-rsa768 where per-packet signatures are added.\n");
}

}  // namespace
}  // namespace avm

int main() {
  avm::PrintHeader("Figure 6: CPU utilization split per configuration",
                   "logging daemon <8% of one HT; machine average ~12.5%");
  avm::PrintScaleNote();
  avm::Run();
  return 0;
}
