// Figure 6: CPU utilization split between game execution and the
// accountability machinery.
//
// Paper: the tamper-evident-logging daemon (pinned to one hyperthread)
// stays below 8% while the single-threaded game renders flat out; total
// CPU averages ~12.5% of the 8-hyperthread machine.
//
// Here the equivalent split is the wall time each AVMM spends in guest
// execution vs. trace recording vs. signing/verification vs. snapshots,
// per configuration. The "accountability share" column corresponds to
// the paper's daemon-hyperthread utilization.
#include <algorithm>

#include "bench/bench_common.h"
#include "src/audit/replayer.h"
#include "src/sim/scenario.h"
#include "src/vm/assembler.h"

namespace avm {
namespace {

void Run() {
  std::printf("  %-14s %8s %8s %8s %8s %16s\n", "config", "exec(s)", "rec(s)", "crypto(s)",
              "snap(s)", "accountability%");
  for (const RunConfig& run : PaperConfigs()) {
    GameScenarioConfig cfg;
    cfg.run = run;
    cfg.num_players = 2;
    cfg.seed = 6;
    GameScenario game(cfg);
    game.Start();
    game.RunFor(8 * kMicrosPerSecond);
    game.Finish();

    const Avmm& p = game.player(0);
    double exec = p.exec_seconds();
    double rec = p.record_seconds();
    double crypto = p.crypto_seconds() + game.server().crypto_seconds() * 0;  // Player only.
    double snap = p.snapshot_seconds();
    double overhead = rec + crypto + snap;
    double share = 100.0 * overhead / (exec + overhead);
    std::printf("  %-14s %8.3f %8.3f %8.3f %8.3f %15.1f%%\n", run.Name(), exec, rec, crypto, snap,
                share);
  }
  PrintRule();
  std::printf("  shape check vs paper: guest execution dominates in every config;\n");
  std::printf("  the accountability machinery (the paper's logging daemon, <8%% of\n");
  std::printf("  one hyperthread) stays a small fraction of total CPU, largest in\n");
  std::printf("  avmm-rsa768 where per-packet signatures are added.\n");
}

// Beyond the paper: single-stream replay throughput, the semantic
// check's fundamental limit (§6.6: replay takes about as long as the
// original execution). Four tiers: "seed dispatch" is the original
// per-word-decode switch loop; "decoded cache" is the pre-decoded
// instruction cache + threaded dispatch; "jit" is the x86-64 dynamic
// binary translator (src/vm/jit) with direct block chaining and the
// static analysis hints off (the plain per-block translator);
// "jit+analysis" adds the src/vm/analysis pass: region fusion across
// direct jumps and liveness-based dead-writeback elimination.
void RunReplaySpeed(BenchJson& json) {
  Bytes image = Assemble(R"(
    movi r1, 0
    movi r2, 7
    la r3, 0x5000
    movi r6, 100
loop:
    addi r1, 1
    mul r2, r1
    xor r2, r1
    sw r2, [r3+0]
    jmp body2          ; Direct-jump trampolines: the shape the
body2:                 ; analysis-guided JIT fuses into one region.
    lw r4, [r3+0]
    add r4, r2
    remu r4, r6
    jmp body3
body3:
    slt r5, r4
    bne r1, r0, loop
    halt
  )");
  constexpr uint64_t kInstructions = 40'000'000;
  PrintRule();
  std::printf("  replayed-instructions/sec (single stream, %llu Minsn mixed ALU/mem/branch)\n",
              static_cast<unsigned long long>(kInstructions / 1'000'000));
  std::printf("  %-22s %10s %10s\n", "tier", "MIPS", "seconds");
  struct Tier {
    const char* name;
    bool icache;
    bool jit;
    bool analysis;
  };
  constexpr Tier kTiers[] = {
      {"seed dispatch", false, false, false},
      {"decoded cache", true, false, false},
      {"jit", true, true, false},
      {"jit+analysis", true, true, true},
  };
  constexpr int kNumTiers = 4;
  double mips[kNumTiers] = {0};
  for (int tier = 0; tier < kNumTiers; tier++) {
    NullBackend backend;
    Machine m(256 * 1024, &backend);
    m.LoadImage(image);
    m.set_decoded_cache_enabled(kTiers[tier].icache);
    m.set_jit_enabled(kTiers[tier].jit);
    m.set_jit_analysis_enabled(kTiers[tier].analysis);
    WallTimer t;
    m.RunUntilIcount(kInstructions);
    double s = t.ElapsedSeconds();
    mips[tier] = kInstructions / s / 1e6;
    std::printf("  %-22s %10.1f %10.3f\n", kTiers[tier].name, mips[tier], s);
  }
  std::printf("  decoded-cache speedup: %.2fx (threaded dispatch compiled in: %s)\n",
              mips[1] / mips[0], Machine::ThreadedDispatchCompiledIn() ? "yes" : "no");
  std::printf("  jit speedup: %.2fx vs decoded cache, %.2fx vs seed (jit compiled in: %s)\n",
              mips[2] / mips[1], mips[2] / mips[0], Machine::JitCompiledIn() ? "yes" : "no");
  std::printf("  analysis-guided jit: %.2fx vs plain jit\n", mips[3] / mips[2]);
  json.Add("replay_mips_seed_dispatch", mips[0], "Minsn/s");
  json.Add("replay_mips_decoded_cache", mips[1], "Minsn/s");
  json.Add("replay_mips_jit", mips[2], "Minsn/s");
  json.Add("replay_mips_jit_analysis", mips[3], "Minsn/s");
  json.Add("replay_dispatch_speedup", mips[1] / mips[0], "x");
  json.Add("replay_jit_vs_threaded_speedup", mips[2] / mips[1], "x");
  json.Add("replay_jit_analysis_speedup", mips[3] / mips[2], "x");

  // The same comparison through the full record->replay loop: a real
  // recorded log, replayed by the auditor's StreamingReplayer.
  GameScenarioConfig cfg;
  cfg.run = RunConfig::AvmmNoSig();
  cfg.num_players = 2;
  cfg.seed = 6;
  GameScenario game(cfg);
  game.Start();
  game.RunFor(4 * kMicrosPerSecond);
  game.Finish();
  LogSegment seg = game.server().log().Extract(1, game.server().log().LastSeq());
  constexpr const char* kAuditNames[kNumTiers] = {"audit replay (seed)", "audit replay (cache)",
                                                  "audit replay (jit)",
                                                  "audit replay (jit+an)"};
  double replay_mips[kNumTiers] = {0};
  for (int tier = 0; tier < kNumTiers; tier++) {
    StreamingReplayer r(game.reference_server_image(), cfg.run.mem_size);
    r.mutable_machine().set_decoded_cache_enabled(kTiers[tier].icache);
    r.mutable_machine().set_jit_enabled(kTiers[tier].jit);
    r.mutable_machine().set_jit_analysis_enabled(kTiers[tier].analysis);
    WallTimer t;
    r.Feed(seg.entries);
    ReplayResult res = r.Finish();
    double s = t.ElapsedSeconds();
    replay_mips[tier] = res.instructions_replayed / s / 1e6;
    std::printf("  %-22s %10.1f %10.3f  (recorded server log, %s)\n", kAuditNames[tier],
                replay_mips[tier], s, res.ok ? "PASS" : "FAIL");
  }
  std::printf("  audit replay speedup: cache %.2fx, jit %.2fx, jit+analysis %.2fx vs seed\n",
              replay_mips[1] / replay_mips[0], replay_mips[2] / replay_mips[0],
              replay_mips[3] / replay_mips[0]);
  json.Add("audit_replay_mips_seed", replay_mips[0], "Minsn/s");
  json.Add("audit_replay_mips_cache", replay_mips[1], "Minsn/s");
  json.Add("audit_replay_mips_jit", replay_mips[2], "Minsn/s");
  json.Add("audit_replay_mips_jit_analysis", replay_mips[3], "Minsn/s");
  json.Add("audit_replay_speedup", replay_mips[1] / replay_mips[0], "x");
  json.Add("audit_replay_jit_speedup", replay_mips[2] / replay_mips[0], "x");
  json.Add("audit_replay_jit_analysis_speedup", replay_mips[3] / replay_mips[0], "x");
}

// Telemetry must be free when off and near-free when on: the same
// recording run with obs disabled vs enabled must produce a
// bit-identical serialized log (verdict/wire equivalence) and stay
// under the <2% overhead budget CI asserts on telemetry_overhead_pct.
void RunTelemetryOverhead(BenchJson& json) {
  constexpr int kReps = 3;
  PrintRule();
  std::printf("  telemetry overhead: identical recording run, obs off vs on (min of %d)\n",
              kReps);
  auto run_once = [&](bool on, Bytes* wire) {
    obs::SetEnabled(on);
    obs::ResetTrace();
    GameScenarioConfig cfg;
    cfg.run = RunConfig::AvmmRsa768();
    cfg.num_players = 2;
    cfg.seed = 6;
    GameScenario game(cfg);
    game.Start();
    WallTimer t;
    game.RunFor(4 * kMicrosPerSecond);
    double s = t.ElapsedSeconds();
    game.Finish();
    LogSegment seg = game.server().log().Extract(1, game.server().log().LastSeq());
    *wire = seg.Serialize();
    return s;
  };
  double best[2] = {1e99, 1e99};
  Bytes wire[2];
  for (int on = 0; on < 2; on++) {
    for (int rep = 0; rep < kReps; rep++) {
      Bytes w;
      best[on] = std::min(best[on], run_once(on != 0, &w));
      wire[on] = std::move(w);
    }
  }
  obs::SetEnabled(false);
  const bool identical = wire[0] == wire[1];
  const double pct = 100.0 * (best[1] - best[0]) / best[0];
  std::printf("  %-26s %10.3f s\n", "obs off", best[0]);
  std::printf("  %-26s %10.3f s  (%+.2f%%)\n", "obs on", best[1], pct);
  std::printf("  serialized server log bit-identical: %s (%zu bytes)\n",
              identical ? "yes" : "NO (BUG)", wire[0].size());
  json.Add("telemetry_overhead_pct", pct, "%");
  json.Add("telemetry_log_identical", identical ? 1 : 0, "bool");
}

}  // namespace
}  // namespace avm

int main() {
  avm::PrintHeader("Figure 6: CPU utilization split per configuration",
                   "logging daemon <8% of one HT; machine average ~12.5%");
  avm::PrintScaleNote();
  avm::Run();
  avm::BenchJson json("fig6_cpu");
  avm::RunReplaySpeed(json);
  avm::RunTelemetryOverhead(json);
  return 0;
}
