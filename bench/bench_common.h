// Shared helpers for the paper-reproduction bench binaries.
//
// Each bench prints the rows/series of one table or figure from the
// paper's evaluation (§6). Absolute numbers differ from the paper's
// testbed (AVM-32 interpreter vs. real hardware + VMware); the *shape* of
// each result is what EXPERIMENTS.md compares.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/avmm/config.h"

namespace avm {

// The paper's five evaluation configurations (Figure 5/6/7's x-axis).
inline std::vector<RunConfig> PaperConfigs() {
  return {RunConfig::BareHw(), RunConfig::VmNoRec(), RunConfig::VmRec(), RunConfig::AvmmNoSig(),
          RunConfig::AvmmRsa768()};
}

inline void PrintHeader(const char* experiment, const char* paper_result) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("  paper: %s\n", paper_result);
  std::printf("================================================================\n");
}

inline void PrintRule() {
  std::printf("----------------------------------------------------------------\n");
}

// Scale note shared by every bench that runs the simulator.
inline void PrintScaleNote() {
  std::printf(
      "  (AVM-32 substrate: guest runs at %u instr/simulated-us; numbers\n"
      "   are shape-comparable, not absolute-comparable, to the paper.)\n\n",
      RunConfig().ips_per_us);
}

}  // namespace avm

#endif  // BENCH_BENCH_COMMON_H_
