// Shared helpers for the paper-reproduction bench binaries.
//
// Each bench prints the rows/series of one table or figure from the
// paper's evaluation (§6). Absolute numbers differ from the paper's
// testbed (AVM-32 interpreter vs. real hardware + VMware); the *shape* of
// each result is what EXPERIMENTS.md compares.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/avmm/config.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace avm {

// Machine-readable results: BENCH_<name>.json in the working directory,
// one {metric, value, unit} row per Add() call, so the perf trajectory
// can be tracked PR-over-PR without scraping the human-readable tables.
// Written atomically (tmp + rename) so a crashed bench never leaves a
// truncated JSON for the trajectory scraper to choke on.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}
  ~BenchJson() { Write(); }

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  void Add(const std::string& metric, double value, const std::string& unit) {
    rows_.push_back({metric, value, unit});
  }

  // Attach the current obs metrics snapshot (and phase aggregates) to
  // the JSON under an "obs" key, so the telemetry that explains a run's
  // numbers travels with them.
  void EmbedObsSnapshot() { embed_obs_ = true; }

  void Write() {
    if (written_ || rows_.empty()) {
      return;
    }
    written_ = true;
    std::string path = "BENCH_" + name_ + ".json";
    std::string out = "{\"bench\":\"" + name_ + "\",\"results\":[";
    char row[512];
    for (size_t i = 0; i < rows_.size(); i++) {
      std::snprintf(row, sizeof(row), "%s{\"metric\":\"%s\",\"value\":%.6g,\"unit\":\"%s\"}",
                    i == 0 ? "" : ",", rows_[i].metric.c_str(), rows_[i].value,
                    rows_[i].unit.c_str());
      out += row;
    }
    out += "]";
    if (embed_obs_) {
      out += ",\"obs\":" + obs::SnapshotJson();
    }
    out += "}\n";
    std::string error;
    if (!obs::WriteFileAtomic(path, out, &error)) {
      std::fprintf(stderr, "  BENCH JSON WRITE FAILED: %s\n", error.c_str());
      return;
    }
    std::printf("  wrote %s (%zu metrics)\n", path.c_str(), rows_.size());
  }

 private:
  struct Row {
    std::string metric;
    double value;
    std::string unit;
  };
  std::string name_;
  std::vector<Row> rows_;
  bool written_ = false;
  bool embed_obs_ = false;
};

// The paper's five evaluation configurations (Figure 5/6/7's x-axis).
inline std::vector<RunConfig> PaperConfigs() {
  return {RunConfig::BareHw(), RunConfig::VmNoRec(), RunConfig::VmRec(), RunConfig::AvmmNoSig(),
          RunConfig::AvmmRsa768()};
}

inline void PrintHeader(const char* experiment, const char* paper_result) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("  paper: %s\n", paper_result);
  std::printf("================================================================\n");
}

inline void PrintRule() {
  std::printf("----------------------------------------------------------------\n");
}

// Scale note shared by every bench that runs the simulator.
inline void PrintScaleNote() {
  std::printf(
      "  (AVM-32 substrate: guest runs at %u instr/simulated-us; numbers\n"
      "   are shape-comparable, not absolute-comparable, to the paper.)\n\n",
      RunConfig().ips_per_us);
}

}  // namespace avm

#endif  // BENCH_BENCH_COMMON_H_
