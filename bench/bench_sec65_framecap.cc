// §6.5: log growth with the frame-rate cap, and the clock-read delay
// optimization.
//
// Paper: with the default 72 fps cap, Counterstrike busy-waits on the
// system clock between frames, inflating log growth by 18x. Delaying the
// n-th consecutive clock read by 2^(n-2)*50us (capped at 5 ms) cancels
// the inflation (growth 2% *lower* than uncapped) while costing only ~3%
// uncapped frame rate.
//
// This bench runs the game client in four configurations:
//   cap off/on x optimization off/on
// and reports log growth and frames rendered.
#include "bench/bench_common.h"
#include "src/sim/scenario.h"

namespace avm {
namespace {

struct Row {
  const char* name;
  bool cap;
  bool opt;
  double kb_per_min = 0;
  uint64_t frames = 0;
  uint64_t clock_reads = 0;
  uint64_t delayed = 0;
};

void RunOne(Row& row) {
  GameScenarioConfig cfg;
  cfg.run = RunConfig::AvmmNoSig();  // Isolate recording from crypto cost.
  cfg.run.clock_read_optimization = row.opt;
  // A stall cannot usefully exceed the scheduling quantum (the clock
  // re-syncs to simulated time at each quantum boundary), so cap the
  // §6.5 delay progression there.
  cfg.run.clock_opt_max_delay = cfg.quantum_us;
  cfg.num_players = 2;
  cfg.seed = 65;
  cfg.client.frame_cap = row.cap;
  // Rendering takes ~1 ms of the 13.9 ms frame period, so capped clients
  // spend >90% of each frame spinning on the clock -- the §6.5 behavior.
  cfg.client.render_iters = 2000;
  GameScenario game(cfg);
  game.Start();
  game.RunFor(6 * kMicrosPerSecond);
  game.Finish();

  const Avmm& p = game.player(0);
  double minutes = static_cast<double>(game.now()) / kMicrosPerMinute;
  row.kb_per_min = p.log().TotalWireSize() / 1024.0 / minutes;
  row.frames = p.stats().frames_rendered;
  row.clock_reads = p.stats().clock_reads;
  row.delayed = p.stats().clock_reads_delayed;
}

void Run() {
  Row rows[] = {
      {"uncapped, no opt", false, false},
      {"uncapped, opt", false, true},
      {"72fps cap, no opt", true, false},
      {"72fps cap, opt", true, true},
  };
  for (Row& r : rows) {
    RunOne(r);
  }
  std::printf("  %-20s %14s %10s %13s %9s\n", "config", "log (KB/min)", "frames", "clock reads",
              "delayed");
  for (const Row& r : rows) {
    std::printf("  %-20s %14.1f %10llu %13llu %9llu\n", r.name, r.kb_per_min,
                static_cast<unsigned long long>(r.frames),
                static_cast<unsigned long long>(r.clock_reads),
                static_cast<unsigned long long>(r.delayed));
  }
  PrintRule();
  double inflation = rows[2].kb_per_min / rows[0].kb_per_min;
  double with_opt = rows[3].kb_per_min / rows[1].kb_per_min;
  std::printf("  cap-induced log inflation without optimization: %.1fx (paper: 18x)\n", inflation);
  std::printf("  with optimization: %.2fx (paper: ~1x, in fact 2%% lower)\n", with_opt);
  double fps_cost =
      100.0 * (1.0 - static_cast<double>(rows[1].frames) / static_cast<double>(rows[0].frames));
  std::printf("  uncapped frame cost of the optimization: %.1f%% (paper: ~3%%)\n", fps_cost);
  std::printf("  shape check vs paper: busy-wait clock reads inflate the log by an\n");
  std::printf("  order of magnitude; the exponential-delay optimization cancels it.\n");
}

}  // namespace
}  // namespace avm

int main() {
  avm::PrintHeader("Section 6.5: frame-rate cap busy-waiting and the clock-read optimization",
                   "cap inflates log 18x; optimization cancels it at ~3% fps cost");
  avm::PrintScaleNote();
  avm::Run();
  return 0;
}
