// §6.7: network traffic overhead.
//
// Paper: the game host sends 22 kbps bare vs 215.5 kbps with avmm-rsa768
// (~10x), because Counterstrike's packets are tiny (50-60 bytes at
// 26 packets/s) so the fixed per-packet cost (one signature on the data
// frame, one on each acknowledgment, plus authenticators and framing)
// dominates. Absolute traffic stays trivially low for broadband.
#include "bench/bench_common.h"
#include "src/sim/scenario.h"

namespace avm {
namespace {

void Run() {
  std::printf("  %-14s %12s %12s %14s %12s\n", "config", "guest kbps", "wire kbps", "amplification",
              "frames/s");
  double bare_wire = 0;
  double avmm_wire = 0;
  for (const RunConfig& run : PaperConfigs()) {
    GameScenarioConfig cfg;
    cfg.run = run;
    cfg.num_players = 2;
    cfg.seed = 67;
    GameScenario game(cfg);
    game.Start();
    game.RunFor(10 * kMicrosPerSecond);
    game.Finish();

    double secs = static_cast<double>(game.now()) / kMicrosPerSecond;
    const Avmm& p = game.player(0);
    const TrafficStats& wire = game.network().StatsFor(p.id());

    // Guest-level payload bytes (what the game itself produced).
    uint64_t guest_bytes = 0;
    uint64_t guest_pkts = p.stats().guest_packets_sent;
    // STATE packets are 32 bytes; use the MAC trace for the exact count.
    guest_bytes = guest_pkts * 32;

    double guest_kbps = guest_bytes * 8.0 / 1000.0 / secs;
    double wire_kbps = static_cast<double>(wire.bytes_sent) * 8.0 / 1000.0 / secs;
    double frames_per_s = static_cast<double>(wire.frames_sent) / secs;
    std::printf("  %-14s %12.2f %12.2f %13.1fx %12.1f\n", run.Name(), guest_kbps, wire_kbps,
                wire_kbps / std::max(guest_kbps, 1e-9), frames_per_s);
    if (run.mode == RunConfig::Mode::kBareHw) {
      bare_wire = wire_kbps;
    }
    if (run.mode == RunConfig::Mode::kAvmm && run.scheme == SignatureScheme::kRsa768) {
      avmm_wire = wire_kbps;
    }
  }
  PrintRule();
  std::printf("  avmm-rsa768 / bare-hw wire traffic: %.1fx (paper: 215.5/22 = 9.8x)\n",
              avmm_wire / std::max(bare_wire, 1e-9));
  std::printf("  shape check vs paper: the relative increase is large because the\n");
  std::printf("  per-packet accountability overhead (signature + authenticator +\n");
  std::printf("  signed ack) dwarfs the tiny game payloads; absolute rates stay\n");
  std::printf("  well within a slow uplink.\n");
}

}  // namespace
}  // namespace avm

int main() {
  avm::PrintHeader("Section 6.7: network traffic per configuration",
                   "22 kbps bare-hw -> 215.5 kbps avmm-rsa768 (~10x) on tiny game packets");
  avm::PrintScaleNote();
  avm::Run();
  return 0;
}
