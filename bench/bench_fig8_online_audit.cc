// Figure 8: frame rate with zero, one, or two concurrent online audits
// per machine (§6.11).
//
// Paper: 137 fps with no audits -> 104 fps with two audits per machine;
// the drop is softened because audits can use idle cores. Auditing lags
// the game by ~4 s per minute of play unless the game is slowed ~5%.
//
// Here each player optionally runs StreamingReplayer instances that
// follow the other players' logs; polling is interleaved with the game
// loop (single-threaded), so the audit cost lands directly on the frame
// rate -- the same effect, without the paper's idle-core relief (noted
// in EXPERIMENTS.md).
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/audit/online.h"
#include "src/sim/scenario.h"

namespace avm {
namespace {

void Run() {
  std::printf("  %-18s %14s %14s %16s\n", "online audits", "p1 fps", "p2 fps", "audit lag (entries)");
  std::vector<double> fps_by_audits;
  for (int audits = 0; audits <= 2; audits++) {
    GameScenarioConfig cfg;
    cfg.run = RunConfig::AvmmRsa768();
    cfg.num_players = 3;
    cfg.seed = 8;
    GameScenario game(cfg);
    game.Start();

    // Player1 audits `audits` other players online.
    std::vector<std::unique_ptr<OnlineAuditor>> auditors;
    for (int a = 0; a < audits; a++) {
      auditors.push_back(std::make_unique<OnlineAuditor>(
          &game.player(a + 1).log(), game.reference_client_image(), cfg.run.mem_size));
    }

    WallTimer t;
    SimTime slice = 500 * kMicrosPerMilli;
    for (int step = 0; step < 16; step++) {
      game.RunFor(slice);
      for (auto& auditor : auditors) {
        ReplayResult r = auditor->Poll();
        if (!r.ok) {
          std::printf("  unexpected divergence during online audit: %s\n", r.reason.c_str());
          return;
        }
      }
    }
    double wall = t.ElapsedSeconds();
    game.Finish();

    double p1_fps = static_cast<double>(game.player(0).stats().frames_rendered) / wall;
    double p2_fps = static_cast<double>(game.player(1).stats().frames_rendered) / wall;
    uint64_t lag = auditors.empty() ? 0 : auditors.back()->LagEntries();
    fps_by_audits.push_back(p1_fps);
    std::printf("  %-18d %14.0f %14.0f %16llu\n", audits, p1_fps, p2_fps,
                static_cast<unsigned long long>(lag));
  }
  PrintRule();
  if (fps_by_audits.size() == 3 && fps_by_audits[0] > 0) {
    std::printf("  fps with two audits vs none: %.0f%% (paper: 104/137 = 76%%)\n",
                100.0 * fps_by_audits[2] / fps_by_audits[0]);
  }
  std::printf("  shape check vs paper: frame rate degrades gracefully as concurrent\n");
  std::printf("  audits are added; detection happens while the game is in progress.\n");
}

}  // namespace
}  // namespace avm

int main() {
  avm::PrintHeader("Figure 8: frame rate with 0/1/2 concurrent online audits",
                   "137 fps (0 audits) -> 104 fps (2 audits)");
  avm::PrintScaleNote();
  avm::Run();
  return 0;
}
