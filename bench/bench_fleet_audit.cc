// §6.11 / §8: the audit service — checkpointed re-audits and fleet
// sharding.
//
// Paper: one auditor follows many accountable machines over long
// uptimes; §6.11 measures how far auditing lags the execution. The two
// levers this bench quantifies are (a) the audit *checkpoint*: a
// re-audit resumes from the last verified watermark instead of
// replaying from genesis, and (b) *sharding*: independent auditees'
// audits fan out across the service's workers.
#include <algorithm>
#include <filesystem>
#include <map>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/audit/checkpoint.h"
#include "src/audit/fleet.h"
#include "src/sim/scenario.h"
#include "src/store/log_store.h"

namespace avm {
namespace {

namespace fs = std::filesystem;

// Cold vs checkpoint-resumed full audit of one long-lived kv server.
// The checkpoint is planted at >= 50% of the log (the ISSUE's target),
// so the resumed audit reads and replays at most half the history.
void RunColdVsResumed(BenchJson& json) {
  KvScenarioConfig cfg;
  cfg.run = RunConfig::AvmmRsa768();
  cfg.seed = 611;
  cfg.client.op_period_us = 4 * kMicrosPerMilli;
  KvScenario kv(cfg);
  kv.Start();
  std::string dir = (fs::temp_directory_path() / "avm_bench_fleet_ckpt").string();
  fs::remove_all(dir);
  LogStoreOptions opts;
  opts.seal_threshold_bytes = 128 * 1024;
  opts.sync = false;
  auto store = LogStore::Open(dir, "kvserver", opts);
  kv.server().SpillTo(store.get());
  kv.RunFor(15 * kMicrosPerSecond);
  kv.Finish();
  kv.server().log().SetSink(nullptr);
  store->Seal();
  std::vector<Authenticator> auths = kv.CollectAuthsForServer();
  const uint64_t last = store->LastSeq();

  AuditConfig acfg;
  acfg.mem_size = cfg.run.mem_size;
  acfg.threads = 1;
  acfg.pipelined = false;
  // One capture at ~60% of the log (2*cadence > last, so exactly one).
  CheckpointConfig ck;
  ck.every_entries = last * 6 / 10;
  CheckpointedAuditor auditor("auditor", &kv.registry(), acfg, ck);

  // Cold: no checkpoint on disk; this run verifies from genesis and
  // plants the watermark.
  ResumeInfo cold_info;
  AuditOutcome cold;
  double cold_s = obs::TimeSection("bench.cold_audit", [&] {
    cold = auditor.AuditFull(kv.server(), *store, kv.reference_server_image(), auths, dir,
                             &cold_info);
  });

  // Resumed: same audit again, now from the watermark.
  ResumeInfo res_info;
  AuditOutcome resumed;
  double resumed_s = obs::TimeSection("bench.resumed_audit", [&] {
    resumed = auditor.AuditFull(kv.server(), *store, kv.reference_server_image(), auths, dir,
                                &res_info);
  });

  bool verdicts_same = cold.ok == resumed.ok &&
                       cold.syntactic.reason == resumed.syntactic.reason &&
                       cold.semantic.reason == resumed.semantic.reason;
  double watermark_frac =
      last == 0 ? 0 : static_cast<double>(res_info.resumed_from) / static_cast<double>(last);
  uint64_t ckpt_bytes = 0;
  if (auto raw = LogStore::ReadAuxFile(
          (fs::path(dir) / AuditCheckpointFileName("auditor")).string())) {
    ckpt_bytes = raw->size();
  }

  PrintRule();
  std::printf("  checkpointed re-audit: kv server, %llu log entries, %.0f sim s\n",
              static_cast<unsigned long long>(last),
              static_cast<double>(kv.now()) / kMicrosPerSecond);
  std::printf("  %-34s %10s %14s\n", "audit", "wall s", "entries read");
  std::printf("  %-34s %10.3f %14llu\n", "cold (from genesis)", cold_s,
              static_cast<unsigned long long>(cold_info.entries_scanned));
  std::printf("  %-34s %10.3f %14llu\n", "resumed (from checkpoint)", resumed_s,
              static_cast<unsigned long long>(res_info.entries_scanned));
  std::printf("  watermark at %.0f%% of the log; checkpoint file %.1f KB\n",
              100.0 * watermark_frac, ckpt_bytes / 1024.0);
  std::printf("  resumed speedup: %.2fx; verdicts identical: %s\n",
              cold_s / std::max(resumed_s, 1e-9), verdicts_same ? "yes" : "NO (BUG)");

  json.Add("log_entries", static_cast<double>(last), "entries");
  json.Add("cold_audit_s", cold_s, "s");
  json.Add("resumed_audit_s", resumed_s, "s");
  json.Add("resume_speedup", cold_s / std::max(resumed_s, 1e-9), "x");
  json.Add("resume_watermark_fraction", watermark_frac, "ratio");
  json.Add("checkpoint_bytes", static_cast<double>(ckpt_bytes), "B");
  json.Add("verdicts_identical", verdicts_same ? 1 : 0, "bool");
  fs::remove_all(dir);
}

// Audited entries/second as the fleet service's worker count grows:
// K game worlds + M kv stores, one full audit per auditee, stateless
// (checkpoints off) so the sweep isolates sharding.
void RunShardSweep(BenchJson& json) {
  FleetScenarioConfig cfg;
  cfg.run = RunConfig::AvmmNoSig();  // Replay-dominated: the §6.6 shape.
  cfg.num_games = 2;
  cfg.players_per_game = 2;
  cfg.num_kv = 2;
  cfg.seed = 611;
  cfg.game.client.render_iters = 500;
  FleetScenario fleet(cfg);
  fleet.Start();
  std::string base = (fs::temp_directory_path() / "avm_bench_fleet_shard").string();
  fs::remove_all(base);
  fleet.SpillLogsTo(base);
  fleet.RunFor(4 * kMicrosPerSecond);
  fleet.Finish();

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("\n");
  PrintRule();
  std::printf("  fleet shard sweep: %d auditees (2 games x 3 nodes + 2 kv), full audits\n",
              cfg.num_games * (1 + cfg.players_per_game) + cfg.num_kv);
  std::printf("  %-10s %10s %16s %10s\n", "workers", "wall s", "entries/s", "faults");

  double base_rate = 0;
  for (unsigned workers : {1u, 2u, 4u}) {
    if (workers > 1 && workers > hw) {
      continue;
    }
    FleetAuditConfig fcfg;
    fcfg.workers = workers;
    fcfg.audit.mem_size = cfg.run.mem_size;
    fcfg.audit.threads = 1;
    fcfg.audit.pipelined = false;
    fcfg.resume_from_checkpoints = false;
    FleetAuditService service(nullptr, fcfg);
    for (FleetScenario::AuditeeRef& a : fleet.Auditees()) {
      FleetAuditService::Registration reg;
      reg.node = a.global_name;
      reg.target = a.avmm;
      reg.source = a.store;
      reg.reference_image = *a.reference_image;
      reg.auths = a.collect_auths();
      reg.registry = a.registry;
      service.RegisterAuditee(std::move(reg));
    }
    WallTimer t;
    for (FleetScenario::AuditeeRef& a : fleet.Auditees()) {
      service.SubmitFullAudit(a.global_name);
    }
    service.Drain();
    double wall = t.ElapsedSeconds();
    // The fleet operator's scrape surface: Prometheus text, a metrics
    // snapshot, and a Perfetto-loadable Chrome trace of this run's
    // spans. Overwritten per sweep point; the last (largest) run wins.
    std::string export_err;
    if (!service.ExportPrometheus("OBS_fleet_audit.prom", &export_err) ||
        !service.ExportSnapshotJson("OBS_fleet_audit.snapshot.json", &export_err) ||
        !service.ExportChromeTrace("OBS_fleet_audit.trace.json", &export_err)) {
      std::fprintf(stderr, "  OBS EXPORT FAILED: %s\n", export_err.c_str());
    }
    FleetStats stats = service.stats();
    double rate = static_cast<double>(stats.entries_scanned) / std::max(wall, 1e-9);
    if (workers == 1) {
      base_rate = rate;
      std::printf("  %-10u %10.3f %16.0f %10llu\n", workers, wall, rate,
                  static_cast<unsigned long long>(stats.faults_detected));
    } else {
      std::printf("  %-10u %10.3f %16.0f %10llu   (%.2fx vs workers=1)\n", workers, wall, rate,
                  static_cast<unsigned long long>(stats.faults_detected), rate / base_rate);
    }
    json.Add("entries_per_s_workers_" + std::to_string(workers), rate, "entries/s");
  }
  std::printf("  obs: %.3f s in fleet.service spans across %llu jobs; exported\n"
              "  OBS_fleet_audit.{prom,snapshot.json,trace.json}\n",
              obs::PhaseSeconds(obs::kPhaseFleetService),
              static_cast<unsigned long long>(obs::PhaseCount(obs::kPhaseFleetService)));
  fs::remove_all(base);
}

}  // namespace
}  // namespace avm

int main() {
  avm::PrintHeader("Audit service: checkpointed re-audits + fleet sharding (§6.11/§8)",
                   "one auditor follows many machines; audit lag is the §6.11 metric");
  avm::PrintScaleNote();
  avm::obs::SetEnabled(true);
  avm::obs::ResetTrace();
  avm::BenchJson json("fleet_audit");
  json.EmbedObsSnapshot();
  avm::RunColdVsResumed(json);
  avm::RunShardSweep(json);
  return 0;
}
