// Crypto/substrate micro-benchmarks (google-benchmark).
//
// Supports §6.8's discussion of signature cost (the paper notes ESIGN
// could generate+verify a 2046-bit signature in <125us, vs RSA-768's
// ~ms) and sizes the per-entry cost of the hash chain and the per-
// snapshot cost of the Merkle tree.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/compress/lzss.h"
#include "src/crypto/keys.h"
#include "src/crypto/merkle.h"
#include "src/crypto/rsa.h"
#include "src/tel/batch.h"
#include "src/tel/log.h"
#include "src/util/prng.h"

namespace avm {
namespace {

void BM_Sha256(benchmark::State& state) {
  Prng rng(1);
  Bytes data = rng.RandomBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Digest(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_ChainAppend(benchmark::State& state) {
  Prng rng(2);
  Bytes content = rng.RandomBytes(48);  // Typical trace-entry size.
  TamperEvidentLog log("bench");
  for (auto _ : state) {
    log.Append(EntryType::kTraceTime, content);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ChainAppend);

void BM_RsaSign(benchmark::State& state) {
  Prng rng(3);
  RsaKeypair kp = RsaKeypair::Generate(rng, static_cast<size_t>(state.range(0)));
  Bytes msg = rng.RandomBytes(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaSign(kp.priv, msg));
  }
}
BENCHMARK(BM_RsaSign)->Arg(768)->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_RsaVerify(benchmark::State& state) {
  Prng rng(4);
  RsaKeypair kp = RsaKeypair::Generate(rng, static_cast<size_t>(state.range(0)));
  Bytes msg = rng.RandomBytes(64);
  Bytes sig = RsaSign(kp.priv, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaVerify(kp.pub, msg, sig));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(768)->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_MerkleTreeBuild(benchmark::State& state) {
  // Pages of a 256 KiB AVM: 64 leaves + CPU leaf.
  Prng rng(5);
  std::vector<Hash256> leaves;
  for (int i = 0; i < state.range(0); i++) {
    leaves.push_back(Sha256::Digest(rng.RandomBytes(32)));
  }
  for (auto _ : state) {
    MerkleTree tree(leaves);
    benchmark::DoNotOptimize(tree.Root());
  }
}
BENCHMARK(BM_MerkleTreeBuild)->Arg(65)->Arg(257);

void BM_StateRootHash(benchmark::State& state) {
  // Hashing the full guest memory for a snapshot root: the dominant
  // snapshot cost (the paper's ~5 s per snapshot).
  Prng rng(6);
  Bytes page = rng.RandomBytes(4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MerkleLeafHash(page));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_StateRootHash);

void BM_RsaSignUncachedMontgomery(benchmark::State& state) {
  // The pre-optimization path: rebuild the Montgomery context inside
  // every ModExp. Compare against BM_RsaSign (cached contexts).
  Prng rng(31);
  RsaKeypair kp = RsaKeypair::Generate(rng, static_cast<size_t>(state.range(0)));
  kp.priv.mont_p.reset();
  kp.priv.mont_q.reset();
  Bytes msg = rng.RandomBytes(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaSign(kp.priv, msg));
  }
}
BENCHMARK(BM_RsaSignUncachedMontgomery)->Arg(768)->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_MontgomeryCtxBuild(benchmark::State& state) {
  // What the per-key cache saves on every exponentiation: one context
  // construction (a long division for R^2 mod m).
  Prng rng(32);
  RsaKeypair kp = RsaKeypair::Generate(rng, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    Montgomery ctx(kp.pub.n);
    benchmark::DoNotOptimize(&ctx);
  }
}
BENCHMARK(BM_MontgomeryCtxBuild)->Arg(768)->Arg(2048)->Unit(benchmark::kMicrosecond);

// Per-entry cost of committing a k-entry window with one signature:
// k-1 chain appends plus one RSA sign, amortized. The record/send hot
// path in batched mode pays exactly this.
void BM_SignBatchAmortized(benchmark::State& state) {
  Prng rng(33);
  Signer signer("bench", SignatureScheme::kRsa768, rng);
  Bytes content = rng.RandomBytes(48);
  TamperEvidentLog log("bench");
  uint64_t k = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    for (uint64_t i = 0; i < k; i++) {
      log.Append(EntryType::kTraceTime, content);
    }
    benchmark::DoNotOptimize(log.Authenticate(signer));
  }
  // Per-entry cost = 1 / items_per_second; BENCH_crypto_micro.json
  // reports it directly in microseconds.
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SignBatchAmortized)->Arg(1)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);

void BM_BatchVerifyAmortized(benchmark::State& state) {
  // The receiver/auditor side: walk k links + one RSA verify.
  Prng rng(34);
  Signer signer("bench", SignatureScheme::kRsa768, rng);
  KeyRegistry registry;
  registry.RegisterSigner(signer);
  Bytes content = rng.RandomBytes(48);
  TamperEvidentLog log("bench");
  uint64_t k = static_cast<uint64_t>(state.range(0));
  for (uint64_t i = 0; i < k; i++) {
    log.Append(EntryType::kTraceTime, content);
  }
  BatchAuthenticator batch = BatchAuthenticator::FromLog(log, signer, 1, k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(batch.Verify(registry).ok);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_BatchVerifyAmortized)->Arg(1)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);

void BM_LzssCompress(benchmark::State& state) {
  // Log-like input: repetitive structure with varying values.
  Bytes data;
  Prng rng(7);
  for (int i = 0; i < 2000; i++) {
    Append(data, ToBytes("TIMETRACKER"));
    PutU64(data, 1000000 + static_cast<uint64_t>(i) * 997);
    PutU32(data, static_cast<uint32_t>(rng.Next()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(LzssCompress(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_LzssCompress);

// Hand-timed counterparts of the headline numbers, emitted as
// BENCH_crypto_micro.json so the perf trajectory is tracked PR-over-PR
// without parsing google-benchmark's output.
void EmitJson() {
  BenchJson json("crypto_micro");
  Prng rng(41);
  Signer signer("bench", SignatureScheme::kRsa768, rng);
  KeyRegistry registry;
  registry.RegisterSigner(signer);
  Bytes content = rng.RandomBytes(48);

  {
    // One RSA-768 sign, cached Montgomery contexts.
    Bytes msg = rng.RandomBytes(64);
    constexpr int kIters = 50;
    Bytes sig = signer.Sign(msg);  // Warm.
    WallTimer t;
    for (int i = 0; i < kIters; i++) {
      sig = signer.Sign(msg);
    }
    json.Add("rsa768_sign", t.ElapsedSeconds() * 1e6 / kIters, "us");
  }
  for (uint64_t k : {1u, 8u, 32u}) {
    TamperEvidentLog log("bench");
    constexpr int kWindows = 20;
    WallTimer t;
    for (int w = 0; w < kWindows; w++) {
      for (uint64_t i = 0; i < k; i++) {
        log.Append(EntryType::kTraceTime, content);
      }
      Authenticator a = log.Authenticate(signer);
      (void)a;
    }
    json.Add("sign_batch_k" + std::to_string(k) + "_per_entry",
             t.ElapsedSeconds() * 1e6 / (kWindows * static_cast<double>(k)), "us");
  }
  {
    // The cost the per-key cache removes from every ModExp.
    Prng r2(42);
    RsaKeypair kp = RsaKeypair::Generate(r2, 768);
    constexpr int kIters = 200;
    WallTimer t;
    for (int i = 0; i < kIters; i++) {
      Montgomery ctx(kp.pub.n);
      (void)ctx;
    }
    json.Add("montgomery_ctx_build_768", t.ElapsedSeconds() * 1e6 / kIters, "us");
  }
  json.Write();
}

}  // namespace
}  // namespace avm

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  avm::EmitJson();
  return 0;
}
