// Crypto/substrate micro-benchmarks (google-benchmark).
//
// Supports §6.8's discussion of signature cost (the paper notes ESIGN
// could generate+verify a 2046-bit signature in <125us, vs RSA-768's
// ~ms) and sizes the per-entry cost of the hash chain and the per-
// snapshot cost of the Merkle tree.
#include <benchmark/benchmark.h>

#include "src/compress/lzss.h"
#include "src/crypto/keys.h"
#include "src/crypto/merkle.h"
#include "src/crypto/rsa.h"
#include "src/tel/log.h"
#include "src/util/prng.h"

namespace avm {
namespace {

void BM_Sha256(benchmark::State& state) {
  Prng rng(1);
  Bytes data = rng.RandomBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Digest(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_ChainAppend(benchmark::State& state) {
  Prng rng(2);
  Bytes content = rng.RandomBytes(48);  // Typical trace-entry size.
  TamperEvidentLog log("bench");
  for (auto _ : state) {
    log.Append(EntryType::kTraceTime, content);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ChainAppend);

void BM_RsaSign(benchmark::State& state) {
  Prng rng(3);
  RsaKeypair kp = RsaKeypair::Generate(rng, static_cast<size_t>(state.range(0)));
  Bytes msg = rng.RandomBytes(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaSign(kp.priv, msg));
  }
}
BENCHMARK(BM_RsaSign)->Arg(768)->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_RsaVerify(benchmark::State& state) {
  Prng rng(4);
  RsaKeypair kp = RsaKeypair::Generate(rng, static_cast<size_t>(state.range(0)));
  Bytes msg = rng.RandomBytes(64);
  Bytes sig = RsaSign(kp.priv, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaVerify(kp.pub, msg, sig));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(768)->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_MerkleTreeBuild(benchmark::State& state) {
  // Pages of a 256 KiB AVM: 64 leaves + CPU leaf.
  Prng rng(5);
  std::vector<Hash256> leaves;
  for (int i = 0; i < state.range(0); i++) {
    leaves.push_back(Sha256::Digest(rng.RandomBytes(32)));
  }
  for (auto _ : state) {
    MerkleTree tree(leaves);
    benchmark::DoNotOptimize(tree.Root());
  }
}
BENCHMARK(BM_MerkleTreeBuild)->Arg(65)->Arg(257);

void BM_StateRootHash(benchmark::State& state) {
  // Hashing the full guest memory for a snapshot root: the dominant
  // snapshot cost (the paper's ~5 s per snapshot).
  Prng rng(6);
  Bytes page = rng.RandomBytes(4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MerkleLeafHash(page));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_StateRootHash);

void BM_LzssCompress(benchmark::State& state) {
  // Log-like input: repetitive structure with varying values.
  Bytes data;
  Prng rng(7);
  for (int i = 0; i < 2000; i++) {
    Append(data, ToBytes("TIMETRACKER"));
    PutU64(data, 1000000 + static_cast<uint64_t>(i) * 997);
    PutU32(data, static_cast<uint32_t>(rng.Next()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(LzssCompress(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_LzssCompress);

}  // namespace
}  // namespace avm

BENCHMARK_MAIN();
