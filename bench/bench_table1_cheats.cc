// Table 1: Detectability of Counterstrike cheats.
//
// Paper row structure:
//   Total number of cheats examined                      26
//   Cheats detectable with AVMs                          26
//   ... in this specific implementation of the cheat     22
//   ... no matter how the cheat is implemented            4
//   Cheats not detectable with AVMs                       0
//
// This bench (a) reproduces those counts from the cheat catalog's
// class-1/class-2 taxonomy, and (b) functionally validates a
// representative subset by actually running each cheat in a game and
// auditing the cheater (§6.3's functionality check: 4 cheats run live).
#include "bench/bench_common.h"
#include "src/apps/cheats.h"
#include "src/sim/scenario.h"

namespace avm {
namespace {

void CatalogCounts() {
  const auto& catalog = CheatCatalog();
  int total = static_cast<int>(catalog.size());
  int class1 = 0, class2 = 0, detectable = 0;
  for (const CheatInfo& c : catalog) {
    if (c.class1_install) {
      class1++;
    }
    if (c.class2_network) {
      class2++;
    }
    if (c.class1_install || c.class2_network) {
      detectable++;
    }
  }
  std::printf("Total number of cheats examined                    %4d\n", total);
  std::printf("Cheats detectable with AVMs                        %4d\n", detectable);
  std::printf("... in this specific implementation of the cheat   %4d\n", detectable - class2);
  std::printf("... no matter how the cheat is implemented         %4d\n", class2);
  std::printf("Cheats not detectable with AVMs                    %4d\n", total - detectable);
  PrintRule();
  std::printf("catalog by family:\n");
  for (const char* family : {"aimbot", "wallhack", "state", "misc"}) {
    int n = 0;
    for (const CheatInfo& c : catalog) {
      if (c.family == family) {
        n++;
      }
    }
    std::printf("  %-10s %2d\n", family, n);
  }
}

void FunctionalCheck() {
  std::printf("\nfunctional check (a cheater plays 2s and is audited, like §6.3):\n");
  std::printf("  %-22s %-12s %-9s %s\n", "cheat", "mechanism", "expected", "audit result");
  const struct {
    RunnableCheat cheat;
    const char* mechanism;
  } kRuns[] = {
      {RunnableCheat::kUnlimitedAmmo, "memory-poke"},
      {RunnableCheat::kTeleport, "memory-poke"},
      {RunnableCheat::kAimbotImage, "image-patch"},
      {RunnableCheat::kWallhackImage, "image-patch"},
      {RunnableCheat::kForgedInputAimbot, "forged-input"},
  };
  for (const auto& run : kRuns) {
    GameScenarioConfig cfg;
    cfg.run = RunConfig::AvmmNoSig();
    cfg.num_players = 2;
    cfg.seed = 100 + static_cast<uint64_t>(run.cheat);
    cfg.client.render_iters = 300;
    GameScenario game(cfg);
    game.SetCheat(0, run.cheat);
    game.Start();
    game.RunFor(2 * kMicrosPerSecond);
    game.Finish();
    AuditOutcome audit = game.AuditPlayer(0);
    bool expected_detect = CheatDetectableByAvm(run.cheat);
    bool detected = !audit.ok;
    std::printf("  %-22s %-12s %-9s %s%s\n", RunnableCheatName(run.cheat), run.mechanism,
                expected_detect ? "detected" : "silent", detected ? "FAULT" : "pass",
                detected == expected_detect ? "" : "  << UNEXPECTED");
  }
  std::printf("  (external-input-aimbot passing is the documented §4.8 limitation:\n"
              "   inputs forged outside the AVM replay consistently.)\n");

  // §7.2 ablation: the same forged-input cheat with signing keyboards.
  GameScenarioConfig cfg;
  cfg.run = RunConfig::AvmmNoSig();
  cfg.num_players = 2;
  cfg.seed = 200;
  cfg.client.render_iters = 300;
  cfg.attested_input = true;
  GameScenario game(cfg);
  game.SetCheat(0, RunnableCheat::kForgedInputAimbot);
  game.Start();
  game.RunFor(2 * kMicrosPerSecond);
  game.Finish();
  AuditOutcome audit = game.AuditPlayer(0);
  std::printf("  %-22s %-12s %-9s %s   (§7.2 trusted input)\n", "external-input-aimbot",
              "forged-input", "detected", audit.ok ? "pass  << UNEXPECTED" : "FAULT");
}

}  // namespace
}  // namespace avm

int main() {
  avm::PrintHeader("Table 1: detectability of the 26-cheat catalog",
                   "26 examined / 26 detectable / 22 impl-specific / 4 any-impl / 0 undetectable");
  avm::CatalogCounts();
  avm::FunctionalCheck();
  return 0;
}
