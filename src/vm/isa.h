// AVM-32: the instruction-set architecture of the guest machine.
//
// A deliberately small 32-bit RISC that provides everything the paper's
// accountability layer needs from a VMM substrate: instruction-granular
// deterministic execution, explicit nondeterministic input ports, async
// interrupt delivery with instruction-count landmarks, and a flat paged
// memory suitable for incremental Merkle snapshots.
//
// Encoding: one 32-bit little-endian word per instruction:
//   [31:24] opcode   [23:20] ra   [19:16] rb   [15:0] imm16
// Branch/jump offsets are in words, relative to the *next* instruction.
#ifndef SRC_VM_ISA_H_
#define SRC_VM_ISA_H_

#include <cstdint>

namespace avm {

constexpr int kNumRegs = 16;
// Register conventions (enforced only by the assembler's mnemonics):
// r13 = sp (stack pointer), r14 = lr (link register), r15 = scratch.
constexpr int kRegSp = 13;
constexpr int kRegLr = 14;

constexpr uint32_t kResetVector = 0x0000;  // pc at power-on.
constexpr uint32_t kIrqVector = 0x0004;    // pc on interrupt entry.

constexpr uint32_t kPageSize = 4096;

// Fixed DMA regions for the virtual NIC (inside guest RAM).
constexpr uint32_t kNetTxBuf = 0xE000;
constexpr uint32_t kNetRxBuf = 0xE800;
constexpr uint32_t kNetBufSize = 0x0800;  // 2 KiB each.
constexpr uint32_t kMaxPacket = kNetBufSize;

enum class Op : uint8_t {
  kNop = 0x00,
  kHalt = 0x01,

  // Data movement.
  kMovi = 0x10,   // ra = signext(imm16)
  kMovhi = 0x11,  // ra = imm16 << 16
  kOri = 0x12,    // ra |= zeroext(imm16)
  kMov = 0x13,    // ra = rb

  // ALU (ra = ra op rb).
  kAdd = 0x20,
  kSub = 0x21,
  kMul = 0x22,
  kDivu = 0x23,  // division by zero yields 0xffffffff
  kRemu = 0x24,  // remainder by zero yields ra (dividend)
  kAnd = 0x25,
  kOr = 0x26,
  kXor = 0x27,
  kShl = 0x28,  // shift amounts are taken mod 32
  kShr = 0x29,
  kSra = 0x2a,
  kAddi = 0x2b,  // ra += signext(imm16)
  kSlt = 0x2c,   // ra = (ra < rb) signed ? 1 : 0
  kSltu = 0x2d,  // ra = (ra < rb) unsigned ? 1 : 0

  // Memory. Effective address = rb + signext(imm16).
  kLw = 0x30,  // 32-bit load (address must be 4-aligned)
  kSw = 0x31,
  kLb = 0x32,  // 8-bit zero-extending load
  kSb = 0x33,

  // Control flow. Targets are word offsets from the next instruction.
  kBeq = 0x40,
  kBne = 0x41,
  kBlt = 0x42,   // signed
  kBge = 0x43,   // signed
  kBltu = 0x44,  // unsigned
  kBgeu = 0x45,  // unsigned
  kJmp = 0x46,   // pc-relative jump
  kJal = 0x47,   // ra = byte address of next instruction; jump
  kJr = 0x48,    // pc = ra
  kJalr = 0x49,  // ra = return address; pc = rb

  // I/O: the *only* place nondeterminism can enter or output can leave.
  kIn = 0x50,   // ra = port[imm16]  (nondeterministic, logged)
  kOut = 0x51,  // port[imm16] = ra  (deterministic output, checked on replay)

  // Interrupt control.
  kEi = 0x60,    // enable interrupts
  kDi = 0x61,    // disable interrupts
  kIret = 0x62,  // pc = saved pc; enable interrupts
};

// Port numbers for IN.
constexpr uint16_t kPortClockLo = 0;   // low 32 bits of the virtual TSC (µs)
constexpr uint16_t kPortClockHi = 1;   // high 32 bits
constexpr uint16_t kPortRand = 2;      // hardware RNG
constexpr uint16_t kPortInput = 3;     // next input event, 0 when empty
constexpr uint16_t kPortNetRxLen = 4;  // length of the packet in the RX buffer, 0 if none
constexpr uint16_t kPortIrqCause = 5;  // cause of the last taken interrupt

// Port numbers for OUT.
constexpr uint16_t kPortConsole = 8;    // write one byte of console output
constexpr uint16_t kPortFrame = 9;      // "frame rendered" marker (fps metric)
constexpr uint16_t kPortNetTxLen = 10;  // send kNetTxBuf[0..value) as a packet
constexpr uint16_t kPortNetRxDone = 11; // guest consumed the RX buffer
constexpr uint16_t kPortDebug = 12;     // debug value sink (deterministic output)

// Interrupt causes.
constexpr uint32_t kIrqNetRx = 1;
constexpr uint32_t kIrqInput = 2;
constexpr uint32_t kIrqTimer = 3;

// Instruction encode/decode.
struct Insn {
  Op op;
  uint8_t ra;
  uint8_t rb;
  uint16_t imm;

  int32_t SImm() const { return static_cast<int16_t>(imm); }
};

constexpr uint32_t Encode(Op op, uint8_t ra, uint8_t rb, uint16_t imm) {
  return static_cast<uint32_t>(op) << 24 | static_cast<uint32_t>(ra & 0xf) << 20 |
         static_cast<uint32_t>(rb & 0xf) << 16 | imm;
}

constexpr Insn Decode(uint32_t word) {
  return Insn{static_cast<Op>(word >> 24), static_cast<uint8_t>((word >> 20) & 0xf),
              static_cast<uint8_t>((word >> 16) & 0xf), static_cast<uint16_t>(word & 0xffff)};
}

}  // namespace avm

#endif  // SRC_VM_ISA_H_
