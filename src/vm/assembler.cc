#include "src/vm/assembler.h"

#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "src/vm/isa.h"

namespace avm {

namespace {

struct Token {
  std::string text;
};

// Splits one source line into lowercase-insensitive tokens. Commas,
// brackets and '+' act as separators; string literals are one token.
std::vector<std::string> Tokenize(const std::string& line, size_t lineno) {
  std::vector<std::string> out;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      out.push_back(cur);
      cur.clear();
    }
  };
  for (size_t i = 0; i < line.size(); i++) {
    char c = line[i];
    if (c == ';' || c == '#') {
      break;
    }
    if (c == '"') {
      flush();
      std::string s = "\"";
      i++;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\' && i + 1 < line.size()) {
          s.push_back(line[i]);
          i++;
        }
        s.push_back(line[i]);
        i++;
      }
      if (i >= line.size()) {
        throw AsmError(lineno, "unterminated string literal");
      }
      s.push_back('"');
      out.push_back(s);
      continue;
    }
    if (c == '\'') {
      flush();
      std::string s = "'";
      i++;
      while (i < line.size() && line[i] != '\'') {
        if (line[i] == '\\' && i + 1 < line.size()) {
          s.push_back(line[i]);
          i++;
        }
        s.push_back(line[i]);
        i++;
      }
      if (i >= line.size()) {
        throw AsmError(lineno, "unterminated char literal");
      }
      s.push_back('\'');
      out.push_back(s);
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',' || c == '[' || c == ']' ||
        c == '+') {
      flush();
      continue;
    }
    if (c == ':') {
      cur.push_back(':');
      flush();
      continue;
    }
    cur.push_back(c);
  }
  flush();
  return out;
}

std::string Lower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

std::optional<uint8_t> ParseReg(const std::string& t) {
  std::string s = Lower(t);
  if (s == "sp") {
    return kRegSp;
  }
  if (s == "lr") {
    return kRegLr;
  }
  if (s.size() >= 2 && s[0] == 'r') {
    int n = 0;
    for (size_t i = 1; i < s.size(); i++) {
      if (!std::isdigit(static_cast<unsigned char>(s[i]))) {
        return std::nullopt;
      }
      n = n * 10 + (s[i] - '0');
    }
    if (n >= 0 && n < kNumRegs) {
      return static_cast<uint8_t>(n);
    }
  }
  return std::nullopt;
}

char Unescape(char c, size_t lineno) {
  switch (c) {
    case 'n':
      return '\n';
    case 't':
      return '\t';
    case '0':
      return '\0';
    case '\\':
      return '\\';
    case '"':
      return '"';
    case '\'':
      return '\'';
    default:
      throw AsmError(lineno, std::string("bad escape \\") + c);
  }
}

const std::map<std::string, int64_t>& Builtins() {
  static const std::map<std::string, int64_t> kBuiltins = {
      {"CLOCK_LO", kPortClockLo},   {"CLOCK_HI", kPortClockHi},
      {"RAND", kPortRand},          {"INPUT", kPortInput},
      {"NET_RXLEN", kPortNetRxLen}, {"IRQ_CAUSE", kPortIrqCause},
      {"CONSOLE", kPortConsole},    {"FRAME", kPortFrame},
      {"NET_TXLEN", kPortNetTxLen}, {"NET_RXDONE", kPortNetRxDone},
      {"DEBUG", kPortDebug},        {"TX_BUF", kNetTxBuf},
      {"RX_BUF", kNetRxBuf},        {"NET_BUF_SIZE", kNetBufSize},
      {"IRQ_NET_RX", kIrqNetRx},    {"IRQ_INPUT", kIrqInput},
      {"IRQ_TIMER", kIrqTimer},
  };
  return kBuiltins;
}

}  // namespace

Bytes Assemble(std::string_view source) {
  struct Item {
    size_t lineno;
    std::vector<std::string> tokens;  // Mnemonic + operands (labels removed).
    uint32_t addr = 0;
    uint32_t size = 0;
  };

  std::map<std::string, int64_t> symbols;  // Labels and .equ constants.

  // ---- Pass 1: sizes and label addresses. ----
  std::vector<Item> items;
  {
    std::istringstream in{std::string(source)};
    std::string line;
    size_t lineno = 0;
    uint32_t cursor = 0;
    while (std::getline(in, line)) {
      lineno++;
      std::vector<std::string> toks = Tokenize(line, lineno);
      // Peel off leading labels.
      while (!toks.empty() && toks.front().size() > 1 && toks.front().back() == ':') {
        std::string name = toks.front().substr(0, toks.front().size() - 1);
        if (symbols.count(name) != 0) {
          throw AsmError(lineno, "duplicate label " + name);
        }
        symbols[name] = cursor;
        toks.erase(toks.begin());
      }
      if (toks.empty()) {
        continue;
      }
      std::string m = Lower(toks[0]);
      Item item{lineno, toks, cursor, 0};
      if (m == ".equ") {
        // Handled in pass 1 directly (constants must not be forward refs).
        if (toks.size() != 3) {
          throw AsmError(lineno, ".equ needs name and value");
        }
        // Value may reference earlier symbols; evaluated below via a
        // temporary resolver that only sees what exists so far.
        item.size = 0;
        items.push_back(item);
        // Fall through; evaluation happens in the shared resolver at the
        // end of pass 1 for simplicity: we instead evaluate now.
      } else if (m == ".org") {
        if (toks.size() != 2) {
          throw AsmError(lineno, ".org needs one value");
        }
        items.push_back(item);
      } else if (m == ".word") {
        item.size = static_cast<uint32_t>((toks.size() - 1) * 4);
        items.push_back(item);
      } else if (m == ".byte") {
        item.size = static_cast<uint32_t>(toks.size() - 1);
        items.push_back(item);
      } else if (m == ".ascii") {
        if (toks.size() != 2 || toks[1].size() < 2 || toks[1].front() != '"') {
          throw AsmError(lineno, ".ascii needs a string literal");
        }
        // Unescaped length.
        const std::string& lit = toks[1];
        uint32_t n = 0;
        for (size_t i = 1; i + 1 < lit.size(); i++) {
          if (lit[i] == '\\') {
            i++;
          }
          n++;
        }
        item.size = n;
        items.push_back(item);
      } else if (m == ".space") {
        if (toks.size() != 2) {
          throw AsmError(lineno, ".space needs one value");
        }
        items.push_back(item);
      } else if (m == "la") {
        item.size = 8;  // movhi + ori
        items.push_back(item);
      } else {
        item.size = 4;  // Every real instruction is one word.
        items.push_back(item);
      }

      Item& it = items.back();
      // Resolve .org/.space/.equ sizes immediately (they may not use
      // forward references).
      auto eval_now = [&](const std::string& t) -> int64_t {
        // Numeric only or already-defined symbol.
        if (!t.empty() && (std::isdigit(static_cast<unsigned char>(t[0])) || t[0] == '-')) {
          return std::stoll(t, nullptr, 0);
        }
        auto s = symbols.find(t);
        if (s != symbols.end()) {
          return s->second;
        }
        auto b = Builtins().find(t);
        if (b != Builtins().end()) {
          return b->second;
        }
        throw AsmError(lineno, "undefined symbol in directive: " + t);
      };
      if (m == ".org") {
        int64_t target = eval_now(toks[1]);
        if (target < cursor) {
          throw AsmError(lineno, ".org may only move forward");
        }
        it.size = static_cast<uint32_t>(target - cursor);
        it.tokens = {".space_resolved"};  // Emits zeros in pass 2.
      } else if (m == ".space") {
        it.size = static_cast<uint32_t>(eval_now(toks[1]));
        it.tokens = {".space_resolved"};
      } else if (m == ".equ") {
        symbols[toks[1]] = eval_now(toks[2]);
        it.tokens = {".nothing"};
      }
      it.addr = cursor;
      cursor += it.size;
    }
  }

  // ---- Pass 2: emit. ----
  auto eval = [&](const std::string& t, size_t lineno) -> int64_t {
    if (t.size() >= 2 && t.front() == '\'') {
      // Char literal.
      if (t[1] == '\\') {
        return Unescape(t[2], lineno);
      }
      return t[1];
    }
    if (!t.empty() && (std::isdigit(static_cast<unsigned char>(t[0])) || t[0] == '-')) {
      try {
        return std::stoll(t, nullptr, 0);
      } catch (const std::exception&) {
        throw AsmError(lineno, "bad number: " + t);
      }
    }
    auto s = symbols.find(t);
    if (s != symbols.end()) {
      return s->second;
    }
    auto b = Builtins().find(t);
    if (b != Builtins().end()) {
      return b->second;
    }
    throw AsmError(lineno, "undefined symbol: " + t);
  };

  Bytes image;
  auto emit32 = [&](uint32_t w) { PutU32(image, w); };

  for (const Item& it : items) {
    if (image.size() != it.addr) {
      // .org gaps are materialized by .space_resolved items, so sizes
      // always line up; a mismatch is an assembler bug.
      throw AsmError(it.lineno, "internal: address mismatch");
    }
    const auto& t = it.tokens;
    std::string m = Lower(t[0]);
    size_t ln = it.lineno;

    auto reg = [&](size_t i) -> uint8_t {
      if (i >= t.size()) {
        throw AsmError(ln, "missing register operand");
      }
      auto r = ParseReg(t[i]);
      if (!r) {
        throw AsmError(ln, "bad register: " + t[i]);
      }
      return *r;
    };
    auto imm16s = [&](size_t i) -> uint16_t {
      if (i >= t.size()) {
        throw AsmError(ln, "missing immediate operand");
      }
      int64_t v = eval(t[i], ln);
      if (v < -32768 || v > 65535) {
        throw AsmError(ln, "immediate out of 16-bit range: " + t[i]);
      }
      return static_cast<uint16_t>(v);
    };
    auto branch_off = [&](size_t i) -> uint16_t {
      int64_t target = eval(t[i], ln);
      int64_t off = (target - (static_cast<int64_t>(it.addr) + 4)) / 4;
      if ((target - (static_cast<int64_t>(it.addr) + 4)) % 4 != 0) {
        throw AsmError(ln, "branch target not word aligned");
      }
      if (off < -32768 || off > 32767) {
        throw AsmError(ln, "branch target out of range");
      }
      return static_cast<uint16_t>(static_cast<int16_t>(off));
    };

    if (m == ".nothing") {
      continue;
    }
    if (m == ".space_resolved") {
      image.resize(image.size() + it.size, 0);
      continue;
    }
    if (m == ".word") {
      for (size_t i = 1; i < t.size(); i++) {
        emit32(static_cast<uint32_t>(eval(t[i], ln)));
      }
      continue;
    }
    if (m == ".byte") {
      for (size_t i = 1; i < t.size(); i++) {
        image.push_back(static_cast<uint8_t>(eval(t[i], ln)));
      }
      continue;
    }
    if (m == ".ascii") {
      const std::string& lit = t[1];
      for (size_t i = 1; i + 1 < lit.size(); i++) {
        if (lit[i] == '\\') {
          i++;
          image.push_back(static_cast<uint8_t>(Unescape(lit[i], ln)));
        } else {
          image.push_back(static_cast<uint8_t>(lit[i]));
        }
      }
      continue;
    }

    // Pseudo-instructions.
    if (m == "la") {
      uint32_t v = static_cast<uint32_t>(eval(t[2], ln));
      uint8_t ra = reg(1);
      emit32(Encode(Op::kMovhi, ra, 0, static_cast<uint16_t>(v >> 16)));
      emit32(Encode(Op::kOri, ra, 0, static_cast<uint16_t>(v & 0xffff)));
      continue;
    }
    if (m == "call") {
      emit32(Encode(Op::kJal, kRegLr, 0, branch_off(1)));
      continue;
    }
    if (m == "ret") {
      emit32(Encode(Op::kJr, kRegLr, 0, 0));
      continue;
    }

    struct Fmt {
      Op op;
      enum Kind { kNone, kRaImm, kRaRb, kRaRbImm, kImmOnly, kRa, kRaRbBranch, kPort } kind;
    };
    static const std::map<std::string, Fmt> kTable = {
        {"nop", {Op::kNop, Fmt::kNone}},
        {"halt", {Op::kHalt, Fmt::kNone}},
        {"movi", {Op::kMovi, Fmt::kRaImm}},
        {"movhi", {Op::kMovhi, Fmt::kRaImm}},
        {"ori", {Op::kOri, Fmt::kRaImm}},
        {"mov", {Op::kMov, Fmt::kRaRb}},
        {"add", {Op::kAdd, Fmt::kRaRb}},
        {"sub", {Op::kSub, Fmt::kRaRb}},
        {"mul", {Op::kMul, Fmt::kRaRb}},
        {"divu", {Op::kDivu, Fmt::kRaRb}},
        {"remu", {Op::kRemu, Fmt::kRaRb}},
        {"and", {Op::kAnd, Fmt::kRaRb}},
        {"or", {Op::kOr, Fmt::kRaRb}},
        {"xor", {Op::kXor, Fmt::kRaRb}},
        {"shl", {Op::kShl, Fmt::kRaRb}},
        {"shr", {Op::kShr, Fmt::kRaRb}},
        {"sra", {Op::kSra, Fmt::kRaRb}},
        {"addi", {Op::kAddi, Fmt::kRaImm}},
        {"slt", {Op::kSlt, Fmt::kRaRb}},
        {"sltu", {Op::kSltu, Fmt::kRaRb}},
        {"lw", {Op::kLw, Fmt::kRaRbImm}},
        {"sw", {Op::kSw, Fmt::kRaRbImm}},
        {"lb", {Op::kLb, Fmt::kRaRbImm}},
        {"sb", {Op::kSb, Fmt::kRaRbImm}},
        {"beq", {Op::kBeq, Fmt::kRaRbBranch}},
        {"bne", {Op::kBne, Fmt::kRaRbBranch}},
        {"blt", {Op::kBlt, Fmt::kRaRbBranch}},
        {"bge", {Op::kBge, Fmt::kRaRbBranch}},
        {"bltu", {Op::kBltu, Fmt::kRaRbBranch}},
        {"bgeu", {Op::kBgeu, Fmt::kRaRbBranch}},
        {"jmp", {Op::kJmp, Fmt::kImmOnly}},
        {"jal", {Op::kJal, Fmt::kRaImm}},  // imm is a label (branch target)
        {"jr", {Op::kJr, Fmt::kRa}},
        {"jalr", {Op::kJalr, Fmt::kRaRb}},
        {"in", {Op::kIn, Fmt::kPort}},
        {"out", {Op::kOut, Fmt::kPort}},
        {"ei", {Op::kEi, Fmt::kNone}},
        {"di", {Op::kDi, Fmt::kNone}},
        {"iret", {Op::kIret, Fmt::kNone}},
    };

    auto f = kTable.find(m);
    if (f == kTable.end()) {
      throw AsmError(ln, "unknown mnemonic: " + m);
    }
    const Fmt& fmt = f->second;
    switch (fmt.kind) {
      case Fmt::kNone:
        emit32(Encode(fmt.op, 0, 0, 0));
        break;
      case Fmt::kRaImm:
        if (fmt.op == Op::kJal) {
          emit32(Encode(fmt.op, reg(1), 0, branch_off(2)));
        } else {
          emit32(Encode(fmt.op, reg(1), 0, imm16s(2)));
        }
        break;
      case Fmt::kRaRb:
        emit32(Encode(fmt.op, reg(1), reg(2), 0));
        break;
      case Fmt::kRaRbImm: {
        uint8_t ra = reg(1);
        uint8_t rb = reg(2);
        uint16_t imm = (t.size() > 3) ? imm16s(3) : 0;
        emit32(Encode(fmt.op, ra, rb, imm));
        break;
      }
      case Fmt::kImmOnly:
        emit32(Encode(fmt.op, 0, 0, branch_off(1)));
        break;
      case Fmt::kRa:
        emit32(Encode(fmt.op, reg(1), 0, 0));
        break;
      case Fmt::kRaRbBranch:
        emit32(Encode(fmt.op, reg(1), reg(2), branch_off(3)));
        break;
      case Fmt::kPort:
        emit32(Encode(fmt.op, reg(1), 0, imm16s(2)));
        break;
    }
  }

  return image;
}

}  // namespace avm
