#include "src/vm/analysis/analysis.h"

namespace avm {
namespace analysis {

ImageAnalysis AnalyzeImage(ByteView image, size_t mem_size,
                           bool with_reaching_defs) {
  ImageAnalysis a;
  a.cfg = BuildCfg(image);
  a.doms = ComputeDominators(a.cfg);
  a.live = ComputeLiveness(a.cfg, image);
  if (with_reaching_defs) {
    a.reach = ComputeReachingDefs(a.cfg, image);
  }
  a.report = VerifyImage(image, mem_size, a.cfg);
  return a;
}

}  // namespace analysis
}  // namespace avm
