// Static basic-block discovery and control-flow-graph recovery for
// AVM-32 guest images (the "agreed-upon VM image" of §4.5 / §5.2).
//
// The auditor's semantic check is only as strong as its knowledge of the
// program both sides agreed to run; this module gives every consumer —
// the avm-lint image verifier, the analysis-guided JIT (src/vm/jit) and
// the optional pre-audit pass (AuditConfig::verify_image) — one shared,
// ahead-of-time view of that program instead of re-deriving structure
// one hot block at a time during replay.
//
// Discovery is a conservative reachability traversal from the
// architectural entry points (the reset vector and, when the image is
// large enough, the IRQ vector), using the same Decode() the
// interpreter and the JIT use:
//
//  * direct branches/jumps contribute both edges (taken + fall-through);
//  * JAL/JALR mark their return site (pc+4) as an entry-like head,
//    because the matching JR is indirect and cannot be resolved
//    statically — return sites are therefore reachable by construction;
//  * JR/JALR/IRET end a block with *unknown* successors
//    (BasicBlock::ends_indirect); downstream dataflow treats such exits
//    maximally conservatively (everything live, nothing known).
//
// Words never reached by this traversal are data as far as the CFG is
// concerned; the verifier (src/vm/analysis/verifier.h) refines that
// classification and reports findings.
#ifndef SRC_VM_ANALYSIS_CFG_H_
#define SRC_VM_ANALYSIS_CFG_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/util/bytes.h"
#include "src/vm/isa.h"

namespace avm {
namespace analysis {

// Why a basic block stopped consuming instructions.
enum class BlockEnd : uint8_t {
  kBranch,    // Conditional branch: taken + fall-through successors.
  kJump,      // JMP/JAL: single direct successor.
  kIndirect,  // JR/JALR/IRET: successors unknown.
  kHalt,      // HALT: no successors.
  kIllegal,   // Undecodable opcode: execution would fault here.
  kSplit,     // Fell into the head of another block (fall-through edge).
  kOffImage,  // Ran past the end of the image (fetch would fault or
              // continue into zeroed memory, which the verifier flags).
};

struct BasicBlock {
  uint32_t id = 0;
  uint32_t start = 0;  // Byte address of the first instruction.
  uint32_t end = 0;    // One past the last instruction (start + 4*n).
  BlockEnd terminator = BlockEnd::kSplit;
  // Raw opcode byte of the final instruction (meaningful for kBranch /
  // kJump / kIndirect / kHalt; the decoder key for consumers).
  uint8_t terminator_op = 0;
  bool ends_indirect = false;  // kIndirect: successor set is unknown.
  // True when this head is reachable only conservatively: the reset /
  // IRQ vectors, and every JAL/JALR return site (its JR is indirect).
  bool entry_like = false;
  std::vector<uint32_t> succs;  // Block ids, deduplicated, in-image only.
  std::vector<uint32_t> preds;
  // Direct branch/jump target that lies outside the image, if any
  // (reported by the verifier as a jump-out-of-image finding).
  bool has_oob_target = false;
  uint32_t oob_target = 0;

  uint32_t insn_count() const { return (end - start) / 4; }
};

struct Cfg {
  std::vector<BasicBlock> blocks;  // Sorted by start address.
  // Head byte address -> block id.
  std::unordered_map<uint32_t, uint32_t> block_at;
  // One flag per image word: covered by a reachable block.
  std::vector<uint8_t> is_code;
  std::vector<uint32_t> entry_blocks;  // Ids of entry_like blocks.
  uint32_t image_bytes = 0;

  const BasicBlock* BlockContaining(uint32_t addr) const;
  const BasicBlock* BlockAt(uint32_t head) const {
    auto it = block_at.find(head);
    return it == block_at.end() ? nullptr : &blocks[it->second];
  }
  bool IsCodeWord(uint32_t addr) const {
    return addr % 4 == 0 && addr / 4 < is_code.size() && is_code[addr / 4] != 0;
  }
};

// True for opcodes that end a basic block (any control transfer, HALT,
// or an undecodable opcode byte).
bool IsBlockTerminator(uint8_t opcode);

// True for the opcode bytes the interpreter can decode at all.
bool IsValidOpcode(uint8_t opcode);

// Direct target of a branch/JMP/JAL at `pc` (targets are word offsets
// relative to the next instruction).
inline uint32_t DirectTarget(uint32_t pc, const Insn& in) {
  return pc + 4 + static_cast<uint32_t>(in.SImm() * 4);
}

// Recovers the CFG of `image` (loaded at guest address 0).
Cfg BuildCfg(ByteView image);

}  // namespace analysis
}  // namespace avm

#endif  // SRC_VM_ANALYSIS_CFG_H_
