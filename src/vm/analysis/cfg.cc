#include "src/vm/analysis/cfg.h"

#include <algorithm>
#include <cstring>
#include <deque>

namespace avm {
namespace analysis {

namespace {

uint32_t WordAt(ByteView image, uint32_t addr) {
  uint32_t w;
  std::memcpy(&w, image.data() + addr, 4);
  return w;
}

bool InImage(ByteView image, uint32_t addr) {
  return addr % 4 == 0 && image.size() >= 4 && addr <= image.size() - 4;
}

}  // namespace

bool IsValidOpcode(uint8_t opcode) {
  switch (static_cast<Op>(opcode)) {
    case Op::kNop:
    case Op::kHalt:
    case Op::kMovi:
    case Op::kMovhi:
    case Op::kOri:
    case Op::kMov:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDivu:
    case Op::kRemu:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kSra:
    case Op::kAddi:
    case Op::kSlt:
    case Op::kSltu:
    case Op::kLw:
    case Op::kSw:
    case Op::kLb:
    case Op::kSb:
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
    case Op::kJmp:
    case Op::kJal:
    case Op::kJr:
    case Op::kJalr:
    case Op::kIn:
    case Op::kOut:
    case Op::kEi:
    case Op::kDi:
    case Op::kIret:
      return true;
    default:
      return false;
  }
}

bool IsBlockTerminator(uint8_t opcode) {
  switch (static_cast<Op>(opcode)) {
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
    case Op::kJmp:
    case Op::kJal:
    case Op::kJr:
    case Op::kJalr:
    case Op::kHalt:
    case Op::kIret:
      return true;
    default:
      return !IsValidOpcode(opcode);
  }
}

const BasicBlock* Cfg::BlockContaining(uint32_t addr) const {
  // blocks is sorted by start; find the last block with start <= addr.
  auto it = std::upper_bound(blocks.begin(), blocks.end(), addr,
                             [](uint32_t a, const BasicBlock& b) { return a < b.start; });
  if (it == blocks.begin()) {
    return nullptr;
  }
  --it;
  return (addr >= it->start && addr < it->end) ? &*it : nullptr;
}

Cfg BuildCfg(ByteView image) {
  Cfg cfg;
  cfg.image_bytes = static_cast<uint32_t>(image.size());
  cfg.is_code.assign(image.size() / 4, 0);
  if (image.size() < 4) {
    return cfg;
  }

  // Phase 1: reachability sweep. `heads` collects every block-head
  // address; `entry_like` the subset reachable only conservatively.
  std::vector<uint8_t> visited(image.size() / 4, 0);  // Word scanned.
  std::vector<uint8_t> is_head(image.size() / 4, 0);
  std::vector<uint8_t> head_entry_like(image.size() / 4, 0);
  std::deque<uint32_t> work;

  auto add_head = [&](uint32_t addr, bool entry_like) {
    if (!InImage(image, addr)) {
      return;  // Out-of-image target; recorded per block below.
    }
    if (entry_like) {
      head_entry_like[addr / 4] = 1;
    }
    if (is_head[addr / 4]) {
      return;
    }
    is_head[addr / 4] = 1;
    work.push_back(addr);
  };

  add_head(kResetVector, true);
  if (InImage(image, kIrqVector)) {
    add_head(kIrqVector, true);
  }

  while (!work.empty()) {
    uint32_t pc = work.front();
    work.pop_front();
    // Scan forward from this head until a terminator or a word we have
    // already scanned (its continuation is covered by that earlier scan).
    while (InImage(image, pc) && !visited[pc / 4]) {
      visited[pc / 4] = 1;
      const Insn in = Decode(WordAt(image, pc));
      const uint8_t op_byte = static_cast<uint8_t>(WordAt(image, pc) >> 24);
      if (!IsValidOpcode(op_byte)) {
        break;  // Fault point; nothing follows.
      }
      switch (in.op) {
        case Op::kBeq:
        case Op::kBne:
        case Op::kBlt:
        case Op::kBge:
        case Op::kBltu:
        case Op::kBgeu:
          add_head(DirectTarget(pc, in), false);
          add_head(pc + 4, false);
          break;
        case Op::kJmp:
          add_head(DirectTarget(pc, in), false);
          break;
        case Op::kJal:
          add_head(DirectTarget(pc, in), false);
          // The matching return (JR) is indirect: the return site is
          // reachable, but from a statically unknown predecessor.
          add_head(pc + 4, true);
          break;
        case Op::kJalr:
          add_head(pc + 4, true);
          break;
        default:
          break;
      }
      if (IsBlockTerminator(op_byte)) {
        break;
      }
      pc += 4;
    }
  }

  // Phase 2: materialize blocks between heads over the visited words.
  std::vector<uint32_t> head_addrs;
  for (size_t w = 0; w < is_head.size(); w++) {
    if (is_head[w] && visited[w]) {
      head_addrs.push_back(static_cast<uint32_t>(w * 4));
    }
  }
  std::sort(head_addrs.begin(), head_addrs.end());

  for (uint32_t head : head_addrs) {
    BasicBlock b;
    b.id = static_cast<uint32_t>(cfg.blocks.size());
    b.start = head;
    b.entry_like = head_entry_like[head / 4] != 0;
    uint32_t pc = head;
    while (true) {
      if (!InImage(image, pc)) {
        b.terminator = BlockEnd::kOffImage;
        break;
      }
      if (pc != head && is_head[pc / 4]) {
        b.terminator = BlockEnd::kSplit;  // Fall-through into the next head.
        break;
      }
      const uint32_t word = WordAt(image, pc);
      const uint8_t op_byte = static_cast<uint8_t>(word >> 24);
      cfg.is_code[pc / 4] = 1;
      pc += 4;
      if (IsBlockTerminator(op_byte)) {
        b.terminator_op = op_byte;
        if (!IsValidOpcode(op_byte)) {
          b.terminator = BlockEnd::kIllegal;
        } else {
          switch (static_cast<Op>(op_byte)) {
            case Op::kHalt:
              b.terminator = BlockEnd::kHalt;
              break;
            case Op::kJmp:
            case Op::kJal:
              b.terminator = BlockEnd::kJump;
              break;
            case Op::kJr:
            case Op::kJalr:
            case Op::kIret:
              b.terminator = BlockEnd::kIndirect;
              b.ends_indirect = true;
              break;
            default:
              b.terminator = BlockEnd::kBranch;
              break;
          }
        }
        break;
      }
    }
    b.end = pc;
    cfg.block_at[head] = b.id;
    cfg.blocks.push_back(std::move(b));
  }

  // Phase 3: edges.
  auto link = [&](BasicBlock& from, uint32_t target) {
    if (!InImage(image, target) || !cfg.block_at.count(target)) {
      from.has_oob_target = true;
      from.oob_target = target;
      return;
    }
    const uint32_t to = cfg.block_at.at(target);
    if (std::find(from.succs.begin(), from.succs.end(), to) == from.succs.end()) {
      from.succs.push_back(to);
      cfg.blocks[to].preds.push_back(from.id);
    }
  };
  for (BasicBlock& b : cfg.blocks) {
    const uint32_t last = b.end - 4;
    const Insn in =
        b.insn_count() > 0 ? Decode(WordAt(image, last)) : Insn{Op::kNop, 0, 0, 0};
    switch (b.terminator) {
      case BlockEnd::kBranch:
        link(b, DirectTarget(last, in));
        link(b, b.end);
        break;
      case BlockEnd::kJump:
        link(b, DirectTarget(last, in));
        break;
      case BlockEnd::kSplit:
        link(b, b.end);
        break;
      case BlockEnd::kIndirect:
      case BlockEnd::kHalt:
      case BlockEnd::kIllegal:
      case BlockEnd::kOffImage:
        break;
    }
    if (b.entry_like) {
      cfg.entry_blocks.push_back(b.id);
    }
  }
  return cfg;
}

}  // namespace analysis
}  // namespace avm
