// Register dataflow over a recovered CFG: per-block liveness, reaching
// definitions, and a dominator tree.
//
// All analyses are conservative with respect to what the CFG cannot
// see: blocks that end in an indirect transfer (JR/JALR/IRET), HALT, a
// fault, or run off the image treat every guest register as live-out
// and every definition as escaping, and IRQ delivery is modeled by
// making the IRQ-vector block an entry with nothing known. The JIT uses
// liveness only to elide *intra-region* register writebacks that are
// provably re-defined before any possible exit; it never changes the
// architectural state observable at an exit or icount landmark.
#ifndef SRC_VM_ANALYSIS_DATAFLOW_H_
#define SRC_VM_ANALYSIS_DATAFLOW_H_

#include <cstdint>
#include <vector>

#include "src/vm/analysis/cfg.h"

namespace avm {
namespace analysis {

// Bit i set = guest register ri.
using RegMask = uint16_t;
constexpr RegMask kAllRegs = 0xffff;

// Registers read / written by one instruction. Conservative: an opcode
// the decoder rejects uses and defines nothing (execution faults there).
RegMask InsnUses(const Insn& in);
RegMask InsnDefs(const Insn& in);

// True for opcodes that can neither fault, touch memory, perform I/O,
// nor transfer control: the pure register-to-register compute subset.
// Inside a run of pure ops the only way to leave JIT-compiled code is
// at the block entry, which is what makes dead-writeback elimination
// across such a run sound.
bool IsPureComputeOp(uint8_t opcode);

struct Liveness {
  // Indexed by block id.
  std::vector<RegMask> live_in;
  std::vector<RegMask> live_out;
  std::vector<RegMask> use;   // Upward-exposed uses.
  std::vector<RegMask> def;   // Registers defined anywhere in the block.
};

// Backward may-analysis; blocks with unknown successors get
// live_out = kAllRegs.
Liveness ComputeLiveness(const Cfg& cfg, ByteView image);

// One definition site: instruction address + register it defines.
struct DefSite {
  uint32_t addr = 0;
  uint8_t reg = 0;
};

struct ReachingDefs {
  std::vector<DefSite> sites;  // All definition sites, in address order.
  // Indexed by block id; bit i refers to sites[i].
  std::vector<std::vector<uint64_t>> in;   // Defs reaching block entry.
  std::vector<std::vector<uint64_t>> out;  // Defs live past block exit.

  bool Reaches(uint32_t block, size_t site) const {
    return block < in.size() && site / 64 < in[block].size() &&
           (in[block][site / 64] >> (site % 64) & 1) != 0;
  }
};

// Forward may-analysis at block granularity. Entry-like blocks start
// with a synthetic "unknown" state: no site bits set, which consumers
// must read as "anything may reach here" for entry blocks.
ReachingDefs ComputeReachingDefs(const Cfg& cfg, ByteView image);

struct DominatorTree {
  static constexpr uint32_t kNone = 0xffffffff;
  // Immediate dominator per block id; entry blocks and unreachable
  // blocks have kNone (a virtual root dominates all entries).
  std::vector<uint32_t> idom;

  bool Dominates(uint32_t a, uint32_t b) const {
    while (b != kNone) {
      if (a == b) {
        return true;
      }
      b = idom[b];
    }
    return false;
  }
};

// Iterative dominators (Cooper-Harvey-Kennedy) over a virtual root that
// fans out to every entry-like block.
DominatorTree ComputeDominators(const Cfg& cfg);

}  // namespace analysis
}  // namespace avm

#endif  // SRC_VM_ANALYSIS_DATAFLOW_H_
