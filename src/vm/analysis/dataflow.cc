#include "src/vm/analysis/dataflow.h"

#include <algorithm>
#include <cstring>

namespace avm {
namespace analysis {

namespace {

uint32_t WordAt(ByteView image, uint32_t addr) {
  uint32_t w;
  std::memcpy(&w, image.data() + addr, 4);
  return w;
}

RegMask Bit(uint8_t reg) { return static_cast<RegMask>(1u << (reg & 0xf)); }

// Reverse-postorder over the CFG from every entry, so the iterative
// solvers converge in a handful of passes instead of O(blocks).
std::vector<uint32_t> ReversePostorder(const Cfg& cfg) {
  std::vector<uint32_t> order;
  order.reserve(cfg.blocks.size());
  std::vector<uint8_t> state(cfg.blocks.size(), 0);  // 0 new, 1 open, 2 done.
  // Iterative DFS; second element is the next successor index to visit.
  std::vector<std::pair<uint32_t, size_t>> stack;
  auto visit = [&](uint32_t root) {
    if (state[root] != 0) {
      return;
    }
    state[root] = 1;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [id, next] = stack.back();
      const BasicBlock& b = cfg.blocks[id];
      if (next < b.succs.size()) {
        const uint32_t s = b.succs[next++];
        if (state[s] == 0) {
          state[s] = 1;
          stack.emplace_back(s, 0);
        }
      } else {
        state[id] = 2;
        order.push_back(id);
        stack.pop_back();
      }
    }
  };
  for (uint32_t e : cfg.entry_blocks) {
    visit(e);
  }
  // Blocks unreachable even from entry-like heads (possible when a head
  // was split mid-scan); append so every block still gets solved.
  for (uint32_t id = 0; id < cfg.blocks.size(); id++) {
    visit(id);
  }
  std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace

RegMask InsnUses(const Insn& in) {
  switch (in.op) {
    case Op::kMovi:
    case Op::kMovhi:
    case Op::kJal:
    case Op::kIn:
      return 0;
    case Op::kOri:
    case Op::kAddi:
      return Bit(in.ra);
    case Op::kMov:
      return Bit(in.rb);
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDivu:
    case Op::kRemu:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kSra:
    case Op::kSlt:
    case Op::kSltu:
      return Bit(in.ra) | Bit(in.rb);
    case Op::kLw:
    case Op::kLb:
      return Bit(in.rb);
    case Op::kSw:
    case Op::kSb:
      return Bit(in.ra) | Bit(in.rb);
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
      return Bit(in.ra) | Bit(in.rb);
    case Op::kJr:
      return Bit(in.ra);
    case Op::kJalr:
      return Bit(in.rb);
    case Op::kOut:
      return Bit(in.ra);
    case Op::kNop:
    case Op::kHalt:
    case Op::kJmp:
    case Op::kEi:
    case Op::kDi:
    case Op::kIret:
      return 0;
    default:
      return 0;
  }
}

RegMask InsnDefs(const Insn& in) {
  switch (in.op) {
    case Op::kMovi:
    case Op::kMovhi:
    case Op::kOri:
    case Op::kMov:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDivu:
    case Op::kRemu:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kSra:
    case Op::kAddi:
    case Op::kSlt:
    case Op::kSltu:
    case Op::kLw:
    case Op::kLb:
    case Op::kJal:
    case Op::kJalr:
    case Op::kIn:
      return Bit(in.ra);
    default:
      return 0;
  }
}

bool IsPureComputeOp(uint8_t opcode) {
  switch (static_cast<Op>(opcode)) {
    case Op::kMovi:
    case Op::kMovhi:
    case Op::kOri:
    case Op::kMov:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDivu:  // Division by zero is defined (0xffffffff), no fault.
    case Op::kRemu:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kSra:
    case Op::kAddi:
    case Op::kSlt:
    case Op::kSltu:
      return true;
    default:
      return false;
  }
}

Liveness ComputeLiveness(const Cfg& cfg, ByteView image) {
  const size_t n = cfg.blocks.size();
  Liveness lv;
  lv.live_in.assign(n, 0);
  lv.live_out.assign(n, 0);
  lv.use.assign(n, 0);
  lv.def.assign(n, 0);

  for (size_t i = 0; i < n; i++) {
    const BasicBlock& b = cfg.blocks[i];
    RegMask use = 0;
    RegMask def = 0;
    for (uint32_t pc = b.start; pc < b.end; pc += 4) {
      const Insn in = Decode(WordAt(image, pc));
      use |= static_cast<RegMask>(InsnUses(in) & ~def);
      def |= InsnDefs(in);
    }
    lv.use[i] = use;
    lv.def[i] = def;
  }

  const std::vector<uint32_t> rpo = ReversePostorder(cfg);
  bool changed = true;
  while (changed) {
    changed = false;
    // Backward problem: iterate in postorder (reverse of RPO).
    for (auto it = rpo.rbegin(); it != rpo.rend(); ++it) {
      const uint32_t id = *it;
      const BasicBlock& b = cfg.blocks[id];
      RegMask out = 0;
      // Unknown successors (indirect exits, faults, the end of the
      // image) and terminal blocks keep everything live: HALT state is
      // inspected by the auditor, and an IRQ could resume anywhere.
      if (b.succs.empty() || b.ends_indirect) {
        out = kAllRegs;
      }
      for (uint32_t s : b.succs) {
        out |= lv.live_in[s];
      }
      const RegMask in_mask = static_cast<RegMask>(lv.use[id] | (out & ~lv.def[id]));
      if (out != lv.live_out[id] || in_mask != lv.live_in[id]) {
        lv.live_out[id] = out;
        lv.live_in[id] = in_mask;
        changed = true;
      }
    }
  }
  return lv;
}

ReachingDefs ComputeReachingDefs(const Cfg& cfg, ByteView image) {
  ReachingDefs rd;
  const size_t n = cfg.blocks.size();

  // Enumerate definition sites in address order.
  for (const BasicBlock& b : cfg.blocks) {
    for (uint32_t pc = b.start; pc < b.end; pc += 4) {
      const Insn in = Decode(WordAt(image, pc));
      const RegMask defs = InsnDefs(in);
      if (defs != 0) {
        rd.sites.push_back(DefSite{pc, in.ra});
      }
    }
  }
  const size_t words = (rd.sites.size() + 63) / 64;
  rd.in.assign(n, std::vector<uint64_t>(words, 0));
  rd.out.assign(n, std::vector<uint64_t>(words, 0));

  // Per-block gen/kill. kill = all sites (anywhere) defining a register
  // this block also defines; gen = the block's own last def per register.
  std::vector<std::vector<uint64_t>> gen(n, std::vector<uint64_t>(words, 0));
  std::vector<std::vector<uint64_t>> kill(n, std::vector<uint64_t>(words, 0));
  // sites_for_reg[r] = bitset of sites defining r.
  std::vector<std::vector<uint64_t>> sites_for_reg(kNumRegs,
                                                   std::vector<uint64_t>(words, 0));
  for (size_t s = 0; s < rd.sites.size(); s++) {
    sites_for_reg[rd.sites[s].reg & 0xf][s / 64] |= 1ull << (s % 64);
  }
  // Map address -> site index for gen computation.
  size_t site_idx = 0;
  for (size_t i = 0; i < n; i++) {
    const BasicBlock& b = cfg.blocks[i];
    // Last site per register within the block.
    int last_site[kNumRegs];
    std::fill(std::begin(last_site), std::end(last_site), -1);
    for (uint32_t pc = b.start; pc < b.end; pc += 4) {
      const Insn in = Decode(WordAt(image, pc));
      if (InsnDefs(in) != 0) {
        last_site[in.ra & 0xf] = static_cast<int>(site_idx);
        site_idx++;
      }
    }
    for (int r = 0; r < kNumRegs; r++) {
      if (last_site[r] < 0) {
        continue;
      }
      for (size_t w = 0; w < words; w++) {
        kill[i][w] |= sites_for_reg[r][w];
      }
      gen[i][last_site[r] / 64] |= 1ull << (last_site[r] % 64);
    }
  }

  const std::vector<uint32_t> rpo = ReversePostorder(cfg);
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t id : rpo) {
      const BasicBlock& b = cfg.blocks[id];
      std::vector<uint64_t> in_set(words, 0);
      for (uint32_t p : b.preds) {
        for (size_t w = 0; w < words; w++) {
          in_set[w] |= rd.out[p][w];
        }
      }
      std::vector<uint64_t> out_set(words, 0);
      for (size_t w = 0; w < words; w++) {
        out_set[w] = gen[id][w] | (in_set[w] & ~kill[id][w]);
      }
      if (in_set != rd.in[id] || out_set != rd.out[id]) {
        rd.in[id] = std::move(in_set);
        rd.out[id] = std::move(out_set);
        changed = true;
      }
    }
  }
  return rd;
}

DominatorTree ComputeDominators(const Cfg& cfg) {
  DominatorTree dt;
  const size_t n = cfg.blocks.size();
  dt.idom.assign(n, DominatorTree::kNone);
  if (n == 0) {
    return dt;
  }

  // Virtual root = index n; it is the (only) idom of every entry block.
  constexpr uint32_t kUnset = 0xfffffffe;
  const uint32_t root = static_cast<uint32_t>(n);
  std::vector<uint32_t> idom(n + 1, kUnset);
  idom[root] = root;
  std::vector<uint8_t> is_entry(n, 0);
  for (uint32_t e : cfg.entry_blocks) {
    is_entry[e] = 1;
  }

  const std::vector<uint32_t> rpo = ReversePostorder(cfg);
  std::vector<uint32_t> rpo_num(n + 1, 0);
  for (size_t i = 0; i < rpo.size(); i++) {
    rpo_num[rpo[i]] = static_cast<uint32_t>(i + 1);
  }
  rpo_num[root] = 0;

  auto intersect = [&](uint32_t a, uint32_t b) {
    while (a != b) {
      while (rpo_num[a] > rpo_num[b]) {
        a = idom[a];
      }
      while (rpo_num[b] > rpo_num[a]) {
        b = idom[b];
      }
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t id : rpo) {
      uint32_t new_idom = kUnset;
      if (is_entry[id]) {
        new_idom = root;
      }
      for (uint32_t p : cfg.blocks[id].preds) {
        if (idom[p] == kUnset) {
          continue;
        }
        new_idom = new_idom == kUnset ? p : intersect(new_idom, p);
      }
      if (new_idom != kUnset && idom[id] != new_idom) {
        idom[id] = new_idom;
        changed = true;
      }
    }
  }

  for (size_t i = 0; i < n; i++) {
    dt.idom[i] = (idom[i] == kUnset || idom[i] == root) ? DominatorTree::kNone
                                                        : idom[i];
  }
  return dt;
}

}  // namespace analysis
}  // namespace avm
