// Guest-image verifier: classifies every word of an AVM-32 image and
// reports structural problems before the image is ever executed or
// replayed (the AuditConfig::verify_image pre-audit pass, and the
// avm-lint CLI).
//
// The checks are deliberately conservative: a finding of kError means
// the reachable part of the program, as recovered by BuildCfg, can
// fault or leave the agreed-upon image; warnings flag constructs that
// are legal but weaken static reasoning (self-modifying stores,
// unreachable code-shaped regions).
#ifndef SRC_VM_ANALYSIS_VERIFIER_H_
#define SRC_VM_ANALYSIS_VERIFIER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/vm/analysis/cfg.h"
#include "src/vm/analysis/dataflow.h"

namespace avm {
namespace analysis {

enum class FindingKind : uint8_t {
  kIllegalOpcode,       // Reachable word whose opcode the decoder rejects.
  kJumpOutOfImage,      // Direct branch/jump target outside the image.
  kFallthroughOffImage, // Reachable straight-line path runs past the image.
  kStoreToCode,         // Store with statically-known address into a
                        // decoded code range (self-modifying code).
  kOobStaticAccess,     // Load/store with statically-known address
                        // outside guest memory.
  kUnreachableCode,     // Code-shaped run of words no path reaches.
};

enum class Severity : uint8_t { kWarning, kError };

struct Finding {
  FindingKind kind;
  Severity severity;
  uint32_t addr = 0;    // Offending instruction address.
  uint32_t target = 0;  // Jump target / effective address, if meaningful.
  std::string detail;
};

// Classification of each image word.
enum class WordClass : uint8_t { kData, kCode, kUnreachableCode };

struct VerifyReport {
  std::vector<Finding> findings;
  std::vector<WordClass> words;  // One entry per image word.
  // Page indices (addr / kPageSize) containing code that a reachable,
  // statically-resolved store can write to. The JIT pre-arms its
  // self-modification seam for these pages.
  std::vector<uint32_t> selfmod_pages;
  int errors = 0;
  int warnings = 0;

  bool ok() const { return errors == 0; }
};

const char* FindingKindName(FindingKind kind);

// Verifies `image` against a guest with `mem_size` bytes of RAM.
// `cfg`/`live` must come from the same image (AnalyzeImage bundles the
// whole pipeline).
VerifyReport VerifyImage(ByteView image, size_t mem_size, const Cfg& cfg);

}  // namespace analysis
}  // namespace avm

#endif  // SRC_VM_ANALYSIS_VERIFIER_H_
