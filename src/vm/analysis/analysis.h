// Facade over the static-analysis pipeline: one call recovers the CFG,
// dominators, dataflow, and the verifier report for a guest image.
#ifndef SRC_VM_ANALYSIS_ANALYSIS_H_
#define SRC_VM_ANALYSIS_ANALYSIS_H_

#include <cstddef>

#include "src/vm/analysis/cfg.h"
#include "src/vm/analysis/dataflow.h"
#include "src/vm/analysis/verifier.h"

namespace avm {
namespace analysis {

struct ImageAnalysis {
  Cfg cfg;
  DominatorTree doms;
  Liveness live;
  ReachingDefs reach;
  VerifyReport report;
};

// Analyzes `image` as loaded at guest address 0 into `mem_size` bytes
// of RAM. `with_reaching_defs` can be turned off by latency-sensitive
// callers (the Machine's JIT hint path) — reaching defs is the one
// analysis with super-linear cost on large images.
ImageAnalysis AnalyzeImage(ByteView image, size_t mem_size,
                           bool with_reaching_defs = true);

}  // namespace analysis
}  // namespace avm

#endif  // SRC_VM_ANALYSIS_ANALYSIS_H_
