#include "src/vm/analysis/verifier.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>

#include "src/util/bytes.h"

namespace avm {
namespace analysis {

namespace {

uint32_t WordAt(ByteView image, uint32_t addr) {
  uint32_t w;
  std::memcpy(&w, image.data() + addr, 4);
  return w;
}

// Three-point constant lattice per register.
struct RegVal {
  enum Kind : uint8_t { kTop, kConst, kVaries } kind = kTop;
  uint32_t value = 0;

  static RegVal Top() { return RegVal{}; }
  static RegVal Const(uint32_t v) { return RegVal{kConst, v}; }
  static RegVal Varies() { return RegVal{kVaries, 0}; }

  bool operator==(const RegVal& o) const {
    return kind == o.kind && (kind != kConst || value == o.value);
  }
};

RegVal Meet(const RegVal& a, const RegVal& b) {
  if (a.kind == RegVal::kTop) {
    return b;
  }
  if (b.kind == RegVal::kTop) {
    return a;
  }
  if (a.kind == RegVal::kConst && b.kind == RegVal::kConst && a.value == b.value) {
    return a;
  }
  return RegVal::Varies();
}

using RegState = std::array<RegVal, kNumRegs>;

RegState AllVaries() {
  RegState s;
  s.fill(RegVal::Varies());
  return s;
}

RegState AllConstZero() {
  RegState s;
  s.fill(RegVal::Const(0));
  return s;
}

// Transfer function for one instruction (register effects only).
void Apply(const Insn& in, RegState& s) {
  auto ra = [&]() -> RegVal& { return s[in.ra & 0xf]; };
  auto rb = [&]() -> const RegVal& { return s[in.rb & 0xf]; };
  auto binop = [&](auto f) {
    if (ra().kind == RegVal::kConst && rb().kind == RegVal::kConst) {
      ra() = RegVal::Const(f(ra().value, rb().value));
    } else {
      ra() = RegVal::Varies();
    }
  };
  switch (in.op) {
    case Op::kMovi:
      ra() = RegVal::Const(static_cast<uint32_t>(in.SImm()));
      break;
    case Op::kMovhi:
      ra() = RegVal::Const(static_cast<uint32_t>(in.imm) << 16);
      break;
    case Op::kOri:
      if (ra().kind == RegVal::kConst) {
        ra() = RegVal::Const(ra().value | in.imm);
      } else {
        ra() = RegVal::Varies();
      }
      break;
    case Op::kAddi:
      if (ra().kind == RegVal::kConst) {
        ra() = RegVal::Const(ra().value + static_cast<uint32_t>(in.SImm()));
      } else {
        ra() = RegVal::Varies();
      }
      break;
    case Op::kMov:
      ra() = rb();
      break;
    case Op::kAdd:
      binop([](uint32_t a, uint32_t b) { return a + b; });
      break;
    case Op::kSub:
      binop([](uint32_t a, uint32_t b) { return a - b; });
      break;
    case Op::kMul:
      binop([](uint32_t a, uint32_t b) { return a * b; });
      break;
    case Op::kDivu:
      binop([](uint32_t a, uint32_t b) { return b == 0 ? 0xffffffffu : a / b; });
      break;
    case Op::kRemu:
      binop([](uint32_t a, uint32_t b) { return b == 0 ? a : a % b; });
      break;
    case Op::kAnd:
      binop([](uint32_t a, uint32_t b) { return a & b; });
      break;
    case Op::kOr:
      binop([](uint32_t a, uint32_t b) { return a | b; });
      break;
    case Op::kXor:
      binop([](uint32_t a, uint32_t b) { return a ^ b; });
      break;
    case Op::kShl:
      binop([](uint32_t a, uint32_t b) { return a << (b & 31); });
      break;
    case Op::kShr:
      binop([](uint32_t a, uint32_t b) { return a >> (b & 31); });
      break;
    case Op::kSra:
      binop([](uint32_t a, uint32_t b) {
        return static_cast<uint32_t>(static_cast<int32_t>(a) >> (b & 31));
      });
      break;
    case Op::kSlt:
      binop([](uint32_t a, uint32_t b) {
        return static_cast<int32_t>(a) < static_cast<int32_t>(b) ? 1u : 0u;
      });
      break;
    case Op::kSltu:
      binop([](uint32_t a, uint32_t b) { return a < b ? 1u : 0u; });
      break;
    case Op::kJal:
    case Op::kJalr:
      // Link value is a known constant, but leaving it Varies keeps the
      // verifier from treating return-address arithmetic as resolved.
      ra() = RegVal::Varies();
      break;
    case Op::kLw:
    case Op::kLb:
    case Op::kIn:
      ra() = RegVal::Varies();
      break;
    default:
      break;  // No register effects.
  }
}

}  // namespace

const char* FindingKindName(FindingKind kind) {
  switch (kind) {
    case FindingKind::kIllegalOpcode:
      return "illegal-opcode";
    case FindingKind::kJumpOutOfImage:
      return "jump-out-of-image";
    case FindingKind::kFallthroughOffImage:
      return "fallthrough-off-image";
    case FindingKind::kStoreToCode:
      return "store-to-code";
    case FindingKind::kOobStaticAccess:
      return "oob-static-access";
    case FindingKind::kUnreachableCode:
      return "unreachable-code";
  }
  return "unknown";
}

VerifyReport VerifyImage(ByteView image, size_t mem_size, const Cfg& cfg) {
  VerifyReport rep;
  const size_t n_words = image.size() / 4;
  rep.words.assign(n_words, WordClass::kData);
  for (size_t w = 0; w < n_words && w < cfg.is_code.size(); w++) {
    if (cfg.is_code[w]) {
      rep.words[w] = WordClass::kCode;
    }
  }

  auto add = [&](FindingKind kind, Severity sev, uint32_t addr, uint32_t target,
                 std::string detail) {
    rep.findings.push_back(Finding{kind, sev, addr, target, std::move(detail)});
    if (sev == Severity::kError) {
      rep.errors++;
    } else {
      rep.warnings++;
    }
  };

  // --- Structural findings straight off the CFG. ---
  for (const BasicBlock& b : cfg.blocks) {
    if (b.terminator == BlockEnd::kIllegal && b.insn_count() > 0) {
      const uint32_t addr = b.end - 4;
      char buf[64];
      std::snprintf(buf, sizeof buf, "opcode 0x%02x is not decodable",
                    static_cast<unsigned>(WordAt(image, addr) >> 24));
      add(FindingKind::kIllegalOpcode, Severity::kError, addr, 0, buf);
    }
    if (b.terminator == BlockEnd::kOffImage) {
      add(FindingKind::kFallthroughOffImage, Severity::kError, b.end - 4, b.end,
          "reachable code falls off the end of the image");
    }
    if (b.has_oob_target) {
      add(FindingKind::kJumpOutOfImage, Severity::kError, b.end - 4, b.oob_target,
          "direct branch/jump target lies outside the image");
    }
  }

  // --- Forward constant propagation for statically-known addresses. ---
  const size_t nb = cfg.blocks.size();
  std::vector<RegState> in_state(nb);
  std::vector<RegState> out_state(nb);
  std::vector<uint8_t> seeded(nb, 0);
  // Entry injections: reset vector starts from the architectural all-
  // zero register file; the IRQ vector and JAL/JALR return sites can be
  // entered with anything.
  for (uint32_t e : cfg.entry_blocks) {
    const BasicBlock& b = cfg.blocks[e];
    in_state[e] = b.start == kResetVector ? AllConstZero() : AllVaries();
    seeded[e] = 1;
  }

  auto transfer_block = [&](uint32_t id, RegState s) {
    const BasicBlock& b = cfg.blocks[id];
    for (uint32_t pc = b.start; pc < b.end; pc += 4) {
      Apply(Decode(WordAt(image, pc)), s);
    }
    return s;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t id = 0; id < nb; id++) {
      RegState in = seeded[id] ? in_state[id] : RegState{};
      bool any = seeded[id] != 0;
      for (uint32_t p : cfg.blocks[id].preds) {
        for (int r = 0; r < kNumRegs; r++) {
          in[r] = Meet(in[r], out_state[p][r]);
        }
        any = true;
      }
      if (!any) {
        continue;  // Unreachable in the constant-prop sense; skip.
      }
      if (!(in == in_state[id]) || !seeded[id]) {
        in_state[id] = in;
      }
      RegState out = transfer_block(id, in);
      for (int r = 0; r < kNumRegs; r++) {
        if (!(out[r] == out_state[id][r])) {
          out_state[id] = out;
          changed = true;
          break;
        }
      }
    }
  }

  // --- Final pass: memory ops with resolved addresses. ---
  std::vector<uint8_t> selfmod_page_set((mem_size + kPageSize - 1) / kPageSize, 0);
  for (uint32_t id = 0; id < nb; id++) {
    const BasicBlock& b = cfg.blocks[id];
    RegState s = in_state[id];
    for (uint32_t pc = b.start; pc < b.end; pc += 4) {
      const Insn in = Decode(WordAt(image, pc));
      const bool is_store = in.op == Op::kSw || in.op == Op::kSb;
      const bool is_load = in.op == Op::kLw || in.op == Op::kLb;
      if ((is_store || is_load) && s[in.rb & 0xf].kind == RegVal::kConst) {
        const uint32_t addr =
            s[in.rb & 0xf].value + static_cast<uint32_t>(in.SImm());
        const uint32_t width = (in.op == Op::kLw || in.op == Op::kSw) ? 4 : 1;
        if (addr > mem_size || mem_size - addr < width) {
          add(FindingKind::kOobStaticAccess, Severity::kError, pc, addr,
              is_store ? "store with statically-known out-of-bounds address"
                       : "load with statically-known out-of-bounds address");
        } else if (is_store) {
          // Overlap with any decoded code word?
          bool hits_code = false;
          for (uint32_t a = addr & ~3u; a < addr + width; a += 4) {
            if (cfg.IsCodeWord(a)) {
              hits_code = true;
            }
          }
          if (hits_code) {
            add(FindingKind::kStoreToCode, Severity::kWarning, pc, addr,
                "store with statically-known address writes a code word "
                "(self-modifying)");
            if (addr / kPageSize < selfmod_page_set.size()) {
              selfmod_page_set[addr / kPageSize] = 1;
            }
          }
        }
      }
      Apply(in, s);
    }
  }
  for (uint32_t pg = 0; pg < selfmod_page_set.size(); pg++) {
    if (selfmod_page_set[pg]) {
      rep.selfmod_pages.push_back(pg);
    }
  }

  // --- Unreachable code-shaped regions. ---
  // A maximal run of >= 3 decodable words ending in a genuine terminator
  // (so constant pools full of small integers, which decode as NOPs,
  // are not flagged).
  size_t w = 0;
  while (w < n_words) {
    if (rep.words[w] != WordClass::kData) {
      w++;
      continue;
    }
    size_t run_end = w;
    bool saw_terminator = false;
    while (run_end < n_words && rep.words[run_end] == WordClass::kData &&
           IsValidOpcode(static_cast<uint8_t>(WordAt(image, run_end * 4) >> 24))) {
      const uint8_t op = static_cast<uint8_t>(WordAt(image, run_end * 4) >> 24);
      run_end++;
      if (IsBlockTerminator(op)) {
        saw_terminator = true;
        break;
      }
    }
    if (saw_terminator && run_end - w >= 3) {
      for (size_t k = w; k < run_end; k++) {
        rep.words[k] = WordClass::kUnreachableCode;
      }
      char buf[96];
      std::snprintf(buf, sizeof buf,
                    "%zu code-shaped words at 0x%04zx are unreachable",
                    run_end - w, w * 4);
      add(FindingKind::kUnreachableCode, Severity::kWarning,
          static_cast<uint32_t>(w * 4), 0, buf);
    }
    w = std::max(run_end, w + 1);
  }

  return rep;
}

}  // namespace analysis
}  // namespace avm
