// The AVM-32 interpreter. Deterministic by construction: the only
// nondeterminism enters through DeviceBackend::PortIn and through
// host-initiated DMA writes / interrupts, all of which the AVMM records.
#ifndef SRC_VM_MACHINE_H_
#define SRC_VM_MACHINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/util/bytes.h"
#include "src/vm/isa.h"

namespace avm {

class Machine;

namespace analysis {
struct ImageAnalysis;
}  // namespace analysis

namespace jit {
class JitEngine;
struct JitStats;
}  // namespace jit

// Host-side device backend. The recording AVMM samples real sources and
// logs; the replaying auditor feeds values back from the log.
class DeviceBackend {
 public:
  virtual ~DeviceBackend() = default;

  // Result of a guest IN instruction. Every call is a nondeterministic
  // input in the sense of §4.4 (synchronous: its position in the
  // instruction stream is implied, only the value must be logged).
  virtual uint32_t PortIn(Machine& m, uint16_t port) = 0;

  // Guest OUT instruction: a deterministic output (checked during replay)
  // or a device command (e.g. packet send, which reads kNetTxBuf).
  virtual void PortOut(Machine& m, uint16_t port, uint32_t value) = 0;
};

// Architectural CPU state (everything a snapshot must capture besides RAM).
struct CpuState {
  uint32_t regs[kNumRegs] = {0};
  uint32_t pc = kResetVector;
  uint32_t saved_pc = 0;     // Return address for IRET.
  uint32_t irq_cause = 0;    // Cause of the most recently taken interrupt.
  uint32_t pending_irqs = 0;  // Bitmask of raised-but-untaken interrupts.
  bool int_enabled = false;   // Guests opt in with EI.
  bool halted = false;
  uint64_t icount = 0;  // Retired instructions; the replay landmark.

  Bytes Serialize() const;
  static CpuState Deserialize(ByteView data);
  bool operator==(const CpuState& o) const;
};

// Optional per-instruction hook, used by replay-time analysis (§7.5).
// Invoked after each retired instruction with the pre-execution CPU
// state. Never attached on the recording path.
class InstructionObserver {
 public:
  virtual ~InstructionObserver() = default;
  virtual void OnRetired(const Machine& m, const CpuState& before, const Insn& insn) = 0;
};

enum class RunExit {
  kHalted,         // Guest executed HALT.
  kIcountReached,  // Instruction budget exhausted.
  kFault,          // Illegal instruction / bad memory access.
};

// One pre-decoded instruction of the decoded cache: the fields of Insn
// with the sign extension already applied, so the hot loop never touches
// the encoding again. Kept per word (index pc/4) and validated per page,
// so self-modifying guests re-decode exactly the pages they overwrite.
struct DecodedInsn {
  uint8_t opcode = 0;  // Raw opcode byte; dispatch key.
  uint8_t ra = 0;
  uint8_t rb = 0;
  uint8_t pad_ = 0;
  int32_t simm = 0;  // Sign-extended immediate; truncate back to 16 bits
                     // for the zero-extended uses (ORI, MOVHI, ports).

  uint16_t Imm() const { return static_cast<uint16_t>(simm); }
};

class Machine {
 public:
  // mem_size must be a multiple of kPageSize and large enough for the
  // NIC DMA windows.
  Machine(size_t mem_size, DeviceBackend* backend);
  ~Machine();

  // Copies `image` into memory at `addr` (typically 0).
  void LoadImage(ByteView image, uint32_t addr = 0);

  // Executes until HALT, a fault, or `max_instructions` more instructions
  // have retired.
  RunExit Run(uint64_t max_instructions);
  // Executes until cpu().icount == target (or halt/fault).
  RunExit RunUntilIcount(uint64_t target_icount);

  // Queues an interrupt; it is taken at the next instruction boundary at
  // which interrupts are enabled. Callers record cpu().icount at raise
  // time so replay can re-raise at the identical landmark.
  void RaiseIrq(uint32_t cause);
  uint32_t pending_irqs() const { return cpu_.pending_irqs; }

  // Replaces the architectural state (snapshot restore). Memory is set
  // separately with WriteMemRange.
  void SetCpuState(const CpuState& s) { cpu_ = s; }

  const CpuState& cpu() const { return cpu_; }
  CpuState& mutable_cpu() { return cpu_; }
  bool faulted() const { return faulted_; }
  const std::string& fault_reason() const { return fault_reason_; }

  // Host-side memory access (DMA, snapshots, cheat injection in tests).
  uint32_t ReadMem32(uint32_t addr) const;
  uint8_t ReadMem8(uint32_t addr) const;
  void WriteMem32(uint32_t addr, uint32_t value);
  void WriteMem8(uint32_t addr, uint8_t value);
  void WriteMemRange(uint32_t addr, ByteView data);
  Bytes ReadMemRange(uint32_t addr, size_t len) const;

  size_t mem_size() const { return mem_.size(); }
  size_t PageCount() const { return mem_.size() / kPageSize; }
  ByteView PageData(size_t page_index) const;

  // Dirty-page tracking for incremental snapshots (one byte per page so
  // JIT-generated code can set flags without vector<bool> bit math).
  const std::vector<uint8_t>& dirty_pages() const { return dirty_; }
  std::vector<uint32_t> CollectDirtyPages() const;
  void ClearDirtyPages();
  void MarkAllDirty();

  DeviceBackend* backend() const { return backend_; }
  void set_backend(DeviceBackend* b) { backend_ = b; }

  // Attaches/detaches the analysis observer (nullptr = none). Slows the
  // interpreter down while attached; intended for offline replay only.
  void set_observer(InstructionObserver* o) { observer_ = o; }

  // Toggles the pre-decoded instruction cache + threaded-dispatch fast
  // path. Off runs the original per-word-decode Step() loop; execution
  // is bit-for-bit identical either way (asserted by machine_test and
  // the replay-equivalence tests), only the speed differs.
  void set_decoded_cache_enabled(bool on) { icache_enabled_ = on; }
  bool decoded_cache_enabled() const { return icache_enabled_; }
  // True when the build uses computed-goto threaded dispatch (GNU/Clang
  // with AVM_THREADED_DISPATCH); false for the portable switch fallback.
  static bool ThreadedDispatchCompiledIn();

  // Toggles the top execution tier: x86-64 dynamic binary translation
  // of hot basic blocks (src/vm/jit). On by default where compiled in;
  // off (or on non-x86-64 builds) runs the decoded-cache interpreter.
  // All three tiers retire bit-for-bit identical architectural state.
  void set_jit_enabled(bool on);
  bool jit_enabled() const { return jit_enabled_; }
  // True when the build can translate to native code on this host
  // (CMake option AVM_JIT, x86-64 only).
  static bool JitCompiledIn();
  // W^X discipline for the JIT code buffer (RW<->RX flips instead of a
  // single RWX mapping). Must be set before the first JIT-tier run.
  void set_jit_harden_wx(bool on) { jit_harden_wx_ = on; }
  // Translation-layer counters; nullptr until the JIT tier first runs.
  const jit::JitStats* jit_stats() const;

  // Toggles analysis-guided translation: a static pass over the loaded
  // image (src/vm/analysis) feeds the JIT region fusion across direct
  // jumps, liveness-based dead-writeback elimination, and pre-armed
  // self-modification pages. Purely advisory — architectural state at
  // every exit and icount landmark is bit-identical either way; off
  // reproduces the plain per-block PR 9 translator. On by default.
  void set_jit_analysis_enabled(bool on);
  bool jit_analysis_enabled() const { return jit_analysis_enabled_; }

 private:
  bool Step();  // Returns false when execution must stop (halt/fault).
  bool StepObserved();  // Step() + InstructionObserver notification.
  void Fault(const std::string& why);
  void TakeIrqIfPending();

  // The fast path: decoded-cache + threaded-dispatch execution until
  // `target_icount` (or halt/fault). Only entered with no observer.
  RunExit RunLoop(uint64_t target_icount);
  void DecodePage(size_t page);
  // Drops the decoded entries of the page containing byte `addr`; called
  // from every memory-write path next to the dirty_ marking. Also drops
  // JIT translations when the page holds any (jit_code_pages_ is all
  // zero until the JIT engine exists, so the extra check costs nothing
  // on builds and runs that never enter the JIT tier).
  void InvalidateDecoded(uint32_t addr) {
    if (!icache_valid_.empty()) {
      icache_valid_[addr / kPageSize] = 0;
    }
    if (!jit_code_pages_.empty() && jit_code_pages_[addr / kPageSize] != 0) {
      JitInvalidateWrite(addr);
    }
  }

  // The JIT tier: block dispatch loop, lazy engine construction, and the
  // out-of-line invalidation slow path behind InvalidateDecoded.
  RunExit RunJit(uint64_t target_icount);
  void EnsureJit();
  void JitInvalidateWrite(uint32_t addr);
  // Re-runs the static analysis over [0, image_limit_) when stale and
  // installs (or clears) the result as the engine's hints.
  void RefreshJitHints();

  CpuState cpu_;
  std::vector<uint8_t> mem_;
  std::vector<uint8_t> dirty_;  // One byte per page; see dirty_pages().
  bool faulted_ = false;
  std::string fault_reason_;
  DeviceBackend* backend_;
  InstructionObserver* observer_ = nullptr;

  // Decoded instruction cache (allocated lazily on first fast-path run).
  bool icache_enabled_ = true;
  std::vector<DecodedInsn> icache_;    // One slot per 32-bit word.
  std::vector<uint8_t> icache_valid_;  // One flag per page.

  // JIT tier state (engine constructed lazily on first JIT-tier run).
  bool jit_enabled_ = true;
  bool jit_harden_wx_ = false;
  bool jit_failed_ = false;  // Executable memory unavailable; stay off.
  bool jit_analysis_enabled_ = true;
  bool jit_hints_stale_ = true;
  uint32_t image_limit_ = 0;  // Bytes of memory covered by LoadImage.
  // Hints must outlive the engine that holds a pointer to them, hence
  // declared first (members destroy in reverse order).
  std::unique_ptr<analysis::ImageAnalysis> jit_hints_;
  std::unique_ptr<jit::JitEngine> jit_;
  // One byte per page, 1 while the page holds live translations. Owned
  // here (written by the engine) so the inline write paths above can
  // test it without touching the engine.
  std::vector<uint8_t> jit_code_pages_;
};

// A trivial backend for tests: IN returns scripted constants (0 default),
// OUT is collected.
class NullBackend : public DeviceBackend {
 public:
  uint32_t PortIn(Machine&, uint16_t) override { return 0; }
  void PortOut(Machine&, uint16_t, uint32_t) override {}
};

}  // namespace avm

#endif  // SRC_VM_MACHINE_H_
