// Two-pass assembler for AVM-32. Guest images (the game, the key-value
// store) are written in this assembly and assembled at run time, playing
// the role of the paper's "agreed-upon VM image" (§5.2).
#ifndef SRC_VM_ASSEMBLER_H_
#define SRC_VM_ASSEMBLER_H_

#include <stdexcept>
#include <string>
#include <string_view>

#include "src/util/bytes.h"

namespace avm {

class AsmError : public std::runtime_error {
 public:
  AsmError(size_t line, const std::string& what)
      : std::runtime_error("asm line " + std::to_string(line) + ": " + what), line_(line) {}
  size_t line() const { return line_; }

 private:
  size_t line_;
};

// Assembles `source` into a binary image loaded at address 0.
//
// Syntax summary:
//   label:                      ; labels (also on their own line)
//   movi r1, 42                 ; imm: decimal, 0xhex, 'c', label, .equ name
//   la   r1, buffer             ; pseudo, 2 words (movhi+ori), any 32-bit value
//   add  r1, r2                 ; ALU ops: ra = ra op rb
//   lw   r1, [r2+8]             ; memory; offset optional
//   beq  r1, r2, target         ; branches to labels
//   call func / ret             ; pseudos for jal lr / jr lr
//   in   r1, CLOCK_LO           ; named or numeric ports
//   out  r1, CONSOLE
//   ei / di / iret / halt / nop
//   .org 0x100                  ; move assembly cursor (forward only)
//   .word 1, 2, label           ; 32-bit data
//   .byte 1, 2                  ; 8-bit data
//   .ascii "text"               ; raw bytes, supports \n \0 \\ \" escapes
//   .space 64                   ; zero fill
//   .equ NAME, value            ; assembly-time constant
// Registers: r0..r15, sp (=r13), lr (=r14). Comments start with ';' or '#'.
//
// Built-in constants: port names (CLOCK_LO, CLOCK_HI, RAND, INPUT,
// NET_RXLEN, IRQ_CAUSE, CONSOLE, FRAME, NET_TXLEN, NET_RXDONE, DEBUG) and
// memory map (TX_BUF, RX_BUF, NET_BUF_SIZE).
Bytes Assemble(std::string_view source);

}  // namespace avm

#endif  // SRC_VM_ASSEMBLER_H_
