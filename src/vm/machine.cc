#include "src/vm/machine.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "src/util/serde.h"
#include "src/vm/analysis/analysis.h"
#include "src/vm/jit/jit.h"

// Dispatch mode for the fast path (RunLoop). Computed-goto threaded
// dispatch on GNU-compatible compilers, unless the build disables it
// with -DAVM_THREADED_DISPATCH=0 (CMake option AVM_THREADED_DISPATCH);
// every other compiler gets the portable switch fallback. Both variants
// expand the same instruction bodies, so they cannot drift apart.
#if !defined(AVM_THREADED_DISPATCH)
#define AVM_THREADED_DISPATCH 1
#endif
#if AVM_THREADED_DISPATCH && (defined(__GNUC__) || defined(__clang__))
#define AVM_USE_COMPUTED_GOTO 1
#else
#define AVM_USE_COMPUTED_GOTO 0
#endif

namespace avm {

Bytes CpuState::Serialize() const {
  Writer w;
  for (uint32_t r : regs) {
    w.U32(r);
  }
  w.U32(pc);
  w.U32(saved_pc);
  w.U32(irq_cause);
  w.U32(pending_irqs);
  w.U8(int_enabled ? 1 : 0);
  w.U8(halted ? 1 : 0);
  w.U64(icount);
  return w.Take();
}

CpuState CpuState::Deserialize(ByteView data) {
  Reader r(data);
  CpuState s;
  for (auto& reg : s.regs) {
    reg = r.U32();
  }
  s.pc = r.U32();
  s.saved_pc = r.U32();
  s.irq_cause = r.U32();
  s.pending_irqs = r.U32();
  s.int_enabled = r.U8() != 0;
  s.halted = r.U8() != 0;
  s.icount = r.U64();
  r.ExpectEnd();
  return s;
}

bool CpuState::operator==(const CpuState& o) const {
  for (int i = 0; i < kNumRegs; i++) {
    if (regs[i] != o.regs[i]) {
      return false;
    }
  }
  return pc == o.pc && saved_pc == o.saved_pc && irq_cause == o.irq_cause &&
         pending_irqs == o.pending_irqs && int_enabled == o.int_enabled && halted == o.halted &&
         icount == o.icount;
}

Machine::Machine(size_t mem_size, DeviceBackend* backend) : backend_(backend) {
  if (mem_size % kPageSize != 0 || mem_size < kNetRxBuf + kNetBufSize) {
    throw std::invalid_argument("Machine: bad memory size");
  }
  mem_.assign(mem_size, 0);
  dirty_.assign(mem_size / kPageSize, 0);
}

// Out of line: jit::JitEngine is incomplete in the header.
Machine::~Machine() = default;

void Machine::LoadImage(ByteView image, uint32_t addr) {
  if (addr + image.size() > mem_.size()) {
    throw std::invalid_argument("Machine::LoadImage: image does not fit");
  }
  std::memcpy(mem_.data() + addr, image.data(), image.size());
  MarkAllDirty();
  icache_valid_.assign(icache_valid_.size(), 0);
  // The static-analysis window grows to cover everything ever loaded as
  // an image (analysis always starts from the reset vector at 0).
  const uint64_t limit = static_cast<uint64_t>(addr) + image.size();
  if (limit > image_limit_) {
    image_limit_ = static_cast<uint32_t>(limit);
  }
  jit_hints_stale_ = true;
  if (jit_ != nullptr) {
    jit_->Flush();
  }
}

void Machine::Fault(const std::string& why) {
  faulted_ = true;
  cpu_.halted = true;
  fault_reason_ = why + " at pc=0x" + HexEncode(Bytes{static_cast<uint8_t>(cpu_.pc >> 24),
                                                      static_cast<uint8_t>(cpu_.pc >> 16),
                                                      static_cast<uint8_t>(cpu_.pc >> 8),
                                                      static_cast<uint8_t>(cpu_.pc)});
}

void Machine::RaiseIrq(uint32_t cause) {
  if (cause == 0 || cause > 31) {
    throw std::invalid_argument("Machine::RaiseIrq: bad cause");
  }
  cpu_.pending_irqs |= 1u << cause;
}

void Machine::TakeIrqIfPending() {
  if (!cpu_.int_enabled || cpu_.pending_irqs == 0) {
    return;
  }
  uint32_t cause = static_cast<uint32_t>(__builtin_ctz(cpu_.pending_irqs));
  cpu_.pending_irqs &= ~(1u << cause);
  cpu_.irq_cause = cause;
  cpu_.saved_pc = cpu_.pc;
  cpu_.pc = kIrqVector;
  cpu_.int_enabled = false;
}

uint32_t Machine::ReadMem32(uint32_t addr) const {
  // `addr > size - 4` rather than `addr + 4 > size`: the latter wraps for
  // addr >= 0xFFFFFFFC and would wave the access through. mem_.size() is
  // always >= one page, so the subtraction cannot underflow.
  if (addr % 4 != 0 || addr > mem_.size() - 4) {
    throw std::out_of_range("ReadMem32: bad address");
  }
  uint32_t v;
  std::memcpy(&v, mem_.data() + addr, 4);
  return v;
}

uint8_t Machine::ReadMem8(uint32_t addr) const {
  if (addr >= mem_.size()) {
    throw std::out_of_range("ReadMem8: bad address");
  }
  return mem_[addr];
}

void Machine::WriteMem32(uint32_t addr, uint32_t value) {
  // Overflow-safe form; see ReadMem32.
  if (addr % 4 != 0 || addr > mem_.size() - 4) {
    throw std::out_of_range("WriteMem32: bad address");
  }
  std::memcpy(mem_.data() + addr, &value, 4);
  dirty_[addr / kPageSize] = true;
  InvalidateDecoded(addr);
}

void Machine::WriteMem8(uint32_t addr, uint8_t value) {
  if (addr >= mem_.size()) {
    throw std::out_of_range("WriteMem8: bad address");
  }
  mem_[addr] = value;
  dirty_[addr / kPageSize] = true;
  InvalidateDecoded(addr);
}

void Machine::WriteMemRange(uint32_t addr, ByteView data) {
  if (addr + data.size() > mem_.size()) {
    throw std::out_of_range("WriteMemRange: bad range");
  }
  std::memcpy(mem_.data() + addr, data.data(), data.size());
  for (size_t p = addr / kPageSize; p <= (addr + data.size() - 1) / kPageSize && !data.empty();
       p++) {
    dirty_[p] = true;
    if (!icache_valid_.empty()) {
      icache_valid_[p] = 0;
    }
    if (!jit_code_pages_.empty() && jit_code_pages_[p] != 0) {
      JitInvalidateWrite(static_cast<uint32_t>(p * kPageSize));
    }
  }
}

Bytes Machine::ReadMemRange(uint32_t addr, size_t len) const {
  if (addr + len > mem_.size()) {
    throw std::out_of_range("ReadMemRange: bad range");
  }
  return Bytes(mem_.begin() + addr, mem_.begin() + addr + len);
}

ByteView Machine::PageData(size_t page_index) const {
  return ByteView(mem_.data() + page_index * kPageSize, kPageSize);
}

std::vector<uint32_t> Machine::CollectDirtyPages() const {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < dirty_.size(); i++) {
    if (dirty_[i]) {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
  return out;
}

void Machine::ClearDirtyPages() {
  dirty_.assign(dirty_.size(), 0);
}

void Machine::MarkAllDirty() {
  dirty_.assign(dirty_.size(), 1);
}

bool Machine::Step() {
  TakeIrqIfPending();

  if (observer_ != nullptr) {
    return StepObserved();
  }

  if (cpu_.pc % 4 != 0 || cpu_.pc > mem_.size() - 4) {
    Fault("instruction fetch out of bounds");
    return false;
  }
  uint32_t word;
  std::memcpy(&word, mem_.data() + cpu_.pc, 4);
  Insn in = Decode(word);
  uint32_t next_pc = cpu_.pc + 4;
  uint32_t* r = cpu_.regs;
  auto branch = [&](bool taken) {
    if (taken) {
      next_pc = cpu_.pc + 4 + static_cast<uint32_t>(in.SImm() * 4);
    }
  };

  switch (in.op) {
    case Op::kNop:
      break;
    case Op::kHalt:
      cpu_.halted = true;
      cpu_.icount++;
      cpu_.pc = next_pc;
      return false;

    case Op::kMovi:
      r[in.ra] = static_cast<uint32_t>(in.SImm());
      break;
    case Op::kMovhi:
      r[in.ra] = static_cast<uint32_t>(in.imm) << 16;
      break;
    case Op::kOri:
      r[in.ra] |= in.imm;
      break;
    case Op::kMov:
      r[in.ra] = r[in.rb];
      break;

    case Op::kAdd:
      r[in.ra] += r[in.rb];
      break;
    case Op::kSub:
      r[in.ra] -= r[in.rb];
      break;
    case Op::kMul:
      r[in.ra] *= r[in.rb];
      break;
    case Op::kDivu:
      r[in.ra] = (r[in.rb] == 0) ? 0xffffffffu : r[in.ra] / r[in.rb];
      break;
    case Op::kRemu:
      r[in.ra] = (r[in.rb] == 0) ? r[in.ra] : r[in.ra] % r[in.rb];
      break;
    case Op::kAnd:
      r[in.ra] &= r[in.rb];
      break;
    case Op::kOr:
      r[in.ra] |= r[in.rb];
      break;
    case Op::kXor:
      r[in.ra] ^= r[in.rb];
      break;
    case Op::kShl:
      r[in.ra] <<= (r[in.rb] & 31);
      break;
    case Op::kShr:
      r[in.ra] >>= (r[in.rb] & 31);
      break;
    case Op::kSra:
      r[in.ra] = static_cast<uint32_t>(static_cast<int32_t>(r[in.ra]) >> (r[in.rb] & 31));
      break;
    case Op::kAddi:
      r[in.ra] += static_cast<uint32_t>(in.SImm());
      break;
    case Op::kSlt:
      r[in.ra] = static_cast<int32_t>(r[in.ra]) < static_cast<int32_t>(r[in.rb]) ? 1 : 0;
      break;
    case Op::kSltu:
      r[in.ra] = r[in.ra] < r[in.rb] ? 1 : 0;
      break;

    case Op::kLw: {
      uint32_t addr = r[in.rb] + static_cast<uint32_t>(in.SImm());
      if (addr % 4 != 0 || addr > mem_.size() - 4) {
        Fault("LW out of bounds");
        return false;
      }
      std::memcpy(&r[in.ra], mem_.data() + addr, 4);
      break;
    }
    case Op::kSw: {
      uint32_t addr = r[in.rb] + static_cast<uint32_t>(in.SImm());
      if (addr % 4 != 0 || addr > mem_.size() - 4) {
        Fault("SW out of bounds");
        return false;
      }
      std::memcpy(mem_.data() + addr, &r[in.ra], 4);
      dirty_[addr / kPageSize] = true;
      InvalidateDecoded(addr);
      break;
    }
    case Op::kLb: {
      uint32_t addr = r[in.rb] + static_cast<uint32_t>(in.SImm());
      if (addr >= mem_.size()) {
        Fault("LB out of bounds");
        return false;
      }
      r[in.ra] = mem_[addr];
      break;
    }
    case Op::kSb: {
      uint32_t addr = r[in.rb] + static_cast<uint32_t>(in.SImm());
      if (addr >= mem_.size()) {
        Fault("SB out of bounds");
        return false;
      }
      mem_[addr] = static_cast<uint8_t>(r[in.ra]);
      dirty_[addr / kPageSize] = true;
      InvalidateDecoded(addr);
      break;
    }

    case Op::kBeq:
      branch(r[in.ra] == r[in.rb]);
      break;
    case Op::kBne:
      branch(r[in.ra] != r[in.rb]);
      break;
    case Op::kBlt:
      branch(static_cast<int32_t>(r[in.ra]) < static_cast<int32_t>(r[in.rb]));
      break;
    case Op::kBge:
      branch(static_cast<int32_t>(r[in.ra]) >= static_cast<int32_t>(r[in.rb]));
      break;
    case Op::kBltu:
      branch(r[in.ra] < r[in.rb]);
      break;
    case Op::kBgeu:
      branch(r[in.ra] >= r[in.rb]);
      break;
    case Op::kJmp:
      branch(true);
      break;
    case Op::kJal:
      r[in.ra] = cpu_.pc + 4;
      branch(true);
      break;
    case Op::kJr:
      next_pc = r[in.ra];
      break;
    case Op::kJalr: {
      uint32_t target = r[in.rb];
      r[in.ra] = cpu_.pc + 4;
      next_pc = target;
      break;
    }

    case Op::kIn:
      r[in.ra] = backend_->PortIn(*this, in.imm);
      break;
    case Op::kOut:
      backend_->PortOut(*this, in.imm, r[in.ra]);
      break;

    case Op::kEi:
      cpu_.int_enabled = true;
      break;
    case Op::kDi:
      cpu_.int_enabled = false;
      break;
    case Op::kIret:
      next_pc = cpu_.saved_pc;
      cpu_.int_enabled = true;
      break;

    default:
      Fault("illegal opcode");
      return false;
  }

  cpu_.pc = next_pc;
  cpu_.icount++;
  return !cpu_.halted && !faulted_;
}

bool Machine::StepObserved() {
  // Slow path for replay-time analysis: snapshot the architectural state,
  // execute one instruction via the fast path, then notify the observer.
  CpuState before = cpu_;
  if (before.pc % 4 != 0 || before.pc > mem_.size() - 4) {
    Fault("instruction fetch out of bounds");
    return false;
  }
  uint32_t word;
  std::memcpy(&word, mem_.data() + before.pc, 4);
  Insn insn = Decode(word);
  InstructionObserver* obs = observer_;
  observer_ = nullptr;  // Reenter Step() on the fast path.
  bool cont = Step();
  observer_ = obs;
  observer_->OnRetired(*this, before, insn);
  return cont;
}

RunExit Machine::Run(uint64_t max_instructions) {
  return RunUntilIcount(cpu_.icount + max_instructions);
}

RunExit Machine::RunUntilIcount(uint64_t target_icount) {
  if (cpu_.halted || faulted_) {
    return faulted_ ? RunExit::kFault : RunExit::kHalted;
  }
  if (observer_ == nullptr && icache_enabled_) {
    if (jit_enabled_ && !jit_failed_ && JitCompiledIn()) {
      return RunJit(target_icount);
    }
    return RunLoop(target_icount);
  }
  // Observer attached or decoded cache disabled: the original per-word
  // decode loop. The fast path below retires bit-for-bit the same
  // architectural state; this loop is the reference it is tested against.
  while (cpu_.icount < target_icount) {
    if (!Step()) {
      return faulted_ ? RunExit::kFault : RunExit::kHalted;
    }
  }
  return RunExit::kIcountReached;
}

// The replay fast path. One pass over the straight-line skeleton:
//
//   fetch:  icount-landmark check -> IRQ check -> decoded-cache lookup
//           (page decoded on first touch, re-decoded after any write to
//           it) -> dispatch on the pre-decoded opcode
//   body:   the per-opcode work, reading pre-extended operands
//   commit: pc = next_pc; icount++; back to fetch
//
// pc and icount live in locals and are synced to cpu_ only at exits,
// faults and backend calls (the recorder's clock-stall optimization bumps
// cpu_.icount from inside PortIn, so icount is reloaded after backend
// calls). Architectural behavior is bit-for-bit that of the Step() loop.
RunExit Machine::RunLoop(uint64_t target_icount) {
  if (icache_.empty()) {
    icache_.resize(mem_.size() / 4);
    icache_valid_.assign(mem_.size() / kPageSize, 0);
  }
  uint32_t* const r = cpu_.regs;
  uint8_t* const mem = mem_.data();
  const size_t mem_size = mem_.size();
  const DecodedInsn* const icache = icache_.data();
  uint8_t* const ivalid = icache_valid_.data();
  uint32_t pc = cpu_.pc;
  uint64_t icount = cpu_.icount;
  uint32_t next_pc = 0;
  const DecodedInsn* d = nullptr;

#if AVM_USE_COMPUTED_GOTO
  // Label-address table indexed by the raw opcode byte (the classic
  // direct-threaded interpreter pattern); unused encodings hit Illegal.
#define AVM_ILL &&L_Illegal
#define AVM_ILL4 AVM_ILL, AVM_ILL, AVM_ILL, AVM_ILL
#define AVM_ILL16 AVM_ILL4, AVM_ILL4, AVM_ILL4, AVM_ILL4
  static const void* const kTargets[256] = {
      /* 0x00 */ &&L_Nop, &&L_Halt, AVM_ILL, AVM_ILL, AVM_ILL4, AVM_ILL4, AVM_ILL4,
      /* 0x10 */ &&L_Movi, &&L_Movhi, &&L_Ori, &&L_Mov, AVM_ILL4, AVM_ILL4, AVM_ILL4,
      /* 0x20 */ &&L_Add, &&L_Sub, &&L_Mul, &&L_Divu, &&L_Remu, &&L_And, &&L_Or, &&L_Xor,
      /* 0x28 */ &&L_Shl, &&L_Shr, &&L_Sra, &&L_Addi, &&L_Slt, &&L_Sltu, AVM_ILL, AVM_ILL,
      /* 0x30 */ &&L_Lw, &&L_Sw, &&L_Lb, &&L_Sb, AVM_ILL4, AVM_ILL4, AVM_ILL4,
      /* 0x40 */ &&L_Beq, &&L_Bne, &&L_Blt, &&L_Bge, &&L_Bltu, &&L_Bgeu, &&L_Jmp, &&L_Jal,
      /* 0x48 */ &&L_Jr, &&L_Jalr, AVM_ILL, AVM_ILL, AVM_ILL4,
      /* 0x50 */ &&L_In, &&L_Out, AVM_ILL, AVM_ILL, AVM_ILL4, AVM_ILL4, AVM_ILL4,
      /* 0x60 */ &&L_Ei, &&L_Di, &&L_Iret, AVM_ILL, AVM_ILL4, AVM_ILL4, AVM_ILL4,
      /* 0x70 */ AVM_ILL16, AVM_ILL16, AVM_ILL16, AVM_ILL16, AVM_ILL16,
      /* 0xc0 */ AVM_ILL16, AVM_ILL16, AVM_ILL16, AVM_ILL16,
  };
#undef AVM_ILL16
#undef AVM_ILL4
#undef AVM_ILL
#define VM_CASE(name) L_##name:
#define VM_CASE_ILLEGAL L_Illegal:
#define VM_DISPATCH_BEGIN goto* kTargets[d->opcode];
#define VM_DISPATCH_END
  // Replicated dispatch: every instruction body ends with its own copy
  // of the fetch + indirect jump, so the branch predictor sees one
  // indirect-branch site per opcode (pairwise opcode correlation)
  // instead of a single shared site that mispredicts constantly.
  // The alignment half of the fetch check is skipped here: pc is
  // 4-aligned at every VM_NEXT boundary (sequential flow and word-offset
  // branches preserve alignment; JR/JALR/IRET, whose register targets
  // can misalign pc, re-enter through the fully-checked fetch_irq).
  // With pc aligned and mem_size a page multiple, `pc > mem_size - 4`
  // rejects exactly the fetches the full check would.
#define VM_NEXT                                  \
  do {                                           \
    pc = next_pc;                                \
    icount++;                                    \
    if (icount >= target_icount) {               \
      goto exit_icount;                          \
    }                                            \
    if (pc > mem_size - 4) {                     \
      goto fetch_fault;                          \
    }                                            \
    {                                            \
      const size_t pg_ = pc / kPageSize;         \
      if (!ivalid[pg_]) {                        \
        DecodePage(pg_);                         \
      }                                          \
    }                                            \
    d = icache + pc / 4;                         \
    next_pc = pc + 4;                            \
    goto* kTargets[d->opcode];                   \
  } while (0)
#else
#define VM_CASE(name) case Op::k##name:
#define VM_CASE_ILLEGAL default:
#define VM_DISPATCH_BEGIN switch (static_cast<Op>(d->opcode)) {
#define VM_DISPATCH_END }
#define VM_NEXT goto commit
#endif
  // Ops that may change `pending_irqs && int_enabled` re-enter through
  // the interrupt-checking prologue in both modes.
#define VM_NEXT_IRQ  \
  do {               \
    pc = next_pc;    \
    icount++;        \
    goto fetch_irq;  \
  } while (0)

  // The interrupt-checking fetch. VM_NEXT (the straight-line fast path)
  // skips the interrupt re-check: `pending_irqs && int_enabled` can only
  // change at an EI/IRET, a backend call (RaiseIrq from PortIn/PortOut),
  // or the IRQ dispatch itself — every such path re-enters through
  // here, so the boundary at which an interrupt is taken is identical
  // to the per-step check of the Step() loop.
fetch_irq:
  if (icount >= target_icount) {
    goto exit_icount;
  }
  if (cpu_.pending_irqs != 0 && cpu_.int_enabled) {
    cpu_.pc = pc;
    TakeIrqIfPending();
    pc = cpu_.pc;
  }
#if !AVM_USE_COMPUTED_GOTO
fetch:
#endif
  if (pc % 4 != 0 || pc > mem_size - 4) {
    goto fetch_fault;
  }
  {
    const size_t page = pc / kPageSize;
    if (!ivalid[page]) {
      DecodePage(page);
    }
  }
  d = icache + pc / 4;
  next_pc = pc + 4;
  VM_DISPATCH_BEGIN

  VM_CASE(Nop) { VM_NEXT; }
  VM_CASE(Halt) {
    cpu_.halted = true;
    cpu_.icount = icount + 1;
    cpu_.pc = next_pc;
    return RunExit::kHalted;
  }
  VM_CASE(Movi) {
    r[d->ra] = static_cast<uint32_t>(d->simm);
    VM_NEXT;
  }
  VM_CASE(Movhi) {
    r[d->ra] = static_cast<uint32_t>(d->Imm()) << 16;
    VM_NEXT;
  }
  VM_CASE(Ori) {
    r[d->ra] |= d->Imm();
    VM_NEXT;
  }
  VM_CASE(Mov) {
    r[d->ra] = r[d->rb];
    VM_NEXT;
  }
  VM_CASE(Add) {
    r[d->ra] += r[d->rb];
    VM_NEXT;
  }
  VM_CASE(Sub) {
    r[d->ra] -= r[d->rb];
    VM_NEXT;
  }
  VM_CASE(Mul) {
    r[d->ra] *= r[d->rb];
    VM_NEXT;
  }
  VM_CASE(Divu) {
    r[d->ra] = (r[d->rb] == 0) ? 0xffffffffu : r[d->ra] / r[d->rb];
    VM_NEXT;
  }
  VM_CASE(Remu) {
    r[d->ra] = (r[d->rb] == 0) ? r[d->ra] : r[d->ra] % r[d->rb];
    VM_NEXT;
  }
  VM_CASE(And) {
    r[d->ra] &= r[d->rb];
    VM_NEXT;
  }
  VM_CASE(Or) {
    r[d->ra] |= r[d->rb];
    VM_NEXT;
  }
  VM_CASE(Xor) {
    r[d->ra] ^= r[d->rb];
    VM_NEXT;
  }
  VM_CASE(Shl) {
    r[d->ra] <<= (r[d->rb] & 31);
    VM_NEXT;
  }
  VM_CASE(Shr) {
    r[d->ra] >>= (r[d->rb] & 31);
    VM_NEXT;
  }
  VM_CASE(Sra) {
    r[d->ra] = static_cast<uint32_t>(static_cast<int32_t>(r[d->ra]) >> (r[d->rb] & 31));
    VM_NEXT;
  }
  VM_CASE(Addi) {
    r[d->ra] += static_cast<uint32_t>(d->simm);
    VM_NEXT;
  }
  VM_CASE(Slt) {
    r[d->ra] = static_cast<int32_t>(r[d->ra]) < static_cast<int32_t>(r[d->rb]) ? 1 : 0;
    VM_NEXT;
  }
  VM_CASE(Sltu) {
    r[d->ra] = r[d->ra] < r[d->rb] ? 1 : 0;
    VM_NEXT;
  }
  VM_CASE(Lw) {
    const uint32_t addr = r[d->rb] + static_cast<uint32_t>(d->simm);
    if (addr % 4 != 0 || addr > mem_size - 4) {
      cpu_.pc = pc;
      cpu_.icount = icount;
      Fault("LW out of bounds");
      return RunExit::kFault;
    }
    std::memcpy(&r[d->ra], mem + addr, 4);
    VM_NEXT;
  }
  VM_CASE(Sw) {
    const uint32_t addr = r[d->rb] + static_cast<uint32_t>(d->simm);
    if (addr % 4 != 0 || addr > mem_size - 4) {
      cpu_.pc = pc;
      cpu_.icount = icount;
      Fault("SW out of bounds");
      return RunExit::kFault;
    }
    std::memcpy(mem + addr, &r[d->ra], 4);
    dirty_[addr / kPageSize] = true;
    ivalid[addr / kPageSize] = 0;
    VM_NEXT;
  }
  VM_CASE(Lb) {
    const uint32_t addr = r[d->rb] + static_cast<uint32_t>(d->simm);
    if (addr >= mem_size) {
      cpu_.pc = pc;
      cpu_.icount = icount;
      Fault("LB out of bounds");
      return RunExit::kFault;
    }
    r[d->ra] = mem[addr];
    VM_NEXT;
  }
  VM_CASE(Sb) {
    const uint32_t addr = r[d->rb] + static_cast<uint32_t>(d->simm);
    if (addr >= mem_size) {
      cpu_.pc = pc;
      cpu_.icount = icount;
      Fault("SB out of bounds");
      return RunExit::kFault;
    }
    mem[addr] = static_cast<uint8_t>(r[d->ra]);
    dirty_[addr / kPageSize] = true;
    ivalid[addr / kPageSize] = 0;
    VM_NEXT;
  }
  VM_CASE(Beq) {
    if (r[d->ra] == r[d->rb]) {
      next_pc = pc + 4 + static_cast<uint32_t>(d->simm * 4);
    }
    VM_NEXT;
  }
  VM_CASE(Bne) {
    if (r[d->ra] != r[d->rb]) {
      next_pc = pc + 4 + static_cast<uint32_t>(d->simm * 4);
    }
    VM_NEXT;
  }
  VM_CASE(Blt) {
    if (static_cast<int32_t>(r[d->ra]) < static_cast<int32_t>(r[d->rb])) {
      next_pc = pc + 4 + static_cast<uint32_t>(d->simm * 4);
    }
    VM_NEXT;
  }
  VM_CASE(Bge) {
    if (static_cast<int32_t>(r[d->ra]) >= static_cast<int32_t>(r[d->rb])) {
      next_pc = pc + 4 + static_cast<uint32_t>(d->simm * 4);
    }
    VM_NEXT;
  }
  VM_CASE(Bltu) {
    if (r[d->ra] < r[d->rb]) {
      next_pc = pc + 4 + static_cast<uint32_t>(d->simm * 4);
    }
    VM_NEXT;
  }
  VM_CASE(Bgeu) {
    if (r[d->ra] >= r[d->rb]) {
      next_pc = pc + 4 + static_cast<uint32_t>(d->simm * 4);
    }
    VM_NEXT;
  }
  VM_CASE(Jmp) {
    next_pc = pc + 4 + static_cast<uint32_t>(d->simm * 4);
    VM_NEXT;
  }
  VM_CASE(Jal) {
    r[d->ra] = pc + 4;
    next_pc = pc + 4 + static_cast<uint32_t>(d->simm * 4);
    VM_NEXT;
  }
  VM_CASE(Jr) {
    // Register targets can misalign pc; take the fully-checked fetch.
    next_pc = r[d->ra];
    VM_NEXT_IRQ;
  }
  VM_CASE(Jalr) {
    const uint32_t target = r[d->rb];
    r[d->ra] = pc + 4;
    next_pc = target;
    VM_NEXT_IRQ;
  }
  VM_CASE(In) {
    cpu_.pc = pc;
    cpu_.icount = icount;
    r[d->ra] = backend_->PortIn(*this, d->Imm());
    icount = cpu_.icount;
    goto commit_after_backend;
  }
  VM_CASE(Out) {
    cpu_.pc = pc;
    cpu_.icount = icount;
    backend_->PortOut(*this, d->Imm(), r[d->ra]);
    icount = cpu_.icount;
    goto commit_after_backend;
  }
  VM_CASE(Ei) {
    cpu_.int_enabled = true;
    VM_NEXT_IRQ;
  }
  VM_CASE(Di) {
    cpu_.int_enabled = false;
    VM_NEXT;
  }
  VM_CASE(Iret) {
    next_pc = cpu_.saved_pc;
    cpu_.int_enabled = true;
    VM_NEXT_IRQ;
  }
  VM_CASE_ILLEGAL {
    cpu_.pc = pc;
    cpu_.icount = icount;
    Fault("illegal opcode");
    return RunExit::kFault;
  }
  VM_DISPATCH_END

#if !AVM_USE_COMPUTED_GOTO
commit:
  pc = next_pc;
  icount++;
  if (icount >= target_icount) {
    goto exit_icount;
  }
  goto fetch;
#endif

commit_after_backend:
  // Backends reach the machine through the Machine& they are handed, so
  // they can halt or fault it mid-instruction; mirror Step()'s
  // end-of-instruction check for that (rare) case.
  pc = next_pc;
  icount++;
  if (cpu_.halted || faulted_) {
    cpu_.pc = pc;
    cpu_.icount = icount;
    return faulted_ ? RunExit::kFault : RunExit::kHalted;
  }
  goto fetch_irq;

exit_icount:
  cpu_.pc = pc;
  cpu_.icount = icount;
  return RunExit::kIcountReached;

fetch_fault:
  cpu_.pc = pc;
  cpu_.icount = icount;
  Fault("instruction fetch out of bounds");
  return RunExit::kFault;

#undef VM_CASE
#undef VM_CASE_ILLEGAL
#undef VM_DISPATCH_BEGIN
#undef VM_DISPATCH_END
#undef VM_NEXT
#undef VM_NEXT_IRQ
}

void Machine::DecodePage(size_t page) {
  const uint8_t* src = mem_.data() + page * kPageSize;
  DecodedInsn* out = icache_.data() + page * (kPageSize / 4);
  for (size_t i = 0; i < kPageSize / 4; i++) {
    uint32_t w;
    std::memcpy(&w, src + 4 * i, 4);
    out[i].opcode = static_cast<uint8_t>(w >> 24);
    out[i].ra = static_cast<uint8_t>((w >> 20) & 0xf);
    out[i].rb = static_cast<uint8_t>((w >> 16) & 0xf);
    out[i].simm = static_cast<int16_t>(static_cast<uint16_t>(w & 0xffff));
  }
  icache_valid_[page] = 1;
}

bool Machine::ThreadedDispatchCompiledIn() {
#if AVM_USE_COMPUTED_GOTO
  return true;
#else
  return false;
#endif
}

bool Machine::JitCompiledIn() { return jit::JitSupported(); }

const jit::JitStats* Machine::jit_stats() const {
  return jit_ == nullptr ? nullptr : &jit_->stats();
}

void Machine::set_jit_enabled(bool on) {
  // Flush on disable: RunLoop's store path does not check for live
  // translations (that is what keeps today's interpreter tiers
  // untouched), so no translation may survive into an interpreter-tier
  // run. Re-enabling retranslates from current memory.
  if (!on && jit_ != nullptr) {
    jit_->Flush();
  }
  jit_enabled_ = on;
}

void Machine::JitInvalidateWrite(uint32_t addr) {
  if (jit_ != nullptr) {
    jit_->InvalidateWrite(addr);
  }
}

void Machine::set_jit_analysis_enabled(bool on) {
  if (jit_analysis_enabled_ == on) {
    return;
  }
  jit_analysis_enabled_ = on;
  jit_hints_stale_ = true;  // Applied (and translations flushed) at the
                            // next JIT-tier entry.
}

void Machine::RefreshJitHints() {
  if (!jit_hints_stale_ || jit_ == nullptr) {
    return;
  }
  jit_hints_stale_ = false;
  if (jit_analysis_enabled_ && image_limit_ >= 4) {
    // Reaching defs is skipped: the JIT consumes the CFG, liveness and
    // the verifier's self-modifying-page set only.
    jit_hints_ = std::make_unique<analysis::ImageAnalysis>(analysis::AnalyzeImage(
        ByteView(mem_.data(), std::min<size_t>(image_limit_, mem_.size())),
        mem_.size(), /*with_reaching_defs=*/false));
    jit_->SetAnalysisHints(jit_hints_.get());
  } else {
    jit_->SetAnalysisHints(nullptr);
    jit_hints_.reset();
  }
}

void Machine::EnsureJit() {
  if (jit_ != nullptr || jit_failed_) {
    return;
  }
  // Guest addresses are 32-bit; the generated bounds checks compare
  // against a 32-bit limit.
  if (mem_.size() > 0xFFFFFFFFu) {
    jit_failed_ = true;
    return;
  }
  jit_code_pages_.assign(PageCount(), 0);
  jit::JitConfig cfg;
  cfg.harden_wx = jit_harden_wx_;
  jit_ = std::make_unique<jit::JitEngine>(cfg, mem_.data(), mem_.size(), jit_code_pages_.data(),
                                          PageCount());
  if (!jit_->ok()) {
    jit_.reset();
    jit_code_pages_.clear();
    jit_failed_ = true;  // No executable memory on this host; stay off.
  }
}

// The JIT tier dispatcher. Mirrors RunLoop's fetch_irq boundary: the
// icount-landmark check and the interrupt check happen at every block
// boundary reached through the dispatcher, and chained native blocks
// only span straight-line stretches where `pending_irqs && int_enabled`
// cannot become true (EI/IRET and backend calls are fallback exits).
// Everything the generated code cannot retire exactly is single-stepped
// through the reference interpreter, so replay is bit-for-bit the
// Step() semantics at every tier.
RunExit Machine::RunJit(uint64_t target_icount) {
  EnsureJit();
  if (jit_ == nullptr) {
    return RunLoop(target_icount);
  }
  RefreshJitHints();
  if (icache_valid_.empty()) {
    // Native store tails clear per-page decoded-cache validity through
    // ctx.ivalid, so the map must exist even if RunLoop never ran.
    icache_valid_.assign(PageCount(), 0);
  }
  jit::JitContext& ctx = jit_->ctx();
  ctx.regs = cpu_.regs;
  ctx.mem = mem_.data();
  ctx.dirty = dirty_.data();
  ctx.ivalid = icache_valid_.data();
  ctx.cpu = &cpu_;
  ctx.target = target_icount;

  // One pending chain patch: set at a chain-miss exit, applied when the
  // next iteration obtains the successor block (guarded against flushes
  // in between and against an interrupt redirecting pc).
  uint32_t pending_slot = ~0u;
  uint32_t pending_succ = 0;
  uint64_t pending_gen = 0;

  while (true) {
    if (cpu_.halted || faulted_) {
      return faulted_ ? RunExit::kFault : RunExit::kHalted;
    }
    if (cpu_.icount >= target_icount) {
      return RunExit::kIcountReached;
    }
    TakeIrqIfPending();
    const uint32_t pc = cpu_.pc;
    jit::TranslatedBlock* b = jit_->Lookup(pc);
    if (b == nullptr) {
      b = jit_->MaybeCompile(pc);
    }
    if (b == nullptr) {
      pending_slot = ~0u;
      // Cold or untranslatable head: interpret to the end of this trace
      // block, so compile heat stays anchored on real block heads.
      do {
        bool boundary = true;
        const uint32_t at = cpu_.pc;
        if (at % 4 == 0 && at <= mem_.size() - 4) {
          uint32_t word;
          std::memcpy(&word, mem_.data() + at, 4);
          boundary = jit::EndsTraceBlock(static_cast<uint8_t>(word >> 24));
        }
        if (!Step()) {
          return faulted_ ? RunExit::kFault : RunExit::kHalted;
        }
        if (boundary) {
          break;
        }
      } while (cpu_.icount < target_icount);
      continue;
    }
    if (pending_slot != ~0u) {
      if (pending_gen == jit_->generation() && b->guest_pc == pending_succ) {
        jit_->PatchChain(pending_slot, b);
      }
      pending_slot = ~0u;
    }
    ctx.icount = cpu_.icount;
    ctx.pc = pc;
    const uint32_t exit = jit_->Execute(b);
    cpu_.icount = ctx.icount;
    cpu_.pc = ctx.pc;
    switch (exit) {
      case jit::kExitChainMiss:
        if (ctx.exit_slot != ~0u) {
          pending_slot = ctx.exit_slot;
          pending_succ = ctx.pc;
          pending_gen = jit_->generation();
        }
        break;
      case jit::kExitNoBudget:
        // The block at pc would overshoot the icount landmark (fewer
        // than one block length remains): single-step the reference
        // interpreter to the exact boundary.
        while (cpu_.icount < target_icount) {
          if (!Step()) {
            return faulted_ ? RunExit::kFault : RunExit::kHalted;
          }
        }
        return RunExit::kIcountReached;
      case jit::kExitDynamic:
        // JR/JALR: register targets can misalign pc and need the
        // interrupt re-check; both happen at the top of the loop.
        break;
      case jit::kExitFallback:
        // The instruction at pc is runtime-deferred (IN/OUT/HALT/EI/
        // IRET/illegal, or a memory op that will fault): the
        // interpreter retires it with exact semantics — unless the
        // block before it ended exactly on the icount landmark.
        jit_->CountFallback();
        if (cpu_.icount >= target_icount) {
          return RunExit::kIcountReached;
        }
        if (!Step()) {
          return faulted_ ? RunExit::kFault : RunExit::kHalted;
        }
        break;
      case jit::kExitSelfMod:
        // A store hit a page with live translations (possibly this
        // block's own): drop them and resume at the next instruction.
        jit_->CountSelfMod();
        jit_->InvalidateWrite(ctx.mod_addr);
        break;
      default:
        Fault("jit: bad exit code");
        return RunExit::kFault;
    }
  }
}

}  // namespace avm
