#include "src/vm/machine.h"

#include <cstring>
#include <stdexcept>

#include "src/util/serde.h"

namespace avm {

Bytes CpuState::Serialize() const {
  Writer w;
  for (uint32_t r : regs) {
    w.U32(r);
  }
  w.U32(pc);
  w.U32(saved_pc);
  w.U32(irq_cause);
  w.U32(pending_irqs);
  w.U8(int_enabled ? 1 : 0);
  w.U8(halted ? 1 : 0);
  w.U64(icount);
  return w.Take();
}

CpuState CpuState::Deserialize(ByteView data) {
  Reader r(data);
  CpuState s;
  for (auto& reg : s.regs) {
    reg = r.U32();
  }
  s.pc = r.U32();
  s.saved_pc = r.U32();
  s.irq_cause = r.U32();
  s.pending_irqs = r.U32();
  s.int_enabled = r.U8() != 0;
  s.halted = r.U8() != 0;
  s.icount = r.U64();
  r.ExpectEnd();
  return s;
}

bool CpuState::operator==(const CpuState& o) const {
  for (int i = 0; i < kNumRegs; i++) {
    if (regs[i] != o.regs[i]) {
      return false;
    }
  }
  return pc == o.pc && saved_pc == o.saved_pc && irq_cause == o.irq_cause &&
         pending_irqs == o.pending_irqs && int_enabled == o.int_enabled && halted == o.halted &&
         icount == o.icount;
}

Machine::Machine(size_t mem_size, DeviceBackend* backend) : backend_(backend) {
  if (mem_size % kPageSize != 0 || mem_size < kNetRxBuf + kNetBufSize) {
    throw std::invalid_argument("Machine: bad memory size");
  }
  mem_.assign(mem_size, 0);
  dirty_.assign(mem_size / kPageSize, false);
}

void Machine::LoadImage(ByteView image, uint32_t addr) {
  if (addr + image.size() > mem_.size()) {
    throw std::invalid_argument("Machine::LoadImage: image does not fit");
  }
  std::memcpy(mem_.data() + addr, image.data(), image.size());
  MarkAllDirty();
}

void Machine::Fault(const std::string& why) {
  faulted_ = true;
  cpu_.halted = true;
  fault_reason_ = why + " at pc=0x" + HexEncode(Bytes{static_cast<uint8_t>(cpu_.pc >> 24),
                                                      static_cast<uint8_t>(cpu_.pc >> 16),
                                                      static_cast<uint8_t>(cpu_.pc >> 8),
                                                      static_cast<uint8_t>(cpu_.pc)});
}

void Machine::RaiseIrq(uint32_t cause) {
  if (cause == 0 || cause > 31) {
    throw std::invalid_argument("Machine::RaiseIrq: bad cause");
  }
  cpu_.pending_irqs |= 1u << cause;
}

void Machine::TakeIrqIfPending() {
  if (!cpu_.int_enabled || cpu_.pending_irqs == 0) {
    return;
  }
  uint32_t cause = static_cast<uint32_t>(__builtin_ctz(cpu_.pending_irqs));
  cpu_.pending_irqs &= ~(1u << cause);
  cpu_.irq_cause = cause;
  cpu_.saved_pc = cpu_.pc;
  cpu_.pc = kIrqVector;
  cpu_.int_enabled = false;
}

uint32_t Machine::ReadMem32(uint32_t addr) const {
  if (addr % 4 != 0 || addr + 4 > mem_.size()) {
    throw std::out_of_range("ReadMem32: bad address");
  }
  uint32_t v;
  std::memcpy(&v, mem_.data() + addr, 4);
  return v;
}

uint8_t Machine::ReadMem8(uint32_t addr) const {
  if (addr >= mem_.size()) {
    throw std::out_of_range("ReadMem8: bad address");
  }
  return mem_[addr];
}

void Machine::WriteMem32(uint32_t addr, uint32_t value) {
  if (addr % 4 != 0 || addr + 4 > mem_.size()) {
    throw std::out_of_range("WriteMem32: bad address");
  }
  std::memcpy(mem_.data() + addr, &value, 4);
  dirty_[addr / kPageSize] = true;
}

void Machine::WriteMem8(uint32_t addr, uint8_t value) {
  if (addr >= mem_.size()) {
    throw std::out_of_range("WriteMem8: bad address");
  }
  mem_[addr] = value;
  dirty_[addr / kPageSize] = true;
}

void Machine::WriteMemRange(uint32_t addr, ByteView data) {
  if (addr + data.size() > mem_.size()) {
    throw std::out_of_range("WriteMemRange: bad range");
  }
  std::memcpy(mem_.data() + addr, data.data(), data.size());
  for (size_t p = addr / kPageSize; p <= (addr + data.size() - 1) / kPageSize && !data.empty();
       p++) {
    dirty_[p] = true;
  }
}

Bytes Machine::ReadMemRange(uint32_t addr, size_t len) const {
  if (addr + len > mem_.size()) {
    throw std::out_of_range("ReadMemRange: bad range");
  }
  return Bytes(mem_.begin() + addr, mem_.begin() + addr + len);
}

ByteView Machine::PageData(size_t page_index) const {
  return ByteView(mem_.data() + page_index * kPageSize, kPageSize);
}

std::vector<uint32_t> Machine::CollectDirtyPages() const {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < dirty_.size(); i++) {
    if (dirty_[i]) {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
  return out;
}

void Machine::ClearDirtyPages() {
  dirty_.assign(dirty_.size(), false);
}

void Machine::MarkAllDirty() {
  dirty_.assign(dirty_.size(), true);
}

bool Machine::Step() {
  TakeIrqIfPending();

  if (observer_ != nullptr) {
    return StepObserved();
  }

  if (cpu_.pc % 4 != 0 || cpu_.pc + 4 > mem_.size()) {
    Fault("instruction fetch out of bounds");
    return false;
  }
  uint32_t word;
  std::memcpy(&word, mem_.data() + cpu_.pc, 4);
  Insn in = Decode(word);
  uint32_t next_pc = cpu_.pc + 4;
  uint32_t* r = cpu_.regs;
  auto branch = [&](bool taken) {
    if (taken) {
      next_pc = cpu_.pc + 4 + static_cast<uint32_t>(in.SImm() * 4);
    }
  };

  switch (in.op) {
    case Op::kNop:
      break;
    case Op::kHalt:
      cpu_.halted = true;
      cpu_.icount++;
      cpu_.pc = next_pc;
      return false;

    case Op::kMovi:
      r[in.ra] = static_cast<uint32_t>(in.SImm());
      break;
    case Op::kMovhi:
      r[in.ra] = static_cast<uint32_t>(in.imm) << 16;
      break;
    case Op::kOri:
      r[in.ra] |= in.imm;
      break;
    case Op::kMov:
      r[in.ra] = r[in.rb];
      break;

    case Op::kAdd:
      r[in.ra] += r[in.rb];
      break;
    case Op::kSub:
      r[in.ra] -= r[in.rb];
      break;
    case Op::kMul:
      r[in.ra] *= r[in.rb];
      break;
    case Op::kDivu:
      r[in.ra] = (r[in.rb] == 0) ? 0xffffffffu : r[in.ra] / r[in.rb];
      break;
    case Op::kRemu:
      r[in.ra] = (r[in.rb] == 0) ? r[in.ra] : r[in.ra] % r[in.rb];
      break;
    case Op::kAnd:
      r[in.ra] &= r[in.rb];
      break;
    case Op::kOr:
      r[in.ra] |= r[in.rb];
      break;
    case Op::kXor:
      r[in.ra] ^= r[in.rb];
      break;
    case Op::kShl:
      r[in.ra] <<= (r[in.rb] & 31);
      break;
    case Op::kShr:
      r[in.ra] >>= (r[in.rb] & 31);
      break;
    case Op::kSra:
      r[in.ra] = static_cast<uint32_t>(static_cast<int32_t>(r[in.ra]) >> (r[in.rb] & 31));
      break;
    case Op::kAddi:
      r[in.ra] += static_cast<uint32_t>(in.SImm());
      break;
    case Op::kSlt:
      r[in.ra] = static_cast<int32_t>(r[in.ra]) < static_cast<int32_t>(r[in.rb]) ? 1 : 0;
      break;
    case Op::kSltu:
      r[in.ra] = r[in.ra] < r[in.rb] ? 1 : 0;
      break;

    case Op::kLw: {
      uint32_t addr = r[in.rb] + static_cast<uint32_t>(in.SImm());
      if (addr % 4 != 0 || addr + 4 > mem_.size()) {
        Fault("LW out of bounds");
        return false;
      }
      std::memcpy(&r[in.ra], mem_.data() + addr, 4);
      break;
    }
    case Op::kSw: {
      uint32_t addr = r[in.rb] + static_cast<uint32_t>(in.SImm());
      if (addr % 4 != 0 || addr + 4 > mem_.size()) {
        Fault("SW out of bounds");
        return false;
      }
      std::memcpy(mem_.data() + addr, &r[in.ra], 4);
      dirty_[addr / kPageSize] = true;
      break;
    }
    case Op::kLb: {
      uint32_t addr = r[in.rb] + static_cast<uint32_t>(in.SImm());
      if (addr >= mem_.size()) {
        Fault("LB out of bounds");
        return false;
      }
      r[in.ra] = mem_[addr];
      break;
    }
    case Op::kSb: {
      uint32_t addr = r[in.rb] + static_cast<uint32_t>(in.SImm());
      if (addr >= mem_.size()) {
        Fault("SB out of bounds");
        return false;
      }
      mem_[addr] = static_cast<uint8_t>(r[in.ra]);
      dirty_[addr / kPageSize] = true;
      break;
    }

    case Op::kBeq:
      branch(r[in.ra] == r[in.rb]);
      break;
    case Op::kBne:
      branch(r[in.ra] != r[in.rb]);
      break;
    case Op::kBlt:
      branch(static_cast<int32_t>(r[in.ra]) < static_cast<int32_t>(r[in.rb]));
      break;
    case Op::kBge:
      branch(static_cast<int32_t>(r[in.ra]) >= static_cast<int32_t>(r[in.rb]));
      break;
    case Op::kBltu:
      branch(r[in.ra] < r[in.rb]);
      break;
    case Op::kBgeu:
      branch(r[in.ra] >= r[in.rb]);
      break;
    case Op::kJmp:
      branch(true);
      break;
    case Op::kJal:
      r[in.ra] = cpu_.pc + 4;
      branch(true);
      break;
    case Op::kJr:
      next_pc = r[in.ra];
      break;
    case Op::kJalr: {
      uint32_t target = r[in.rb];
      r[in.ra] = cpu_.pc + 4;
      next_pc = target;
      break;
    }

    case Op::kIn:
      r[in.ra] = backend_->PortIn(*this, in.imm);
      break;
    case Op::kOut:
      backend_->PortOut(*this, in.imm, r[in.ra]);
      break;

    case Op::kEi:
      cpu_.int_enabled = true;
      break;
    case Op::kDi:
      cpu_.int_enabled = false;
      break;
    case Op::kIret:
      next_pc = cpu_.saved_pc;
      cpu_.int_enabled = true;
      break;

    default:
      Fault("illegal opcode");
      return false;
  }

  cpu_.pc = next_pc;
  cpu_.icount++;
  return !cpu_.halted && !faulted_;
}

bool Machine::StepObserved() {
  // Slow path for replay-time analysis: snapshot the architectural state,
  // execute one instruction via the fast path, then notify the observer.
  CpuState before = cpu_;
  if (before.pc % 4 != 0 || before.pc + 4 > mem_.size()) {
    Fault("instruction fetch out of bounds");
    return false;
  }
  uint32_t word;
  std::memcpy(&word, mem_.data() + before.pc, 4);
  Insn insn = Decode(word);
  InstructionObserver* obs = observer_;
  observer_ = nullptr;  // Reenter Step() on the fast path.
  bool cont = Step();
  observer_ = obs;
  observer_->OnRetired(*this, before, insn);
  return cont;
}

RunExit Machine::Run(uint64_t max_instructions) {
  return RunUntilIcount(cpu_.icount + max_instructions);
}

RunExit Machine::RunUntilIcount(uint64_t target_icount) {
  if (cpu_.halted || faulted_) {
    return faulted_ ? RunExit::kFault : RunExit::kHalted;
  }
  while (cpu_.icount < target_icount) {
    if (!Step()) {
      return faulted_ ? RunExit::kFault : RunExit::kHalted;
    }
  }
  return RunExit::kIcountReached;
}

}  // namespace avm
