#include "src/vm/trace.h"

#include "src/util/serde.h"
#include "src/vm/isa.h"

namespace avm {

const char* TraceKindName(TraceKind k) {
  switch (k) {
    case TraceKind::kPortIn:
      return "PORT_IN";
    case TraceKind::kDmaPacket:
      return "DMA_PACKET";
    case TraceKind::kAsyncIrq:
      return "ASYNC_IRQ";
    case TraceKind::kOutConsole:
      return "OUT_CONSOLE";
    case TraceKind::kOutDebug:
      return "OUT_DEBUG";
    case TraceKind::kOutPacket:
      return "OUT_PACKET";
    case TraceKind::kClockStall:
      return "CLOCK_STALL";
  }
  return "?";
}

Bytes TraceEvent::Serialize() const {
  Writer w;
  w.U8(static_cast<uint8_t>(kind));
  w.U64(icount);
  w.U16(port);
  w.U32(value);
  w.Blob(data);
  return w.Take();
}

TraceEvent TraceEvent::Deserialize(ByteView raw) {
  Reader r(raw);
  TraceEvent e;
  uint8_t k = r.U8();
  if (k < 1 || k > 7) {
    throw SerdeError("TraceEvent: bad kind");
  }
  e.kind = static_cast<TraceKind>(k);
  e.icount = r.U64();
  e.port = r.U16();
  e.value = r.U32();
  e.data = r.Blob();
  r.ExpectEnd();
  return e;
}

EntryType ClassifyTraceEvent(const TraceEvent& e) {
  switch (e.kind) {
    case TraceKind::kPortIn:
      if (e.port == kPortClockLo || e.port == kPortClockHi) {
        return EntryType::kTraceTime;
      }
      if (e.port == kPortNetRxLen) {
        return EntryType::kTraceMac;
      }
      return EntryType::kTraceOther;
    case TraceKind::kDmaPacket:
    case TraceKind::kOutPacket:
      return EntryType::kTraceMac;
    case TraceKind::kClockStall:
      return EntryType::kTraceTime;
    case TraceKind::kAsyncIrq:
    case TraceKind::kOutConsole:
    case TraceKind::kOutDebug:
      return EntryType::kTraceOther;
  }
  return EntryType::kTraceOther;
}

}  // namespace avm
