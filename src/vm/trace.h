// Execution-trace events: the nondeterministic inputs and checked outputs
// of one AVM execution (§4.4). The recording AVMM serializes each event
// into the tamper-evident log; the replaying auditor feeds them back and
// cross-checks.
//
// Taxonomy (mirrors the paper):
//  * synchronous inputs (kPortIn): requested by the guest; only the value
//    (plus the instruction-count landmark, for cross-checking) is logged.
//  * asynchronous inputs (kDmaPacket, kAsyncIrq): initiated by the host;
//    must be re-injected at the exact same instruction count on replay.
//  * outputs (kOutPacket, kOutConsole, kOutDebug): deterministic given the
//    inputs; logged so replay can detect divergence at the earliest point.
#ifndef SRC_VM_TRACE_H_
#define SRC_VM_TRACE_H_

#include <cstdint>

#include "src/tel/log.h"
#include "src/util/bytes.h"

namespace avm {

enum class TraceKind : uint8_t {
  kPortIn = 1,      // Guest IN: port, value, icount at the read.
  kDmaPacket = 2,   // Host wrote a packet into the RX buffer + IRQ_NET_RX.
  kAsyncIrq = 3,    // Host raised an interrupt (e.g. input available).
  kOutConsole = 4,  // Guest console byte.
  kOutDebug = 5,    // Guest debug word.
  kOutPacket = 6,   // Guest transmitted a packet (payload included).
  kClockStall = 7,  // §6.5 optimization stalled the AVM: icount jumps by
                    // `value` instructions right after the clock read.
};

const char* TraceKindName(TraceKind k);

struct TraceEvent {
  TraceKind kind = TraceKind::kPortIn;
  uint64_t icount = 0;  // Landmark: position in the instruction stream.
  uint16_t port = 0;    // kPortIn only.
  uint32_t value = 0;   // kPortIn result, IRQ cause, console byte, debug word.
  Bytes data;           // Packet payload for kDmaPacket / kOutPacket.

  Bytes Serialize() const;
  static TraceEvent Deserialize(ByteView data);

  bool operator==(const TraceEvent& o) const {
    return kind == o.kind && icount == o.icount && port == o.port && value == o.value &&
           BytesEqual(data, o.data);
  }
};

// Which tamper-evident-log stream an event belongs to (Figure 4's
// breakdown: TimeTracker / MAC layer / other).
EntryType ClassifyTraceEvent(const TraceEvent& e);

}  // namespace avm

#endif  // SRC_VM_TRACE_H_
