// Dynamic binary translation for AVM-32 replay: hot guest basic blocks
// are compiled to x86-64 and chained together, with the interpreter as
// the bit-for-bit reference oracle for everything the generated code
// does not handle natively.
//
// Shape (Valgrind's translation pipeline / QEMU's TB chaining):
//
//   * A block is a straight-line run of guest instructions ending at a
//     control transfer (branch/JMP/JAL/JR/JALR), an instruction that
//     needs the runtime (IN/OUT/EI/IRET/HALT/illegal), or the length
//     cap. Translation reads guest memory through the same Decode() the
//     interpreter uses.
//   * Every block entry re-checks the icount budget: the block runs
//     only when `icount + insn_count <= target_icount`, so RunUntilIcount
//     stops exactly at any trace landmark — the dispatcher single-steps
//     the reference interpreter across the boundary instead.
//   * Direct branches chain: each exit owns a patchable `jmp rel32`
//     that initially falls into a miss stub (returns to the dispatcher
//     with the successor pc + slot id); once the successor is compiled
//     the slot jumps straight to its entry, whose budget check keeps
//     landmark stops exact.
//   * Anything hard side-exits with pc/icount synced to just BEFORE the
//     difficult instruction and lets Machine::Step() execute it: memory
//     ops that would fault, IN/OUT (backends can stall the clock, halt,
//     or raise IRQs mid-instruction), EI/IRET (interrupt-boundary
//     re-checks). Replay divergence behavior is therefore inherited
//     from the interpreter, not re-implemented.
//   * Self-modifying writes: stores check a per-page "has translations"
//     byte map (the same granularity as the interpreter's per-page
//     icache_valid_ seam) and side-exit so the runtime can drop the
//     affected translations — including the currently running block.
//     Invalidated entries are patched to a thunk, which also neutralizes
//     stale chain edges pointing at them.
//
// One JitEngine per Machine: caches are thread-private, so fleet audits
// replaying many logs concurrently never contend or cross-patch.
#ifndef SRC_VM_JIT_JIT_H_
#define SRC_VM_JIT_JIT_H_

// Build gate: CMake defines AVM_JIT_X86 (option AVM_JIT, forced off on
// non-x86-64 hosts); builds without it autodetect from the compiler.
#if !defined(AVM_JIT_X86)
#if defined(__x86_64__) && (defined(__unix__) || defined(__APPLE__))
#define AVM_JIT_X86 1
#else
#define AVM_JIT_X86 0
#endif
#endif

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "src/vm/jit/translation_cache.h"

namespace avm {

struct CpuState;

namespace analysis {
struct ImageAnalysis;
}  // namespace analysis

namespace obs {
class Counter;
class Histogram;
}  // namespace obs

namespace jit {

class Emitter;  // src/vm/jit/emitter.h; only jit.cc needs the definition.

// Fixed layout shared with the generated code (all offsets disp8).
struct JitContext {
  uint32_t* regs = nullptr;       // +0   &cpu.regs[0]
  uint8_t* mem = nullptr;         // +8   guest memory base
  uint64_t icount = 0;            // +16  live icount (in/out)
  uint64_t target = 0;            // +24  RunUntilIcount target
  uint32_t pc = 0;                // +32  entry/exit pc (in/out)
  uint32_t exit_slot = 0;         // +36  chain slot id on kExitChainMiss
  uint8_t* dirty = nullptr;       // +40  per-page dirty bytes
  uint8_t* ivalid = nullptr;      // +48  per-page decoded-cache valid bytes
  uint8_t* code_pages = nullptr;  // +56  per-page "has translations" bytes
  CpuState* cpu = nullptr;        // +64  for int_enabled writes (DI)
  uint32_t mod_addr = 0;          // +72  self-modifying store address
  uint32_t pad_ = 0;
};

inline constexpr uint8_t kCtxRegs = 0;
inline constexpr uint8_t kCtxMem = 8;
inline constexpr uint8_t kCtxIcount = 16;
inline constexpr uint8_t kCtxTarget = 24;
inline constexpr uint8_t kCtxPc = 32;
inline constexpr uint8_t kCtxExitSlot = 36;
inline constexpr uint8_t kCtxDirty = 40;
inline constexpr uint8_t kCtxIvalid = 48;
inline constexpr uint8_t kCtxCodePages = 56;
inline constexpr uint8_t kCtxCpu = 64;
inline constexpr uint8_t kCtxModAddr = 72;

// Exit codes returned in eax by the generated code.
enum JitExit : uint32_t {
  // A chain slot (or an invalidated entry) has no compiled successor:
  // ctx.pc is the wanted guest pc, ctx.exit_slot the slot to patch
  // (~0u when there is nothing to patch).
  kExitChainMiss = 0,
  // Entry budget check failed: completing this block would overshoot
  // target_icount. The interpreter single-steps to the exact boundary.
  kExitNoBudget = 1,
  // Register-indirect transfer (JR/JALR): ctx.pc holds the runtime
  // target; the dispatcher re-enters through the interrupt-checking
  // boundary exactly like the interpreter's VM_NEXT_IRQ.
  kExitDynamic = 2,
  // ctx.pc points at an instruction the JIT defers to the interpreter
  // (IN/OUT/EI/IRET/HALT/illegal, or a memory op whose bounds check
  // failed); icount counts only the instructions retired before it.
  kExitFallback = 3,
  // A store landed on a page holding translations; the store itself has
  // retired (icount/pc include it, dirty/ivalid updated). ctx.mod_addr
  // is the written address; the runtime invalidates and resumes.
  kExitSelfMod = 4,
};

struct TranslatedBlock {
  uint32_t guest_pc = 0;     // First instruction.
  uint32_t insn_count = 0;   // Retired when the block runs to its tail.
  uint8_t* entry = nullptr;  // Native entry (budget check first).
  bool invalidated = false;
  // Guest byte ranges [start, end) covered by translated instructions.
  // A plain block has one span; an analysis-guided region has one per
  // fused basic block (page registration covers them all).
  std::vector<std::pair<uint32_t, uint32_t>> spans;
  // Dispatcher entries into this translation (chained tail entries are
  // not counted). Recorded into avm.jit.block_exec on invalidate/flush.
  uint64_t exec_count = 0;
};

// Plain single-threaded counters; mirrored into the obs registry
// (avm.jit.*) so §6.6 attribution covers the translation layer.
struct JitStats {
  uint64_t translations = 0;
  uint64_t code_bytes = 0;
  uint64_t flushes = 0;
  uint64_t blocks_invalidated = 0;
  uint64_t pages_invalidated = 0;
  uint64_t chain_patches = 0;
  uint64_t interp_fallbacks = 0;
  uint64_t selfmod_exits = 0;
  uint64_t native_enters = 0;
  uint64_t regions_fused = 0;        // Extra basic blocks merged into regions.
  uint64_t dead_writes_skipped = 0;  // Writebacks proven dead by liveness.
};

struct JitConfig {
  size_t cache_bytes = 1u << 20;
  uint32_t hot_threshold = 2;     // Compile a pc on its Nth dispatcher visit.
  uint32_t max_block_insns = 64;  // Also bounds the budget granularity.
  // Cap for analysis-guided regions (straight-line fusion across
  // JMP/JAL); only effective when SetAnalysisHints provided a CFG.
  uint32_t max_region_insns = 128;
  bool harden_wx = false;         // W^X (RW<->RX) instead of one RWX map.
};

// True when this build can emit native code for this host (x86-64 with
// AVM_JIT compiled in). The Machine additionally requires a successful
// executable mapping at first use.
bool JitSupported();

// True for opcodes that terminate a translated block (control transfers
// and everything the JIT defers to the interpreter). The dispatcher's
// cold path interprets up to the next such instruction so compile-heat
// anchors land on real block heads.
bool EndsTraceBlock(uint8_t opcode);

class JitEngine {
 public:
  // mem/mem_size: guest RAM. page_count bytes behind code_pages must
  // stay valid for the engine's lifetime (the Machine owns them so its
  // write paths can check "does this page hold translations" inline).
  JitEngine(const JitConfig& cfg, uint8_t* mem, size_t mem_size, uint8_t* code_pages,
            size_t page_count);
  ~JitEngine();

  // Installs (or clears, with nullptr) static-analysis hints for the
  // currently loaded image. Enables region fusion across direct
  // JMP/JAL, liveness-based dead-writeback elimination, and pre-arms
  // the self-modification seam for statically-detected self-modifying
  // pages. Hints are advisory: emission always decodes live guest
  // memory, so stale hints cost performance, never correctness.
  // Flushes existing translations. `hints` must outlive the engine or
  // the next SetAnalysisHints call.
  void SetAnalysisHints(const analysis::ImageAnalysis* hints);

  // False when executable memory is unavailable; the Machine falls back
  // to the interpreter permanently.
  bool ok() const { return cache_.ok(); }

  JitContext& ctx() { return ctx_; }

  TranslatedBlock* Lookup(uint32_t pc) {
    auto it = blocks_by_pc_.find(pc);
    return it == blocks_by_pc_.end() ? nullptr : it->second;
  }

  // Heat-counts pc and compiles once it crosses the threshold. Returns
  // the block, or nullptr when pc is still cold or untranslatable. May
  // flush the whole cache when full.
  TranslatedBlock* MaybeCompile(uint32_t pc);

  // Runs native code starting at `b` (chains run inside). The caller
  // loads ctx (icount/target/pc) before and syncs cpu state after.
  uint32_t Execute(TranslatedBlock* b);

  // Points chain slot `slot_id` (from ctx.exit_slot) at `target`.
  void PatchChain(uint32_t slot_id, TranslatedBlock* target);

  // Drops every translation intersecting `page` (entry patched to the
  // invalidated thunk, so stale chain edges die too).
  void InvalidatePage(size_t page);
  void InvalidateWrite(uint32_t addr) { InvalidatePage(addr / 4096); }

  // Drops everything (image reload, cache full).
  void Flush();

  // Dispatcher-side stat hooks for exits the native code cannot count.
  void CountFallback();
  void CountSelfMod();

  // Cache generation, bumped by Flush: the dispatcher uses it to detect
  // that a chain slot id from before a compile-triggered flush is stale.
  uint64_t generation() const { return generation_; }

  const JitStats& stats() const { return stats_; }
  size_t code_bytes_used() const { return cache_.used(); }

 private:
  struct ChainSlot {
    uint8_t* patch_at = nullptr;  // The 5-byte jmp rel32 to rewrite.
  };

  TranslatedBlock* Compile(uint32_t pc);
  bool EmitBlock(uint32_t head, Emitter* em, std::vector<size_t>* slot_sites,
                 uint32_t* insn_count,
                 std::vector<std::pair<uint32_t, uint32_t>>* spans,
                 uint32_t* blocks_fused);
  void PatchJmp(uint8_t* at, const uint8_t* target);
  bool IsStaticSelfmodPage(size_t page) const {
    return page < static_selfmod_pages_.size() && static_selfmod_pages_[page] != 0;
  }
  void RetireExecCount(TranslatedBlock* b);

  JitConfig cfg_;
  uint8_t* mem_;
  size_t mem_size_;
  uint8_t* code_pages_;
  size_t page_count_;

  TranslationCache cache_;
  JitContext ctx_;
  std::deque<TranslatedBlock> block_storage_;
  std::unordered_map<uint32_t, TranslatedBlock*> blocks_by_pc_;
  std::vector<std::vector<TranslatedBlock*>> page_blocks_;
  std::unordered_map<uint32_t, uint32_t> heat_;
  std::vector<ChainSlot> chain_slots_;
  uint64_t generation_ = 0;

  // Static-analysis hints (optional; see SetAnalysisHints).
  const analysis::ImageAnalysis* hints_ = nullptr;
  std::vector<uint8_t> static_selfmod_pages_;

  JitStats stats_;
  obs::Counter* c_translations_;
  obs::Counter* c_code_bytes_;
  obs::Counter* c_flushes_;
  obs::Counter* c_blocks_invalidated_;
  obs::Counter* c_pages_invalidated_;
  obs::Counter* c_chain_patches_;
  obs::Counter* c_fallbacks_;
  obs::Counter* c_selfmod_;
  obs::Counter* c_regions_fused_;
  obs::Counter* c_dead_writes_;
  obs::Counter* c_native_enters_;
  obs::Histogram* h_region_insns_;   // Insns per translation unit.
  obs::Histogram* h_region_blocks_;  // Basic blocks per translation unit.
  obs::Histogram* h_block_exec_;     // Dispatcher entries per translation.
};

}  // namespace jit
}  // namespace avm

#endif  // SRC_VM_JIT_JIT_H_
