// The AVM-32 -> x86-64 block translator and its runtime engine. See
// jit.h for the execution model and machine.cc (RunJit) for the
// dispatcher that drives it.
#include "src/vm/jit/jit.h"

#include <algorithm>
#include <cstddef>
#include <cstring>

#include "src/obs/metrics.h"
#include "src/vm/analysis/analysis.h"
#include "src/vm/isa.h"
#include "src/vm/jit/emitter.h"
#include "src/vm/machine.h"

namespace avm {
namespace jit {

namespace {

// The kCtx* displacements are baked into emitted bytes; pin them to the
// struct the C++ side actually passes.
static_assert(offsetof(JitContext, regs) == kCtxRegs);
static_assert(offsetof(JitContext, mem) == kCtxMem);
static_assert(offsetof(JitContext, icount) == kCtxIcount);
static_assert(offsetof(JitContext, target) == kCtxTarget);
static_assert(offsetof(JitContext, pc) == kCtxPc);
static_assert(offsetof(JitContext, exit_slot) == kCtxExitSlot);
static_assert(offsetof(JitContext, dirty) == kCtxDirty);
static_assert(offsetof(JitContext, ivalid) == kCtxIvalid);
static_assert(offsetof(JitContext, code_pages) == kCtxCodePages);
static_assert(offsetof(JitContext, cpu) == kCtxCpu);
static_assert(offsetof(JitContext, mod_addr) == kCtxModAddr);
// DI writes cpu->int_enabled through a disp8 addressing mode.
static_assert(offsetof(CpuState, int_enabled) < 128);

// Instructions the translator emits inline, i.e. a block continues past
// them. Everything else ends a block: control transfers (translated as
// chain/dynamic exits) and runtime-deferred ops (fallback exits).
bool IsStraightLine(uint8_t opcode) {
  switch (static_cast<Op>(opcode)) {
    case Op::kNop:
    case Op::kMovi:
    case Op::kMovhi:
    case Op::kOri:
    case Op::kMov:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDivu:
    case Op::kRemu:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kSra:
    case Op::kAddi:
    case Op::kSlt:
    case Op::kSltu:
    case Op::kLw:
    case Op::kSw:
    case Op::kLb:
    case Op::kSb:
    case Op::kDi:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool JitSupported() { return AVM_JIT_X86 != 0; }

bool EndsTraceBlock(uint8_t opcode) { return !IsStraightLine(opcode); }

JitEngine::JitEngine(const JitConfig& cfg, uint8_t* mem, size_t mem_size, uint8_t* code_pages,
                     size_t page_count)
    : cfg_(cfg), mem_(mem), mem_size_(mem_size), code_pages_(code_pages),
      page_count_(page_count) {
  ExecMemOptions opts;
  opts.bytes = cfg_.cache_bytes;
  opts.harden_wx = cfg_.harden_wx;
  cache_.Init(opts);
  page_blocks_.resize(page_count_);
  ctx_.code_pages = code_pages_;

  obs::Registry& reg = obs::Registry::Global();
  c_translations_ = reg.GetCounter("avm.jit.translations");
  c_code_bytes_ = reg.GetCounter("avm.jit.code_cache_bytes");
  c_flushes_ = reg.GetCounter("avm.jit.flushes");
  c_blocks_invalidated_ = reg.GetCounter("avm.jit.blocks_invalidated");
  c_pages_invalidated_ = reg.GetCounter("avm.jit.pages_invalidated");
  c_chain_patches_ = reg.GetCounter("avm.jit.chain_patches");
  c_fallbacks_ = reg.GetCounter("avm.jit.interp_fallbacks");
  c_selfmod_ = reg.GetCounter("avm.jit.selfmod_exits");
  c_regions_fused_ = reg.GetCounter("avm.jit.regions_fused");
  c_dead_writes_ = reg.GetCounter("avm.jit.dead_writes_skipped");
  c_native_enters_ = reg.GetCounter("avm.jit.native_enters");
  h_region_insns_ = reg.GetHistogram("avm.jit.region_insns");
  h_region_blocks_ = reg.GetHistogram("avm.jit.region_blocks");
  h_block_exec_ = reg.GetHistogram("avm.jit.block_exec");
}

JitEngine::~JitEngine() {
  // Flush per-block execution counts for translations still live, so
  // avm.jit.block_exec covers the whole run (hot_threshold tuning).
  for (TranslatedBlock& b : block_storage_) {
    if (!b.invalidated) {
      RetireExecCount(&b);
    }
  }
}

void JitEngine::RetireExecCount(TranslatedBlock* b) {
  if (b->exec_count != 0) {
    h_block_exec_->Record(b->exec_count);
    b->exec_count = 0;
  }
}

void JitEngine::SetAnalysisHints(const analysis::ImageAnalysis* hints) {
  hints_ = hints;
  static_selfmod_pages_.assign(page_count_, 0);
  if (hints_ != nullptr) {
    for (uint32_t pg : hints_->report.selfmod_pages) {
      if (pg < page_count_) {
        // Pre-arm the per-page seam: stores to statically-detected
        // self-modifying pages side-exit even before the first
        // translation on that page exists, so the seam can never race
        // a translation with a store it should have invalidated.
        static_selfmod_pages_[pg] = 1;
      }
    }
  }
  Flush();  // Re-seeds code_pages_ from the new static set.
}

void JitEngine::CountFallback() {
  stats_.interp_fallbacks++;
  c_fallbacks_->Inc();
}

void JitEngine::CountSelfMod() {
  stats_.selfmod_exits++;
  c_selfmod_->Inc();
}

// Emits one translation unit starting at `head` into `em`: a single
// basic block, or — with analysis hints installed — a straight-line
// region fused across direct JMP/JAL edges the static CFG resolved.
// Returns false when the head instruction itself is runtime-deferred
// (nothing to translate). slot_sites collects the buffer offsets of the
// chain slots' rel32 immediates, in slot-id order starting at
// chain_slots_.size(). `spans` receives the guest byte ranges covered
// (one per fused block), `blocks_fused` the number of fusion events.
bool JitEngine::EmitBlock(uint32_t head, Emitter* emp, std::vector<size_t>* slot_sites,
                          uint32_t* insn_count,
                          std::vector<std::pair<uint32_t, uint32_t>>* spans,
                          uint32_t* blocks_fused) {
  Emitter& em = *emp;
  const uint32_t base_slot = static_cast<uint32_t>(chain_slots_.size());
  // With hints the cap covers whole regions; plain blocks keep the
  // tighter bound (it also sets the entry budget-check granularity).
  const uint32_t cap = hints_ != nullptr
                           ? std::max(cfg_.max_block_insns, cfg_.max_region_insns)
                           : cfg_.max_block_insns;

  struct PendingStub {
    size_t fix_at;     // rel32 to bind at the stub.
    uint32_t pc;       // Guest pc the stub reports.
    uint32_t retired;  // Instructions retired when the stub runs.
  };
  std::vector<PendingStub> falls;     // Failed bounds checks -> interpreter.
  std::vector<PendingStub> selfmods;  // Stores into translated pages.

  // Entry budget check: run only when icount + insn_count <= target, so
  // a chained run can never overshoot an icount landmark. The count is
  // patched in once the block length is known.
  const size_t count_at = em.LeaRaxR13Disp32(0);
  em.CmpRaxR14();
  const size_t budget_fix = em.Jcc(Cc::kA);

  // A chain slot: commit icount and the successor pc, then a patchable
  // jmp that initially falls into its own miss stub. PatchChain later
  // redirects the jmp straight to the successor's entry.
  auto chain_to = [&](uint32_t succ, uint32_t retired) {
    em.AddR13Imm(retired);
    em.StoreCtx32Imm(kCtxPc, succ);
    const uint32_t slot_id = base_slot + static_cast<uint32_t>(slot_sites->size());
    const size_t fix = em.Jmp();
    slot_sites->push_back(fix);
    em.Bind(fix);
    em.StoreCtx32Imm(kCtxExitSlot, slot_id);
    em.ExitEpilogue(kExitChainMiss, kCtxIcount);
  };

  uint32_t p = head;   // Guest pc being translated.
  uint32_t n = 0;      // Straight-line instructions emitted so far.
  uint32_t total = 0;  // Retired count on the block's longest path.
  bool open = true;
  uint32_t span_start = head;           // Start of the current guest span.
  std::vector<uint32_t> fused_heads{head};  // Loop guard for fusion.

  // Region fusion: a direct JMP/JAL whose target the static CFG knows
  // can be translated *through* — the jump retires (icount) but emits
  // no code; translation continues at the target as if it fell through.
  // Never into statically self-modifying pages (invalidation stays
  // block-granular there), never into a head already in this region
  // (loops keep chaining through budget-checked entries).
  auto can_fuse = [&](uint32_t target) {
    return hints_ != nullptr && n + 1 < cap && target % 4 == 0 &&
           target <= mem_size_ - 4 && hints_->cfg.BlockAt(target) != nullptr &&
           !IsStaticSelfmodPage(target / kPageSize) &&
           !IsStaticSelfmodPage(p / kPageSize) &&
           std::find(fused_heads.begin(), fused_heads.end(), target) ==
               fused_heads.end();
  };
  auto fuse_to = [&](uint32_t target) {
    fused_heads.push_back(target);
    spans->emplace_back(span_start, p + 4);
    span_start = target;
    (*blocks_fused)++;
    stats_.regions_fused++;
    c_regions_fused_->Inc();
    n++;  // The jump itself retires.
    p = target;
  };

  // Dead-writeback elimination: a pure-compute op whose destination is
  // provably redefined before any possible exit emits nothing (it still
  // retires). The scan admits only ops that cannot leave compiled code
  // (pure compute, NOP, DI) between the def and its redef — the sole
  // exit in such a window is the entry budget check, which runs before
  // anything retires — so no exit or landmark can observe the stale
  // value. Loads/stores (fault side-exits), terminators and fallbacks
  // are barriers; the redef must also land inside this unit's cap.
  auto dead_writeback = [&](const Insn& in) {
    if (hints_ == nullptr) {
      return false;
    }
    const analysis::RegMask d = analysis::InsnDefs(in);
    if (d == 0) {
      return false;
    }
    uint32_t q = p + 4;
    for (uint32_t idx = n + 1; idx < cap && q <= mem_size_ - 4; idx++, q += 4) {
      uint32_t w;
      std::memcpy(&w, mem_ + q, 4);
      const Insn qi = Decode(w);
      const uint8_t qop = static_cast<uint8_t>(w >> 24);
      if ((analysis::InsnUses(qi) & d) != 0) {
        return false;  // Read before redefinition: live.
      }
      if (analysis::IsPureComputeOp(qop)) {
        if ((analysis::InsnDefs(qi) & d) != 0) {
          return true;  // Redefined inside the exit-free window: dead.
        }
      } else if (qop != static_cast<uint8_t>(Op::kNop) &&
                 qop != static_cast<uint8_t>(Op::kDi)) {
        return false;  // Possible exit: the write is observable.
      }
    }
    return false;
  };

  while (open) {
    if (n >= cap || p > mem_size_ - 4) {
      // Length cap, or the next fetch would be out of bounds: continue
      // via an unconditional chain (an out-of-range successor simply
      // faults in the interpreter when the dispatcher gets there).
      chain_to(p, n);
      total = n;
      break;
    }
    uint32_t word;
    std::memcpy(&word, mem_ + p, 4);
    const Insn in = Decode(word);
    const uint32_t simm = static_cast<uint32_t>(in.SImm());
    if (analysis::IsPureComputeOp(static_cast<uint8_t>(word >> 24)) &&
        dead_writeback(in)) {
      stats_.dead_writes_skipped++;
      c_dead_writes_->Inc();
      n++;
      p += 4;
      continue;
    }
    switch (in.op) {
      case Op::kNop:
        break;
      case Op::kMovi:
        em.MovGuestImm(in.ra, simm);
        break;
      case Op::kMovhi:
        em.MovGuestImm(in.ra, static_cast<uint32_t>(in.imm) << 16);
        break;
      case Op::kOri:
        em.OrGuestImm(in.ra, in.imm);
        break;
      case Op::kMov:
        em.LoadGuest(R32::kEax, in.rb);
        em.StoreGuest(in.ra, R32::kEax);
        break;
      case Op::kAdd:
        em.LoadGuest(R32::kEax, in.rb);
        em.AddMemGuest(in.ra, R32::kEax);
        break;
      case Op::kSub:
        em.LoadGuest(R32::kEax, in.rb);
        em.SubMemGuest(in.ra, R32::kEax);
        break;
      case Op::kMul:
        em.LoadGuest(R32::kEax, in.ra);
        em.ImulEaxGuest(in.rb);
        em.StoreGuest(in.ra, R32::kEax);
        break;
      case Op::kDivu: {
        // ra = rb == 0 ? 0xffffffff : ra / rb (edx:eax unsigned divide).
        em.LoadGuest(R32::kEcx, in.rb);
        em.TestEcxEcx();
        const size_t zero = em.Jcc(Cc::kE);
        em.LoadGuest(R32::kEax, in.ra);
        em.XorEdxEdx();
        em.DivEcx();
        em.StoreGuest(in.ra, R32::kEax);
        const size_t done = em.Jmp();
        em.Bind(zero);
        em.MovGuestImm(in.ra, 0xffffffffu);
        em.Bind(done);
        break;
      }
      case Op::kRemu: {
        // ra = rb == 0 ? ra : ra % rb (remainder lands in edx).
        em.LoadGuest(R32::kEcx, in.rb);
        em.TestEcxEcx();
        const size_t done = em.Jcc(Cc::kE);
        em.LoadGuest(R32::kEax, in.ra);
        em.XorEdxEdx();
        em.DivEcx();
        em.StoreGuest(in.ra, R32::kEdx);
        em.Bind(done);
        break;
      }
      case Op::kAnd:
        em.LoadGuest(R32::kEax, in.rb);
        em.AndMemGuest(in.ra, R32::kEax);
        break;
      case Op::kOr:
        em.LoadGuest(R32::kEax, in.rb);
        em.OrMemGuest(in.ra, R32::kEax);
        break;
      case Op::kXor:
        em.LoadGuest(R32::kEax, in.rb);
        em.XorMemGuest(in.ra, R32::kEax);
        break;
      case Op::kShl:
        // x86 masks cl to 5 bits for 32-bit shifts, matching the ISA.
        em.LoadGuest(R32::kEcx, in.rb);
        em.ShlGuestCl(in.ra);
        break;
      case Op::kShr:
        em.LoadGuest(R32::kEcx, in.rb);
        em.ShrGuestCl(in.ra);
        break;
      case Op::kSra:
        em.LoadGuest(R32::kEcx, in.rb);
        em.SraGuestCl(in.ra);
        break;
      case Op::kAddi:
        em.AddGuestImm(in.ra, simm);
        break;
      case Op::kSlt:
      case Op::kSltu:
        em.LoadGuest(R32::kEax, in.ra);
        em.CmpEaxGuest(in.rb);
        em.SetccEax(in.op == Op::kSlt ? Cc::kL : Cc::kB);
        em.StoreGuest(in.ra, R32::kEax);
        break;
      case Op::kLw:
        em.LoadGuest(R32::kEax, in.rb);
        em.AddEaxImm(simm);
        em.TestEaxImm(3);
        falls.push_back({em.Jcc(Cc::kNe), p, n});
        em.CmpEaxImm(static_cast<uint32_t>(mem_size_ - 4));
        falls.push_back({em.Jcc(Cc::kA), p, n});
        em.LoadMem32(R32::kEcx);
        em.StoreGuest(in.ra, R32::kEcx);
        break;
      case Op::kLb:
        em.LoadGuest(R32::kEax, in.rb);
        em.AddEaxImm(simm);
        em.CmpEaxImm(static_cast<uint32_t>(mem_size_));
        falls.push_back({em.Jcc(Cc::kAe), p, n});
        em.LoadMem8(R32::kEcx);
        em.StoreGuest(in.ra, R32::kEcx);
        break;
      case Op::kSw:
      case Op::kSb: {
        const bool word_op = in.op == Op::kSw;
        em.LoadGuest(R32::kEax, in.rb);
        em.AddEaxImm(simm);
        if (word_op) {
          em.TestEaxImm(3);
          falls.push_back({em.Jcc(Cc::kNe), p, n});
          em.CmpEaxImm(static_cast<uint32_t>(mem_size_ - 4));
          falls.push_back({em.Jcc(Cc::kA), p, n});
        } else {
          em.CmpEaxImm(static_cast<uint32_t>(mem_size_));
          falls.push_back({em.Jcc(Cc::kAe), p, n});
        }
        em.LoadGuest(R32::kEcx, in.ra);
        if (word_op) {
          em.StoreMem32(R32::kEcx);
        } else {
          em.StoreMem8(R32::kEcx);
        }
        // Page bookkeeping, mirroring the interpreter's store tails:
        // dirty[page] = 1, ivalid[page] = 0, and a side-exit when the
        // page holds translations so the runtime can drop them (the
        // store itself has retired by then).
        em.MovEdxEax();
        em.ShrEdxImm(12);
        em.LoadCtxPtrRcx(kCtxDirty);
        em.StoreByteRcxRdx(1);
        em.LoadCtxPtrRcx(kCtxIvalid);
        em.StoreByteRcxRdx(0);
        em.LoadCtxPtrRcx(kCtxCodePages);
        em.CmpByteRcxRdxZero();
        selfmods.push_back({em.Jcc(Cc::kNe), p + 4, n + 1});
        break;
      }
      case Op::kBeq:
      case Op::kBne:
      case Op::kBlt:
      case Op::kBge:
      case Op::kBltu:
      case Op::kBgeu: {
        Cc cc = Cc::kE;
        switch (in.op) {
          case Op::kBeq: cc = Cc::kE; break;
          case Op::kBne: cc = Cc::kNe; break;
          case Op::kBlt: cc = Cc::kL; break;
          case Op::kBge: cc = Cc::kGe; break;
          case Op::kBltu: cc = Cc::kB; break;
          default: cc = Cc::kAe; break;
        }
        em.LoadGuest(R32::kEax, in.ra);
        em.CmpEaxGuest(in.rb);
        const size_t taken = em.Jcc(cc);
        chain_to(p + 4, n + 1);  // Fall-through successor.
        em.Bind(taken);
        chain_to(p + 4 + simm * 4, n + 1);
        total = n + 1;
        p += 4;  // Condition/targets are baked in: the terminator is
        open = false;  // part of the span so its page tracks this block.
        break;
      }
      case Op::kJmp: {
        const uint32_t target = p + 4 + simm * 4;
        if (can_fuse(target)) {
          fuse_to(target);
          continue;
        }
        chain_to(target, n + 1);
        total = n + 1;
        p += 4;
        open = false;
        break;
      }
      case Op::kJal: {
        const uint32_t target = p + 4 + simm * 4;
        em.MovGuestImm(in.ra, p + 4);
        if (can_fuse(target)) {
          fuse_to(target);
          continue;
        }
        chain_to(target, n + 1);
        total = n + 1;
        p += 4;
        open = false;
        break;
      }
      case Op::kJr:
        em.LoadGuest(R32::kEax, in.ra);
        em.StoreCtx32Eax(kCtxPc);
        em.AddR13Imm(n + 1);
        em.ExitEpilogue(kExitDynamic, kCtxIcount);
        total = n + 1;
        p += 4;
        open = false;
        break;
      case Op::kJalr:
        em.LoadGuest(R32::kEax, in.rb);  // Target before the link write:
        em.MovGuestImm(in.ra, p + 4);    // ra may alias rb.
        em.StoreCtx32Eax(kCtxPc);
        em.AddR13Imm(n + 1);
        em.ExitEpilogue(kExitDynamic, kCtxIcount);
        total = n + 1;
        p += 4;
        open = false;
        break;
      case Op::kDi:
        em.LoadCtxPtrRax(kCtxCpu);
        em.StoreByteRaxDisp(static_cast<uint8_t>(offsetof(CpuState, int_enabled)), 0);
        break;
      default:
        // HALT/IN/OUT/EI/IRET/illegal: defer to the interpreter, which
        // owns backend calls, interrupt boundaries and fault messages.
        if (n == 0) {
          return false;
        }
        em.AddR13Imm(n);
        em.StoreCtx32Imm(kCtxPc, p);
        em.ExitEpilogue(kExitFallback, kCtxIcount);
        total = n;
        open = false;
        break;
    }
    if (open) {
      n++;
      p += 4;
    }
  }

  em.Bind(budget_fix);
  em.StoreCtx32Imm(kCtxPc, head);
  em.ExitEpilogue(kExitNoBudget, kCtxIcount);

  for (const PendingStub& s : falls) {
    em.Bind(s.fix_at);
    em.AddR13Imm(s.retired);
    em.StoreCtx32Imm(kCtxPc, s.pc);
    em.ExitEpilogue(kExitFallback, kCtxIcount);
  }
  for (const PendingStub& s : selfmods) {
    em.Bind(s.fix_at);
    em.StoreCtx32Eax(kCtxModAddr);  // eax still holds the store address.
    em.AddR13Imm(s.retired);
    em.StoreCtx32Imm(kCtxPc, s.pc);
    em.ExitEpilogue(kExitSelfMod, kCtxIcount);
  }

  em.PatchU32(count_at, total);
  *insn_count = total;
  // Fallback/cap terminators are re-fetched by the interpreter and stay
  // outside the spans; translated terminators were counted above.
  if (p > span_start) {
    spans->emplace_back(span_start, p);
  }
  return true;
}

TranslatedBlock* JitEngine::Compile(uint32_t pc) {
  if (!cache_.ok() || pc % 4 != 0 || mem_size_ < 4 || pc > mem_size_ - 4) {
    return nullptr;
  }
  for (int attempt = 0; attempt < 2; attempt++) {
    Emitter em;
    std::vector<size_t> slot_sites;
    uint32_t insn_count = 0;
    std::vector<std::pair<uint32_t, uint32_t>> spans;
    uint32_t blocks_fused = 0;
    if (!EmitBlock(pc, &em, &slot_sites, &insn_count, &spans, &blocks_fused)) {
      return nullptr;
    }
    cache_.MakeWritable();
    uint8_t* dst = cache_.Alloc(em.size());
    if (dst == nullptr) {
      cache_.MakeExecutable();
      if (attempt == 0) {
        Flush();  // Retry once against an empty cache (slot ids re-base).
        continue;
      }
      return nullptr;  // Block larger than the whole cache.
    }
    std::memcpy(dst, em.bytes().data(), em.size());
    cache_.MakeExecutable();

    for (size_t site : slot_sites) {
      chain_slots_.push_back(ChainSlot{dst + site});
    }
    block_storage_.push_back(
        TranslatedBlock{pc, insn_count, dst, false, std::move(spans), 0});
    TranslatedBlock* b = &block_storage_.back();
    blocks_by_pc_[pc] = b;
    for (const auto& [s, e] : b->spans) {
      const size_t first = s / kPageSize;
      const size_t last = (e - 1) / kPageSize;
      for (size_t pg = first; pg <= last && pg < page_count_; pg++) {
        // A page can host several spans of one region; InvalidatePage
        // tolerates the duplicate registration via b->invalidated.
        page_blocks_[pg].push_back(b);
        code_pages_[pg] = 1;
      }
    }
    stats_.translations++;
    stats_.code_bytes += em.size();
    c_translations_->Inc();
    c_code_bytes_->Inc(em.size());
    h_region_insns_->Record(insn_count);
    h_region_blocks_->Record(blocks_fused + 1);
    return b;
  }
  return nullptr;
}

TranslatedBlock* JitEngine::MaybeCompile(uint32_t pc) {
  auto it = blocks_by_pc_.find(pc);
  if (it != blocks_by_pc_.end()) {
    return it->second;
  }
  if (!cache_.ok()) {
    return nullptr;
  }
  if (++heat_[pc] < cfg_.hot_threshold) {
    return nullptr;
  }
  TranslatedBlock* b = Compile(pc);  // May Flush(), which clears heat_.
  if (b == nullptr) {
    heat_[pc] = 0;  // Untranslatable head: cool off, retry later.
  } else {
    heat_.erase(pc);
  }
  return b;
}

uint32_t JitEngine::Execute(TranslatedBlock* b) {
  stats_.native_enters++;
  c_native_enters_->Inc();
  b->exec_count++;
  using EnterFn = uint32_t (*)(JitContext*, const void*);
  EnterFn fn = reinterpret_cast<EnterFn>(const_cast<void*>(cache_.enter_fn()));
  return fn(&ctx_, b->entry);
}

void JitEngine::PatchChain(uint32_t slot_id, TranslatedBlock* target) {
  if (slot_id >= chain_slots_.size() || target == nullptr || target->invalidated) {
    return;
  }
  cache_.MakeWritable();
  uint8_t* rel_at = chain_slots_[slot_id].patch_at;
  const int64_t rel = target->entry - (rel_at + 4);
  const uint32_t enc = static_cast<uint32_t>(static_cast<int32_t>(rel));
  std::memcpy(rel_at, &enc, 4);
  cache_.MakeExecutable();
  stats_.chain_patches++;
  c_chain_patches_->Inc();
}

void JitEngine::PatchJmp(uint8_t* at, const uint8_t* target) {
  at[0] = 0xE9;
  const int64_t rel = target - (at + 5);
  const uint32_t enc = static_cast<uint32_t>(static_cast<int32_t>(rel));
  std::memcpy(at + 1, &enc, 4);
}

void JitEngine::InvalidatePage(size_t page) {
  if (page >= page_count_) {
    return;
  }
  std::vector<TranslatedBlock*>& list = page_blocks_[page];
  if (!list.empty()) {
    cache_.MakeWritable();
    for (TranslatedBlock* b : list) {
      if (b->invalidated) {
        continue;  // Already dropped via another page it spans.
      }
      // Entry patched to the invalid thunk: direct dispatch AND stale
      // chain edges from live predecessors both turn into chain misses.
      b->invalidated = true;
      RetireExecCount(b);
      PatchJmp(b->entry, cache_.invalid_thunk());
      blocks_by_pc_.erase(b->guest_pc);
      stats_.blocks_invalidated++;
      c_blocks_invalidated_->Inc();
    }
    cache_.MakeExecutable();
    list.clear();
  }
  // Statically-detected self-modifying pages stay armed (see
  // SetAnalysisHints); everything else disarms until recompiled.
  code_pages_[page] = IsStaticSelfmodPage(page) ? 1 : 0;
  stats_.pages_invalidated++;
  c_pages_invalidated_->Inc();
}

void JitEngine::Flush() {
  for (TranslatedBlock& b : block_storage_) {
    if (!b.invalidated) {
      RetireExecCount(&b);
    }
  }
  cache_.Reset();
  blocks_by_pc_.clear();
  block_storage_.clear();
  for (std::vector<TranslatedBlock*>& list : page_blocks_) {
    list.clear();
  }
  if (page_count_ != 0) {
    std::memset(code_pages_, 0, page_count_);
    // Statically-detected self-modifying pages stay armed forever: the
    // seam must catch the next store even with no translations left.
    for (size_t pg = 0; pg < page_count_; pg++) {
      if (IsStaticSelfmodPage(pg)) {
        code_pages_[pg] = 1;
      }
    }
  }
  chain_slots_.clear();
  heat_.clear();
  generation_++;
  stats_.flushes++;
  c_flushes_->Inc();
}

}  // namespace jit
}  // namespace avm
