#include "src/vm/jit/translation_cache.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define AVM_JIT_HAVE_MMAP 1
#else
#define AVM_JIT_HAVE_MMAP 0
#endif

#include <cstring>

#include "src/vm/jit/jit.h"

namespace avm {
namespace jit {

namespace {

#if AVM_JIT_HAVE_MMAP
void* MapExec(size_t bytes, bool start_writable_only) {
  int prot = PROT_READ | PROT_WRITE | (start_writable_only ? 0 : PROT_EXEC);
  void* p = mmap(nullptr, bytes, prot, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  return p == MAP_FAILED ? nullptr : p;
}
#endif

}  // namespace

TranslationCache::~TranslationCache() {
#if AVM_JIT_HAVE_MMAP
  if (base_ != nullptr) {
    munmap(base_, size_);
  }
#endif
}

bool TranslationCache::Init(const ExecMemOptions& opts) {
#if AVM_JIT_HAVE_MMAP
  harden_wx_ = opts.harden_wx;
  size_ = opts.bytes;
  base_ = static_cast<uint8_t*>(MapExec(size_, harden_wx_));
  if (base_ == nullptr) {
    size_ = 0;
    return false;
  }
  writable_ = true;  // Fresh maps are writable in both modes.

  // The C++ -> native trampoline: EnterFn(JitContext* rdi, void* rsi).
  // Saves the callee-saved registers the generated code uses, loads the
  // fixed register conventions from the context, and jumps into the
  // block. Blocks return straight to the trampoline's caller via the
  // ExitEpilogue sequence (pops + ret), so there is no "return" half.
  uint8_t* p = base_;
  enter_ = p;
  static constexpr uint8_t kEnter[] = {
      0x53,                                    // push rbx
      0x55,                                    // push rbp
      0x41, 0x54,                              // push r12
      0x41, 0x55,                              // push r13
      0x41, 0x56,                              // push r14
      0x41, 0x57,                              // push r15
      0x48, 0x89, 0xFB,                        // mov rbx, rdi      (ctx)
      0x48, 0x8B, 0x2B,                        // mov rbp, [rbx+0]  (regs)
      0x4C, 0x8B, 0x63, kCtxMem,               // mov r12, [rbx+8]  (mem)
      0x4C, 0x8B, 0x6B, kCtxIcount,            // mov r13, [rbx+16] (icount)
      0x4C, 0x8B, 0x73, kCtxTarget,            // mov r14, [rbx+24] (target)
      0xFF, 0xE6,                              // jmp rsi
  };
  std::memcpy(p, kEnter, sizeof(kEnter));
  p += sizeof(kEnter);

  // Invalidated-block thunk: entries of flushed/self-modified blocks are
  // patched to jump here. ctx.pc was already set by whoever routed
  // control to the dead entry (the dispatcher or a chained predecessor),
  // so only the exit protocol remains: no chain slot to patch, exit code
  // kExitChainMiss, icount committed.
  invalid_thunk_ = p;
  static constexpr uint8_t kInvalid[] = {
      0xC7, 0x43, kCtxExitSlot, 0xFF, 0xFF, 0xFF, 0xFF,  // mov dword [rbx+36], -1
      0x31, 0xC0,                                        // xor eax, eax (kExitChainMiss)
      0x4C, 0x89, 0x6B, kCtxIcount,                      // mov [rbx+16], r13
      0x41, 0x5F,                                        // pop r15
      0x41, 0x5E,                                        // pop r14
      0x41, 0x5D,                                        // pop r13
      0x41, 0x5C,                                        // pop r12
      0x5D,                                              // pop rbp
      0x5B,                                              // pop rbx
      0xC3,                                              // ret
  };
  std::memcpy(p, kInvalid, sizeof(kInvalid));
  p += sizeof(kInvalid);

  used_ = static_cast<size_t>(p - base_);
  header_bytes_ = used_;
  MakeExecutable();
  return true;
#else
  (void)opts;
  return false;
#endif
}

uint8_t* TranslationCache::Alloc(size_t bytes) {
  if (base_ == nullptr || used_ + bytes > size_) {
    return nullptr;
  }
  uint8_t* at = base_ + used_;
  used_ += bytes;
  return at;
}

void TranslationCache::Reset() {
  // The fixed thunks survive a flush; only translated blocks are dropped.
  used_ = header_bytes_;
}

void TranslationCache::MakeWritable() {
#if AVM_JIT_HAVE_MMAP
  if (!harden_wx_ || writable_ || base_ == nullptr) {
    return;
  }
  mprotect(base_, size_, PROT_READ | PROT_WRITE);
  writable_ = true;
#endif
}

void TranslationCache::MakeExecutable() {
#if AVM_JIT_HAVE_MMAP
  if (!harden_wx_ || !writable_ || base_ == nullptr) {
    writable_ = false;
    return;
  }
  mprotect(base_, size_, PROT_READ | PROT_EXEC);
  writable_ = false;
#endif
}

}  // namespace jit
}  // namespace avm
