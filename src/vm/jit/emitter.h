// A minimal x86-64 instruction emitter for the AVM-32 block translator.
//
// This is not a general assembler: it provides exactly the encodings the
// translator (src/vm/jit/jit.cc) needs, under the fixed register
// conventions of the generated code:
//
//   rbx = JitContext*            (callee-saved, loaded by the trampoline)
//   rbp = guest register file    (&cpu_.regs[0]; offsets 4*reg, disp8)
//   r12 = guest memory base      (mem_.data())
//   r13 = live icount            (committed to ctx at every exit)
//   r14 = target icount
//   eax/ecx/edx = scratch
//
// Code is emitted into a plain byte vector and copied into the
// TranslationCache once the block is complete; rel32 fixups inside the
// block are offset-based so the copy needs no relocation.
#ifndef SRC_VM_JIT_EMITTER_H_
#define SRC_VM_JIT_EMITTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace avm {
namespace jit {

// x86 condition codes (the 0x0F 0x8x long-form Jcc suffix nibble).
enum class Cc : uint8_t {
  kB = 0x2,   // below (unsigned <)
  kAe = 0x3,  // above-or-equal (unsigned >=)
  kE = 0x4,   // equal
  kNe = 0x5,  // not equal
  kA = 0x7,   // above (unsigned >)
  kL = 0xC,   // less (signed <)
  kGe = 0xD,  // greater-or-equal (signed >=)
};

// 32-bit scratch registers used by the generated code.
enum class R32 : uint8_t { kEax = 0, kEcx = 1, kEdx = 2 };

class Emitter {
 public:
  const std::vector<uint8_t>& bytes() const { return buf_; }
  size_t size() const { return buf_.size(); }

  void Byte(uint8_t b) { buf_.push_back(b); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; i++) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  static uint8_t ModRM(uint8_t mod, uint8_t reg, uint8_t rm) {
    return static_cast<uint8_t>(mod << 6 | (reg & 7) << 3 | (rm & 7));
  }

  // --- Guest register file accesses: [rbp + 4*greg], disp8 -------------

  // mov r32, [rbp + 4*greg]
  void LoadGuest(R32 r, int greg) { MemRbp(0x8B, static_cast<uint8_t>(r), greg); }
  // mov [rbp + 4*greg], r32
  void StoreGuest(int greg, R32 r) { MemRbp(0x89, static_cast<uint8_t>(r), greg); }
  // op [rbp + 4*greg], r32   for add/sub/and/or/xor (memory-destination)
  void AddMemGuest(int greg, R32 r) { MemRbp(0x01, static_cast<uint8_t>(r), greg); }
  void SubMemGuest(int greg, R32 r) { MemRbp(0x29, static_cast<uint8_t>(r), greg); }
  void AndMemGuest(int greg, R32 r) { MemRbp(0x21, static_cast<uint8_t>(r), greg); }
  void OrMemGuest(int greg, R32 r) { MemRbp(0x09, static_cast<uint8_t>(r), greg); }
  void XorMemGuest(int greg, R32 r) { MemRbp(0x31, static_cast<uint8_t>(r), greg); }
  // imul eax, [rbp + 4*greg]
  void ImulEaxGuest(int greg) {
    Byte(0x0F);
    MemRbp(0xAF, 0, greg);
  }
  // cmp eax, [rbp + 4*greg]
  void CmpEaxGuest(int greg) { MemRbp(0x3B, 0, greg); }
  // mov dword [rbp + 4*greg], imm32
  void MovGuestImm(int greg, uint32_t imm) {
    MemRbp(0xC7, 0, greg);
    U32(imm);
  }
  // add/or dword [rbp + 4*greg], imm32  (0x81 group, /0 and /1)
  void AddGuestImm(int greg, uint32_t imm) {
    MemRbp(0x81, 0, greg);
    U32(imm);
  }
  void OrGuestImm(int greg, uint32_t imm) {
    MemRbp(0x81, 1, greg);
    U32(imm);
  }
  // shl/shr/sar dword [rbp + 4*greg], cl  (0xD3 group: /4, /5, /7)
  void ShlGuestCl(int greg) { MemRbp(0xD3, 4, greg); }
  void ShrGuestCl(int greg) { MemRbp(0xD3, 5, greg); }
  void SraGuestCl(int greg) { MemRbp(0xD3, 7, greg); }

  // --- Scratch-register ops -------------------------------------------

  // mov r32, imm32
  void MovRegImm(R32 r, uint32_t imm) {
    Byte(static_cast<uint8_t>(0xB8 + static_cast<uint8_t>(r)));
    U32(imm);
  }
  // mov edx, eax
  void MovEdxEax() {
    Byte(0x89);
    Byte(0xC2);
  }
  // add eax, imm32 (no-op when imm == 0)
  void AddEaxImm(uint32_t imm) {
    if (imm == 0) {
      return;
    }
    Byte(0x05);
    U32(imm);
  }
  // cmp eax, imm32
  void CmpEaxImm(uint32_t imm) {
    Byte(0x3D);
    U32(imm);
  }
  // test eax, imm32
  void TestEaxImm(uint32_t imm) {
    Byte(0xA9);
    U32(imm);
  }
  // test ecx, ecx
  void TestEcxEcx() {
    Byte(0x85);
    Byte(0xC9);
  }
  // xor edx, edx
  void XorEdxEdx() {
    Byte(0x31);
    Byte(0xD2);
  }
  // div ecx  (eax = edx:eax / ecx, edx = remainder)
  void DivEcx() {
    Byte(0xF7);
    Byte(0xF1);
  }
  // shr edx, imm8
  void ShrEdxImm(uint8_t imm) {
    Byte(0xC1);
    Byte(0xEA);
    Byte(imm);
  }
  // setcc al; movzx eax, al
  void SetccEax(Cc cc) {
    Byte(0x0F);
    Byte(static_cast<uint8_t>(0x90 + static_cast<uint8_t>(cc)));
    Byte(0xC0);
    Byte(0x0F);
    Byte(0xB6);
    Byte(0xC0);
  }

  // --- Guest memory accesses: [r12 + rax] ------------------------------

  // mov r32, [r12 + rax]
  void LoadMem32(R32 r) {
    Byte(0x41);
    Byte(0x8B);
    Byte(ModRM(0, static_cast<uint8_t>(r), 4));
    Byte(0x04);  // SIB: base=r12, index=rax
  }
  // movzx r32, byte [r12 + rax]
  void LoadMem8(R32 r) {
    Byte(0x41);
    Byte(0x0F);
    Byte(0xB6);
    Byte(ModRM(0, static_cast<uint8_t>(r), 4));
    Byte(0x04);
  }
  // mov [r12 + rax], r32
  void StoreMem32(R32 r) {
    Byte(0x41);
    Byte(0x89);
    Byte(ModRM(0, static_cast<uint8_t>(r), 4));
    Byte(0x04);
  }
  // mov [r12 + rax], r8 (low byte of r)
  void StoreMem8(R32 r) {
    Byte(0x41);
    Byte(0x88);
    Byte(ModRM(0, static_cast<uint8_t>(r), 4));
    Byte(0x04);
  }

  // --- JitContext accesses: [rbx + disp8] ------------------------------

  // mov rcx, [rbx + disp8]   (loads a pointer field)
  void LoadCtxPtrRcx(uint8_t disp) {
    Byte(0x48);
    Byte(0x8B);
    Byte(ModRM(1, 1, 3));
    Byte(disp);
  }
  // mov rax, [rbx + disp8]
  void LoadCtxPtrRax(uint8_t disp) {
    Byte(0x48);
    Byte(0x8B);
    Byte(ModRM(1, 0, 3));
    Byte(disp);
  }
  // mov [rbx + disp8], eax
  void StoreCtx32Eax(uint8_t disp) {
    Byte(0x89);
    Byte(ModRM(1, 0, 3));
    Byte(disp);
  }
  // mov dword [rbx + disp8], imm32
  void StoreCtx32Imm(uint8_t disp, uint32_t imm) {
    Byte(0xC7);
    Byte(ModRM(1, 0, 3));
    Byte(disp);
    U32(imm);
  }
  // mov byte [rcx + rdx], imm8
  void StoreByteRcxRdx(uint8_t imm) {
    Byte(0xC6);
    Byte(ModRM(0, 0, 4));
    Byte(0x11);  // SIB: base=rcx, index=rdx
    Byte(imm);
  }
  // cmp byte [rcx + rdx], 0
  void CmpByteRcxRdxZero() {
    Byte(0x80);
    Byte(ModRM(0, 7, 4));
    Byte(0x11);
    Byte(0x00);
  }
  // mov byte [rax + disp8], imm8
  void StoreByteRaxDisp(uint8_t disp, uint8_t imm) {
    Byte(0xC6);
    Byte(ModRM(1, 0, 0));
    Byte(disp);
    Byte(imm);
  }

  // --- icount bookkeeping (r13/r14) ------------------------------------

  // lea rax, [r13 + disp32]; returns the offset of the disp32 so the
  // block length can be patched in once translation finishes.
  size_t LeaRaxR13Disp32(uint32_t disp) {
    Byte(0x49);
    Byte(0x8D);
    Byte(ModRM(2, 0, 5));
    size_t at = size();
    U32(disp);
    return at;
  }
  // cmp rax, r14
  void CmpRaxR14() {
    Byte(0x4C);
    Byte(0x39);
    Byte(0xF0);
  }
  // add r13, imm32 (no-op when imm == 0)
  void AddR13Imm(uint32_t imm) {
    if (imm == 0) {
      return;
    }
    Byte(0x49);
    Byte(0x81);
    Byte(0xC5);
    U32(imm);
  }

  // --- Control flow within the block (rel32, offset-based fixups) ------

  // jcc rel32 with the target unknown; returns the fixup site.
  size_t Jcc(Cc cc) {
    Byte(0x0F);
    Byte(static_cast<uint8_t>(0x80 + static_cast<uint8_t>(cc)));
    size_t at = size();
    U32(0);
    return at;
  }
  // jmp rel32 with the target unknown; returns the fixup site.
  size_t Jmp() {
    Byte(0xE9);
    size_t at = size();
    U32(0);
    return at;
  }
  // Points a previously emitted rel32 at the current position.
  void Bind(size_t fixup_at) { PatchU32(fixup_at, static_cast<uint32_t>(size() - (fixup_at + 4))); }
  void PatchU32(size_t at, uint32_t v) {
    for (int i = 0; i < 4; i++) {
      buf_[at + static_cast<size_t>(i)] = static_cast<uint8_t>(v >> (8 * i));
    }
  }

  // --- Block exit: commit icount and return to the trampoline caller ---

  // mov eax, exit_code; mov [rbx+icount_disp], r13; pop r15..rbx; ret
  void ExitEpilogue(uint32_t exit_code, uint8_t icount_disp) {
    if (exit_code == 0) {
      Byte(0x31);  // xor eax, eax
      Byte(0xC0);
    } else {
      MovRegImm(R32::kEax, exit_code);
    }
    // mov [rbx + icount_disp], r13
    Byte(0x4C);
    Byte(0x89);
    Byte(ModRM(1, 5, 3));
    Byte(icount_disp);
    static constexpr uint8_t kPops[] = {0x41, 0x5F, 0x41, 0x5E, 0x41, 0x5D,
                                        0x41, 0x5C, 0x5D, 0x5B, 0xC3};
    for (uint8_t b : kPops) {
      Byte(b);
    }
  }

 private:
  // opcode + modrm(01, reg, rbp) + disp8 for the guest register file.
  void MemRbp(uint8_t opcode, uint8_t reg, int greg) {
    Byte(opcode);
    Byte(ModRM(1, reg, 5));
    Byte(static_cast<uint8_t>(4 * greg));
  }

  std::vector<uint8_t> buf_;
};

}  // namespace jit
}  // namespace avm

#endif  // SRC_VM_JIT_EMITTER_H_
