// The executable code buffer of the JIT: one mmap'd region with bump
// allocation, following Valgrind/QEMU translation-cache management. The
// buffer starts with two fixed thunks (the C++->native trampoline and
// the invalidated-block thunk); translated blocks are appended after
// them and the whole region is reset ("flushed") when it fills.
//
// Protection follows a W^X discipline when hardening is requested: the
// region is RW while the translator writes or patches and RX while
// guest blocks execute, never writable and executable at once. The
// default maps RWX up front (chain patching during warmup is frequent
// enough that two mprotect syscalls per patch are measurable); callers
// opt into the hardened mode with ExecMemOptions::harden_wx.
#ifndef SRC_VM_JIT_TRANSLATION_CACHE_H_
#define SRC_VM_JIT_TRANSLATION_CACHE_H_

#include <cstddef>
#include <cstdint>

namespace avm {
namespace jit {

struct ExecMemOptions {
  size_t bytes = 1u << 20;  // Code buffer size (1 MiB default).
  bool harden_wx = false;   // RW<->RX flipping instead of one RWX map.
};

class TranslationCache {
 public:
  TranslationCache() = default;
  ~TranslationCache();
  TranslationCache(const TranslationCache&) = delete;
  TranslationCache& operator=(const TranslationCache&) = delete;

  // Maps the buffer and writes the fixed thunks. Returns false when the
  // platform cannot provide executable memory (JIT then stays off).
  bool Init(const ExecMemOptions& opts);
  bool ok() const { return base_ != nullptr; }

  // Bump-allocates space for a block body. Returns nullptr when the
  // buffer cannot fit `bytes` (caller must Flush and retry).
  uint8_t* Alloc(size_t bytes);
  // Resets the bump pointer to just past the fixed thunks.
  void Reset();

  size_t used() const { return used_; }
  size_t capacity() const { return size_; }

  // Protection flips (no-ops unless harden_wx). The cache tracks its
  // state, so redundant calls cost nothing.
  void MakeWritable();
  void MakeExecutable();

  // void* instead of a function type: the caller casts to its entry
  // signature (uint32_t(*)(JitContext*, const void*)).
  const void* enter_fn() const { return enter_; }
  // Target for invalidated-block entry patches: reports "no block here"
  // and returns to the dispatcher.
  const uint8_t* invalid_thunk() const { return invalid_thunk_; }

 private:
  uint8_t* base_ = nullptr;
  size_t size_ = 0;
  size_t used_ = 0;
  size_t header_bytes_ = 0;  // Trampoline + thunk prefix that survives Reset.
  uint8_t* enter_ = nullptr;
  uint8_t* invalid_thunk_ = nullptr;
  bool harden_wx_ = false;
  bool writable_ = false;
};

}  // namespace jit
}  // namespace avm

#endif  // SRC_VM_JIT_TRANSLATION_CACHE_H_
