// RSA signatures (PKCS#1 v1.5-style padding with SHA-256), from scratch.
// The paper evaluates with 768-bit keys ("safe for gaming purposes"); key
// size is a parameter here so benches can sweep it.
#ifndef SRC_CRYPTO_RSA_H_
#define SRC_CRYPTO_RSA_H_

#include "src/crypto/bignum.h"
#include "src/crypto/sha256.h"
#include "src/util/bytes.h"
#include "src/util/prng.h"

namespace avm {

struct RsaPublicKey {
  Bignum n;
  Bignum e;

  // Modulus size in bytes (== signature size).
  size_t ByteLength() const { return (n.BitLength() + 7) / 8; }

  Bytes Serialize() const;
  static RsaPublicKey Deserialize(ByteView data);

  // Stable identity for key registries.
  Hash256 Fingerprint() const;
};

struct RsaPrivateKey {
  Bignum n;
  Bignum e;
  Bignum d;
  // CRT components for ~4x faster signing.
  Bignum p, q, dp, dq, qinv;

  RsaPublicKey PublicPart() const { return RsaPublicKey{n, e}; }
};

struct RsaKeypair {
  RsaPublicKey pub;
  RsaPrivateKey priv;

  // Generates an RSA keypair with an n of exactly `bits` bits. Deterministic
  // given the PRNG state (useful for reproducible scenarios).
  static RsaKeypair Generate(Prng& rng, size_t bits);
};

// Signs SHA-256(msg) with PKCS#1 v1.5-style padding. Returns the signature
// as a big-endian byte string of the modulus length.
Bytes RsaSign(const RsaPrivateKey& key, ByteView msg);

// Verifies an RSA signature over msg. Never throws on malformed input;
// returns false instead (signatures arrive from untrusted machines).
bool RsaVerify(const RsaPublicKey& key, ByteView msg, ByteView sig);

}  // namespace avm

#endif  // SRC_CRYPTO_RSA_H_
