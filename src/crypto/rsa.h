// RSA signatures (PKCS#1 v1.5-style padding with SHA-256), from scratch.
// The paper evaluates with 768-bit keys ("safe for gaming purposes"); key
// size is a parameter here so benches can sweep it.
#ifndef SRC_CRYPTO_RSA_H_
#define SRC_CRYPTO_RSA_H_

#include <memory>

#include "src/crypto/bignum.h"
#include "src/crypto/sha256.h"
#include "src/util/bytes.h"
#include "src/util/prng.h"

namespace avm {

struct RsaPublicKey {
  Bignum n;
  Bignum e;
  // Cached Montgomery context for n, shared by copies of the key, so
  // every Verify does not rebuild it (one long division each). Built by
  // Generate/Deserialize; WarmContexts() fills it for hand-built keys.
  // Immutable once built, so concurrent verifies are safe.
  std::shared_ptr<const Montgomery> mont_n;

  // Modulus size in bytes (== signature size).
  size_t ByteLength() const { return (n.BitLength() + 7) / 8; }

  void WarmContexts();

  Bytes Serialize() const;
  static RsaPublicKey Deserialize(ByteView data);

  // Stable identity for key registries.
  Hash256 Fingerprint() const;
};

struct RsaPrivateKey {
  Bignum n;
  Bignum e;
  Bignum d;
  // CRT components for ~4x faster signing.
  Bignum p, q, dp, dq, qinv;
  // Cached Montgomery contexts for the CRT moduli (see RsaPublicKey).
  std::shared_ptr<const Montgomery> mont_p, mont_q;

  void WarmContexts();

  RsaPublicKey PublicPart() const;
};

struct RsaKeypair {
  RsaPublicKey pub;
  RsaPrivateKey priv;

  // Generates an RSA keypair with an n of exactly `bits` bits. Deterministic
  // given the PRNG state (useful for reproducible scenarios). The keys come
  // back with their Montgomery contexts warmed.
  static RsaKeypair Generate(Prng& rng, size_t bits);
};

// Signs SHA-256(msg) with PKCS#1 v1.5-style padding. Returns the signature
// as a big-endian byte string of the modulus length.
Bytes RsaSign(const RsaPrivateKey& key, ByteView msg);
// Same, over an already-computed SHA-256 digest: lets hot paths stream
// the signed fields through one incremental hasher instead of
// materializing a payload buffer. RsaSign(key, msg) ==
// RsaSignDigest(key, Sha256::Digest(msg)) bit-for-bit.
Bytes RsaSignDigest(const RsaPrivateKey& key, const Hash256& digest);

// Verifies an RSA signature over msg. Never throws on malformed input;
// returns false instead (signatures arrive from untrusted machines).
bool RsaVerify(const RsaPublicKey& key, ByteView msg, ByteView sig);
bool RsaVerifyDigest(const RsaPublicKey& key, const Hash256& digest, ByteView sig);

}  // namespace avm

#endif  // SRC_CRYPTO_RSA_H_
