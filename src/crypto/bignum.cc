#include "src/crypto/bignum.h"

#include <algorithm>
#include <stdexcept>

namespace avm {

namespace {
constexpr uint64_t kBase = 1ULL << 32;

// Small primes for trial division before Miller-Rabin.
constexpr uint32_t kSmallPrimes[] = {
    3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,  53,  59,  61,  67,
    71,  73,  79,  83,  89,  97,  101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157,
    163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257,
    263, 269, 271, 277, 281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349, 353, 359, 367,
    373, 379, 383, 389, 397, 401, 409, 419, 421, 431, 433, 439, 443, 449, 457, 461, 463, 467,
    479, 487, 491, 499, 503, 509, 521, 523, 541, 547, 557, 563, 569, 571, 577, 587, 593, 599,
    601, 607, 613, 617, 619, 631, 641, 643, 647, 653, 659, 661, 673, 677, 683, 691, 701, 709};
}  // namespace

Bignum::Bignum(uint64_t v) {
  if (v != 0) {
    limbs_.push_back(static_cast<uint32_t>(v));
    if (v >> 32) {
      limbs_.push_back(static_cast<uint32_t>(v >> 32));
    }
  }
}

void Bignum::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) {
    limbs_.pop_back();
  }
}

Bignum Bignum::FromBytes(ByteView be) {
  Bignum out;
  size_t n = be.size();
  out.limbs_.resize((n + 3) / 4, 0);
  for (size_t i = 0; i < n; i++) {
    // be[n-1] is the least significant byte.
    size_t byte_idx = n - 1 - i;
    out.limbs_[i / 4] |= static_cast<uint32_t>(be[byte_idx]) << (8 * (i % 4));
  }
  out.Normalize();
  return out;
}

Bytes Bignum::ToBytes() const {
  size_t bits = BitLength();
  return ToBytes((bits + 7) / 8);
}

Bytes Bignum::ToBytes(size_t len) const {
  size_t bits = BitLength();
  size_t need = (bits + 7) / 8;
  if (need > len) {
    throw std::invalid_argument("Bignum::ToBytes: value too large for length");
  }
  Bytes out(len, 0);
  for (size_t i = 0; i < need; i++) {
    uint8_t byte = static_cast<uint8_t>(limbs_[i / 4] >> (8 * (i % 4)));
    out[len - 1 - i] = byte;
  }
  return out;
}

Bignum Bignum::FromHex(std::string_view hex) {
  std::string h(hex);
  if (h.size() % 2 != 0) {
    h.insert(h.begin(), '0');
  }
  return FromBytes(HexDecode(h));
}

std::string Bignum::ToHex() const {
  if (IsZero()) {
    return "0";
  }
  std::string s = HexEncode(ToBytes());
  size_t first = s.find_first_not_of('0');
  return s.substr(first);
}

size_t Bignum::BitLength() const {
  if (limbs_.empty()) {
    return 0;
  }
  uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    bits++;
    top >>= 1;
  }
  return bits;
}

bool Bignum::Bit(size_t i) const {
  size_t limb = i / 32;
  if (limb >= limbs_.size()) {
    return false;
  }
  return (limbs_[limb] >> (i % 32)) & 1;
}

uint64_t Bignum::LowU64() const {
  uint64_t v = 0;
  if (limbs_.size() > 1) {
    v = static_cast<uint64_t>(limbs_[1]) << 32;
  }
  if (!limbs_.empty()) {
    v |= limbs_[0];
  }
  return v;
}

int Bignum::Cmp(const Bignum& a, const Bignum& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) {
      return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

Bignum Bignum::Add(const Bignum& a, const Bignum& b) {
  Bignum out;
  size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; i++) {
    uint64_t s = carry;
    if (i < a.limbs_.size()) {
      s += a.limbs_[i];
    }
    if (i < b.limbs_.size()) {
      s += b.limbs_[i];
    }
    out.limbs_[i] = static_cast<uint32_t>(s);
    carry = s >> 32;
  }
  out.limbs_[n] = static_cast<uint32_t>(carry);
  out.Normalize();
  return out;
}

Bignum Bignum::Sub(const Bignum& a, const Bignum& b) {
  if (Cmp(a, b) < 0) {
    throw std::invalid_argument("Bignum::Sub: would be negative");
  }
  Bignum out;
  out.limbs_.resize(a.limbs_.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); i++) {
    int64_t d = static_cast<int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) {
      d -= b.limbs_[i];
    }
    if (d < 0) {
      d += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<uint32_t>(d);
  }
  out.Normalize();
  return out;
}

Bignum Bignum::Mul(const Bignum& a, const Bignum& b) {
  if (a.IsZero() || b.IsZero()) {
    return Bignum();
  }
  Bignum out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (size_t i = 0; i < a.limbs_.size(); i++) {
    uint64_t carry = 0;
    uint64_t ai = a.limbs_[i];
    for (size_t j = 0; j < b.limbs_.size(); j++) {
      uint64_t cur = out.limbs_[i + j] + ai * b.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    size_t k = i + b.limbs_.size();
    while (carry != 0) {
      uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
      k++;
    }
  }
  out.Normalize();
  return out;
}

Bignum Bignum::Shl(const Bignum& a, size_t bits) {
  if (a.IsZero() || bits == 0) {
    Bignum copy = a;
    return copy;
  }
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  Bignum out;
  out.limbs_.assign(a.limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < a.limbs_.size(); i++) {
    uint64_t v = static_cast<uint64_t>(a.limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
  }
  out.Normalize();
  return out;
}

Bignum Bignum::Shr(const Bignum& a, size_t bits) {
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  if (limb_shift >= a.limbs_.size()) {
    return Bignum();
  }
  Bignum out;
  out.limbs_.assign(a.limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); i++) {
    uint64_t v = a.limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < a.limbs_.size()) {
      v |= static_cast<uint64_t>(a.limbs_[i + limb_shift + 1]) << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<uint32_t>(v);
  }
  out.Normalize();
  return out;
}

// Knuth Algorithm D (TAOCP 4.3.1) with 32-bit limbs.
void Bignum::DivMod(const Bignum& a, const Bignum& b, Bignum* q, Bignum* r) {
  if (b.IsZero()) {
    throw std::invalid_argument("Bignum::DivMod: division by zero");
  }
  if (Cmp(a, b) < 0) {
    if (q != nullptr) {
      *q = Bignum();
    }
    if (r != nullptr) {
      *r = a;
    }
    return;
  }
  if (b.limbs_.size() == 1) {
    // Fast path: single-limb divisor.
    uint64_t d = b.limbs_[0];
    Bignum quo;
    quo.limbs_.resize(a.limbs_.size(), 0);
    uint64_t rem = 0;
    for (size_t i = a.limbs_.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | a.limbs_[i];
      quo.limbs_[i] = static_cast<uint32_t>(cur / d);
      rem = cur % d;
    }
    quo.Normalize();
    if (q != nullptr) {
      *q = std::move(quo);
    }
    if (r != nullptr) {
      *r = Bignum(rem);
    }
    return;
  }

  // Normalize so the divisor's top limb has its high bit set.
  size_t shift = 0;
  uint32_t top = b.limbs_.back();
  while ((top & 0x80000000u) == 0) {
    top <<= 1;
    shift++;
  }
  Bignum u = Shl(a, shift);
  Bignum v = Shl(b, shift);
  size_t n = v.limbs_.size();
  size_t m = u.limbs_.size() - n;
  u.limbs_.push_back(0);  // u has m+n+1 limbs.

  Bignum quo;
  quo.limbs_.assign(m + 1, 0);

  uint64_t vn1 = v.limbs_[n - 1];
  uint64_t vn2 = v.limbs_[n - 2];

  for (size_t j = m + 1; j-- > 0;) {
    uint64_t num = (static_cast<uint64_t>(u.limbs_[j + n]) << 32) | u.limbs_[j + n - 1];
    uint64_t qhat = num / vn1;
    uint64_t rhat = num % vn1;
    while (qhat >= kBase || qhat * vn2 > ((rhat << 32) | u.limbs_[j + n - 2])) {
      qhat--;
      rhat += vn1;
      if (rhat >= kBase) {
        break;
      }
    }
    // Multiply-subtract qhat * v from u[j .. j+n].
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; i++) {
      uint64_t p = qhat * v.limbs_[i] + carry;
      carry = p >> 32;
      int64_t t = static_cast<int64_t>(u.limbs_[i + j]) - static_cast<int64_t>(p & 0xffffffffu) - borrow;
      if (t < 0) {
        t += static_cast<int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u.limbs_[i + j] = static_cast<uint32_t>(t);
    }
    int64_t t = static_cast<int64_t>(u.limbs_[j + n]) - static_cast<int64_t>(carry) - borrow;
    if (t < 0) {
      // qhat was one too large: add back.
      qhat--;
      uint64_t carry2 = 0;
      for (size_t i = 0; i < n; i++) {
        uint64_t s = static_cast<uint64_t>(u.limbs_[i + j]) + v.limbs_[i] + carry2;
        u.limbs_[i + j] = static_cast<uint32_t>(s);
        carry2 = s >> 32;
      }
      t += static_cast<int64_t>(carry2);
    }
    u.limbs_[j + n] = static_cast<uint32_t>(t);
    quo.limbs_[j] = static_cast<uint32_t>(qhat);
  }

  quo.Normalize();
  if (q != nullptr) {
    *q = std::move(quo);
  }
  if (r != nullptr) {
    u.limbs_.resize(n);
    u.Normalize();
    *r = Shr(u, shift);
  }
}

Bignum Bignum::Mod(const Bignum& a, const Bignum& m) {
  Bignum r;
  DivMod(a, m, nullptr, &r);
  return r;
}

Bignum Bignum::MulMod(const Bignum& a, const Bignum& b, const Bignum& m) {
  return Mod(Mul(a, b), m);
}

Montgomery::Montgomery(const Bignum& m) : modulus_(m), m_(m.limbs()), n_(m.limbs().size()) {
  if (!m.IsOdd() || n_ < 2) {
    throw std::invalid_argument("Montgomery: modulus must be odd and multi-limb");
  }
  // m' = -m^{-1} mod 2^32 via Newton iteration on 32-bit words.
  uint32_t m0 = m_[0];
  uint32_t inv = 1;
  for (int i = 0; i < 5; i++) {
    inv *= 2 - m0 * inv;
  }
  minv_ = ~inv + 1;  // -inv mod 2^32.

  // r2 = (2^(32n))^2 mod m, computed with one long division.
  Bignum r2 = Bignum::Mod(Bignum::Shl(Bignum(1), 64 * n_), m);
  r2_ = ToResidue(r2);
  // Montgomery form of 1 is R mod m: REDC(1 * R^2).
  one_ = Mul(ToResidue(Bignum(1)), r2_);
}

Montgomery::Residue Montgomery::ToResidue(const Bignum& a) const {
  Residue out(n_, 0);
  const auto& limbs = a.limbs();
  for (size_t i = 0; i < limbs.size() && i < n_; i++) {
    out[i] = limbs[i];
  }
  return out;
}

Montgomery::Residue Montgomery::Enter(const Residue& a) const { return Mul(a, r2_); }

Bignum Montgomery::Leave(const Residue& a) const {
  Residue one(n_, 0);
  one[0] = 1;
  // Multiplying by the residue "1" performs one REDC, dividing by R.
  return Bignum::FromLimbs(Mul(a, one));
}

Montgomery::Residue Montgomery::Mul(const Residue& a, const Residue& b) const {
  // CIOS (coarsely integrated operand scanning).
  std::vector<uint32_t> t(n_ + 2, 0);
  for (size_t i = 0; i < n_; i++) {
    // t += a[i] * b.
    uint64_t carry = 0;
    uint64_t ai = a[i];
    for (size_t j = 0; j < n_; j++) {
      uint64_t cur = t[j] + ai * b[j] + carry;
      t[j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    uint64_t cur = t[n_] + carry;
    t[n_] = static_cast<uint32_t>(cur);
    t[n_ + 1] = static_cast<uint32_t>(cur >> 32);

    // u = t[0] * m' mod 2^32; t += u * m; t >>= 32.
    uint32_t u = t[0] * minv_;
    carry = 0;
    uint64_t first = t[0] + static_cast<uint64_t>(u) * m_[0];
    carry = first >> 32;
    for (size_t j = 1; j < n_; j++) {
      uint64_t c2 = t[j] + static_cast<uint64_t>(u) * m_[j] + carry;
      t[j - 1] = static_cast<uint32_t>(c2);
      carry = c2 >> 32;
    }
    uint64_t c3 = t[n_] + carry;
    t[n_ - 1] = static_cast<uint32_t>(c3);
    t[n_] = t[n_ + 1] + static_cast<uint32_t>(c3 >> 32);
    t[n_ + 1] = 0;
  }

  Residue out(t.begin(), t.begin() + static_cast<ptrdiff_t>(n_));
  if (t[n_] != 0 || !LessThanM(out)) {
    SubM(out);
  }
  return out;
}

bool Montgomery::LessThanM(const Residue& a) const {
  for (size_t i = n_; i-- > 0;) {
    if (a[i] != m_[i]) {
      return a[i] < m_[i];
    }
  }
  return false;  // Equal counts as not-less.
}

void Montgomery::SubM(Residue& a) const {
  int64_t borrow = 0;
  for (size_t i = 0; i < n_; i++) {
    int64_t d = static_cast<int64_t>(a[i]) - m_[i] - borrow;
    if (d < 0) {
      d += 1ll << 32;
      borrow = 1;
    } else {
      borrow = 0;
    }
    a[i] = static_cast<uint32_t>(d);
  }
}

Bignum Montgomery::PowMod(const Bignum& base, const Bignum& exp) const {
  size_t bits = exp.BitLength();
  if (bits == 0) {
    return Leave(one_);  // base^0 = 1 mod m (m >= 2 limbs, so 1 < m).
  }
  Residue b = Enter(ToResidue(Bignum::Mod(base, modulus_)));
  // 4-bit fixed window: precompute b^0..b^15 once, then per window do
  // four squarings plus at most one table multiply.
  Residue table[16];
  table[0] = one_;
  table[1] = b;
  for (int i = 2; i < 16; i++) {
    table[i] = Mul(table[i - 1], b);
  }
  size_t windows = (bits + 3) / 4;
  Residue result = one_;
  bool started = false;
  for (size_t w = windows; w-- > 0;) {
    if (started) {
      result = Mul(result, result);
      result = Mul(result, result);
      result = Mul(result, result);
      result = Mul(result, result);
    }
    uint32_t win = 0;
    for (size_t bit = 0; bit < 4; bit++) {
      if (exp.Bit(4 * w + bit)) {
        win |= 1u << bit;
      }
    }
    if (win != 0) {
      result = started ? Mul(result, table[win]) : table[win];
      started = true;
    }
  }
  return Leave(started ? result : one_);
}

Bignum Bignum::PowMod(const Bignum& base, const Bignum& exp, const Bignum& m) {
  if (m.IsZero()) {
    throw std::invalid_argument("Bignum::PowMod: zero modulus");
  }
  if (m.IsOdd() && m.limbs().size() >= 2) {
    // Montgomery fast path (all RSA moduli are odd).
    return Montgomery(m).PowMod(base, exp);
  }

  // Generic path: square-and-multiply with division-based reduction.
  size_t bits = exp.BitLength();
  Bignum result = Mod(Bignum(1), m);
  Bignum b = Mod(base, m);
  for (size_t i = bits; i-- > 0;) {
    result = MulMod(result, result, m);
    if (exp.Bit(i)) {
      result = MulMod(result, b, m);
    }
  }
  return result;
}

Bignum Bignum::Gcd(Bignum a, Bignum b) {
  while (!b.IsZero()) {
    Bignum r = Mod(a, b);
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

Bignum Bignum::InvMod(const Bignum& a, const Bignum& m) {
  // Extended Euclid without negative numbers: track coefficients of m
  // using the identity inv = m - t when t would be negative.
  // Standard iterative version over signed pairs, emulated with a sign flag.
  Bignum r0 = m, r1 = Mod(a, m);
  Bignum t0(0), t1(1);
  bool t0_neg = false, t1_neg = false;
  while (!r1.IsZero()) {
    Bignum q;
    Bignum r2;
    DivMod(r0, r1, &q, &r2);
    // t2 = t0 - q * t1 (signed arithmetic via flags).
    Bignum qt1 = Mul(q, t1);
    Bignum t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      // Same sign: t0 - q*t1 may flip sign.
      if (Cmp(t0, qt1) >= 0) {
        t2 = Sub(t0, qt1);
        t2_neg = t0_neg;
      } else {
        t2 = Sub(qt1, t0);
        t2_neg = !t0_neg;
      }
    } else {
      t2 = Add(t0, qt1);
      t2_neg = t0_neg;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
  }
  if (Cmp(r0, Bignum(1)) != 0) {
    throw std::invalid_argument("Bignum::InvMod: not invertible");
  }
  Bignum inv = Mod(t0, m);
  if (t0_neg && !inv.IsZero()) {
    inv = Sub(m, inv);
  }
  return inv;
}

Bignum Bignum::FromLimbs(std::vector<uint32_t> limbs) {
  Bignum out;
  out.limbs_ = std::move(limbs);
  out.Normalize();
  return out;
}

Bignum Bignum::RandomWithBits(Prng& rng, size_t bits) {
  if (bits == 0) {
    return Bignum();
  }
  Bignum out;
  out.limbs_.resize((bits + 31) / 32, 0);
  for (auto& l : out.limbs_) {
    l = static_cast<uint32_t>(rng.Next());
  }
  size_t top_bit = (bits - 1) % 32;
  uint32_t mask = (top_bit == 31) ? 0xffffffffu : ((1u << (top_bit + 1)) - 1);
  out.limbs_.back() &= mask;
  out.limbs_.back() |= 1u << top_bit;  // Force exact bit length.
  out.Normalize();
  return out;
}

Bignum Bignum::RandomBelow(Prng& rng, const Bignum& limit) {
  size_t bits = limit.BitLength();
  for (;;) {
    Bignum c = RandomWithBits(rng, bits);
    c.limbs_.back() &= 0x7fffffffu;  // Cheap way to get below sometimes.
    c.Normalize();
    if (Cmp(c, Bignum(2)) >= 0 && Cmp(c, limit) < 0) {
      return c;
    }
  }
}

bool Bignum::IsProbablePrime(const Bignum& n, Prng& rng, int rounds) {
  if (Cmp(n, Bignum(2)) < 0) {
    return false;
  }
  if (Cmp(n, Bignum(3)) <= 0) {
    return true;
  }
  if (!n.IsOdd()) {
    return false;
  }
  for (uint32_t p : kSmallPrimes) {
    Bignum bp(p);
    if (Cmp(n, bp) == 0) {
      return true;
    }
    if (Mod(n, bp).IsZero()) {
      return false;
    }
  }
  // Write n-1 = d * 2^s with d odd.
  Bignum n1 = Sub(n, Bignum(1));
  Bignum d = n1;
  size_t s = 0;
  while (!d.IsOdd()) {
    d = Shr(d, 1);
    s++;
  }
  for (int round = 0; round < rounds; round++) {
    Bignum a = RandomBelow(rng, n1);
    Bignum x = PowMod(a, d, n);
    if (Cmp(x, Bignum(1)) == 0 || Cmp(x, n1) == 0) {
      continue;
    }
    bool witness = true;
    for (size_t i = 1; i < s; i++) {
      x = MulMod(x, x, n);
      if (Cmp(x, n1) == 0) {
        witness = false;
        break;
      }
    }
    if (witness) {
      return false;
    }
  }
  return true;
}

Bignum Bignum::GeneratePrime(Prng& rng, size_t bits) {
  for (;;) {
    Bignum c = RandomWithBits(rng, bits);
    if (!c.IsOdd()) {
      c = Add(c, Bignum(1));
    }
    if (IsProbablePrime(c, rng)) {
      return c;
    }
  }
}

}  // namespace avm
