#include "src/crypto/sha256.h"

#include <cstring>
#include <stdexcept>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__ARM_FEATURE_CRYPTO)
#include <arm_neon.h>
#endif

namespace avm {

namespace {

constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

// Portable FIPS 180-4 compression over `blocks` consecutive 64-byte
// blocks. This is the reference the hardware paths must agree with.
void CompressPortableBlocks(uint32_t state[8], const uint8_t* data, size_t blocks) {
  for (; blocks > 0; blocks--, data += 64) {
    const uint8_t* block = data;
    uint32_t w[64];
    for (int i = 0; i < 16; i++) {
      w[i] = static_cast<uint32_t>(block[4 * i]) << 24 |
             static_cast<uint32_t>(block[4 * i + 1]) << 16 |
             static_cast<uint32_t>(block[4 * i + 2]) << 8 | static_cast<uint32_t>(block[4 * i + 3]);
    }
    for (int i = 16; i < 64; i++) {
      uint32_t s0 = Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      uint32_t s1 = Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; i++) {
      uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
      uint32_t ch = (e & f) ^ (~e & g);
      uint32_t t1 = h + s1 + ch + kK[i] + w[i];
      uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
      uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      uint32_t t2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

#if defined(__x86_64__) || defined(__i386__)
#define AVM_SHA256_HW 1

// SHA-NI compression (one _mm_sha256rnds2 pair per 4 rounds). The
// message-schedule recurrence follows the canonical Intel dataflow:
// next quad = msg2(msg1(W0, W1) + alignr(W3, W2, 4), W3). Quads rotate
// through W0..W3, so W0 is always the quad entering the rounds.
__attribute__((target("sha,sse4.1,ssse3"))) void CompressShaNiBlocks(uint32_t state[8],
                                                                     const uint8_t* data,
                                                                     size_t blocks) {
  const __m128i kByteSwap = _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  // Repack {a..d}, {e..h} into the ABEF/CDGH lane order rnds2 consumes.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);
  state1 = _mm_shuffle_epi32(state1, 0x1B);
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);

  for (; blocks > 0; blocks--, data += 64) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;

    __m128i w0 = _mm_shuffle_epi8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(data)), kByteSwap);
    __m128i w1 =
        _mm_shuffle_epi8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)), kByteSwap);
    __m128i w2 =
        _mm_shuffle_epi8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)), kByteSwap);
    __m128i w3 =
        _mm_shuffle_epi8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)), kByteSwap);

    for (int q = 0; q < 16; q++) {
      if (q >= 4) {
        __m128i sched = _mm_sha256msg1_epu32(w0, w1);
        sched = _mm_add_epi32(sched, _mm_alignr_epi8(w3, w2, 4));
        w0 = _mm_sha256msg2_epu32(sched, w3);
      }
      __m128i msg = _mm_add_epi32(w0, _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[4 * q])));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
      const __m128i rot = w0;
      w0 = w1;
      w1 = w2;
      w2 = w3;
      w3 = rot;
    }

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
  }

  // Unpack ABEF/CDGH back to {a..d}, {e..h}.
  tmp = _mm_shuffle_epi32(state0, 0x1B);
  state1 = _mm_shuffle_epi32(state1, 0xB1);
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);
  state1 = _mm_alignr_epi8(state1, tmp, 8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

bool DetectShaHardware() {
  return __builtin_cpu_supports("sha") != 0 && __builtin_cpu_supports("sse4.1") != 0 &&
         __builtin_cpu_supports("ssse3") != 0;
}

#elif defined(__aarch64__) && defined(__ARM_FEATURE_CRYPTO)
#define AVM_SHA256_HW 1

// ARMv8 crypto-extension compression; same quad-rotation dataflow as the
// x86 path, with vsha256su0/su1 forming the schedule.
void CompressShaNiBlocks(uint32_t state[8], const uint8_t* data, size_t blocks) {
  uint32x4_t state0 = vld1q_u32(&state[0]);
  uint32x4_t state1 = vld1q_u32(&state[4]);

  for (; blocks > 0; blocks--, data += 64) {
    const uint32x4_t abcd_save = state0;
    const uint32x4_t efgh_save = state1;

    uint32x4_t w0 = vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(data)));
    uint32x4_t w1 = vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(data + 16)));
    uint32x4_t w2 = vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(data + 32)));
    uint32x4_t w3 = vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(data + 48)));

    for (int q = 0; q < 16; q++) {
      if (q >= 4) {
        w0 = vsha256su1q_u32(vsha256su0q_u32(w0, w1), w2, w3);
      }
      const uint32x4_t msg = vaddq_u32(w0, vld1q_u32(&kK[4 * q]));
      const uint32x4_t prev0 = state0;
      state0 = vsha256hq_u32(state0, state1, msg);
      state1 = vsha256h2q_u32(state1, prev0, msg);
      const uint32x4_t rot = w0;
      w0 = w1;
      w1 = w2;
      w2 = w3;
      w3 = rot;
    }

    state0 = vaddq_u32(state0, abcd_save);
    state1 = vaddq_u32(state1, efgh_save);
  }

  vst1q_u32(&state[0], state0);
  vst1q_u32(&state[4], state1);
}

// Compiled only when the target baseline guarantees the extension.
bool DetectShaHardware() { return true; }

#else

bool DetectShaHardware() { return false; }

#endif

}  // namespace

Hash256 Hash256::FromBytes(ByteView b) {
  if (b.size() != 32) {
    throw std::invalid_argument("Hash256::FromBytes: need 32 bytes");
  }
  Hash256 h;
  std::memcpy(h.v.data(), b.data(), 32);
  return h;
}

bool Sha256::HardwareAvailable() {
  static const bool available = DetectShaHardware();
  return available;
}

namespace {

decltype(&CompressPortableBlocks) ActiveCompressFn() {
#ifdef AVM_SHA256_HW
  if (Sha256::HardwareAvailable()) {
    return &CompressShaNiBlocks;
  }
#endif
  return &CompressPortableBlocks;
}

}  // namespace

Sha256::Sha256() : compress_(ActiveCompressFn()) {
  state_[0] = 0x6a09e667;
  state_[1] = 0xbb67ae85;
  state_[2] = 0x3c6ef372;
  state_[3] = 0xa54ff53a;
  state_[4] = 0x510e527f;
  state_[5] = 0x9b05688c;
  state_[6] = 0x1f83d9ab;
  state_[7] = 0x5be0cd19;
}

Sha256 Sha256::PortableForTesting() {
  Sha256 h;
  h.compress_ = &CompressPortableBlocks;
  return h;
}

Sha256& Sha256::Update(ByteView data) {
  if (finished_) {
    throw std::logic_error("Sha256: Update after Finish");
  }
  total_len_ += data.size();
  size_t i = 0;
  if (buf_len_ > 0) {
    while (buf_len_ < 64 && i < data.size()) {
      buf_[buf_len_++] = data[i++];
    }
    if (buf_len_ == 64) {
      compress_(state_, buf_, 1);
      buf_len_ = 0;
    }
  }
  if (i + 64 <= data.size()) {
    const size_t blocks = (data.size() - i) / 64;
    compress_(state_, data.data() + i, blocks);
    i += blocks * 64;
  }
  while (i < data.size()) {
    buf_[buf_len_++] = data[i++];
  }
  return *this;
}

Sha256& Sha256::Update(std::string_view s) {
  return Update(ByteView(reinterpret_cast<const uint8_t*>(s.data()), s.size()));
}

Sha256& Sha256::UpdateU64(uint64_t v) {
  uint8_t b[8];
  for (int i = 0; i < 8; i++) {
    b[i] = static_cast<uint8_t>(v >> (8 * i));
  }
  return Update(ByteView(b, 8));
}

Hash256 Sha256::Finish() {
  if (finished_) {
    throw std::logic_error("Sha256: Finish called twice");
  }
  finished_ = true;
  uint64_t bit_len = total_len_ * 8;
  // Padding: 0x80, zeros, 64-bit big-endian length.
  uint8_t pad[72];
  size_t pad_len = 0;
  pad[pad_len++] = 0x80;
  size_t rem = (buf_len_ + 1) % 64;
  size_t zeros = (rem <= 56) ? (56 - rem) : (120 - rem);
  for (size_t i = 0; i < zeros; i++) {
    pad[pad_len++] = 0;
  }
  for (int i = 7; i >= 0; i--) {
    pad[pad_len++] = static_cast<uint8_t>(bit_len >> (8 * i));
  }
  // Feed padding through the block buffer directly (bypass Update's
  // finished_ check and length accounting).
  size_t i = 0;
  while (i < pad_len) {
    while (buf_len_ < 64 && i < pad_len) {
      buf_[buf_len_++] = pad[i++];
    }
    if (buf_len_ == 64) {
      compress_(state_, buf_, 1);
      buf_len_ = 0;
    }
  }

  Hash256 out;
  for (int j = 0; j < 8; j++) {
    out.v[4 * j] = static_cast<uint8_t>(state_[j] >> 24);
    out.v[4 * j + 1] = static_cast<uint8_t>(state_[j] >> 16);
    out.v[4 * j + 2] = static_cast<uint8_t>(state_[j] >> 8);
    out.v[4 * j + 3] = static_cast<uint8_t>(state_[j]);
  }
  return out;
}

Hash256 Sha256::Digest(ByteView data) {
  Sha256 h;
  h.Update(data);
  return h.Finish();
}

Hash256 Sha256::Digest(std::string_view s) {
  Sha256 h;
  h.Update(s);
  return h.Finish();
}

Hash256 HmacSha256(ByteView key, ByteView message) {
  uint8_t k[64] = {0};
  if (key.size() > 64) {
    Hash256 kh = Sha256::Digest(key);
    std::memcpy(k, kh.v.data(), 32);
  } else {
    std::memcpy(k, key.data(), key.size());
  }
  uint8_t ipad[64], opad[64];
  for (int i = 0; i < 64; i++) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  Sha256 inner;
  inner.Update(ByteView(ipad, 64)).Update(message);
  Hash256 ih = inner.Finish();
  Sha256 outer;
  outer.Update(ByteView(opad, 64)).Update(ih.view());
  return outer.Finish();
}

}  // namespace avm
