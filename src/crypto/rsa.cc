#include "src/crypto/rsa.h"

#include <stdexcept>

#include "src/util/serde.h"

namespace avm {

namespace {

// DER prefix of the SHA-256 DigestInfo structure (RFC 8017, §9.2 note 1).
constexpr uint8_t kSha256DigestInfo[] = {0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
                                         0x65, 0x03, 0x04, 0x02, 0x01, 0x05, 0x00, 0x04, 0x20};

// EMSA-PKCS1-v1_5 encoding of SHA-256(msg) into emLen bytes.
Bytes EncodeDigest(ByteView msg, size_t em_len) {
  Hash256 digest = Sha256::Digest(msg);
  size_t t_len = sizeof(kSha256DigestInfo) + 32;
  if (em_len < t_len + 11) {
    throw std::invalid_argument("RSA modulus too small for SHA-256 padding");
  }
  Bytes em(em_len, 0xff);
  em[0] = 0x00;
  em[1] = 0x01;
  em[em_len - t_len - 1] = 0x00;
  for (size_t i = 0; i < sizeof(kSha256DigestInfo); i++) {
    em[em_len - t_len + i] = kSha256DigestInfo[i];
  }
  for (size_t i = 0; i < 32; i++) {
    em[em_len - 32 + i] = digest.v[i];
  }
  return em;
}

}  // namespace

Bytes RsaPublicKey::Serialize() const {
  Writer w;
  w.Blob(n.ToBytes());
  w.Blob(e.ToBytes());
  return w.Take();
}

RsaPublicKey RsaPublicKey::Deserialize(ByteView data) {
  Reader r(data);
  RsaPublicKey key;
  key.n = Bignum::FromBytes(r.Blob());
  key.e = Bignum::FromBytes(r.Blob());
  r.ExpectEnd();
  return key;
}

Hash256 RsaPublicKey::Fingerprint() const {
  return Sha256::Digest(Serialize());
}

RsaKeypair RsaKeypair::Generate(Prng& rng, size_t bits) {
  if (bits < 128 || bits % 2 != 0) {
    throw std::invalid_argument("RsaKeypair::Generate: bits must be even and >= 128");
  }
  const Bignum e(65537);
  for (;;) {
    Bignum p = Bignum::GeneratePrime(rng, bits / 2);
    Bignum q = Bignum::GeneratePrime(rng, bits / 2);
    if (p == q) {
      continue;
    }
    if (Bignum::Cmp(p, q) < 0) {
      std::swap(p, q);
    }
    Bignum n = Bignum::Mul(p, q);
    if (n.BitLength() != bits) {
      continue;
    }
    Bignum p1 = Bignum::Sub(p, Bignum(1));
    Bignum q1 = Bignum::Sub(q, Bignum(1));
    Bignum phi = Bignum::Mul(p1, q1);
    if (Bignum::Cmp(Bignum::Gcd(e, phi), Bignum(1)) != 0) {
      continue;
    }
    Bignum d = Bignum::InvMod(e, phi);

    RsaKeypair kp;
    kp.priv.n = n;
    kp.priv.e = e;
    kp.priv.d = d;
    kp.priv.p = p;
    kp.priv.q = q;
    kp.priv.dp = Bignum::Mod(d, p1);
    kp.priv.dq = Bignum::Mod(d, q1);
    kp.priv.qinv = Bignum::InvMod(q, p);
    kp.pub = kp.priv.PublicPart();
    return kp;
  }
}

Bytes RsaSign(const RsaPrivateKey& key, ByteView msg) {
  size_t k = (key.n.BitLength() + 7) / 8;
  Bytes em = EncodeDigest(msg, k);
  Bignum m = Bignum::FromBytes(em);
  // CRT: m1 = m^dp mod p, m2 = m^dq mod q, h = qinv (m1 - m2) mod p.
  Bignum m1 = Bignum::PowMod(m, key.dp, key.p);
  Bignum m2 = Bignum::PowMod(m, key.dq, key.q);
  Bignum diff;
  if (Bignum::Cmp(m1, m2) >= 0) {
    diff = Bignum::Sub(m1, m2);
  } else {
    diff = Bignum::Sub(Bignum::Add(m1, key.p), Bignum::Mod(m2, key.p));
  }
  Bignum h = Bignum::MulMod(diff, key.qinv, key.p);
  Bignum s = Bignum::Add(m2, Bignum::Mul(h, key.q));
  return s.ToBytes(k);
}

bool RsaVerify(const RsaPublicKey& key, ByteView msg, ByteView sig) {
  size_t k = (key.n.BitLength() + 7) / 8;
  if (sig.size() != k) {
    return false;
  }
  Bignum s = Bignum::FromBytes(sig);
  if (Bignum::Cmp(s, key.n) >= 0) {
    return false;
  }
  Bignum m = Bignum::PowMod(s, key.e, key.n);
  Bytes em;
  try {
    em = m.ToBytes(k);
  } catch (const std::invalid_argument&) {
    return false;
  }
  Bytes expected;
  try {
    expected = EncodeDigest(msg, k);
  } catch (const std::invalid_argument&) {
    return false;
  }
  return BytesEqual(em, expected);
}

}  // namespace avm
