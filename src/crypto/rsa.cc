#include "src/crypto/rsa.h"

#include <stdexcept>

#include "src/util/serde.h"

namespace avm {

namespace {

// DER prefix of the SHA-256 DigestInfo structure (RFC 8017, §9.2 note 1).
constexpr uint8_t kSha256DigestInfo[] = {0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
                                         0x65, 0x03, 0x04, 0x02, 0x01, 0x05, 0x00, 0x04, 0x20};

// EMSA-PKCS1-v1_5 encoding of a SHA-256 digest into emLen bytes.
Bytes EncodeDigest(const Hash256& digest, size_t em_len) {
  size_t t_len = sizeof(kSha256DigestInfo) + 32;
  if (em_len < t_len + 11) {
    throw std::invalid_argument("RSA modulus too small for SHA-256 padding");
  }
  Bytes em(em_len, 0xff);
  em[0] = 0x00;
  em[1] = 0x01;
  em[em_len - t_len - 1] = 0x00;
  for (size_t i = 0; i < sizeof(kSha256DigestInfo); i++) {
    em[em_len - t_len + i] = kSha256DigestInfo[i];
  }
  for (size_t i = 0; i < 32; i++) {
    em[em_len - 32 + i] = digest.v[i];
  }
  return em;
}

// PowMod through the cached context when present; hand-constructed
// keys without one take the build-per-call path transparently.
Bignum CachedPowMod(const std::shared_ptr<const Montgomery>& ctx, const Bignum& base,
                    const Bignum& exp, const Bignum& m) {
  if (ctx != nullptr) {
    return ctx->PowMod(base, exp);
  }
  return Bignum::PowMod(base, exp, m);
}

}  // namespace

void RsaPublicKey::WarmContexts() {
  if (mont_n == nullptr && n.IsOdd() && n.limbs().size() >= 2) {
    mont_n = std::make_shared<const Montgomery>(n);
  }
}

void RsaPrivateKey::WarmContexts() {
  if (mont_p == nullptr && p.IsOdd() && p.limbs().size() >= 2) {
    mont_p = std::make_shared<const Montgomery>(p);
  }
  if (mont_q == nullptr && q.IsOdd() && q.limbs().size() >= 2) {
    mont_q = std::make_shared<const Montgomery>(q);
  }
}

RsaPublicKey RsaPrivateKey::PublicPart() const {
  RsaPublicKey pub{n, e, nullptr};
  pub.WarmContexts();
  return pub;
}

Bytes RsaPublicKey::Serialize() const {
  Writer w;
  w.Blob(n.ToBytes());
  w.Blob(e.ToBytes());
  return w.Take();
}

RsaPublicKey RsaPublicKey::Deserialize(ByteView data) {
  Reader r(data);
  RsaPublicKey key;
  key.n = Bignum::FromBytes(r.Blob());
  key.e = Bignum::FromBytes(r.Blob());
  r.ExpectEnd();
  key.WarmContexts();
  return key;
}

Hash256 RsaPublicKey::Fingerprint() const {
  return Sha256::Digest(Serialize());
}

RsaKeypair RsaKeypair::Generate(Prng& rng, size_t bits) {
  if (bits < 128 || bits % 2 != 0) {
    throw std::invalid_argument("RsaKeypair::Generate: bits must be even and >= 128");
  }
  const Bignum e(65537);
  for (;;) {
    Bignum p = Bignum::GeneratePrime(rng, bits / 2);
    Bignum q = Bignum::GeneratePrime(rng, bits / 2);
    if (p == q) {
      continue;
    }
    if (Bignum::Cmp(p, q) < 0) {
      std::swap(p, q);
    }
    Bignum n = Bignum::Mul(p, q);
    if (n.BitLength() != bits) {
      continue;
    }
    Bignum p1 = Bignum::Sub(p, Bignum(1));
    Bignum q1 = Bignum::Sub(q, Bignum(1));
    Bignum phi = Bignum::Mul(p1, q1);
    if (Bignum::Cmp(Bignum::Gcd(e, phi), Bignum(1)) != 0) {
      continue;
    }
    Bignum d = Bignum::InvMod(e, phi);

    RsaKeypair kp;
    kp.priv.n = n;
    kp.priv.e = e;
    kp.priv.d = d;
    kp.priv.p = p;
    kp.priv.q = q;
    kp.priv.dp = Bignum::Mod(d, p1);
    kp.priv.dq = Bignum::Mod(d, q1);
    kp.priv.qinv = Bignum::InvMod(q, p);
    kp.priv.WarmContexts();
    kp.pub = kp.priv.PublicPart();
    return kp;
  }
}

Bytes RsaSignDigest(const RsaPrivateKey& key, const Hash256& digest) {
  size_t k = (key.n.BitLength() + 7) / 8;
  Bytes em = EncodeDigest(digest, k);
  Bignum m = Bignum::FromBytes(em);
  // CRT: m1 = m^dp mod p, m2 = m^dq mod q, h = qinv (m1 - m2) mod p.
  Bignum m1 = CachedPowMod(key.mont_p, m, key.dp, key.p);
  Bignum m2 = CachedPowMod(key.mont_q, m, key.dq, key.q);
  Bignum diff;
  if (Bignum::Cmp(m1, m2) >= 0) {
    diff = Bignum::Sub(m1, m2);
  } else {
    diff = Bignum::Sub(Bignum::Add(m1, key.p), Bignum::Mod(m2, key.p));
  }
  Bignum h = Bignum::MulMod(diff, key.qinv, key.p);
  Bignum s = Bignum::Add(m2, Bignum::Mul(h, key.q));
  return s.ToBytes(k);
}

Bytes RsaSign(const RsaPrivateKey& key, ByteView msg) {
  return RsaSignDigest(key, Sha256::Digest(msg));
}

bool RsaVerifyDigest(const RsaPublicKey& key, const Hash256& digest, ByteView sig) {
  size_t k = (key.n.BitLength() + 7) / 8;
  if (sig.size() != k) {
    return false;
  }
  Bignum s = Bignum::FromBytes(sig);
  if (Bignum::Cmp(s, key.n) >= 0) {
    return false;
  }
  Bignum m = CachedPowMod(key.mont_n, s, key.e, key.n);
  Bytes em;
  try {
    em = m.ToBytes(k);
  } catch (const std::invalid_argument&) {
    return false;
  }
  Bytes expected;
  try {
    expected = EncodeDigest(digest, k);
  } catch (const std::invalid_argument&) {
    return false;
  }
  return BytesEqual(em, expected);
}

bool RsaVerify(const RsaPublicKey& key, ByteView msg, ByteView sig) {
  return RsaVerifyDigest(key, Sha256::Digest(msg), sig);
}

}  // namespace avm
