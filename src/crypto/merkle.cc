#include "src/crypto/merkle.h"

#include <stdexcept>

#include "src/util/serde.h"

namespace avm {

Hash256 MerkleLeafHash(ByteView leaf_data) {
  Sha256 h;
  uint8_t tag = 0x00;
  h.Update(ByteView(&tag, 1)).Update(leaf_data);
  return h.Finish();
}

Hash256 MerkleNodeHash(const Hash256& left, const Hash256& right) {
  Sha256 h;
  uint8_t tag = 0x01;
  h.Update(ByteView(&tag, 1)).Update(left.view()).Update(right.view());
  return h.Finish();
}

Bytes MerkleProof::Serialize() const {
  Writer w;
  w.U64(leaf_index);
  w.U64(leaf_count);
  w.U32(static_cast<uint32_t>(siblings.size()));
  for (const auto& s : siblings) {
    w.Raw(s.view());
  }
  return w.Take();
}

MerkleProof MerkleProof::Deserialize(ByteView data) {
  Reader r(data);
  MerkleProof p;
  p.leaf_index = r.U64();
  p.leaf_count = r.U64();
  uint32_t n = r.U32();
  for (uint32_t i = 0; i < n; i++) {
    p.siblings.push_back(Hash256::FromBytes(r.Raw(32)));
  }
  r.ExpectEnd();
  return p;
}

MerkleTree::MerkleTree(std::vector<Hash256> leaf_hashes) : leaf_count_(leaf_hashes.size()) {
  levels_.push_back(std::move(leaf_hashes));
  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<Hash256> next;
    next.reserve((prev.size() + 1) / 2);
    for (size_t i = 0; i < prev.size(); i += 2) {
      if (i + 1 < prev.size()) {
        next.push_back(MerkleNodeHash(prev[i], prev[i + 1]));
      } else {
        next.push_back(prev[i]);  // Odd node promoted unchanged.
      }
    }
    levels_.push_back(std::move(next));
  }
}

MerkleTree MerkleTree::FromLeafData(const std::vector<Bytes>& leaves) {
  std::vector<Hash256> hashes;
  hashes.reserve(leaves.size());
  for (const auto& l : leaves) {
    hashes.push_back(MerkleLeafHash(l));
  }
  return MerkleTree(std::move(hashes));
}

Hash256 MerkleTree::Root() const {
  if (leaf_count_ == 0) {
    return Hash256::Zero();
  }
  return levels_.back()[0];
}

void MerkleTree::UpdateLeaf(uint64_t index, const Hash256& new_leaf_hash) {
  if (index >= leaf_count_) {
    throw std::out_of_range("MerkleTree::UpdateLeaf: index out of range");
  }
  levels_[0][index] = new_leaf_hash;
  size_t i = static_cast<size_t>(index);
  for (size_t level = 0; level + 1 < levels_.size(); level++) {
    size_t parent = i / 2;
    size_t left = parent * 2;
    size_t right = left + 1;
    if (right < levels_[level].size()) {
      levels_[level + 1][parent] = MerkleNodeHash(levels_[level][left], levels_[level][right]);
    } else {
      levels_[level + 1][parent] = levels_[level][left];
    }
    i = parent;
  }
}

MerkleProof MerkleTree::ProveLeaf(uint64_t index) const {
  if (index >= leaf_count_) {
    throw std::out_of_range("MerkleTree::ProveLeaf: index out of range");
  }
  MerkleProof proof;
  proof.leaf_index = index;
  proof.leaf_count = leaf_count_;
  size_t i = static_cast<size_t>(index);
  for (size_t level = 0; level + 1 < levels_.size(); level++) {
    size_t sibling = (i % 2 == 0) ? i + 1 : i - 1;
    if (sibling < levels_[level].size()) {
      proof.siblings.push_back(levels_[level][sibling]);
    } else {
      // Odd node promoted: no sibling at this level; mark with zero hash.
      proof.siblings.push_back(Hash256::Zero());
    }
    i /= 2;
  }
  return proof;
}

bool MerkleTree::VerifyProof(const Hash256& root, const Hash256& leaf_hash,
                             const MerkleProof& proof) {
  if (proof.leaf_index >= proof.leaf_count) {
    return false;
  }
  Hash256 cur = leaf_hash;
  uint64_t i = proof.leaf_index;
  uint64_t level_size = proof.leaf_count;
  size_t used = 0;
  while (level_size > 1) {
    if (used >= proof.siblings.size()) {
      return false;
    }
    const Hash256& sib = proof.siblings[used++];
    uint64_t sibling_index = (i % 2 == 0) ? i + 1 : i - 1;
    if (sibling_index < level_size) {
      cur = (i % 2 == 0) ? MerkleNodeHash(cur, sib) : MerkleNodeHash(sib, cur);
    } else {
      // Promoted odd node: sibling entry must be the zero placeholder.
      if (!sib.IsZero()) {
        return false;
      }
    }
    i /= 2;
    level_size = (level_size + 1) / 2;
  }
  return used == proof.siblings.size() && cur == root;
}

}  // namespace avm
