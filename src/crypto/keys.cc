#include "src/crypto/keys.h"

#include <stdexcept>

namespace avm {

const char* SignatureSchemeName(SignatureScheme s) {
  switch (s) {
    case SignatureScheme::kNone:
      return "nosig";
    case SignatureScheme::kRsa768:
      return "rsa768";
    case SignatureScheme::kRsa2048:
      return "rsa2048";
  }
  return "?";
}

size_t SignatureSchemeBits(SignatureScheme s) {
  switch (s) {
    case SignatureScheme::kNone:
      return 0;
    case SignatureScheme::kRsa768:
      return 768;
    case SignatureScheme::kRsa2048:
      return 2048;
  }
  return 0;
}

Signer::Signer(NodeId id, SignatureScheme scheme, Prng& rng) : id_(std::move(id)), scheme_(scheme) {
  if (scheme_ != SignatureScheme::kNone) {
    RsaKeypair kp = RsaKeypair::Generate(rng, SignatureSchemeBits(scheme_));
    priv_ = std::move(kp.priv);
    pub_ = std::move(kp.pub);
  }
}

Bytes Signer::Sign(ByteView msg) const {
  if (scheme_ == SignatureScheme::kNone) {
    return Bytes();
  }
  return RsaSign(*priv_, msg);
}

Bytes Signer::SignDigest(const Hash256& digest) const {
  if (scheme_ == SignatureScheme::kNone) {
    return Bytes();
  }
  return RsaSignDigest(*priv_, digest);
}

Bytes Signer::SerializePublic() const {
  if (scheme_ == SignatureScheme::kNone) {
    return Bytes();
  }
  return pub_->Serialize();
}

void KeyRegistry::Register(const NodeId& id, SignatureScheme scheme, ByteView serialized_public) {
  Entry e;
  e.scheme = scheme;
  if (scheme != SignatureScheme::kNone) {
    e.pub = RsaPublicKey::Deserialize(serialized_public);
  }
  entries_[id] = std::move(e);
}

void KeyRegistry::RegisterSigner(const Signer& signer) {
  Bytes pub = signer.SerializePublic();
  Register(signer.id(), signer.scheme(), pub);
}

bool KeyRegistry::Verify(const NodeId& id, ByteView msg, ByteView sig) const {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return false;
  }
  if (it->second.scheme == SignatureScheme::kNone) {
    return sig.empty();
  }
  return RsaVerify(*it->second.pub, msg, sig);
}

bool KeyRegistry::VerifyDigest(const NodeId& id, const Hash256& digest, ByteView sig) const {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return false;
  }
  if (it->second.scheme == SignatureScheme::kNone) {
    return sig.empty();
  }
  return RsaVerifyDigest(*it->second.pub, digest, sig);
}

bool KeyRegistry::Knows(const NodeId& id) const {
  return entries_.count(id) > 0;
}

bool KeyRegistry::RequiresSignature(const NodeId& id) const {
  auto it = entries_.find(id);
  return it != entries_.end() && it->second.scheme != SignatureScheme::kNone;
}

SignatureScheme KeyRegistry::SchemeOf(const NodeId& id) const {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    throw std::out_of_range("KeyRegistry::SchemeOf: unknown node " + id);
  }
  return it->second.scheme;
}

}  // namespace avm
