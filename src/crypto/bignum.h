// Arbitrary-precision unsigned integers, sized for RSA-768..RSA-2048.
// Little-endian 32-bit limbs, always normalized (no high zero limbs).
#ifndef SRC_CRYPTO_BIGNUM_H_
#define SRC_CRYPTO_BIGNUM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/prng.h"

namespace avm {

class Bignum {
 public:
  Bignum() = default;
  explicit Bignum(uint64_t v);

  // Big-endian byte import/export (the usual crypto wire order).
  static Bignum FromBytes(ByteView be);
  // Exports exactly `len` big-endian bytes (throws if the value is larger).
  Bytes ToBytes(size_t len) const;
  // Exports the minimal big-endian representation (empty for zero).
  Bytes ToBytes() const;

  static Bignum FromHex(std::string_view hex);
  std::string ToHex() const;

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  size_t BitLength() const;
  bool Bit(size_t i) const;
  uint64_t LowU64() const;

  // Comparison: -1, 0, +1.
  static int Cmp(const Bignum& a, const Bignum& b);
  bool operator==(const Bignum& o) const { return Cmp(*this, o) == 0; }
  bool operator!=(const Bignum& o) const { return Cmp(*this, o) != 0; }
  bool operator<(const Bignum& o) const { return Cmp(*this, o) < 0; }
  bool operator<=(const Bignum& o) const { return Cmp(*this, o) <= 0; }
  bool operator>(const Bignum& o) const { return Cmp(*this, o) > 0; }
  bool operator>=(const Bignum& o) const { return Cmp(*this, o) >= 0; }

  static Bignum Add(const Bignum& a, const Bignum& b);
  // Requires a >= b.
  static Bignum Sub(const Bignum& a, const Bignum& b);
  static Bignum Mul(const Bignum& a, const Bignum& b);
  // Quotient and remainder; throws on division by zero.
  static void DivMod(const Bignum& a, const Bignum& b, Bignum* q, Bignum* r);
  static Bignum Mod(const Bignum& a, const Bignum& m);

  static Bignum Shl(const Bignum& a, size_t bits);
  static Bignum Shr(const Bignum& a, size_t bits);

  // (a * b) mod m.
  static Bignum MulMod(const Bignum& a, const Bignum& b, const Bignum& m);
  // (base ^ exp) mod m. m must be > 0.
  static Bignum PowMod(const Bignum& base, const Bignum& exp, const Bignum& m);
  // gcd(a, b).
  static Bignum Gcd(Bignum a, Bignum b);
  // Modular inverse of a mod m; throws if gcd(a, m) != 1.
  static Bignum InvMod(const Bignum& a, const Bignum& m);

  // Builds a value directly from little-endian 32-bit limbs.
  static Bignum FromLimbs(std::vector<uint32_t> limbs);

  // Uniform random value with exactly `bits` bits (MSB set).
  static Bignum RandomWithBits(Prng& rng, size_t bits);
  // Uniform random value in [2, limit-2] (for Miller-Rabin bases).
  static Bignum RandomBelow(Prng& rng, const Bignum& limit);

  // Miller-Rabin probabilistic primality test with `rounds` random bases.
  static bool IsProbablePrime(const Bignum& n, Prng& rng, int rounds = 24);
  // Generates a random prime with exactly `bits` bits.
  static Bignum GeneratePrime(Prng& rng, size_t bits);

  const std::vector<uint32_t>& limbs() const { return limbs_; }

 private:
  void Normalize();

  std::vector<uint32_t> limbs_;
};

// Montgomery arithmetic context for an odd multi-limb modulus.
// Exponentiation via REDC avoids one long division per modular
// multiplication, which is the difference between RSA signing being a
// per-packet cost the AVMM can afford and one it cannot (§6.8).
//
// Building a context costs one long division (for R^2 mod m), so hot
// paths construct it once per key and reuse it across ModExp calls
// (RsaPrivateKey/RsaPublicKey cache one per modulus). A constructed
// context is immutable: concurrent PowMod calls on the same context are
// safe, which is what lets the async signing pipeline share a key with
// the caller thread.
class Montgomery {
 public:
  // m must be odd and at least two limbs (all RSA moduli qualify).
  explicit Montgomery(const Bignum& m);

  using Residue = std::vector<uint32_t>;  // Exactly limb_count() limbs.

  Residue ToResidue(const Bignum& a) const;
  // a -> aR mod m.
  Residue Enter(const Residue& a) const;
  // aR -> a mod m.
  Bignum Leave(const Residue& a) const;
  // Montgomery product: REDC(a * b).
  Residue Mul(const Residue& a, const Residue& b) const;

  // (base ^ exp) mod m with 4-bit fixed-window exponentiation:
  // ~bits/4 multiplies instead of the ~bits/2 of square-and-multiply,
  // on top of the REDC savings.
  Bignum PowMod(const Bignum& base, const Bignum& exp) const;

  const Residue& one() const { return one_; }
  size_t limb_count() const { return n_; }
  const Bignum& modulus() const { return modulus_; }

 private:
  bool LessThanM(const Residue& a) const;
  void SubM(Residue& a) const;

  Bignum modulus_;
  std::vector<uint32_t> m_;
  size_t n_ = 0;
  uint32_t minv_ = 0;
  Residue r2_;
  Residue one_;
};

}  // namespace avm

#endif  // SRC_CRYPTO_BIGNUM_H_
