// Arbitrary-precision unsigned integers, sized for RSA-768..RSA-2048.
// Little-endian 32-bit limbs, always normalized (no high zero limbs).
#ifndef SRC_CRYPTO_BIGNUM_H_
#define SRC_CRYPTO_BIGNUM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/prng.h"

namespace avm {

class Bignum {
 public:
  Bignum() = default;
  explicit Bignum(uint64_t v);

  // Big-endian byte import/export (the usual crypto wire order).
  static Bignum FromBytes(ByteView be);
  // Exports exactly `len` big-endian bytes (throws if the value is larger).
  Bytes ToBytes(size_t len) const;
  // Exports the minimal big-endian representation (empty for zero).
  Bytes ToBytes() const;

  static Bignum FromHex(std::string_view hex);
  std::string ToHex() const;

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  size_t BitLength() const;
  bool Bit(size_t i) const;
  uint64_t LowU64() const;

  // Comparison: -1, 0, +1.
  static int Cmp(const Bignum& a, const Bignum& b);
  bool operator==(const Bignum& o) const { return Cmp(*this, o) == 0; }
  bool operator!=(const Bignum& o) const { return Cmp(*this, o) != 0; }
  bool operator<(const Bignum& o) const { return Cmp(*this, o) < 0; }
  bool operator<=(const Bignum& o) const { return Cmp(*this, o) <= 0; }
  bool operator>(const Bignum& o) const { return Cmp(*this, o) > 0; }
  bool operator>=(const Bignum& o) const { return Cmp(*this, o) >= 0; }

  static Bignum Add(const Bignum& a, const Bignum& b);
  // Requires a >= b.
  static Bignum Sub(const Bignum& a, const Bignum& b);
  static Bignum Mul(const Bignum& a, const Bignum& b);
  // Quotient and remainder; throws on division by zero.
  static void DivMod(const Bignum& a, const Bignum& b, Bignum* q, Bignum* r);
  static Bignum Mod(const Bignum& a, const Bignum& m);

  static Bignum Shl(const Bignum& a, size_t bits);
  static Bignum Shr(const Bignum& a, size_t bits);

  // (a * b) mod m.
  static Bignum MulMod(const Bignum& a, const Bignum& b, const Bignum& m);
  // (base ^ exp) mod m. m must be > 0.
  static Bignum PowMod(const Bignum& base, const Bignum& exp, const Bignum& m);
  // gcd(a, b).
  static Bignum Gcd(Bignum a, Bignum b);
  // Modular inverse of a mod m; throws if gcd(a, m) != 1.
  static Bignum InvMod(const Bignum& a, const Bignum& m);

  // Uniform random value with exactly `bits` bits (MSB set).
  static Bignum RandomWithBits(Prng& rng, size_t bits);
  // Uniform random value in [2, limit-2] (for Miller-Rabin bases).
  static Bignum RandomBelow(Prng& rng, const Bignum& limit);

  // Miller-Rabin probabilistic primality test with `rounds` random bases.
  static bool IsProbablePrime(const Bignum& n, Prng& rng, int rounds = 24);
  // Generates a random prime with exactly `bits` bits.
  static Bignum GeneratePrime(Prng& rng, size_t bits);

  const std::vector<uint32_t>& limbs() const { return limbs_; }

 private:
  void Normalize();

  std::vector<uint32_t> limbs_;
};

}  // namespace avm

#endif  // SRC_CRYPTO_BIGNUM_H_
