// Merkle hash tree over an ordered list of leaves. The AVMM keeps one over
// the AVM's memory pages (§4.4): after each snapshot the top-level value is
// recorded in the log, and auditors can authenticate partial state downloads
// with inclusion proofs (§7.3's snapshot redaction relies on this too).
#ifndef SRC_CRYPTO_MERKLE_H_
#define SRC_CRYPTO_MERKLE_H_

#include <cstdint>
#include <vector>

#include "src/crypto/sha256.h"
#include "src/util/bytes.h"

namespace avm {

// An inclusion proof for one leaf: the sibling hashes from leaf to root.
struct MerkleProof {
  uint64_t leaf_index = 0;
  uint64_t leaf_count = 0;
  std::vector<Hash256> siblings;

  Bytes Serialize() const;
  static MerkleProof Deserialize(ByteView data);
};

// Computes leaf hashes with domain separation from interior nodes
// (prevents second-preimage attacks on the tree structure).
Hash256 MerkleLeafHash(ByteView leaf_data);
Hash256 MerkleNodeHash(const Hash256& left, const Hash256& right);

class MerkleTree {
 public:
  // Builds a tree over pre-hashed leaves. An odd node at any level is
  // promoted unchanged (Bitcoin-style duplication is avoided).
  explicit MerkleTree(std::vector<Hash256> leaf_hashes);

  static MerkleTree FromLeafData(const std::vector<Bytes>& leaves);

  Hash256 Root() const;
  uint64_t LeafCount() const { return leaf_count_; }

  // Replaces one leaf hash and incrementally recomputes the affected path.
  void UpdateLeaf(uint64_t index, const Hash256& new_leaf_hash);

  MerkleProof ProveLeaf(uint64_t index) const;

  // Verifies that `leaf_hash` is the `proof.leaf_index`-th of
  // `proof.leaf_count` leaves under `root`.
  static bool VerifyProof(const Hash256& root, const Hash256& leaf_hash, const MerkleProof& proof);

 private:
  // levels_[0] = leaf hashes; levels_.back() has exactly one node (or is
  // empty when there are no leaves).
  std::vector<std::vector<Hash256>> levels_;
  uint64_t leaf_count_ = 0;
};

}  // namespace avm

#endif  // SRC_CRYPTO_MERKLE_H_
