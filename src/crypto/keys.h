// Key management and the signing abstraction used by the AVMM.
//
// The paper's evaluation sweeps a configuration axis avmm-nosig vs
// avmm-rsa768; SignatureScheme reproduces that axis (plus RSA-2048 for the
// "stronger keys" discussion in §6.2).
#ifndef SRC_CRYPTO_KEYS_H_
#define SRC_CRYPTO_KEYS_H_

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/crypto/rsa.h"
#include "src/util/bytes.h"
#include "src/util/prng.h"

namespace avm {

// A party in the protocol (player, server, auditor). Names are unique
// within a scenario; assumption 3 of §4.1 says each party has a certified
// keypair, which KeyRegistry models.
using NodeId = std::string;

enum class SignatureScheme {
  kNone,     // avmm-nosig: authenticators carry no signature.
  kRsa768,   // avmm-rsa768: the paper's evaluated configuration.
  kRsa2048,  // stronger keys, for the overhead sweep.
};

const char* SignatureSchemeName(SignatureScheme s);
size_t SignatureSchemeBits(SignatureScheme s);

// Signs and verifies on behalf of one node. kNone produces empty
// signatures that verify trivially (used to isolate crypto cost in benches;
// it provides no non-repudiation and the benches/docs say so).
class Signer {
 public:
  Signer(NodeId id, SignatureScheme scheme, Prng& rng);

  const NodeId& id() const { return id_; }
  SignatureScheme scheme() const { return scheme_; }
  const std::optional<RsaPublicKey>& public_key() const { return pub_; }

  Bytes Sign(ByteView msg) const;
  // Signs an already-computed SHA-256 digest; identical output to
  // Sign(msg) when digest == Sha256::Digest(msg). Lets hot paths stream
  // the payload through one incremental hasher. Thread-safe: the key's
  // Montgomery contexts are prebuilt, so the async signing pipeline may
  // call this concurrently with the owning thread.
  Bytes SignDigest(const Hash256& digest) const;

  // Serialized public identity (scheme + key) for the registry.
  Bytes SerializePublic() const;

 private:
  NodeId id_;
  SignatureScheme scheme_;
  std::optional<RsaPrivateKey> priv_;
  std::optional<RsaPublicKey> pub_;
};

// Maps node ids to public keys. Auditors and third parties verify
// signatures against this registry (assumption: certificates cannot be
// forged, so the registry is trusted input).
class KeyRegistry {
 public:
  void Register(const NodeId& id, SignatureScheme scheme, ByteView serialized_public);
  void RegisterSigner(const Signer& signer);

  bool Verify(const NodeId& id, ByteView msg, ByteView sig) const;
  bool VerifyDigest(const NodeId& id, const Hash256& digest, ByteView sig) const;
  bool Knows(const NodeId& id) const;
  SignatureScheme SchemeOf(const NodeId& id) const;
  // True when `id` is registered with a scheme that produces real
  // signatures (i.e. an empty signature cannot verify).
  bool RequiresSignature(const NodeId& id) const;

 private:
  struct Entry {
    SignatureScheme scheme;
    std::optional<RsaPublicKey> pub;
  };
  std::map<NodeId, Entry> entries_;
};

}  // namespace avm

#endif  // SRC_CRYPTO_KEYS_H_
