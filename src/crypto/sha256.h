// From-scratch SHA-256 (FIPS 180-4). The paper's hash-chain log, Merkle
// snapshot trees and RSA signatures all build on this primitive.
#ifndef SRC_CRYPTO_SHA256_H_
#define SRC_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/util/bytes.h"

namespace avm {

// A 256-bit digest. Value type, comparable, hashable.
struct Hash256 {
  std::array<uint8_t, 32> v{};

  bool operator==(const Hash256& o) const { return v == o.v; }
  bool operator!=(const Hash256& o) const { return v != o.v; }
  bool operator<(const Hash256& o) const { return v < o.v; }

  bool IsZero() const {
    for (uint8_t b : v) {
      if (b != 0) {
        return false;
      }
    }
    return true;
  }

  ByteView view() const { return ByteView(v.data(), v.size()); }
  std::string Hex() const { return HexEncode(view()); }
  // First 8 hex chars; handy for log messages.
  std::string ShortHex() const { return Hex().substr(0, 8); }

  static Hash256 Zero() { return Hash256{}; }
  static Hash256 FromBytes(ByteView b);
};

// Streaming SHA-256. The compression function is dispatched at
// construction: x86 SHA-NI when the CPU has it (runtime-detected), the
// ARMv8 crypto extensions when the aarch64 target baseline enables them
// (__ARM_FEATURE_CRYPTO, i.e. -march=...+crypto — same policy as
// CRC-32C), and the portable FIPS 180-4 implementation otherwise.
// Digests are identical either way (sha256_test's agreement sweep).
class Sha256 {
 public:
  Sha256();

  Sha256& Update(ByteView data);
  Sha256& Update(std::string_view s);
  // Convenience: append a little-endian u64 to the stream.
  Sha256& UpdateU64(uint64_t v);

  // Finalizes and returns the digest. The object must not be reused after.
  Hash256 Finish();

  // One-shot helpers.
  static Hash256 Digest(ByteView data);
  static Hash256 Digest(std::string_view s);

  // True when the hardware compression unit is compiled in and present.
  static bool HardwareAvailable();
  // A hasher pinned to the portable compression function, for the
  // hardware/portable agreement tests (mirrors Crc32cPortable).
  static Sha256 PortableForTesting();

 private:
  // Compresses `blocks` consecutive 64-byte blocks.
  using CompressFn = void (*)(uint32_t state[8], const uint8_t* data, size_t blocks);

  CompressFn compress_;
  uint32_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buf_[64];
  size_t buf_len_ = 0;
  bool finished_ = false;
};

// HMAC-SHA256 (FIPS 198-1).
Hash256 HmacSha256(ByteView key, ByteView message);

}  // namespace avm

// Allow Hash256 as an unordered_map key.
template <>
struct std::hash<avm::Hash256> {
  size_t operator()(const avm::Hash256& h) const {
    size_t out;
    static_assert(sizeof(out) <= 32);
    __builtin_memcpy(&out, h.v.data(), sizeof(out));
    return out;
  }
};

#endif  // SRC_CRYPTO_SHA256_H_
