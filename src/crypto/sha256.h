// From-scratch SHA-256 (FIPS 180-4). The paper's hash-chain log, Merkle
// snapshot trees and RSA signatures all build on this primitive.
#ifndef SRC_CRYPTO_SHA256_H_
#define SRC_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/util/bytes.h"

namespace avm {

// A 256-bit digest. Value type, comparable, hashable.
struct Hash256 {
  std::array<uint8_t, 32> v{};

  bool operator==(const Hash256& o) const { return v == o.v; }
  bool operator!=(const Hash256& o) const { return v != o.v; }
  bool operator<(const Hash256& o) const { return v < o.v; }

  bool IsZero() const {
    for (uint8_t b : v) {
      if (b != 0) {
        return false;
      }
    }
    return true;
  }

  ByteView view() const { return ByteView(v.data(), v.size()); }
  std::string Hex() const { return HexEncode(view()); }
  // First 8 hex chars; handy for log messages.
  std::string ShortHex() const { return Hex().substr(0, 8); }

  static Hash256 Zero() { return Hash256{}; }
  static Hash256 FromBytes(ByteView b);
};

// Streaming SHA-256.
class Sha256 {
 public:
  Sha256();

  Sha256& Update(ByteView data);
  Sha256& Update(std::string_view s);
  // Convenience: append a little-endian u64 to the stream.
  Sha256& UpdateU64(uint64_t v);

  // Finalizes and returns the digest. The object must not be reused after.
  Hash256 Finish();

  // One-shot helpers.
  static Hash256 Digest(ByteView data);
  static Hash256 Digest(std::string_view s);

 private:
  void Compress(const uint8_t block[64]);

  uint32_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buf_[64];
  size_t buf_len_ = 0;
  bool finished_ = false;
};

// HMAC-SHA256 (FIPS 198-1).
Hash256 HmacSha256(ByteView key, ByteView message);

}  // namespace avm

// Allow Hash256 as an unordered_map key.
template <>
struct std::hash<avm::Hash256> {
  size_t operator()(const avm::Hash256& h) const {
    size_t out;
    static_assert(sizeof(out) <= 32);
    __builtin_memcpy(&out, h.v.data(), sizeof(out));
    return out;
  }
};

#endif  // SRC_CRYPTO_SHA256_H_
