#include "src/compress/lzss.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace avm {

namespace {

constexpr size_t kWindowBits = 13;               // 8 KiB window.
constexpr size_t kWindowSize = 1u << kWindowBits;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = kMinMatch + 255;    // Length field is one byte.
constexpr size_t kHashSize = 1u << 15;

inline uint32_t HashAt(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - 15);
}

}  // namespace

// Format: u64 LE uncompressed size, then groups of [flags byte + 8 items].
// Flag bit 0 = literal byte; 1 = match: two bytes (offset-1, 13 bits |
// high 3 bits of nothing) -- encoded as u16 LE offset-1 then u8 length-4.
Bytes LzssCompress(ByteView data) {
  Bytes out;
  PutU64(out, data.size());
  if (data.empty()) {
    return out;
  }

  // Head of the most recent position for each hash bucket.
  std::vector<int64_t> head(kHashSize, -1);
  // Previous position with the same hash (chained matches).
  std::vector<int64_t> prev(data.size(), -1);

  size_t pos = 0;
  uint8_t flags = 0;
  int flag_count = 0;
  size_t flags_at = 0;
  bool group_open = false;

  // Records the flag bit for the item about to be emitted. The flags byte
  // for a group is allocated lazily when the group's first item arrives,
  // so item payloads always follow their own group's flags byte.
  auto flush_flag = [&](bool is_match) {
    if (!group_open) {
      flags_at = out.size();
      out.push_back(0);
      flags = 0;
      flag_count = 0;
      group_open = true;
    }
    if (is_match) {
      flags |= static_cast<uint8_t>(1u << flag_count);
    }
    flag_count++;
    if (flag_count == 8) {
      out[flags_at] = flags;
      group_open = false;
    }
  };

  while (pos < data.size()) {
    size_t best_len = 0;
    size_t best_off = 0;
    if (pos + kMinMatch <= data.size()) {
      uint32_t h = HashAt(data.data() + pos);
      int64_t cand = head[h];
      int chain = 0;
      while (cand >= 0 && pos - static_cast<size_t>(cand) <= kWindowSize && chain < 32) {
        size_t c = static_cast<size_t>(cand);
        size_t len = 0;
        size_t max_len = std::min(kMaxMatch, data.size() - pos);
        while (len < max_len && data[c + len] == data[pos + len]) {
          len++;
        }
        if (len > best_len) {
          best_len = len;
          best_off = pos - c;
        }
        cand = prev[c];
        chain++;
      }
      prev[pos] = head[h];
      head[h] = static_cast<int64_t>(pos);
    }

    if (best_len >= kMinMatch) {
      flush_flag(true);
      PutU16(out, static_cast<uint16_t>(best_off - 1));
      out.push_back(static_cast<uint8_t>(best_len - kMinMatch));
      // Insert hash entries for the skipped positions so later matches
      // can reference them.
      for (size_t i = 1; i < best_len && pos + i + kMinMatch <= data.size(); i++) {
        uint32_t h = HashAt(data.data() + pos + i);
        prev[pos + i] = head[h];
        head[h] = static_cast<int64_t>(pos + i);
      }
      pos += best_len;
    } else {
      flush_flag(false);
      out.push_back(data[pos]);
      pos++;
    }
  }
  if (group_open) {
    out[flags_at] = flags;
  }
  return out;
}

Bytes LzssDecompress(ByteView data) {
  if (data.size() < 8) {
    throw std::invalid_argument("LzssDecompress: truncated header");
  }
  uint64_t orig_size = GetU64(data, 0);
  Bytes out;
  // orig_size is untrusted: compressed input expands at most ~130x here
  // (a match token is 3 bytes for up to 259 output bytes), so anything
  // beyond that bound is corrupt and must not trigger a huge allocation.
  if (orig_size > data.size() * 130 + 64) {
    throw std::invalid_argument("LzssDecompress: implausible uncompressed size");
  }
  out.reserve(orig_size);
  size_t pos = 8;
  uint8_t flags = 0;
  int flag_count = 8;
  while (out.size() < orig_size) {
    if (flag_count == 8) {
      if (pos >= data.size()) {
        throw std::invalid_argument("LzssDecompress: missing flags byte");
      }
      flags = data[pos++];
      flag_count = 0;
    }
    bool is_match = (flags >> flag_count) & 1;
    flag_count++;
    if (is_match) {
      if (pos + 3 > data.size()) {
        throw std::invalid_argument("LzssDecompress: truncated match");
      }
      size_t off = static_cast<size_t>(GetU16(data, pos)) + 1;
      size_t len = static_cast<size_t>(data[pos + 2]) + kMinMatch;
      pos += 3;
      if (off > out.size()) {
        throw std::invalid_argument("LzssDecompress: match before start");
      }
      size_t src = out.size() - off;
      for (size_t i = 0; i < len; i++) {
        out.push_back(out[src + i]);  // Overlapping copies are valid.
      }
    } else {
      if (pos >= data.size()) {
        throw std::invalid_argument("LzssDecompress: truncated literal");
      }
      out.push_back(data[pos++]);
    }
  }
  if (out.size() != orig_size) {
    throw std::invalid_argument("LzssDecompress: size mismatch");
  }
  return out;
}

void PutVarint(Bytes& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<uint8_t>(v));
}

uint64_t GetVarint(ByteView in, size_t* pos) {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (*pos >= in.size() || shift > 63) {
      throw std::invalid_argument("GetVarint: truncated or overlong varint");
    }
    uint8_t b = in[(*pos)++];
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      break;
    }
    shift += 7;
  }
  return v;
}

uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

Bytes EncodeDeltaVarint(const std::vector<uint64_t>& values) {
  Bytes out;
  PutVarint(out, values.size());
  uint64_t prev = 0;
  for (uint64_t v : values) {
    int64_t delta = static_cast<int64_t>(v - prev);
    PutVarint(out, ZigZagEncode(delta));
    prev = v;
  }
  return out;
}

std::vector<uint64_t> DecodeDeltaVarint(ByteView data) {
  size_t pos = 0;
  uint64_t n = GetVarint(data, &pos);
  std::vector<uint64_t> out;
  // n is untrusted: each value needs at least one input byte.
  out.reserve(std::min<uint64_t>(n, data.size()));
  uint64_t prev = 0;
  for (uint64_t i = 0; i < n; i++) {
    int64_t delta = ZigZagDecode(GetVarint(data, &pos));
    prev += static_cast<uint64_t>(delta);
    out.push_back(prev);
  }
  return out;
}

}  // namespace avm
