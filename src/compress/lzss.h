// Lossless LZSS compressor. §6.4 of the paper compresses the AVMM log with
// bzip2 plus a custom "lossless, VMM-specific (but application-independent)"
// algorithm; this module provides the generic stage (LZSS) and
// varint/delta primitives used by the VMM-specific preprocessor in avmm/.
#ifndef SRC_COMPRESS_LZSS_H_
#define SRC_COMPRESS_LZSS_H_

#include <cstdint>
#include <vector>

#include "src/util/bytes.h"

namespace avm {

// Compresses `data`. The output always round-trips through LzssDecompress.
Bytes LzssCompress(ByteView data);

// Decompresses; throws std::invalid_argument on corrupt input.
Bytes LzssDecompress(ByteView data);

// Unsigned LEB128 varint.
void PutVarint(Bytes& out, uint64_t v);
uint64_t GetVarint(ByteView in, size_t* pos);

// ZigZag-maps a signed delta into an unsigned varint-friendly value.
uint64_t ZigZagEncode(int64_t v);
int64_t ZigZagDecode(uint64_t v);

// Delta + zigzag + varint encoding of a monotone-ish u64 sequence
// (timestamps, instruction counters). This is the core of the
// "VMM-specific" preprocessing: TimeTracker entries dominate the log and
// their values are near-arithmetic sequences.
Bytes EncodeDeltaVarint(const std::vector<uint64_t>& values);
std::vector<uint64_t> DecodeDeltaVarint(ByteView data);

}  // namespace avm

#endif  // SRC_COMPRESS_LZSS_H_
