#include "src/tel/batch.h"

#include <algorithm>
#include <stdexcept>

#include "src/crypto/keys.h"
#include "src/util/serde.h"

namespace avm {

namespace {

constexpr char kPeerCommitMagic[8] = {'A', 'V', 'M', 'P', 'C', 'M', 'T', '1'};

}  // namespace

void WriteChainLinks(Writer& w, const std::vector<ChainLink>& links) {
  w.U32(static_cast<uint32_t>(links.size()));
  for (const ChainLink& l : links) {
    w.U64(l.seq);
    w.U8(static_cast<uint8_t>(l.type));
    w.Raw(l.content_hash.view());
  }
}

std::vector<ChainLink> ReadChainLinks(Reader& r) {
  uint32_t n = r.U32();
  std::vector<ChainLink> links;
  // n is untrusted; each link consumes 41 bytes, so clamp the
  // reservation like LogSegment::Deserialize does.
  links.reserve(std::min<size_t>(n, r.remaining() / 41 + 1));
  for (uint32_t i = 0; i < n; i++) {
    ChainLink l;
    l.seq = r.U64();
    uint8_t t = r.U8();
    if (t < 1 || t > 8) {
      throw SerdeError("ChainLink: bad entry type");
    }
    l.type = static_cast<EntryType>(t);
    l.content_hash = Hash256::FromBytes(r.Raw(32));
    links.push_back(l);
  }
  return links;
}

Hash256 ApplyChainLink(const Hash256& prev, const ChainLink& link) {
  return ChainHashWithContentHash(prev, link.seq, link.type, link.content_hash);
}

ChainLink LinkFor(const LogEntry& e) {
  return ChainLink{e.seq, e.type, Sha256::Digest(e.content)};
}

CheckResult BatchAuthenticator::Verify(const KeyRegistry& registry) const {
  if (links.empty()) {
    return CheckResult::Fail("batch authenticator has no links");
  }
  if (prior_seq == 0 && !prior_hash.IsZero()) {
    return CheckResult::Fail("batch starts at the log head but prior hash is nonzero",
                             FirstSeq());
  }
  Hash256 h = prior_hash;
  uint64_t expect = FirstSeq();
  for (const ChainLink& l : links) {
    if (l.seq != expect) {
      return CheckResult::Fail("batch links are not consecutive", l.seq);
    }
    h = ApplyChainLink(h, l);
    expect++;
  }
  if (commit.seq != links.back().seq) {
    return CheckResult::Fail("batch commitment does not sit on the last link", commit.seq);
  }
  if (commit.hash != h) {
    return CheckResult::Fail("batch links do not walk to the signed commitment", commit.seq);
  }
  if (!commit.VerifySignature(registry)) {
    return CheckResult::Fail("batch commitment signature invalid", commit.seq);
  }
  return CheckResult::Ok();
}

Hash256 BatchAuthenticator::HashAt(uint64_t seq) const {
  if (!Covers(seq) || links.empty()) {
    throw std::out_of_range("BatchAuthenticator::HashAt: seq " + std::to_string(seq) +
                            " outside window");
  }
  Hash256 h = prior_hash;
  for (const ChainLink& l : links) {
    h = ApplyChainLink(h, l);
    if (l.seq == seq) {
      return h;
    }
  }
  throw std::out_of_range("BatchAuthenticator::HashAt: seq not in links");
}

BatchAuthenticator BatchAuthenticator::FromLog(const TamperEvidentLog& log, const Signer& signer,
                                               uint64_t from_seq, uint64_t to_seq) {
  if (from_seq == 0 || from_seq > to_seq || to_seq > log.LastSeq()) {
    throw std::out_of_range("BatchAuthenticator::FromLog: bad range");
  }
  BatchAuthenticator b;
  b.prior_seq = from_seq - 1;
  b.prior_hash = b.prior_seq == 0 ? Hash256::Zero() : log.At(b.prior_seq).hash;
  for (uint64_t s = from_seq; s <= to_seq; s++) {
    b.links.push_back(LinkFor(log.At(s)));
  }
  b.commit = log.AuthenticateAt(signer, to_seq);
  return b;
}

Bytes BatchAuthenticator::Serialize() const {
  Writer w;
  w.U64(prior_seq);
  w.Raw(prior_hash.view());
  WriteChainLinks(w, links);
  w.Blob(commit.Serialize());
  return w.Take();
}

BatchAuthenticator BatchAuthenticator::Deserialize(ByteView data) {
  Reader r(data);
  BatchAuthenticator b;
  b.prior_seq = r.U64();
  b.prior_hash = Hash256::FromBytes(r.Raw(32));
  b.links = ReadChainLinks(r);
  b.commit = Authenticator::Deserialize(r.Blob());
  r.ExpectEnd();
  return b;
}

Bytes PeerCommitRecord::Serialize() const {
  Writer w;
  w.Raw(ByteView(reinterpret_cast<const uint8_t*>(kPeerCommitMagic), sizeof(kPeerCommitMagic)));
  w.Str(peer);
  w.Blob(batch.Serialize());
  return w.Take();
}

bool PeerCommitRecord::IsPeerCommit(ByteView content) {
  return content.size() >= sizeof(kPeerCommitMagic) &&
         std::equal(kPeerCommitMagic, kPeerCommitMagic + sizeof(kPeerCommitMagic),
                    reinterpret_cast<const char*>(content.data()));
}

PeerCommitRecord PeerCommitRecord::Deserialize(ByteView content) {
  if (!IsPeerCommit(content)) {
    throw SerdeError("PeerCommitRecord: bad magic");
  }
  Reader r(content.subspan(sizeof(kPeerCommitMagic)));
  PeerCommitRecord rec;
  rec.peer = r.Str();
  rec.batch = BatchAuthenticator::Deserialize(r.Blob());
  r.ExpectEnd();
  return rec;
}

}  // namespace avm
