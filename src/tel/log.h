// Tamper-evident log (§4.3), adapted from PeerReview as the paper does.
//
// Each entry e_i = (s_i, t_i, c_i, h_i) where h_i = H(h_{i-1} || s_i || t_i
// || H(c_i)) and h_0 = 0. Authenticators a_i = (s_i, h_i, sigma(s_i || h_i))
// commit the machine to a unique log prefix: any later forge, omission,
// reorder or fork breaks the chain against some previously issued
// authenticator.
#ifndef SRC_TEL_LOG_H_
#define SRC_TEL_LOG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/crypto/keys.h"
#include "src/crypto/sha256.h"
#include "src/util/bytes.h"

namespace avm {

// Entry types. The two "parallel streams" of §4.4 are messages
// (kSend/kRecv/kAck) and execution-trace entries (kTraceTime/kTraceMac/
// kTraceOther); Figure 4 reports log composition by exactly these classes.
enum class EntryType : uint8_t {
  kSend = 1,        // Outgoing network message (with signature).
  kRecv = 2,        // Incoming network message (signature logged, stripped).
  kAck = 3,         // Acknowledgment received for one of our sends.
  kTraceTime = 4,   // TimeTracker: clock reads / event timing landmarks.
  kTraceMac = 5,    // MAC layer: packets entering/exiting the virtual NIC.
  kTraceOther = 6,  // Other nondeterministic inputs (input events, etc.).
  kSnapshot = 7,    // Merkle root of an AVM state snapshot.
  kInfo = 8,        // Non-semantic annotations (joins, round markers).
};

const char* EntryTypeName(EntryType t);

struct LogEntry {
  uint64_t seq = 0;
  EntryType type = EntryType::kInfo;
  Bytes content;
  Hash256 hash;  // h_i, over the whole prefix.

  // Serialized size, used for the log-growth measurements.
  size_t WireSize() const { return 8 + 1 + 4 + content.size() + 32; }
};

// Computes h_i from h_{i-1} and the entry fields (the paper's hash rule).
Hash256 ChainHash(const Hash256& prev, uint64_t seq, EntryType type, ByteView content);
// Same rule with H(c_i) already computed: what batch-authenticator
// verification walks, since a chain link carries only the content hash.
Hash256 ChainHashWithContentHash(const Hash256& prev, uint64_t seq, EntryType type,
                                 const Hash256& content_hash);

// A signed commitment to the log prefix ending at `seq`.
struct Authenticator {
  NodeId node;
  uint64_t seq = 0;
  Hash256 hash;
  Bytes signature;

  // The byte string that is signed: node id binds the authenticator to a
  // machine so it cannot be replayed as another node's commitment.
  static Bytes SignedPayload(const NodeId& node, uint64_t seq, const Hash256& hash);
  // SHA-256 of SignedPayload, streamed through one incremental hasher
  // (no temporary buffer). Sign/verify paths use this with the digest
  // APIs; the resulting signatures are bit-for-bit those of the
  // payload-buffer path.
  static Hash256 SignedPayloadDigest(const NodeId& node, uint64_t seq, const Hash256& hash);

  Bytes Serialize() const;
  static Authenticator Deserialize(ByteView data);

  bool VerifySignature(const KeyRegistry& registry) const;
};

// An extracted, serializable run of consecutive entries plus the hash of
// the entry just before it (so the chain can be checked without the full
// prefix). This is what a machine ships to an auditor.
struct LogSegment {
  NodeId node;
  // Hash h_{first-1}; Zero when the segment starts at seq 1.
  Hash256 prior_hash;
  std::vector<LogEntry> entries;

  uint64_t FirstSeq() const { return entries.empty() ? 0 : entries.front().seq; }
  uint64_t LastSeq() const { return entries.empty() ? 0 : entries.back().seq; }
  size_t WireSize() const;

  Bytes Serialize() const;
  static LogSegment Deserialize(ByteView data);
};

// Receives every appended entry, e.g. to spill it to durable storage
// (src/store). The log itself stays authoritative and in memory; a sink
// is a tee, so every existing call site (and every audit verdict)
// behaves bit-for-bit identically with or without one attached.
class LogSink {
 public:
  virtual ~LogSink() = default;
  // Called once per entry, after seq and chain hash are filled in.
  virtual void Append(const LogEntry& e) = 0;
  // Called at natural durability points (e.g. Avmm::Finish).
  virtual void Flush() {}
  // Highest seq the sink already holds (0 = empty); SetSink's backfill
  // replays only the entries after it.
  virtual uint64_t SinkLastSeq() const { return 0; }
  // Chain hash of the sink's last entry, if the sink tracks one;
  // SetSink uses it to reject a sink that diverges from this log.
  virtual std::optional<Hash256> SinkLastHash() const { return std::nullopt; }
  // Durability watermark: the highest seq the sink guarantees survives
  // a crash. Sinks without a weaker durability notion (in-memory tees)
  // report everything they hold; LogStore reports its group-commit
  // watermark. Must be safe to call from any thread.
  virtual uint64_t SinkDurableSeq() const { return SinkLastSeq(); }
};

// The append-only log a machine maintains about itself.
class TamperEvidentLog {
 public:
  explicit TamperEvidentLog(NodeId owner) : owner_(std::move(owner)) {}

  // Appends an entry and returns it (with seq and chain hash filled in).
  const LogEntry& Append(EntryType type, Bytes content);

  // Attaches a tee (non-owning; nullptr detaches). With `backfill`,
  // entries appended before the sink was attached are replayed into it
  // first, so the sink always mirrors the full log.
  void SetSink(LogSink* sink, bool backfill = true);
  LogSink* sink() const { return sink_; }
  void FlushSink();

  uint64_t LastSeq() const { return entries_.size(); }
  // The durability watermark the attached sink publishes, or LastSeq()
  // when no sink is attached (an in-memory-only log has no weaker
  // durability boundary to wait for). RunConfig::durable_commit gates
  // authenticator release on this.
  uint64_t DurableSeq() const { return sink_ ? sink_->SinkDurableSeq() : LastSeq(); }
  Hash256 LastHash() const { return entries_.empty() ? Hash256::Zero() : entries_.back().hash; }
  const NodeId& owner() const { return owner_; }

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  const LogEntry& At(uint64_t seq) const;  // seq is 1-based.
  const std::vector<LogEntry>& entries() const { return entries_; }

  // Total serialized size of all entries (Figure 3's metric).
  size_t TotalWireSize() const { return total_wire_size_; }

  // Creates a signed authenticator for entry `seq` (default: latest).
  Authenticator Authenticate(const Signer& signer) const;
  Authenticator AuthenticateAt(const Signer& signer, uint64_t seq) const;

  // Extracts entries [from_seq, to_seq] with the correct prior hash.
  LogSegment Extract(uint64_t from_seq, uint64_t to_seq) const;

 private:
  NodeId owner_;
  std::vector<LogEntry> entries_;
  size_t total_wire_size_ = 0;
  LogSink* sink_ = nullptr;
};

}  // namespace avm

#endif  // SRC_TEL_LOG_H_
