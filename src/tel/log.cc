#include "src/tel/log.h"

#include <algorithm>
#include <stdexcept>

#include "src/util/serde.h"

namespace avm {

const char* EntryTypeName(EntryType t) {
  switch (t) {
    case EntryType::kSend:
      return "SEND";
    case EntryType::kRecv:
      return "RECV";
    case EntryType::kAck:
      return "ACK";
    case EntryType::kTraceTime:
      return "TIMETRACKER";
    case EntryType::kTraceMac:
      return "MAC";
    case EntryType::kTraceOther:
      return "OTHER";
    case EntryType::kSnapshot:
      return "SNAPSHOT";
    case EntryType::kInfo:
      return "INFO";
  }
  return "?";
}

Hash256 ChainHashWithContentHash(const Hash256& prev, uint64_t seq, EntryType type,
                                 const Hash256& content_hash) {
  Sha256 h;
  h.Update(prev.view());
  h.UpdateU64(seq);
  uint8_t t = static_cast<uint8_t>(type);
  h.Update(ByteView(&t, 1));
  h.Update(content_hash.view());
  return h.Finish();
}

Hash256 ChainHash(const Hash256& prev, uint64_t seq, EntryType type, ByteView content) {
  return ChainHashWithContentHash(prev, seq, type, Sha256::Digest(content));
}

Bytes Authenticator::SignedPayload(const NodeId& node, uint64_t seq, const Hash256& hash) {
  Writer w;
  w.Str(node);
  w.U64(seq);
  w.Raw(hash.view());
  return w.Take();
}

Hash256 Authenticator::SignedPayloadDigest(const NodeId& node, uint64_t seq,
                                           const Hash256& hash) {
  // Streams exactly the bytes SignedPayload would produce: Writer::Str
  // is a u32 little-endian length followed by the raw characters.
  Sha256 h;
  uint8_t len[4];
  uint32_t n = static_cast<uint32_t>(node.size());
  for (int i = 0; i < 4; i++) {
    len[i] = static_cast<uint8_t>(n >> (8 * i));
  }
  h.Update(ByteView(len, 4));
  h.Update(std::string_view(node));
  h.UpdateU64(seq);
  h.Update(hash.view());
  return h.Finish();
}

Bytes Authenticator::Serialize() const {
  Writer w;
  w.Str(node);
  w.U64(seq);
  w.Raw(hash.view());
  w.Blob(signature);
  return w.Take();
}

Authenticator Authenticator::Deserialize(ByteView data) {
  Reader r(data);
  Authenticator a;
  a.node = r.Str();
  a.seq = r.U64();
  a.hash = Hash256::FromBytes(r.Raw(32));
  a.signature = r.Blob();
  r.ExpectEnd();
  return a;
}

bool Authenticator::VerifySignature(const KeyRegistry& registry) const {
  return registry.VerifyDigest(node, SignedPayloadDigest(node, seq, hash), signature);
}

size_t LogSegment::WireSize() const {
  size_t total = 0;
  for (const auto& e : entries) {
    total += e.WireSize();
  }
  return total;
}

Bytes LogSegment::Serialize() const {
  Writer w;
  w.Str(node);
  w.Raw(prior_hash.view());
  w.U32(static_cast<uint32_t>(entries.size()));
  for (const auto& e : entries) {
    w.U64(e.seq);
    w.U8(static_cast<uint8_t>(e.type));
    w.Blob(e.content);
    w.Raw(e.hash.view());
  }
  return w.Take();
}

LogSegment LogSegment::Deserialize(ByteView data) {
  Reader r(data);
  LogSegment seg;
  seg.node = r.Str();
  seg.prior_hash = Hash256::FromBytes(r.Raw(32));
  uint32_t n = r.U32();
  // Clamp the reservation: n is untrusted and each entry needs at least
  // ~45 bytes of input, so a huge count on a short buffer must not OOM
  // before the per-entry bounds checks reject it.
  seg.entries.reserve(std::min<size_t>(n, r.remaining() / 45 + 1));
  for (uint32_t i = 0; i < n; i++) {
    LogEntry e;
    e.seq = r.U64();
    uint8_t t = r.U8();
    if (t < 1 || t > 8) {
      throw SerdeError("LogSegment: bad entry type");
    }
    e.type = static_cast<EntryType>(t);
    e.content = r.Blob();
    e.hash = Hash256::FromBytes(r.Raw(32));
    seg.entries.push_back(std::move(e));
  }
  r.ExpectEnd();
  return seg;
}

const LogEntry& TamperEvidentLog::Append(EntryType type, Bytes content) {
  LogEntry e;
  e.seq = entries_.size() + 1;
  e.type = type;
  e.content = std::move(content);
  e.hash = ChainHash(LastHash(), e.seq, e.type, e.content);
  total_wire_size_ += e.WireSize();
  entries_.push_back(std::move(e));
  if (sink_ != nullptr) {
    sink_->Append(entries_.back());
  }
  return entries_.back();
}

void TamperEvidentLog::SetSink(LogSink* sink, bool backfill) {
  sink_ = sink;
  if (sink_ == nullptr || !backfill) {
    return;
  }
  // A sink that is ahead of this log, or whose chain diverges from it,
  // belongs to some other history -- appending to it would break the
  // store's chain continuity at the first teed entry, so fail loudly
  // here instead of deep inside a later Append.
  uint64_t sink_last = sink_->SinkLastSeq();
  if (sink_last > entries_.size()) {
    sink_ = nullptr;
    throw std::logic_error("TamperEvidentLog::SetSink: sink already holds " +
                           std::to_string(sink_last) + " entries but the log has only " +
                           std::to_string(entries_.size()));
  }
  if (sink_last > 0) {
    std::optional<Hash256> sink_hash = sink_->SinkLastHash();
    if (sink_hash.has_value() && *sink_hash != entries_[sink_last - 1].hash) {
      sink_ = nullptr;
      throw std::logic_error("TamperEvidentLog::SetSink: sink diverges from the log at seq " +
                             std::to_string(sink_last));
    }
  }
  for (uint64_t s = sink_last + 1; s <= entries_.size(); s++) {
    sink_->Append(entries_[s - 1]);
  }
}

void TamperEvidentLog::FlushSink() {
  if (sink_ != nullptr) {
    sink_->Flush();
  }
}

const LogEntry& TamperEvidentLog::At(uint64_t seq) const {
  if (seq == 0 || seq > entries_.size()) {
    throw std::out_of_range("TamperEvidentLog::At: seq " + std::to_string(seq) +
                            " out of range [1, " + std::to_string(entries_.size()) + "]");
  }
  return entries_[seq - 1];
}

Authenticator TamperEvidentLog::Authenticate(const Signer& signer) const {
  return AuthenticateAt(signer, LastSeq());
}

Authenticator TamperEvidentLog::AuthenticateAt(const Signer& signer, uint64_t seq) const {
  const LogEntry& e = At(seq);
  Authenticator a;
  a.node = owner_;
  a.seq = e.seq;
  a.hash = e.hash;
  a.signature = signer.SignDigest(Authenticator::SignedPayloadDigest(a.node, a.seq, a.hash));
  return a;
}

LogSegment TamperEvidentLog::Extract(uint64_t from_seq, uint64_t to_seq) const {
  if (from_seq == 0 || from_seq > to_seq || to_seq > entries_.size()) {
    throw std::out_of_range("TamperEvidentLog::Extract: bad range");
  }
  LogSegment seg;
  seg.node = owner_;
  seg.prior_hash = (from_seq == 1) ? Hash256::Zero() : entries_[from_seq - 2].hash;
  seg.entries.assign(entries_.begin() + static_cast<ptrdiff_t>(from_seq - 1),
                     entries_.begin() + static_cast<ptrdiff_t>(to_seq));
  return seg;
}

}  // namespace avm
