#include "src/tel/verifier.h"

#include "src/tel/batch.h"
#include "src/util/threadpool.h"

namespace avm {

CheckResult CheckChainLink(const Hash256& prev, uint64_t expect_seq, const LogEntry& e) {
  if (e.seq != expect_seq) {
    return CheckResult::Fail("non-consecutive sequence numbers", e.seq);
  }
  if (ChainHash(prev, e.seq, e.type, e.content) != e.hash) {
    return CheckResult::Fail("hash chain broken", e.seq);
  }
  return CheckResult::Ok();
}

namespace {

// Checks link i of the chain: entry i must continue the stored hash of
// entry i-1 (or the segment's prior hash for i == 0) and carry the next
// sequence number. If every link holds, the recomputed running hash of
// the sequential scan equals the stored one at every step, so per-link
// checking accepts exactly the same segments — and rejects at the same
// entry, because the sequential scan only reaches entry i after entries
// [0, i) matched their stored hashes.
CheckResult CheckSegmentLink(const LogSegment& segment, size_t i) {
  const Hash256& prev = i == 0 ? segment.prior_hash : segment.entries[i - 1].hash;
  return CheckChainLink(prev, segment.entries.front().seq + i, segment.entries[i]);
}

}  // namespace

CheckResult VerifyChain(const LogSegment& segment, ThreadPool* pool) {
  if (segment.entries.empty()) {
    return CheckResult::Fail("empty segment");
  }
  uint64_t first_seq = segment.entries.front().seq;
  if (first_seq == 0) {
    return CheckResult::Fail("sequence numbers are 1-based", 0);
  }
  if (first_seq == 1 && !segment.prior_hash.IsZero()) {
    return CheckResult::Fail("segment starts at seq 1 but prior hash is nonzero", 1);
  }
  size_t n = segment.entries.size();
  if (pool == nullptr || pool->thread_count() <= 1 || n <= 1) {
    for (size_t i = 0; i < n; i++) {
      CheckResult r = CheckSegmentLink(segment, i);
      if (!r.ok) {
        return r;
      }
    }
    return CheckResult::Ok();
  }
  std::vector<CheckResult> results(n);
  pool->ParallelFor(n, [&](size_t i) { results[i] = CheckSegmentLink(segment, i); });
  for (const CheckResult& r : results) {
    if (!r.ok) {
      return r;
    }
  }
  return CheckResult::Ok();
}

CheckResult VerifyAgainstAuthenticators(const LogSegment& segment,
                                        std::span<const Authenticator> auths,
                                        const KeyRegistry& registry, ThreadPool* pool) {
  CheckResult chain = VerifyChain(segment, pool);
  if (!chain.ok) {
    return chain;
  }
  uint64_t first = segment.FirstSeq();
  uint64_t last = segment.LastSeq();
  // Authenticators that cover the segment, in their original order (the
  // order the sequential scan reports failures in).
  std::vector<size_t> relevant;
  for (size_t i = 0; i < auths.size(); i++) {
    if (auths[i].node == segment.node && auths[i].seq >= first && auths[i].seq <= last) {
      relevant.push_back(i);
    }
  }
  if (relevant.empty()) {
    return CheckResult::Fail("no authenticator covers the segment; cannot establish authenticity");
  }
  // The RSA verifications are independent; fan them out, then report the
  // first failure in authenticator order so the verdict matches the
  // sequential path exactly. Sequentially, verify as we scan so a bad
  // first authenticator costs one RSA check, not one per authenticator.
  bool parallel = pool != nullptr && pool->thread_count() > 1 && relevant.size() > 1;
  std::vector<uint8_t> sig_ok(parallel ? relevant.size() : 0);
  if (parallel) {
    pool->ParallelFor(relevant.size(), [&](size_t k) {
      sig_ok[k] = auths[relevant[k]].VerifySignature(registry) ? 1 : 0;
    });
  }
  for (size_t k = 0; k < relevant.size(); k++) {
    const Authenticator& a = auths[relevant[k]];
    if (parallel ? !sig_ok[k] : !a.VerifySignature(registry)) {
      return CheckResult::Fail("authenticator signature invalid", a.seq);
    }
    const LogEntry& e = segment.entries[a.seq - first];
    if (e.hash != a.hash) {
      return CheckResult::Fail("log does not match issued authenticator (tamper or fork)", a.seq);
    }
  }
  return CheckResult::Ok();
}

bool IsForkProof(const Authenticator& a, const Authenticator& b, const KeyRegistry& registry) {
  return a.node == b.node && a.seq == b.seq && a.hash != b.hash &&
         a.VerifySignature(registry) && b.VerifySignature(registry);
}

bool AuthenticatorStore::Add(const Authenticator& a, const KeyRegistry& registry) {
  if (!a.VerifySignature(registry)) {
    return false;
  }
  auto& m = by_node_[a.node];
  auto it = m.find(a.seq);
  if (it != m.end()) {
    if (it->second.hash != a.hash) {
      fork_proofs_.emplace_back(it->second, a);
    }
    return true;
  }
  m.emplace(a.seq, a);
  return true;
}

bool AuthenticatorStore::AddBatch(const BatchAuthenticator& batch, const KeyRegistry& registry) {
  // Verify() already checks the commitment's signature, so reuse Add's
  // dedup/fork bookkeeping only after the walk established that the
  // signed hash seals exactly these links.
  if (!batch.Verify(registry).ok) {
    return false;
  }
  return Add(batch.commit, registry);
}

std::vector<Authenticator> AuthenticatorStore::InRange(const NodeId& node, uint64_t from,
                                                       uint64_t to) const {
  std::vector<Authenticator> out;
  auto it = by_node_.find(node);
  if (it == by_node_.end()) {
    return out;
  }
  for (auto i = it->second.lower_bound(from); i != it->second.end() && i->first <= to; ++i) {
    out.push_back(i->second);
  }
  return out;
}

std::vector<Authenticator> AuthenticatorStore::AllFor(const NodeId& node) const {
  return InRange(node, 0, UINT64_MAX);
}

const Authenticator* AuthenticatorStore::Latest(const NodeId& node) const {
  auto it = by_node_.find(node);
  if (it == by_node_.end() || it->second.empty()) {
    return nullptr;
  }
  return &it->second.rbegin()->second;
}

size_t AuthenticatorStore::CountFor(const NodeId& node) const {
  auto it = by_node_.find(node);
  return it == by_node_.end() ? 0 : it->second.size();
}

}  // namespace avm
