#include "src/tel/verifier.h"

namespace avm {

CheckResult VerifyChain(const LogSegment& segment) {
  if (segment.entries.empty()) {
    return CheckResult::Fail("empty segment");
  }
  Hash256 prev = segment.prior_hash;
  uint64_t expected_seq = segment.entries.front().seq;
  if (expected_seq == 0) {
    return CheckResult::Fail("sequence numbers are 1-based", 0);
  }
  if (expected_seq == 1 && !segment.prior_hash.IsZero()) {
    return CheckResult::Fail("segment starts at seq 1 but prior hash is nonzero", 1);
  }
  for (const LogEntry& e : segment.entries) {
    if (e.seq != expected_seq) {
      return CheckResult::Fail("non-consecutive sequence numbers", e.seq);
    }
    Hash256 h = ChainHash(prev, e.seq, e.type, e.content);
    if (h != e.hash) {
      return CheckResult::Fail("hash chain broken", e.seq);
    }
    prev = h;
    expected_seq++;
  }
  return CheckResult::Ok();
}

CheckResult VerifyAgainstAuthenticators(const LogSegment& segment,
                                        std::span<const Authenticator> auths,
                                        const KeyRegistry& registry) {
  CheckResult chain = VerifyChain(segment);
  if (!chain.ok) {
    return chain;
  }
  uint64_t first = segment.FirstSeq();
  uint64_t last = segment.LastSeq();
  size_t matched = 0;
  for (const Authenticator& a : auths) {
    if (a.node != segment.node) {
      continue;
    }
    if (a.seq < first || a.seq > last) {
      continue;
    }
    if (!a.VerifySignature(registry)) {
      return CheckResult::Fail("authenticator signature invalid", a.seq);
    }
    const LogEntry& e = segment.entries[a.seq - first];
    if (e.hash != a.hash) {
      return CheckResult::Fail("log does not match issued authenticator (tamper or fork)", a.seq);
    }
    matched++;
  }
  if (matched == 0) {
    return CheckResult::Fail("no authenticator covers the segment; cannot establish authenticity");
  }
  return CheckResult::Ok();
}

bool IsForkProof(const Authenticator& a, const Authenticator& b, const KeyRegistry& registry) {
  return a.node == b.node && a.seq == b.seq && a.hash != b.hash &&
         a.VerifySignature(registry) && b.VerifySignature(registry);
}

bool AuthenticatorStore::Add(const Authenticator& a, const KeyRegistry& registry) {
  if (!a.VerifySignature(registry)) {
    return false;
  }
  auto& m = by_node_[a.node];
  auto it = m.find(a.seq);
  if (it != m.end()) {
    if (it->second.hash != a.hash) {
      fork_proofs_.emplace_back(it->second, a);
    }
    return true;
  }
  m.emplace(a.seq, a);
  return true;
}

std::vector<Authenticator> AuthenticatorStore::InRange(const NodeId& node, uint64_t from,
                                                       uint64_t to) const {
  std::vector<Authenticator> out;
  auto it = by_node_.find(node);
  if (it == by_node_.end()) {
    return out;
  }
  for (auto i = it->second.lower_bound(from); i != it->second.end() && i->first <= to; ++i) {
    out.push_back(i->second);
  }
  return out;
}

std::vector<Authenticator> AuthenticatorStore::AllFor(const NodeId& node) const {
  return InRange(node, 0, UINT64_MAX);
}

const Authenticator* AuthenticatorStore::Latest(const NodeId& node) const {
  auto it = by_node_.find(node);
  if (it == by_node_.end() || it->second.empty()) {
    return nullptr;
  }
  return &it->second.rbegin()->second;
}

size_t AuthenticatorStore::CountFor(const NodeId& node) const {
  auto it = by_node_.find(node);
  return it == by_node_.end() ? 0 : it->second.size();
}

}  // namespace avm
