// Log-integrity verification: the "verify the log" step of an audit
// (§4.5). Given a segment and the authenticators the auditor collected,
// establish that the segment is genuine before replaying it.
#ifndef SRC_TEL_VERIFIER_H_
#define SRC_TEL_VERIFIER_H_

#include <map>
#include <span>
#include <string>
#include <vector>

#include "src/tel/log.h"

namespace avm {

class ThreadPool;

struct CheckResult {
  bool ok = true;
  // Human-readable reason for the first failure; empty when ok.
  std::string reason;
  // Sequence number at which the failure was detected (0 if n/a).
  uint64_t bad_seq = 0;

  static CheckResult Ok() { return CheckResult{}; }
  static CheckResult Fail(std::string why, uint64_t seq = 0) {
    return CheckResult{false, std::move(why), seq};
  }
};

// One link of the chain rule: `e` must carry `expect_seq` and extend
// `prev` per the hash rule (seq checked first, as every scan does).
// The single source of truth shared by VerifyChain, the streaming
// syntactic check and the chunked pipelined checker.
CheckResult CheckChainLink(const Hash256& prev, uint64_t expect_seq, const LogEntry& e);

// Recomputes the hash chain across the segment: sequence numbers must be
// consecutive and every h_i must match the hash rule. Detects in-segment
// tampering, reordering, insertion and deletion.
//
// Each link of the chain depends only on the *stored* hash of the entry
// before it, so links can be checked independently; passing a pool fans
// them across its workers. The verdict — including which seq is reported
// for the first broken link — is identical to the sequential scan.
CheckResult VerifyChain(const LogSegment& segment, ThreadPool* pool = nullptr);

// Checks the segment against previously collected authenticators:
// every authenticator whose seq falls inside the segment must match the
// recomputed hash, and its signature must verify. Detects log forks: a
// machine that shows different histories to different auditors must have
// signed two different hashes for the same seq.
//
// The per-authenticator RSA checks are the audit's syntactic hot loop;
// passing a pool fans them across its workers. Verdicts are identical to
// the sequential path (failures are reported in authenticator order).
CheckResult VerifyAgainstAuthenticators(const LogSegment& segment,
                                        std::span<const Authenticator> auths,
                                        const KeyRegistry& registry,
                                        ThreadPool* pool = nullptr);

// Two signed authenticators from the same node with the same seq but
// different hashes are standalone proof of misbehavior (a forked log).
bool IsForkProof(const Authenticator& a, const Authenticator& b, const KeyRegistry& registry);

struct BatchAuthenticator;

// Collects authenticators an auditor has received from or about a machine.
class AuthenticatorStore {
 public:
  // Returns false (and stores nothing) if the signature does not verify.
  bool Add(const Authenticator& a, const KeyRegistry& registry);

  // Verifies a whole batch (chain walk + one signature) and stores its
  // commitment. The commitment is a regular authenticator, so fork
  // detection works across batched and per-message signers unchanged.
  bool AddBatch(const BatchAuthenticator& batch, const KeyRegistry& registry);

  // All stored authenticators for `node` with seq in [from, to].
  std::vector<Authenticator> InRange(const NodeId& node, uint64_t from, uint64_t to) const;
  std::vector<Authenticator> AllFor(const NodeId& node) const;

  // Highest-seq authenticator known for `node` (the paper: Alice keeps the
  // most recent authenticator as evidence if M refuses to produce its log).
  const Authenticator* Latest(const NodeId& node) const;

  // If adding ever saw two different hashes for one (node, seq), the pair
  // is remembered here as fork proof.
  const std::vector<std::pair<Authenticator, Authenticator>>& fork_proofs() const {
    return fork_proofs_;
  }

  size_t CountFor(const NodeId& node) const;

 private:
  // node -> seq -> authenticator.
  std::map<NodeId, std::map<uint64_t, Authenticator>> by_node_;
  std::vector<std::pair<Authenticator, Authenticator>> fork_proofs_;
};

}  // namespace avm

#endif  // SRC_TEL_VERIFIER_H_
