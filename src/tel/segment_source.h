// A read-only supplier of tamper-evident log entries for auditing.
//
// The auditor does not care whether a log lives in the recording
// machine's memory (the seed's only option) or in a durable segmented
// store on disk (src/store); it only ever extracts ranges and streams
// entries. This interface is that seam: `InMemorySegmentSource` wraps a
// live TamperEvidentLog, `LogStore` implements it straight off disk,
// and every Auditor entry point accepts either, so store-backed audits
// produce bit-for-bit the verdicts of the in-memory path.
#ifndef SRC_TEL_SEGMENT_SOURCE_H_
#define SRC_TEL_SEGMENT_SOURCE_H_

#include <functional>
#include <stdexcept>

#include "src/tel/log.h"

namespace avm {

class SegmentSource {
 public:
  // Visits one entry; return false to stop the scan early.
  using EntryVisitor = std::function<bool(const LogEntry&)>;

  virtual ~SegmentSource() = default;

  // The machine whose log this is.
  virtual const NodeId& node() const = 0;

  virtual uint64_t LastSeq() const = 0;

  // Materializes entries [from_seq, to_seq] with the correct prior hash
  // (same contract as TamperEvidentLog::Extract, including throwing
  // std::out_of_range on a bad range).
  virtual LogSegment Extract(uint64_t from_seq, uint64_t to_seq) const = 0;

  // Streams entries [from_seq, to_seq] in order. Implementations hold
  // O(one segment) memory, not O(log), so syntactic scans work on logs
  // far larger than RAM.
  virtual void Scan(uint64_t from_seq, uint64_t to_seq, const EntryVisitor& visit) const = 0;

  // The *stored* chain hash h_seq of one entry (untrusted until the
  // chain rule verified it). Checkpointed audits (src/audit/checkpoint)
  // use this to anchor a resume watermark and to resolve authenticators
  // behind it without materializing a range.
  Hash256 HashAt(uint64_t seq) const {
    Hash256 h;
    bool found = false;
    Scan(seq, seq, [&](const LogEntry& e) {
      h = e.hash;
      found = true;
      return false;
    });
    if (!found) {
      throw std::out_of_range("SegmentSource::HashAt: seq not in log");
    }
    return h;
  }
};

// The trivial source: the log already in this process's memory.
class InMemorySegmentSource final : public SegmentSource {
 public:
  explicit InMemorySegmentSource(const TamperEvidentLog& log) : log_(&log) {}

  const NodeId& node() const override { return log_->owner(); }
  uint64_t LastSeq() const override { return log_->LastSeq(); }
  LogSegment Extract(uint64_t from_seq, uint64_t to_seq) const override {
    return log_->Extract(from_seq, to_seq);
  }
  void Scan(uint64_t from_seq, uint64_t to_seq, const EntryVisitor& visit) const override {
    for (uint64_t s = from_seq; s <= to_seq; s++) {
      if (!visit(log_->At(s))) {
        return;
      }
    }
  }

 private:
  const TamperEvidentLog* log_;
};

}  // namespace avm

#endif  // SRC_TEL_SEGMENT_SOURCE_H_
