// Batched authenticators: one RSA signature commits a whole window of
// log entries.
//
// The hash chain already makes h_i a commitment to the entire prefix,
// so a single signed authenticator at the *last* entry of a k-entry
// window commits every entry in the window — provided the verifier can
// walk the chain from a known point up to the signed hash. A ChainLink
// carries exactly what that walk needs per entry (seq, type, H(c_i)),
// without the content bytes; a BatchAuthenticator bundles the links of
// one window with the one signed commitment that seals it.
//
// Membership of any seq in the window is checked by walking the chain
// from the nearest earlier commitment: the walk reproduces h_s for
// every covered s, so per-seq verdicts are bit-for-bit those of
// per-entry authenticators. What batching trades away is immediacy, not
// evidence: an entry is provably committed only once the window closes,
// so a machine that crashes (or stalls) mid-window has an unsigned tail
// — exactly the paper's unacknowledged-suffix situation.
#ifndef SRC_TEL_BATCH_H_
#define SRC_TEL_BATCH_H_

#include <vector>

#include "src/tel/log.h"
#include "src/tel/verifier.h"
#include "src/util/serde.h"

namespace avm {

class Signer;

// One link of the hash chain: enough to recompute h_i from h_{i-1}.
struct ChainLink {
  uint64_t seq = 0;
  EntryType type = EntryType::kInfo;
  Hash256 content_hash;  // H(c_i)
};

// h_i from h_{i-1} and a link.
Hash256 ApplyChainLink(const Hash256& prev, const ChainLink& link);
// The link describing an existing entry.
ChainLink LinkFor(const LogEntry& e);

// The one wire format for link sequences, shared by BatchAuthenticator
// and the transport's ChainTail so the two cannot drift.
void WriteChainLinks(Writer& w, const std::vector<ChainLink>& links);
std::vector<ChainLink> ReadChainLinks(Reader& r);

// A signed commitment to the window (prior_seq, commit.seq]: the links
// connect h_{prior_seq} to the signed h_{commit.seq}, so one signature
// commits every entry in between.
struct BatchAuthenticator {
  uint64_t prior_seq = 0;  // 0 = window starts at the head of the log.
  Hash256 prior_hash;      // h_{prior_seq}; Zero when prior_seq == 0.
  std::vector<ChainLink> links;
  Authenticator commit;  // commit.seq == links.back().seq.

  uint64_t FirstSeq() const { return prior_seq + 1; }
  uint64_t LastSeq() const { return commit.seq; }
  bool Covers(uint64_t seq) const { return seq > prior_seq && seq <= commit.seq; }

  // Structural checks, the chain walk, and the one signature check.
  // After this passes, HashAt(seq) is the proven chain hash of every
  // covered seq.
  CheckResult Verify(const KeyRegistry& registry) const;

  // Chain hash the walk implies for a covered seq (throws
  // std::out_of_range outside the window). Meaningful once Verify
  // passed; otherwise these are the issuer's unverified claims.
  Hash256 HashAt(uint64_t seq) const;

  // Signs the window (from_seq-1, to_seq] of `log` as one batch.
  static BatchAuthenticator FromLog(const TamperEvidentLog& log, const Signer& signer,
                                    uint64_t from_seq, uint64_t to_seq);

  Bytes Serialize() const;
  static BatchAuthenticator Deserialize(ByteView data);
};

// The proof a receiver logs once a peer's batch commitment verified:
// the auditable record that RECV/ACK entries whose per-message
// signatures were elided (batched/async sign modes) were in fact
// covered by the peer's signed chain. Stored as the content of a kInfo
// entry, tagged with a magic prefix.
struct PeerCommitRecord {
  NodeId peer;
  BatchAuthenticator batch;

  Bytes Serialize() const;
  // True when a kInfo entry's content carries a PeerCommitRecord.
  static bool IsPeerCommit(ByteView content);
  static PeerCommitRecord Deserialize(ByteView content);
};

}  // namespace avm

#endif  // SRC_TEL_BATCH_H_
