#include "src/net/network.h"

#include <stdexcept>
#include <utility>

#include "src/chaos/fault_plan.h"

namespace avm {

void SimNetwork::AttachHost(const NodeId& id, NetworkDelegate* delegate) {
  hosts_[id] = delegate;
  auto [it, inserted] = stats_.try_emplace(id);
  if (inserted) {
    // §6.7 traffic accounting, published once per node (re-attach after
    // DetachHost reuses the same TrafficStats and gauges).
    auto& reg = obs::Registry::Global();
    const obs::Labels ls{{"node", std::string(id)}};
    TrafficStats* s = &it->second;
    auto& handles = obs_handles_[id];
    auto pub = [&](const char* name, const uint64_t* field) {
      handles.push_back(
          reg.RegisterCallbackGauge(name, ls, [field] { return static_cast<int64_t>(*field); }));
    };
    pub("net_frames_sent", &s->frames_sent);
    pub("net_bytes_sent", &s->bytes_sent);
    pub("net_frames_received", &s->frames_received);
    pub("net_bytes_received", &s->bytes_received);
    pub("net_frames_dropped", &s->frames_dropped);
  }
}

void SimNetwork::DetachHost(const NodeId& id) {
  hosts_.erase(id);
}

std::pair<NodeId, NodeId> SimNetwork::Key(const NodeId& a, const NodeId& b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

void SimNetwork::SetLinkLatency(const NodeId& a, const NodeId& b, SimTime micros) {
  link_latency_[Key(a, b)] = micros;
}

void SimNetwork::SetPartitioned(const NodeId& a, const NodeId& b, bool partitioned) {
  partitioned_[Key(a, b)] = partitioned;
}

SimTime SimNetwork::LatencyFor(const NodeId& a, const NodeId& b) const {
  auto it = link_latency_.find(Key(a, b));
  return it == link_latency_.end() ? default_latency_ : it->second;
}

void SimNetwork::SendFrame(SimTime now, const NodeId& src, const NodeId& dst, Bytes frame) {
  TrafficStats& s = stats_[src];
  s.frames_sent++;
  s.bytes_sent += frame.size();

  auto part = partitioned_.find(Key(src, dst));
  bool is_partitioned = part != partitioned_.end() && part->second;
  if (is_partitioned || (drop_rate_ > 0 && rng_.Chance(drop_rate_))) {
    // The frame was lost on the way to `dst`: charge the destination, so
    // per-node accounting closes (frames addressed to a node ==
    // frames_received + frames_dropped) and §6.7's totals satisfy
    // sent == received + dropped.
    stats_[dst].frames_dropped++;
    return;
  }
  chaos::NetFaultDecision fault;
  if (chaos_ != nullptr) {
    fault = chaos_->OnNetFrame(now, src, dst, &frame);
    if (fault.drop) {
      // Injected loss is charged like natural loss: to the destination.
      stats_[dst].frames_dropped++;
      return;
    }
  }
  SimTime latency = LatencyFor(src, dst) + fault.extra_delay_us;
  for (uint32_t i = 0; i < fault.duplicates; i++) {
    Bytes copy = frame;
    queue_.push(InFlight{now + latency, order_counter_++, src, dst, std::move(copy)});
  }
  queue_.push(InFlight{now + latency, order_counter_++, src, dst, std::move(frame)});
}

void SimNetwork::DeliverUntil(SimTime t) {
  while (!queue_.empty() && queue_.top().deliver_at <= t) {
    // Move the frame out instead of deep-copying the payload; top() is
    // const only to protect the heap ordering, which the immediate pop()
    // discards anyway.
    InFlight f = std::move(const_cast<InFlight&>(queue_.top()));
    queue_.pop();
    auto it = hosts_.find(f.dst);
    if (it == hosts_.end()) {
      // Host left the simulation; the frame is lost at the receiver.
      stats_[f.dst].frames_dropped++;
      continue;
    }
    TrafficStats& s = stats_[f.dst];
    s.frames_received++;
    s.bytes_received += f.frame.size();
    it->second->OnFrame(f.deliver_at, f.src, f.frame);
  }
}

SimTime SimNetwork::NextDeliveryTime() const {
  if (queue_.empty()) {
    throw std::logic_error("SimNetwork::NextDeliveryTime: queue empty");
  }
  return queue_.top().deliver_at;
}

const TrafficStats& SimNetwork::StatsFor(const NodeId& id) const {
  static const TrafficStats kEmpty;
  auto it = stats_.find(id);
  return it == stats_.end() ? kEmpty : it->second;
}

TrafficStats SimNetwork::TotalStats() const {
  TrafficStats total;
  for (const auto& [id, s] : stats_) {
    total.frames_sent += s.frames_sent;
    total.bytes_sent += s.bytes_sent;
    total.frames_received += s.frames_received;
    total.bytes_received += s.bytes_received;
    total.frames_dropped += s.frames_dropped;
  }
  return total;
}

}  // namespace avm
