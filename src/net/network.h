// Event-driven simulated network. Stands in for the paper's testbed LAN
// (three workstations on a GbE switch): per-link propagation latency,
// optional loss, and per-node traffic accounting (§6.7's metric).
//
// Assumption 1 of §4.1 (messages are eventually received if retransmitted
// sufficiently often) holds here as long as the drop rate is < 1; the
// transport layer in avmm/ does the retransmitting.
#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <cstdint>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "src/crypto/keys.h"
#include "src/obs/metrics.h"
#include "src/util/bytes.h"
#include "src/util/clock.h"
#include "src/util/prng.h"

namespace avm {

namespace chaos {
class FaultInjector;  // src/chaos/fault_plan.h
}

// A host's receive hook.
class NetworkDelegate {
 public:
  virtual ~NetworkDelegate() = default;
  virtual void OnFrame(SimTime now, const NodeId& src, ByteView frame) = 0;
};

struct TrafficStats {
  uint64_t frames_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t frames_received = 0;
  uint64_t bytes_received = 0;
  // Frames addressed to this node that never arrived (partition, random
  // drop, or the host detached before delivery). Charged to the
  // *destination*, so per node: frames addressed to it ==
  // frames_received + frames_dropped, and globally (§6.7's totals)
  // frames_sent == frames_received + frames_dropped.
  uint64_t frames_dropped = 0;
};

class SimNetwork {
 public:
  explicit SimNetwork(uint64_t seed = 1) : rng_(seed) {}

  void AttachHost(const NodeId& id, NetworkDelegate* delegate);
  void DetachHost(const NodeId& id);

  // Default latency applies to every link unless overridden.
  void SetDefaultLatency(SimTime micros) { default_latency_ = micros; }
  void SetLinkLatency(const NodeId& a, const NodeId& b, SimTime micros);
  // Probability in [0,1) that any given frame is silently dropped.
  void SetDropRate(double p) { drop_rate_ = p; }
  // Simulates a partition: frames between a and b are dropped while set.
  void SetPartitioned(const NodeId& a, const NodeId& b, bool partitioned);
  // Chaos seam: every SendFrame consults `injector` (may drop,
  // duplicate, delay/reorder or corrupt the frame, or enforce a
  // time-windowed partition). Null (the default) and an injector with
  // an empty plan are behaviorally identical to no injector at all —
  // same frames, same order, same rng_ stream.
  void SetFaultInjector(chaos::FaultInjector* injector) { chaos_ = injector; }

  // Schedules delivery of `frame` from src to dst at now + latency.
  void SendFrame(SimTime now, const NodeId& src, const NodeId& dst, Bytes frame);

  // Delivers every frame scheduled at or before `t`, in timestamp order.
  void DeliverUntil(SimTime t);

  bool HasPending() const { return !queue_.empty(); }
  SimTime NextDeliveryTime() const;

  const TrafficStats& StatsFor(const NodeId& id) const;
  TrafficStats TotalStats() const;

 private:
  struct InFlight {
    SimTime deliver_at;
    uint64_t order;  // FIFO tiebreaker for equal timestamps.
    NodeId src, dst;
    Bytes frame;
    bool operator>(const InFlight& o) const {
      if (deliver_at != o.deliver_at) {
        return deliver_at > o.deliver_at;
      }
      return order > o.order;
    }
  };

  SimTime LatencyFor(const NodeId& a, const NodeId& b) const;
  static std::pair<NodeId, NodeId> Key(const NodeId& a, const NodeId& b);

  std::map<NodeId, NetworkDelegate*> hosts_;
  // std::map values have stable addresses, so the per-node obs callback
  // gauges registered at AttachHost may point into this map. Stats
  // survive DetachHost (tests read them afterwards); the handles
  // unregister when the network is destroyed.
  std::map<NodeId, TrafficStats> stats_;
  std::map<NodeId, std::vector<obs::Registry::CallbackHandle>> obs_handles_;
  std::map<std::pair<NodeId, NodeId>, SimTime> link_latency_;
  std::map<std::pair<NodeId, NodeId>, bool> partitioned_;
  std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>> queue_;
  SimTime default_latency_ = 96;  // One-way; 192 µs RTT like the paper's LAN.
  double drop_rate_ = 0.0;
  uint64_t order_counter_ = 0;
  Prng rng_;
  chaos::FaultInjector* chaos_ = nullptr;
};

}  // namespace avm

#endif  // SRC_NET_NETWORK_H_
