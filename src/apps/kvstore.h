// The client/server workload for the spot-checking experiment (§6.12).
// The paper uses MySQL + sql-bench; here an interrupt-driven key-value
// server and a load-generating client, both in AVM-32 assembly, exercise
// the same machinery: a long-running stateful server, periodic snapshots,
// and segment-bounded replay.
#ifndef SRC_APPS_KVSTORE_H_
#define SRC_APPS_KVSTORE_H_

#include <cstdint>

#include "src/util/bytes.h"

namespace avm {

// Guest memory layout of the server's table (for tests).
constexpr uint32_t kKvTableAddr = 0x10000;

// Request/reply ops (first payload word after the routing header).
constexpr uint32_t kKvOpPut = 1;
constexpr uint32_t kKvOpGet = 2;
constexpr uint32_t kKvOpPutReply = 3;
constexpr uint32_t kKvOpGetReply = 4;

struct KvServerParams {
  uint32_t num_keys = 4096;   // Table slots (4 bytes each).
  uint32_t work_iters = 200;  // Background work per main-loop tick.
};

struct KvClientParams {
  uint32_t op_period_us = 2000;  // One request every 2 simulated ms.
  uint32_t keyspace = 4096;
  uint32_t work_iters = 200;
};

// The server is interrupt-driven (exercises IRQ delivery + replay of
// async events); the client paces itself on the clock.
Bytes BuildKvServerImage(const KvServerParams& params);
Bytes BuildKvClientImage(const KvClientParams& params);

}  // namespace avm

#endif  // SRC_APPS_KVSTORE_H_
