#include "src/apps/game.h"

#include <string>

#include "src/vm/assembler.h"

namespace avm {

namespace {

// Replaces every occurrence of `key` in `s` with `value`.
void Subst(std::string& s, const std::string& key, const std::string& value) {
  size_t pos = 0;
  while ((pos = s.find(key, pos)) != std::string::npos) {
    s.replace(pos, key.size(), value);
    pos += value.size();
  }
}

constexpr char kClientAsm[] = R"(
; ---- game client (AVM-32) ----
; r0 is kept zero by convention. State block at 0x8000:
;   +0 x, +4 y, +8 ammo, +12 shots, +16 id, +20 frame deadline, +24 send ctr
    jmp init
    jmp irqh            ; interrupt vector (interrupts stay disabled)
irqh:
    iret

init:
    movi r0, 0
    la sp, 0xD000
wait_id:
    in r1, INPUT        ; host delivers the player id as the first input
    beq r1, r0, wait_id
    la r2, 0x8000
    sw r1, [r2+16]
    movi r3, 100
    sw r3, [r2+0]
    sw r3, [r2+4]
    la r3, @AMMO@
    sw r3, [r2+8]
    sw r0, [r2+12]
    sw r0, [r2+24]
    in r4, CLOCK_LO
    la r5, @PERIOD@
    add r4, r5
    sw r4, [r2+20]

frame:
@PACING@
    in r4, CLOCK_LO     ; frame timestamp (goes into the STATE packet)

input_loop:
    in r1, INPUT
    beq r1, r0, input_done
    movi r3, 1
    bne r1, r3, not_up
    lw r5, [r2+4]
    addi r5, -1
    sw r5, [r2+4]
    jmp input_loop
not_up:
    movi r3, 2
    bne r1, r3, not_down
    lw r5, [r2+4]
    addi r5, 1
    sw r5, [r2+4]
    jmp input_loop
not_down:
    movi r3, 3
    bne r1, r3, not_left
    lw r5, [r2+0]
    addi r5, -1
    sw r5, [r2+0]
    jmp input_loop
not_left:
    movi r3, 4
    bne r1, r3, not_right
    lw r5, [r2+0]
    addi r5, 1
    sw r5, [r2+0]
    jmp input_loop
not_right:
    movi r3, 5
    bne r1, r3, input_loop
    lw r5, [r2+8]       ; fire: needs ammo
    beq r5, r0, input_loop
    addi r5, -1
    sw r5, [r2+8]
    lw r5, [r2+12]
    addi r5, 1
    sw r5, [r2+12]
    jmp input_loop
input_done:

@AUTOFIRE@

    lw r5, [r2+24]      ; send STATE every @SEND_IV@-th frame
    addi r5, 1
    sw r5, [r2+24]
    movi r3, @SEND_IV@
    remu r5, r3
    bne r5, r0, no_send
    la r6, TX_BUF       ; [dst=0][type=1][id][x][y][ammo][shots][t]
    sw r0, [r6+0]
    movi r3, 1
    sw r3, [r6+4]
    lw r3, [r2+16]
    sw r3, [r6+8]
    lw r3, [r2+0]
    sw r3, [r6+12]
    lw r3, [r2+4]
    sw r3, [r6+16]
    lw r3, [r2+8]
    sw r3, [r6+20]
    lw r3, [r2+12]
    sw r3, [r6+24]
    sw r4, [r6+28]
    movi r1, 32
    out r1, NET_TXLEN
no_send:

    in r1, NET_RXLEN    ; poll for world updates
    beq r1, r0, no_rx
    la r6, RX_BUF
    lw r3, [r6+4]
    movi r5, 2
    bne r3, r5, rx_done
    lw r5, [r6+8]       ; n entries
    la r7, 0x8100
    sw r5, [r7+0]
    movi r8, 0
    addi r6, 12
    addi r7, 4
world_copy:
    bgeu r8, r5, rx_done
    lw r3, [r6+0]
    sw r3, [r7+0]
    lw r3, [r6+4]
    sw r3, [r7+4]
    lw r3, [r6+8]
    sw r3, [r7+8]
    addi r6, 12
    addi r7, 12
    addi r8, 1
    jmp world_copy
rx_done:
    out r0, NET_RXDONE
no_rx:

@WALLHACK@

    la r9, @RENDER@     ; render: fixed busy work per frame
    movi r10, 0x1234
render_loop:
    beq r9, r0, render_done
    mul r10, r9
    xor r10, r9
    addi r9, -1
    jmp render_loop
render_done:
    la r11, 0x9000      ; scribble into the "framebuffer" page
    sw r10, [r11+0]
    out r0, FRAME
    jmp frame
)";

constexpr char kPacingBlock[] = R"(
    lw r5, [r2+20]      ; busy-wait until the frame deadline (cap on)
pace_loop:
    movi r3, 60         ; ~a real clock syscall's worth of work per poll
pace_pad:
    addi r3, -1
    bne r3, r0, pace_pad
    in r4, CLOCK_LO
    bltu r4, r5, pace_loop
    la r3, @PERIOD@
    add r5, r3
    sw r5, [r2+20]
)";

constexpr char kAutofireBlock[] = R"(
    ; AIMBOT: auto-aim and fire whenever any enemy is visible
    la r7, 0x8100
    lw r5, [r7+0]
    beq r5, r0, af_done
    lw r5, [r2+8]
    beq r5, r0, af_done
    addi r5, -1
    sw r5, [r2+8]
    lw r5, [r2+12]
    addi r5, 1
    sw r5, [r2+12]
af_done:
)";

constexpr char kWallhackBlock[] = R"(
    ; WALLHACK: leak hidden world state to the local display
    la r7, 0x8100
    lw r5, [r7+0]
    beq r5, r0, wh_done
    lw r3, [r7+4]
    out r3, CONSOLE
wh_done:
)";

constexpr char kServerAsm[] = R"(
; ---- game server (AVM-32) ----
; World table at 0x8000: @MAXP@ slots of 20 bytes (present,x,y,ammo,shots).
    jmp sinit
    jmp sirq
sirq:
    iret

sinit:
    movi r0, 0
    in r4, CLOCK_LO
    la r5, @BCAST@
    add r4, r5
    mov r6, r4          ; next broadcast deadline

sloop:
    in r1, NET_RXLEN
    beq r1, r0, s_norx
    la r7, RX_BUF
    lw r3, [r7+4]
    movi r5, 1
    bne r3, r5, s_rxdone
    lw r5, [r7+8]       ; player id == peer index
    movi r3, 20
    mul r5, r3
    la r3, 0x8000
    add r5, r3
    movi r3, 1
    sw r3, [r5+0]
    lw r3, [r7+12]
    sw r3, [r5+4]
    lw r3, [r7+16]
    sw r3, [r5+8]
    lw r3, [r7+20]
    sw r3, [r5+12]
    lw r3, [r7+24]
    sw r3, [r5+16]
s_rxdone:
    out r0, NET_RXDONE
s_norx:

    in r4, CLOCK_LO
    bltu r4, r6, s_work
    la r5, @BCAST@
    add r6, r5
    la r7, TX_BUF       ; [dst=-1][type=2][n][(id,x,y)...]
    movi r3, -1
    sw r3, [r7+0]
    movi r3, 2
    sw r3, [r7+4]
    movi r8, 0
    movi r9, 0
    mov r10, r7
    addi r10, 12
s_slot_loop:
    movi r3, @MAXP@
    bgeu r8, r3, s_slots_done
    mov r5, r8
    movi r3, 20
    mul r5, r3
    la r3, 0x8000
    add r5, r3
    lw r3, [r5+0]
    beq r3, r0, s_next_slot
    sw r8, [r10+0]
    lw r3, [r5+4]
    sw r3, [r10+4]
    lw r3, [r5+8]
    sw r3, [r10+8]
    addi r10, 12
    addi r9, 1
s_next_slot:
    addi r8, 1
    jmp s_slot_loop
s_slots_done:
    sw r9, [r7+8]
    movi r3, 12
    mul r9, r3
    addi r9, 12
    mov r1, r9
    out r1, NET_TXLEN
s_work:
    la r9, @WORK@
s_work_loop:
    beq r9, r0, s_tick
    addi r9, -1
    jmp s_work_loop
s_tick:
    out r0, FRAME
    jmp sloop
)";

}  // namespace

Bytes BuildGameClientImage(const GameClientParams& params) {
  std::string src = kClientAsm;
  std::string pacing = params.frame_cap ? kPacingBlock : "";
  Subst(src, "@PACING@", pacing);
  Subst(src, "@AUTOFIRE@",
        params.variant == GameClientParams::Variant::kAimbot ? kAutofireBlock : "");
  Subst(src, "@WALLHACK@",
        params.variant == GameClientParams::Variant::kWallhack ? kWallhackBlock : "");
  Subst(src, "@AMMO@", std::to_string(params.ammo_init));
  Subst(src, "@PERIOD@", std::to_string(params.frame_period_us));
  Subst(src, "@SEND_IV@", std::to_string(params.send_interval));
  Subst(src, "@RENDER@", std::to_string(params.render_iters));
  return Assemble(src);
}

Bytes BuildGameServerImage(const GameServerParams& params) {
  std::string src = kServerAsm;
  Subst(src, "@BCAST@", std::to_string(params.broadcast_period_us));
  Subst(src, "@MAXP@", std::to_string(params.max_players));
  Subst(src, "@WORK@", std::to_string(params.work_iters));
  return Assemble(src);
}

}  // namespace avm
