// The multiplayer shooter used for the evaluation: a Counterstrike-like
// client/server game written in AVM-32 assembly (§5.2's "agreed-upon VM
// image"). Clients process inputs, track position/ammo/shots, send state
// to the server at a fixed cadence and render frames as fast as the CPU
// allows (or busy-wait on the clock when the frame cap is on, which
// reproduces §6.5's log-inflation behavior). The server aggregates player
// state and broadcasts the world.
#ifndef SRC_APPS_GAME_H_
#define SRC_APPS_GAME_H_

#include <cstdint>

#include "src/util/bytes.h"

namespace avm {

// Fixed guest-memory layout of the client (needed by the host-side cheat
// injectors, exactly like real cheats that poke game memory).
constexpr uint32_t kGameStateAddr = 0x8000;
constexpr uint32_t kGameStateX = kGameStateAddr + 0;
constexpr uint32_t kGameStateY = kGameStateAddr + 4;
constexpr uint32_t kGameStateAmmo = kGameStateAddr + 8;
constexpr uint32_t kGameStateShots = kGameStateAddr + 12;
constexpr uint32_t kGameStateId = kGameStateAddr + 16;
constexpr uint32_t kGameWorldAddr = 0x8100;  // [count][(id,x,y)...]

// Input event codes fed through the INPUT port.
constexpr uint32_t kInputUp = 1;
constexpr uint32_t kInputDown = 2;
constexpr uint32_t kInputLeft = 3;
constexpr uint32_t kInputRight = 4;
constexpr uint32_t kInputFire = 5;

// Guest packet types (first payload word after the routing header).
constexpr uint32_t kPktState = 1;  // client -> server
constexpr uint32_t kPktWorld = 2;  // server -> broadcast

struct GameClientParams {
  enum class Variant {
    kReference,  // The agreed-upon image.
    kAimbot,     // Modified image: auto-aims and fires at any visible enemy.
    kWallhack,   // Modified image: leaks hidden world state to the console.
  };
  Variant variant = Variant::kReference;
  uint32_t render_iters = 2000;      // Per-frame busy work ("rendering").
  bool frame_cap = false;            // Busy-wait pacing loop (§6.5).
  uint32_t frame_period_us = 13889;  // 72 fps, the game's default cap.
  uint32_t send_interval = 40;       // Send STATE every n-th frame (~26 pps at typical frame rates, like Counterstrike).
  uint32_t ammo_init = 30;
};

struct GameServerParams {
  uint32_t broadcast_period_us = 38461;  // ~26 packets/s, like Counterstrike.
  uint32_t work_iters = 500;             // Per-tick server load.
  uint32_t max_players = 8;
};

// Assembles the client/server images. Every player must use the identical
// reference image; variants model cheats installed inside the image.
Bytes BuildGameClientImage(const GameClientParams& params);
Bytes BuildGameServerImage(const GameServerParams& params);

}  // namespace avm

#endif  // SRC_APPS_GAME_H_
