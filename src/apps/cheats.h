// The cheat catalog for Table 1 and the functional cheat experiments
// (§5.3/§5.4/§6.3).
//
// The paper examines 26 real Counterstrike cheats and classifies them:
//  * class 1 — the cheat must be installed inside the game machine (as a
//    module, patch or companion program); detectable because replay from
//    the reference image diverges.
//  * class 2 — the cheat makes the network-visible behavior inconsistent
//    with *any* correct execution; detectable no matter how implemented.
// All 26 are in class 1; at least 4 are also in class 2.
//
// Here each catalog entry mirrors one real cheat family. A representative
// subset is runnable against the game in src/apps/game.h, implemented the
// way real cheats work: memory pokes from outside the guest, modified
// images, or synthesized inputs.
#ifndef SRC_APPS_CHEATS_H_
#define SRC_APPS_CHEATS_H_

#include <optional>
#include <string>
#include <vector>

#include "src/apps/game.h"
#include "src/avmm/recorder.h"

namespace avm {

struct CheatInfo {
  std::string name;
  std::string family;  // aimbot | wallhack | state | speed | misc
  bool class1_install = true;   // Must be installed in the AVM image.
  bool class2_network = false;  // Network-inconsistent in any implementation.
  // Which runnable mechanism (if any) demonstrates it in this repo.
  std::string mechanism;  // "memory-poke" | "image-patch" | "forged-input" | ""
};

// The 26-entry catalog (Table 1's population).
const std::vector<CheatInfo>& CheatCatalog();

// Runnable cheats. Each corresponds to a mechanism used by real cheats.
enum class RunnableCheat {
  kNone,
  // Host-side memory pokes (class 2: no correct execution matches).
  kUnlimitedAmmo,  // Rewrites the ammo counter every quantum.
  kTeleport,       // Rewrites the position every quantum.
  // Modified images (class 1: divergence from the reference image).
  kAimbotImage,
  kWallhackImage,
  // Forged local inputs from outside the AVM: the §5.4 re-engineered
  // aimbot. NOT detectable by an AVM audit (documented limitation, §4.8).
  kForgedInputAimbot,
};

const char* RunnableCheatName(RunnableCheat c);

// Returns a hook to install via Avmm::SetCheatHook, or nullopt when the
// cheat is not hook-based (image variants are selected at build time via
// GameClientParams::Variant; forged inputs are injected by the scenario).
std::optional<Avmm::CheatHook> MakeCheatHook(RunnableCheat cheat);

// For image-based cheats: the client variant to build.
std::optional<GameClientParams::Variant> CheatImageVariant(RunnableCheat cheat);

// True if an AVM audit is expected to detect this cheat (everything except
// the forged-input aimbot).
bool CheatDetectableByAvm(RunnableCheat cheat);

}  // namespace avm

#endif  // SRC_APPS_CHEATS_H_
