#include "src/apps/cheats.h"

namespace avm {

const std::vector<CheatInfo>& CheatCatalog() {
  // Family composition mirrors the ecosystem the paper sampled from
  // (popular Counterstrike forums): many aimbots and wallhacks, a few
  // state manipulators, plus assorted helpers. All 26 must be installed
  // in the game machine (class 1); the four state manipulators are also
  // network-visible in any implementation (class 2) — matching Table 1's
  // "26 / 22 / 4 / 0" row structure.
  static const std::vector<CheatInfo> kCatalog = {
      {"ogc-aimbot", "aimbot", true, false, "image-patch"},
      {"hl-hook-aimbot", "aimbot", true, false, "image-patch"},
      {"cd-hack-aim", "aimbot", true, false, "image-patch"},
      {"xqz-aimhelper", "aimbot", true, false, "image-patch"},
      {"smooth-aim-lite", "aimbot", true, false, "image-patch"},
      {"triggerbot-classic", "aimbot", true, false, "image-patch"},
      {"norecoil-patch", "aimbot", true, false, "image-patch"},
      {"autoshoot-module", "aimbot", true, false, "image-patch"},
      {"gl-wallhack", "wallhack", true, false, "image-patch"},
      {"asus-driver-wall", "wallhack", true, false, "image-patch"},
      {"lambert-wall", "wallhack", true, false, "image-patch"},
      {"xray-esp", "wallhack", true, false, "image-patch"},
      {"name-esp", "wallhack", true, false, "image-patch"},
      {"radar-hack", "wallhack", true, false, "image-patch"},
      {"sound-esp", "wallhack", true, false, "image-patch"},
      {"flash-remover", "wallhack", true, false, "image-patch"},
      {"smoke-remover", "wallhack", true, false, "image-patch"},
      {"unlimited-ammo", "state", true, true, "memory-poke"},
      {"unlimited-health", "state", true, true, "memory-poke"},
      {"teleport-hack", "state", true, true, "memory-poke"},
      {"speedhack-classic", "state", true, true, "memory-poke"},
      {"bunnyhop-script", "misc", true, false, "image-patch"},
      {"autoreload-script", "misc", true, false, "image-patch"},
      {"spinbot", "misc", true, false, "image-patch"},
      {"anti-flash-skins", "misc", true, false, "image-patch"},
      {"fov-changer", "misc", true, false, "image-patch"},
  };
  return kCatalog;
}

const char* RunnableCheatName(RunnableCheat c) {
  switch (c) {
    case RunnableCheat::kNone:
      return "none";
    case RunnableCheat::kUnlimitedAmmo:
      return "unlimited-ammo";
    case RunnableCheat::kTeleport:
      return "teleport-hack";
    case RunnableCheat::kAimbotImage:
      return "ogc-aimbot";
    case RunnableCheat::kWallhackImage:
      return "gl-wallhack";
    case RunnableCheat::kForgedInputAimbot:
      return "external-input-aimbot";
  }
  return "?";
}

std::optional<Avmm::CheatHook> MakeCheatHook(RunnableCheat cheat) {
  switch (cheat) {
    case RunnableCheat::kUnlimitedAmmo:
      // Exactly like the real cheat: find the memory location holding the
      // ammo count and periodically write a constant to it (§5.3).
      return Avmm::CheatHook([](Machine& m, SimTime) {
        m.WriteMem32(kGameStateAmmo, 30);
      });
    case RunnableCheat::kTeleport:
      return Avmm::CheatHook([](Machine& m, SimTime) {
        m.WriteMem32(kGameStateX, 9999);
        m.WriteMem32(kGameStateY, 9999);
      });
    default:
      return std::nullopt;
  }
}

std::optional<GameClientParams::Variant> CheatImageVariant(RunnableCheat cheat) {
  switch (cheat) {
    case RunnableCheat::kAimbotImage:
      return GameClientParams::Variant::kAimbot;
    case RunnableCheat::kWallhackImage:
      return GameClientParams::Variant::kWallhack;
    default:
      return std::nullopt;
  }
}

bool CheatDetectableByAvm(RunnableCheat cheat) {
  return cheat != RunnableCheat::kNone && cheat != RunnableCheat::kForgedInputAimbot;
}

}  // namespace avm
