#include "src/apps/kvstore.h"

#include <string>

#include "src/vm/assembler.h"

namespace avm {

namespace {

void Subst(std::string& s, const std::string& key, const std::string& value) {
  size_t pos = 0;
  while ((pos = s.find(key, pos)) != std::string::npos) {
    s.replace(pos, key.size(), value);
    pos += value.size();
  }
}

constexpr char kServerAsm[] = R"(
; ---- key-value server (AVM-32, interrupt-driven) ----
; Table of @NKEYS@ u32 slots at 0x10000. Requests arrive via RX interrupt.
    jmp kinit
    jmp kirq

kirq:
    in r1, IRQ_CAUSE
    movi r3, 1          ; IRQ_NET_RX
    bne r1, r3, k_iret
    in r1, NET_RXLEN
    beq r1, r0, k_iret
    la r7, RX_BUF
    lw r4, [r7+0]       ; requester peer index
    lw r5, [r7+4]       ; op
    lw r6, [r7+8]       ; key
    lw r8, [r7+12]      ; value (PUT)
    mov r9, r6
    la r3, @NKEYS@
    remu r9, r3
    movi r3, 4
    mul r9, r3
    la r3, 0x10000
    add r9, r3
    movi r3, 1
    bne r5, r3, k_get
    lw r10, [r9+0]      ; PUT: reply with the old value
    sw r8, [r9+0]
    movi r11, 3
    jmp k_reply
k_get:
    lw r10, [r9+0]
    movi r11, 4
k_reply:
    la r7, TX_BUF       ; [dst=requester][reply op][key][value]
    sw r4, [r7+0]
    sw r11, [r7+4]
    sw r6, [r7+8]
    sw r10, [r7+12]
    movi r1, 16
    out r1, NET_TXLEN
    out r0, NET_RXDONE
k_iret:
    iret

kinit:
    movi r0, 0
    ei
k_main:
    la r9, @WORK@
k_wloop:
    beq r9, r0, k_tick
    addi r9, -1
    jmp k_wloop
k_tick:
    out r0, FRAME
    jmp k_main
)";

constexpr char kClientAsm[] = R"(
; ---- key-value load client (AVM-32) ----
    jmp cinit
    jmp cirq
cirq:
    iret

cinit:
    movi r0, 0
c_wait_id:
    in r1, INPUT
    beq r1, r0, c_wait_id
    mov r12, r1         ; own peer index (informational)
    in r4, CLOCK_LO
    la r5, @OP_PERIOD@
    add r4, r5
    mov r6, r4          ; next request deadline

c_loop:
    in r4, CLOCK_LO
    bltu r4, r6, c_rx
    la r5, @OP_PERIOD@
    add r6, r5
    in r7, RAND         ; choose op, key and value from hardware RNG
    mov r8, r7
    movi r3, 2
    remu r8, r3
    addi r8, 1          ; 1=PUT, 2=GET
    la r9, TX_BUF
    sw r0, [r9+0]       ; server is peer 0
    sw r8, [r9+4]
    mov r10, r7
    la r3, @KEYSPACE@
    remu r10, r3
    sw r10, [r9+8]
    sw r7, [r9+12]
    movi r1, 16
    out r1, NET_TXLEN
c_rx:
    in r1, NET_RXLEN
    beq r1, r0, c_work
    la r9, RX_BUF
    lw r3, [r9+4]       ; reply op (read for realism)
    out r0, NET_RXDONE
c_work:
    la r9, @WORK@
c_wloop:
    beq r9, r0, c_tick
    addi r9, -1
    jmp c_wloop
c_tick:
    out r0, FRAME
    jmp c_loop
)";

}  // namespace

Bytes BuildKvServerImage(const KvServerParams& params) {
  std::string src = kServerAsm;
  Subst(src, "@NKEYS@", std::to_string(params.num_keys));
  Subst(src, "@WORK@", std::to_string(params.work_iters));
  return Assemble(src);
}

Bytes BuildKvClientImage(const KvClientParams& params) {
  std::string src = kClientAsm;
  Subst(src, "@OP_PERIOD@", std::to_string(params.op_period_us));
  Subst(src, "@KEYSPACE@", std::to_string(params.keyspace));
  Subst(src, "@WORK@", std::to_string(params.work_iters));
  return Assemble(src);
}

}  // namespace avm
