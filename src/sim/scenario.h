// Multi-host scenario drivers: wire guest images, AVMMs, the simulated
// network, input scripts and cheats into runnable experiments. These are
// the symmetric multi-party setup of Figure 2(a) (the game), the
// client/server setup of §6.12 (the key-value store), and the
// multi-auditee fleet of §6.11/§8 (many independent worlds whose
// machines are all audited by one service).
#ifndef SRC_SIM_SCENARIO_H_
#define SRC_SIM_SCENARIO_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/apps/cheats.h"
#include "src/avmm/attested_input.h"
#include "src/apps/game.h"
#include "src/apps/kvstore.h"
#include "src/audit/auditor.h"
#include "src/avmm/recorder.h"
#include "src/net/network.h"

namespace avm {

namespace chaos {
class FaultInjector;  // src/chaos/fault_plan.h
}

struct GameScenarioConfig {
  RunConfig run = RunConfig::AvmmRsa768();
  int num_players = 3;  // Plus one dedicated server node.
  uint64_t seed = 1;
  SimTime quantum_us = 1000;
  GameClientParams client;
  GameServerParams server;
  // Player input script: mean microseconds between input events, and the
  // fraction of events that are FIRE.
  SimTime input_mean_gap_us = 100 * kMicrosPerMilli;
  double fire_fraction = 0.4;
  // §7.2 extension: every player's keyboard signs its events; audits
  // verify the attestations, which catches the forged-input aimbot.
  bool attested_input = false;
  // Chaos seam, wired into the scenario's SimNetwork. The injector's
  // own RNG streams derive from its plan seed; a scenario under an
  // empty plan is bit-identical to one with chaos == nullptr.
  chaos::FaultInjector* chaos = nullptr;
};

// A running game: one server node ("server") plus players "player1"...
// Drives everything in lockstep quanta; all nondeterminism derives from
// the config seed, so runs are exactly reproducible.
class GameScenario {
 public:
  explicit GameScenario(GameScenarioConfig cfg);
  ~GameScenario();

  // Installs a cheat for one player (0-based). Must precede Start().
  void SetCheat(int player_index, RunnableCheat cheat);

  // Generates keys, builds images, constructs AVMMs.
  void Start();

  // Advances the simulation. Callable repeatedly.
  void RunFor(SimTime duration);

  // Final snapshots + END markers.
  void Finish();

  SimTime now() const { return now_; }
  int num_players() const { return cfg_.num_players; }
  Avmm& server() { return *server_; }
  Avmm& player(int index) { return *players_.at(index); }
  const Avmm& player(int index) const { return *players_.at(index); }
  NodeId player_id(int index) const;

  const Bytes& reference_client_image() const { return reference_client_image_; }
  const Bytes& reference_server_image() const { return reference_server_image_; }
  const KeyRegistry& registry() const { return registry_; }
  SimNetwork& network() { return net_; }
  const GameScenarioConfig& config() const { return cfg_; }

  // Gathers all authenticators every *other* node collected about
  // `target`, plus a fresh end-of-log commitment from the target itself
  // (what an auditor would collect in §4.6).
  std::vector<Authenticator> CollectAuths(const NodeId& target) const;

  // Convenience: full audit of one player by another party.
  AuditOutcome AuditPlayer(int player_index);

 private:
  void PumpInputs(SimTime upto);
  Avmm& NodeById(const NodeId& id) const;

  GameScenarioConfig cfg_;
  Prng rng_;
  SimNetwork net_;
  KeyRegistry registry_;
  std::vector<std::unique_ptr<Signer>> signers_;
  std::unique_ptr<Avmm> server_;
  std::vector<std::unique_ptr<Avmm>> players_;
  std::map<int, RunnableCheat> cheats_;
  Bytes reference_client_image_;
  Bytes reference_server_image_;
  SimTime now_ = 0;
  bool started_ = false;

  struct InputState {
    SimTime next_at = 0;
    Prng rng{0};
    bool forged_autofire = false;
    std::unique_ptr<InputAttestor> attestor;  // Set in attested-input mode.
  };
  std::vector<InputState> input_state_;
};

struct KvScenarioConfig {
  RunConfig run = RunConfig::AvmmRsa768();
  uint64_t seed = 7;
  SimTime quantum_us = 1000;
  SimTime snapshot_interval = 5 * kMicrosPerMinute;  // §6.12: every 5 min.
  KvServerParams server;
  KvClientParams client;
  // Chaos seam (see GameScenarioConfig::chaos).
  chaos::FaultInjector* chaos = nullptr;
};

// Server ("kvserver", IRQ-driven) + load client ("kvclient").
class KvScenario {
 public:
  explicit KvScenario(KvScenarioConfig cfg);
  ~KvScenario();

  void Start();
  void RunFor(SimTime duration);
  void Finish();

  SimTime now() const { return now_; }
  Avmm& server() { return *server_; }
  Avmm& client() { return *client_; }
  const Bytes& reference_server_image() const { return reference_server_image_; }
  const KeyRegistry& registry() const { return registry_; }

  std::vector<Authenticator> CollectAuthsForServer() const;
  std::vector<Authenticator> CollectAuths(const NodeId& target) const;

 private:
  KvScenarioConfig cfg_;
  Prng rng_;
  SimNetwork net_;
  KeyRegistry registry_;
  std::vector<std::unique_ptr<Signer>> signers_;
  std::unique_ptr<Avmm> server_;
  std::unique_ptr<Avmm> client_;
  Bytes reference_server_image_;
  SimTime now_ = 0;
  bool started_ = false;
};

// ------------------------------------------------------------- Fleet ----

class LogStore;  // src/store; owned here when logs are spilled to disk.

struct FleetScenarioConfig {
  RunConfig run = RunConfig::AvmmNoSig();
  int num_games = 2;         // K independent game worlds (1 server + players each).
  int players_per_game = 2;
  int num_kv = 1;            // M key-value client/server pairs.
  uint64_t seed = 1;
  GameScenarioConfig game;   // Template; run/num_players/seed set per world.
  KvScenarioConfig kv;       // Template; run/seed set per world.
  // (game index, player index) -> cheat installed in that world.
  std::map<std::pair<int, int>, RunnableCheat> cheats;
  // Chaos seam, propagated to every world's network and (via
  // SpillLogsTo) every auditee store's fault hook. The same injector —
  // and therefore one root plan seed — covers the whole fleet.
  chaos::FaultInjector* chaos = nullptr;
};

// The §6.11/§8 deployment shape: many independent accountable worlds —
// K game servers (each with its own players) and M key-value stores —
// whose machines are all auditable by one FleetAuditService. Each world
// keeps its own network and key registry (an auditee registration
// carries its registry), and node names are globalized as
// "g<i>/<node>" / "kv<i>/<node>" so the fleet key space never collides.
class FleetScenario {
 public:
  explicit FleetScenario(FleetScenarioConfig cfg);
  ~FleetScenario();

  void Start();
  // Spills every auditable machine's log into a store::LogStore under
  // `base_dir`/<global name>/ (creating the stores; call after Start()
  // and before RunFor()). The stores persist checkpoints and let the
  // audit service read logs without touching the auditees' heaps.
  void SpillLogsTo(const std::string& base_dir);
  void RunFor(SimTime duration);
  void Finish();

  int num_games() const { return cfg_.num_games; }
  int num_kv() const { return cfg_.num_kv; }
  GameScenario& game(int i) { return *games_.at(static_cast<size_t>(i)); }
  KvScenario& kv(int i) { return *kvs_.at(static_cast<size_t>(i)); }

  // One auditable machine of the fleet, with everything a
  // FleetAuditService registration needs.
  struct AuditeeRef {
    NodeId global_name;  // "g0/player1", "kv1/kvserver", ...
    NodeId local_name;   // Name inside its world's registry/log.
    const Avmm* avmm = nullptr;
    const KeyRegistry* registry = nullptr;
    const Bytes* reference_image = nullptr;
    LogStore* store = nullptr;  // Null until SpillLogsTo().
    // Gathers the authenticators the world's other nodes hold about
    // this machine plus a fresh end-of-log commitment.
    std::function<std::vector<Authenticator>()> collect_auths;
  };
  // Every game server, game player and kv server (kv clients are load
  // generators, not audit targets).
  std::vector<AuditeeRef> Auditees();

 private:
  FleetScenarioConfig cfg_;
  std::vector<std::unique_ptr<GameScenario>> games_;
  std::vector<std::unique_ptr<KvScenario>> kvs_;
  std::vector<std::unique_ptr<LogStore>> stores_;
  std::map<NodeId, LogStore*> store_by_name_;
  bool started_ = false;
};

}  // namespace avm

#endif  // SRC_SIM_SCENARIO_H_
