#include "src/sim/scenario.h"

#include <filesystem>
#include <stdexcept>

#include "src/chaos/fault_plan.h"
#include "src/store/log_store.h"

namespace avm {

GameScenario::GameScenario(GameScenarioConfig cfg)
    : cfg_(std::move(cfg)), rng_(cfg_.seed),
      net_(chaos::DeriveSeed(cfg_.seed, "game-net")) {
  // One root seed: the network's loss stream and every chaos RNG derive
  // from cfg.seed, so a failing run reproduces from that one number.
  net_.SetFaultInjector(cfg_.chaos);
}

GameScenario::~GameScenario() = default;

NodeId GameScenario::player_id(int index) const {
  return "player" + std::to_string(index + 1);
}

void GameScenario::SetCheat(int player_index, RunnableCheat cheat) {
  if (started_) {
    throw std::logic_error("GameScenario::SetCheat: scenario already started");
  }
  cheats_[player_index] = cheat;
}

void GameScenario::Start() {
  if (started_) {
    throw std::logic_error("GameScenario::Start: already started");
  }
  started_ = true;

  reference_client_image_ = BuildGameClientImage(cfg_.client);
  reference_server_image_ = BuildGameServerImage(cfg_.server);

  // Peer order (defines guest-visible indices): server, player1, ...
  std::vector<NodeId> order;
  order.push_back("server");
  for (int i = 0; i < cfg_.num_players; i++) {
    order.push_back(player_id(i));
  }

  // Keys: every party has a certified keypair (§4.1 assumption 3).
  for (const NodeId& id : order) {
    signers_.push_back(std::make_unique<Signer>(id, cfg_.run.scheme, rng_));
    registry_.RegisterSigner(*signers_.back());
  }

  auto make_node = [&](const NodeId& id, ByteView image, const Signer* signer,
                       uint64_t seed) -> std::unique_ptr<Avmm> {
    auto node = std::make_unique<Avmm>(id, cfg_.run, image, signer, &net_, &registry_, seed);
    for (const NodeId& p : order) {
      node->AddPeer(p);
    }
    return node;
  };

  server_ = make_node("server", reference_server_image_, signers_[0].get(), cfg_.seed * 131 + 1);

  input_state_.resize(static_cast<size_t>(cfg_.num_players));
  for (int i = 0; i < cfg_.num_players; i++) {
    Bytes image = reference_client_image_;
    auto cheat_it = cheats_.find(i);
    RunnableCheat cheat = cheat_it == cheats_.end() ? RunnableCheat::kNone : cheat_it->second;
    if (auto variant = CheatImageVariant(cheat)) {
      // The cheater installs a modified image (§5.2's forbidden act).
      GameClientParams p = cfg_.client;
      p.variant = *variant;
      image = BuildGameClientImage(p);
    }
    auto node = make_node(player_id(i), image, signers_[static_cast<size_t>(i) + 1].get(),
                          cfg_.seed * 131 + 7 + static_cast<uint64_t>(i));
    if (auto hook = MakeCheatHook(cheat)) {
      node->SetCheatHook(*hook);
    }
    InputState& is = input_state_[static_cast<size_t>(i)];
    is.rng = Prng(cfg_.seed * 977 + static_cast<uint64_t>(i));
    is.next_at = is.rng.Range(1, cfg_.input_mean_gap_us);
    is.forged_autofire = (cheat == RunnableCheat::kForgedInputAimbot);
    if (cfg_.attested_input) {
      // The keyboard's keypair lives with the (trusted) device, not the
      // machine; its public key is certified in the registry.
      is.attestor = std::make_unique<InputAttestor>(player_id(i), cfg_.run.scheme, rng_);
      registry_.RegisterSigner(is.attestor->signer());
    }

    // The guest learns its peer index through the (recorded) input stream.
    uint32_t id_code = static_cast<uint32_t>(i + 1);
    if (is.attestor) {
      node->PushInput(id_code, is.attestor->Attest(id_code).Serialize());
    } else {
      node->PushInput(id_code);
    }
    players_.push_back(std::move(node));
  }
}

void GameScenario::PumpInputs(SimTime upto) {
  for (int i = 0; i < cfg_.num_players; i++) {
    InputState& is = input_state_[static_cast<size_t>(i)];
    while (is.next_at <= upto) {
      uint32_t code;
      if (is.forged_autofire) {
        // §5.4's re-engineered aimbot: a program outside the AVM feeds
        // synthesized FIRE events through the legitimate input channel.
        code = kInputFire;
      } else {
        code = is.rng.Chance(cfg_.fire_fraction)
                   ? kInputFire
                   : static_cast<uint32_t>(is.rng.Range(kInputUp, kInputRight));
      }
      if (is.attestor && !is.forged_autofire) {
        players_[static_cast<size_t>(i)]->PushInput(code, is.attestor->Attest(code).Serialize());
      } else {
        // Forged inputs come from a program outside the AVM: it has no
        // access to the device's signing key (§7.2's threat model).
        players_[static_cast<size_t>(i)]->PushInput(code);
      }
      SimTime gap = is.rng.Range(cfg_.input_mean_gap_us / 2, cfg_.input_mean_gap_us * 3 / 2);
      if (is.forged_autofire) {
        gap /= 8;  // Inhumanly fast trigger.
      }
      is.next_at += gap > 0 ? gap : 1;
    }
  }
}

void GameScenario::RunFor(SimTime duration) {
  if (!started_) {
    throw std::logic_error("GameScenario::RunFor: call Start() first");
  }
  SimTime end = now_ + duration;
  while (now_ < end) {
    net_.DeliverUntil(now_);
    PumpInputs(now_);
    server_->RunQuantum(now_, cfg_.quantum_us);
    for (auto& p : players_) {
      p->RunQuantum(now_, cfg_.quantum_us);
    }
    now_ += cfg_.quantum_us;
  }
}

void GameScenario::Finish() {
  net_.DeliverUntil(now_);
  if (cfg_.run.TamperEvident()) {
    server_->Finish(now_);
    for (auto& p : players_) {
      p->Finish(now_);
    }
    if (cfg_.run.BatchedSigning() || cfg_.run.durable_commit) {
      // Deliver the final kCommit frames (and any durably deferred
      // data/acks) so every node's pending RECV/ACK entries are sealed
      // (and logged as PeerCommitRecords) before anyone is audited.
      // The plain sync path is untouched.
      net_.DeliverUntil(now_ + kMicrosPerSecond);
      // Frames delivered during the settle appended entries and may
      // have enqueued fresh sign work past Finish()'s barrier; drain
      // before anyone Seal()s a store underneath a busy signer.
      server_->DrainPending(now_ + kMicrosPerSecond);
      for (auto& p : players_) {
        p->DrainPending(now_ + kMicrosPerSecond);
      }
      net_.DeliverUntil(now_ + 2 * kMicrosPerSecond);
      server_->log().FlushSink();
      for (auto& p : players_) {
        p->log().FlushSink();
      }
    }
  }
}

Avmm& GameScenario::NodeById(const NodeId& id) const {
  if (server_->id() == id) {
    return *server_;
  }
  for (const auto& p : players_) {
    if (p->id() == id) {
      return *p;
    }
  }
  throw std::out_of_range("GameScenario: unknown node " + id);
}

std::vector<Authenticator> GameScenario::CollectAuths(const NodeId& target) const {
  std::vector<Authenticator> out;
  auto gather = [&](const Avmm& node) {
    if (node.id() == target) {
      return;
    }
    for (const Authenticator& a : node.auth_store().AllFor(target)) {
      out.push_back(a);
    }
  };
  gather(*server_);
  for (const auto& p : players_) {
    gather(*p);
  }
  // Ask the target to commit to its current log end (covers the tail).
  out.push_back(NodeById(target).CommitLog());
  return out;
}

AuditOutcome GameScenario::AuditPlayer(int player_index) {
  const Avmm& target = player(player_index);
  std::vector<Authenticator> auths = CollectAuths(target.id());
  AuditConfig acfg;
  acfg.mem_size = cfg_.run.mem_size;
  acfg.attested_input = cfg_.attested_input;
  Auditor auditor("auditor", &registry_, acfg);
  return auditor.AuditFull(target, reference_client_image_, auths);
}

// ---------------------------------------------------------------- KV ----

KvScenario::KvScenario(KvScenarioConfig cfg)
    : cfg_(std::move(cfg)), rng_(cfg_.seed),
      net_(chaos::DeriveSeed(cfg_.seed, "kv-net")) {
  net_.SetFaultInjector(cfg_.chaos);
}

KvScenario::~KvScenario() = default;

void KvScenario::Start() {
  if (started_) {
    throw std::logic_error("KvScenario::Start: already started");
  }
  started_ = true;
  reference_server_image_ = BuildKvServerImage(cfg_.server);
  Bytes client_image = BuildKvClientImage(cfg_.client);

  std::vector<NodeId> order = {"kvserver", "kvclient"};
  for (const NodeId& id : order) {
    signers_.push_back(std::make_unique<Signer>(id, cfg_.run.scheme, rng_));
    registry_.RegisterSigner(*signers_.back());
  }

  RunConfig server_cfg = cfg_.run;
  server_cfg.rx_irq = true;  // The server is interrupt-driven.
  server_cfg.snapshot_interval = cfg_.snapshot_interval;
  server_ = std::make_unique<Avmm>("kvserver", server_cfg, reference_server_image_,
                                   signers_[0].get(), &net_, &registry_, cfg_.seed * 31 + 1);

  RunConfig client_cfg = cfg_.run;
  client_cfg.rx_irq = false;
  client_ = std::make_unique<Avmm>("kvclient", client_cfg, client_image, signers_[1].get(), &net_,
                                   &registry_, cfg_.seed * 31 + 2);

  for (const NodeId& p : order) {
    server_->AddPeer(p);
    client_->AddPeer(p);
  }
  client_->PushInput(1);  // The client's peer index.
}

void KvScenario::RunFor(SimTime duration) {
  if (!started_) {
    throw std::logic_error("KvScenario::RunFor: call Start() first");
  }
  SimTime end = now_ + duration;
  while (now_ < end) {
    net_.DeliverUntil(now_);
    server_->RunQuantum(now_, cfg_.quantum_us);
    client_->RunQuantum(now_, cfg_.quantum_us);
    now_ += cfg_.quantum_us;
  }
}

void KvScenario::Finish() {
  net_.DeliverUntil(now_);
  if (cfg_.run.TamperEvident()) {
    server_->Finish(now_);
    client_->Finish(now_);
    if (cfg_.run.BatchedSigning() || cfg_.run.durable_commit) {
      net_.DeliverUntil(now_ + kMicrosPerSecond);
      // Same post-settle barrier as GameScenario::Finish: drain sign
      // work enqueued by the settled frames, then flush the sinks past
      // the entries those deliveries appended.
      server_->DrainPending(now_ + kMicrosPerSecond);
      client_->DrainPending(now_ + kMicrosPerSecond);
      net_.DeliverUntil(now_ + 2 * kMicrosPerSecond);
      server_->log().FlushSink();
      client_->log().FlushSink();
    }
  }
}

std::vector<Authenticator> KvScenario::CollectAuthsForServer() const {
  return CollectAuths("kvserver");
}

std::vector<Authenticator> KvScenario::CollectAuths(const NodeId& target) const {
  const Avmm& accused = target == server_->id() ? *server_ : *client_;
  const Avmm& other = target == server_->id() ? *client_ : *server_;
  std::vector<Authenticator> out = other.auth_store().AllFor(target);
  out.push_back(accused.CommitLog());
  return out;
}

// ------------------------------------------------------------- Fleet ----

FleetScenario::FleetScenario(FleetScenarioConfig cfg) : cfg_(std::move(cfg)) {}

FleetScenario::~FleetScenario() = default;

void FleetScenario::Start() {
  if (started_) {
    throw std::logic_error("FleetScenario::Start: already started");
  }
  started_ = true;
  for (int i = 0; i < cfg_.num_games; i++) {
    GameScenarioConfig gc = cfg_.game;
    gc.run = cfg_.run;
    gc.num_players = cfg_.players_per_game;
    gc.seed = cfg_.seed * 7919 + static_cast<uint64_t>(i) + 1;
    gc.chaos = cfg_.chaos;
    auto game = std::make_unique<GameScenario>(gc);
    for (const auto& [where, cheat] : cfg_.cheats) {
      if (where.first == i) {
        game->SetCheat(where.second, cheat);
      }
    }
    game->Start();
    games_.push_back(std::move(game));
  }
  for (int i = 0; i < cfg_.num_kv; i++) {
    KvScenarioConfig kc = cfg_.kv;
    kc.run = cfg_.run;
    kc.seed = cfg_.seed * 104729 + static_cast<uint64_t>(i) + 1;
    kc.chaos = cfg_.chaos;
    auto kv = std::make_unique<KvScenario>(kc);
    kv->Start();
    kvs_.push_back(std::move(kv));
  }
}

void FleetScenario::SpillLogsTo(const std::string& base_dir) {
  if (!started_) {
    throw std::logic_error("FleetScenario::SpillLogsTo: call Start() first");
  }
  auto spill = [&](const NodeId& global, Avmm& node) {
    std::string dir = (std::filesystem::path(base_dir) / global).string();
    LogStoreOptions opts;
    if (cfg_.chaos != nullptr) {
      // Store faults are keyed on the *global* name, so a plan can break
      // one auditee's store without touching its world siblings.
      opts.fault_hook = cfg_.chaos->StoreHook(global);
    }
    auto store = LogStore::Open(dir, node.id(), opts);
    node.SpillTo(store.get());
    store_by_name_[global] = store.get();
    stores_.push_back(std::move(store));
  };
  for (int i = 0; i < cfg_.num_games; i++) {
    GameScenario& g = *games_[static_cast<size_t>(i)];
    std::string prefix = "g" + std::to_string(i) + "/";
    spill(prefix + "server", g.server());
    for (int p = 0; p < cfg_.players_per_game; p++) {
      spill(prefix + g.player_id(p), g.player(p));
    }
  }
  for (int i = 0; i < cfg_.num_kv; i++) {
    spill("kv" + std::to_string(i) + "/kvserver", kvs_[static_cast<size_t>(i)]->server());
  }
}

void FleetScenario::RunFor(SimTime duration) {
  for (auto& g : games_) {
    g->RunFor(duration);
  }
  for (auto& kv : kvs_) {
    kv->RunFor(duration);
  }
}

void FleetScenario::Finish() {
  for (auto& g : games_) {
    g->Finish();
  }
  for (auto& kv : kvs_) {
    kv->Finish();
  }
  for (auto& store : stores_) {
    store->Flush();
  }
}

std::vector<FleetScenario::AuditeeRef> FleetScenario::Auditees() {
  std::vector<AuditeeRef> out;
  auto store_for = [&](const NodeId& global) -> LogStore* {
    auto it = store_by_name_.find(global);
    return it == store_by_name_.end() ? nullptr : it->second;
  };
  for (int i = 0; i < cfg_.num_games; i++) {
    GameScenario* g = games_[static_cast<size_t>(i)].get();
    std::string prefix = "g" + std::to_string(i) + "/";
    AuditeeRef server;
    server.global_name = prefix + "server";
    server.local_name = "server";
    server.avmm = &g->server();
    server.registry = &g->registry();
    server.reference_image = &g->reference_server_image();
    server.store = store_for(server.global_name);
    server.collect_auths = [g] { return g->CollectAuths("server"); };
    out.push_back(std::move(server));
    for (int p = 0; p < cfg_.players_per_game; p++) {
      AuditeeRef player;
      player.global_name = prefix + g->player_id(p);
      player.local_name = g->player_id(p);
      player.avmm = &g->player(p);
      player.registry = &g->registry();
      player.reference_image = &g->reference_client_image();
      player.store = store_for(player.global_name);
      NodeId local = player.local_name;
      player.collect_auths = [g, local] { return g->CollectAuths(local); };
      out.push_back(std::move(player));
    }
  }
  for (int i = 0; i < cfg_.num_kv; i++) {
    KvScenario* kv = kvs_[static_cast<size_t>(i)].get();
    AuditeeRef server;
    server.global_name = "kv" + std::to_string(i) + "/kvserver";
    server.local_name = "kvserver";
    server.avmm = &kv->server();
    server.registry = &kv->registry();
    server.reference_image = &kv->reference_server_image();
    server.store = store_for(server.global_name);
    server.collect_auths = [kv] { return kv->CollectAuthsForServer(); };
    out.push_back(std::move(server));
  }
  return out;
}

}  // namespace avm
