#include "src/store/archive.h"

#include <cstring>

#include "src/compress/lzss.h"
#include "src/util/crc32.h"
#include "src/util/serde.h"

namespace avm {

namespace {

constexpr char kArchiveMagic[8] = {'A', 'V', 'M', 'A', 'R', 'C', 'H', '\n'};
constexpr char kArchiveFooterMagic[8] = {'A', 'V', 'M', 'A', 'F', 'T', '1', '\n'};

bool MagicAt(ByteView buf, size_t off, const char (&magic)[8]) {
  return buf.size() >= off + 8 && std::memcmp(buf.data() + off, magic, 8) == 0;
}

}  // namespace

ArchiveFooter ParseArchiveFooter(ByteView footer) {
  if (footer.size() != kArchiveFooterSize) {
    throw StoreError("archive footer truncated");
  }
  if (!MagicAt(footer, kArchiveFooterSize - 8, kArchiveFooterMagic)) {
    throw StoreError("bad archive footer magic");
  }
  uint32_t footer_crc = GetU32(footer, kArchiveFooterSize - 12);
  if (Crc32c(footer.subspan(0, kArchiveFooterSize - 12)) != footer_crc) {
    throw StoreError("archive footer CRC mismatch");
  }
  ArchiveFooter f;
  f.entry_count = GetU64(footer, 0);
  f.first_seq = GetU64(footer, 8);
  f.last_seq = GetU64(footer, 16);
  f.prior_hash = Hash256::FromBytes(footer.subspan(24, 32));
  f.chain_hash = Hash256::FromBytes(footer.subspan(56, 32));
  f.body_len = GetU64(footer, 88);
  f.index_offset = GetU64(footer, 96);
  f.body_crc = GetU32(footer, 104);
  f.format_version = GetU32(footer, 108);
  f.archived_watermark = GetU64(footer, 112);
  f.cumulative_entries = GetU64(footer, 120);
  f.node_hash = Hash256::FromBytes(footer.subspan(128, 32));
  if (f.format_version != kArchiveFormatVersion) {
    throw StoreError("archive format version " + std::to_string(f.format_version) +
                     " not understood");
  }
  if (f.first_seq == 0) {
    throw StoreError("archived segment: sequence numbers are 1-based");
  }
  if (f.first_seq == 1 && !f.prior_hash.IsZero()) {
    throw StoreError("archived segment: nonzero prior hash at seq 1");
  }
  if (f.last_seq + 1 - f.first_seq != f.entry_count) {
    throw StoreError("archived segment: entry count disagrees with seq range");
  }
  if (f.archived_watermark < f.last_seq || f.cumulative_entries < f.entry_count) {
    throw StoreError("archived segment: whole-store state behind the segment it frames");
  }
  return f;
}

ArchiveInfo ReadArchiveInfo(ByteView file) {
  if (file.size() < 8 + 4 + kArchiveFooterSize) {
    throw StoreError("archived segment truncated");
  }
  if (!MagicAt(file, 0, kArchiveMagic)) {
    throw StoreError("bad archived-segment magic");
  }
  size_t footer_at = file.size() - kArchiveFooterSize;
  ArchiveInfo a;
  a.footer = ParseArchiveFooter(file.subspan(footer_at));
  a.info.flags = GetU32(file, 8);
  a.info.entry_count = a.footer.entry_count;
  a.info.header.first_seq = a.footer.first_seq;
  a.info.last_seq = a.footer.last_seq;
  a.info.header.prior_hash = a.footer.prior_hash;
  a.info.chain_hash = a.footer.chain_hash;
  a.info.body_len = a.footer.body_len;
  a.info.body_offset = 8 + 4;
  uint64_t index_offset = a.footer.index_offset;
  if (index_offset < a.info.body_offset || index_offset > footer_at ||
      a.info.body_len != index_offset - a.info.body_offset) {
    throw StoreError("archived segment: body extents out of bounds");
  }
  if (footer_at - index_offset < 4) {
    throw StoreError("archived segment: index truncated");
  }
  uint32_t n = GetU32(file, index_offset);
  if ((footer_at - index_offset - 4) != static_cast<size_t>(n) * 16) {
    throw StoreError("archived segment: index extents out of bounds");
  }
  a.info.index.reserve(n);
  uint64_t prev_seq = 0;
  for (uint32_t i = 0; i < n; i++) {
    SparseIndexEntry ie;
    ie.seq = GetU64(file, index_offset + 4 + i * 16);
    ie.offset = GetU64(file, index_offset + 4 + i * 16 + 8);
    if (ie.seq < a.info.header.first_seq || ie.seq > a.info.last_seq || ie.seq <= prev_seq) {
      throw StoreError("archived segment: index entry out of range");
    }
    prev_seq = ie.seq;
    a.info.index.push_back(ie);
  }
  return a;
}

Bytes ReadArchivedRecords(ByteView file, const ArchiveInfo& info) {
  ByteView body = file.subspan(info.info.body_offset, info.info.body_len);
  if (Crc32c(body) != info.footer.body_crc) {
    throw StoreError("archived-segment body CRC mismatch");
  }
  if ((info.info.flags & kSealedFlagLzss) == 0) {
    return Bytes(body.begin(), body.end());
  }
  try {
    return LzssDecompress(body);
  } catch (const std::invalid_argument& e) {
    throw StoreError(std::string("archived-segment decompression failed: ") + e.what());
  }
}

Bytes EncodeArchivedSegment(ByteView sealed_file, uint64_t archived_watermark,
                            uint64_t cumulative_entries, const Hash256& node_hash) {
  // Validate the sealed image first; a corrupt segment must never be
  // laundered into an archive with fresh CRCs.
  SealedInfo sealed = ReadSealedInfo(sealed_file);
  size_t sealed_footer_at = sealed_file.size() - kSegmentFooterSize;
  uint32_t body_crc = GetU32(sealed_file, sealed_footer_at + 104);
  ByteView body = sealed_file.subspan(sealed.body_offset, sealed.body_len);
  if (Crc32c(body) != body_crc) {
    throw StoreError("refusing to archive a sealed segment with a corrupt body");
  }

  Writer w;
  w.Raw(ByteView(reinterpret_cast<const uint8_t*>(kArchiveMagic), 8));
  w.U32(sealed.flags);
  w.Raw(body);  // Bit-for-bit; never recompressed.
  size_t index_offset = w.bytes().size();
  // Index block copied verbatim: [index_offset of sealed, its footer).
  w.Raw(sealed_file.subspan(sealed.body_offset + sealed.body_len,
                            sealed_footer_at - (sealed.body_offset + sealed.body_len)));
  size_t footer_at = w.bytes().size();
  w.U64(sealed.entry_count);
  w.U64(sealed.header.first_seq);
  w.U64(sealed.last_seq);
  w.Raw(sealed.header.prior_hash.view());
  w.Raw(sealed.chain_hash.view());
  w.U64(sealed.body_len);
  w.U64(index_offset);
  w.U32(body_crc);
  w.U32(kArchiveFormatVersion);
  w.U64(archived_watermark);
  w.U64(cumulative_entries);
  w.Raw(node_hash.view());
  Bytes out = w.Take();
  PutU32(out, Crc32c(ByteView(out).subspan(footer_at, out.size() - footer_at)));
  Append(out, ByteView(reinterpret_cast<const uint8_t*>(kArchiveFooterMagic), 8));
  return out;
}

}  // namespace avm
