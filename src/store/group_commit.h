// Group-commit (batched fsync) policy for the hot tier of the log
// store.
//
// The paper's protocol makes an authenticator a_i evidence the moment
// it leaves the machine; storage engine v2 makes the matching promise
// about persistence: an entry is *committed* only once an fsync has
// covered it, and the store publishes that boundary as a monotone
// durability watermark (LogStore::DurableSeq). fsyncing every append
// would put a disk round-trip on the recording hot path, so the hot
// tier batches: a flush is forced when any of {bytes, entries,
// max_delay} is exceeded, and everything appended since the previous
// flush becomes durable together — classic group commit, with the
// watermark advancing to the last sequence number the batch covered.
//
// GroupCommitBatch is the bookkeeping only (what is unflushed, and is a
// flush due); LogStore owns the actual fflush/fsync and the watermark.
// It is not thread-safe by itself: LogStore mutates it under its state
// mutex.
#ifndef SRC_STORE_GROUP_COMMIT_H_
#define SRC_STORE_GROUP_COMMIT_H_

#include <cstddef>
#include <cstdint>

#include "src/util/clock.h"

namespace avm {

struct GroupCommitPolicy {
  // Force a flush once this many record-stream bytes are unflushed.
  size_t max_bytes = 256 * 1024;
  // ... or this many entries.
  size_t max_entries = 256;
  // ... or this many milliseconds of wall time since the oldest
  // unflushed entry (enforced by the store's background flusher thread;
  // 0 disables the timer, so flushes happen only on the byte/entry
  // thresholds and explicit Flush() calls — what deterministic tests
  // want).
  uint32_t max_delay_ms = 20;
};

// Tracks the unflushed window of the active segment between group
// commits.
class GroupCommitBatch {
 public:
  void Add(size_t record_bytes, uint64_t seq) {
    if (entries_ == 0) {
      oldest_.Reset();
    }
    bytes_ += record_bytes;
    entries_++;
    last_seq_ = seq;
  }

  // True when the byte/entry thresholds force a flush right now (the
  // appending thread checks this after every record).
  bool ThresholdDue(const GroupCommitPolicy& p) const {
    return entries_ > 0 && (bytes_ >= p.max_bytes || entries_ >= p.max_entries);
  }

  // True when the oldest unflushed entry has waited past max_delay (the
  // background flusher checks this on its timer).
  bool DelayDue(const GroupCommitPolicy& p) const {
    return entries_ > 0 && p.max_delay_ms > 0 &&
           oldest_.ElapsedMicros() >= uint64_t{p.max_delay_ms} * 1000;
  }

  bool Empty() const { return entries_ == 0; }
  uint64_t last_seq() const { return last_seq_; }
  size_t bytes() const { return bytes_; }
  size_t entries() const { return entries_; }

  // Called once the batch's bytes are verifiably flushed; the caller
  // then advances the durability watermark to the captured last_seq.
  void Clear() {
    bytes_ = 0;
    entries_ = 0;
    last_seq_ = 0;
  }

 private:
  size_t bytes_ = 0;
  size_t entries_ = 0;
  uint64_t last_seq_ = 0;
  WallTimer oldest_;  // Age of the oldest unflushed entry.
};

}  // namespace avm

#endif  // SRC_STORE_GROUP_COMMIT_H_
