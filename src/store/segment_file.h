// On-disk formats of the segmented log store.
//
// An *active* segment is a fixed header plus a stream of CRC-framed
// records, one per log entry, appended as the machine executes:
//
//   header  := magic8 "AVMSEG1\n" | u64 first_seq | prior_hash (32)
//   record  := u32 payload_len | u32 crc32c(payload) | payload
//   payload := u64 seq | u8 type | blob content | hash (32)
//
// Sealing compresses the record stream with the §6.4 LZSS stage and
// appends a sparse seq->offset index plus a fixed-size footer, so a
// reader can find the chain state at the segment boundary (and locate
// any entry) from the last 128 bytes of the file, without decompressing
// anything but the one segment it actually needs:
//
//   sealed  := magic8 "AVMSEAL\n" | u32 flags | body | index | footer
//   body    := LZSS(record stream)            (flags bit 0: compressed)
//   index   := u32 n | n * (u64 seq, u64 offset into record stream)
//   footer  := u64 entry_count | u64 first_seq | u64 last_seq
//            | prior_hash (32) | chain_hash (32)
//            | u64 body_len | u64 index_offset
//            | u32 body_crc | u32 footer_crc | magic8 "AVMFTR1\n"
//
// Everything here operates on in-memory buffers (a segment is at most
// the seal threshold, so whole-file reads are bounded); LogStore owns
// the actual file I/O. All parsers treat input as untrusted and throw
// StoreError instead of reading out of bounds.
#ifndef SRC_STORE_SEGMENT_FILE_H_
#define SRC_STORE_SEGMENT_FILE_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/tel/log.h"
#include "src/util/bytes.h"

namespace avm {

class StoreError : public std::runtime_error {
 public:
  explicit StoreError(const std::string& what) : std::runtime_error(what) {}
};

constexpr size_t kSegmentHeaderSize = 8 + 8 + 32;
constexpr size_t kSegmentFooterSize = 8 * 3 + 32 * 2 + 8 * 2 + 4 + 4 + 8;
constexpr uint32_t kSealedFlagLzss = 1u << 0;

struct SegmentHeader {
  uint64_t first_seq = 1;
  Hash256 prior_hash;  // h_{first_seq - 1}; Zero when first_seq == 1.
};

Bytes EncodeSegmentHeader(const SegmentHeader& h);
SegmentHeader DecodeSegmentHeader(ByteView file);

// One sparse-index waypoint: the record for `seq` starts at `offset`
// bytes into the segment's (uncompressed) record stream.
struct SparseIndexEntry {
  uint64_t seq = 0;
  uint64_t offset = 0;
};

// Appends the CRC-framed record for `e` to `out`.
void EncodeRecord(const LogEntry& e, Bytes& out);

// Parses the record starting at `*offset` and advances `*offset` past
// it. Throws StoreError on truncation, CRC mismatch or a malformed
// payload.
LogEntry DecodeRecordAt(ByteView stream, size_t* offset);

// Result of scanning an active segment file for recovery: everything up
// to `valid_bytes` of the record stream parsed cleanly; if `torn`, the
// bytes after that point are a torn or corrupt tail and must be
// truncated (standard write-ahead-log recovery: nothing after the first
// bad record can be trusted to be record-aligned).
struct ActiveScan {
  SegmentHeader header;
  uint64_t entry_count = 0;
  uint64_t last_seq = 0;  // == first_seq - 1 when the segment is empty.
  Hash256 chain_hash;     // Hash of the last entry (prior hash if empty).
  std::vector<SparseIndexEntry> index;  // Rebuilt, one every `index_every`.
  size_t valid_bytes = 0;               // Record-stream bytes, sans header.
  bool torn = false;
};

ActiveScan ScanActiveSegment(ByteView file, size_t index_every);

// Builds a sealed segment file image from an active segment's record
// stream and the metadata the writer tracked for it.
Bytes EncodeSealedSegment(const SegmentHeader& header, ByteView records,
                          const std::vector<SparseIndexEntry>& index, uint64_t entry_count,
                          uint64_t last_seq, const Hash256& chain_hash, bool compress);

// The fixed-size footer alone. Recovery reads just the tail of each
// sealed file (plus the leading magic) instead of the whole segment, so
// opening an epoch-scale store costs O(segments), not O(bytes).
struct SealedFooter {
  uint64_t entry_count = 0;
  uint64_t first_seq = 0;
  uint64_t last_seq = 0;
  Hash256 prior_hash;
  Hash256 chain_hash;
  uint64_t body_len = 0;
  uint64_t index_offset = 0;
  uint32_t body_crc = 0;
};

// Parses exactly kSegmentFooterSize bytes (magic + CRC validated).
SealedFooter ParseSealedFooter(ByteView footer);

// Footer + index of a sealed file (cheap: no body decompression).
struct SealedInfo {
  SegmentHeader header;
  uint64_t entry_count = 0;
  uint64_t last_seq = 0;
  Hash256 chain_hash;
  uint32_t flags = 0;
  size_t body_offset = 0;  // Into the file image.
  size_t body_len = 0;     // Compressed length.
  std::vector<SparseIndexEntry> index;
};

SealedInfo ReadSealedInfo(ByteView file);

// Decompresses and CRC-checks the record stream of a sealed file.
Bytes ReadSealedRecords(ByteView file, const SealedInfo& info);

}  // namespace avm

#endif  // SRC_STORE_SEGMENT_FILE_H_
