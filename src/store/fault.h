// Typed fault-injection seam for the storage write path.
//
// PR 6's `test_hook` kill points give crash *images* (a callback copies
// the directory and the test reopens the copy); this header is the
// complementary in-process seam: a `fault_hook` on LogStoreOptions is
// consulted at the named write-path sites and can make the site fail
// the way real storage fails — a transient IO error, a short write, a
// failed durability barrier, or a simulated process death that poisons
// the store until it is reopened. src/chaos drives the hook from a
// declarative FaultPlan; the store only defines the vocabulary so it
// stays decoupled from the chaos engine.
//
// Kept in its own header so src/chaos can name these types without
// pulling in the whole LogStore interface.
#ifndef SRC_STORE_FAULT_H_
#define SRC_STORE_FAULT_H_

#include <cstdint>

namespace avm {

// Where on the write path the hook is being consulted.
//  "append-write"  Append(), before the record reaches the file; `seq`
//                  is the entry being appended.
//  "group-commit"  GroupCommitLocked()/Flush(), before the durability
//                  barrier; `seq` is the last seq the barrier covers.
//  "roll"          RollActiveLocked(), before the rolled segment's
//                  final flush+fsync; `seq` is the segment's last seq.
//  "aux-write"     WriteAuxFileBatched(), before the atomic rename
//                  (checkpoint writes ride this path); `seq` is 0.
//  "aux-sync"      DrainAuxLocked(), before batched aux fsyncs; 0.
struct StoreFaultSite {
  const char* point = "";
  uint64_t seq = 0;
};

enum class StoreFaultAction : uint8_t {
  kNone = 0,
  // The write reports failure without touching the file; the append
  // rolls back to the previous record boundary and throws StoreError.
  // Transient: a retried append succeeds.
  kIoError,
  // Half the record reaches the file before the failure; the append
  // truncates back to the record boundary and throws. Also transient.
  kShortWrite,
  // The durability barrier (fflush/fsync) fails. Matches the kernel's
  // contract after a failed fsync: the store is poisoned (write_failed_)
  // and refuses further writes until reopened, when recovery re-scans
  // from disk.
  kFsyncFail,
  // Simulated process death mid-write: poison + throw, so everything
  // not covered by the durability watermark may be lost. Reopening the
  // directory runs crash recovery, the same path the kill-point tests
  // exercise with byte-exact images.
  kCrash,
};

}  // namespace avm

#endif  // SRC_STORE_FAULT_H_
