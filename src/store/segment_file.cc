#include "src/store/segment_file.h"

#include <cstring>

#include "src/compress/lzss.h"
#include "src/util/crc32.h"
#include "src/util/serde.h"

namespace avm {

namespace {

constexpr char kHeaderMagic[8] = {'A', 'V', 'M', 'S', 'E', 'G', '1', '\n'};
constexpr char kSealedMagic[8] = {'A', 'V', 'M', 'S', 'E', 'A', 'L', '\n'};
constexpr char kFooterMagic[8] = {'A', 'V', 'M', 'F', 'T', 'R', '1', '\n'};

bool MagicAt(ByteView buf, size_t off, const char (&magic)[8]) {
  return buf.size() >= off + 8 && std::memcmp(buf.data() + off, magic, 8) == 0;
}

}  // namespace

Bytes EncodeSegmentHeader(const SegmentHeader& h) {
  Writer w;
  w.Raw(ByteView(reinterpret_cast<const uint8_t*>(kHeaderMagic), 8));
  w.U64(h.first_seq);
  w.Raw(h.prior_hash.view());
  return w.Take();
}

SegmentHeader DecodeSegmentHeader(ByteView file) {
  if (file.size() < kSegmentHeaderSize) {
    throw StoreError("segment header truncated");
  }
  if (!MagicAt(file, 0, kHeaderMagic)) {
    throw StoreError("bad segment magic");
  }
  SegmentHeader h;
  h.first_seq = GetU64(file, 8);
  h.prior_hash = Hash256::FromBytes(file.subspan(16, 32));
  if (h.first_seq == 0) {
    throw StoreError("segment header: sequence numbers are 1-based");
  }
  if (h.first_seq == 1 && !h.prior_hash.IsZero()) {
    throw StoreError("segment header: nonzero prior hash at seq 1");
  }
  return h;
}

void EncodeRecord(const LogEntry& e, Bytes& out) {
  Writer w;
  w.U64(e.seq);
  w.U8(static_cast<uint8_t>(e.type));
  w.Blob(e.content);
  w.Raw(e.hash.view());
  Bytes payload = w.Take();
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, Crc32c(payload));
  Append(out, payload);
}

LogEntry DecodeRecordAt(ByteView stream, size_t* offset) {
  if (stream.size() - *offset < 8) {
    throw StoreError("record frame truncated");
  }
  uint32_t len = GetU32(stream, *offset);
  uint32_t crc = GetU32(stream, *offset + 4);
  if (stream.size() - *offset - 8 < len) {
    throw StoreError("record payload truncated");
  }
  ByteView payload = stream.subspan(*offset + 8, len);
  if (Crc32c(payload) != crc) {
    throw StoreError("record CRC mismatch");
  }
  LogEntry e;
  try {
    Reader r(payload);
    e.seq = r.U64();
    uint8_t t = r.U8();
    if (t < 1 || t > 8) {
      throw StoreError("record: bad entry type");
    }
    e.type = static_cast<EntryType>(t);
    e.content = r.Blob();
    e.hash = Hash256::FromBytes(r.Raw(32));
    r.ExpectEnd();
  } catch (const SerdeError& err) {
    // A payload that passed its CRC but does not parse is corruption the
    // CRC cannot have caused; surface it as a store error all the same.
    throw StoreError(std::string("record payload malformed: ") + err.what());
  }
  if (e.seq == 0) {
    throw StoreError("record: sequence numbers are 1-based");
  }
  *offset += 8 + len;
  return e;
}

ActiveScan ScanActiveSegment(ByteView file, size_t index_every) {
  ActiveScan scan;
  scan.header = DecodeSegmentHeader(file);
  scan.last_seq = scan.header.first_seq - 1;
  scan.chain_hash = scan.header.prior_hash;
  if (index_every == 0) {
    index_every = 1;
  }
  ByteView stream = file.subspan(kSegmentHeaderSize);
  size_t offset = 0;
  while (offset < stream.size()) {
    size_t record_at = offset;
    LogEntry e;
    try {
      e = DecodeRecordAt(stream, &offset);
    } catch (const StoreError&) {
      scan.torn = true;
      break;
    }
    if (e.seq != scan.last_seq + 1) {
      // A record that decodes but skips ahead is not a torn write; still,
      // nothing after it can be trusted, so recovery cuts here too.
      scan.torn = true;
      break;
    }
    if (scan.entry_count % index_every == 0) {
      scan.index.push_back({e.seq, record_at});
    }
    scan.entry_count++;
    scan.last_seq = e.seq;
    scan.chain_hash = e.hash;
    scan.valid_bytes = offset;
  }
  return scan;
}

Bytes EncodeSealedSegment(const SegmentHeader& header, ByteView records,
                          const std::vector<SparseIndexEntry>& index, uint64_t entry_count,
                          uint64_t last_seq, const Hash256& chain_hash, bool compress) {
  Writer w;
  w.Raw(ByteView(reinterpret_cast<const uint8_t*>(kSealedMagic), 8));
  w.U32(compress ? kSealedFlagLzss : 0);
  Bytes body = compress ? LzssCompress(records) : Bytes(records.begin(), records.end());
  w.Raw(body);
  size_t index_offset = w.bytes().size();
  w.U32(static_cast<uint32_t>(index.size()));
  for (const SparseIndexEntry& ie : index) {
    w.U64(ie.seq);
    w.U64(ie.offset);
  }
  // Footer (fixed size, parsed back-to-front).
  size_t footer_at = w.bytes().size();
  w.U64(entry_count);
  w.U64(header.first_seq);
  w.U64(last_seq);
  w.Raw(header.prior_hash.view());
  w.Raw(chain_hash.view());
  w.U64(body.size());
  w.U64(index_offset);
  w.U32(Crc32c(body));
  Bytes out = w.Take();
  PutU32(out, Crc32c(ByteView(out).subspan(footer_at, out.size() - footer_at)));
  Append(out, ByteView(reinterpret_cast<const uint8_t*>(kFooterMagic), 8));
  return out;
}

SealedFooter ParseSealedFooter(ByteView footer) {
  if (footer.size() != kSegmentFooterSize) {
    throw StoreError("sealed-segment footer truncated");
  }
  if (!MagicAt(footer, kSegmentFooterSize - 8, kFooterMagic)) {
    throw StoreError("bad sealed-segment footer magic");
  }
  uint32_t footer_crc = GetU32(footer, kSegmentFooterSize - 12);
  if (Crc32c(footer.subspan(0, kSegmentFooterSize - 12)) != footer_crc) {
    throw StoreError("sealed-segment footer CRC mismatch");
  }
  SealedFooter f;
  f.entry_count = GetU64(footer, 0);
  f.first_seq = GetU64(footer, 8);
  f.last_seq = GetU64(footer, 16);
  f.prior_hash = Hash256::FromBytes(footer.subspan(24, 32));
  f.chain_hash = Hash256::FromBytes(footer.subspan(56, 32));
  f.body_len = GetU64(footer, 88);
  f.index_offset = GetU64(footer, 96);
  f.body_crc = GetU32(footer, 104);
  if (f.first_seq == 0) {
    throw StoreError("sealed segment: sequence numbers are 1-based");
  }
  if (f.first_seq == 1 && !f.prior_hash.IsZero()) {
    throw StoreError("sealed segment: nonzero prior hash at seq 1");
  }
  if (f.last_seq + 1 - f.first_seq != f.entry_count) {
    throw StoreError("sealed segment: entry count disagrees with seq range");
  }
  return f;
}

SealedInfo ReadSealedInfo(ByteView file) {
  if (file.size() < 8 + 4 + kSegmentFooterSize) {
    throw StoreError("sealed segment truncated");
  }
  if (!MagicAt(file, 0, kSealedMagic)) {
    throw StoreError("bad sealed-segment magic");
  }
  size_t footer_at = file.size() - kSegmentFooterSize;
  SealedFooter f = ParseSealedFooter(file.subspan(footer_at));
  SealedInfo info;
  info.flags = GetU32(file, 8);
  info.entry_count = f.entry_count;
  info.header.first_seq = f.first_seq;
  info.last_seq = f.last_seq;
  info.header.prior_hash = f.prior_hash;
  info.chain_hash = f.chain_hash;
  info.body_len = f.body_len;
  uint64_t index_offset = f.index_offset;
  info.body_offset = 8 + 4;
  if (index_offset < info.body_offset || index_offset > footer_at ||
      info.body_len != index_offset - info.body_offset) {
    throw StoreError("sealed segment: body extents out of bounds");
  }
  // Index: u32 count then (u64, u64) pairs, ending exactly at the footer.
  if (footer_at - index_offset < 4) {
    throw StoreError("sealed segment: index truncated");
  }
  uint32_t n = GetU32(file, index_offset);
  if ((footer_at - index_offset - 4) != static_cast<size_t>(n) * 16) {
    throw StoreError("sealed segment: index extents out of bounds");
  }
  info.index.reserve(n);
  uint64_t prev_seq = 0;
  for (uint32_t i = 0; i < n; i++) {
    SparseIndexEntry ie;
    ie.seq = GetU64(file, index_offset + 4 + i * 16);
    ie.offset = GetU64(file, index_offset + 4 + i * 16 + 8);
    if (ie.seq < info.header.first_seq || ie.seq > info.last_seq || ie.seq <= prev_seq) {
      throw StoreError("sealed segment: index entry out of range");
    }
    prev_seq = ie.seq;
    info.index.push_back(ie);
  }
  return info;
}

Bytes ReadSealedRecords(ByteView file, const SealedInfo& info) {
  ByteView body = file.subspan(info.body_offset, info.body_len);
  size_t footer_at = file.size() - kSegmentFooterSize;
  uint32_t body_crc = GetU32(file, footer_at + 104);
  if (Crc32c(body) != body_crc) {
    throw StoreError("sealed-segment body CRC mismatch");
  }
  if ((info.flags & kSealedFlagLzss) == 0) {
    return Bytes(body.begin(), body.end());
  }
  try {
    return LzssDecompress(body);
  } catch (const std::invalid_argument& e) {
    throw StoreError(std::string("sealed-segment decompression failed: ") + e.what());
  }
}

}  // namespace avm
