// Cold archival tier of the segmented log store.
//
// Sealed segments hold exactly what an auditor needs to replay one
// window, but their footer only describes that window. The archival
// tier re-frames a sealed segment — body and sparse index copied
// verbatim, never recompressed — under a *wider* footer that also binds
// whole-store state at the moment of archival:
//
//   arch   := magic8 "AVMARCH\n" | u32 flags | body | index | footer
//   footer := u64 entry_count | u64 first_seq | u64 last_seq
//           | prior_hash (32) | chain_hash (32)
//           | u64 body_len | u64 index_offset | u32 body_crc
//           | u32 format_version | u64 archived_watermark
//           | u64 cumulative_entries | node_hash (32)
//           | u32 footer_crc | magic8 "AVMAFT1\n"
//
// `archived_watermark` is the store's durability watermark when the
// segment was archived (always >= last_seq: only durable segments are
// ever promoted), `cumulative_entries` counts every log entry from
// genesis through last_seq, and `node_hash` is SHA-256 of the node id
// from store.meta, so an archive file carried off-machine still names
// whose log it is. Like segment_file.h, everything here works on
// in-memory images and throws StoreError on untrusted input; LogStore
// owns the file I/O and the promotion policy (archive_keep_sealed).
#ifndef SRC_STORE_ARCHIVE_H_
#define SRC_STORE_ARCHIVE_H_

#include <cstdint>

#include "src/store/segment_file.h"
#include "src/util/bytes.h"

namespace avm {

constexpr uint32_t kArchiveFormatVersion = 2;
constexpr size_t kArchiveFooterSize = 8 * 3 + 32 * 2 + 8 * 2 + 4 + 4 + 8 + 8 + 32 + 4 + 8;

// The wider chain-state footer, parsed from the last kArchiveFooterSize
// bytes of an archive file (magic + CRC validated).
struct ArchiveFooter {
  // Per-segment chain state, as in SealedFooter.
  uint64_t entry_count = 0;
  uint64_t first_seq = 0;
  uint64_t last_seq = 0;
  Hash256 prior_hash;
  Hash256 chain_hash;
  uint64_t body_len = 0;
  uint64_t index_offset = 0;
  uint32_t body_crc = 0;
  // Whole-store state at archival time.
  uint32_t format_version = kArchiveFormatVersion;
  uint64_t archived_watermark = 0;
  uint64_t cumulative_entries = 0;
  Hash256 node_hash;
};

ArchiveFooter ParseArchiveFooter(ByteView footer);

// Footer + index of an archive file (no body decompression). `info`
// carries the same fields a SealedInfo would, so segment readers treat
// both tiers identically past the open.
struct ArchiveInfo {
  SealedInfo info;
  ArchiveFooter footer;
};

ArchiveInfo ReadArchiveInfo(ByteView file);

// CRC-checks and (if compressed) decompresses the record stream.
Bytes ReadArchivedRecords(ByteView file, const ArchiveInfo& info);

// Re-frames a complete sealed-segment file image as an archive image.
// The compressed body and sparse index are copied bit-for-bit; only the
// framing changes, so archival never touches record contents.
Bytes EncodeArchivedSegment(ByteView sealed_file, uint64_t archived_watermark,
                            uint64_t cumulative_entries, const Hash256& node_hash);

}  // namespace avm

#endif  // SRC_STORE_ARCHIVE_H_
