// Durable, segmented, crash-recoverable storage for the tamper-evident
// log. The paper's AVMM log grows without bound (~2.6 MB/min, Figure 3)
// and must survive until an auditor fetches it; keeping it in the
// serving process's heap caps both uptime and auditability. LogStore
// isolates that per-tenant state behind a storage layer: entries are
// appended to an active segment file with CRC framing, segments roll at
// a byte threshold and are sealed with the §6.4 LZSS stage plus a
// footer carrying the chain state at the boundary, and a sparse index
// lets extraction and streaming audits touch only the segments they
// need.
//
// Layering: LogStore is a LogSink (TamperEvidentLog tees entries into
// it as they are appended) and a SegmentSource (the Auditor reads
// ranges back out, from this process or a later one via Open on the
// same directory). It stores what the chain layer produced and verifies
// only framing (CRCs, seq continuity, boundary hashes); tamper
// detection remains the auditor's job.
//
// Threading: writes (Append/Seal/Flush) are single-threaded and must
// not overlap reads -- record first, audit after, as the recorder does.
// Concurrent const readers (Extract/Scan/Cursor, e.g. SpotCheckMany's
// worker pool) are safe with each other: each opens its own file
// handles, and the shared stdio flush is serialized internally.
#ifndef SRC_STORE_LOG_STORE_H_
#define SRC_STORE_LOG_STORE_H_

#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/store/segment_file.h"
#include "src/tel/log.h"
#include "src/tel/segment_source.h"

namespace avm {

struct LogStoreOptions {
  // Roll and seal the active segment once its record stream reaches
  // this many bytes. ~1 MiB keeps per-audit memory bounded while
  // amortizing the LZSS pass over many entries.
  size_t seal_threshold_bytes = 1u << 20;
  // Sparse-index granularity: one waypoint every N entries.
  size_t index_every = 64;
  // LZSS-compress sealed segments (§6.4). Off stores records verbatim.
  bool compress_sealed = true;
  // fsync segment files on Flush() and after sealing. Off is fine for
  // tests and benches that do not measure durability.
  bool sync = true;
};

class SegmentCursor;

class LogStore final : public LogSink, public SegmentSource {
 public:
  // Opens (creating if needed) the store in `dir`. `node` names the
  // machine whose log this is; it is persisted in `store.meta` on first
  // open and must match on subsequent opens (empty = take it from the
  // meta file, for auditors that only know the directory). Recovery
  // replays segment headers/footers, re-scans the one active segment,
  // and truncates a torn tail record.
  static std::unique_ptr<LogStore> Open(const std::string& dir, const NodeId& node,
                                        LogStoreOptions opts = {});
  static std::unique_ptr<LogStore> Open(const std::string& dir, LogStoreOptions opts = {});

  ~LogStore() override;
  LogStore(const LogStore&) = delete;
  LogStore& operator=(const LogStore&) = delete;

  // LogSink: appends one entry (seq must be LastSeq() + 1) to the
  // active segment, rolling and sealing when the threshold is reached.
  void Append(const LogEntry& e) override;
  void Flush() override;
  uint64_t SinkLastSeq() const override { return last_seq_; }
  std::optional<Hash256> SinkLastHash() const override {
    return last_seq_ == 0 ? std::nullopt : std::optional<Hash256>(last_hash_);
  }

  // Seals the active segment now regardless of size (e.g. at shutdown).
  void Seal();

  // SegmentSource.
  const NodeId& node() const override { return node_; }
  uint64_t LastSeq() const override { return last_seq_; }
  LogSegment Extract(uint64_t from_seq, uint64_t to_seq) const override;
  void Scan(uint64_t from_seq, uint64_t to_seq, const EntryVisitor& visit) const override;

  // Streaming reader over [from_seq, to_seq]; holds one segment's
  // entries at a time.
  SegmentCursor Cursor(uint64_t from_seq, uint64_t to_seq) const;

  Hash256 LastHash() const { return last_hash_; }
  size_t SegmentCount() const { return segments_.size(); }
  size_t SealedCount() const;
  // Total bytes currently on disk (Figure 3's metric, but durable).
  uint64_t DiskBytes() const;
  // True if Open() found and truncated a torn tail record.
  bool RecoveredTornTail() const { return recovered_torn_tail_; }
  const std::string& dir() const { return dir_; }
  const LogStoreOptions& options() const { return opts_; }

  // Atomic (tmp + rename, optionally fsync'd) small-file IO for
  // auxiliary records kept alongside the segments — audit checkpoints
  // (src/audit/checkpoint) persist through these. A write interrupted
  // by a crash leaves only a "*.tmp", which Recover() removes; aux
  // files must not collide with segment names ("seg-*") and are
  // otherwise ignored by recovery.
  static void WriteAuxFile(const std::string& path, ByteView data, bool sync);
  // nullopt when the file does not exist; throws StoreError on a file
  // that exists but cannot be read.
  static std::optional<Bytes> ReadAuxFile(const std::string& path);

 private:
  friend class SegmentCursor;

  struct SegmentState {
    std::string path;
    bool sealed = false;
    uint64_t first_seq = 0;
    uint64_t last_seq = 0;  // first_seq - 1 when empty.
    Hash256 prior_hash;
    Hash256 chain_hash;
  };

  LogStore(std::string dir, NodeId node, LogStoreOptions opts);
  void Recover();
  void StartSegment();
  void CloseActiveFile();
  void SyncActiveFile() const;
  const SegmentState* SegmentContaining(uint64_t seq) const;
  // Reads one entry back from the store (used for prior hashes).
  LogEntry ReadEntry(uint64_t seq) const;

  std::string dir_;
  NodeId node_;
  LogStoreOptions opts_;

  std::vector<SegmentState> segments_;  // Ascending; active is last if open.
  uint64_t last_seq_ = 0;
  Hash256 last_hash_;
  bool recovered_torn_tail_ = false;
  // Set when a failed write could not be rolled back to a record
  // boundary; the store refuses further appends (reopen to recover).
  bool write_failed_ = false;

  // Active (unsealed) segment writer state.
  std::FILE* active_file_ = nullptr;
  size_t active_stream_bytes_ = 0;
  uint64_t active_entry_count_ = 0;
  std::vector<SparseIndexEntry> active_index_;

  // Serializes the stdio flush that concurrent const readers perform
  // before opening the active file. This does NOT make writes safe to
  // run concurrently with reads (see the threading note above).
  mutable std::mutex io_mu_;
};

// Streams entries of one [from, to] range, loading one segment's record
// stream at a time (memory stays bounded by the seal threshold no
// matter how large the whole log is).
class SegmentCursor {
 public:
  // The entry the cursor is positioned on, or nullptr when exhausted.
  // The pointer is invalidated by the next call to Next().
  const LogEntry* Next();

  // h_{from-1}: lets chain verification start at the cursor's first
  // entry without any earlier log data.
  const Hash256& prior_hash() const { return prior_hash_; }

 private:
  friend class LogStore;

  struct SegRef {
    std::string path;
    bool sealed = false;
    uint64_t first_seq = 0;
  };

  SegmentCursor(std::vector<SegRef> segs, uint64_t from_seq, uint64_t to_seq,
                Hash256 prior_hash);
  bool LoadNextSegment();

  std::vector<SegRef> segs_;
  size_t next_seg_ = 0;
  uint64_t from_seq_ = 0;
  uint64_t to_seq_ = 0;
  uint64_t next_seq_ = 0;
  Hash256 prior_hash_;
  Bytes records_;      // Current segment's record stream.
  size_t offset_ = 0;  // Position within records_.
  LogEntry current_;
  bool done_ = false;
};

}  // namespace avm

#endif  // SRC_STORE_LOG_STORE_H_
