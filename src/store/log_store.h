// Durable, segmented, crash-recoverable storage for the tamper-evident
// log. The paper's AVMM log grows without bound (~2.6 MB/min, Figure 3)
// and must survive until an auditor fetches it; keeping it in the
// serving process's heap caps both uptime and auditability. LogStore
// isolates that per-tenant state behind a storage layer, organized as
// three tiers with background promotion between them:
//
//   hot (seg-*.log)      append-only, CRC-framed records, group commit:
//                        fsyncs are batched under a {bytes, entries,
//                        max_delay} policy instead of per append.
//   sealed (seg-*.seal)  rolled segments, LZSS-compressed (§6.4) with a
//                        sparse index and a chain-state footer; built
//                        by a background sealer pool so compression
//                        never stalls the recording thread.
//   archival (seg-*.arch) cold segments past `archive_keep_sealed`,
//                        re-framed (never recompressed) under the wider
//                        whole-store footer of src/store/archive.h.
//
// The store publishes a monotone *durability watermark*
// (DurableSeq()): the highest sequence number whose group-commit
// window has been flushed — every entry at or below it survives a
// crash. The authenticator protocol cites this watermark
// (RunConfig::durable_commit) to avoid releasing evidence for entries
// that could still be lost.
//
// Layering: LogStore is a LogSink (TamperEvidentLog tees entries into
// it as they are appended) and a SegmentSource (the Auditor reads
// ranges back out, from this process or a later one via Open on the
// same directory). It stores what the chain layer produced and verifies
// only framing (CRCs, seq continuity, boundary hashes); tamper
// detection remains the auditor's job.
//
// Threading contract (v2):
//  - Writes (Append/Seal/Flush/WriteAuxFileBatched) take one logical
//    writer: the recording thread. Two threads must not interleave
//    Append calls, but the writer MAY now overlap reads and the
//    store's own background threads.
//  - Reads (Extract/Scan/Cursor/ReadEntry) are safe from any thread,
//    concurrently with the writer, with each other, and with segment
//    promotion: readers snapshot per-segment state under the store
//    mutex and re-resolve if a file is promoted out from under them
//    mid-read, so a segment being compressed still streams
//    bit-for-bit.
//  - Watermark accessors (DurableSeq/LastSeq/SinkLastSeq) are lock-free
//    atomics, callable from any thread (the async signer polls them).
//  - Background threads: a sealer/archiver pool of
//    `sealer_threads` workers (0 = promote inline on the rolling
//    thread, the deterministic v1 behavior) and, when
//    group_commit.max_delay_ms > 0, a flusher that enforces the delay
//    bound. Background failures poison the store and surface as
//    StoreError from the next write. Seal() is the shutdown barrier:
//    it rolls the active segment and drains every pending promotion.
#ifndef SRC_STORE_LOG_STORE_H_
#define SRC_STORE_LOG_STORE_H_

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/store/fault.h"
#include "src/store/group_commit.h"
#include "src/store/segment_file.h"
#include "src/tel/log.h"
#include "src/tel/segment_source.h"
#include "src/util/threadpool.h"

namespace avm {

struct LogStoreOptions {
  // Roll the active segment once its record stream reaches this many
  // bytes. ~1 MiB keeps per-audit memory bounded while amortizing the
  // LZSS pass over many entries.
  size_t seal_threshold_bytes = 1u << 20;
  // Sparse-index granularity: one waypoint every N entries.
  size_t index_every = 64;
  // LZSS-compress sealed segments (§6.4). Off stores records verbatim.
  bool compress_sealed = true;
  // fsync segment files at group commits and after sealing. Off is fine
  // for tests and benches that do not measure durability (the watermark
  // then advances on fflush, the usual test surrogate).
  bool sync = true;
  // Background sealer/compressor/archiver workers. 0 promotes inline on
  // the thread that rolled the segment — bit-for-bit the synchronous v1
  // write path, and what deterministic crash tests use.
  unsigned sealer_threads = 1;
  // Batched-fsync policy for the hot tier (see group_commit.h).
  GroupCommitPolicy group_commit;
  // Keep at most this many segments in the sealed tier; older ones are
  // promoted to the archival tier. SIZE_MAX disables archival.
  size_t archive_keep_sealed = std::numeric_limits<size_t>::max();
  // Test-only crash hook, invoked at named points of the write path
  // ("pre-flush", "post-flush", "post-roll", "pre-seal-rename",
  // "pre-seal-unlink", "pre-archive-rename", "pre-archive-unlink",
  // "aux-pre-sync"). Kill-point tests copy the directory here to get a
  // byte-exact crash image. May be called with internal locks held and
  // from background threads; it must not call back into the store.
  std::function<void(const char*)> test_hook;
  // Plan-driven fault injection (src/store/fault.h): consulted at the
  // named write-path sites; a non-kNone action makes the site fail the
  // way real storage fails (IO error / short write / fsync failure /
  // simulated crash). Same calling constraints as test_hook. Unset —
  // or a hook that always returns kNone — changes nothing.
  std::function<StoreFaultAction(const StoreFaultSite&)> fault_hook;
};

class SegmentCursor;

class LogStore final : public LogSink, public SegmentSource {
 public:
  // Opens (creating if needed) the store in `dir`. `node` names the
  // machine whose log this is; it is persisted in `store.meta` on first
  // open and must match on subsequent opens (empty = take it from the
  // meta file, for auditors that only know the directory). Recovery
  // replays segment headers/footers, re-scans unsealed segments,
  // truncates a torn tail record, and re-enqueues any rolled-but-
  // unsealed segment an interrupted promotion left behind.
  static std::unique_ptr<LogStore> Open(const std::string& dir, const NodeId& node,
                                        LogStoreOptions opts = {});
  static std::unique_ptr<LogStore> Open(const std::string& dir, LogStoreOptions opts = {});

  ~LogStore() override;
  LogStore(const LogStore&) = delete;
  LogStore& operator=(const LogStore&) = delete;

  // LogSink: appends one entry (seq must be LastSeq() + 1) to the hot
  // tier, rolling (and scheduling promotion) at the byte threshold and
  // group-committing under the batched-fsync policy.
  void Append(const LogEntry& e) override;
  // Forces a group commit now: everything appended so far becomes
  // durable and the watermark advances to LastSeq(). Also drains
  // batched aux-file syncs.
  void Flush() override;
  uint64_t SinkLastSeq() const override { return last_seq_.load(std::memory_order_acquire); }
  std::optional<Hash256> SinkLastHash() const override;
  // The durability watermark: every entry with seq <= DurableSeq() is
  // on stable storage (monotone; lock-free).
  uint64_t SinkDurableSeq() const override { return DurableSeq(); }
  uint64_t DurableSeq() const { return durable_seq_.load(std::memory_order_acquire); }

  // Shutdown barrier: rolls the active segment regardless of size and
  // drains the sealer pool, so every segment is sealed (or archived)
  // when it returns. The right order at shutdown is signer first, then
  // Seal() — see Avmm::Finish.
  void Seal();

  // SegmentSource.
  const NodeId& node() const override { return node_; }
  uint64_t LastSeq() const override { return last_seq_.load(std::memory_order_acquire); }
  LogSegment Extract(uint64_t from_seq, uint64_t to_seq) const override;
  void Scan(uint64_t from_seq, uint64_t to_seq, const EntryVisitor& visit) const override;

  // Streaming reader over [from_seq, to_seq]; holds one segment's
  // entries at a time and tolerates concurrent tier promotion.
  SegmentCursor Cursor(uint64_t from_seq, uint64_t to_seq) const;

  Hash256 LastHash() const;
  size_t SegmentCount() const;
  // Segments no longer in the raw format (sealed or archival tier).
  size_t SealedCount() const;
  // Archival-tier segments only.
  size_t ArchivedCount() const;
  // Total bytes currently on disk (Figure 3's metric, but durable).
  uint64_t DiskBytes() const;
  // True if Open() found and truncated a torn tail record.
  bool RecoveredTornTail() const { return recovered_torn_tail_; }
  const std::string& dir() const { return dir_; }
  const LogStoreOptions& options() const { return opts_; }

  // Atomic (tmp + rename, optionally fsync'd) small-file IO for
  // auxiliary records kept alongside the segments — audit checkpoints
  // (src/audit/checkpoint) persist through these. A write interrupted
  // by a crash leaves only a "*.tmp", which Recover() removes; aux
  // files must not collide with segment names ("seg-*") and are
  // otherwise ignored by recovery.
  static void WriteAuxFile(const std::string& path, ByteView data, bool sync);
  // Batched variant: the rename is immediate (readers see the new file
  // atomically) but the fsync rides the store's next group commit
  // instead of happening per file, so checkpoint writes during an audit
  // cost no extra disk round-trips. Crash window: the file may revert
  // to its previous content, never to a torn state.
  void WriteAuxFileBatched(const std::string& path, ByteView data);
  // nullopt when the file does not exist; throws StoreError on a file
  // that exists but cannot be read.
  static std::optional<Bytes> ReadAuxFile(const std::string& path);

 private:
  friend class SegmentCursor;

  enum class Tier { kActive, kRolled, kSealed, kArchived };

  struct SegmentState {
    std::string path;
    Tier tier = Tier::kActive;
    uint64_t first_seq = 0;
    uint64_t last_seq = 0;  // first_seq - 1 when empty.
    Hash256 prior_hash;
    Hash256 chain_hash;
    // Raw-tier bookkeeping, frozen at roll time (promotion inputs).
    uint64_t entry_count = 0;
    size_t stream_bytes = 0;
    std::vector<SparseIndexEntry> index;
  };

  // What a reader needs to open one segment, captured under state_mu_.
  struct SegSnapshot {
    std::string path;
    Tier tier = Tier::kActive;
    uint64_t first_seq = 0;
    size_t valid_bytes = 0;  // Raw tiers: record-stream bytes on disk.
  };

  struct LoadedRecords {
    Bytes records;
    std::vector<SparseIndexEntry> index;  // Empty for raw tiers.
  };

  LogStore(std::string dir, NodeId node, LogStoreOptions opts);
  void Recover();
  void StartBackground();
  void RegisterObsMetrics();

  void Kill(const char* point) const;
  // Consults opts_.fault_hook (kNone when unset).
  StoreFaultAction FaultAt(const char* point, uint64_t seq) const;
  void CheckWritableLocked() const;
  void AdvanceDurable(uint64_t seq);
  void StartSegmentLocked();
  // Group commit: fflush under the lock, fsync off it, then advance the
  // watermark to the last appended seq the flush covered.
  void GroupCommitLocked(std::unique_lock<std::mutex>& lk);
  // fsync of the active file without blocking appends; returns false on
  // fsync failure. Drops and reacquires `lk`.
  bool FsyncActiveOffLock(std::unique_lock<std::mutex>& lk);
  void DrainAuxLocked(std::unique_lock<std::mutex>& lk);
  // Rolls the active segment: flushes it durably (watermark now covers
  // the whole segment), closes it and marks it kRolled. Returns the
  // segment index to promote, or SIZE_MAX if nothing was rolled.
  size_t RollActiveLocked();
  void CloseActiveFileLocked();
  void EnqueuePromotion(size_t seg_index);
  void RunPromotion(size_t seg_index);
  void PromoteToSealed(size_t seg_index);
  void MaybeArchive();
  void RecordBackgroundError(const char* stage);
  void FlusherLoop();

  const SegmentState* SegmentContainingLocked(uint64_t seq) const;
  SegSnapshot SnapshotSegment(uint64_t first_seq) const;
  LoadedRecords LoadSegment(const SegSnapshot& snap) const;
  // Snapshot + load with re-resolution when promotion moves the file.
  LoadedRecords LoadSegmentBySeq(uint64_t first_seq) const;
  // Reads one entry back from the store (used for prior hashes).
  LogEntry ReadEntry(uint64_t seq) const;

  std::string dir_;
  NodeId node_;
  LogStoreOptions opts_;

  // --- Guarded by state_mu_ ---
  mutable std::mutex state_mu_;
  std::vector<SegmentState> segments_;  // Ascending; active is last if open.
  Hash256 last_hash_;
  GroupCommitBatch batch_;
  std::vector<std::string> pending_aux_;  // Renamed, awaiting fsync.
  std::string background_error_;  // First sealer/archiver/flusher failure.
  // Set when a failed write could not be rolled back to a record
  // boundary; the store refuses further appends (reopen to recover).
  bool write_failed_ = false;
  // Active (unsealed) segment writer state.
  std::FILE* active_file_ = nullptr;
  size_t active_stream_bytes_ = 0;
  uint64_t active_entry_count_ = 0;
  std::vector<SparseIndexEntry> active_index_;
  bool stopping_ = false;

  // --- Lock-free ---
  std::atomic<uint64_t> last_seq_{0};
  std::atomic<uint64_t> durable_seq_{0};
  bool recovered_torn_tail_ = false;  // Written only during Recover().

  // Serializes the off-lock fsync of a group commit against closing the
  // active file (lock order: state_mu_ before flush_mu_). active_gen_
  // changes only with both held, so holding either is enough to read it.
  mutable std::mutex flush_mu_;
  uint64_t active_gen_ = 0;

  std::mutex archive_mu_;  // One archival scan at a time.

  std::unique_ptr<ThreadPool> pool_;  // Sealer/archiver workers.
  std::thread flusher_;
  std::condition_variable flusher_cv_;

  // Telemetry (src/obs): always-on counters for the write path plus
  // watermark callback gauges labeled {node}. Counter pointers live in
  // the process-wide registry; the handles must be declared last so
  // the callbacks (which read last_seq_/durable_seq_) unregister before
  // any other member is destroyed.
  struct ObsMetrics {
    obs::Counter* appends = nullptr;
    obs::Counter* group_commits = nullptr;
    obs::Counter* seals = nullptr;
    obs::Counter* archives = nullptr;
  };
  ObsMetrics obs_;
  std::vector<obs::Registry::CallbackHandle> obs_handles_;
};

// Streams entries of one [from, to] range, loading one segment's record
// stream at a time (memory stays bounded by the seal threshold no
// matter how large the whole log is). Holds a pointer to the store, so
// a segment promoted to another tier mid-iteration is transparently
// re-resolved; the cursor must not outlive the store.
class SegmentCursor {
 public:
  // The entry the cursor is positioned on, or nullptr when exhausted.
  // The pointer is invalidated by the next call to Next().
  const LogEntry* Next();

  // h_{from-1}: lets chain verification start at the cursor's first
  // entry without any earlier log data.
  const Hash256& prior_hash() const { return prior_hash_; }

 private:
  friend class LogStore;

  SegmentCursor(const LogStore* store, std::vector<uint64_t> seg_seqs, uint64_t from_seq,
                uint64_t to_seq, Hash256 prior_hash);
  bool LoadNextSegment();

  const LogStore* store_;
  std::vector<uint64_t> seg_seqs_;  // first_seq of each segment in range.
  size_t next_seg_ = 0;
  uint64_t from_seq_ = 0;
  uint64_t to_seq_ = 0;
  uint64_t next_seq_ = 0;
  Hash256 prior_hash_;
  Bytes records_;      // Current segment's record stream.
  size_t offset_ = 0;  // Position within records_.
  LogEntry current_;
  bool done_ = false;
};

}  // namespace avm

#endif  // SRC_STORE_LOG_STORE_H_
