#include "src/store/log_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <utility>

#include "src/util/serde.h"

namespace fs = std::filesystem;

namespace avm {

namespace {

constexpr char kMetaName[] = "store.meta";
constexpr char kMetaMagic[8] = {'A', 'V', 'M', 'M', 'E', 'T', 'A', '\n'};

std::string SegName(uint64_t first_seq, const char* ext) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "seg-%020" PRIu64 ".%s", first_seq, ext);
  return buf;
}

Bytes ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw StoreError("cannot open " + path);
  }
  in.seekg(0, std::ios::end);
  std::streamoff size = in.tellg();
  in.seekg(0);
  Bytes out(static_cast<size_t>(size));
  if (size > 0 && !in.read(reinterpret_cast<char*>(out.data()), size)) {
    throw StoreError("short read on " + path);
  }
  return out;
}

// Reads just the leading magic and trailing footer of a sealed file.
SealedFooter ReadSealedFooterFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw StoreError("cannot open " + path);
  }
  in.seekg(0, std::ios::end);
  std::streamoff size = in.tellg();
  if (size < static_cast<std::streamoff>(8 + 4 + kSegmentFooterSize)) {
    throw StoreError("sealed segment truncated: " + path);
  }
  Bytes head(8);
  Bytes tail(kSegmentFooterSize);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(head.data()), 8);
  in.seekg(size - static_cast<std::streamoff>(kSegmentFooterSize));
  in.read(reinterpret_cast<char*>(tail.data()), static_cast<std::streamoff>(kSegmentFooterSize));
  if (!in) {
    throw StoreError("short read on " + path);
  }
  const char expect[8] = {'A', 'V', 'M', 'S', 'E', 'A', 'L', '\n'};
  if (std::memcmp(head.data(), expect, 8) != 0) {
    throw StoreError("bad sealed-segment magic: " + path);
  }
  return ParseSealedFooter(tail);
}

// Makes directory-level operations (create/rename/unlink) durable.
void SyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

void WriteFileAtomically(const std::string& path, ByteView data, bool sync) {
  std::string tmp = path + ".tmp";
  {
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
      throw StoreError("cannot create " + tmp);
    }
    size_t written = data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
    int flush_err = std::fflush(f);
    if (sync) {
      ::fsync(::fileno(f));
    }
    std::fclose(f);
    if (written != data.size() || flush_err != 0) {
      throw StoreError("short write on " + tmp);
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw StoreError("rename " + tmp + " failed: " + ec.message());
  }
  if (sync) {
    // The rename itself must survive a crash, not just the file bytes.
    SyncDirectory(fs::path(path).parent_path().string());
  }
}

struct LoadedSegment {
  Bytes records;
  std::vector<SparseIndexEntry> index;  // Empty for active segments.
};

// Materializes one segment file's (uncompressed) record stream.
LoadedSegment LoadSegmentFile(const std::string& path, bool sealed) {
  Bytes file = ReadFileBytes(path);
  LoadedSegment loaded;
  if (sealed) {
    SealedInfo info = ReadSealedInfo(file);
    loaded.records = ReadSealedRecords(file, info);
    loaded.index = std::move(info.index);
  } else {
    DecodeSegmentHeader(file);
    loaded.records.assign(file.begin() + static_cast<ptrdiff_t>(kSegmentHeaderSize), file.end());
  }
  return loaded;
}

}  // namespace

// ---------------------------------------------------------------------------
// LogStore
// ---------------------------------------------------------------------------

void LogStore::WriteAuxFile(const std::string& path, ByteView data, bool sync) {
  WriteFileAtomically(path, data, sync);
}

std::optional<Bytes> LogStore::ReadAuxFile(const std::string& path) {
  if (!fs::exists(path)) {
    return std::nullopt;
  }
  return ReadFileBytes(path);
}

LogStore::LogStore(std::string dir, NodeId node, LogStoreOptions opts)
    : dir_(std::move(dir)), node_(std::move(node)), opts_(opts) {
  if (opts_.index_every == 0) {
    opts_.index_every = 1;
  }
}

std::unique_ptr<LogStore> LogStore::Open(const std::string& dir, const NodeId& node,
                                         LogStoreOptions opts) {
  // Constructor is private; no make_unique.
  std::unique_ptr<LogStore> store(new LogStore(dir, node, opts));
  store->Recover();
  return store;
}

std::unique_ptr<LogStore> LogStore::Open(const std::string& dir, LogStoreOptions opts) {
  return Open(dir, NodeId(), opts);
}

LogStore::~LogStore() {
  CloseActiveFile();
}

void LogStore::Recover() {
  fs::create_directories(dir_);

  // Node identity: persisted on first open, checked on reopen.
  std::string meta_path = (fs::path(dir_) / kMetaName).string();
  if (fs::exists(meta_path)) {
    Bytes meta = ReadFileBytes(meta_path);
    if (meta.size() < 8 || std::memcmp(meta.data(), kMetaMagic, 8) != 0) {
      throw StoreError("bad store.meta magic in " + dir_);
    }
    NodeId stored;
    try {
      Reader r(ByteView(meta).subspan(8));
      stored = r.Str();
      r.ExpectEnd();
    } catch (const SerdeError& e) {
      throw StoreError(std::string("malformed store.meta: ") + e.what());
    }
    if (!node_.empty() && node_ != stored) {
      throw StoreError("store in " + dir_ + " belongs to node '" + stored + "', not '" + node_ +
                       "'");
    }
    node_ = stored;
  } else {
    if (node_.empty()) {
      throw StoreError("no store.meta in " + dir_ + " and no node name given");
    }
    Writer w;
    w.Raw(ByteView(reinterpret_cast<const uint8_t*>(kMetaMagic), 8));
    w.Str(node_);
    WriteFileAtomically(meta_path, w.bytes(), opts_.sync);
  }

  // Enumerate segment files, reading each one once: whole-file bytes
  // for the (at most one, small) active .log, footer-only for sealed
  // segments. A leftover .tmp is an interrupted seal (the .log it was
  // built from still exists); a .log shadowed by a .seal of the same
  // first seq is the other half of that crash window.
  struct FoundSegment {
    std::string log_path;
    Bytes log_bytes;
    std::string seal_path;
    SealedFooter footer;
  };
  std::map<uint64_t, FoundSegment> by_seq;
  for (const fs::directory_entry& de : fs::directory_iterator(dir_)) {
    std::string name = de.path().filename().string();
    if (name.ends_with(".tmp")) {
      fs::remove(de.path());
      continue;
    }
    if (!name.starts_with("seg-")) {
      continue;
    }
    if (name.ends_with(".log")) {
      Bytes f = ReadFileBytes(de.path().string());
      if (f.size() < kSegmentHeaderSize) {
        // Torn during segment creation: no records could have been
        // written yet, so dropping the file loses nothing.
        fs::remove(de.path());
        recovered_torn_tail_ = true;
        continue;
      }
      FoundSegment& found = by_seq[DecodeSegmentHeader(f).first_seq];
      found.log_path = de.path().string();
      found.log_bytes = std::move(f);
    } else if (name.ends_with(".seal")) {
      SealedFooter footer = ReadSealedFooterFromFile(de.path().string());
      FoundSegment& found = by_seq[footer.first_seq];
      found.seal_path = de.path().string();
      found.footer = footer;
    }
  }

  Bytes active_bytes;
  for (auto& [first_seq, found] : by_seq) {
    if (!found.seal_path.empty() && !found.log_path.empty()) {
      fs::remove(found.log_path);  // Sealed copy is complete; drop the raw one.
      found.log_path.clear();
    }
    SegmentState seg;
    seg.first_seq = first_seq;
    if (!found.seal_path.empty()) {
      seg.path = found.seal_path;
      seg.sealed = true;
      seg.last_seq = found.footer.last_seq;
      seg.prior_hash = found.footer.prior_hash;
      seg.chain_hash = found.footer.chain_hash;
    } else {
      seg.path = found.log_path;
      active_bytes = std::move(found.log_bytes);
    }
    segments_.push_back(std::move(seg));
  }

  // Validate the chain of segment boundaries and recover the active one.
  uint64_t expect_seq = 1;
  Hash256 expect_hash = Hash256::Zero();
  for (size_t i = 0; i < segments_.size(); i++) {
    SegmentState& seg = segments_[i];
    if (seg.first_seq != expect_seq) {
      throw StoreError("store is missing a segment before seq " + std::to_string(seg.first_seq));
    }
    if (!seg.sealed) {
      if (i + 1 != segments_.size()) {
        throw StoreError("unsealed segment in the middle of the store: " + seg.path);
      }
      ActiveScan scan = ScanActiveSegment(active_bytes, opts_.index_every);
      if (scan.torn) {
        fs::resize_file(seg.path, kSegmentHeaderSize + scan.valid_bytes);
        recovered_torn_tail_ = true;
      }
      seg.last_seq = scan.last_seq;
      seg.prior_hash = scan.header.prior_hash;
      seg.chain_hash = scan.chain_hash;
      active_stream_bytes_ = scan.valid_bytes;
      active_entry_count_ = scan.entry_count;
      active_index_ = std::move(scan.index);
      active_file_ = std::fopen(seg.path.c_str(), "ab");
      if (active_file_ == nullptr) {
        throw StoreError("cannot reopen active segment " + seg.path);
      }
    }
    if (seg.prior_hash != expect_hash) {
      throw StoreError("segment boundary hash mismatch at seq " + std::to_string(seg.first_seq));
    }
    expect_seq = seg.last_seq + 1;
    expect_hash = seg.chain_hash;
  }
  last_seq_ = expect_seq - 1;
  last_hash_ = expect_hash;
}

void LogStore::StartSegment() {
  SegmentState seg;
  seg.first_seq = last_seq_ + 1;
  seg.last_seq = last_seq_;
  seg.prior_hash = last_hash_;
  seg.chain_hash = last_hash_;
  seg.path = (fs::path(dir_) / SegName(seg.first_seq, "log")).string();
  Bytes header = EncodeSegmentHeader({seg.first_seq, seg.prior_hash});
  active_file_ = std::fopen(seg.path.c_str(), "wb");
  if (active_file_ == nullptr) {
    throw StoreError("cannot create segment " + seg.path);
  }
  if (std::fwrite(header.data(), 1, header.size(), active_file_) != header.size()) {
    throw StoreError("short write on " + seg.path);
  }
  active_stream_bytes_ = 0;
  active_entry_count_ = 0;
  active_index_.clear();
  segments_.push_back(std::move(seg));
}

void LogStore::Append(const LogEntry& e) {
  if (write_failed_) {
    throw StoreError("LogStore::Append: store is poisoned after a failed write; reopen it");
  }
  if (e.seq != last_seq_ + 1) {
    throw StoreError("LogStore::Append: expected seq " + std::to_string(last_seq_ + 1) + ", got " +
                     std::to_string(e.seq));
  }
  if (active_file_ == nullptr) {
    StartSegment();
  }
  Bytes record;
  EncodeRecord(e, record);
  if (std::fwrite(record.data(), 1, record.size(), active_file_) != record.size()) {
    // Roll the file back to the last record boundary so the partial
    // frame cannot sit in front of a retried append (recovery would
    // then truncate everything after it, including acknowledged
    // entries). If even the rollback fails, poison the store.
    std::fflush(active_file_);
    std::error_code ec;
    fs::resize_file(segments_.back().path, kSegmentHeaderSize + active_stream_bytes_, ec);
    if (ec) {
      write_failed_ = true;
    }
    throw StoreError("short write on " + segments_.back().path);
  }
  // State (including the sparse-index waypoint) advances only once the
  // record is fully written, so a failed append leaves no residue.
  if (active_entry_count_ % opts_.index_every == 0) {
    active_index_.push_back({e.seq, active_stream_bytes_});
  }
  active_stream_bytes_ += record.size();
  active_entry_count_++;
  last_seq_ = e.seq;
  last_hash_ = e.hash;
  segments_.back().last_seq = e.seq;
  segments_.back().chain_hash = e.hash;
  if (active_stream_bytes_ >= opts_.seal_threshold_bytes) {
    Seal();
  }
}

void LogStore::Seal() {
  if (active_file_ == nullptr) {
    return;
  }
  SegmentState& seg = segments_.back();
  if (active_entry_count_ == 0) {
    // Nothing recorded; drop the empty file instead of sealing it.
    CloseActiveFile();
    fs::remove(seg.path);
    segments_.pop_back();
    return;
  }
  // ENOSPC and friends surface at flush time with buffered stdio, so a
  // seal must not trust the in-memory counters until the bytes are
  // verifiably on disk -- otherwise the footer would claim entries the
  // body does not contain.
  if (std::fflush(active_file_) != 0) {
    write_failed_ = true;
    throw StoreError("flush failed while sealing " + seg.path);
  }
  Bytes file = ReadFileBytes(seg.path);
  if (file.size() != kSegmentHeaderSize + active_stream_bytes_) {
    write_failed_ = true;
    throw StoreError("on-disk size of " + seg.path + " disagrees with the appended records");
  }
  ByteView records = ByteView(file).subspan(kSegmentHeaderSize);
  Bytes sealed =
      EncodeSealedSegment({seg.first_seq, seg.prior_hash}, records, active_index_,
                          active_entry_count_, seg.last_seq, seg.chain_hash, opts_.compress_sealed);
  std::string sealed_path = (fs::path(dir_) / SegName(seg.first_seq, "seal")).string();
  WriteFileAtomically(sealed_path, sealed, opts_.sync);
  CloseActiveFile();
  fs::remove(seg.path);
  if (opts_.sync) {
    SyncDirectory(dir_);
  }
  seg.path = sealed_path;
  seg.sealed = true;
}

void LogStore::Flush() {
  std::lock_guard<std::mutex> lock(io_mu_);
  if (active_file_ != nullptr) {
    // A flush that fails has NOT made the acknowledged entries durable;
    // callers must hear about it.
    if (std::fflush(active_file_) != 0 ||
        (opts_.sync && ::fsync(::fileno(active_file_)) != 0)) {
      write_failed_ = true;
      throw StoreError("flush failed on " + segments_.back().path);
    }
  }
}

void LogStore::CloseActiveFile() {
  if (active_file_ != nullptr) {
    std::fflush(active_file_);
    if (opts_.sync) {
      ::fsync(::fileno(active_file_));
    }
    std::fclose(active_file_);
    active_file_ = nullptr;
  }
  active_stream_bytes_ = 0;
  active_entry_count_ = 0;
  active_index_.clear();
}

void LogStore::SyncActiveFile() const {
  std::lock_guard<std::mutex> lock(io_mu_);
  if (active_file_ != nullptr) {
    std::fflush(active_file_);
  }
}

size_t LogStore::SealedCount() const {
  size_t n = 0;
  for (const SegmentState& s : segments_) {
    n += s.sealed ? 1 : 0;
  }
  return n;
}

uint64_t LogStore::DiskBytes() const {
  uint64_t total = 0;
  for (const SegmentState& s : segments_) {
    if (s.sealed) {
      std::error_code ec;
      uint64_t sz = fs::file_size(s.path, ec);
      total += ec ? 0 : sz;
    } else {
      total += kSegmentHeaderSize + active_stream_bytes_;
    }
  }
  return total;
}

const LogStore::SegmentState* LogStore::SegmentContaining(uint64_t seq) const {
  for (const SegmentState& s : segments_) {
    if (seq >= s.first_seq && seq <= s.last_seq) {
      return &s;
    }
  }
  return nullptr;
}

LogEntry LogStore::ReadEntry(uint64_t seq) const {
  const SegmentState* seg = SegmentContaining(seq);
  if (seg == nullptr) {
    throw StoreError("LogStore::ReadEntry: seq " + std::to_string(seq) + " not in store");
  }
  if (!seg->sealed) {
    SyncActiveFile();
  }
  LoadedSegment loaded = LoadSegmentFile(seg->path, seg->sealed);
  size_t offset = 0;
  for (const SparseIndexEntry& ie : loaded.index) {
    if (ie.seq <= seq && ie.offset < loaded.records.size()) {
      offset = ie.offset;
    }
  }
  while (offset < loaded.records.size()) {
    LogEntry e = DecodeRecordAt(loaded.records, &offset);
    if (e.seq == seq) {
      return e;
    }
    if (e.seq > seq) {
      break;
    }
  }
  throw StoreError("LogStore::ReadEntry: seq " + std::to_string(seq) + " missing from segment");
}

SegmentCursor LogStore::Cursor(uint64_t from_seq, uint64_t to_seq) const {
  if (from_seq == 0 || from_seq > to_seq || to_seq > last_seq_) {
    throw std::out_of_range("LogStore::Cursor: bad range");
  }
  SyncActiveFile();
  const SegmentState* first_seg = SegmentContaining(from_seq);
  if (first_seg == nullptr) {
    throw StoreError("LogStore::Cursor: range start not in store");
  }
  // h_{from-1}: the segment boundary hash when the range starts a
  // segment, else the stored hash of the entry just before the range.
  Hash256 prior = from_seq == first_seg->first_seq ? first_seg->prior_hash
                                                   : ReadEntry(from_seq - 1).hash;
  std::vector<SegmentCursor::SegRef> refs;
  for (const SegmentState& s : segments_) {
    if (s.last_seq >= from_seq && s.first_seq <= to_seq && s.last_seq >= s.first_seq) {
      refs.push_back({s.path, s.sealed, s.first_seq});
    }
  }
  return SegmentCursor(std::move(refs), from_seq, to_seq, prior);
}

LogSegment LogStore::Extract(uint64_t from_seq, uint64_t to_seq) const {
  if (from_seq == 0 || from_seq > to_seq || to_seq > last_seq_) {
    throw std::out_of_range("LogStore::Extract: bad range");
  }
  SegmentCursor cur = Cursor(from_seq, to_seq);
  LogSegment seg;
  seg.node = node_;
  seg.prior_hash = cur.prior_hash();
  seg.entries.reserve(to_seq - from_seq + 1);
  while (const LogEntry* e = cur.Next()) {
    seg.entries.push_back(*e);
  }
  return seg;
}

void LogStore::Scan(uint64_t from_seq, uint64_t to_seq, const EntryVisitor& visit) const {
  SegmentCursor cur = Cursor(from_seq, to_seq);
  while (const LogEntry* e = cur.Next()) {
    if (!visit(*e)) {
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// SegmentCursor
// ---------------------------------------------------------------------------

SegmentCursor::SegmentCursor(std::vector<SegRef> segs, uint64_t from_seq, uint64_t to_seq,
                             Hash256 prior_hash)
    : segs_(std::move(segs)),
      from_seq_(from_seq),
      to_seq_(to_seq),
      next_seq_(from_seq),
      prior_hash_(prior_hash) {}

bool SegmentCursor::LoadNextSegment() {
  if (next_seg_ >= segs_.size()) {
    return false;
  }
  const SegRef& ref = segs_[next_seg_++];
  LoadedSegment loaded = LoadSegmentFile(ref.path, ref.sealed);
  records_ = std::move(loaded.records);
  offset_ = 0;
  // Sparse index: jump to the last waypoint at or before the first seq
  // this cursor still needs, instead of decoding from the segment start.
  uint64_t target = std::max(next_seq_, ref.first_seq);
  for (const SparseIndexEntry& ie : loaded.index) {
    if (ie.seq <= target && ie.offset < records_.size()) {
      offset_ = ie.offset;
    }
  }
  return true;
}

const LogEntry* SegmentCursor::Next() {
  if (done_ || next_seq_ > to_seq_) {
    done_ = true;
    return nullptr;
  }
  for (;;) {
    if (offset_ >= records_.size()) {
      if (!LoadNextSegment()) {
        throw StoreError("log store cursor: store ends before seq " + std::to_string(next_seq_));
      }
      continue;
    }
    LogEntry e = DecodeRecordAt(records_, &offset_);
    if (e.seq < next_seq_) {
      continue;  // Skipping entries before the range (or index waypoint).
    }
    if (e.seq != next_seq_) {
      throw StoreError("log store cursor: sequence gap at seq " + std::to_string(e.seq));
    }
    current_ = std::move(e);
    next_seq_++;
    return &current_;
  }
}

}  // namespace avm
