#include "src/store/log_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <utility>

#include "src/crypto/sha256.h"
#include "src/obs/trace.h"
#include "src/store/archive.h"
#include "src/util/serde.h"

namespace fs = std::filesystem;

namespace avm {

namespace {

constexpr char kMetaName[] = "store.meta";
constexpr char kMetaMagic[8] = {'A', 'V', 'M', 'M', 'E', 'T', 'A', '\n'};
constexpr size_t kNoSegment = std::numeric_limits<size_t>::max();

std::string SegName(uint64_t first_seq, const char* ext) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "seg-%020" PRIu64 ".%s", first_seq, ext);
  return buf;
}

Bytes ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw StoreError("cannot open " + path);
  }
  in.seekg(0, std::ios::end);
  std::streamoff size = in.tellg();
  in.seekg(0);
  Bytes out(static_cast<size_t>(size));
  if (size > 0 && !in.read(reinterpret_cast<char*>(out.data()), size)) {
    throw StoreError("short read on " + path);
  }
  return out;
}

// Reads just the leading magic and the trailing `footer_size` bytes.
Bytes ReadFileTail(const std::string& path, const char (&magic)[8], size_t footer_size) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw StoreError("cannot open " + path);
  }
  in.seekg(0, std::ios::end);
  std::streamoff size = in.tellg();
  if (size < static_cast<std::streamoff>(8 + 4 + footer_size)) {
    throw StoreError("segment file truncated: " + path);
  }
  Bytes head(8);
  Bytes tail(footer_size);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(head.data()), 8);
  in.seekg(size - static_cast<std::streamoff>(footer_size));
  in.read(reinterpret_cast<char*>(tail.data()), static_cast<std::streamoff>(footer_size));
  if (!in) {
    throw StoreError("short read on " + path);
  }
  if (std::memcmp(head.data(), magic, 8) != 0) {
    throw StoreError("bad segment magic: " + path);
  }
  return tail;
}

SealedFooter ReadSealedFooterFromFile(const std::string& path) {
  constexpr char kSealMagic[8] = {'A', 'V', 'M', 'S', 'E', 'A', 'L', '\n'};
  return ParseSealedFooter(ReadFileTail(path, kSealMagic, kSegmentFooterSize));
}

ArchiveFooter ReadArchiveFooterFromFile(const std::string& path) {
  constexpr char kArchMagic[8] = {'A', 'V', 'M', 'A', 'R', 'C', 'H', '\n'};
  return ParseArchiveFooter(ReadFileTail(path, kArchMagic, kArchiveFooterSize));
}

// Makes directory-level operations (create/rename/unlink) durable.
void SyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

void WriteFileAtomically(const std::string& path, ByteView data, bool sync) {
  std::string tmp = path + ".tmp";
  {
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
      throw StoreError("cannot create " + tmp);
    }
    size_t written = data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
    int flush_err = std::fflush(f);
    if (sync) {
      ::fsync(::fileno(f));
    }
    std::fclose(f);
    if (written != data.size() || flush_err != 0) {
      throw StoreError("short write on " + tmp);
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw StoreError("rename " + tmp + " failed: " + ec.message());
  }
  if (sync) {
    // The rename itself must survive a crash, not just the file bytes.
    SyncDirectory(fs::path(path).parent_path().string());
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// LogStore
// ---------------------------------------------------------------------------

void LogStore::WriteAuxFile(const std::string& path, ByteView data, bool sync) {
  WriteFileAtomically(path, data, sync);
}

void LogStore::WriteAuxFileBatched(const std::string& path, ByteView data) {
  {
    // Aux files ride the store's durability machinery, so they obey the
    // same poisoning rule: a store that failed a write refuses to
    // accept checkpoints until reopened (the caller must not believe a
    // checkpoint is durable when the store cannot promise anything).
    std::lock_guard<std::mutex> lk(state_mu_);
    CheckWritableLocked();
    switch (FaultAt("aux-write", 0)) {
      case StoreFaultAction::kNone:
        break;
      case StoreFaultAction::kIoError:
      case StoreFaultAction::kShortWrite:
        // Transient: the file is untouched, a retry may succeed.
        throw StoreError("injected aux-write failure on " + path);
      case StoreFaultAction::kFsyncFail:
      case StoreFaultAction::kCrash:
        write_failed_ = true;
        throw StoreError("injected crash during aux write in " + dir_ + "; reopen to recover");
    }
  }
  // Rename now (readers immediately see the complete new file), fsync
  // at the store's next group commit.
  WriteFileAtomically(path, data, /*sync=*/false);
  if (!opts_.sync) {
    return;
  }
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    pending_aux_.push_back(path);
  }
  flusher_cv_.notify_all();
}

std::optional<Bytes> LogStore::ReadAuxFile(const std::string& path) {
  if (!fs::exists(path)) {
    return std::nullopt;
  }
  return ReadFileBytes(path);
}

LogStore::LogStore(std::string dir, NodeId node, LogStoreOptions opts)
    : dir_(std::move(dir)), node_(std::move(node)), opts_(std::move(opts)) {
  if (opts_.index_every == 0) {
    opts_.index_every = 1;
  }
}

std::unique_ptr<LogStore> LogStore::Open(const std::string& dir, const NodeId& node,
                                         LogStoreOptions opts) {
  // Constructor is private; no make_unique.
  std::unique_ptr<LogStore> store(new LogStore(dir, node, std::move(opts)));
  store->Recover();
  store->RegisterObsMetrics();
  store->StartBackground();
  return store;
}

std::unique_ptr<LogStore> LogStore::Open(const std::string& dir, LogStoreOptions opts) {
  return Open(dir, NodeId(), std::move(opts));
}

LogStore::~LogStore() {
  // Shutdown order: stop the delay flusher, drain the sealer/archiver
  // pool (so no background thread touches the active file), then close
  // the active file and settle batched aux syncs.
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    stopping_ = true;
  }
  flusher_cv_.notify_all();
  if (flusher_.joinable()) {
    flusher_.join();
  }
  if (pool_) {
    try {
      pool_->Wait();
    } catch (...) {
    }
    pool_.reset();
  }
  std::unique_lock<std::mutex> lk(state_mu_);
  CloseActiveFileLocked();
  try {
    DrainAuxLocked(lk);
  } catch (...) {
  }
}

void LogStore::RegisterObsMetrics() {
  auto& reg = obs::Registry::Global();
  const obs::Labels labels{{"node", std::string(node_)}};
  obs_.appends = reg.GetCounter("store_appends_total", labels);
  obs_.group_commits = reg.GetCounter("store_group_commits_total", labels);
  obs_.seals = reg.GetCounter("store_seals_total", labels);
  obs_.archives = reg.GetCounter("store_archives_total", labels);
  // §6.11's lag, at the storage layer: how far acknowledged appends run
  // ahead of the durability watermark. Lock-free reads, so the
  // callbacks are safe from the snapshot/sampler thread at any time.
  obs_handles_.push_back(reg.RegisterCallbackGauge(
      "store_last_seq", labels,
      [this] { return static_cast<int64_t>(last_seq_.load(std::memory_order_acquire)); }));
  obs_handles_.push_back(reg.RegisterCallbackGauge(
      "store_durable_seq", labels,
      [this] { return static_cast<int64_t>(durable_seq_.load(std::memory_order_acquire)); }));
  obs_handles_.push_back(reg.RegisterCallbackGauge("store_watermark_lag_entries", labels, [this] {
    const uint64_t last = last_seq_.load(std::memory_order_acquire);
    const uint64_t durable = durable_seq_.load(std::memory_order_acquire);
    return static_cast<int64_t>(last - std::min(durable, last));
  }));
}

void LogStore::Kill(const char* point) const {
  if (opts_.test_hook) {
    opts_.test_hook(point);
  }
}

StoreFaultAction LogStore::FaultAt(const char* point, uint64_t seq) const {
  if (!opts_.fault_hook) {
    return StoreFaultAction::kNone;
  }
  return opts_.fault_hook({point, seq});
}

void LogStore::CheckWritableLocked() const {
  if (!background_error_.empty()) {
    throw StoreError(background_error_);
  }
  if (write_failed_) {
    throw StoreError("LogStore: store is poisoned after a failed write; reopen it");
  }
}

void LogStore::AdvanceDurable(uint64_t seq) {
  uint64_t cur = durable_seq_.load(std::memory_order_relaxed);
  while (cur < seq && !durable_seq_.compare_exchange_weak(cur, seq, std::memory_order_release,
                                                          std::memory_order_relaxed)) {
  }
}

void LogStore::RecordBackgroundError(const char* stage) {
  std::string what = "unknown error";
  try {
    throw;
  } catch (const std::exception& e) {
    what = e.what();
  } catch (...) {
  }
  std::lock_guard<std::mutex> lk(state_mu_);
  if (background_error_.empty()) {
    background_error_ = std::string(stage) + ": " + what;
  }
}

void LogStore::Recover() {
  fs::create_directories(dir_);

  // Node identity: persisted on first open, checked on reopen.
  std::string meta_path = (fs::path(dir_) / kMetaName).string();
  if (fs::exists(meta_path)) {
    Bytes meta = ReadFileBytes(meta_path);
    if (meta.size() < 8 || std::memcmp(meta.data(), kMetaMagic, 8) != 0) {
      throw StoreError("bad store.meta magic in " + dir_);
    }
    NodeId stored;
    try {
      Reader r(ByteView(meta).subspan(8));
      stored = r.Str();
      r.ExpectEnd();
    } catch (const SerdeError& e) {
      throw StoreError(std::string("malformed store.meta: ") + e.what());
    }
    if (!node_.empty() && node_ != stored) {
      throw StoreError("store in " + dir_ + " belongs to node '" + stored + "', not '" + node_ +
                       "'");
    }
    node_ = stored;
  } else {
    if (node_.empty()) {
      throw StoreError("no store.meta in " + dir_ + " and no node name given");
    }
    Writer w;
    w.Raw(ByteView(reinterpret_cast<const uint8_t*>(kMetaMagic), 8));
    w.Str(node_);
    WriteFileAtomically(meta_path, w.bytes(), opts_.sync);
  }

  // Enumerate segment files, reading each one once: whole-file bytes
  // for raw .log segments (bounded by the seal threshold each), footer
  // only for sealed and archived ones. A leftover .tmp is an
  // interrupted promotion; a .log shadowed by a .seal (or a .seal by an
  // .arch) of the same first seq is the other half of that crash
  // window — the promoted copy is complete (it was renamed into place
  // atomically), so the older-tier file is dropped.
  struct FoundSegment {
    std::string log_path;
    Bytes log_bytes;
    std::string seal_path;
    SealedFooter footer;
    std::string arch_path;
    ArchiveFooter arch_footer;
  };
  std::map<uint64_t, FoundSegment> by_seq;
  for (const fs::directory_entry& de : fs::directory_iterator(dir_)) {
    std::string name = de.path().filename().string();
    if (name.ends_with(".tmp")) {
      fs::remove(de.path());
      continue;
    }
    if (!name.starts_with("seg-")) {
      continue;
    }
    if (name.ends_with(".log")) {
      Bytes f = ReadFileBytes(de.path().string());
      if (f.size() < kSegmentHeaderSize) {
        // Torn during segment creation: no records could have been
        // written yet, so dropping the file loses nothing.
        fs::remove(de.path());
        recovered_torn_tail_ = true;
        continue;
      }
      FoundSegment& found = by_seq[DecodeSegmentHeader(f).first_seq];
      found.log_path = de.path().string();
      found.log_bytes = std::move(f);
    } else if (name.ends_with(".seal")) {
      SealedFooter footer = ReadSealedFooterFromFile(de.path().string());
      FoundSegment& found = by_seq[footer.first_seq];
      found.seal_path = de.path().string();
      found.footer = footer;
    } else if (name.ends_with(".arch")) {
      ArchiveFooter footer = ReadArchiveFooterFromFile(de.path().string());
      if (footer.node_hash != Sha256::Digest(std::string_view(node_))) {
        throw StoreError("archived segment " + de.path().string() + " belongs to another node");
      }
      FoundSegment& found = by_seq[footer.first_seq];
      found.arch_path = de.path().string();
      found.arch_footer = footer;
    }
  }

  std::map<uint64_t, Bytes> raw_bytes;
  for (auto& [first_seq, found] : by_seq) {
    // Highest tier wins; lower-tier copies of the same segment are the
    // un-unlinked half of an interrupted promotion.
    if (!found.arch_path.empty() || !found.seal_path.empty()) {
      if (!found.log_path.empty()) {
        fs::remove(found.log_path);
        found.log_path.clear();
      }
    }
    if (!found.arch_path.empty() && !found.seal_path.empty()) {
      fs::remove(found.seal_path);
      found.seal_path.clear();
    }
    SegmentState seg;
    seg.first_seq = first_seq;
    if (!found.arch_path.empty()) {
      seg.path = found.arch_path;
      seg.tier = Tier::kArchived;
      seg.last_seq = found.arch_footer.last_seq;
      seg.prior_hash = found.arch_footer.prior_hash;
      seg.chain_hash = found.arch_footer.chain_hash;
    } else if (!found.seal_path.empty()) {
      seg.path = found.seal_path;
      seg.tier = Tier::kSealed;
      seg.last_seq = found.footer.last_seq;
      seg.prior_hash = found.footer.prior_hash;
      seg.chain_hash = found.footer.chain_hash;
    } else {
      seg.path = found.log_path;
      seg.tier = Tier::kActive;  // Raw; split into rolled/active below.
      raw_bytes[first_seq] = std::move(found.log_bytes);
    }
    segments_.push_back(std::move(seg));
  }

  // Validate the chain of segment boundaries and recover raw segments.
  // Any raw segment before the last is one an interrupted promotion
  // left rolled-but-unsealed; it must be complete (it was flushed
  // durably before the next segment started), and StartBackground
  // re-enqueues it for promotion.
  uint64_t expect_seq = 1;
  Hash256 expect_hash = Hash256::Zero();
  for (size_t i = 0; i < segments_.size(); i++) {
    SegmentState& seg = segments_[i];
    if (seg.first_seq != expect_seq) {
      throw StoreError("store is missing a segment before seq " + std::to_string(seg.first_seq));
    }
    if (seg.tier == Tier::kActive) {
      bool is_last = i + 1 == segments_.size();
      ActiveScan scan = ScanActiveSegment(raw_bytes[seg.first_seq], opts_.index_every);
      if (scan.torn) {
        if (!is_last) {
          throw StoreError("rolled segment " + seg.path + " is torn mid-store");
        }
        fs::resize_file(seg.path, kSegmentHeaderSize + scan.valid_bytes);
        recovered_torn_tail_ = true;
      }
      seg.last_seq = scan.last_seq;
      seg.prior_hash = scan.header.prior_hash;
      seg.chain_hash = scan.chain_hash;
      seg.entry_count = scan.entry_count;
      seg.stream_bytes = scan.valid_bytes;
      seg.index = std::move(scan.index);
      if (is_last) {
        active_stream_bytes_ = scan.valid_bytes;
        active_entry_count_ = scan.entry_count;
        active_index_ = seg.index;
        active_file_ = std::fopen(seg.path.c_str(), "ab");
        if (active_file_ == nullptr) {
          throw StoreError("cannot reopen active segment " + seg.path);
        }
      } else {
        seg.tier = Tier::kRolled;
      }
    }
    if (seg.prior_hash != expect_hash) {
      throw StoreError("segment boundary hash mismatch at seq " + std::to_string(seg.first_seq));
    }
    expect_seq = seg.last_seq + 1;
    expect_hash = seg.chain_hash;
  }
  last_seq_.store(expect_seq - 1, std::memory_order_release);
  last_hash_ = expect_hash;
  // Everything that survived recovery is on disk by definition.
  durable_seq_.store(expect_seq - 1, std::memory_order_release);
}

void LogStore::StartBackground() {
  pool_ = std::make_unique<ThreadPool>(opts_.sealer_threads + 1);
  std::vector<size_t> rolled;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    for (size_t i = 0; i < segments_.size(); i++) {
      if (segments_[i].tier == Tier::kRolled) {
        rolled.push_back(i);
      }
    }
  }
  for (size_t idx : rolled) {
    EnqueuePromotion(idx);
  }
  if (opts_.group_commit.max_delay_ms > 0) {
    flusher_ = std::thread([this] { FlusherLoop(); });
  }
}

void LogStore::StartSegmentLocked() {
  SegmentState seg;
  seg.first_seq = last_seq_.load(std::memory_order_relaxed) + 1;
  seg.last_seq = seg.first_seq - 1;
  seg.prior_hash = last_hash_;
  seg.chain_hash = last_hash_;
  seg.path = (fs::path(dir_) / SegName(seg.first_seq, "log")).string();
  Bytes header = EncodeSegmentHeader({seg.first_seq, seg.prior_hash});
  active_file_ = std::fopen(seg.path.c_str(), "wb");
  if (active_file_ == nullptr) {
    throw StoreError("cannot create segment " + seg.path);
  }
  if (std::fwrite(header.data(), 1, header.size(), active_file_) != header.size()) {
    throw StoreError("short write on " + seg.path);
  }
  active_stream_bytes_ = 0;
  active_entry_count_ = 0;
  active_index_.clear();
  segments_.push_back(std::move(seg));
}

void LogStore::Append(const LogEntry& e) {
  size_t promote = kNoSegment;
  {
    std::unique_lock<std::mutex> lk(state_mu_);
    CheckWritableLocked();
    if (e.seq != last_seq_.load(std::memory_order_relaxed) + 1) {
      throw StoreError("LogStore::Append: expected seq " +
                       std::to_string(last_seq_.load(std::memory_order_relaxed) + 1) + ", got " +
                       std::to_string(e.seq));
    }
    if (active_file_ == nullptr) {
      StartSegmentLocked();
    }
    Bytes record;
    EncodeRecord(e, record);
    size_t to_write = record.size();
    switch (FaultAt("append-write", e.seq)) {
      case StoreFaultAction::kNone:
      case StoreFaultAction::kFsyncFail:  // No durability barrier here.
        break;
      case StoreFaultAction::kIoError:
        to_write = 0;  // The write fails before any byte lands.
        break;
      case StoreFaultAction::kShortWrite:
        to_write = record.size() / 2;
        break;
      case StoreFaultAction::kCrash:
        write_failed_ = true;
        throw StoreError("injected crash during append in " + dir_ + "; reopen to recover");
    }
    if ((to_write == 0 ? 0 : std::fwrite(record.data(), 1, to_write, active_file_)) !=
        record.size()) {
      // Roll the file back to the last record boundary so the partial
      // frame cannot sit in front of a retried append (recovery would
      // then truncate everything after it, including acknowledged
      // entries). If even the rollback fails, poison the store.
      std::fflush(active_file_);
      std::error_code ec;
      fs::resize_file(segments_.back().path, kSegmentHeaderSize + active_stream_bytes_, ec);
      if (ec) {
        write_failed_ = true;
      }
      throw StoreError("short write on " + segments_.back().path);
    }
    // State (including the sparse-index waypoint) advances only once the
    // record is fully written, so a failed append leaves no residue.
    if (active_entry_count_ % opts_.index_every == 0) {
      active_index_.push_back({e.seq, active_stream_bytes_});
    }
    active_stream_bytes_ += record.size();
    active_entry_count_++;
    obs_.appends->Inc();
    last_hash_ = e.hash;
    last_seq_.store(e.seq, std::memory_order_release);
    segments_.back().last_seq = e.seq;
    segments_.back().chain_hash = e.hash;
    batch_.Add(record.size(), e.seq);
    if (active_stream_bytes_ >= opts_.seal_threshold_bytes) {
      promote = RollActiveLocked();
    } else if (batch_.ThresholdDue(opts_.group_commit)) {
      GroupCommitLocked(lk);
    }
  }
  if (promote != kNoSegment) {
    Kill("post-roll");
    EnqueuePromotion(promote);
  }
}

bool LogStore::FsyncActiveOffLock(std::unique_lock<std::mutex>& lk) {
  if (!opts_.sync || active_file_ == nullptr) {
    return true;
  }
  int fd = ::fileno(active_file_);
  uint64_t gen = active_gen_;
  lk.unlock();
  bool ok = true;
  {
    std::lock_guard<std::mutex> fl(flush_mu_);
    // If the file was closed meanwhile, the close path fsynced it.
    if (gen == active_gen_) {
      ok = ::fsync(fd) == 0;
    }
  }
  lk.lock();
  return ok;
}

void LogStore::GroupCommitLocked(std::unique_lock<std::mutex>& lk) {
  if (active_file_ != nullptr && !batch_.Empty()) {
    obs::Span span(obs::kPhaseStoreFlushWait, "store");
    obs_.group_commits->Inc();
    Kill("pre-flush");
    if (FaultAt("group-commit", batch_.last_seq()) != StoreFaultAction::kNone) {
      // Any injected fault at the durability barrier has fsync-failure
      // semantics: the watermark must not advance, and the store cannot
      // trust the file's state — poison until reopened.
      write_failed_ = true;
      throw StoreError("injected group-commit failure in " + dir_ + "; reopen to recover");
    }
    if (std::fflush(active_file_) != 0) {
      write_failed_ = true;
      throw StoreError("group-commit flush failed on " + segments_.back().path);
    }
    uint64_t target = batch_.last_seq();
    batch_.Clear();
    if (!FsyncActiveOffLock(lk)) {
      write_failed_ = true;
      throw StoreError("group-commit fsync failed in " + dir_);
    }
    AdvanceDurable(target);
    Kill("post-flush");
  }
  DrainAuxLocked(lk);
}

void LogStore::Flush() {
  obs::Span span(obs::kPhaseStoreFlushWait, "store");
  std::unique_lock<std::mutex> lk(state_mu_);
  CheckWritableLocked();
  if (active_file_ != nullptr) {
    obs_.group_commits->Inc();
    if (FaultAt("group-commit", last_seq_.load(std::memory_order_relaxed)) !=
        StoreFaultAction::kNone) {
      write_failed_ = true;
      throw StoreError("injected group-commit failure in " + dir_ + "; reopen to recover");
    }
    // A flush that fails has NOT made the acknowledged entries durable;
    // callers must hear about it.
    if (std::fflush(active_file_) != 0) {
      write_failed_ = true;
      throw StoreError("flush failed on " + segments_.back().path);
    }
    batch_.Clear();
    if (!FsyncActiveOffLock(lk)) {
      write_failed_ = true;
      throw StoreError("flush failed on " + segments_.back().path);
    }
  }
  // Everything below last_seq_ is now either in the just-flushed active
  // file or in a segment that was flushed durably when it rolled.
  AdvanceDurable(last_seq_.load(std::memory_order_relaxed));
  DrainAuxLocked(lk);
}

void LogStore::DrainAuxLocked(std::unique_lock<std::mutex>& lk) {
  if (!opts_.sync) {
    pending_aux_.clear();
    return;
  }
  if (pending_aux_.empty()) {
    return;
  }
  if (FaultAt("aux-sync", 0) != StoreFaultAction::kNone) {
    write_failed_ = true;
    throw StoreError("injected aux-sync failure in " + dir_ + "; reopen to recover");
  }
  std::vector<std::string> paths;
  paths.swap(pending_aux_);
  lk.unlock();
  Kill("aux-pre-sync");
  std::set<std::string> dirs;
  for (const std::string& p : paths) {
    int fd = ::open(p.c_str(), O_RDONLY);
    if (fd >= 0) {
      ::fsync(fd);
      ::close(fd);
    }
    dirs.insert(fs::path(p).parent_path().string());
  }
  for (const std::string& d : dirs) {
    SyncDirectory(d);
  }
  lk.lock();
}

size_t LogStore::RollActiveLocked() {
  if (active_file_ == nullptr) {
    return kNoSegment;
  }
  SegmentState& seg = segments_.back();
  // The rolled segment must be durable before a new one starts: the
  // watermark says "every seq at or below is on stable storage", and a
  // rolled file never sees another flush.
  if (FaultAt("roll", seg.last_seq) != StoreFaultAction::kNone) {
    write_failed_ = true;
    throw StoreError("injected roll failure on " + seg.path + "; reopen to recover");
  }
  if (std::fflush(active_file_) != 0 ||
      (opts_.sync && ::fsync(::fileno(active_file_)) != 0)) {
    write_failed_ = true;
    throw StoreError("flush failed while rolling " + seg.path);
  }
  seg.tier = Tier::kRolled;
  seg.entry_count = active_entry_count_;
  seg.stream_bytes = active_stream_bytes_;
  seg.index = std::move(active_index_);
  CloseActiveFileLocked();
  AdvanceDurable(seg.last_seq);
  batch_.Clear();
  return segments_.size() - 1;
}

void LogStore::CloseActiveFileLocked() {
  std::lock_guard<std::mutex> fl(flush_mu_);
  if (active_file_ != nullptr) {
    std::fflush(active_file_);
    if (opts_.sync) {
      ::fsync(::fileno(active_file_));
    }
    std::fclose(active_file_);
    active_file_ = nullptr;
    active_gen_++;
  }
  active_stream_bytes_ = 0;
  active_entry_count_ = 0;
  active_index_.clear();
}

void LogStore::EnqueuePromotion(size_t seg_index) {
  pool_->Submit([this, seg_index] { RunPromotion(seg_index); });
}

void LogStore::RunPromotion(size_t seg_index) {
  try {
    PromoteToSealed(seg_index);
  } catch (...) {
    RecordBackgroundError("sealer");
    return;
  }
  try {
    MaybeArchive();
  } catch (...) {
    RecordBackgroundError("archiver");
  }
}

void LogStore::PromoteToSealed(size_t seg_index) {
  std::string log_path;
  SegmentHeader header;
  uint64_t entry_count = 0;
  uint64_t last_seq = 0;
  Hash256 chain_hash;
  std::vector<SparseIndexEntry> index;
  size_t stream_bytes = 0;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    SegmentState& seg = segments_[seg_index];
    if (seg.tier != Tier::kRolled) {
      return;  // Already promoted (e.g. re-enqueued after recovery).
    }
    log_path = seg.path;
    header = {seg.first_seq, seg.prior_hash};
    entry_count = seg.entry_count;
    last_seq = seg.last_seq;
    chain_hash = seg.chain_hash;
    index = seg.index;
    stream_bytes = seg.stream_bytes;
  }
  // The rolled file is immutable; read and compress it off the lock so
  // the recording thread never waits on LZSS.
  obs::Span span(obs::kPhaseStoreSeal, "store");
  obs_.seals->Inc();
  Bytes file = ReadFileBytes(log_path);
  if (file.size() != kSegmentHeaderSize + stream_bytes) {
    throw StoreError("on-disk size of " + log_path + " disagrees with the appended records");
  }
  ByteView records = ByteView(file).subspan(kSegmentHeaderSize);
  Bytes sealed = EncodeSealedSegment(header, records, index, entry_count, last_seq, chain_hash,
                                     opts_.compress_sealed);
  std::string sealed_path = (fs::path(dir_) / SegName(header.first_seq, "seal")).string();
  Kill("pre-seal-rename");
  WriteFileAtomically(sealed_path, sealed, opts_.sync);
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    SegmentState& seg = segments_[seg_index];
    seg.path = sealed_path;
    seg.tier = Tier::kSealed;
    seg.index.clear();
    seg.index.shrink_to_fit();
  }
  Kill("pre-seal-unlink");
  fs::remove(log_path);
  if (opts_.sync) {
    SyncDirectory(dir_);
  }
}

void LogStore::MaybeArchive() {
  if (opts_.archive_keep_sealed == std::numeric_limits<size_t>::max()) {
    return;
  }
  // One archival scan at a time; concurrent promotion workers would
  // otherwise race to re-frame the same oldest segment.
  std::lock_guard<std::mutex> al(archive_mu_);
  for (;;) {
    size_t idx = kNoSegment;
    std::string seal_path;
    uint64_t first_seq = 0;
    uint64_t seg_last_seq = 0;
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      size_t sealed_count = 0;
      size_t oldest = kNoSegment;
      for (size_t i = 0; i < segments_.size(); i++) {
        if (segments_[i].tier == Tier::kSealed) {
          sealed_count++;
          if (oldest == kNoSegment) {
            oldest = i;
          }
        }
      }
      if (oldest == kNoSegment || sealed_count <= opts_.archive_keep_sealed) {
        return;
      }
      // The tiers stay a prefix of the store (archival < sealed < raw):
      // archive only when everything older is already archived. If an
      // older segment is still being sealed, its promotion worker will
      // pick this scan up afterwards.
      for (size_t i = 0; i < oldest; i++) {
        if (segments_[i].tier != Tier::kArchived) {
          return;
        }
      }
      idx = oldest;
      seal_path = segments_[idx].path;
      first_seq = segments_[idx].first_seq;
      seg_last_seq = segments_[idx].last_seq;
    }
    obs::Span span(obs::kPhaseStoreArchive, "store");
    obs_.archives->Inc();
    Bytes sealed = ReadFileBytes(seal_path);
    // Sequence numbers are dense from 1, so the cumulative entry count
    // through this segment is its last seq.
    Bytes arch = EncodeArchivedSegment(sealed, durable_seq_.load(std::memory_order_acquire),
                                       seg_last_seq, Sha256::Digest(std::string_view(node_)));
    std::string arch_path = (fs::path(dir_) / SegName(first_seq, "arch")).string();
    Kill("pre-archive-rename");
    WriteFileAtomically(arch_path, arch, opts_.sync);
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      segments_[idx].path = arch_path;
      segments_[idx].tier = Tier::kArchived;
    }
    Kill("pre-archive-unlink");
    fs::remove(seal_path);
    if (opts_.sync) {
      SyncDirectory(dir_);
    }
  }
}

void LogStore::Seal() {
  size_t promote = kNoSegment;
  {
    std::unique_lock<std::mutex> lk(state_mu_);
    CheckWritableLocked();
    if (active_file_ != nullptr) {
      if (active_entry_count_ == 0) {
        // Nothing recorded; drop the empty file instead of sealing it.
        std::string path = segments_.back().path;
        CloseActiveFileLocked();
        segments_.pop_back();
        lk.unlock();
        fs::remove(path);
        lk.lock();
      } else {
        promote = RollActiveLocked();
      }
    }
  }
  if (promote != kNoSegment) {
    EnqueuePromotion(promote);
  }
  // Barrier: every pending promotion (including ones other rolls
  // enqueued) finishes before Seal returns.
  if (pool_) {
    pool_->Wait();
  }
  std::unique_lock<std::mutex> lk(state_mu_);
  if (!background_error_.empty()) {
    throw StoreError(background_error_);
  }
  DrainAuxLocked(lk);
}

void LogStore::FlusherLoop() {
  std::unique_lock<std::mutex> lk(state_mu_);
  while (!stopping_) {
    uint32_t delay_ms = opts_.group_commit.max_delay_ms;
    flusher_cv_.wait_for(lk, std::chrono::milliseconds(delay_ms > 0 ? delay_ms : 50),
                         [this] { return stopping_; });
    if (stopping_) {
      break;
    }
    if (write_failed_ || !background_error_.empty()) {
      continue;
    }
    if (batch_.DelayDue(opts_.group_commit) || !pending_aux_.empty()) {
      try {
        GroupCommitLocked(lk);
      } catch (const std::exception& e) {
        if (background_error_.empty()) {
          background_error_ = std::string("flusher: ") + e.what();
        }
      }
    }
  }
}

std::optional<Hash256> LogStore::SinkLastHash() const {
  std::lock_guard<std::mutex> lk(state_mu_);
  return last_seq_.load(std::memory_order_relaxed) == 0 ? std::nullopt
                                                        : std::optional<Hash256>(last_hash_);
}

Hash256 LogStore::LastHash() const {
  std::lock_guard<std::mutex> lk(state_mu_);
  return last_hash_;
}

size_t LogStore::SegmentCount() const {
  std::lock_guard<std::mutex> lk(state_mu_);
  return segments_.size();
}

size_t LogStore::SealedCount() const {
  std::lock_guard<std::mutex> lk(state_mu_);
  size_t n = 0;
  for (const SegmentState& s : segments_) {
    n += (s.tier == Tier::kSealed || s.tier == Tier::kArchived) ? 1 : 0;
  }
  return n;
}

size_t LogStore::ArchivedCount() const {
  std::lock_guard<std::mutex> lk(state_mu_);
  size_t n = 0;
  for (const SegmentState& s : segments_) {
    n += s.tier == Tier::kArchived ? 1 : 0;
  }
  return n;
}

uint64_t LogStore::DiskBytes() const {
  std::lock_guard<std::mutex> lk(state_mu_);
  uint64_t total = 0;
  for (const SegmentState& s : segments_) {
    switch (s.tier) {
      case Tier::kSealed:
      case Tier::kArchived: {
        std::error_code ec;
        uint64_t sz = fs::file_size(s.path, ec);
        total += ec ? 0 : sz;
        break;
      }
      case Tier::kRolled:
        total += kSegmentHeaderSize + s.stream_bytes;
        break;
      case Tier::kActive:
        total += kSegmentHeaderSize + active_stream_bytes_;
        break;
    }
  }
  return total;
}

const LogStore::SegmentState* LogStore::SegmentContainingLocked(uint64_t seq) const {
  for (const SegmentState& s : segments_) {
    if (seq >= s.first_seq && seq <= s.last_seq) {
      return &s;
    }
  }
  return nullptr;
}

LogStore::SegSnapshot LogStore::SnapshotSegment(uint64_t first_seq) const {
  std::lock_guard<std::mutex> lk(state_mu_);
  for (const SegmentState& s : segments_) {
    if (s.first_seq == first_seq) {
      SegSnapshot snap;
      snap.path = s.path;
      snap.tier = s.tier;
      snap.first_seq = s.first_seq;
      snap.valid_bytes = s.stream_bytes;
      if (s.tier == Tier::kActive) {
        // Push buffered records to the OS so the read below sees them;
        // a reader must only parse bytes the writer has handed off
        // (anything later could be a half-buffered record).
        if (active_file_ != nullptr) {
          std::fflush(active_file_);
        }
        snap.valid_bytes = active_stream_bytes_;
      }
      return snap;
    }
  }
  throw StoreError("segment starting at seq " + std::to_string(first_seq) + " vanished");
}

LogStore::LoadedRecords LogStore::LoadSegment(const SegSnapshot& snap) const {
  Bytes file = ReadFileBytes(snap.path);
  LoadedRecords out;
  switch (snap.tier) {
    case Tier::kActive:
    case Tier::kRolled: {
      DecodeSegmentHeader(file);
      size_t avail = file.size() - kSegmentHeaderSize;
      size_t take = std::min(avail, snap.valid_bytes);
      out.records.assign(file.begin() + static_cast<ptrdiff_t>(kSegmentHeaderSize),
                         file.begin() + static_cast<ptrdiff_t>(kSegmentHeaderSize + take));
      break;
    }
    case Tier::kSealed: {
      SealedInfo info = ReadSealedInfo(file);
      out.records = ReadSealedRecords(file, info);
      out.index = std::move(info.index);
      break;
    }
    case Tier::kArchived: {
      ArchiveInfo info = ReadArchiveInfo(file);
      out.records = ReadArchivedRecords(file, info);
      out.index = std::move(info.info.index);
      break;
    }
  }
  return out;
}

LogStore::LoadedRecords LogStore::LoadSegmentBySeq(uint64_t first_seq) const {
  // Promotion can unlink the snapshotted path between the snapshot and
  // the open; re-resolve against the live segment table and retry. A
  // genuinely unreadable segment fails every attempt and rethrows.
  for (int attempt = 0;; attempt++) {
    SegSnapshot snap = SnapshotSegment(first_seq);
    try {
      return LoadSegment(snap);
    } catch (const StoreError&) {
      if (attempt >= 4) {
        throw;
      }
    }
  }
}

LogEntry LogStore::ReadEntry(uint64_t seq) const {
  uint64_t first_seq = 0;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    const SegmentState* seg = SegmentContainingLocked(seq);
    if (seg == nullptr) {
      throw StoreError("LogStore::ReadEntry: seq " + std::to_string(seq) + " not in store");
    }
    first_seq = seg->first_seq;
  }
  LoadedRecords loaded = LoadSegmentBySeq(first_seq);
  size_t offset = 0;
  for (const SparseIndexEntry& ie : loaded.index) {
    if (ie.seq <= seq && ie.offset < loaded.records.size()) {
      offset = ie.offset;
    }
  }
  while (offset < loaded.records.size()) {
    LogEntry e = DecodeRecordAt(loaded.records, &offset);
    if (e.seq == seq) {
      return e;
    }
    if (e.seq > seq) {
      break;
    }
  }
  throw StoreError("LogStore::ReadEntry: seq " + std::to_string(seq) + " missing from segment");
}

SegmentCursor LogStore::Cursor(uint64_t from_seq, uint64_t to_seq) const {
  if (from_seq == 0 || from_seq > to_seq || to_seq > LastSeq()) {
    throw std::out_of_range("LogStore::Cursor: bad range");
  }
  Hash256 prior;
  bool prior_from_entry = false;
  std::vector<uint64_t> seg_seqs;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    const SegmentState* first_seg = SegmentContainingLocked(from_seq);
    if (first_seg == nullptr) {
      throw StoreError("LogStore::Cursor: range start not in store");
    }
    // h_{from-1}: the segment boundary hash when the range starts a
    // segment, else the stored hash of the entry just before the range.
    if (from_seq == first_seg->first_seq) {
      prior = first_seg->prior_hash;
    } else {
      prior_from_entry = true;
    }
    for (const SegmentState& s : segments_) {
      if (s.last_seq >= from_seq && s.first_seq <= to_seq && s.last_seq >= s.first_seq) {
        seg_seqs.push_back(s.first_seq);
      }
    }
  }
  if (prior_from_entry) {
    prior = ReadEntry(from_seq - 1).hash;
  }
  return SegmentCursor(this, std::move(seg_seqs), from_seq, to_seq, prior);
}

LogSegment LogStore::Extract(uint64_t from_seq, uint64_t to_seq) const {
  if (from_seq == 0 || from_seq > to_seq || to_seq > LastSeq()) {
    throw std::out_of_range("LogStore::Extract: bad range");
  }
  SegmentCursor cur = Cursor(from_seq, to_seq);
  LogSegment seg;
  seg.node = node_;
  seg.prior_hash = cur.prior_hash();
  seg.entries.reserve(to_seq - from_seq + 1);
  while (const LogEntry* e = cur.Next()) {
    seg.entries.push_back(*e);
  }
  return seg;
}

void LogStore::Scan(uint64_t from_seq, uint64_t to_seq, const EntryVisitor& visit) const {
  SegmentCursor cur = Cursor(from_seq, to_seq);
  while (const LogEntry* e = cur.Next()) {
    if (!visit(*e)) {
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// SegmentCursor
// ---------------------------------------------------------------------------

SegmentCursor::SegmentCursor(const LogStore* store, std::vector<uint64_t> seg_seqs,
                             uint64_t from_seq, uint64_t to_seq, Hash256 prior_hash)
    : store_(store),
      seg_seqs_(std::move(seg_seqs)),
      from_seq_(from_seq),
      to_seq_(to_seq),
      next_seq_(from_seq),
      prior_hash_(prior_hash) {}

bool SegmentCursor::LoadNextSegment() {
  if (next_seg_ >= seg_seqs_.size()) {
    return false;
  }
  uint64_t first_seq = seg_seqs_[next_seg_++];
  LogStore::LoadedRecords loaded = store_->LoadSegmentBySeq(first_seq);
  records_ = std::move(loaded.records);
  offset_ = 0;
  // Sparse index: jump to the last waypoint at or before the first seq
  // this cursor still needs, instead of decoding from the segment start.
  uint64_t target = std::max(next_seq_, first_seq);
  for (const SparseIndexEntry& ie : loaded.index) {
    if (ie.seq <= target && ie.offset < records_.size()) {
      offset_ = ie.offset;
    }
  }
  return true;
}

const LogEntry* SegmentCursor::Next() {
  if (done_ || next_seq_ > to_seq_) {
    done_ = true;
    return nullptr;
  }
  for (;;) {
    if (offset_ >= records_.size()) {
      if (!LoadNextSegment()) {
        throw StoreError("log store cursor: store ends before seq " + std::to_string(next_seq_));
      }
      continue;
    }
    LogEntry e = DecodeRecordAt(records_, &offset_);
    if (e.seq < next_seq_) {
      continue;  // Skipping entries before the range (or index waypoint).
    }
    if (e.seq != next_seq_) {
      throw StoreError("log store cursor: sequence gap at seq " + std::to_string(e.seq));
    }
    current_ = std::move(e);
    next_seq_++;
    return &current_;
  }
}

}  // namespace avm
