// Deterministic replay (§4.5, "semantic check").
//
// The replayer instantiates a reference machine M_R, initializes it from
// the agreed-upon image or a verified snapshot, and re-executes the log:
// synchronous inputs are fed back in order (port and instruction count
// must match exactly), asynchronous inputs are injected at their recorded
// instruction-count landmarks, outputs are compared byte-for-byte, and
// every kSnapshot entry is checked against the Merkle root of the
// replayed state. Any discrepancy whatsoever terminates replay and
// reports a fault.
#ifndef SRC_AUDIT_REPLAYER_H_
#define SRC_AUDIT_REPLAYER_H_

#include <deque>
#include <optional>
#include <span>
#include <string>

#include "src/avmm/snapshot.h"
#include "src/tel/log.h"
#include "src/util/bytes.h"
#include "src/vm/machine.h"
#include "src/vm/trace.h"

namespace avm {

struct ReplayResult {
  bool ok = true;
  std::string reason;          // First divergence, empty when ok.
  uint64_t diverged_seq = 0;   // Log entry where the divergence surfaced.
  uint64_t replay_icount = 0;  // Machine icount at the end of replay.
  uint64_t instructions_replayed = 0;
  double replay_seconds = 0;

  static ReplayResult Fail(std::string why, uint64_t seq, uint64_t icount) {
    ReplayResult r;
    r.ok = false;
    r.reason = std::move(why);
    r.diverged_seq = seq;
    r.replay_icount = icount;
    return r;
  }
};

// Incremental replay engine. Feed() accepts newly available log entries
// and replays as far as they reach; this is what makes *online* auditing
// (§6.11) possible. For offline audits, feed the whole segment once and
// call Finish().
class StreamingReplayer : public DeviceBackend {
 public:
  // Replay from the reference image (a full audit from the beginning).
  StreamingReplayer(ByteView reference_image, size_t mem_size);
  // Replay from a previously verified snapshot state (spot check).
  explicit StreamingReplayer(const MaterializedState& start);

  // Feeds more log entries (they must continue the previously fed run)
  // and replays through them. Returns the cumulative status.
  ReplayResult Feed(std::span<const LogEntry> entries);

  // Declares the log complete and performs final checks.
  ReplayResult Finish();

  const ReplayResult& result() const { return result_; }
  bool diverged() const { return !result_.ok; }
  // Checkpoint support (src/audit/checkpoint.h): true when the replay
  // state is a pure machine state — no divergence, no queued-but-
  // unapplied events — so (cpu, memory) captures it completely and a
  // replayer resumed from that MaterializedState continues bit-for-bit.
  bool Checkpointable() const { return result_.ok && pending_.empty() && !finished_; }
  uint64_t replayed_icount() const { return machine_.cpu().icount; }
  const Machine& machine() const { return machine_; }
  // For replay-time analysis (§7.5): attach an InstructionObserver.
  Machine& mutable_machine() { return machine_; }

  // DeviceBackend: called by the replayed guest.
  uint32_t PortIn(Machine& m, uint16_t port) override;
  void PortOut(Machine& m, uint16_t port, uint32_t value) override;

 private:
  struct PendingItem {
    enum class Kind { kEvent, kSnapshotCheck };
    Kind kind;
    uint64_t seq;
    TraceEvent event;       // kEvent
    SnapshotMeta snapshot;  // kSnapshotCheck
  };

  void Pump();  // Replays while pending items allow progress.
  void Diverge(std::string why, uint64_t seq);
  // Runs the machine to `target` icount; any port activity on the way is
  // validated against the pending stream by the backend callbacks.
  bool RunTo(uint64_t target, uint64_t ctx_seq);

  Machine machine_;
  std::deque<PendingItem> pending_;
  ReplayResult result_;
  bool finished_ = false;
  WallTimer total_timer_;
  uint64_t start_icount_ = 0;
};

// Convenience wrapper: batch semantic check of one segment.
ReplayResult ReplaySegment(const LogSegment& segment, ByteView reference_image, size_t mem_size);
ReplayResult ReplaySegment(const LogSegment& segment, const MaterializedState& start);

}  // namespace avm

#endif  // SRC_AUDIT_REPLAYER_H_
