// Online auditing (§6.11): incrementally replay another machine's log
// while its execution is still in progress, so cheating is detected as
// soon as the externally visible behavior diverges.
#ifndef SRC_AUDIT_ONLINE_H_
#define SRC_AUDIT_ONLINE_H_

#include "src/audit/replayer.h"
#include "src/tel/log.h"

namespace avm {

class OnlineAuditor {
 public:
  // Follows `target_log` (the auditee's live log), replaying from the
  // reference image. The log object outlives the auditor and grows
  // between Poll() calls; in-process this models streaming log transfer.
  OnlineAuditor(const TamperEvidentLog* target_log, ByteView reference_image, size_t mem_size)
      : log_(target_log), replayer_(reference_image, mem_size) {}

  // Replays all entries appended since the last poll. Returns the
  // cumulative replay status; a divergence is final.
  ReplayResult Poll() {
    uint64_t last = log_->LastSeq();
    if (next_seq_ > last) {
      return replayer_.result();
    }
    std::span<const LogEntry> all(log_->entries());
    ReplayResult r = replayer_.Feed(all.subspan(next_seq_ - 1, last - next_seq_ + 1));
    next_seq_ = last + 1;
    return r;
  }

  // Entries appended but not yet audited (the "auditing falls behind the
  // game" metric of §6.11).
  uint64_t LagEntries() const { return log_->LastSeq() + 1 - next_seq_; }
  uint64_t consumed_seq() const { return next_seq_ - 1; }
  const StreamingReplayer& replayer() const { return replayer_; }

 private:
  const TamperEvidentLog* log_;
  StreamingReplayer replayer_;
  uint64_t next_seq_ = 1;
};

}  // namespace avm

#endif  // SRC_AUDIT_ONLINE_H_
