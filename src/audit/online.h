// Online auditing (§6.11): incrementally replay another machine's log
// while its execution is still in progress, so cheating is detected as
// soon as the externally visible behavior diverges.
#ifndef SRC_AUDIT_ONLINE_H_
#define SRC_AUDIT_ONLINE_H_

#include <optional>

#include "src/audit/replayer.h"
#include "src/tel/log.h"
#include "src/tel/segment_source.h"

namespace avm {

// What the most recent Poll() observed about the followed log.
enum class OnlinePollStatus {
  kIdle,           // Nothing new since the last poll.
  kAdvanced,       // New entries were replayed (result still cumulative).
  kDiverged,       // Replay diverged; final (§6.11: a divergence is final).
  kTargetRewound,  // The target log *shrank* below the consumed prefix.
};

inline const char* OnlinePollStatusName(OnlinePollStatus s) {
  switch (s) {
    case OnlinePollStatus::kIdle:
      return "idle";
    case OnlinePollStatus::kAdvanced:
      return "advanced";
    case OnlinePollStatus::kDiverged:
      return "diverged";
    case OnlinePollStatus::kTargetRewound:
      return "target-rewound";
  }
  return "?";
}

class OnlineAuditor {
 public:
  // Follows `target_log` (the auditee's live log), replaying from the
  // reference image. The log object outlives the auditor and grows
  // between Poll() calls; in-process this models streaming log transfer.
  OnlineAuditor(const TamperEvidentLog* target_log, ByteView reference_image, size_t mem_size)
      : log_(target_log),
        mem_source_(InMemorySegmentSource(*target_log)),
        source_(&*mem_source_),
        replayer_(reference_image, mem_size) {}

  // Follows any segment source — in particular a store::LogStore, so an
  // online audit can trail a log that is being spilled to disk (and a
  // fleet service can poll many auditees without touching their heaps).
  OnlineAuditor(const SegmentSource* source, ByteView reference_image, size_t mem_size)
      : source_(source), replayer_(reference_image, mem_size) {}

  // source_ points into this object's own mem_source_ on the in-memory
  // path, so a memberwise copy/move would dangle.
  OnlineAuditor(const OnlineAuditor&) = delete;
  OnlineAuditor& operator=(const OnlineAuditor&) = delete;

  // Replays all entries appended since the last poll. Returns the
  // cumulative replay status; a divergence is final.
  //
  // If the target log has *shrunk* below the already-consumed prefix
  // (legitimately reachable: the auditee crashed and LogStore::Open
  // truncated a torn tail, or restarted with a fresh log), continuing
  // would silently replay a history that no longer matches what the
  // auditor consumed. The rewind is surfaced as kTargetRewound — sticky,
  // like a divergence, but distinct: it is not proof of cheating, it
  // means this online session cannot make progress and the caller must
  // restart the audit (from genesis or a checkpoint).
  ReplayResult Poll() {
    if (status_ == OnlinePollStatus::kTargetRewound) {
      return replayer_.result();
    }
    uint64_t last = source_->LastSeq();
    if (last + 1 < next_seq_) {
      status_ = OnlinePollStatus::kTargetRewound;
      return replayer_.result();
    }
    if (next_seq_ > last) {
      if (status_ != OnlinePollStatus::kDiverged) {
        status_ = OnlinePollStatus::kIdle;
      }
      return replayer_.result();
    }
    ReplayResult r;
    if (log_ != nullptr) {
      // In-memory fast path: feed the live entries directly (zero-copy;
      // this poll sits on the frame-rate-sensitive game loop in §6.11).
      std::span<const LogEntry> all(log_->entries());
      r = replayer_.Feed(all.subspan(next_seq_ - 1, last - next_seq_ + 1));
    } else {
      LogSegment seg = source_->Extract(next_seq_, last);
      r = replayer_.Feed(seg.entries);
    }
    next_seq_ = last + 1;
    status_ = r.ok ? OnlinePollStatus::kAdvanced : OnlinePollStatus::kDiverged;
    return r;
  }

  OnlinePollStatus status() const { return status_; }
  bool target_rewound() const { return status_ == OnlinePollStatus::kTargetRewound; }

  // Entries appended but not yet audited (the "auditing falls behind the
  // game" metric of §6.11). Saturates at 0 when the target rewound, so a
  // shrunken log cannot underflow the lag into an absurd value.
  uint64_t LagEntries() const {
    uint64_t last = source_->LastSeq();
    return last + 1 >= next_seq_ ? last + 1 - next_seq_ : 0;
  }
  uint64_t consumed_seq() const { return next_seq_ - 1; }
  const StreamingReplayer& replayer() const { return replayer_; }

 private:
  // Set (with mem_source_) only on the in-memory path; enables the
  // zero-copy Feed in Poll().
  const TamperEvidentLog* log_ = nullptr;
  // Owns the wrapper when constructed from a bare TamperEvidentLog.
  std::optional<InMemorySegmentSource> mem_source_;
  const SegmentSource* source_;
  StreamingReplayer replayer_;
  uint64_t next_seq_ = 1;
  OnlinePollStatus status_ = OnlinePollStatus::kIdle;
};

}  // namespace avm

#endif  // SRC_AUDIT_ONLINE_H_
