// Analysis during replay (§7.5).
//
// AVMs deliberately classify anything the reference image can do as
// correct — including executions where an attacker exploits a bug in the
// guest software itself (§4.8). But deterministic replay is a perfect
// substrate for expensive offline analysis: "techniques whose runtime
// costs are too high for deployment in a live system could be used
// during an off-line replay ... to detect bugs, vulnerabilities and
// attacks as part of a normal audit."
//
// ReplayAnalyzer re-executes a (chain-verified) log the same way the
// semantic check does, but additionally streams every retired
// instruction past a set of analysis passes: memory watchpoints,
// write-range policies ("the guest must never write its code pages"),
// and a taint-style tracker that flags control flow reaching
// network-derived bytes. Findings do not make the machine "faulty" in
// the AVM sense — they diagnose the *software*, which is exactly the
// paper's framing.
#ifndef SRC_AUDIT_REPLAY_ANALYSIS_H_
#define SRC_AUDIT_REPLAY_ANALYSIS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/audit/replayer.h"
#include "src/tel/log.h"
#include "src/vm/isa.h"
#include "src/vm/machine.h"

namespace avm {

struct AnalysisFinding {
  std::string pass;     // Which analysis produced it.
  std::string detail;
  uint64_t icount = 0;  // Where in the execution.
  uint32_t pc = 0;
  uint32_t addr = 0;    // Memory address, when applicable.
};

// One analysis pass. Hooks are invoked on the *replayed* execution.
class AnalysisPass {
 public:
  virtual ~AnalysisPass() = default;
  virtual std::string Name() const = 0;
  // Called after each retired instruction. `before` is the pre-execution
  // CPU state, `insn` the decoded instruction.
  virtual void OnInstruction(const Machine& m, const CpuState& before, const Insn& insn) = 0;
  virtual std::vector<AnalysisFinding> TakeFindings() = 0;
};

// Flags any guest store into [lo, hi) -- e.g. the image's code pages, a
// table that only the host should write, or a canary region.
class WriteWatchpointPass : public AnalysisPass {
 public:
  WriteWatchpointPass(uint32_t lo, uint32_t hi, std::string label)
      : lo_(lo), hi_(hi), label_(std::move(label)) {}

  std::string Name() const override { return "write-watchpoint:" + label_; }
  void OnInstruction(const Machine& m, const CpuState& before, const Insn& insn) override;
  std::vector<AnalysisFinding> TakeFindings() override { return std::move(findings_); }

 private:
  uint32_t lo_, hi_;
  std::string label_;
  std::vector<AnalysisFinding> findings_;
};

// Flags control transfers into a data region (the classic symptom of a
// corrupted return address / function pointer).
class ExecRangePass : public AnalysisPass {
 public:
  // Execution is only legitimate inside [code_lo, code_hi).
  ExecRangePass(uint32_t code_lo, uint32_t code_hi) : lo_(code_lo), hi_(code_hi) {}

  std::string Name() const override { return "exec-range"; }
  void OnInstruction(const Machine& m, const CpuState& before, const Insn& insn) override;
  std::vector<AnalysisFinding> TakeFindings() override { return std::move(findings_); }

 private:
  uint32_t lo_, hi_;
  std::vector<AnalysisFinding> findings_;
};

struct AnalysisReport {
  ReplayResult replay;  // The underlying semantic check's result.
  std::vector<AnalysisFinding> findings;
  uint64_t instructions_analyzed = 0;
};

// Replays `segment` from the reference image with the given passes
// attached. The replay itself is the normal semantic check (divergence
// is still reported); findings are collected independently.
AnalysisReport AnalyzeSegment(const LogSegment& segment, ByteView reference_image, size_t mem_size,
                              std::vector<std::unique_ptr<AnalysisPass>> passes);

}  // namespace avm

#endif  // SRC_AUDIT_REPLAY_ANALYSIS_H_
